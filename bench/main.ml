(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus Bechamel microbenchmarks of the µproxy hot paths and
   ablations of the design choices called out in DESIGN.md.

   Usage:
     dune exec bench/main.exe                 -- everything, bench scale
     dune exec bench/main.exe -- table2       -- one exhibit
     dune exec bench/main.exe -- all --full   -- slower, larger scales

   Scales shrink file sizes / op counts / file sets (and, for SPECsfs,
   the server caches by the same rule) so the whole run finishes in
   minutes; shapes are scale-invariant (see EXPERIMENTS.md). *)

module E = Slice_experiments
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Packet = Slice_net.Packet
module Cksum = Slice_net.Cksum
module Routekey = Slice_nfs.Routekey

(* ---- Bechamel microbenchmarks: the real code on the µproxy's critical
   path, one group per exhibit that leans on it ---- *)

let sample_fh =
  { Fh.file_id = 424242L; gen = 1; ftype = Fh.Reg; mirrored = false; attr_site = 0; cap = 0L }

let sample_call = Codec.encode_call ~xid:7 (Nfs.Lookup (sample_fh, "kern_descrip.c"))

let sample_pkt () =
  Packet.make ~src:3 ~dst:9 ~sport:1000 ~dport:2049 (Bytes.copy sample_call)

let micro_tests =
  let open Bechamel in
  Test.make_grouped ~name:"uproxy"
    [
      (* Table 3: packet decode *)
      Test.make ~name:"table3/peek-call"
        (Staged.stage (fun () -> ignore (Codec.peek_call sample_call)));
      Test.make ~name:"table3/full-decode"
        (Staged.stage (fun () -> ignore (Codec.decode_call sample_call)));
      (* Table 3: redirection/rewriting — incremental checksum vs naive *)
      (let pkt = sample_pkt () in
       Test.make ~name:"table3/rewrite-dst-incremental"
         (Staged.stage (fun () -> Cksum.rewrite_dst pkt ((pkt.Packet.dst + 1) land 0xFF))));
      (let pkt = sample_pkt () in
       Test.make ~name:"table3/checksum-full-recompute"
         (Staged.stage (fun () -> ignore (Cksum.compute pkt))));
      (* Table 2: bulk I/O routing *)
      Test.make ~name:"table2/stripe-route"
        (Staged.stage (fun () ->
             ignore (Routekey.stripe_site ~nsites:8 ~stripe_unit:32768 sample_fh 1048576L);
             ignore (Routekey.local_offset ~nsites:8 ~stripe_unit:32768 1048576L)));
      (* Figures 3/4: name-space routing hash — MD5 (the paper's choice)
         vs FNV (the "competing hash function" ablation) *)
      Test.make ~name:"fig3/md5-name-site"
        (Staged.stage (fun () -> ignore (Routekey.name_site ~nsites:4 sample_fh "dir01234")));
      Test.make ~name:"fig3/fnv-name-site"
        (Staged.stage (fun () ->
             ignore (Slice_hash.Fnv.bucket (Fh.key sample_fh ^ "\x00dir01234") 4)));
      (* Figures 5/6: per-op wire cost *)
      Test.make ~name:"fig5/encode-write-call"
        (Staged.stage (fun () ->
             ignore
               (Codec.encode_call ~xid:9 (Nfs.Write (sample_fh, 0L, Nfs.Unstable, Nfs.Synthetic 8192)))));
      (let wal = Slice_wal.Wal.create ~name:"bench" () in
       Test.make ~name:"managers/wal-append"
         (Staged.stage (fun () -> ignore (Slice_wal.Wal.append wal ~rtype:1 "0123456789abcdef"))));
      (* metadata fast path: lease-aware cache lookup and the percentile
         query every exhibit's latency lines lean on *)
      (let lru : (int, int) Slice_util.Lru.t = Slice_util.Lru.create ~capacity:4096 () in
       for i = 0 to 4095 do
         Slice_util.Lru.add lru ~expires_at:infinity i i
       done;
       let k = ref 0 in
       Test.make ~name:"metacache/lru-find-ttl"
         (Staged.stage (fun () ->
              k := (!k + 17) land 4095;
              ignore (Slice_util.Lru.find_ttl lru !k ~now:1.0))));
      (let s = Slice_util.Stats.create () in
       let p = Slice_util.Prng.create 5 in
       for _ = 1 to 10_000 do
         Slice_util.Stats.add s (Slice_util.Prng.float p 1.0)
       done;
       Test.make ~name:"metacache/stats-percentile-cached"
         (Staged.stage (fun () -> ignore (Slice_util.Stats.percentile s 99.0))));
    ]

(* Returns (name, ns_per_op) rows for the JSON artifact; NaN when Bechamel
   produced no estimate. *)
let run_micro ?(quota = 0.25) () =
  let open Bechamel in
  print_endline "\n== Microbenchmarks (Bechamel, ns/op) ==";
  print_endline "the real hot-path code behind each exhibit:";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] micro_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [])
  in
  List.map
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (t :: _) ->
          Printf.printf "  %-44s %10.1f ns/op\n" name t;
          (name, t)
      | _ ->
          Printf.printf "  %-44s %10s\n" name "n/a";
          (name, Float.nan))
      rows

(* ---- machine-readable perf artifact (BENCH_PR2.json) ---- *)

module Json = Slice_util.Json

let bench_json_path = "BENCH_PR2.json"

let bench_json ~micro ~exhibits =
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ( "micro",
        Json.Arr
          (List.map
             (fun (name, ns) ->
               Json.Obj [ ("name", Json.Str name); ("ns_per_op", Json.Num ns) ])
             micro) );
      ( "exhibits",
        Json.Arr
          (List.map
             (fun (p : E.Offload.point) ->
               Json.Obj
                 [
                   ("name", Json.Str p.E.Offload.label);
                   ("ops_per_sec", Json.Num p.E.Offload.delivered_ops_s);
                   ("p50_ms", Json.Num p.E.Offload.p50_ms);
                   ("p95_ms", Json.Num p.E.Offload.p95_ms);
                   ("p99_ms", Json.Num p.E.Offload.p99_ms);
                   ("dir_ops", Json.Num (float_of_int p.E.Offload.dir_ops));
                 ])
             exhibits) );
    ]

(* Schema check over the re-parsed file: the smoke alias runs this so the
   artifact can't silently rot into a shape downstream tooling rejects. *)
let validate_bench_json txt =
  let problem = ref None in
  let fail msg = problem := Some msg in
  let is_num k o = match Json.member k o with Some (Json.Num _) -> true | _ -> false in
  let is_str k o = match Json.member k o with Some (Json.Str _) -> true | _ -> false in
  (match Json.of_string txt with
  | exception Json.Parse_error m -> fail ("parse error: " ^ m)
  | j -> (
      match (Json.member "schema_version" j, Json.member "micro" j, Json.member "exhibits" j) with
      | Some (Json.Num _), Some (Json.Arr micro), Some (Json.Arr exhibits) ->
          if micro = [] then fail "micro is empty";
          if exhibits = [] then fail "exhibits is empty";
          List.iter
            (fun m ->
              if not (is_str "name" m && is_num "ns_per_op" m) then
                fail "bad micro row: want {name, ns_per_op}")
            micro;
          List.iter
            (fun e ->
              if
                not
                  (is_str "name" e && is_num "ops_per_sec" e && is_num "p50_ms" e
                 && is_num "p95_ms" e && is_num "p99_ms" e && is_num "dir_ops" e)
              then fail "bad exhibit row: want {name, ops_per_sec, p50/p95/p99_ms, dir_ops}")
            exhibits
      | _ -> fail "missing top-level keys {schema_version, micro, exhibits}"));
  match !problem with
  | None -> true
  | Some msg ->
      Printf.eprintf "%s: schema validation failed: %s\n" bench_json_path msg;
      false

let write_bench_json ~micro ~exhibits =
  let oc = open_out bench_json_path in
  output_string oc (Json.to_string (bench_json ~micro ~exhibits));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d micro, %d exhibit rows)\n" bench_json_path (List.length micro)
    (List.length exhibits)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- scale-out perf artifact (BENCH_PR5.json): delivered throughput
   before/after adding one server of each class under live load ---- *)

let bench_pr5_path = "BENCH_PR5.json"

let scale_bench_json (t : E.Scale.t) =
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ( "phases",
        Json.Arr
          (List.map
             (fun (p : E.Scale.phase) ->
               Json.Obj
                 [
                   ("name", Json.Str p.E.Scale.ph_label);
                   ("ops", Json.Num (float_of_int p.E.Scale.ph_ops));
                   ("ops_per_sec", Json.Num p.E.Scale.ph_ops_s);
                 ])
             t.E.Scale.phases) );
      ("sites_moved", Json.Num (float_of_int t.E.Scale.sites_moved));
      ("bytes_copied", Json.Num (Int64.to_float t.E.Scale.bytes_copied));
      ("audit_lost", Json.Num (float_of_int t.E.Scale.audit.E.Scale.aud_lost));
      ( "audit_ownership_violations",
        Json.Num
          (float_of_int t.E.Scale.audit.E.Scale.aud_ownership_violations) );
    ]

(* Same re-parse-and-gate discipline as BENCH_PR2.json, plus the
   substantive checks: the audit must be clean and throughput must rise
   after every server addition. *)
let validate_scale_json txt =
  let problem = ref None in
  let fail msg = problem := Some msg in
  let num k o = match Json.member k o with Some (Json.Num v) -> Some v | _ -> None in
  let is_str k o = match Json.member k o with Some (Json.Str _) -> true | _ -> false in
  (match Json.of_string txt with
  | exception Json.Parse_error m -> fail ("parse error: " ^ m)
  | j -> (
      match (Json.member "schema_version" j, Json.member "phases" j) with
      | Some (Json.Num _), Some (Json.Arr phases) ->
          if List.length phases < 2 then fail "want at least 2 phases";
          List.iter
            (fun p ->
              if not (is_str "name" p && num "ops" p <> None && num "ops_per_sec" p <> None)
              then fail "bad phase row: want {name, ops, ops_per_sec}")
            phases;
          (match (num "audit_lost" j, num "audit_ownership_violations" j) with
          | Some 0.0, Some 0.0 -> ()
          | Some _, Some _ -> fail "audit not clean: updates lost or duplicated"
          | _ -> fail "missing audit keys");
          (match num "sites_moved" j with
          | Some v when v > 0.0 -> ()
          | Some _ -> fail "no sites moved"
          | None -> fail "missing sites_moved");
          if num "bytes_copied" j = None then fail "missing bytes_copied";
          let rates = List.filter_map (num "ops_per_sec") phases in
          let rec monotone = function
            | a :: (b :: _ as rest) -> a < b && monotone rest
            | _ -> true
          in
          if not (monotone rates) then
            fail "throughput did not rise after every server addition"
      | _ -> fail "missing top-level keys {schema_version, phases}"));
  match !problem with
  | None -> true
  | Some msg ->
      Printf.eprintf "%s: validation failed: %s\n" bench_pr5_path msg;
      false

let write_scale_json t =
  let oc = open_out bench_pr5_path in
  output_string oc (Json.to_string (scale_bench_json t));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d phases)\n" bench_pr5_path
    (List.length t.E.Scale.phases)

(* ---- failover perf artifact (BENCH_PR6.json): takeover MTTR per
   manager class plus the zero-requests-lost gate ---- *)

let bench_pr6_path = "BENCH_PR6.json"

let failover_bench_json (t : E.Failover.t) =
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ( "takeovers",
        Json.Arr
          (List.map
             (fun (tk : E.Failover.takeover) ->
               Json.Obj
                 [
                   ("class", Json.Str tk.E.Failover.tk_class);
                   ("detect_ms", Json.Num (tk.E.Failover.tk_detect *. 1e3));
                   ("mttr_ms", Json.Num (tk.E.Failover.tk_mttr *. 1e3));
                   ("sites", Json.Num (float_of_int tk.E.Failover.tk_sites));
                 ])
             t.E.Failover.takeovers) );
      ("requests_lost", Json.Num (float_of_int t.E.Failover.audit.E.Failover.aud_lost));
      ("audit_checked", Json.Num (float_of_int t.E.Failover.audit.E.Failover.aud_checked));
      ( "audit_ownership_violations",
        Json.Num (float_of_int t.E.Failover.audit.E.Failover.aud_ownership_violations) );
      ( "zombies_fenced",
        Json.Num
          (float_of_int
             (List.length
                (List.filter
                   (fun (z : E.Failover.zombie) -> z.E.Failover.z_update_blocked)
                   t.E.Failover.zombies))) );
      ("zombies_probed", Json.Num (float_of_int (List.length t.E.Failover.zombies)));
    ]

(* The substantive gates: the exhibit killed one manager of each class,
   so three takeovers with positive bounded MTTR; the post-run audit
   found every acked update (zero requests lost — the PR's headline
   claim); every revived zombie was fenced. *)
let validate_failover_json txt =
  let problem = ref None in
  let fail msg = problem := Some msg in
  let num k o = match Json.member k o with Some (Json.Num v) -> Some v | _ -> None in
  let is_str k o = match Json.member k o with Some (Json.Str _) -> true | _ -> false in
  (match Json.of_string txt with
  | exception Json.Parse_error m -> fail ("parse error: " ^ m)
  | j -> (
      match (Json.member "schema_version" j, Json.member "takeovers" j) with
      | Some (Json.Num _), Some (Json.Arr takeovers) ->
          if List.length takeovers <> 3 then fail "want exactly 3 takeovers (one per class)";
          List.iter
            (fun tk ->
              if not (is_str "class" tk) then fail "takeover row missing class";
              match (num "detect_ms" tk, num "mttr_ms" tk, num "sites" tk) with
              | Some d, Some m, Some s ->
                  if not (d > 0.0 && m >= d && Float.is_finite m) then
                    fail "takeover MTTR not positive/bounded";
                  if s <= 0.0 then fail "takeover claimed no sites"
              | _ -> fail "takeover row missing detect_ms/mttr_ms/sites")
            takeovers;
          (match num "requests_lost" j with
          | Some 0.0 -> ()
          | Some _ -> fail "requests lost: failover dropped acked updates"
          | None -> fail "missing requests_lost");
          (match num "audit_checked" j with
          | Some v when v > 0.0 -> ()
          | _ -> fail "audit checked nothing");
          (match num "audit_ownership_violations" j with
          | Some 0.0 -> ()
          | _ -> fail "ownership not exclusive after failover");
          (match (num "zombies_fenced" j, num "zombies_probed" j) with
          | Some f, Some p when f = p && p > 0.0 -> ()
          | _ -> fail "a revived zombie was not fenced")
      | _ -> fail "missing top-level keys {schema_version, takeovers}"));
  match !problem with
  | None -> true
  | Some msg ->
      Printf.eprintf "%s: validation failed: %s\n" bench_pr6_path msg;
      false

let write_failover_json t =
  let oc = open_out bench_pr6_path in
  output_string oc (Json.to_string (failover_bench_json t));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d takeovers)\n" bench_pr6_path
    (List.length t.E.Failover.takeovers)

(* ---- hot-path allocation baseline (BENCH_PR8.json): words-allocated
   and nanoseconds per intercepted packet through the µproxy under the
   SPECsfs mix, plus per-op figures for the packet-peek primitives the
   typed lint tier (A1) guards. These are the "before" numbers ROADMAP
   item 3 must beat. ---- *)

module Specsfs = Slice_workload.Specsfs

let bench_pr8_path = "BENCH_PR8.json"

(* Per-op allocation and CPU cost of a tight loop over [f]. Gc counters
   are process-wide, so the loop runs nothing but [f]; the clock is real
   CPU time because this measures the harness's own code, not the
   simulation. *)
let words_and_ns ~n f =
  for _ = 1 to 256 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let w0 = Gc.minor_words () in
  (* lint: D1 ok — real CPU time is the measurement here, not part of the simulated world *)
  let t0 = Sys.time () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  (* lint: D1 ok — real CPU time is the measurement here, not part of the simulated world *)
  let dt = Sys.time () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  (dw /. float_of_int n, dt *. 1e9 /. float_of_int n)

let pr8_micro () =
  let pkt = sample_pkt () in
  let d = ref 0 in
  List.map
    (fun (name, f) ->
      let words, ns = words_and_ns ~n:200_000 f in
      Printf.printf "  %-28s %8.2f words/op %10.1f ns/op\n" name words ns;
      (name, words, ns))
    [
      ("peek/is-call", (fun () -> ignore (Codec.is_call sample_call)));
      ("peek/xid-of", (fun () -> ignore (Codec.xid_of sample_call)));
      ("peek/peek-call", (fun () -> ignore (Codec.peek_call sample_call)));
      ( "rewrite/dst-incremental",
        fun () ->
          d := (!d + 1) land 0xFF;
          Cksum.rewrite_dst pkt !d );
      ("reply/status", (fun () -> ignore (Slice.Proxy.reply_status sample_call)));
    ]

(* One small SPECsfs mix through a full Slice ensemble, Gc counters and
   CPU clock around the proxy loop; packets come from the µproxies'
   interception counters so the denominator is real routed traffic. *)
let specsfs_packet_baseline ~scale =
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        storage_nodes = 2;
        dir_servers = 1;
        smallfile_servers = 2;
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let clients =
    Array.init 2 (fun i ->
        let host, _ = Slice.Ensemble.add_client ens ~name:(Printf.sprintf "sfs%d" i) in
        Slice_workload.Client.create host ~server:(Slice.Ensemble.virtual_addr ens)
          ~port:(1000 + i) ())
  in
  let cfg =
    {
      Specsfs.default_config with
      offered_iops = 300.0;
      processes = 4;
      duration = 2.0;
      warmup = 0.5;
      bytes_per_iops = 1e7 *. scale;
      seed = 11;
    }
  in
  let w0 = Gc.minor_words () in
  (* lint: D1 ok — real CPU time is the measurement here, not part of the simulated world *)
  let t0 = Sys.time () in
  let r = Specsfs.run eng ~clients ~root:Slice.Ensemble.root cfg in
  (* lint: D1 ok — real CPU time is the measurement here, not part of the simulated world *)
  let dt = Sys.time () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let packets =
    List.fold_left
      (fun acc p -> acc + Slice.Proxy.packets_intercepted p)
      0
      (Slice.Ensemble.client_proxies ens)
  in
  let denom = float_of_int (max 1 packets) in
  (r, packets, dw /. denom, dt *. 1e9 /. denom)

let pr8_json ~specsfs:((r : Specsfs.result), packets, wpp, nspp) ~micro =
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ( "specsfs",
        Json.Obj
          [
            ("delivered_ops_s", Json.Num r.Specsfs.delivered);
            ("ops_measured", Json.Num (float_of_int r.Specsfs.ops_measured));
            ("packets", Json.Num (float_of_int packets));
            ("words_per_packet", Json.Num wpp);
            ("ns_per_packet", Json.Num nspp);
          ] );
      ( "micro",
        Json.Arr
          (List.map
             (fun (name, words, ns) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("words_per_op", Json.Num words);
                   ("ns_per_op", Json.Num ns);
                 ])
             micro) );
    ]

(* The gates: a packet actually flowed, both per-packet figures are
   finite (words may be zero — that is the goal state), and every micro
   row is complete. *)
let validate_pr8_json txt =
  let problem = ref None in
  let fail msg = problem := Some msg in
  let num k o = match Json.member k o with Some (Json.Num v) -> Some v | _ -> None in
  let is_str k o = match Json.member k o with Some (Json.Str _) -> true | _ -> false in
  (match Json.of_string txt with
  | exception Json.Parse_error m -> fail ("parse error: " ^ m)
  | j -> (
      match (Json.member "schema_version" j, Json.member "specsfs" j, Json.member "micro" j) with
      | Some (Json.Num _), Some sfs, Some (Json.Arr micro) ->
          (match num "packets" sfs with
          | Some p when p > 0.0 -> ()
          | Some _ -> fail "no packets intercepted"
          | None -> fail "missing packets");
          (match num "words_per_packet" sfs with
          | Some w when Float.is_finite w && w >= 0.0 -> ()
          | _ -> fail "words_per_packet not a finite non-negative number");
          (match num "ns_per_packet" sfs with
          | Some n when Float.is_finite n && n >= 0.0 -> ()
          | _ -> fail "ns_per_packet not a finite non-negative number");
          if num "delivered_ops_s" sfs = None || num "ops_measured" sfs = None then
            fail "missing delivered_ops_s/ops_measured";
          if micro = [] then fail "micro is empty";
          List.iter
            (fun m ->
              if not (is_str "name" m && num "words_per_op" m <> None && num "ns_per_op" m <> None)
              then fail "bad micro row: want {name, words_per_op, ns_per_op}")
            micro
      | _ -> fail "missing top-level keys {schema_version, specsfs, micro}"));
  match !problem with
  | None -> true
  | Some msg ->
      Printf.eprintf "%s: validation failed: %s\n" bench_pr8_path msg;
      false

let write_pr8_json ~specsfs ~micro =
  let oc = open_out bench_pr8_path in
  output_string oc (Json.to_string (pr8_json ~specsfs ~micro));
  output_char oc '\n';
  close_out oc;
  let _, packets, wpp, nspp = specsfs in
  Printf.printf "\nwrote %s (%d packets, %.1f words/packet, %.0f ns/packet)\n" bench_pr8_path
    packets wpp nspp

(* ---- zero-allocation packet path (BENCH_PR9.json): the ratchet on the
   PR 8 baseline. A direct-drive harness pushes a SPECsfs-shaped mix of
   calls and replies through a fully installed µproxy — egress/ingress
   filters, cursor peeks, pending pool, forwarding, reply patching — and
   gates the steady-state allocation under 64 words/packet (the PR 8
   artifact recorded 5963). The full-ensemble SPECsfs figures ride along
   so the per-packet cost of the complete system is recorded in the same
   artifact and the ns gate compares like with like on one machine. ---- *)

module Net = Slice_net.Net
module Host = Slice_storage.Host
module Engine = Slice_sim.Engine

let bench_pr9_path = "BENCH_PR9.json"
let pr9_words_budget = 64.0
let pr9_baseline_words = 5963.0 (* BENCH_PR8.json as recorded before this ratchet *)

let pr9_fh i =
  { Fh.file_id = Int64.of_int (1000 + i); gen = 1; ftype = Fh.Reg; mirrored = false;
    attr_site = 0; cap = 0L }

let pr9_mix i =
  let fh = pr9_fh (i mod 8) in
  let attr = Nfs.default_attr ~ftype:Fh.Reg ~fileid:fh.Fh.file_id ~now:0.0 in
  match i mod 5 with
  | 0 -> (Nfs.Lookup (Fh.root, Printf.sprintf "f%d" (i mod 8)), Ok (Nfs.RLookup (fh, attr)))
  | 1 -> (Nfs.Getattr fh, Ok (Nfs.RGetattr attr))
  | 2 -> (Nfs.Access (fh, 1), Ok (Nfs.RAccess (1, attr)))
  | 3 ->
      ( Nfs.Read (fh, Int64.of_int (i mod 32 * 8192), 8192),
        Ok (Nfs.RRead (Nfs.Synthetic 8192, false, attr)) )
  | _ ->
      ( Nfs.Write (fh, Int64.of_int (i mod 32 * 8192), Nfs.Unstable, Nfs.Synthetic 4096),
        Ok (Nfs.RWrite (4096, Nfs.Unstable, attr)) )

(* Words and nanoseconds per packet through the installed µproxy, meta
   fast path off (it would answer from cache and skip forwarding) and the
   expiry sweep off (idle timers would pollute the Gc window). *)
let pr9_packet_path () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let chost = Host.create net ~name:"client" () in
  let dhost = Host.create net ~name:"dir" () in
  let s0 = Host.create net ~name:"s0" () in
  let s1 = Host.create net ~name:"s1" () in
  let vaddr = Net.add_node net ~name:"virt" in
  let params =
    {
      Slice.Params.default with
      threshold = 0;
      meta_cache_enabled = false;
      pending_sweep_interval = 0.0;
    }
  in
  let proxy =
    Slice.Proxy.install chost ~params
      {
        Slice.Proxy.virtual_addr = vaddr;
        dir_table = Slice.Table.create [| dhost.Host.addr |];
        smallfile_table = None;
        storage = Some (Slice.Table.create [| s0.Host.addr; s1.Host.addr |]);
        coordinator = (fun () -> None);
      }
  in
  let n = 2048 in
  let pkts =
    Array.init n (fun i ->
        Packet.make ~src:chost.Host.addr ~dst:vaddr ~sport:1000 ~dport:2049
          (Codec.encode_call ~xid:(0x100000 + i) (fst (pr9_mix i))))
  in
  let rpkts =
    Array.init n (fun i ->
        Packet.make ~src:dhost.Host.addr ~dst:chost.Host.addr ~sport:2049 ~dport:1000
          (Codec.encode_reply ~xid:(0x100000 + i) (snd (pr9_mix i))))
  in
  let batch = 128 in
  let run_batch b =
    Engine.spawn eng (fun () ->
        for i = b * batch to ((b + 1) * batch) - 1 do
          Net.send net pkts.(i)
        done);
    Engine.run eng;
    Engine.spawn eng (fun () ->
        for i = b * batch to ((b + 1) * batch) - 1 do
          Net.send net rpkts.(i)
        done);
    Engine.run eng
  in
  run_batch 0 (* warm-up: pool buffers and caches reach steady state *);
  let before =
    Slice.Proxy.packets_intercepted proxy + Slice.Proxy.replies_processed proxy
  in
  let w0 = Gc.minor_words () in
  (* lint: D1 ok — real CPU time is the measurement here, not part of the simulated world *)
  let t0 = Sys.time () in
  for b = 1 to (n / batch) - 1 do
    run_batch b
  done;
  (* lint: D1 ok — real CPU time is the measurement here, not part of the simulated world *)
  let dt = Sys.time () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let packets =
    Slice.Proxy.packets_intercepted proxy + Slice.Proxy.replies_processed proxy - before
  in
  let denom = float_of_int (max 1 packets) in
  (packets, dw /. denom, dt *. 1e9 /. denom)

let pr9_json ~packet_path:(packets, wpp, nspp)
    ~specsfs:((r : Specsfs.result), spackets, swpp, snspp) =
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ( "gates",
        Json.Obj
          [
            ("words_budget", Json.Num pr9_words_budget);
            ("baseline_words_per_packet", Json.Num pr9_baseline_words);
          ] );
      ( "packet_path",
        Json.Obj
          [
            ("packets", Json.Num (float_of_int packets));
            ("words_per_packet", Json.Num wpp);
            ("ns_per_packet", Json.Num nspp);
          ] );
      ( "specsfs_full",
        Json.Obj
          [
            ("delivered_ops_s", Json.Num r.Specsfs.delivered);
            ("ops_measured", Json.Num (float_of_int r.Specsfs.ops_measured));
            ("packets", Json.Num (float_of_int spackets));
            ("words_per_packet", Json.Num swpp);
            ("ns_per_packet", Json.Num snspp);
          ] );
    ]

(* The ratchet gates, enforced from the artifact itself so a re-validation
   from disk carries them: packets flowed on both harnesses, the direct
   packet path held under the words budget, the full-ensemble figure beat
   the recorded PR 8 baseline, and the direct path is no slower per packet
   than the full system it is a slice of. *)
let validate_pr9_json txt =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  let num k o = match Json.member k o with Some (Json.Num v) -> Some v | _ -> None in
  (match Json.of_string txt with
  | exception Json.Parse_error m -> fail ("parse error: " ^ m)
  | j -> (
      match
        ( Json.member "schema_version" j,
          Json.member "gates" j,
          Json.member "packet_path" j,
          Json.member "specsfs_full" j )
      with
      | Some (Json.Num _), Some gates, Some pp, Some sfs -> (
          match
            ( num "words_budget" gates,
              num "baseline_words_per_packet" gates,
              num "packets" pp,
              num "words_per_packet" pp,
              num "ns_per_packet" pp,
              num "packets" sfs,
              num "words_per_packet" sfs,
              num "ns_per_packet" sfs )
          with
          | Some budget, Some baseline, Some p, Some wpp, Some nspp, Some sp, Some swpp, Some snspp
            ->
              if p <= 0.0 then fail "packet_path: no packets flowed";
              if sp <= 0.0 then fail "specsfs_full: no packets intercepted";
              if not (Float.is_finite wpp && wpp >= 0.0) then
                fail "packet_path.words_per_packet not finite";
              if not (Float.is_finite nspp && nspp >= 0.0) then
                fail "packet_path.ns_per_packet not finite";
              if wpp >= budget then
                fail
                  (Printf.sprintf "packet_path words/packet %.1f over budget %.0f" wpp budget);
              if swpp >= baseline then
                fail
                  (Printf.sprintf "specsfs words/packet %.1f not under baseline %.0f" swpp
                     baseline);
              if Float.is_finite snspp && nspp > snspp then
                fail
                  (Printf.sprintf
                     "packet path slower than the full system: %.0f ns > %.0f ns" nspp snspp)
          | _ -> fail "missing numeric fields in gates/packet_path/specsfs_full")
      | _ ->
          fail "missing top-level keys {schema_version, gates, packet_path, specsfs_full}"));
  match !problem with
  | None -> true
  | Some msg ->
      Printf.eprintf "%s: validation failed: %s\n" bench_pr9_path msg;
      false

let write_pr9_json ~packet_path ~specsfs =
  let oc = open_out bench_pr9_path in
  output_string oc (Json.to_string (pr9_json ~packet_path ~specsfs));
  output_char oc '\n';
  close_out oc;
  let packets, wpp, nspp = packet_path in
  Printf.printf "\nwrote %s (%d packets, %.1f words/packet, %.0f ns/packet)\n" bench_pr9_path
    packets wpp nspp

(* ---- multi-tenant QoS storm (BENCH_PR10.json): the isolation gate.
   The three-tenant storm runs FIFO then with the full QoS stack from
   one seed; the artifact gates the interactive tenant's p99 under the
   configured bound, aggregate throughput within 5% of the FIFO run,
   and re-asserts that the PR 9 packet-path budgets are unchanged —
   QoS scheduling lives on the cold side of the allocation-free
   path. ---- *)

let bench_pr10_path = "BENCH_PR10.json"
let pr10_ratio_floor = 0.95

let pr10_json (st : E.Storm.t) =
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ( "gates",
        Json.Obj
          [
            ("p99_bound_ms", Json.Num st.E.Storm.st_p99_bound_ms);
            ("throughput_ratio_floor", Json.Num pr10_ratio_floor);
            ("pr9_words_budget", Json.Num pr9_words_budget);
            ("pr9_baseline_words_per_packet", Json.Num pr9_baseline_words);
          ] );
      ("storm", E.Storm.json_of st);
    ]

let validate_pr10_json txt =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  let num k o = match Json.member k o with Some (Json.Num v) -> Some v | _ -> None in
  (match Json.of_string txt with
  | exception Json.Parse_error m -> fail ("parse error: " ^ m)
  | j -> (
      match (Json.member "gates" j, Json.member "storm" j) with
      | Some gates, Some storm -> (
          match
            ( num "p99_bound_ms" gates,
              num "throughput_ratio_floor" gates,
              num "pr9_words_budget" gates,
              num "pr9_baseline_words_per_packet" gates,
              num "interactive_p99_on_ms" storm,
              num "interactive_p99_off_ms" storm,
              num "throughput_ratio" storm )
          with
          | ( Some bound,
              Some floor_,
              Some wb,
              Some bw,
              Some p99_on,
              Some p99_off,
              Some ratio ) ->
              (* the PR 9 ratchet must ride along unchanged: QoS stays off
                 the allocation-free packet path *)
              if wb <> pr9_words_budget then
                fail (Printf.sprintf "pr9 words budget drifted: %.1f" wb);
              if bw <> pr9_baseline_words then
                fail (Printf.sprintf "pr9 baseline words drifted: %.1f" bw);
              if not (Float.is_finite p99_off && p99_off > 0.0) then
                fail "storm: qos-off interactive p99 not positive";
              if not (Float.is_finite p99_on && p99_on > 0.0) then
                fail "storm: qos-on interactive p99 not positive";
              if p99_on > bound then
                fail
                  (Printf.sprintf "interactive p99 %.1f ms over the %.0f ms bound" p99_on bound);
              if ratio < floor_ then
                fail
                  (Printf.sprintf "aggregate throughput ratio %.3f under floor %.2f" ratio floor_);
              let side_ok label =
                match Json.member label storm with
                | Some side -> (
                    match num "total_ops" side with
                    | Some ops when ops > 0.0 -> ()
                    | _ -> fail (label ^ ": no measured ops"))
                | None -> fail ("missing storm." ^ label)
              in
              side_ok "qos_off";
              side_ok "qos_on";
              (match Json.member "qos_on" storm with
              | Some side -> (
                  match (num "admission_deferrals" side, num "p2c_probes" side) with
                  | Some d, Some p ->
                      if d <= 0.0 then fail "qos_on: admission gate never engaged";
                      if p <= 0.0 then fail "qos_on: p2c read probe never engaged"
                  | _ -> fail "qos_on: missing admission/p2c counters")
              | None -> ())
          | _ -> fail "missing numeric fields in gates/storm")
      | _ -> fail "missing top-level keys {gates, storm}"));
  match !problem with
  | None -> true
  | Some msg ->
      Printf.eprintf "%s: validation failed: %s\n" bench_pr10_path msg;
      false

let write_pr10_json st =
  let oc = open_out bench_pr10_path in
  output_string oc (Json.to_string (pr10_json st));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (p99 %.1f -> %.1f ms, ratio %.3f)\n" bench_pr10_path
    (E.Storm.interactive_p99_ms st.E.Storm.st_off)
    (E.Storm.interactive_p99_ms st.E.Storm.st_on)
    st.E.Storm.st_throughput_ratio

(* ---- ablations ---- *)

let hash_balance_ablation () =
  print_endline "\n== Ablation: MD5 vs FNV routing balance ==";
  print_endline "(the paper chose MD5 for \"balanced distribution and low cost\")";
  let n = 8 and keys = 20_000 in
  let imbalance bucket =
    let counts = Array.make n 0 in
    for i = 1 to keys do
      let k = Printf.sprintf "%Ld/file%06d" (Int64.of_int (i * 7919)) i in
      let b = bucket k n in
      counts.(b) <- counts.(b) + 1
    done;
    let mx = Array.fold_left max 0 counts and mn = Array.fold_left min max_int counts in
    float_of_int mx /. float_of_int mn
  in
  Printf.printf "  max/min bucket load over %d keys, %d sites: md5 %.3f, fnv %.3f\n" keys n
    (imbalance Slice_hash.Md5.bucket)
    (imbalance Slice_hash.Fnv.bucket)

let threshold_ablation ~scale =
  print_endline "\n== Ablation: small-file threshold offset ==";
  print_endline "untar-created small files re-read cold; threshold 0 sends all I/O to the";
  print_endline "storage array, 64 KB serves it from the small-file class:";
  List.iter
    (fun threshold ->
      let ens =
        Slice.Ensemble.create
          {
            Slice.Ensemble.default_config with
            storage_nodes = 2;
            smallfile_servers = (if threshold = 0 then 0 else 2);
            proxy_params = { Slice.Params.default with threshold };
          }
      in
      let eng = Slice.Ensemble.engine ens in
      let host, _ = Slice.Ensemble.add_client ens ~name:"c" in
      let cl = Slice_workload.Client.create host ~server:(Slice.Ensemble.virtual_addr ens) () in
      let files = max 16 (int_of_float (200.0 *. scale)) in
      let lat = ref 0.0 in
      Slice_sim.Engine.spawn eng (fun () ->
          let fhs =
            List.init files (fun i ->
                match
                  Slice_workload.Client.create_file cl Slice.Ensemble.root
                    (Printf.sprintf "f%d" i)
                with
                | Ok (fh, _) ->
                    ignore
                      (Slice_workload.Client.write_at cl fh ~off:0L
                         ~data:(Nfs.Synthetic (4096 + (i mod 8 * 4096))) ());
                    fh
                | Error _ -> failwith "setup")
          in
          ignore (Slice_workload.Client.commit cl (List.hd fhs));
          (* cold storage caches: the threshold decides whether the reads
             are served by the small-file class or go to the array *)
          Array.iter Slice_storage.Obsd.drop_caches (Slice.Ensemble.storage ens);
          let t0 = Slice_sim.Engine.now eng in
          List.iter
            (fun fh -> ignore (Slice_workload.Client.read_at cl fh ~off:0L ~count:4096))
            fhs;
          lat := (Slice_sim.Engine.now eng -. t0) /. float_of_int files);
      Slice_sim.Engine.run eng;
      Printf.printf "  threshold %6d B: avg small read %.2f ms\n" threshold (!lat *. 1e3))
    [ 0; 16384; 65536; 262144 ]

let stripe_unit_ablation ~scale =
  print_endline "\n== Ablation: stripe unit for bulk I/O ==";
  print_endline "single-client sequential read bandwidth by stripe unit:";
  List.iter
    (fun stripe_unit ->
      let ens =
        Slice.Ensemble.create
          {
            Slice.Ensemble.default_config with
            storage_nodes = 8;
            smallfile_servers = 0;
            proxy_params = { Slice.Params.default with threshold = 0; stripe_unit };
          }
      in
      let eng = Slice.Ensemble.engine ens in
      let host, _ = Slice.Ensemble.add_client ens ~name:"c" in
      let cl =
        Slice_workload.Client.create host ~server:(Slice.Ensemble.virtual_addr ens)
          ~io_size:(min stripe_unit 32768) ()
      in
      let bytes = Int64.of_float (3.2e8 *. scale) in
      let fh = { sample_fh with Fh.file_id = Int64.of_int (1000 + stripe_unit) } in
      let mbs = ref 0.0 in
      Slice_sim.Engine.spawn eng (fun () ->
          Slice_workload.Client.sequential_write cl fh ~bytes;
          Array.iter Slice_storage.Obsd.drop_caches (Slice.Ensemble.storage ens);
          let t0 = Slice_sim.Engine.now eng in
          Slice_workload.Client.sequential_read cl fh ~bytes;
          mbs := Int64.to_float bytes /. (Slice_sim.Engine.now eng -. t0) /. 1e6);
      Slice_sim.Engine.run eng;
      Printf.printf "  stripe unit %6d B: %.1f MB/s\n" stripe_unit !mbs)
    [ 8192; 32768; 131072 ]

(* ---- driver ---- *)

let parse_args () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let smoke = List.mem "--smoke" args in
  let which =
    List.filter
      (fun a ->
        List.mem a
          [
            "table2"; "table3"; "fig3"; "fig4"; "fig5"; "fig6"; "offload"; "micro"; "ablation";
            "all";
          ])
      args
  in
  ((match which with [] -> "all" | w :: _ -> w), full, smoke)

(* CI smoke: tiny-quota micro pass + a no-sweep offload point pair, then
   write BENCH_PR2.json and re-validate it from disk. Exit 1 on schema
   failure so the bench-smoke alias actually gates. *)
let run_smoke () =
  print_endline "bench smoke: micro (tiny quota) + offload (scale 0.05)";
  let micro = run_micro ~quota:0.05 () in
  let exhibits = E.Offload.compute ~scale:0.05 ~sweep:false () in
  (match exhibits with
  | off :: on :: _ ->
      Printf.printf "  offload smoke: dir ops %d -> %d (-%.0f%%)\n" off.E.Offload.dir_ops
        on.E.Offload.dir_ops
        (E.Offload.dir_reduction ~off ~on)
  | _ -> ());
  write_bench_json ~micro ~exhibits;
  if validate_bench_json (read_file bench_json_path) then
    print_endline "bench smoke: BENCH_PR2.json schema OK"
  else exit 1;
  print_endline "bench smoke: scale-out (scale 0.1)";
  let sc = E.Scale.compute ~scale:0.1 () in
  (match sc.E.Scale.phases with
  | first :: _ ->
      let last = List.nth sc.E.Scale.phases (List.length sc.E.Scale.phases - 1) in
      Printf.printf "  scale smoke: %.0f -> %.0f ops/s over %d phases, %d sites moved\n"
        first.E.Scale.ph_ops_s last.E.Scale.ph_ops_s
        (List.length sc.E.Scale.phases)
        sc.E.Scale.sites_moved
  | [] -> ());
  write_scale_json sc;
  if validate_scale_json (read_file bench_pr5_path) then
    print_endline "bench smoke: BENCH_PR5.json OK"
  else exit 1;
  print_endline "bench smoke: failover (scale 0.5)";
  let fo = E.Failover.compute ~scale:0.5 () in
  List.iter
    (fun (tk : E.Failover.takeover) ->
      Printf.printf "  failover smoke: %-11s detect %.0f ms, mttr %.0f ms, %d sites\n"
        tk.E.Failover.tk_class (tk.E.Failover.tk_detect *. 1e3) (tk.E.Failover.tk_mttr *. 1e3)
        tk.E.Failover.tk_sites)
    fo.E.Failover.takeovers;
  write_failover_json fo;
  if validate_failover_json (read_file bench_pr6_path) then
    print_endline "bench smoke: BENCH_PR6.json OK (zero requests lost)"
  else exit 1;
  print_endline "bench smoke: hot-path baseline (SPECsfs mix, scale 0.01)";
  let micro8 = pr8_micro () in
  let ((r8, packets, wpp, nspp) as sfs8) = specsfs_packet_baseline ~scale:0.01 in
  Printf.printf "  sfs baseline: %d packets, %.1f words/packet, %.0f ns/packet (%.0f ops/s)\n"
    packets wpp nspp r8.Specsfs.delivered;
  write_pr8_json ~specsfs:sfs8 ~micro:micro8;
  if validate_pr8_json (read_file bench_pr8_path) then
    print_endline "bench smoke: BENCH_PR8.json OK (hot-path baseline recorded)"
  else exit 1;
  print_endline "bench smoke: zero-allocation packet path (direct drive)";
  let ((pp_packets, pp_wpp, pp_nspp) as pp) = pr9_packet_path () in
  Printf.printf "  packet path: %d packets, %.1f words/packet, %.0f ns/packet (budget %.0f)\n"
    pp_packets pp_wpp pp_nspp pr9_words_budget;
  write_pr9_json ~packet_path:pp ~specsfs:sfs8;
  if validate_pr9_json (read_file bench_pr9_path) then
    print_endline "bench smoke: BENCH_PR9.json OK (packet path under words budget)"
  else exit 1;
  print_endline "bench smoke: multi-tenant storm (FIFO vs per-tenant QoS)";
  let st = E.Storm.compute () in
  Printf.printf
    "  storm smoke: interactive p99 %.1f -> %.1f ms (bound %.0f), aggregate kept %.1f%%\n"
    (E.Storm.interactive_p99_ms st.E.Storm.st_off)
    (E.Storm.interactive_p99_ms st.E.Storm.st_on)
    st.E.Storm.st_p99_bound_ms
    (100.0 *. st.E.Storm.st_throughput_ratio);
  write_pr10_json st;
  if validate_pr10_json (read_file bench_pr10_path) then
    print_endline "bench smoke: BENCH_PR10.json OK (tenant isolation under bound)"
  else exit 1

let () =
  let which, full, smoke = parse_args () in
  if smoke then begin
    run_smoke ();
    print_endline "\nbench: done";
    exit 0
  end;
  let want x = which = "all" || which = x in
  print_endline "Slice reproduction benchmarks (Anderson/Chase/Vahdat, OSDI 2000)";
  Printf.printf "mode: %s%s\n" which (if full then " (--full)" else "");
  let micro = if want "micro" then run_micro () else [] in
  let offload_points =
    if want "offload" then begin
      let points = E.Offload.compute ~scale:(if full then 1.0 else 0.25) () in
      E.Report.print (E.Offload.report_of points);
      points
    end
    else []
  in
  if micro <> [] || offload_points <> [] then begin
    write_bench_json ~micro ~exhibits:offload_points;
    (* partial targets legitimately leave one section empty; only a run
       that produced both gates on the schema *)
    if
      micro <> [] && offload_points <> []
      && not (validate_bench_json (read_file bench_json_path))
    then exit 1
  end;
  if want "table2" then E.Report.print (E.Table2.report ~scale:(if full then 0.4 else 0.08) ());
  if want "table3" then E.Report.print (E.Table3.report ~scale:(if full then 0.5 else 0.05) ());
  if want "fig3" then E.Report.print (E.Fig3.report ~scale:(if full then 0.1 else 0.03) ());
  if want "fig4" then E.Report.print (E.Fig4.report ~scale:(if full then 0.08 else 0.025) ());
  if want "fig5" || want "fig6" then begin
    let t =
      E.Fig5.compute
        ~scale:(if full then 0.02 else 0.006)
        ~points_per_curve:(if full then 5 else 3)
        ()
    in
    if want "fig5" then E.Report.print (E.Fig5.report_fig5 t);
    if want "fig6" then E.Report.print (E.Fig5.report_fig6 t)
  end;
  if want "ablation" then begin
    hash_balance_ablation ();
    threshold_ablation ~scale:(if full then 1.0 else 0.3);
    stripe_unit_ablation ~scale:(if full then 1.0 else 0.25)
  end;
  print_endline "\nbench: done"

(** Deterministic discrete-event simulation engine.

    Time is a [float] in seconds. Events scheduled for the same instant run
    in FIFO order of scheduling, which together with the seeded PRNG makes
    every run bit-reproducible.

    Sequential-looking simulated processes ("fibers") are built on OCaml 5
    effects: a fiber may call {!sleep} or {!suspend}, which park it without
    blocking the engine. All fiber code runs synchronously inside the event
    loop, so no locking is ever needed. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t delay f] runs [f] at [now t +. delay]. [delay < 0] is
    clamped to 0. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] at absolute [time] (clamped to now). *)

val spawn : t -> (unit -> unit) -> unit
(** [spawn t f] starts a fiber at the current time. The fiber may use
    {!sleep} and {!suspend}. Exceptions escaping a fiber abort the run. *)

(** {2 Fiber operations (only valid inside a spawned fiber)} *)

val sleep : t -> float -> unit
(** Park the calling fiber for a simulated duration. *)

val sleep_until : t -> float -> unit
(** Park the calling fiber until an absolute simulated time. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling fiber and calls
    [register waker]. The fiber resumes with [v] when [waker v] is called.
    The waker is idempotent: calls after the first are ignored, which lets
    timeout and completion paths race safely. *)

(** {2 Running} *)

val run : ?until:float -> t -> unit
(** Process events until the queue is empty, or until simulated time would
    exceed [until] (remaining events stay queued). With [until], the clock
    always advances to [until] — even if the queue drained earlier — so
    rates computed as work/elapsed see the full window. *)

val step : t -> bool
(** Process a single event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of queued events. *)

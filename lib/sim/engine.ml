type event = { time : float; seq : int; fn : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  queue : event Slice_util.Heap.t;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () = { clock = 0.0; seq = 0; queue = Slice_util.Heap.create ~cmp:compare_event }
let now t = t.clock

let schedule_at t time fn =
  let time = if time < t.clock then t.clock else time in
  t.seq <- t.seq + 1;
  Slice_util.Heap.push t.queue { time; seq = t.seq; fn }

let schedule t delay fn = schedule_at t (t.clock +. if delay < 0.0 then 0.0 else delay) fn

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

let handler =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let fired = ref false in
                let waker v =
                  if not !fired then begin
                    fired := true;
                    continue k v
                  end
                in
                register waker)
        | _ -> None);
  }

let spawn t fn = schedule t 0.0 (fun () -> Effect.Deep.match_with fn () handler)

let sleep t d =
  if d > 0.0 then suspend (fun waker -> schedule t d (fun () -> waker ()))

let sleep_until t time =
  if time > t.clock then suspend (fun waker -> schedule_at t time (fun () -> waker ()))

(* Innermost loop of the whole simulator: pop_exn + is_empty instead of
   the option-returning pop, so draining the queue allocates nothing. *)
let[@hot] step t =
  if Slice_util.Heap.is_empty t.queue then false
  else begin
    let ev = Slice_util.Heap.pop_exn t.queue in
    t.clock <- ev.time;
    (* lint: A1 ok — dispatching the event thunk is the engine's job; the closure was charged where it was created *)
    ev.fn ();
    true
  end

let run ?until t =
  let continue_run () =
    match Slice_util.Heap.peek t.queue with
    | None -> false
    | Some ev -> ( match until with None -> true | Some limit -> ev.time <= limit)
  in
  while continue_run () do
    ignore (step t)
  done;
  match until with
  | Some limit when limit > t.clock -> t.clock <- limit
  | _ -> ()

let pending t = Slice_util.Heap.length t.queue

(* The event queue is the innermost loop of the whole simulator, so it is
   built for zero steady-state allocation: event cells are mutable
   records recycled through an intrusive freelist (a popped cell goes
   straight back to the pool, its thunk cleared so the closure can be
   collected), and the binary heap is inlined over those cells with the
   (time, seq) ordering compared directly — no comparator closure, no
   option-returning peek. [run] additionally batches dispatch by
   timestamp: the clock is written once per distinct instant and every
   event carrying it drains in one inner loop, preserving exact
   (time, seq) order (same-instant events scheduled during the batch get
   larger seqs and are picked up by the same inner loop). *)

let nop () = ()

type event = {
  mutable time : float;
  mutable seq : int;
  mutable fn : unit -> unit;
  mutable next_free : event;
}

(* Cyclic sentinel: terminates the freelist without an option. *)
let rec nil = { time = 0.0; seq = 0; fn = nop; next_free = nil }

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable data : event array;
  mutable size : int;
  mutable free : event;
}

let create () = { clock = 0.0; seq = 0; data = [||]; size = 0; free = nil }
let now t = t.clock

(* Earlier event first: primary key time, tie-break by scheduling order. *)
let[@hot] before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let[@hot] rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let[@hot] rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < t.size && before t.data.(l) t.data.(i) then l else i in
  let s = if r < t.size && before t.data.(r) t.data.(s) then r else s in
  if s <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(s);
    t.data.(s) <- tmp;
    sift_down t s
  end

(* Callers guarantee [t.size > 0]. Stale array slots keep pool cells
   reachable — intended: the cells are recycled, never collected. *)
let[@hot] pop_min t =
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  top

(* Return a cell to the pool; clearing the thunk drops the only reference
   the engine holds to the caller's closure. *)
let[@hot] release t ev =
  ev.fn <- nop;
  ev.next_free <- t.free;
  t.free <- ev

(* Allocates only on pool miss — steady state recycles. *)
let acquire t =
  if t.free == nil then { time = 0.0; seq = 0; fn = nop; next_free = nil }
  else begin
    let ev = t.free in
    t.free <- ev.next_free;
    ev.next_free <- nil;
    ev
  end

let push t ev =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 256 else cap * 2 in
    let nd = Array.make ncap nil in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end;
  t.data.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let schedule_at t time fn =
  let time = if time < t.clock then t.clock else time in
  t.seq <- t.seq + 1;
  let ev = acquire t in
  ev.time <- time;
  ev.seq <- t.seq;
  ev.fn <- fn;
  push t ev

let schedule t delay fn = schedule_at t (t.clock +. if delay < 0.0 then 0.0 else delay) fn

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

let handler =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let fired = ref false in
                let waker v =
                  if not !fired then begin
                    fired := true;
                    continue k v
                  end
                in
                register waker)
        | _ -> None);
  }

let spawn t fn = schedule t 0.0 (fun () -> Effect.Deep.match_with fn () handler)

let sleep t d =
  if d > 0.0 then suspend (fun waker -> schedule t d (fun () -> waker ()))

let sleep_until t time =
  if time > t.clock then suspend (fun waker -> schedule_at t time (fun () -> waker ()))

(* Not a lint root: the indirect dispatch of the event thunk cannot be
   typed allocation-free statically (the closure was charged where it was
   created), so [step] sits just outside the [@hot] region — the pop /
   sift / release machinery it drives is rooted and zero, and the
   steady-state Gc probes keep the whole loop honest at runtime. *)
let step t =
  if t.size = 0 then false
  else begin
    let ev = pop_min t in
    t.clock <- ev.time;
    let f = ev.fn in
    release t ev;
    f ();
    true
  end

let run ?until t =
  let limit = match until with None -> Float.infinity | Some l -> l in
  while t.size > 0 && t.data.(0).time <= limit do
    (* Batch: one clock write per distinct timestamp, then drain it. *)
    let bt = t.data.(0).time in
    t.clock <- bt;
    while t.size > 0 && t.data.(0).time = bt do
      let ev = pop_min t in
      let f = ev.fn in
      release t ev;
      f ()
    done
  done;
  match until with
  | Some limit when limit > t.clock -> t.clock <- limit
  | _ -> ()

let pending t = t.size

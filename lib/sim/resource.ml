type t = {
  eng : Engine.t;
  name : string;
  free_at : float array; (* completion time of the work booked on each server *)
  stats : float array; (* [| busy; waited |] — unboxed cells, hot-path stores *)
  mutable served : int;
}

let create eng ?(capacity = 1) ~name () =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be positive";
  { eng; name; free_at = Array.make capacity 0.0; stats = [| 0.0; 0.0 |]; served = 0 }

(* Index of the server that frees earliest; FCFS because bookings happen
   in event order and each booking extends exactly one server's schedule.
   Recursive int scan instead of a [ref] — this runs per packet per NIC. *)
let rec earliest (free_at : float array) i best =
  if i >= Array.length free_at then best
  else earliest free_at (i + 1) (if free_at.(i) < free_at.(best) then i else best)

let book t service =
  let best =
    if Array.length t.free_at = 1 then 0 else earliest t.free_at 1 0
  in
  let now = Engine.now t.eng in
  let start = if t.free_at.(best) > now then t.free_at.(best) else now in
  let finish = start +. service in
  t.free_at.(best) <- finish;
  t.stats.(0) <- t.stats.(0) +. service;
  t.stats.(1) <- t.stats.(1) +. (start -. now);
  t.served <- t.served + 1;
  finish

let reserve t service = if service <= 0.0 then Engine.now t.eng else book t service

let use t service =
  if service > 0.0 then begin
    let finish = book t service in
    Engine.sleep_until t.eng finish
  end

let busy_time t = t.stats.(0)

let utilization t ~elapsed =
  if elapsed <= 0.0 then 0.0
  else t.stats.(0) /. (elapsed *. float_of_int (Array.length t.free_at))

(* Instantaneous backlog: how long a request arriving now would wait for
   a free server. The load signal behind power-of-two-choices routing —
   cumulative counters can't tell a momentarily swamped server from a
   busy-all-day one. *)
let backlog t =
  let best = if Array.length t.free_at = 1 then 0 else earliest t.free_at 1 0 in
  let wait = t.free_at.(best) -. Engine.now t.eng in
  if wait > 0.0 then wait else 0.0

let queue_delay_total t = t.stats.(1)
let served t = t.served
let name t = t.name

(** FCFS service resources for the simulation: CPUs, SCSI channels, NIC
    serializers, disk arms. A resource has [capacity] parallel servers; a
    request occupies one server for its service time, queueing in arrival
    order when all servers are busy. Utilization accounting supports the
    saturation analyses in the evaluation. *)

type t

val create : Engine.t -> ?capacity:int -> name:string -> unit -> t

val use : t -> float -> unit
(** [use r service] must be called from a fiber: waits for a free server
    (FCFS), then holds it for [service] seconds. [service <= 0] returns
    immediately without queueing. *)

val reserve : t -> float -> float
(** [reserve r service] is the non-fiber variant: books the earliest slot
    and returns the absolute completion time without parking the caller.
    Used by fire-and-forget paths (e.g. NIC egress serialization). *)

val busy_time : t -> float
(** Total busy server-seconds consumed so far. *)

val utilization : t -> elapsed:float -> float
(** [busy_time / (capacity * elapsed)], in [0, 1] (can exceed 1 only by
    rounding). *)

val queue_delay_total : t -> float
(** Accumulated time requests spent waiting for a server. *)

val backlog : t -> float
(** Seconds a request arriving now would wait for a free server (0.0 when
    one is idle). The instantaneous load signal used by
    power-of-two-choices replica routing. *)

val served : t -> int
val name : t -> string

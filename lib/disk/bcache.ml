module Engine = Slice_sim.Engine

let block_size = 8192

type backend = {
  demand_read : obj:int64 -> block:int -> count:int -> sequential:bool -> unit;
  readahead : obj:int64 -> block:int -> count:int -> unit;
  write_back : obj:int64 -> block:int -> count:int -> done_:(unit -> unit) -> unit;
  sync : unit -> unit;
}

let disk_backend eng disk =
  {
    demand_read =
      (fun ~obj:_ ~block:_ ~count ~sequential ->
        Disk.read disk ~sequential ~bytes:(count * block_size) ());
    readahead =
      (fun ~obj:_ ~block:_ ~count ->
        ignore (Disk.read_async disk ~sequential:true ~bytes:(count * block_size)));
    write_back =
      (fun ~obj:_ ~block:_ ~count ~done_ ->
        let finish =
          Disk.write_async disk ~sequential:(count > 1) ~bytes:(count * block_size)
        in
        Engine.schedule_at eng finish done_);
    sync = (fun () -> ());
  }

type key = int64 * int

type entry = { mutable dirty : bool }

type t = {
  eng : Engine.t;
  backend : backend;
  cache : (key, entry) Slice_util.Lru.t;
  last_access : (int64, int) Hashtbl.t;
  dirty_index : (int64, (int, entry) Hashtbl.t) Hashtbl.t; (* obj -> dirty blocks *)
  mutable hits : int;
  mutable misses : int;
  mutable prefetched : int;
  inflight : int ref; (* outstanding write-backs *)
  inflight_blocks : int ref;
  total_dirty : int ref;
  obj_inflight : (int64, int ref) Hashtbl.t; (* per-object outstanding *)
  obj_done : (int64, int ref) Hashtbl.t; (* per-object completed write-backs *)
  obj_waiters : (int64, (unit -> unit) list ref) Hashtbl.t;
  waiters : (unit -> unit) list ref; (* fibers parked in commit_all *)
  throttle_waiters : (unit -> unit) list ref; (* writers parked by the throttle *)
}

(* Write-behind high water: once an object accumulates this many dirty
   blocks the cache starts flushing them in the background, like the
   FreeBSD buffer daemon — so a long sequential write streams to disk
   instead of leaving one giant flush for commit. *)
let high_water_blocks = 512

(* Dirty throttle: writers stall once this much data is dirty or in
   flight, so a sustained write stream runs at the backend's sink rate
   (the buffer daemon's flow control). 32 MB per cache; stalled writers
   resume as soon as a completion frees room, so the stream runs at
   exactly the sink rate instead of convoying behind a full drain. *)
let max_outstanding_blocks = 4096

let prefetch_blocks = 32 (* 256 KB / 8 KB *)

let counter tbl obj =
  match Hashtbl.find_opt tbl obj with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl obj r;
      r

let start_write_back t ~obj ~block ~count =
  incr t.inflight;
  t.inflight_blocks := !(t.inflight_blocks) + count;
  let oc = counter t.obj_inflight obj in
  incr oc;
  t.backend.write_back ~obj ~block ~count ~done_:(fun () ->
      decr t.inflight;
      t.inflight_blocks := !(t.inflight_blocks) - count;
      decr oc;
      if !oc = 0 then Hashtbl.remove t.obj_inflight obj;
      incr (counter t.obj_done obj);
      (* commit barriers re-check their own completion predicates *)
      (match Hashtbl.find_opt t.obj_waiters obj with
      | Some ws ->
          Hashtbl.remove t.obj_waiters obj;
          List.iter (fun w -> w ()) !ws
      | None -> ());
      if !(t.total_dirty) + !(t.inflight_blocks) < max_outstanding_blocks then begin
        let ws = !(t.throttle_waiters) in
        t.throttle_waiters := [];
        List.iter (fun w -> w ()) ws
      end;
      if !(t.inflight) = 0 then begin
        let ws = !(t.waiters) in
        t.waiters := [];
        List.iter (fun w -> w ()) ws
      end)

let create eng ~backend ~capacity ~name:_ =
  (* the eviction hook needs the cache record, which needs the Lru: tie
     the knot through a forward reference *)
  let self = ref None in
  let on_evict (obj, block) (e : entry) =
    match !self with
    | None -> ()
    | Some t ->
        if e.dirty then begin
          e.dirty <- false;
          decr t.total_dirty;
          (match Hashtbl.find_opt t.dirty_index obj with
          | Some tbl -> Hashtbl.remove tbl block
          | None -> ());
          start_write_back t ~obj ~block ~count:1
        end
  in
  let t =
    {
      eng;
      backend;
      cache = Slice_util.Lru.create ~on_evict ~capacity ();
      (* lint: bounded — one row per object of the store: prefetch hint *)
      last_access = Hashtbl.create 64;
      (* lint: bounded — per-object dirty sets, drained by write-back/commit *)
      dirty_index = Hashtbl.create 16;
      hits = 0;
      misses = 0;
      prefetched = 0;
      inflight = ref 0;
      inflight_blocks = ref 0;
      total_dirty = ref 0;
      (* lint: bounded — rows removed when an object's write-backs drain *)
      obj_inflight = Hashtbl.create 16;
      (* lint: bounded — one counter row per object of the store *)
      obj_done = Hashtbl.create 16;
      (* lint: bounded — rows removed when the waiters are woken *)
      obj_waiters = Hashtbl.create 16;
      waiters = ref [];
      throttle_waiters = ref [];
    }
  in
  self := Some t;
  t

let insert t key entry = Slice_util.Lru.add t.cache ~weight:block_size key entry
(* A forward stride of up to one stripe chunk (4 blocks of 8 KB under the
   32 KB stripe unit) still reads as a sequential stream to the drive —
   this is how a client alternating between mirrors keeps triggering
   contiguous prefetch whose skipped half goes unused. *)
let sequentialish ~last ~block = block > last && block - last <= 8

let read t ~obj ~block =
  let key = (obj, block) in
  (match Slice_util.Lru.find t.cache key with
  | Some _ -> t.hits <- t.hits + 1
  | None ->
      t.misses <- t.misses + 1;
      let seq =
        match Hashtbl.find_opt t.last_access obj with
        | Some last -> sequentialish ~last ~block
        | None -> block = 0
      in
      if seq then begin
        (* Wait for the demand block only; stream the readahead window
           behind it asynchronously (FFS-style pipelined prefetch, up to
           256 KB beyond the current access). *)
        t.backend.demand_read ~obj ~block ~count:1 ~sequential:(block <> 0);
        insert t key { dirty = false };
        let run = ref 0 in
        while
          !run < prefetch_blocks - 1
          && not (Slice_util.Lru.mem t.cache (obj, block + 1 + !run))
        do
          incr run
        done;
        if !run > 0 then begin
          t.backend.readahead ~obj ~block:(block + 1) ~count:!run;
          for i = 1 to !run do
            insert t (obj, block + i) { dirty = false }
          done;
          t.prefetched <- t.prefetched + !run
        end
      end
      else begin
        t.backend.demand_read ~obj ~block ~count:1 ~sequential:false;
        insert t key { dirty = false }
      end);
  Hashtbl.replace t.last_access obj block

let dirty_tbl t obj =
  match Hashtbl.find_opt t.dirty_index obj with
  | Some tbl -> tbl
  | None ->
      (* lint: bounded — dirty blocks of one object, capped by cache capacity *)
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.dirty_index obj tbl;
      tbl

let mark_dirty t obj block (e : entry) =
  if not e.dirty then incr t.total_dirty;
  e.dirty <- true;
  Hashtbl.replace (dirty_tbl t obj) block e

let dirty_blocks_of t obj =
  match Hashtbl.find_opt t.dirty_index obj with
  | None -> []
  | Some tbl ->
      List.sort (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun b e acc -> (b, e) :: acc) tbl [])

(* Cluster contiguous dirty blocks into single transfers. *)
let flush_dirty t obj blocks =
  let tbl = dirty_tbl t obj in
  let clean b (e : entry) =
    if e.dirty then decr t.total_dirty;
    e.dirty <- false;
    Hashtbl.remove tbl b
  in
  let rec loop = function
    | [] -> ()
    | (b0, (e0 : entry)) :: rest ->
        clean b0 e0;
        let rec extend prev n = function
          | (b, (e : entry)) :: tl when b = prev + 1 ->
              clean b e;
              extend b (n + 1) tl
          | tl -> (n, tl)
        in
        let run_len, rest = extend b0 1 rest in
        start_write_back t ~obj ~block:b0 ~count:run_len;
        loop rest
  in
  loop blocks

let write t ~obj ~block =
  let key = (obj, block) in
  (match Slice_util.Lru.find t.cache key with
  | Some e ->
      t.hits <- t.hits + 1;
      mark_dirty t obj block e
  | None ->
      t.misses <- t.misses + 1;
      let e = { dirty = false } in
      insert t key e;
      mark_dirty t obj block e);
  Hashtbl.replace t.last_access obj block;
  (* background write-behind past the high-water mark *)
  if Hashtbl.length (dirty_tbl t obj) >= high_water_blocks then
    flush_dirty t obj (dirty_blocks_of t obj);
  (* Dirty throttle: stall the writer while the backend is far behind;
     re-checked on every write-back completion. Flushing the writer's own
     object here would shred streams into tiny runs (writers park
     mid-request), so when the backend goes idle we flush EVERY object's
     accumulated dirty set — each a contiguous clustered run — and let
     completions pace the writers. *)
  while !(t.total_dirty) + !(t.inflight_blocks) > max_outstanding_blocks do
    if !(t.inflight) = 0 then begin
      let objs = Hashtbl.fold (fun o _ acc -> o :: acc) t.dirty_index [] in
      List.iter (fun o -> flush_dirty t o (dirty_blocks_of t o)) objs
    end
    else
      Engine.suspend (fun wake -> t.throttle_waiters := (fun () -> wake ()) :: !(t.throttle_waiters))
  done

let wait_idle t =
  while !(t.inflight) > 0 do
    Engine.suspend (fun wake -> t.waiters := (fun () -> wake ()) :: !(t.waiters))
  done

(* Commit waits only for the write-backs of ITS object that are already
   booked when it runs — not for other streams' data, and not for writes
   that arrive later (a file can be committed while still being
   written). *)
let wait_obj_barrier t obj =
  let target = !(counter t.obj_done obj) + !(counter t.obj_inflight obj) in
  if not (Hashtbl.mem t.obj_inflight obj) then Hashtbl.remove t.obj_inflight obj;
  while !(counter t.obj_done obj) < target do
    Engine.suspend (fun wake ->
        let ws =
          match Hashtbl.find_opt t.obj_waiters obj with
          | Some ws -> ws
          | None ->
              let ws = ref [] in
              Hashtbl.replace t.obj_waiters obj ws;
              ws
        in
        ws := (fun () -> wake ()) :: !ws)
  done

let commit t ~obj =
  flush_dirty t obj (dirty_blocks_of t obj);
  wait_obj_barrier t obj;
  t.backend.sync ()

let commit_all t =
  let objs = Hashtbl.fold (fun o _ acc -> o :: acc) t.dirty_index [] in
  List.iter (fun o -> flush_dirty t o (dirty_blocks_of t o)) objs;
  wait_idle t;
  t.backend.sync ()

let invalidate_object t obj =
  let keys = ref [] in
  Slice_util.Lru.iter t.cache (fun (o, b) e ->
      if o = obj then begin
        if e.dirty then decr t.total_dirty;
        e.dirty <- false;
        keys := (o, b) :: !keys
      end);
  List.iter (Slice_util.Lru.remove t.cache) !keys;
  Hashtbl.remove t.dirty_index obj;
  Hashtbl.remove t.last_access obj

let drop_clean t =
  (* Invalidate the whole cache (e.g. to model a cold mount). Dirty data
     must have been committed first. *)
  Slice_util.Lru.clear t.cache;
  Hashtbl.reset t.dirty_index;
  Hashtbl.reset t.last_access

let hits t = t.hits
let misses t = t.misses
let prefetched_blocks t = t.prefetched
let resident_bytes t = Slice_util.Lru.size t.cache

(** Storage-node disk subsystem model: an array of disk arms behind a
    single shared SCSI channel, as in the paper's Dell 4400 storage nodes
    (eight Seagate Cheetah ST318404LC drives on one channel; "achievable
    disk bandwidth is below 75 MB/s per node because the 4400 backplane
    has a single SCSI channel for all of its internal drive bays").

    Random accesses pay positioning time (seek + rotation + controller
    overhead) on an arm; sequential accesses stream at the media rate. All
    transfers additionally serialize through the channel at its effective
    read/write rates (55 / 60 MB/s, the per-node saturation bandwidths
    measured in the paper's Table 2 discussion). *)

type params = {
  avg_seek : float;  (** seconds, average seek (Cheetah 10K: ~5.2 ms) *)
  rotational_half : float;  (** half-rotation latency (~3.0 ms at 10K RPM) *)
  media_rate : float;  (** bytes/second media transfer (~33 MB/s) *)
  controller_overhead : float;
      (** fixed per-op cost; with seek+rotation it calibrates a random
          8 KB access to ≈9.6 ms, i.e. ≈104 IOPS per arm, matching the
          paper's arm-bound SPECsfs throughput *)
  channel_read_rate : float;  (** effective node read bandwidth (55 MB/s) *)
  channel_write_rate : float;  (** effective node write bandwidth (60 MB/s) *)
}

val cheetah : params
(** Calibration used throughout the experiments. *)

type t

val create : Slice_sim.Engine.t -> ?params:params -> arms:int -> name:string -> unit -> t

val read : t -> ?span:Slice_trace.Trace.span -> sequential:bool -> bytes:int -> unit -> unit
(** Fiber: performs a read, waiting for arm and channel.  A live [span]
    gets a completed ["disk"] child covering the device busy interval. *)

val write : t -> ?span:Slice_trace.Trace.span -> sequential:bool -> bytes:int -> unit -> unit

val read_async : t -> sequential:bool -> bytes:int -> float
(** Books the work and returns its absolute completion time without
    parking — used for prefetch issued beyond the demand request. *)

val write_async : t -> sequential:bool -> bytes:int -> float
(** Write-behind: books the transfer; the caller's commit path waits on
    the returned completion time. *)

val ops : t -> int
val bytes_transferred : t -> int
val arm_busy_time : t -> float

val backlog : t -> float
(** Seconds until the earliest arm frees up — an instantaneous load
    gauge over the array (0 when an arm is idle). *)


val channel_busy_time : t -> float
val arms : t -> int

module Engine = Slice_sim.Engine
module Resource = Slice_sim.Resource
module Trace = Slice_trace.Trace

type params = {
  avg_seek : float;
  rotational_half : float;
  media_rate : float;
  controller_overhead : float;
  channel_read_rate : float;
  channel_write_rate : float;
}

let cheetah =
  {
    avg_seek = 5.2e-3;
    rotational_half = 3.0e-3;
    media_rate = 33e6;
    controller_overhead = 1.2e-3;
    channel_read_rate = 55e6;
    channel_write_rate = 60e6;
  }

type t = {
  eng : Engine.t;
  p : params;
  arms : Resource.t;
  channel : Resource.t;
  n_arms : int;
  name : string;
  mutable ops : int;
  mutable bytes : int;
}

let create eng ?(params = cheetah) ~arms ~name () =
  {
    eng;
    p = params;
    arms = Resource.create eng ~capacity:arms ~name:(name ^ ".arms") ();
    channel = Resource.create eng ~name:(name ^ ".chan") ();
    n_arms = arms;
    name;
    ops = 0;
    bytes = 0;
  }

let arm_service t ~sequential ~bytes =
  let positioning =
    if sequential then 0.0 else t.p.avg_seek +. t.p.rotational_half +. t.p.controller_overhead
  in
  positioning +. (float_of_int bytes /. t.p.media_rate)

let channel_service t ~is_read ~bytes =
  float_of_int bytes /. (if is_read then t.p.channel_read_rate else t.p.channel_write_rate)

let account t bytes =
  t.ops <- t.ops + 1;
  t.bytes <- t.bytes + bytes

let book t ~is_read ~sequential ~bytes =
  account t bytes;
  let arm_done = Resource.reserve t.arms (arm_service t ~sequential ~bytes) in
  (* Channel transfer starts once the arm has the data (read) or feeds the
     arm (write); we serialize arm-then-channel for reads and
     channel-then-arm for writes, which is equivalent for busy-time. *)
  let chan = channel_service t ~is_read ~bytes in
  let chan_done = Resource.reserve t.channel chan in
  Float.max arm_done chan_done

let traced t span ~start finish =
  Trace.emit span ~hop:"disk" ~site:t.name ~start ~stop:finish ()

let read t ?(span = Trace.null) ~sequential ~bytes () =
  let start = Engine.now t.eng in
  let finish = book t ~is_read:true ~sequential ~bytes in
  traced t span ~start finish;
  Engine.sleep_until t.eng finish

let write t ?(span = Trace.null) ~sequential ~bytes () =
  let start = Engine.now t.eng in
  let finish = book t ~is_read:false ~sequential ~bytes in
  traced t span ~start finish;
  Engine.sleep_until t.eng finish

let read_async t ~sequential ~bytes = book t ~is_read:true ~sequential ~bytes
let write_async t ~sequential ~bytes = book t ~is_read:false ~sequential ~bytes
let ops t = t.ops
let bytes_transferred t = t.bytes
let arm_busy_time t = Resource.busy_time t.arms
let backlog t = Resource.backlog t.arms
let channel_busy_time t = Resource.busy_time t.channel
let arms t = t.n_arms

(** Write-ahead log.

    Slice file managers are dataless: "each manager journals its updates
    in a write-ahead log; the system can recover the state of any manager
    from its backing objects together with its log". This module provides
    that journal: CRC-guarded records appended in memory and hardened by
    group commit to a (modeled) disk. Recovery replays records in LSN
    order and stops cleanly at a torn or corrupt tail.

    The log image is an explicit byte string, so tests can crash a server
    at an arbitrary byte boundary and recover from the prefix. *)

type t

val create :
  ?eng:Slice_sim.Engine.t ->
  ?disk:Slice_disk.Disk.t ->
  ?sync_fn:(int -> unit) ->
  name:string ->
  unit ->
  t
(** Without [eng]/[disk]/[sync_fn], [sync] completes instantly (pure
    logical log for unit tests). With [eng] and [disk], sync charges a
    sequential disk write of the unsynced bytes and parks the calling
    fiber. With [eng] and [sync_fn], sync calls [sync_fn byte_count] from
    a fiber — the hook dataless managers use to journal onto the network
    storage array. [eng] without a disk or sync_fn is [invalid_arg]: an
    engine only makes sense with a sink to drive (this combination used
    to silently fall back to the instant log, skipping group commit).
    Either way syncs are {e group commits}: one fiber leads a round
    covering all pending records; concurrent callers wait for the round
    that covers theirs. *)

val append : t -> rtype:int -> string -> int64
(** [append t ~rtype payload] buffers a record, returning its LSN.
    Not stable until {!sync}. *)

val sync : ?span:Slice_trace.Trace.span -> t -> unit
(** Fiber (when disk-backed): force buffered records stable.  A live
    [span] gets a ["wal"] child covering the commit round this caller
    led (fibers that join an in-flight round record the round they then
    lead, if any). *)

val synced_lsn : t -> int64
(** Highest LSN guaranteed stable. 0 when nothing is synced. *)

val next_lsn : t -> int64
val bytes_appended : t -> int
val sync_count : t -> int

val checkpoint : t -> unit
(** Discard the log prefix (the owner has made its backing objects
    reflect all logged updates). *)

val image : t -> string
(** The stable on-disk image: synced records only. *)

val crash_image : t -> keep_unsynced_bytes:int -> string
(** Stable image plus the first [keep_unsynced_bytes] of unsynced data —
    a torn-write crash picture for recovery tests. *)

val replay : string -> (lsn:int64 -> rtype:int -> string -> unit) -> int
(** [replay image f] applies every intact record in order and returns the
    count, ignoring any trailing garbage (torn tail). *)

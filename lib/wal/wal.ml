module Engine = Slice_sim.Engine
module Trace = Slice_trace.Trace

let record_magic = 0x57414C52l (* "WALR" *)

type sink =
  | Immediate
  | Disk of Engine.t * Slice_disk.Disk.t
  | Fn of Engine.t * (int -> unit)

type t = {
  sink : sink;
  name : string;
  stable : Buffer.t; (* synced image *)
  pending : Buffer.t; (* appended but not yet synced *)
  mutable lsn : int64;
  mutable synced : int64;
  mutable appended_bytes : int;
  mutable syncs : int;
  mutable sync_inflight : bool;
  mutable sync_waiters : (unit -> unit) list;
}

let make name sink =
  {
    sink;
    name;
    stable = Buffer.create 4096;
    pending = Buffer.create 1024;
    lsn = 0L;
    synced = 0L;
    appended_bytes = 0;
    syncs = 0;
    sync_inflight = false;
    sync_waiters = [];
  }

let create ?eng ?disk ?sync_fn ~name () =
  match (eng, disk, sync_fn) with
  | Some eng, Some disk, None -> make name (Disk (eng, disk))
  | Some eng, None, Some fn -> make name (Fn (eng, fn))
  | None, None, None -> make name Immediate
  | Some _, None, None ->
      (* Silently dropping the engine here used to skip group commit
         entirely — an engine only makes sense with a sink to drive. *)
      invalid_arg "Wal.create: an engine needs a disk or a sync_fn"
  | _ -> invalid_arg "Wal.create: give a disk or a sync_fn, not both"

(* Record: magic(4) lsn(8) rtype(4) len(4) payload crc(4); crc covers
   magic..payload. *)
let encode_record ~lsn ~rtype payload =
  let len = String.length payload in
  let b = Bytes.create (24 + len) in
  Bytes.set_int32_be b 0 record_magic;
  Bytes.set_int64_be b 4 lsn;
  Bytes.set_int32_be b 12 (Int32.of_int rtype);
  Bytes.set_int32_be b 16 (Int32.of_int len);
  Bytes.blit_string payload 0 b 20 len;
  let crc = Slice_hash.Crc32.bytes b ~pos:0 ~len:(20 + len) in
  Bytes.set_int32_be b (20 + len) crc;
  Bytes.unsafe_to_string b

let append t ~rtype payload =
  t.lsn <- Int64.add t.lsn 1L;
  let rec_bytes = encode_record ~lsn:t.lsn ~rtype payload in
  Buffer.add_string t.pending rec_bytes;
  t.appended_bytes <- t.appended_bytes + String.length rec_bytes;
  t.lsn

let wait_round t eng =
  Engine.suspend (fun wake ->
      ignore eng;
      t.sync_waiters <- (fun () -> wake ()) :: t.sync_waiters)

let wake_waiters t =
  let ws = t.sync_waiters in
  t.sync_waiters <- [];
  List.iter (fun w -> w ()) ws

(* Group commit: one fiber leads a round covering everything pending;
   fibers arriving mid-round wait and (if anything new is pending) lead
   the next round. A record is stable exactly when [sync] returns to the
   fiber that appended it. *)
let rec sync ?(span = Trace.null) t =
  match t.sink with
  | Immediate ->
      if Buffer.length t.pending > 0 then begin
        Buffer.add_buffer t.stable t.pending;
        Buffer.clear t.pending;
        t.synced <- t.lsn;
        t.syncs <- t.syncs + 1
      end
  | Disk (eng, disk) ->
      sync_round t eng span (fun sp n ->
          Slice_disk.Disk.write disk ~span:sp ~sequential:true ~bytes:n ())
  | Fn (eng, fn) -> sync_round t eng span (fun _sp n -> fn n)

and sync_round t eng span write =
  if t.sync_inflight then begin
    wait_round t eng;
    sync ~span t
  end
  else if Buffer.length t.pending > 0 then begin
    t.sync_inflight <- true;
    let data = Buffer.contents t.pending in
    let covered_lsn = t.lsn in
    Buffer.clear t.pending;
    let sp = Trace.child span ~hop:"wal" ~site:t.name () in
    write sp (String.length data);
    Trace.finish sp;
    Buffer.add_string t.stable data;
    if Int64.compare covered_lsn t.synced > 0 then t.synced <- covered_lsn;
    t.syncs <- t.syncs + 1;
    t.sync_inflight <- false;
    wake_waiters t
  end

let synced_lsn t = t.synced
let next_lsn t = Int64.add t.lsn 1L
let bytes_appended t = t.appended_bytes
let sync_count t = t.syncs

let checkpoint t =
  Buffer.clear t.stable;
  Buffer.clear t.pending;
  t.synced <- t.lsn

let image t = Buffer.contents t.stable

let crash_image t ~keep_unsynced_bytes =
  let unsynced = Buffer.contents t.pending in
  let keep = min keep_unsynced_bytes (String.length unsynced) in
  Buffer.contents t.stable ^ String.sub unsynced 0 keep

let replay img f =
  let buf = Bytes.unsafe_of_string img in
  let total = Bytes.length buf in
  let rec loop pos count =
    if pos + 24 > total then count
    else if Bytes.get_int32_be buf pos <> record_magic then count
    else begin
      let lsn = Bytes.get_int64_be buf (pos + 4) in
      let rtype = Int32.to_int (Bytes.get_int32_be buf (pos + 12)) in
      let len = Int32.to_int (Bytes.get_int32_be buf (pos + 16)) in
      if len < 0 || pos + 24 + len > total then count
      else begin
        let crc = Bytes.get_int32_be buf (pos + 20 + len) in
        if Slice_hash.Crc32.bytes buf ~pos ~len:(20 + len) <> crc then count
        else begin
          let payload = Bytes.sub_string buf (pos + 20) len in
          f ~lsn ~rtype payload;
          loop (pos + 24 + len) (count + 1)
        end
      end
    end
  in
  loop 0 0

module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Bcache = Slice_disk.Bcache
module Host = Slice_storage.Host
module Nfs_endpoint = Slice_storage.Nfs_endpoint

let block_size = Bcache.block_size

type finfo = {
  mutable attr : Nfs.fattr;
  mutable entry_count : int;
  mutable symlink : string option;
  data : (int, string) Hashtbl.t; (* materialized blocks of real bytes *)
}

type t = {
  host : Host.t;
  cache : Bcache.t option; (* None = MFS *)
  files : (int64, finfo) Hashtbl.t;
  entries : (int64 * string, Fh.t) Hashtbl.t;
  dir_index : (int64, (string, Fh.t) Hashtbl.t) Hashtbl.t;
  mutable next_file : int;
  mutable ops : int;
}

let root_fh = Fh.root

let now t = Engine.now t.host.Host.eng

let mint t ~ftype =
  t.next_file <- t.next_file + 1;
  { Fh.file_id = Int64.of_int (t.next_file * 17); gen = 1; ftype; mirrored = false; attr_site = 0; cap = 0L }

let finfo_of t fid = Hashtbl.find_opt t.files fid

let new_finfo t ~ftype ~fileid =
  let fi =
    {
      attr = Nfs.default_attr ~ftype ~fileid ~now:(now t);
      entry_count = 0;
      symlink = None;
      data = Hashtbl.create 4; (* lint: bounded — per-file blocks, capped by the file's size *)
    }
  in
  Hashtbl.replace t.files fileid fi;
  fi

let dir_tbl t fid =
  match Hashtbl.find_opt t.dir_index fid with
  | Some tbl -> tbl
  | None ->
      (* lint: bounded — per-directory entries; the monolithic baseline holds the volume by design *)
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.dir_index fid tbl;
      tbl

let attr_of (fi : finfo) =
  match fi.attr.Nfs.ftype with
  | Fh.Dir ->
      { fi.attr with size = Int64.of_int (fi.entry_count * 24); used = Int64.of_int (fi.entry_count * 24) }
  | _ -> fi.attr

let touch_blocks t fid ~off ~len ~write =
  match t.cache with
  | None -> ()
  | Some cache ->
      let first = Int64.to_int (Int64.div off (Int64.of_int block_size)) in
      let last =
        if len = 0 then first - 1
        else Int64.to_int (Int64.div (Int64.add off (Int64.of_int (len - 1))) (Int64.of_int block_size))
      in
      for b = first to last do
        if write then Bcache.write cache ~obj:fid ~block:b else Bcache.read cache ~obj:fid ~block:b
      done

let store_real (fi : finfo) ~off data =
  (* keep it simple: block-aligned string fragments *)
  let len = String.length data in
  let rec loop pos =
    if pos < len then begin
      let abs = Int64.to_int off + pos in
      let blk = abs / block_size in
      let in_blk = abs mod block_size in
      let n = min (block_size - in_blk) (len - pos) in
      let cur =
        match Hashtbl.find_opt fi.data blk with
        | Some s -> Bytes.of_string s
        | None -> Bytes.make block_size '\000'
      in
      Bytes.blit_string data pos cur in_blk n;
      Hashtbl.replace fi.data blk (Bytes.to_string cur);
      loop (pos + n)
    end
  in
  loop 0

let load_real (fi : finfo) ~off ~count =
  let first = Int64.to_int off / block_size in
  let last = (Int64.to_int off + count - 1) / block_size in
  let all = ref (count > 0) in
  for b = first to last do
    if not (Hashtbl.mem fi.data b) then all := false
  done;
  if not !all then None
  else begin
    let out = Bytes.create count in
    let rec loop pos =
      if pos < count then begin
        let abs = Int64.to_int off + pos in
        let blk = abs / block_size in
        let in_blk = abs mod block_size in
        let n = min (block_size - in_blk) (count - pos) in
        Bytes.blit_string (Hashtbl.find fi.data blk) in_blk out pos n;
        loop (pos + n)
      end
    in
    loop 0;
    Some (Bytes.unsafe_to_string out)
  end

let with_file t fh k =
  match finfo_of t fh.Fh.file_id with Some fi -> k fi | None -> Error Nfs.ERR_STALE

let with_entry t dfh name k =
  match Hashtbl.find_opt t.entries (dfh.Fh.file_id, name) with
  | Some child -> k child
  | None -> Error Nfs.ERR_NOENT

let add_entry t (dfh : Fh.t) name child =
  Hashtbl.replace t.entries (dfh.Fh.file_id, name) child;
  Hashtbl.replace (dir_tbl t dfh.Fh.file_id) name child;
  match finfo_of t dfh.Fh.file_id with
  | Some fi ->
      fi.entry_count <- fi.entry_count + 1;
      fi.attr <- { fi.attr with mtime = now t }
  | None -> ()

let remove_entry t (dfh : Fh.t) name =
  Hashtbl.remove t.entries (dfh.Fh.file_id, name);
  (match Hashtbl.find_opt t.dir_index dfh.Fh.file_id with
  | Some tbl -> Hashtbl.remove tbl name
  | None -> ());
  match finfo_of t dfh.Fh.file_id with
  | Some fi ->
      fi.entry_count <- fi.entry_count - 1;
      fi.attr <- { fi.attr with mtime = now t }
  | None -> ()

let do_create t dfh name ~ftype ~symlink =
  if dfh.Fh.ftype <> Fh.Dir then Error Nfs.ERR_NOTDIR
  else if Hashtbl.mem t.entries (dfh.Fh.file_id, name) then Error Nfs.ERR_EXIST
  else begin
    let fh = mint t ~ftype in
    let fi = new_finfo t ~ftype ~fileid:fh.Fh.file_id in
    fi.symlink <- symlink;
    add_entry t dfh name fh;
    Ok (fh, attr_of fi)
  end

let handle t (call : Nfs.call) : Nfs.response =
  t.ops <- t.ops + 1;
  match call with
  | Nfs.Null -> Ok Nfs.RNull
  | Nfs.Getattr fh -> with_file t fh (fun fi -> Ok (Nfs.RGetattr (attr_of fi)))
  | Nfs.Access (fh, m) -> with_file t fh (fun fi -> Ok (Nfs.RAccess (m, attr_of fi)))
  | Nfs.Setattr (fh, s) ->
      with_file t fh (fun fi ->
          fi.attr <- Nfs.apply_sattr fi.attr s ~now:(now t);
          (match s.Nfs.set_size with
          | Some nsz ->
              let keep = Int64.to_int nsz / block_size in
              Hashtbl.iter
                (fun b _ -> if b > keep then Hashtbl.remove fi.data b)
                (Hashtbl.copy fi.data)
          | None -> ());
          Ok (Nfs.RSetattr (attr_of fi)))
  | Nfs.Lookup (dfh, name) ->
      if dfh.Fh.ftype <> Fh.Dir then Error Nfs.ERR_NOTDIR
      else
        with_entry t dfh name (fun child ->
            with_file t child (fun fi -> Ok (Nfs.RLookup (child, attr_of fi))))
  | Nfs.Readlink fh ->
      with_file t fh (fun fi ->
          match fi.symlink with
          | Some target -> Ok (Nfs.RReadlink (target, attr_of fi))
          | None -> Error Nfs.ERR_IO)
  | Nfs.Create (dfh, name) -> (
      match do_create t dfh name ~ftype:Fh.Reg ~symlink:None with
      | Ok (fh, a) -> Ok (Nfs.RCreate (fh, a))
      | Error st -> Error st)
  | Nfs.Mkdir (dfh, name) -> (
      match do_create t dfh name ~ftype:Fh.Dir ~symlink:None with
      | Ok (fh, a) -> Ok (Nfs.RMkdir (fh, a))
      | Error st -> Error st)
  | Nfs.Symlink (dfh, name, target) -> (
      match do_create t dfh name ~ftype:Fh.Lnk ~symlink:(Some target) with
      | Ok (fh, a) -> Ok (Nfs.RSymlink (fh, a))
      | Error st -> Error st)
  | Nfs.Remove (dfh, name) ->
      with_entry t dfh name (fun child ->
          if child.Fh.ftype = Fh.Dir then Error Nfs.ERR_ISDIR
          else begin
            remove_entry t dfh name;
            (match finfo_of t child.Fh.file_id with
            | Some fi ->
                fi.attr <- { fi.attr with nlink = fi.attr.Nfs.nlink - 1 };
                if fi.attr.Nfs.nlink <= 0 then begin
                  Hashtbl.remove t.files child.Fh.file_id;
                  match t.cache with
                  | Some c -> Bcache.invalidate_object c child.Fh.file_id
                  | None -> ()
                end
            | None -> ());
            Ok Nfs.RRemove
          end)
  | Nfs.Rmdir (dfh, name) ->
      with_entry t dfh name (fun child ->
          if child.Fh.ftype <> Fh.Dir then Error Nfs.ERR_NOTDIR
          else
            match finfo_of t child.Fh.file_id with
            | Some fi when fi.entry_count > 0 -> Error Nfs.ERR_NOTEMPTY
            | _ ->
                remove_entry t dfh name;
                Hashtbl.remove t.files child.Fh.file_id;
                Ok Nfs.RRmdir)
  | Nfs.Rename (od, on, nd, nn) ->
      with_entry t od on (fun child ->
          if Hashtbl.mem t.entries (nd.Fh.file_id, nn) then Error Nfs.ERR_EXIST
          else begin
            remove_entry t od on;
            add_entry t nd nn child;
            Ok Nfs.RRename
          end)
  | Nfs.Link (file, nd, nn) ->
      with_file t file (fun fi ->
          if Hashtbl.mem t.entries (nd.Fh.file_id, nn) then Error Nfs.ERR_EXIST
          else begin
            add_entry t nd nn file;
            fi.attr <- { fi.attr with nlink = fi.attr.Nfs.nlink + 1; ctime = now t };
            Ok (Nfs.RLink (attr_of fi))
          end)
  | Nfs.Readdir (dfh, cookie, count) ->
      if dfh.Fh.ftype <> Fh.Dir then Error Nfs.ERR_NOTDIR
      else begin
        let names =
          match Hashtbl.find_opt t.dir_index dfh.Fh.file_id with
          | None -> []
          | Some tbl -> List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
        in
        let total = List.length names in
        let start = Int64.to_int cookie in
        let entries =
          List.filteri (fun i _ -> i >= start && i < start + count) names
          |> List.mapi (fun j (name, (child : Fh.t)) ->
                 {
                   Nfs.entry_id = child.Fh.file_id;
                   entry_name = name;
                   entry_cookie = Int64.of_int (start + j + 1);
                 })
        in
        let next = min total (start + count) in
        Ok (Nfs.RReaddir (entries, Int64.of_int next, next >= total))
      end
  | Nfs.Read (fh, off, count) ->
      with_file t fh (fun fi ->
          let avail = Int64.sub fi.attr.Nfs.size off in
          let count =
            if Int64.compare avail 0L <= 0 then 0
            else min count (Int64.to_int (min avail (Int64.of_int count)))
          in
          touch_blocks t fh.Fh.file_id ~off ~len:count ~write:false;
          fi.attr <- { fi.attr with atime = now t };
          let eof = Int64.compare (Int64.add off (Int64.of_int count)) fi.attr.Nfs.size >= 0 in
          let data =
            if count = 0 then Nfs.Data ""
            else
              match load_real fi ~off ~count with
              | Some s -> Nfs.Data s
              | None -> Nfs.Synthetic count
          in
          Ok (Nfs.RRead (data, eof, attr_of fi)))
  | Nfs.Write (fh, off, stable, data) ->
      with_file t fh (fun fi ->
          let len = Nfs.wdata_length data in
          touch_blocks t fh.Fh.file_id ~off ~len ~write:true;
          (match data with Nfs.Data s -> store_real fi ~off s | Nfs.Synthetic _ -> ());
          let fin = Int64.add off (Int64.of_int len) in
          if Int64.compare fin fi.attr.Nfs.size > 0 then
            fi.attr <- { fi.attr with size = fin; used = fin };
          fi.attr <- { fi.attr with mtime = now t };
          (match (stable, t.cache) with
          | Nfs.Unstable, _ | _, None -> ()
          | _, Some c -> Bcache.commit c ~obj:fh.Fh.file_id);
          Ok (Nfs.RWrite (len, stable, attr_of fi)))
  | Nfs.Commit (fh, _, _) ->
      with_file t fh (fun fi ->
          (match t.cache with Some c -> Bcache.commit c ~obj:fh.Fh.file_id | None -> ());
          Ok (Nfs.RCommit (attr_of fi)))
  | Nfs.Fsstat _ ->
      Ok
        (Nfs.RFsstat
           {
             total_bytes = 144_000_000_000L;
             free_bytes = 100_000_000_000L;
             total_files = 10_000_000L;
             free_files = 9_000_000L;
           })

let attach host ?(port = 2049) ?(cache_bytes = 512 * 1024 * 1024) ?per_op_cpu
    ?(mem_only = false) () =
  let cache =
    if mem_only then None
    else
      let disk = Host.disk_exn host in
      Some
        (Bcache.create host.Host.eng
           ~backend:(Bcache.disk_backend host.Host.eng disk)
           ~capacity:cache_bytes ~name:(Host.name host))
  in
  let per_op = match per_op_cpu with Some c -> c | None -> if mem_only then 120e-6 else 150e-6 in
  let t =
    {
      host;
      cache;
      (* lint: bounded — volume state: the monolithic baseline holds the whole FS by design *)
      files = Hashtbl.create 4096;
      (* lint: bounded — volume state: the monolithic baseline holds the whole FS by design *)
      entries = Hashtbl.create 4096;
      (* lint: bounded — one row per directory, dropped with the directory *)
      dir_index = Hashtbl.create 256;
      next_file = 100;
      ops = 0;
    }
  in
  (* install the exported volume root *)
  ignore (new_finfo t ~ftype:Fh.Dir ~fileid:root_fh.Fh.file_id);
  Nfs_endpoint.serve host ~port ~cost:{ per_op; per_byte = 3e-9 } ~handler:(fun _span call -> handle t call) ();
  t

let addr t = t.host.Host.addr
let root _t = root_fh
let ops_served t = t.ops
let file_count t = Hashtbl.length t.files

type klass = Dir | Smallfile | Storage

type t =
  | Add_server of klass
  | Remove_server of klass * int
  | Rebalance
  | Takeover of klass * int * int

let klass_name = function
  | Dir -> "dir"
  | Smallfile -> "smallfile"
  | Storage -> "storage"

let klass_of_name = function
  | "dir" -> Some Dir
  | "smallfile" -> Some Smallfile
  | "storage" -> Some Storage
  | _ -> None

let describe = function
  | Add_server k -> Printf.sprintf "add %s server" (klass_name k)
  | Remove_server (k, i) -> Printf.sprintf "remove %s server %d" (klass_name k) i
  | Rebalance -> "rebalance all classes"
  | Takeover (k, victim, standby) ->
      Printf.sprintf "take over %s server %d onto %d" (klass_name k) victim standby

(** Online reconfiguration control plane: elastic scaling,
    logical-site migration and load-driven rebalancing.

    The Slice routing tables map many {e logical sites} to few physical
    servers precisely so that reconfiguration is a table edit rather
    than a rehash (Section 3.3.1: "multiple logical sites may map to the
    same physical server, leaving flexibility for reconfiguration").
    This module is the external agent the paper leaves implicit: it
    decides which sites move, migrates their state, and republishes the
    tables — all under live load, on the simulated clock.

    {2 Migration state machine}

    Every site move runs the same four phases:

    + {b Intend} — a Begin record (class, site, donor, receiver) is
      forced to the coordinator intent log before anything changes, so
      {!recover} can always roll an interrupted move back.
    + {b Drain} — the donor keeps answering reads for the moving site
      but bounces mutations with [SLICE_MISDIRECTED]. µProxies back off
      and retry; because the routing table has not changed yet, the
      retries keep landing on the donor until commit.
    + {b Copy} — directory sites stream the donor's journal and replay
      it on the receiver (a second delta pass picks up records admitted
      during the copy); small-file and storage sites copy their backing
      fragments/objects. The transfer occupies simulated time
      proportional to the bytes moved at the configured bandwidth.
    + {b Commit} — atomically (no intervening simulated events): the
      delta is applied, the receiver takes ownership, the donor
      disowns and drops the site, the routing table rebinds the site
      (one version bump), and a Commit record seals the intent. µProxies
      refresh lazily on their next bounce, exactly as for any stale
      snapshot.

    Epoch safety falls out of ownership gating: after commit the donor
    no longer owns the site, so a straggler request routed by a
    pre-commit snapshot bounces instead of mutating ghost state.

    {2 Crash matrix}

    The copy phase is the only window containing simulated-time gaps.
    If the donor or receiver is down when commit is reached, the move
    {e aborts}: the drain mark is lifted (a donor crash already cleared
    it — drains are volatile) and the table never changes, so the site
    is wholly on the donor. The receiver imported nothing: all state
    transfer happens inside the atomic commit step. A control-plane
    crash (modelled by the [abandon] fault-injection hook) leaves a
    dangling Begin intent; {!recover} replays the log and rolls every
    unsealed intent back to the donor. In no schedule is a site ever
    split across, or owned by, two servers. *)

type t

exception Abandoned
(** Raised internally by the [abandon] fault-injection hook; {!execute}
    catches it, leaving the in-flight migration dangling for
    {!recover} to roll back. *)

val attach : ?bandwidth:float -> ?trace:Slice_trace.Trace.t -> Slice.Ensemble.t -> t
(** Attach a control plane to a live ensemble. [bandwidth] is the
    modelled migration copy rate in bytes per simulated second
    (default 50 MB/s — a throttled background stream that leaves
    capacity for foreground traffic). With [trace], every migration
    opens a [migrate.<class>] span finished with the commit/abort
    outcome. *)

val execute : ?abandon:[ `After_begin ] -> t -> Plan.t -> unit
(** Run a plan to completion. Must be called from a fiber of the
    ensemble's engine (migrations sleep for the modelled copy time).
    Migrations within a plan run sequentially in ascending site order —
    the control plane is single-threaded by design, so plans serialize.

    [abandon:`After_begin] is a fault-injection hook: the first
    migration stops dead after logging its intent and starting the
    drain, simulating a control-plane crash mid-move (state is left
    dangling; use {!recover}).

    @raise Invalid_argument for a plan naming a class the ensemble does
    not run (e.g. [Add_server Smallfile] with no small-file servers),
    or a [Remove_server] index out of range / naming the last server
    of its class. *)

val takeover : t -> Plan.klass -> victim:int -> standby:int -> int
(** Hot-standby failover ([Plan.Takeover] as a direct call): claim every
    logical site of the class's dead server [victim] for [standby] —
    per site: log a Begin intent, rebuild the site's state from shared
    storage (directory journal replay, small-file zone images), bind the
    site to the standby, seal with Commit — then advance the class
    table's fencing epoch exactly once. No drain phase, no donor-liveness
    check; the dead donor keeps its (unreachable) ownership bits and is
    stopped by fencing, not by control-plane writes to a machine just
    declared unreachable. Returns the number of sites claimed. A standby
    that crashes mid-takeover leaves dangling Begin intents for
    {!recover} exactly like an abandoned migration; a re-run converges
    (journal replay is idempotent).
    @raise Invalid_argument for the storage class (storage sites are not
    dataless), out-of-range indices, or [victim = standby]. *)

val recover : t -> unit
(** Replay the intent log and roll back every Begin not sealed by a
    Commit or Abort: lift the drain, restore donor ownership, disown
    and drop the receiver's copy, rebind the table to the donor (a
    no-op unless the crash landed inside commit, which the atomic
    commit step makes impossible — the rebind is belt and braces), and
    seal the intent with an Abort record. Idempotent; a no-op on a
    clean log. *)

val metrics : t -> Slice_util.Metrics.t
(** The control plane's registry: [reconfig.migrations],
    [reconfig.sites_moved], [reconfig.aborted], [reconfig.bytes_copied],
    a [reconfig.drain_bounces] gauge summing every server's
    drain-bounce counter, and per-site [reconfig.load.<class>.<site>]
    gauges over the owners' load counters — the inputs to
    {!Plan.Rebalance}'s placement decision. *)

val migrations : t -> int
(** Migrations started (including aborted and abandoned ones). *)

val sites_moved : t -> int
(** Migrations committed. *)

val aborted : t -> int
(** Migrations aborted (liveness check failed at commit) or rolled
    back by {!recover}. *)

val bytes_copied : t -> int64
(** Total bytes of site state streamed by committed migrations. *)

val drain_bounces : t -> int
(** Mutations bounced by draining donors, summed over all servers of
    all classes. *)

val log_image : t -> string
(** The intent log's byte image (tests inspect it; a real deployment
    would keep it on the coordinator's stable storage). *)

(** Reconfiguration plans: the operator-facing vocabulary of the online
    control plane. A plan names {e intent} ("grow the storage class");
    {!Reconfig.execute} turns it into a deterministic sequence of
    logical-site migrations. *)

type klass = Dir | Smallfile | Storage
(** The three request classes of the Slice ensemble, each with its own
    routing table and logical-site space. *)

type t =
  | Add_server of klass
      (** Provision one more server of the class and rebalance the
          class's logical sites onto it. The new server joins owning no
          sites; everything it serves arrives by migration. *)
  | Remove_server of klass * int
      (** Decommission server [idx] of the class: migrate every logical
          site it owns to the remaining servers, leaving it empty. The
          host stays in the ensemble but receives no further traffic
          once the routing table stops naming it. *)
  | Rebalance
      (** Re-spread the logical sites of every class by observed
          per-site load (least-loaded-bucket greedy with a
          keep-in-place tie-break, so a balanced ensemble is a fixed
          point and repeated rebalances are idempotent). *)
  | Takeover of klass * int * int
      (** [Takeover (k, victim, standby)]: hot-standby failover — claim
          every logical site of the class's dead server [victim] for
          server [standby], rebuilding the sites' state from shared
          storage (directory journal replay / small-file zone images).
          No drain phase and no donor-liveness check: the victim is
          presumed dead, and the routing table's fencing-epoch bump is
          what stops a zombie. Storage sites are not dataless (their
          bytes die with the node), so [Takeover (Storage, _, _)] is
          rejected — coordinator failover is [Slice_failover]'s job. *)

val klass_name : klass -> string
(** ["dir"], ["smallfile"] or ["storage"] — used in metric names, trace
    spans and the intent log. *)

val klass_of_name : string -> klass option

val describe : t -> string
(** One-line human-readable rendering for reports and logs. *)

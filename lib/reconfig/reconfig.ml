(* Online reconfiguration: migrate logical sites between live servers
   and republish the routing tables. See reconfig.mli for the state
   machine and crash matrix; the short version is

     intend (log Begin) -> drain (donor bounces writes) ->
     copy (modelled transfer occupies simulated time) ->
     commit (atomic: replay delta, flip ownership, rebind table, log
     Commit)  |  abort (lift drain, log Abort, table untouched).

   All state transfer happens inside the atomic commit step, so a crash
   anywhere leaves the site wholly on one side. *)

module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Packet = Slice_net.Packet
module Metrics = Slice_util.Metrics
module Trace = Slice_trace.Trace
module Wal = Slice_wal.Wal
module Ensemble = Slice.Ensemble
module Table = Slice.Table
module Dirserver = Slice_dir.Dirserver
module Smallfile = Slice_smallfile.Smallfile
module Obsd = Slice_storage.Obsd

exception Abandoned

(* Intent-log record types. *)
let rt_begin = 1
let rt_commit = 2
let rt_abort = 3

(* Fixed per-migration setup cost (control messages, drain install), so
   even an empty site's move occupies simulated time. *)
let setup_latency = 0.0005

(* One vocabulary over the three server classes: everything migrate
   needs, closed over the ensemble so elastic growth (which replaces the
   server arrays) is always visible. [prepare] runs at drain time and
   returns an opaque cookie for [copy_commit] (the directory class
   snapshots the donor journal there for the two-pass replay);
   [copy_commit] runs inside the atomic commit step and returns the
   bytes streamed. *)
type class_ops = {
  kname : string;
  table : Table.t;
  nservers : unit -> int;
  addr : int -> Packet.addr;
  begin_drain : int -> int -> unit;
  end_drain : int -> int -> unit;
  own : int -> int -> unit;
  disown : int -> int -> unit;
  drop : int -> int -> unit;
  drop_load : int -> int -> unit;
      (* forget a server's per-site load row without touching its data:
         a donor's stale counter must not feed later rebalances *)
  site_load : int -> int -> int;
  drain_bounces : unit -> int;
  add_server : unit -> int;
  prepare : donor:int -> site:int -> string;
  copy_bytes : donor:int -> site:int -> cookie:string -> int64;
  copy_commit : donor:int -> recv:int -> site:int -> cookie:string -> int64;
}

type t = {
  ens : Ensemble.t;
  eng : Engine.t;
  net : Net.t;
  trace : Trace.t option;
  wal : Wal.t;  (* migration intent log (coordinator stable storage) *)
  reg : Metrics.t;
  bandwidth : float;  (* modelled copy rate, bytes per simulated second *)
  dir_ops : class_ops;
  sf_ops : class_ops option;
  st_ops : class_ops option;
  mutable next_op : int;
  mutable n_migrations : int;
  mutable n_moved : int;
  mutable n_aborted : int;
  mutable n_bytes : int64;
}

let load_key kname site = Printf.sprintf "reconfig.load.%s.%03d" kname site

(* Physical owner (server index) of a logical site, resolved through the
   authoritative table. *)
let owner_of ops site =
  let a = Table.lookup ops.table site in
  let n = ops.nservers () in
  let rec go i = if i >= n then -1 else if ops.addr i = a then i else go (i + 1) in
  go 0

(* Rebind one site; idempotent commits publish nothing (Table.update
   skips the version bump on an identical mapping). *)
let set_site ops site addr =
  let map, _v = Table.snapshot ops.table in
  if map.(site) <> addr then begin
    map.(site) <- addr;
    Table.update ops.table map
  end

let dir_class ens =
  let servers () = Ensemble.dirs ens in
  {
    kname = "dir";
    table = Ensemble.dir_table ens;
    nservers = (fun () -> Array.length (servers ()));
    addr = (fun i -> Dirserver.addr (servers ()).(i));
    begin_drain = (fun i s -> Dirserver.begin_drain (servers ()).(i) s);
    end_drain = (fun i s -> Dirserver.end_drain (servers ()).(i) s);
    own = (fun i s -> Dirserver.own_site (servers ()).(i) s);
    disown = (fun i s -> Dirserver.disown_site (servers ()).(i) s);
    drop = (fun _ _ -> ());
    (* cells replayed into a receiver that never commits are inert:
       ownership gating keeps them unreachable *)
    drop_load = (fun i s -> Dirserver.reset_site_load (servers ()).(i) s);
    site_load = (fun i s -> Dirserver.site_load (servers ()).(i) s);
    drain_bounces =
      (fun () ->
        Array.fold_left (fun a d -> a + Dirserver.drain_bounces d) 0 (servers ()));
    add_server = (fun () -> Ensemble.add_dir_server ens);
    prepare = (fun ~donor ~site:_ -> Dirserver.log_image (servers ()).(donor));
    copy_bytes =
      (fun ~donor:_ ~site:_ ~cookie -> Int64.of_int (String.length cookie));
    copy_commit =
      (fun ~donor ~recv ~site:_ ~cookie ->
        (* Two-pass journal replay: the bulk image snapshotted at drain
           time, then exactly the delta the donor admitted (for its
           other sites — the moving one was draining) during the copy. *)
        let d = (servers ()).(donor) and r = (servers ()).(recv) in
        let consumed = Dirserver.import_log r ~log:cookie in
        let img = Dirserver.log_image d in
        ignore (Dirserver.import_log ~skip:consumed r ~log:img);
        Int64.of_int (String.length img));
  }

let sf_class ens =
  match Ensemble.smallfile_table ens with
  | None -> None
  | Some table ->
      let servers () = Ensemble.smallfiles ens in
      Some
        {
          kname = "smallfile";
          table;
          nservers = (fun () -> Array.length (servers ()));
          addr = (fun i -> Smallfile.addr (servers ()).(i));
          begin_drain = (fun i s -> Smallfile.begin_drain (servers ()).(i) s);
          end_drain = (fun i s -> Smallfile.end_drain (servers ()).(i) s);
          own = (fun i s -> Smallfile.own_site (servers ()).(i) s);
          disown = (fun i s -> Smallfile.disown_site (servers ()).(i) s);
          drop = (fun i s -> Smallfile.drop_site (servers ()).(i) s);
          drop_load = (fun i s -> Smallfile.reset_site_load (servers ()).(i) s);
          site_load = (fun i s -> Smallfile.site_load (servers ()).(i) s);
          drain_bounces =
            (fun () ->
              Array.fold_left
                (fun a d -> a + Smallfile.drain_bounces d)
                0 (servers ()));
          add_server = (fun () -> Ensemble.add_smallfile_server ens);
          prepare = (fun ~donor:_ ~site:_ -> "");
          copy_bytes =
            (fun ~donor ~site ~cookie:_ ->
              Smallfile.site_bytes (servers ()).(donor) site);
          copy_commit =
            (fun ~donor ~recv ~site ~cookie:_ ->
              let img = Smallfile.export_site (servers ()).(donor) site in
              Smallfile.import_site (servers ()).(recv) site img;
              Smallfile.image_bytes img);
        }

let st_class ens =
  match Ensemble.storage_table ens with
  | None -> None
  | Some table ->
      let servers () = Ensemble.storage ens in
      Some
        {
          kname = "storage";
          table;
          nservers = (fun () -> Array.length (servers ()));
          addr = (fun i -> Obsd.addr (servers ()).(i));
          begin_drain = (fun i s -> Obsd.begin_drain (servers ()).(i) s);
          end_drain = (fun i s -> Obsd.end_drain (servers ()).(i) s);
          own = (fun i s -> Obsd.own_site (servers ()).(i) s);
          disown = (fun i s -> Obsd.disown_site (servers ()).(i) s);
          drop = (fun i s -> Obsd.drop_site (servers ()).(i) s);
          drop_load = (fun i s -> Obsd.reset_site_load (servers ()).(i) s);
          site_load = (fun i s -> Obsd.site_load (servers ()).(i) s);
          drain_bounces =
            (fun () ->
              Array.fold_left (fun a d -> a + Obsd.drain_bounces d) 0 (servers ()));
          add_server = (fun () -> Ensemble.add_storage_node ens);
          prepare = (fun ~donor:_ ~site:_ -> "");
          copy_bytes =
            (fun ~donor ~site ~cookie:_ ->
              Obsd.site_bytes (servers ()).(donor) site);
          copy_commit =
            (fun ~donor ~recv ~site ~cookie:_ ->
              let img = Obsd.export_site (servers ()).(donor) site in
              Obsd.import_site (servers ()).(recv) site img;
              Obsd.image_bytes img);
        }

let class_list t =
  t.dir_ops :: List.filter_map Fun.id [ t.sf_ops; t.st_ops ]

(* Per-site load gauge: resolves the owner through the table at read
   time. Registered at attach and re-registered after every committed
   move — the remove/re-add pair retires whatever closure was behind the
   name, so a gauge can never outlive the server generation it was
   minted for (a takeover replaces the server arrays' contents). *)
let register_load_gauge t ops j =
  Metrics.gauge t.reg (load_key ops.kname j) (fun () ->
      let o = owner_of ops j in
      if o < 0 then 0.0 else float_of_int (ops.site_load o j))

(* A committed move retires the donor-side accounting for the site: the
   donor's load row is reset (its traffic history moved with the site)
   and the registry entry is dropped and re-registered so nothing keeps
   answering with pre-move values. *)
let retire_donor_load t ops ~donor ~site =
  ops.drop_load donor site;
  Metrics.remove t.reg (load_key ops.kname site);
  register_load_gauge t ops site

let attach ?(bandwidth = 50e6) ?trace ens =
  let reg = Metrics.create () in
  let t =
    {
      ens;
      eng = Ensemble.engine ens;
      net = Ensemble.net ens;
      trace;
      wal = Wal.create ~name:"reconfig.intents" ();
      reg;
      bandwidth;
      dir_ops = dir_class ens;
      sf_ops = sf_class ens;
      st_ops = st_class ens;
      next_op = 1;
      n_migrations = 0;
      n_moved = 0;
      n_aborted = 0;
      n_bytes = 0L;
    }
  in
  Metrics.gauge reg "reconfig.migrations" (fun () ->
      float_of_int t.n_migrations);
  Metrics.gauge reg "reconfig.sites_moved" (fun () -> float_of_int t.n_moved);
  Metrics.gauge reg "reconfig.aborted" (fun () -> float_of_int t.n_aborted);
  Metrics.gauge reg "reconfig.bytes_copied" (fun () -> Int64.to_float t.n_bytes);
  Metrics.gauge reg "reconfig.drain_bounces" (fun () ->
      float_of_int
        (List.fold_left (fun a o -> a + o.drain_bounces ()) 0 (class_list t)));
  List.iter
    (fun ops ->
      for j = 0 to Table.nsites ops.table - 1 do
        register_load_gauge t ops j
      done)
    (class_list t);
  t

let metrics t = t.reg
let migrations t = t.n_migrations
let sites_moved t = t.n_moved
let aborted t = t.n_aborted
let bytes_copied t = t.n_bytes
let log_image t = Wal.image t.wal

let drain_bounces t =
  List.fold_left (fun a o -> a + o.drain_bounces ()) 0 (class_list t)

(* One site move, intend -> drain -> copy -> commit/abort. Runs in the
   caller's fiber; only the copy sleep gives up the simulated clock. *)
let migrate ?abandon t ops ~site ~donor ~recv =
  let span =
    Trace.root t.trace
      ~op:("migrate." ^ ops.kname)
      ~site:(string_of_int site)
  in
  let op_id = t.next_op in
  t.next_op <- op_id + 1;
  t.n_migrations <- t.n_migrations + 1;
  ignore
    (Wal.append t.wal ~rtype:rt_begin
       (Printf.sprintf "%d %s %d %d %d" op_id ops.kname site donor recv));
  Wal.sync t.wal;
  ops.begin_drain donor site;
  (match abandon with Some `After_begin -> raise Abandoned | None -> ());
  let cookie = ops.prepare ~donor ~site in
  let est = ops.copy_bytes ~donor ~site ~cookie in
  Engine.sleep t.eng (setup_latency +. (Int64.to_float est /. t.bandwidth));
  (* commit step: atomic in simulated time from here to the end *)
  if Net.node_up t.net (ops.addr donor) && Net.node_up t.net (ops.addr recv)
  then begin
    let bytes = ops.copy_commit ~donor ~recv ~site ~cookie in
    ops.own recv site;
    ops.end_drain donor site;
    ops.disown donor site;
    ops.drop donor site;
    retire_donor_load t ops ~donor ~site;
    set_site ops site (ops.addr recv);
    ignore (Wal.append t.wal ~rtype:rt_commit (string_of_int op_id));
    Wal.sync t.wal;
    t.n_moved <- t.n_moved + 1;
    t.n_bytes <- Int64.add t.n_bytes bytes;
    Trace.finish ~outcome:"committed" span
  end
  else begin
    (* donor or receiver is down: the site stays wholly on the donor
       (a donor crash already cleared its volatile drain mark) *)
    ops.end_drain donor site;
    ignore (Wal.append t.wal ~rtype:rt_abort (string_of_int op_id));
    Wal.sync t.wal;
    t.n_aborted <- t.n_aborted + 1;
    Trace.finish ~outcome:"aborted" span
  end

(* Hot-standby takeover of one site: migrate without the drain phase and
   without the donor-liveness check — the donor is presumed dead, so its
   state is rebuilt from what shared storage holds (the directory
   classes' [prepare]/[copy_commit] read the donor's stable journal
   image; the small-file class re-materializes the site's zone files).
   The dead donor is deliberately NOT disowned: a zombie that wakes up
   still believing it owns the site is stopped by the fencing epoch (its
   lease expired before the takeover was allowed to start), not by
   control-plane writes to a machine we just declared unreachable. *)
let takeover_site t ops ~site ~donor ~recv =
  let span =
    Trace.root t.trace ~op:("takeover." ^ ops.kname) ~site:(string_of_int site)
  in
  let op_id = t.next_op in
  t.next_op <- op_id + 1;
  t.n_migrations <- t.n_migrations + 1;
  ignore
    (Wal.append t.wal ~rtype:rt_begin
       (Printf.sprintf "%d %s %d %d %d" op_id ops.kname site donor recv));
  Wal.sync t.wal;
  let cookie = ops.prepare ~donor ~site in
  let est = ops.copy_bytes ~donor ~site ~cookie in
  Engine.sleep t.eng (setup_latency +. (Int64.to_float est /. t.bandwidth));
  if Net.node_up t.net (ops.addr recv) then begin
    let bytes = ops.copy_commit ~donor ~recv ~site ~cookie in
    ops.own recv site;
    retire_donor_load t ops ~donor ~site;
    set_site ops site (ops.addr recv);
    ignore (Wal.append t.wal ~rtype:rt_commit (string_of_int op_id));
    Wal.sync t.wal;
    t.n_moved <- t.n_moved + 1;
    t.n_bytes <- Int64.add t.n_bytes bytes;
    Trace.finish ~outcome:"committed" span;
    true
  end
  else begin
    ignore (Wal.append t.wal ~rtype:rt_abort (string_of_int op_id));
    Wal.sync t.wal;
    t.n_aborted <- t.n_aborted + 1;
    Trace.finish ~outcome:"aborted" span;
    false
  end

(* Claim every site the dead victim still owns for the standby, then
   advance the class table's fencing epoch exactly once — the epoch bump
   both refreshes stale µproxy snapshots and marks the victim's
   incarnation deposed (its cached metadata is flushed everywhere, its
   lease can never be renewed under the old epoch). *)
let takeover_class t ops ~victim ~standby =
  if victim = standby then invalid_arg "Reconfig: takeover onto the victim";
  let n = ops.nservers () in
  if victim < 0 || victim >= n || standby < 0 || standby >= n then
    invalid_arg "Reconfig: takeover server index out of range";
  let nsites = Table.nsites ops.table in
  let claimed = ref 0 in
  for j = 0 to nsites - 1 do
    if owner_of ops j = victim then
      if takeover_site t ops ~site:j ~donor:victim ~recv:standby then
        incr claimed
  done;
  if !claimed > 0 then Table.bump_epoch ops.table;
  !claimed

(* Load-driven placement: heaviest site first into the least-loaded
   bucket, with two deterministic refinements — equal buckets break
   toward fewer assigned sites (so an unloaded ensemble spreads
   round-robin instead of piling onto server 0), and an exact tie that
   includes the current owner keeps the site in place (so a balanced
   ensemble is a fixed point and rebalancing is idempotent). *)
let rebalance_class ?abandon ?exclude t ops =
  let nsites = Table.nsites ops.table in
  let n = ops.nservers () in
  let eligible i = match exclude with Some e -> i <> e | None -> true in
  let load =
    Array.init nsites (fun j -> Metrics.value t.reg (load_key ops.kname j))
  in
  let owner = Array.init nsites (fun j -> owner_of ops j) in
  let order =
    List.sort
      (fun a b ->
        match Float.compare load.(b) load.(a) with
        | 0 -> Int.compare a b
        | c -> c)
      (List.init nsites Fun.id)
  in
  let bload = Array.make n 0.0 in
  let bn = Array.make n 0 in
  let target = Array.make nsites (-1) in
  List.iter
    (fun j ->
      let better i best =
        match Float.compare bload.(i) bload.(best) with
        | 0 -> bn.(i) < bn.(best)
        | c -> c < 0
      in
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if eligible i && (!best < 0 || better i !best) then best := i
      done;
      if !best >= 0 then begin
        let o = owner.(j) in
        if
          o >= 0 && eligible o && o <> !best
          && Float.compare bload.(o) bload.(!best) = 0
          && bn.(o) = bn.(!best)
        then best := o;
        target.(j) <- !best;
        bload.(!best) <- bload.(!best) +. load.(j);
        bn.(!best) <- bn.(!best) + 1
      end)
    order;
  for j = 0 to nsites - 1 do
    if target.(j) >= 0 && owner.(j) >= 0 && target.(j) <> owner.(j) then
      migrate ?abandon t ops ~site:j ~donor:owner.(j) ~recv:target.(j)
  done

let class_ops t = function
  | Plan.Dir -> Some t.dir_ops
  | Plan.Smallfile -> t.sf_ops
  | Plan.Storage -> t.st_ops

let require t k =
  match class_ops t k with
  | Some o -> o
  | None ->
      invalid_arg
        (Printf.sprintf "Reconfig: ensemble runs no %s class"
           (Plan.klass_name k))

let takeover t k ~victim ~standby =
  (match k with
  | Plan.Storage ->
      (* Storage sites are not dataless: their bytes die with the node
         (mirroring is the storage class's redundancy story, and the
         coordinator's failover lives in Slice_failover). *)
      invalid_arg "Reconfig: storage sites are not dataless; cannot take over"
  | Plan.Dir | Plan.Smallfile -> ());
  let ops = require t k in
  takeover_class t ops ~victim ~standby

let execute ?abandon t plan =
  try
    match plan with
    | Plan.Rebalance ->
        List.iter
          (fun k ->
            match class_ops t k with
            | Some ops -> rebalance_class ?abandon t ops
            | None -> ())
          [ Plan.Dir; Plan.Smallfile; Plan.Storage ]
    | Plan.Add_server k ->
        let ops = require t k in
        ignore (ops.add_server ());
        rebalance_class ?abandon t ops
    | Plan.Remove_server (k, idx) ->
        let ops = require t k in
        let n = ops.nservers () in
        if idx < 0 || idx >= n then
          invalid_arg "Reconfig: server index out of range";
        if n <= 1 then
          invalid_arg "Reconfig: cannot remove the last server of a class";
        rebalance_class ?abandon ~exclude:idx t ops
    | Plan.Takeover (k, victim, standby) -> ignore (takeover t k ~victim ~standby)
  with Abandoned -> ()

let recover t =
  (* lint: bounded — one entry per unsealed migration intent *)
  let opens = Hashtbl.create 8 in
  let order = ref [] in
  ignore
    (Wal.replay (Wal.image t.wal) (fun ~lsn:_ ~rtype payload ->
         if rtype = rt_begin then (
           try
             Scanf.sscanf payload "%d %s %d %d %d"
               (fun id k site donor recv ->
                 Hashtbl.replace opens id (k, site, donor, recv);
                 order := id :: !order)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
         else
           match int_of_string_opt (String.trim payload) with
           | Some id -> Hashtbl.remove opens id
           | None -> ()));
  List.iter
    (fun id ->
      match Hashtbl.find_opt opens id with
      | None -> ()
      | Some (k, site, donor, recv) ->
          (match Option.bind (Plan.klass_of_name k) (class_ops t) with
          | None -> ()
          | Some ops ->
              let n = ops.nservers () in
              if donor >= 0 && donor < n then begin
                ops.end_drain donor site;
                ops.own donor site;
                set_site ops site (ops.addr donor)
              end;
              if recv >= 0 && recv < n && recv <> donor then begin
                ops.disown recv site;
                ops.drop recv site
              end);
          t.n_aborted <- t.n_aborted + 1;
          ignore (Wal.append t.wal ~rtype:rt_abort (string_of_int id));
          Wal.sync t.wal)
    (List.rev !order)

(* Dataless failover: a lease/heartbeat failure detector plus
   hot-standby takeover for the three manager classes (directory,
   small-file, block coordinator).

   The controller runs on its own host and renews a fencing lease at
   every manager over the simulated network. Each renewal carries the
   expiry time computed at send time, so the controller always knows the
   largest lease it could possibly have granted — even if an ack is
   lost one way. After [miss_limit] consecutive unanswered renewals the
   target is declared dead; before promoting a standby the controller
   waits out that largest grant, so by construction the victim is
   already wedged (bouncing everything with [SLICE_MISDIRECTED]) when
   the takeover's epoch bump publishes. Exactly one side of any
   partition can therefore execute requests: the deposed side loses its
   lease strictly before the surviving side gains the sites.

   Directory and small-file takeovers go through the [Slice_reconfig]
   intent machinery ({!Reconfig.takeover}): per site a Begin intent,
   state rebuild from shared storage (journal replay / zone images), a
   table rebind, and a Commit seal — so a standby crash mid-takeover is
   rolled back by {!Reconfig.recover} like any abandoned migration.
   Coordinator takeover attaches a fresh coordinator to a surviving
   storage node's host, adopts the victim's intention log from shared
   storage (redo completes in-flight 2PC), swaps the ensemble's
   endpoint, and advances the storage table's fencing epoch. *)

module Engine = Slice_sim.Engine
module Metrics = Slice_util.Metrics
module Net = Slice_net.Net
module Packet = Slice_net.Packet
module Rpc = Slice_net.Rpc
module Enc = Slice_xdr.Xdr.Enc
module Dec = Slice_xdr.Xdr.Dec
module Host = Slice_storage.Host
module Obsd = Slice_storage.Obsd
module Coordinator = Slice_storage.Coordinator
module Nfs_endpoint = Slice_storage.Nfs_endpoint
module Dirserver = Slice_dir.Dirserver
module Smallfile = Slice_smallfile.Smallfile
module Table = Slice.Table
module Ensemble = Slice.Ensemble
module Plan = Slice_reconfig.Plan
module Reconfig = Slice_reconfig.Reconfig

let lease_port = 2060
let ctl_rpc_port = 2061

type tclass = Dir of int | Smallfile of int | Coordinator

type target = {
  tname : string;
  tclass : tclass;
  mutable deposed : bool;
  mutable misses : int;
  mutable suspect_since : float;
  (* Largest lease expiry this controller has ever put on the wire for
     this target. Promotion never starts before it has passed: an ack
     lost on the return path must not let a still-leased donor coexist
     with a promoted standby. *)
  mutable max_granted : float;
}

type event = {
  ev_time : float;
  ev_class : string;
  ev_victim : int;
  ev_standby : int;
  ev_sites : int;
  ev_detect : float;
  ev_mttr : float;
}

type t = {
  ens : Ensemble.t;
  rc : Reconfig.t;
  eng : Engine.t;
  net : Net.t;
  rpc : Rpc.t;
  hb : float;
  miss_limit : int;
  lease_dur : float;
  reg : Metrics.t;
  mutable targets : target list;
  mutable events : event list;
  mutable endpoints : Packet.addr list;
  mutable heartbeats : int;
  mutable stopped : bool;
}

(* ---- lease wire protocol (xid, epoch, expiry) ---- *)

let encode_renew ~xid ~epoch ~until =
  let e = Enc.create () in
  Enc.u32 e xid;
  Enc.u32 e epoch;
  Enc.u64 e (Int64.bits_of_float until);
  Enc.to_bytes e

let decode_renew payload =
  match
    let d = Dec.of_bytes payload in
    let xid = Dec.u32 d in
    let epoch = Dec.u32 d in
    let until = Int64.float_of_bits (Dec.u64 d) in
    (xid, epoch, until)
  with
  | v -> Some v
  | exception Slice_xdr.Xdr.Truncated -> None

let encode_ack ~xid =
  let e = Enc.create () in
  Enc.u32 e xid;
  Enc.u32 e 1;
  Enc.to_bytes e

(* One lease endpoint per host; [grant] resolves the resident service at
   delivery time (the coordinator role migrates between hosts) and stays
   silent when it is down — silence is what the detector counts. *)
let install_endpoint t host grant =
  if not (List.mem host.Host.addr t.endpoints) then begin
    t.endpoints <- host.Host.addr :: t.endpoints;
    Nfs_endpoint.serve_raw host ~port:lease_port ~handler:(fun pkt ->
        match decode_renew pkt.Packet.payload with
        | Some (xid, epoch, until) ->
            if grant ~epoch ~until then
              Nfs_endpoint.reply_to host pkt (encode_ack ~xid)
        | None -> ())
  end

(* ---- target plumbing ---- *)

let find_target t tclass = List.find_opt (fun tg -> tg.tclass = tclass) t.targets

let taddr t tg =
  match tg.tclass with
  | Dir i -> Dirserver.addr (Ensemble.dirs t.ens).(i)
  | Smallfile i -> Smallfile.addr (Ensemble.smallfiles t.ens).(i)
  | Coordinator -> (
      match Ensemble.coordinator t.ens with
      | Some c -> (Coordinator.host c).Host.addr
      | None -> -1)

let current_epoch t tg =
  match tg.tclass with
  | Dir _ -> Table.epoch (Ensemble.dir_table t.ens)
  | Smallfile _ -> (
      match Ensemble.smallfile_table t.ens with
      | Some tbl -> Table.epoch tbl
      | None -> 0)
  | Coordinator -> (
      match Ensemble.storage_table t.ens with
      | Some tbl -> Table.epoch tbl
      | None -> 1)

let is_deposed t tclass =
  match find_target t tclass with Some tg -> tg.deposed | None -> false

(* ---- standby selection: least-loaded live peer, lowest index wins ---- *)

let pick_standby ~n ~victim ~live ~load =
  let best = ref (-1) and best_load = ref max_int in
  for j = 0 to n - 1 do
    if j <> victim && live j then begin
      let l = load j in
      if l < !best_load then begin
        best := j;
        best_load := l
      end
    end
  done;
  if !best < 0 then None else Some !best

let record_takeover t tg ~kname ~victim ~standby ~sites ~declared =
  let now = Engine.now t.eng in
  let detect = declared -. tg.suspect_since in
  let mttr = now -. tg.suspect_since in
  t.events <-
    {
      ev_time = now;
      ev_class = kname;
      ev_victim = victim;
      ev_standby = standby;
      ev_sites = sites;
      ev_detect = detect;
      ev_mttr = mttr;
    }
    :: t.events;
  Metrics.incr t.reg "failover.takeovers";
  Metrics.add t.reg "failover.sites_claimed" sites;
  Metrics.observe t.reg "failover.detect_latency" detect;
  Metrics.observe t.reg "failover.mttr" mttr

(* ---- per-class takeover ---- *)

let takeover_manager t tg k ~victim ~declared =
  let kname = Plan.klass_name k in
  let n, live, load, grant, tbl =
    match k with
    | Plan.Dir ->
        let ds = Ensemble.dirs t.ens in
        ( Array.length ds,
          (fun j ->
            Dirserver.is_up ds.(j)
            && Net.node_up t.net (Dirserver.addr ds.(j))
            && not (is_deposed t (Dir j))),
          (fun j ->
            List.fold_left
              (fun acc s -> acc + Dirserver.site_load ds.(j) s)
              0 (Dirserver.owned_sites ds.(j))),
          (fun j ~epoch ~until -> Dirserver.set_lease ds.(j) ~epoch ~until),
          Ensemble.dir_table t.ens )
    | Plan.Smallfile ->
        let ss = Ensemble.smallfiles t.ens in
        ( Array.length ss,
          (fun j ->
            Smallfile.is_up ss.(j)
            && Net.node_up t.net (Smallfile.addr ss.(j))
            && not (is_deposed t (Smallfile j))),
          (fun j ->
            List.fold_left
              (fun acc s -> acc + Smallfile.site_load ss.(j) s)
              0 (Smallfile.owned_sites ss.(j))),
          (fun j ~epoch ~until -> Smallfile.set_lease ss.(j) ~epoch ~until),
          match Ensemble.smallfile_table t.ens with
          | Some tbl -> tbl
          | None -> invalid_arg "Failover: no small-file class" )
    | Plan.Storage -> invalid_arg "Failover: storage sites are not dataless"
  in
  match pick_standby ~n ~victim ~live ~load with
  | None -> Metrics.incr t.reg "failover.no_standby"
  | Some standby ->
      let sites = Reconfig.takeover t.rc k ~victim ~standby in
      (* Re-lease the standby in process under the bumped epoch; its own
         monitor keeps renewing from here. *)
      let until = Engine.now t.eng +. t.lease_dur in
      let epoch = Table.epoch tbl in
      grant standby ~epoch ~until;
      (match
         find_target t
           (match k with
           | Plan.Dir -> Dir standby
           | Plan.Smallfile -> Smallfile standby
           | Plan.Storage -> assert false)
       with
      | Some stg -> stg.max_granted <- Float.max stg.max_granted until
      | None -> ());
      record_takeover t tg ~kname ~victim ~standby ~sites ~declared

let coordinator_grant t ~epoch ~until =
  match Ensemble.coordinator t.ens with
  | Some c when Coordinator.is_up c ->
      Coordinator.set_lease c ~epoch ~until;
      true
  | _ -> false

(* The endpoint installed on a storage host must only renew the
   coordinator while the role actually resides there — after a further
   takeover the old host's endpoint goes silent again. *)
let coordinator_grant_at t haddr ~epoch ~until =
  match Ensemble.coordinator t.ens with
  | Some c when (Coordinator.host c).Host.addr = haddr ->
      coordinator_grant t ~epoch ~until
  | _ -> false

let promote_coordinator t tg ~declared =
  match Ensemble.coordinator t.ens with
  | None -> ()
  | Some old ->
      let old_addr = (Coordinator.host old).Host.addr in
      let storage = Ensemble.storage t.ens in
      let candidate = ref (-1) in
      Array.iteri
        (fun j o ->
          if
            !candidate < 0 && Obsd.is_up o
            && Net.node_up t.net (Obsd.addr o)
            && (Obsd.host o).Host.addr <> old_addr
          then candidate := j)
        storage;
      if !candidate < 0 then Metrics.incr t.reg "failover.no_standby"
      else begin
        let j = !candidate in
        let h = Obsd.host storage.(j) in
        let c =
          Coordinator.attach h
            ~map_sites:(Coordinator.map_sites old)
            ?trace:(Ensemble.trace t.ens) ()
        in
        (* The victim's intention log survives on shared storage: adopt
           it so redo completes any 2PC the victim left in flight. *)
        Coordinator.adopt_log c ~log:(Coordinator.log_image old);
        Ensemble.replace_coordinator t.ens c;
        (match Ensemble.storage_table t.ens with
        | Some tbl -> Table.bump_epoch tbl
        | None -> ());
        install_endpoint t h (coordinator_grant_at t h.Host.addr);
        let until = Engine.now t.eng +. t.lease_dur in
        Coordinator.set_lease c ~epoch:(current_epoch t tg) ~until;
        (* The coordinator target tracks the role, not the instance: the
           monitor resumes against the successor immediately. *)
        tg.max_granted <- until;
        tg.deposed <- false;
        tg.misses <- 0;
        let victim_idx = ref (-1) in
        Array.iteri
          (fun i o -> if (Obsd.host o).Host.addr = old_addr then victim_idx := i)
          storage;
        record_takeover t tg ~kname:"coordinator" ~victim:!victim_idx ~standby:j
          ~sites:(Array.length (Coordinator.map_sites c))
          ~declared
      end

let declare t tg =
  let declared = Engine.now t.eng in
  Metrics.incr t.reg "failover.declared";
  tg.deposed <- true;
  (* Fencing safety: the victim self-wedges when its lease runs out, and
     no lease outlasting [max_granted] was ever sent. Waiting it out
     guarantees the donor bounces before the standby owns anything. *)
  if tg.max_granted > declared then
    Engine.sleep t.eng (tg.max_granted -. declared +. (t.hb /. 10.));
  match tg.tclass with
  | Dir i -> takeover_manager t tg Plan.Dir ~victim:i ~declared
  | Smallfile i -> takeover_manager t tg Plan.Smallfile ~victim:i ~declared
  | Coordinator -> promote_coordinator t tg ~declared

(* ---- the detector loop ---- *)

let rec monitor t tg =
  Engine.sleep t.eng t.hb;
  if not t.stopped then
    if tg.deposed then monitor t tg
    else begin
      let start = Engine.now t.eng in
      let until = start +. t.lease_dur in
      let epoch = current_epoch t tg in
      tg.max_granted <- Float.max tg.max_granted until;
      t.heartbeats <- t.heartbeats + 1;
      match
        Rpc.call t.rpc ~retries:0 ~timeout:t.hb ~dst:(taddr t tg)
          ~dport:lease_port
          (encode_renew ~xid:(Rpc.fresh_xid t.rpc) ~epoch ~until)
      with
      | _ack ->
          if tg.misses > 0 then Metrics.incr t.reg "failover.false_suspects";
          tg.misses <- 0;
          monitor t tg
      | exception Rpc.Timeout ->
          if tg.misses = 0 then tg.suspect_since <- start;
          tg.misses <- tg.misses + 1;
          if tg.misses >= t.miss_limit then declare t tg;
          monitor t tg
    end

let watch t tg grant host =
  install_endpoint t host grant;
  (* Seed a finite lease in process: attaching the detector is what
     arms fencing (servers default to an infinite lease). *)
  let until = Engine.now t.eng +. t.lease_dur in
  grant ~epoch:(current_epoch t tg) ~until |> ignore;
  tg.max_granted <- Float.max tg.max_granted until;
  t.targets <- t.targets @ [ tg ];
  Engine.spawn t.eng (fun () -> monitor t tg)

let mk_target tname tclass =
  {
    tname;
    tclass;
    deposed = false;
    misses = 0;
    suspect_since = nan;
    max_granted = neg_infinity;
  }

let attach ?(heartbeat = 0.05) ?(miss_limit = 3) ens rc =
  let eng = Ensemble.engine ens in
  let net = Ensemble.net ens in
  let host = Host.create net ~name:"failover-ctl" () in
  let rpc = Rpc.create net host.Host.addr ~port:ctl_rpc_port in
  (* One lease lasts just less than the worst-case time to accumulate
     [miss_limit] timeouts (2·hb per miss: sleep + timeout), so a donor
     cut off from renewals is always wedged by declaration time. *)
  let lease_dur = ((2. *. float_of_int miss_limit) -. 1.) *. heartbeat in
  let t =
    {
      ens;
      rc;
      eng;
      net;
      rpc;
      hb = heartbeat;
      miss_limit;
      lease_dur;
      reg = Metrics.create ();
      targets = [];
      events = [];
      endpoints = [];
      heartbeats = 0;
      stopped = false;
    }
  in
  Array.iteri
    (fun i d ->
      let grant ~epoch ~until =
        if Dirserver.is_up d then begin
          Dirserver.set_lease d ~epoch ~until;
          true
        end
        else false
      in
      watch t (mk_target (Printf.sprintf "dir%d" i) (Dir i)) grant
        (Dirserver.host d))
    (Ensemble.dirs ens);
  Array.iteri
    (fun i s ->
      let grant ~epoch ~until =
        if Smallfile.is_up s then begin
          Smallfile.set_lease s ~epoch ~until;
          true
        end
        else false
      in
      watch t
        (mk_target (Printf.sprintf "smallfile%d" i) (Smallfile i))
        grant (Smallfile.host s))
    (Ensemble.smallfiles ens);
  (match Ensemble.coordinator ens with
  | Some c ->
      let h = Coordinator.host c in
      watch t
        (mk_target "coordinator" Coordinator)
        (coordinator_grant_at t h.Host.addr)
        h
  | None -> ());
  Metrics.gauge t.reg "failover.heartbeats" (fun () ->
      float_of_int t.heartbeats);
  Metrics.gauge t.reg "failover.targets" (fun () ->
      float_of_int (List.length t.targets));
  Metrics.gauge t.reg "failover.deposed" (fun () ->
      float_of_int (List.length (List.filter (fun tg -> tg.deposed) t.targets)));
  Metrics.gauge t.reg "failover.lease_duration" (fun () -> t.lease_dur);
  t

(* ---- rejoin ---- *)

let resume tg until =
  tg.max_granted <- Float.max tg.max_granted until;
  tg.misses <- 0;
  tg.deposed <- false

let rejoin_dir t i =
  Ensemble.recover_dir t.ens i;
  let d = (Ensemble.dirs t.ens).(i) in
  let tbl = Ensemble.dir_table t.ens in
  List.iter
    (fun s ->
      if Table.lookup tbl s <> Dirserver.addr d then begin
        Dirserver.disown_site d s;
        Dirserver.reset_site_load d s
      end)
    (Dirserver.owned_sites d);
  let until = Engine.now t.eng +. t.lease_dur in
  Dirserver.set_lease d ~epoch:(Table.epoch tbl) ~until;
  match find_target t (Dir i) with
  | Some tg -> resume tg until
  | None -> ()

let rejoin_smallfile t i =
  Ensemble.recover_smallfile t.ens i;
  let s = (Ensemble.smallfiles t.ens).(i) in
  (match Ensemble.smallfile_table t.ens with
  | Some tbl ->
      List.iter
        (fun site ->
          if Table.lookup tbl site <> Smallfile.addr s then begin
            Smallfile.disown_site s site;
            Smallfile.drop_site s site;
            Smallfile.reset_site_load s site
          end)
        (Smallfile.owned_sites s);
      Smallfile.set_lease s ~epoch:(Table.epoch tbl)
        ~until:(Engine.now t.eng +. t.lease_dur)
  | None -> ());
  let until = Engine.now t.eng +. t.lease_dur in
  match find_target t (Smallfile i) with
  | Some tg -> resume tg until
  | None -> ()

(* ---- introspection ---- *)

let stop t = t.stopped <- true
let metrics t = t.reg
let events t = List.rev t.events
let takeovers t = List.length t.events
let heartbeats t = t.heartbeats
let lease_duration t = t.lease_dur
let heartbeat_interval t = t.hb

let deposed t =
  List.filter_map (fun tg -> if tg.deposed then Some tg.tname else None)
    t.targets

(** Dataless failover: lease/heartbeat failure detection and
    hot-standby takeover for the manager classes.

    The Slice managers are {e dataless} — their durable state lives in
    journals and intention logs on shared storage — so a failed manager
    is replaced by replaying that state on a peer and rebinding its
    logical sites in the routing table (paper Section 3.4: recovery "on
    a surviving server using standard redo/undo recovery from the
    shared log"). What the paper leaves implicit is how the cluster
    decides a manager is dead and how a {e wrong} decision is kept
    safe; this module supplies both:

    {ol
    {- {b Detection.} A controller host renews a fencing lease at every
       manager each [heartbeat] seconds over the simulated network
       (one datagram, no retries). After [miss_limit] consecutive
       timeouts the manager is declared dead.}
    {- {b Fencing.} Every renewal carries its expiry computed at send
       time, and one lease lasts [(2·miss_limit − 1)·heartbeat] — just
       less than the worst-case time for the controller to count
       [miss_limit] misses. Before promoting a standby the controller
       additionally waits out the largest expiry it ever put on the
       wire. A donor cut off from renewals (crashed {e or} merely
       partitioned) has therefore always wedged itself — bouncing every
       request with [SLICE_MISDIRECTED] — strictly before the standby
       claims its sites, so at most one side of a partition executes
       requests, with no shared clock assumptions beyond the simulator's.}
    {- {b Takeover.} Directory and small-file victims are replaced via
       {!Slice_reconfig.Reconfig.takeover} (per-site Begin intent,
       journal/zone replay from shared storage, table rebind, Commit
       seal, one fencing-epoch bump). The coordinator is replaced by
       attaching a successor to a surviving storage node's host,
       adopting the victim's intention log (redo completes in-flight
       2PC), swapping the ensemble's endpoint and bumping the storage
       table's epoch. Standbys are the least-loaded live peer (lowest
       index on ties); the successor coordinator is the first live
       storage node not hosting the victim.}} *)

type t

val attach :
  ?heartbeat:float -> ?miss_limit:int -> Slice.Ensemble.t ->
  Slice_reconfig.Reconfig.t -> t
(** Create the controller host, install a lease-renewal endpoint (port
    2060) on every manager host, seed finite leases (arming fencing —
    servers default to infinite leases) and spawn one detector fiber
    per manager plus one for the coordinator role. [heartbeat] defaults
    to 50 ms, [miss_limit] to 3 (≈ 300 ms detection, 250 ms lease).
    Call {!stop} before draining the engine to quiescence, or the
    detector fibers renew forever. *)

val stop : t -> unit
(** Stop all detector fibers at their next wakeup and stop renewing
    leases. Wedges every watched manager once its last lease runs out —
    quiesce the workload first. *)

type event = {
  ev_time : float;  (** sim time the takeover committed *)
  ev_class : string;  (** ["dir"], ["smallfile"] or ["coordinator"] *)
  ev_victim : int;
  ev_standby : int;
  ev_sites : int;  (** sites claimed (coordinator: map width) *)
  ev_detect : float;  (** first missed renewal → declaration *)
  ev_mttr : float;  (** first missed renewal → service restored *)
}

val events : t -> event list
(** Completed takeovers, oldest first. *)

val takeovers : t -> int

val rejoin_dir : t -> int -> unit
(** Bring a deposed directory server back as a {e peer}: recover it
    (journal replay), shed every site the routing table has since bound
    elsewhere, grant it a fresh lease under the current fencing epoch
    and resume its heartbeats. Without this call a recovered victim
    stays wedged forever — fencing is deliberately sticky. *)

val rejoin_smallfile : t -> int -> unit
(** Small-file analogue of {!rejoin_dir}; shed sites also drop their
    file data. (A deposed coordinator has no rejoin: the role moved,
    and the old instance stays fenced on its storage host.) *)

val metrics : t -> Slice_util.Metrics.t
(** [failover.heartbeats], [failover.declared], [failover.takeovers],
    [failover.sites_claimed], [failover.false_suspects] (suspicions
    cleared by a late ack), [failover.no_standby], the
    [failover.detect_latency] and [failover.mttr] distributions, and
    gauges for targets / deposed count / lease duration. *)

val heartbeats : t -> int
val lease_duration : t -> float
val heartbeat_interval : t -> float

val deposed : t -> string list
(** Names of currently deposed targets (e.g. ["dir1"]), attach order. *)

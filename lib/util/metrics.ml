(* Unified metrics registry: named counters, pull-style gauges, and
   sample distributions behind one interface, with a deterministic
   (sorted-key) JSON dump.  Components either push into a counter/dist
   they own, or register a gauge closure so existing ad-hoc counters
   (Rpc endpoint stats, proxy meta-cache stats, coordinator redo counts,
   WAL sync totals) are absorbed without touching their hot paths. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
  dists : (string, Stats.t) Hashtbl.t;
}

let create () =
  (* lint: bounded — one row per registered metric name, a small static vocabulary *)
  { counters = Hashtbl.create 64; gauges = Hashtbl.create 64; dists = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let incr t name = incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let gauge t name fn = Hashtbl.replace t.gauges name fn

(* Retire a metric: a gauge registered for a server that failed or was
   removed must not keep feeding its last-known value into consumers
   (the greedy rebalancer reads load gauges by name). *)
let remove t name =
  Hashtbl.remove t.counters name;
  Hashtbl.remove t.gauges name;
  Hashtbl.remove t.dists name

let dist t name =
  match Hashtbl.find_opt t.dists name with
  | Some s -> s
  | None ->
      let s = Stats.create () in
      Hashtbl.replace t.dists name s;
      s

let observe t name v = Stats.add (dist t name) v

let value t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> float_of_int !r
  | None -> (
      match Hashtbl.find_opt t.gauges name with Some fn -> fn () | None -> 0.0)

(* Labelled scope: a (prefix, tenant) pair baked into one dotted key
   prefix, so per-tenant series are registered through one constructor
   instead of hand-concatenated strings at every call site. The dump is
   sorted at every level, so any set of scopes lands in byte-stable
   order. *)
type scope = { sc_reg : t; sc_prefix : string }

let labelled t ~prefix ~tenant = { sc_reg = t; sc_prefix = prefix ^ "." ^ tenant ^ "." }
let scoped_counter sc name = counter sc.sc_reg (sc.sc_prefix ^ name)
let scoped_dist sc name = dist sc.sc_reg (sc.sc_prefix ^ name)
let scoped_gauge sc name fn = gauge sc.sc_reg (sc.sc_prefix ^ name) fn

let sorted_keys tbl =
  (* lint: D2 ok — fold output is sorted on the next line *)
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let names t =
  List.sort_uniq compare
    (sorted_keys t.counters @ sorted_keys t.gauges @ sorted_keys t.dists)

let dist_json s =
  Json.Obj
    [
      ("count", Json.Num (float_of_int (Stats.count s)));
      ("max", Json.Num (Stats.max s));
      ("mean", Json.Num (Stats.mean s));
      ("min", Json.Num (Stats.min s));
      ("p50", Json.Num (Stats.percentile s 50.0));
      ("p95", Json.Num (Stats.percentile s 95.0));
      ("p99", Json.Num (Stats.percentile s 99.0));
    ]

let dump t =
  (* Keys sorted at every level so two identical runs dump byte-identical
     JSON regardless of registration/hash order. *)
  let counters =
    sorted_keys t.counters
    |> List.map (fun k -> (k, Json.Num (float_of_int !(Hashtbl.find t.counters k))))
  in
  let gauges =
    sorted_keys t.gauges
    |> List.map (fun k -> (k, Json.Num ((Hashtbl.find t.gauges k) ())))
  in
  let dists =
    sorted_keys t.dists |> List.map (fun k -> (k, dist_json (Hashtbl.find t.dists k)))
  in
  Json.Obj
    [ ("counters", Json.Obj counters); ("dists", Json.Obj dists); ("gauges", Json.Obj gauges) ]

let dump_string t = Json.to_string (dump t)

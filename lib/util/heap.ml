type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

(* Written with shadowed immutables rather than a [ref] so each call
   allocates nothing. (The simulation engine used to run on this heap;
   it now inlines a monomorphic one over pooled event cells to shed the
   comparator-closure indirection, so this generic heap serves the
   colder queue users only.) *)
let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < h.size && h.cmp h.data.(l) h.data.(i) < 0 then l else i in
  let s = if r < h.size && h.cmp h.data.(r) h.data.(s) < 0 then r else s in
  if s <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(s);
    h.data.(s) <- tmp;
    sift_down h s
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty";
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top

let pop h = if h.size = 0 then None else Some (pop_exn h)
let clear h = h.size <- 0

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.data.(i) :: acc) in
  loop (h.size - 1) []

(** Capacity-bounded LRU cache with eviction callbacks.

    Used for the µproxy attribute cache, server buffer caches, and the
    block-map fragment cache. Capacity is measured in abstract units
    (entries or bytes) supplied per item, so an 8 KB block can weigh 8192
    while an attribute entry weighs 1. *)

type ('k, 'v) t

type 'v ttl_lookup = Fresh of 'v | Stale | Miss
(** Result of a lease-aware lookup: a live entry, an entry whose lease
    lapsed (removed as a side effect), or no entry at all. The µproxy's
    metadata cache counts the three cases separately. *)

val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t
(** [create ~capacity ()] holds items whose weights sum to at most
    [capacity]. [on_evict] fires for every item removed by pressure and
    for a value displaced by {!add} on an existing key (not for explicit
    [remove], and not for a lapsed lease dropped by {!find_ttl}). *)

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] returns the value and marks it most-recently-used. Ignores
    leases: an expired entry is still returned (use {!find_ttl} when the
    lease matters). *)

val find_ttl : ('k, 'v) t -> 'k -> now:float -> 'v ttl_lookup
(** Lease-aware [find]: [Fresh v] promotes the entry; an entry with
    [expires_at <= now] is removed (silently — no eviction hook, the data
    is dead, not displaced) and reported [Stale]; [Miss] otherwise. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without promoting the entry. *)

val add : ('k, 'v) t -> ?weight:int -> ?expires_at:float -> 'k -> 'v -> unit
(** [add t k v] inserts or replaces, then evicts LRU items until within
    capacity. Default [weight] is 1. An item heavier than the total
    capacity is rejected silently after evicting everything else.
    [expires_at] (absolute time, default [infinity]) is the entry's lease
    deadline, consulted only by {!find_ttl}. *)

val remove : ('k, 'v) t -> 'k -> unit
val size : ('k, 'v) t -> int
(** Current total weight. *)

val entry_count : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
val clear : ('k, 'v) t -> unit
(** Remove everything without firing eviction callbacks. *)

val flush : ('k, 'v) t -> unit
(** Remove everything, firing the eviction callback for each entry
    (used to model write-back of dirty cached state). *)

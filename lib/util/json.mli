(** Minimal JSON emit/parse for the bench harness's machine-readable
    output (BENCH_*.json) and its schema validation — no external
    dependency, no streaming, strings are BMP-only. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Pretty-printed with two-space indentation; integral floats render
    without a decimal point. *)

val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing data. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other variants. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

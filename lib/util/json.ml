(* Minimal JSON support for the bench harness: enough to emit BENCH_*.json
   and re-parse it for schema validation, without pulling in a dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string t =
  let b = Buffer.create 256 in
  let rec go indent t =
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b pad;
            go (indent + 2) item)
          items;
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make indent ' ');
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b pad;
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go (indent + 2) v)
          fields;
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make indent ' ');
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ---- parsing: recursive descent over a string ---- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char b '"'; loop ()
          | '\\' -> Buffer.add_char b '\\'; loop ()
          | '/' -> Buffer.add_char b '/'; loop ()
          | 'n' -> Buffer.add_char b '\n'; loop ()
          | 'r' -> Buffer.add_char b '\r'; loop ()
          | 't' -> Buffer.add_char b '\t'; loop ()
          | 'b' -> Buffer.add_char b '\b'; loop ()
          | 'f' -> Buffer.add_char b '\012'; loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
              (* keep it simple: BMP only, encoded as UTF-8 *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing data";
  v

(* ---- accessors ---- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None

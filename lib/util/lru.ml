(* Doubly-linked list threaded through a hashtable: O(1) find/add/evict. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable weight : int;
  mutable expires_at : float;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
  mutable total : int;
  capacity : int;
  on_evict : 'k -> 'v -> unit;
}

type 'v ttl_lookup = Fresh of 'v | Stale | Miss

let create ?(on_evict = fun _ _ -> ()) ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  (* lint: bounded — mirrors the intrusive list; add evicts down to capacity *)
  { tbl = Hashtbl.create 64; head = None; tail = None; total = 0; capacity; on_evict }

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let mem t k = Hashtbl.mem t.tbl k

let remove_node t node =
  unlink t node;
  Hashtbl.remove t.tbl node.key;
  t.total <- t.total - node.weight

let find_ttl t k ~now =
  match Hashtbl.find_opt t.tbl k with
  | None -> Miss
  | Some node when node.expires_at <= now ->
      (* A lapsed lease is dead data, not displaced data: drop it without
         the eviction hook (which models write-back of live state). *)
      remove_node t node;
      Stale
  | Some node ->
      unlink t node;
      push_front t node;
      Fresh node.value

let evict_until_fits t =
  while t.total > t.capacity && t.tail <> None do
    match t.tail with
    | None -> ()
    | Some victim ->
        remove_node t victim;
        t.on_evict victim.key victim.value
  done

let add t ?(weight = 1) ?(expires_at = infinity) k v =
  (* Replacing a live entry displaces its value just like pressure does:
     the eviction hook must see it (a dirty cached attribute silently
     replaced would otherwise lose its write-back). *)
  (match Hashtbl.find_opt t.tbl k with
  | Some old ->
      remove_node t old;
      t.on_evict old.key old.value
  | None -> ());
  let node = { key = k; value = v; weight; expires_at; prev = None; next = None } in
  Hashtbl.replace t.tbl k node;
  t.total <- t.total + weight;
  push_front t node;
  evict_until_fits t

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some node -> remove_node t node

let size t = t.total
let entry_count t = Hashtbl.length t.tbl
let capacity t = t.capacity

let iter t f =
  let rec loop = function
    | None -> ()
    | Some node ->
        f node.key node.value;
        loop node.next
  in
  loop t.head

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.total <- 0

let flush t =
  let entries = ref [] in
  iter t (fun k v -> entries := (k, v) :: !entries);
  clear t;
  List.iter (fun (k, v) -> t.on_evict k v) (List.rev !entries)

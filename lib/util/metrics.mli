(** Unified metrics registry: named counters, pull-style gauges, and
    sample distributions with a deterministic sorted-key JSON dump.

    Components either push into counters/distributions they own, or
    register a gauge closure so pre-existing ad-hoc counters are
    absorbed without changing their hot paths.  [dump] output is
    byte-identical across two identical simulation runs. *)

type t

val create : unit -> t

val counter : t -> string -> int ref
(** Find-or-create the named counter cell (push interface). *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit

val gauge : t -> string -> (unit -> float) -> unit
(** Register (or replace) a pull-style gauge sampled at [dump] time. *)

val remove : t -> string -> unit
(** Retire the named counter/gauge/distribution from the registry (no-op
    when unknown). Needed when the component behind a gauge goes away —
    a failed server's load gauges must not keep answering with stale
    values, or consumers (e.g. the greedy rebalancer) are skewed. *)

type scope
(** A label scope: all series registered through it share a
    ["prefix.tenant."] key prefix, so per-tenant families dump in sorted,
    byte-stable order without hand-concatenated key strings. *)

val labelled : t -> prefix:string -> tenant:string -> scope
(** [labelled t ~prefix:"qos" ~tenant:"web"] names series
    ["qos.web.<name>"]. *)

val scoped_counter : scope -> string -> int ref
val scoped_dist : scope -> string -> Stats.t
val scoped_gauge : scope -> string -> (unit -> float) -> unit

val dist : t -> string -> Stats.t
(** Find-or-create the named sample distribution. *)

val observe : t -> string -> float -> unit

val value : t -> string -> float
(** Current value of a counter or gauge; 0.0 when unknown. *)

val names : t -> string list
(** All registered metric names, sorted. *)

val dump : t -> Json.t
(** Full registry snapshot: [{"counters":{..},"dists":{..},"gauges":{..}}]
    with keys sorted at every level. *)

val dump_string : t -> string

(** Online statistics for simulation measurements: latency samples,
    throughput counters, and simple fixed-bucket histograms. *)

type t
(** A sample accumulator: exact count/mean/min/max/stddev, plus a capped
    uniform reservoir (algorithm R, deterministic seed) retained for
    percentile queries — memory stays bounded no matter how many samples
    are added. *)

val create : ?reservoir:int -> unit -> t
(** [reservoir] caps how many samples are retained for percentiles
    (default 8192). Scalar moments are always exact. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0.0 when empty. *)

val min : t -> float
val max : t -> float
val sum : t -> float
val stddev : t -> float
val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100]; nearest-rank on the retained
    reservoir (exact while fewer than [reservoir] samples were added).
    The sorted view is cached between adds, so repeated queries cost
    O(log n) after one O(n log n) sort. 0.0 when empty. *)

val merge : t -> t -> t
(** Pooled accumulator: scalar moments combine exactly; the pooled
    reservoir is subsampled back to the larger of the two caps. *)

module Counter : sig
  (** Monotonic event counter with rate-over-window support. *)
  type nonrec t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val rate : t -> elapsed:float -> float
  (** Events per unit time over [elapsed]; 0.0 if [elapsed <= 0]. *)
end

module Histogram : sig
  (** Fixed-width bucket histogram over [\[lo, hi)] with overflow bucket. *)
  type nonrec t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val bucket_count : t -> int -> int
  val total : t -> int
  val render : t -> string
  (** Plain-text rendering, one line per non-empty bucket. *)
end

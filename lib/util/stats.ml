(* Scalar moments are exact; percentiles come from a capped uniform
   reservoir (Vitter's algorithm R) with a cached sorted copy, so exhibits
   that print p95/p99 after every run pay one sort per batch of adds
   instead of an O(n log n) list conversion per query — and memory stays
   bounded no matter how long a run collects samples. *)

type t = {
  mutable n : int;
  mutable total : float;
  mutable sq_total : float;
  mutable mn : float;
  mutable mx : float;
  cap : int;
  prng : Prng.t;
  mutable samples : float array; (* reservoir; live prefix [0, len) *)
  mutable len : int;
  mutable sorted : float array option; (* cache, dropped when the reservoir changes *)
}

let default_reservoir = 8192

let create ?(reservoir = default_reservoir) () =
  if reservoir <= 0 then invalid_arg "Stats.create: reservoir must be positive";
  {
    n = 0;
    total = 0.0;
    sq_total = 0.0;
    mn = infinity;
    mx = neg_infinity;
    cap = reservoir;
    (* fixed seed: statistics stay bit-reproducible run to run *)
    prng = Prng.create 0x5711ce;
    samples = [||];
    len = 0;
    sorted = None;
  }

let ensure_room t =
  if t.len >= Array.length t.samples then begin
    let cap' = Stdlib.min t.cap (Stdlib.max 64 (2 * Array.length t.samples)) in
    let bigger = Array.make cap' 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  t.sq_total <- t.sq_total +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  if t.len < t.cap then begin
    ensure_room t;
    t.samples.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- None
  end
  else begin
    (* algorithm R: keep each of the n samples with probability cap/n *)
    let j = Prng.int t.prng t.n in
    if j < t.cap then begin
      t.samples.(j) <- x;
      t.sorted <- None
    end
  end

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n
let min t = t.mn
let max t = t.mx

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let var = (t.sq_total /. float_of_int t.n) -. (m *. m) in
    if var < 0.0 then 0.0 else sqrt var

let sorted_samples t =
  match t.sorted with
  | Some arr -> arr
  | None ->
      let arr = Array.sub t.samples 0 t.len in
      Array.sort Float.compare arr;
      t.sorted <- Some arr;
      arr

let percentile t p =
  if t.len = 0 then 0.0
  else begin
    let arr = sorted_samples t in
    let m = Array.length arr in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int m)) in
    let idx = Stdlib.max 0 (Stdlib.min (m - 1) (rank - 1)) in
    arr.(idx)
  end

let merge a b =
  let t = create ~reservoir:(Stdlib.max a.cap b.cap) () in
  t.n <- a.n + b.n;
  t.total <- a.total +. b.total;
  t.sq_total <- a.sq_total +. b.sq_total;
  t.mn <- Stdlib.min a.mn b.mn;
  t.mx <- Stdlib.max a.mx b.mx;
  let pooled = Array.append (Array.sub a.samples 0 a.len) (Array.sub b.samples 0 b.len) in
  if Array.length pooled > t.cap then Prng.shuffle t.prng pooled;
  t.len <- Stdlib.min (Array.length pooled) t.cap;
  t.samples <- Array.sub pooled 0 t.len;
  t

module Counter = struct
  type t = { mutable c : int }

  let create () = { c = 0 }
  let incr t = t.c <- t.c + 1
  let add t n = t.c <- t.c + n
  let get t = t.c
  let rate t ~elapsed = if elapsed <= 0.0 then 0.0 else float_of_int t.c /. elapsed
end

module Histogram = struct
  type t = { lo : float; hi : float; width : float; counts : int array }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; width = (hi -. lo) /. float_of_int buckets; counts = Array.make (buckets + 1) 0 }

  let add t x =
    let nb = Array.length t.counts - 1 in
    let i =
      if x < t.lo then 0
      else if x >= t.hi then nb
      else int_of_float ((x -. t.lo) /. t.width)
    in
    let i = Stdlib.min i nb in
    t.counts.(i) <- t.counts.(i) + 1

  let bucket_count t i = t.counts.(i)
  let total t = Array.fold_left ( + ) 0 t.counts

  let render t =
    let b = Buffer.create 256 in
    let nb = Array.length t.counts - 1 in
    for i = 0 to nb do
      if t.counts.(i) > 0 then begin
        let label =
          if i = nb then Printf.sprintf "[%.3g,inf)" t.hi
          else
            Printf.sprintf "[%.3g,%.3g)"
              (t.lo +. (float_of_int i *. t.width))
              (t.lo +. (float_of_int (i + 1) *. t.width))
        in
        Buffer.add_string b (Printf.sprintf "%-18s %d\n" label t.counts.(i))
      end
    done;
    Buffer.contents b
end

(** XDR-style (RFC 4506) wire encoding: big-endian 4-byte units, variable
    opaques padded to 4-byte alignment. The NFS codec builds on this, and
    the µproxy's packet-decode cost model charges per XDR item consumed. *)

exception Truncated
(** Raised by decoders reading past the end of the buffer. *)

module Enc : sig
  type t

  val create : ?size:int -> unit -> t
  val length : t -> int

  val u32 : t -> int -> unit
  (** Unsigned 32-bit, value in [0, 2^32). Values are handled as OCaml
      ints; out-of-range values are masked. *)

  val i32 : t -> int32 -> unit
  val u64 : t -> int64 -> unit
  val bool : t -> bool -> unit
  val enum : t -> int -> unit

  val opaque_fixed : t -> string -> unit
  (** Raw bytes, padded to 4-byte alignment, no length prefix. *)

  val opaque : t -> string -> unit
  (** Length-prefixed variable opaque, padded. *)

  val str : t -> string -> unit
  (** XDR string (same wire form as variable opaque). *)

  val to_bytes : t -> bytes
  (** A fresh copy of the encoded contents. *)
end

module Dec : sig
  type t

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t

  val reset : t -> bytes -> pos:int -> len:int -> unit
  (** Rebind an existing decoder to [buf.[pos, pos+len)] and clear the
      item and span state. Lets a long-lived cursor be reused across
      packets without allocating a decoder per packet. *)

  val pos : t -> int
  val remaining : t -> int
  val skip : t -> int -> unit

  val u32 : t -> int
  val i32 : t -> int32
  val u64 : t -> int64

  val u64_int : t -> int
  (** Unsigned 64-bit read collapsed into an OCaml int without boxing the
      intermediate [int64]. Wire values ≥ 2^62 wrap; simulated offsets
      and cookies never reach that range. *)

  val bool : t -> bool
  val enum : t -> int

  val opaque_fixed : t -> int -> string
  val opaque : t -> string
  val str : t -> string

  (** {2 Cursor peeks}

      The allocation-free alternative to {!opaque}/{!opaque_fixed}: the
      opaque's position and length are recorded in the decoder instead of
      being copied out, and {!span_off}/{!span_len} expose them so callers
      compare names and handles in place against the packet buffer.
      Bounds are enforced exactly as for the materializing reads — a
      truncated buffer or an oversized length field raises {!Truncated}
      before any out-of-bounds access. *)

  val opaque_span : t -> unit
  (** Consume a length-prefixed variable opaque, recording its span. *)

  val opaque_fixed_span : t -> int -> unit
  (** Consume an [n]-byte fixed opaque (plus padding), recording its span.
      Raises {!Truncated} on a negative [n]. *)

  val span_off : t -> int
  (** Offset (into the underlying buffer) of the last opaque span. *)

  val span_len : t -> int
  (** Length of the last opaque span. *)

  val items_read : t -> int
  (** Number of primitive XDR items consumed so far — the µproxy charges
      decode CPU per item, reproducing the paper's observation that
      variable-length RPC/NFS header fields dominate µproxy cost. *)
end

exception Truncated

let[@hot] pad_len n = (4 - (n land 3)) land 3

module Enc = struct
  type t = { buf : Buffer.t }

  let create ?(size = 256) () = { buf = Buffer.create size }
  let length t = Buffer.length t.buf

  let u32 t v =
    Buffer.add_int32_be t.buf (Int32.of_int (v land 0xFFFFFFFF))

  let i32 t v = Buffer.add_int32_be t.buf v
  let u64 t v = Buffer.add_int64_be t.buf v
  let bool t b = u32 t (if b then 1 else 0)
  let enum t v = u32 t v

  let opaque_fixed t s =
    Buffer.add_string t.buf s;
    for _ = 1 to pad_len (String.length s) do
      Buffer.add_char t.buf '\000'
    done

  let opaque t s =
    u32 t (String.length s);
    opaque_fixed t s

  let str = opaque
  let to_bytes t = Buffer.to_bytes t.buf
end

module Dec = struct
  type t = {
    mutable buf : bytes;
    mutable limit : int;
    mutable p : int;
    mutable items : int;
    (* cursor span: position/length of the last opaque consumed by
       [opaque_span] / [opaque_fixed_span] — offsets into [buf], so the
       caller can compare names and handles in place instead of
       materializing strings (the allocation-free peek path) *)
    mutable sp_off : int;
    mutable sp_len : int;
  }

  let of_bytes ?(pos = 0) ?len buf =
    let limit = match len with Some l -> pos + l | None -> Bytes.length buf in
    if pos < 0 || limit > Bytes.length buf then invalid_arg "Xdr.Dec.of_bytes";
    { buf; limit; p = pos; items = 0; sp_off = 0; sp_len = 0 }

  (* Rebind a decoder to a new buffer without allocating a fresh record:
     the µproxy keeps one cursor per instance and resets it per packet. *)
  let reset t buf ~pos ~len =
    let limit = pos + len in
    if pos < 0 || len < 0 || limit > Bytes.length buf then invalid_arg "Xdr.Dec.reset";
    t.buf <- buf;
    t.limit <- limit;
    t.p <- pos;
    t.items <- 0;
    t.sp_off <- 0;
    t.sp_len <- 0

  let[@hot] pos t = t.p
  let[@hot] remaining t = t.limit - t.p

  let[@hot] need t n = if t.p + n > t.limit then raise Truncated

  let[@hot] skip t n =
    need t n;
    t.p <- t.p + n

  (* The int32 read feeds Int32.to_int directly so it stays unboxed;
     let-binding it would box on every call (A1). *)
  let[@hot] u32 t =
    need t 4;
    let p = t.p in
    t.p <- p + 4;
    t.items <- t.items + 1;
    Int32.to_int (Bytes.get_int32_be t.buf p) land 0xFFFFFFFF

  let i32 t =
    need t 4;
    let v = Bytes.get_int32_be t.buf t.p in
    t.p <- t.p + 4;
    t.items <- t.items + 1;
    v

  let u64 t =
    need t 8;
    let v = Bytes.get_int64_be t.buf t.p in
    t.p <- t.p + 8;
    t.items <- t.items + 1;
    v

  let[@hot] bool t = u32 t <> 0
  let[@hot] enum t = u32 t

  (* The u64 read feeds Int64.to_int directly so it stays unboxed (A1);
     wire values above 2^62 wrap into the int domain, which the routing
     arithmetic tolerates (simulated offsets and cookies are small). *)
  let[@hot] u64_int t =
    need t 8;
    let p = t.p in
    t.p <- p + 8;
    t.items <- t.items + 1;
    Int64.to_int (Bytes.get_int64_be t.buf p)

  let opaque_fixed t n =
    need t (n + pad_len n);
    let s = Bytes.sub_string t.buf t.p n in
    t.p <- t.p + n + pad_len n;
    t.items <- t.items + 1;
    s

  let opaque t =
    let n = u32 t in
    opaque_fixed t n

  let str = opaque

  (* ---- cursor peeks: record (offset, length) instead of materializing.
     [n] comes off the wire, so [need] is the out-of-bounds guard for both
     truncated buffers and oversized length fields. *)

  let[@hot] opaque_fixed_span t n =
    if n < 0 then raise Truncated;
    need t (n + pad_len n);
    t.sp_off <- t.p;
    t.sp_len <- n;
    t.p <- t.p + n + pad_len n;
    t.items <- t.items + 1

  let[@hot] opaque_span t =
    let n = u32 t in
    opaque_fixed_span t n

  let[@hot] span_off t = t.sp_off
  let[@hot] span_len t = t.sp_len
  let[@hot] items_read t = t.items
end

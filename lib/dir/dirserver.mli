(** Directory server (Sections 3.2 and 4.3).

    Stores directory information as cells — name entries and attribute
    cells — indexed by hash chains keyed on (parent handle, name). Cells
    for one directory may be distributed across servers: entries reference
    remote attribute cells through the site key minted into each file
    handle, and servers cooperate through the {!Peer} protocol for
    cross-site link counts, entry counts, and attribute access. The same
    code base serves both name-space distribution policies (the µproxy
    decides where requests land):

    - {e mkdir switching}: a directory's entries live with its attribute
      cell; a redirected mkdir creates the child at this site and installs
      the parent's name entry remotely (the "orphaned directory" case,
      done as a logged two-phase update);
    - {e name hashing}: each entry lives at MD5(parent fh, name) mod N;
      conflicting operations on one entry serialize at its site.

    Every update is journaled to a write-ahead log before the reply
    ("dataless" manager); {!crash}/{!recover} rebuild the server from the
    surviving log, re-driving incomplete cross-site updates (idempotent
    thanks to peer-side dedup of operation ids). *)

type policy = Mkdir_switching | Name_hashing

type config = {
  logical_id : int;  (** this server's logical site id, 0-based *)
  nsites : int;  (** logical directory sites in the volume *)
  policy : policy;
  resolve : int -> Slice_net.Packet.addr;  (** logical site -> physical *)
  peer_port : int;  (** peer protocol port (conventionally 2051) *)
  data_sites : Slice_nfs.Fh.t -> Slice_net.Packet.addr list;
      (** storage nodes that may hold bulk data of a file *)
  smallfile_site : Slice_nfs.Fh.t -> Slice_net.Packet.addr option;
  coordinator : Slice_nfs.Fh.t -> (Slice_net.Packet.addr * int) option;
      (** block-service coordinator for multi-site remove/truncate *)
  mirror_new_files : bool;
      (** per-file mirrored-striping policy flag minted into new regular
          files' handles (Section 3.1's attribute-based mirroring) *)
  cap_secret : string option;
      (** when set, every minted handle is sealed with a {!Slice_nfs.Cap}
          capability tag that the storage nodes (sharing the secret)
          verify — the NASD-style protection that lets the µproxy live
          outside the trust boundary (Section 2.2) *)
  also_owns : int list;
      (** additional logical sites this server hosts from the start.
          "Multiple logical sites may map to the same physical server,
          leaving flexibility for reconfiguration" (Section 3.3.1): run
          more logical sites than servers and rebalance by moving logical
          sites ({!adopt_site}) and rebinding the routing table. *)
}

type costs = {
  per_op : float;
      (** CPU per name-space request (~166 µs: the paper's 6000 ops/s
          saturation; log records land around 83 bytes/update, matching
          its ~0.5 MB/s of log traffic at saturation) *)
  per_peer_op : float;
}

val default_costs : costs

type t

val attach :
  Slice_storage.Host.t ->
  ?port:int ->
  ?costs:costs ->
  ?trace:Slice_trace.Trace.t ->
  ?qos:Slice_qos.Wfq.t ->
  config ->
  t
(** Serve NFS on [port] (default 2049) and the peer protocol on
    [config.peer_port]. The volume root (fileID 1) is owned by logical
    site 0, which installs it at attach time. *)

val addr : t -> Slice_net.Packet.addr
val logical_id : t -> int

(** {2 Introspection} *)

val ops_served : t -> int
val peer_ops_served : t -> int
val cross_site_ops : t -> int
(** Requests that needed at least one peer round trip. *)

val entry_count : t -> int
val attr_cell_count : t -> int
val log_bytes : t -> int
val lookup_local : t -> parent:Slice_nfs.Fh.t -> string -> Slice_nfs.Fh.t option
(** Test hook: consult this server's entry table directly. *)

val attr_local : t -> int64 -> Slice_nfs.Nfs.fattr option

(** {2 Failure injection} *)

val log_image : t -> string
(** The stable (synced) journal image — what shared storage would hold
    after this server fails. *)

val adopt_site : t -> site:int -> log:string -> unit
(** Failover: replay a failed peer's journal into this server and begin
    serving its logical site as well. Rebind the routing table to this
    server afterwards. Equivalent to {!import_log} + {!own_site}. *)

val import_log : ?skip:int -> t -> log:string -> int
(** Replay another server's journal image into this server, journaling
    every imported record locally (snapshot records are downgraded to
    merge-snapshots so the import can never reset this server's own
    cells, now or on a later replay). [skip] resumes a previous import of
    the same append-only journal: the first [skip] records are assumed
    already applied, so a second pass over a fresher image applies
    exactly the delta — how a migration catches up, atomically in sim
    time, after its bulk transfer. Returns the records consumed (the
    next [skip]). Does not sync; see {!sync_journal}. *)

val sync_journal : t -> unit
(** Force the journal stable (parks the calling fiber when disk-backed). *)

val owned_sites : t -> int list
val own_site : t -> int -> unit
val disown_site : t -> int -> unit

val begin_drain : t -> int -> unit
(** Enter the drain phase for a moving site: reads keep being answered,
    name-space updates bounce with [SLICE_MISDIRECTED]. Draining is
    volatile: {!crash} clears it, so an aborted migration's donor serves
    the site again after recovery. *)

val end_drain : t -> int -> unit

val site_load : t -> int -> int
(** Requests served for the site since attach (rebalancing signal). *)

val drain_bounces : t -> int
val misdirect_bounces : t -> int

(** {2 Fencing lease (failover)} *)

val set_lease : t -> epoch:int -> until:float -> unit
(** Grant (or renew) this server's fencing lease: it may serve until
    sim-time [until] under fencing epoch [epoch]. Servers start with an
    infinite lease (epoch 0) — attaching a failure detector is what
    makes fencing real. *)

val lease_epoch : t -> int

val is_up : t -> bool
(** Service liveness (false between {!crash} and {!recover}); failure
    detectors use it to pick live standbys. *)

val is_wedged : t -> bool
(** The lease has expired: every NFS and peer request bounces with
    [SLICE_MISDIRECTED] until a new lease is granted ({!set_lease}),
    so a zombie deposed by a takeover cannot serve stale state. *)

val fence_bounces : t -> int
(** Requests bounced because the lease had expired. *)

val host : t -> Slice_storage.Host.t
(** The host this server is attached to (failover detectors register
    their lease-renewal endpoint on it). *)

val reset_site_load : t -> int -> unit
(** Forget the per-site load counter (called when the site is migrated
    or seized away, so stale donor load cannot skew later rebalances). *)

val crash : t -> unit
(** Drop all volatile state; only synced log records survive. *)

val recover : t -> unit
(** Rebuild cells from the log; re-send prepared-but-uncommitted peer
    updates; resume service. *)

val checkpoint : t -> unit
(** Fold the log into a snapshot record (bounds log growth). *)

module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Packet = Slice_net.Packet
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Wal = Slice_wal.Wal
module Host = Slice_storage.Host
module Nfs_endpoint = Slice_storage.Nfs_endpoint
module Ctrl = Slice_storage.Ctrl
module Enc = Slice_xdr.Xdr.Enc
module Dec = Slice_xdr.Xdr.Dec
module Trace = Slice_trace.Trace

type policy = Mkdir_switching | Name_hashing

type config = {
  logical_id : int;
  nsites : int;
  policy : policy;
  resolve : int -> Packet.addr;
  peer_port : int;
  data_sites : Fh.t -> Packet.addr list;
  smallfile_site : Fh.t -> Packet.addr option;
  coordinator : Fh.t -> (Packet.addr * int) option;
  mirror_new_files : bool;
  cap_secret : string option;
  also_owns : int list;
}

type costs = { per_op : float; per_peer_op : float }

let default_costs = { per_op = 166e-6; per_peer_op = 60e-6 }

type cell = {
  mutable attr : Nfs.fattr;
  mutable entries : int; (* live name entries, for directories *)
  mutable symlink : string option;
}

type t = {
  host : Host.t;
  cfg : config;
  costs : costs;
  attrs : (int64, cell) Hashtbl.t;
  entries : (int64 * string, Fh.t) Hashtbl.t;
  dir_index : (int64, (string, Fh.t) Hashtbl.t) Hashtbl.t;
  applied : (int64, unit) Hashtbl.t; (* peer-op dedup *)
  prepares : (int64, int * string) Hashtbl.t; (* op_id -> (site, msg) awaiting commit *)
  rpc : Rpc.t;
  trace : Trace.t option;
  mutable owned : int list; (* logical sites this server currently hosts *)
  draining : (int, unit) Hashtbl.t; (* sites mid-migration: reads ok, updates bounce *)
  site_ops : (int, int ref) Hashtbl.t; (* per-site request load, for rebalancing *)
  mutable wal : Wal.t;
  mutable next_file : int;
  mutable next_op : int64;
  mutable ops : int;
  mutable peer_ops : int;
  mutable peer_calls : int;
  mutable drain_bounces : int;
  mutable misdirect_bounces : int;
  mutable fence_bounces : int;
  (* Fencing lease (failover): while a failure detector renews the lease
     the server serves normally; past [lease_until] it wedges — every
     request bounces SLICE_MISDIRECTED — so a zombie deposed by a
     takeover cannot serve state from its dead incarnation. The default
     (+inf / epoch 0) means "no detector attached": never wedged. *)
  mutable lease_until : float;
  mutable lease_epoch : int;
  mutable up : bool;
}

(* ---- log records ---- *)

let rt_add_entry = 1
let rt_remove_entry = 2
let rt_set_cell = 3
let rt_remove_cell = 4
let rt_prepare = 5
let rt_commit = 6
let rt_applied = 7
let rt_snapshot = 8

(* A snapshot imported from another server's journal (site migration):
   applied as a merge into this server's cells, never as a reset — a
   receiver's own state must survive replaying an adopted journal. *)
let rt_merge_snapshot = 9

let enc_cell e fid (c : cell) =
  Enc.u64 e fid;
  Peer.enc_attr e c.attr;
  Enc.u32 e c.entries;
  match c.symlink with
  | None -> Enc.bool e false
  | Some s ->
      Enc.bool e true;
      Enc.str e s

let dec_cell d =
  let fid = Dec.u64 d in
  let attr = Peer.dec_attr d in
  let entries = Dec.u32 d in
  let symlink = if Dec.bool d then Some (Dec.str d) else None in
  (fid, { attr; entries; symlink })

let payload_of enc =
  let e = Enc.create () in
  enc e;
  Bytes.to_string (Enc.to_bytes e)

let log t rtype payload = ignore (Wal.append t.wal ~rtype payload)

let sync_log ?(span = Trace.null) t = Wal.sync ~span t.wal

let log_cell t fid c = log t rt_set_cell (payload_of (fun e -> enc_cell e fid c))

let log_add_entry t parent name child =
  log t rt_add_entry
    (payload_of (fun e ->
         Enc.u64 e parent;
         Enc.str e name;
         Enc.opaque e (Fh.encode child)))

let log_remove_entry t parent name =
  log t rt_remove_entry
    (payload_of (fun e ->
         Enc.u64 e parent;
         Enc.str e name))

let log_remove_cell t fid = log t rt_remove_cell (payload_of (fun e -> Enc.u64 e fid))

(* ---- state mutation (shared between service path and log replay) ---- *)

let dir_tbl t fid =
  match Hashtbl.find_opt t.dir_index fid with
  | Some tbl -> tbl
  | None ->
      (* lint: bounded — per-directory entry table; namespace state is WAL+checkpoint-backed (§3.4) *)
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.dir_index fid tbl;
      tbl

let apply_add_entry t parent name child =
  Hashtbl.replace t.entries (parent, name) child;
  Hashtbl.replace (dir_tbl t parent) name child

let apply_remove_entry t parent name =
  Hashtbl.remove t.entries (parent, name);
  match Hashtbl.find_opt t.dir_index parent with
  | Some tbl -> Hashtbl.remove tbl name
  | None -> ()

(* ---- helpers ---- *)

let now t = Engine.now t.host.Host.eng

let fresh_op t =
  t.next_op <- Int64.add t.next_op 1L;
  t.next_op

(* [attr_site] must be a logical site this server currently owns (and is
   not draining), or the minted handle's attribute ops would bounce.  The
   fileID keeps the server's own id as residue so ids stay volume-unique
   no matter how sites move. *)
let mint_fh t ~ftype ~mirrored ~attr_site =
  t.next_file <- t.next_file + 1;
  let fh =
    {
      Fh.file_id = Int64.of_int ((t.next_file * 4096) + t.cfg.logical_id);
      gen = 1;
      ftype;
      mirrored;
      attr_site;
      cap = 0L;
    }
  in
  match t.cfg.cap_secret with
  | Some secret -> Slice_nfs.Cap.seal ~secret fh
  | None -> fh

(* Preferred site for cells not tied to an entry site: the server's own
   primary when it still owns it (the pre-reconfiguration behavior),
   otherwise its lowest owned non-draining site. *)
let mint_site t =
  let usable s = List.mem s t.owned && not (Hashtbl.mem t.draining s) in
  if usable t.cfg.logical_id then t.cfg.logical_id
  else
    match List.sort compare (List.filter (fun s -> not (Hashtbl.mem t.draining s)) t.owned) with
    | s :: _ -> s
    | [] -> t.cfg.logical_id

let attr_of_cell (c : cell) =
  match c.attr.Nfs.ftype with
  | Fh.Dir -> { c.attr with size = Int64.of_int (c.entries * 24); used = Int64.of_int (c.entries * 24) }
  | _ -> c.attr

let entry_site t (dfh : Fh.t) name =
  match t.cfg.policy with
  | Mkdir_switching -> dfh.Fh.attr_site
  | Name_hashing -> Slice_nfs.Routekey.name_site ~nsites:t.cfg.nsites dfh name

let local_cell t fid = Hashtbl.find_opt t.attrs fid

let owns t site = List.mem site t.owned
let is_draining t site = Hashtbl.mem t.draining site

let note_site t site =
  let r =
    match Hashtbl.find_opt t.site_ops site with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.site_ops site r;
        r
  in
  incr r

(* ---- peer communication ---- *)

let peer_call ?(span = Trace.null) t ~site msg =
  t.peer_calls <- t.peer_calls + 1;
  let xid = Rpc.fresh_xid t.rpc in
  let payload = Peer.encode_msg ~xid msg in
  let dst = t.cfg.resolve site in
  let reply = Rpc.call t.rpc ~span ~dst ~dport:t.cfg.peer_port payload in
  snd (Peer.decode_reply reply)

(* Two-phase cross-site update: log the prepared message, apply it at the
   peer (which dedups and logs), then log the commit. Recovery re-sends
   prepared-but-uncommitted messages. *)
let peer_update ?(span = Trace.null) t ~site build =
  let op_id = fresh_op t in
  let msg = build op_id in
  let msg_bytes = Bytes.to_string (Peer.encode_msg ~xid:0 msg) in
  Hashtbl.replace t.prepares op_id (site, msg_bytes);
  log t rt_prepare
    (payload_of (fun e ->
         Enc.u64 e op_id;
         Enc.u32 e site;
         Enc.opaque e msg_bytes));
  sync_log ~span t;
  let reply = peer_call ~span t ~site msg in
  Hashtbl.remove t.prepares op_id;
  log t rt_commit (payload_of (fun e -> Enc.u64 e op_id));
  reply

(* ---- data-plane cleanup (remove / truncate) ---- *)

let remove_file_data t (fh : Fh.t) =
  (* Fire-and-forget: the coordinator's intention log owns completion. *)
  let sites =
    t.cfg.data_sites fh
    @ (match t.cfg.smallfile_site fh with Some a -> [ a ] | None -> [])
  in
  match (sites, t.cfg.coordinator fh) with
  | [], _ -> ()
  | _, Some (addr, port) ->
      Engine.spawn t.host.Host.eng (fun () ->
          let xid = Rpc.fresh_xid t.rpc in
          let payload = Ctrl.encode_msg ~xid (Ctrl.Remove_file { fh; sites }) in
          ignore (Rpc.call t.rpc ~timeout:2.0 ~dst:addr ~dport:port payload))
  | _, None -> ()

(* ---- attribute access across sites ---- *)

let child_attr ?(span = Trace.null) t (fh : Fh.t) =
  if owns t fh.Fh.attr_site then
    match local_cell t fh.Fh.file_id with
    | Some c -> Ok (attr_of_cell c)
    | None -> Error Nfs.ERR_STALE
  else
    match peer_call ~span t ~site:fh.Fh.attr_site (Peer.Getattr fh) with
    | Peer.Rattr a -> Ok a
    | Peer.Rerr st -> Error st
    | _ -> Error Nfs.ERR_IO

let bump_nlink ?(span = Trace.null) t (fh : Fh.t) delta =
  if owns t fh.Fh.attr_site then
    match local_cell t fh.Fh.file_id with
    | None -> Error Nfs.ERR_STALE
    | Some c ->
        c.attr <- { c.attr with nlink = c.attr.Nfs.nlink + delta; ctime = now t };
        let attr = attr_of_cell c in
        if c.attr.Nfs.nlink <= 0 then begin
          Hashtbl.remove t.attrs fh.Fh.file_id;
          log_remove_cell t fh.Fh.file_id
        end
        else log_cell t fh.Fh.file_id c;
        sync_log ~span t;
        Ok attr
  else
    match
      peer_update ~span t ~site:fh.Fh.attr_site (fun op_id -> Peer.Nlink { op_id; fh; delta })
    with
    | Peer.Rattr a -> Ok a
    | Peer.Rerr st -> Error st
    | _ -> Error Nfs.ERR_IO

let bump_parent ?(span = Trace.null) t (dfh : Fh.t) delta =
  if owns t dfh.Fh.attr_site then begin
    match local_cell t dfh.Fh.file_id with
    | None -> ()
    | Some c ->
        c.entries <- c.entries + delta;
        c.attr <- { c.attr with mtime = now t; ctime = now t };
        log_cell t dfh.Fh.file_id c;
        sync_log ~span t
  end
  else
    ignore
      (peer_update ~span t ~site:dfh.Fh.attr_site (fun op_id ->
           Peer.Entry_count { op_id; dir = dfh; delta; mtime = now t }))

(* ---- NFS request handling ---- *)

let misdirected = Error Nfs.ERR_MISDIRECTED

let wedged t = now t > t.lease_until

let fence_bounce t =
  t.fence_bounces <- t.fence_bounces + 1;
  misdirected

let bounce t site =
  if owns t site && is_draining t site then t.drain_bounces <- t.drain_bounces + 1
  else t.misdirect_bounces <- t.misdirect_bounces + 1;
  misdirected

(* Read path: a draining site keeps answering. *)
let check_read_site t site ok =
  if owns t site then begin
    note_site t site;
    ok ()
  end
  else bounce t site

(* Update path: a draining site bounces so no name-space update can land
   behind a migration's back; the µproxy retries after the move commits
   or aborts. *)
let check_write_site t site ok =
  if owns t site && not (is_draining t site) then begin
    note_site t site;
    ok ()
  end
  else bounce t site

let check_entry_site t dfh name ok = check_read_site t (entry_site t dfh name) ok
let check_entry_site_w t dfh name ok = check_write_site t (entry_site t dfh name) ok

let do_create ?(span = Trace.null) t (dfh : Fh.t) name ~ftype ~symlink =
  if dfh.Fh.ftype <> Fh.Dir then Error Nfs.ERR_NOTDIR
  else if Hashtbl.mem t.entries (dfh.Fh.file_id, name) then Error Nfs.ERR_EXIST
  else begin
    let mirrored = ftype = Fh.Reg && t.cfg.mirror_new_files in
    (* The attribute cell lives on the entry's own site, so a migration
       of that site carries entry and attrs together. *)
    let fh = mint_fh t ~ftype ~mirrored ~attr_site:(entry_site t dfh name) in
    let attr = Nfs.default_attr ~ftype ~fileid:fh.Fh.file_id ~now:(now t) in
    let c = { attr; entries = 0; symlink } in
    Hashtbl.replace t.attrs fh.Fh.file_id c;
    apply_add_entry t dfh.Fh.file_id name fh;
    log_cell t fh.Fh.file_id c;
    log_add_entry t dfh.Fh.file_id name fh;
    sync_log ~span t;
    bump_parent ~span t dfh 1;
    Ok (fh, attr_of_cell c)
  end

(* Redirected mkdir (mkdir switching): this site was chosen by the µproxy
   to host the orphaned directory; mint it here, then install the name
   entry at the parent's site as a two-phase peer update. *)
let do_remote_mkdir ?(span = Trace.null) t (dfh : Fh.t) name =
  let fh = mint_fh t ~ftype:Fh.Dir ~mirrored:false ~attr_site:(mint_site t) in
  let attr = Nfs.default_attr ~ftype:Fh.Dir ~fileid:fh.Fh.file_id ~now:(now t) in
  let c = { attr; entries = 0; symlink = None } in
  Hashtbl.replace t.attrs fh.Fh.file_id c;
  log_cell t fh.Fh.file_id c;
  sync_log ~span t;
  match
    peer_update ~span t ~site:(entry_site t dfh name) (fun op_id ->
        Peer.Add_entry { op_id; dir = dfh; name; child = fh })
  with
  | Peer.Ack -> Ok (fh, attr_of_cell c)
  | Peer.Rerr st ->
      Hashtbl.remove t.attrs fh.Fh.file_id;
      log_remove_cell t fh.Fh.file_id;
      sync_log ~span t;
      Error st
  | _ -> Error Nfs.ERR_IO

let add_entry_somewhere ?(span = Trace.null) t (dfh : Fh.t) name child =
  if owns t (entry_site t dfh name) then begin
    if Hashtbl.mem t.entries (dfh.Fh.file_id, name) then Error Nfs.ERR_EXIST
    else begin
      apply_add_entry t dfh.Fh.file_id name child;
      log_add_entry t dfh.Fh.file_id name child;
      sync_log ~span t;
      bump_parent ~span t dfh 1;
      Ok ()
    end
  end
  else
    match
      peer_update ~span t ~site:(entry_site t dfh name) (fun op_id ->
          Peer.Add_entry { op_id; dir = dfh; name; child })
    with
    | Peer.Ack -> Ok ()
    | Peer.Rerr st -> Error st
    | _ -> Error Nfs.ERR_IO

let remove_entry_here ?(span = Trace.null) t (dfh : Fh.t) name =
  match Hashtbl.find_opt t.entries (dfh.Fh.file_id, name) with
  | None -> Error Nfs.ERR_NOENT
  | Some child ->
      apply_remove_entry t dfh.Fh.file_id name;
      log_remove_entry t dfh.Fh.file_id name;
      sync_log ~span t;
      bump_parent ~span t dfh (-1);
      Ok child

let handle t span (call : Nfs.call) : Nfs.response =
  t.ops <- t.ops + 1;
  (* Expired lease: the server is (or must assume it is) deposed. Wedge
     everything — reads included, since a takeover peer may already be
     serving newer state for our sites. The µproxy treats the bounce
     like any soft-state miss: refresh tables, retry at the new owner. *)
  if wedged t then fence_bounce t
  else
  match call with
  | Nfs.Null -> Ok Nfs.RNull
  | Nfs.Getattr fh ->
      check_read_site t fh.Fh.attr_site (fun () ->
        match local_cell t fh.Fh.file_id with
        | Some c -> Ok (Nfs.RGetattr (attr_of_cell c))
        | None -> Error Nfs.ERR_STALE)
  | Nfs.Setattr (fh, s) ->
      check_write_site t fh.Fh.attr_site (fun () ->
        match local_cell t fh.Fh.file_id with
        | None -> Error Nfs.ERR_STALE
        | Some c ->
            let old_size = c.attr.Nfs.size in
            c.attr <- Nfs.apply_sattr c.attr s ~now:(now t);
            log_cell t fh.Fh.file_id c;
            sync_log ~span t;
            (match s.Nfs.set_size with
            | Some nsz when fh.Fh.ftype = Fh.Reg && Int64.compare nsz old_size < 0 ->
                (* Shrinking truncate: multi-site data trim through the
                   coordinator's intention protocol. *)
                if Int64.compare nsz 0L = 0 then remove_file_data t fh
            | _ -> ());
            Ok (Nfs.RSetattr (attr_of_cell c)))
  | Nfs.Lookup (dfh, name) ->
      if dfh.Fh.ftype <> Fh.Dir then Error Nfs.ERR_NOTDIR
      else
        check_entry_site t dfh name (fun () ->
            match Hashtbl.find_opt t.entries (dfh.Fh.file_id, name) with
            | None -> Error Nfs.ERR_NOENT
            | Some child -> (
                match child_attr ~span t child with
                | Ok a -> Ok (Nfs.RLookup (child, a))
                | Error st -> Error st))
  | Nfs.Access (fh, mode) ->
      check_read_site t fh.Fh.attr_site (fun () ->
        match local_cell t fh.Fh.file_id with
        | Some c -> Ok (Nfs.RAccess (mode, attr_of_cell c))
        | None -> Error Nfs.ERR_STALE)
  | Nfs.Readlink fh ->
      check_read_site t fh.Fh.attr_site (fun () ->
        match local_cell t fh.Fh.file_id with
        | Some ({ symlink = Some target; _ } as c) -> Ok (Nfs.RReadlink (target, attr_of_cell c))
        | Some _ -> Error Nfs.ERR_IO
        | None -> Error Nfs.ERR_STALE)
  | Nfs.Create (dfh, name) ->
      check_entry_site_w t dfh name (fun () ->
          match do_create ~span t dfh name ~ftype:Fh.Reg ~symlink:None with
          | Ok (fh, a) -> Ok (Nfs.RCreate (fh, a))
          | Error st -> Error st)
  | Nfs.Mkdir (dfh, name) ->
      if dfh.Fh.ftype <> Fh.Dir then Error Nfs.ERR_NOTDIR
      else begin
        let es = entry_site t dfh name in
        if owns t es then
          if is_draining t es then bounce t es
          else begin
            note_site t es;
            match do_create ~span t dfh name ~ftype:Fh.Dir ~symlink:None with
            | Ok (fh, a) -> Ok (Nfs.RMkdir (fh, a))
            | Error st -> Error st
          end
        else (
          (* µproxy redirected this mkdir here on purpose. *)
          match do_remote_mkdir ~span t dfh name with
          | Ok (fh, a) -> Ok (Nfs.RMkdir (fh, a))
          | Error st -> Error st)
      end
  | Nfs.Symlink (dfh, name, target) ->
      check_entry_site_w t dfh name (fun () ->
          match do_create ~span t dfh name ~ftype:Fh.Lnk ~symlink:(Some target) with
          | Ok (fh, a) -> Ok (Nfs.RSymlink (fh, a))
          | Error st -> Error st)
  | Nfs.Remove (dfh, name) ->
      check_entry_site_w t dfh name (fun () ->
          match Hashtbl.find_opt t.entries (dfh.Fh.file_id, name) with
          | None -> Error Nfs.ERR_NOENT
          | Some child when child.Fh.ftype = Fh.Dir -> Error Nfs.ERR_ISDIR
          | Some child -> (
              match remove_entry_here ~span t dfh name with
              | Error st -> Error st
              | Ok _ -> (
                  match bump_nlink ~span t child (-1) with
                  | Ok a ->
                      if a.Nfs.nlink <= 0 && child.Fh.ftype = Fh.Reg then
                        remove_file_data t child;
                      Ok Nfs.RRemove
                  | Error _ -> Ok Nfs.RRemove)))
  | Nfs.Rmdir (dfh, name) ->
      check_entry_site_w t dfh name (fun () ->
          match Hashtbl.find_opt t.entries (dfh.Fh.file_id, name) with
          | None -> Error Nfs.ERR_NOENT
          | Some child when child.Fh.ftype <> Fh.Dir -> Error Nfs.ERR_NOTDIR
          | Some child -> (
              match child_attr ~span t child with
              | Error st -> Error st
              | Ok a ->
                  if Int64.compare a.Nfs.size 0L > 0 then Error Nfs.ERR_NOTEMPTY
                  else (
                    match remove_entry_here ~span t dfh name with
                    | Error st -> Error st
                    | Ok _ ->
                        ignore (bump_nlink ~span t child (-a.Nfs.nlink));
                        Ok Nfs.RRmdir)))
  | Nfs.Rename (odfh, oname, ndfh, nname) ->
      check_entry_site_w t odfh oname (fun () ->
          match Hashtbl.find_opt t.entries (odfh.Fh.file_id, oname) with
          | None -> Error Nfs.ERR_NOENT
          | Some child -> (
              match add_entry_somewhere ~span t ndfh nname child with
              | Error st -> Error st
              | Ok () -> (
                  match remove_entry_here ~span t odfh oname with
                  | Error st -> Error st
                  | Ok _ ->
                      (* ctime bump on the renamed object *)
                      ignore (bump_nlink ~span t child 0);
                      Ok Nfs.RRename)))
  | Nfs.Link (file, ndfh, nname) ->
      check_entry_site_w t ndfh nname (fun () ->
          if file.Fh.ftype = Fh.Dir then Error Nfs.ERR_ISDIR
          else
            match add_entry_somewhere ~span t ndfh nname file with
            | Error st -> Error st
            | Ok () -> (
                match bump_nlink ~span t file 1 with
                | Ok a -> Ok (Nfs.RLink a)
                | Error st -> Error st))
  | Nfs.Readdir (dfh, cookie, count) ->
      if dfh.Fh.ftype <> Fh.Dir then Error Nfs.ERR_NOTDIR
      else begin
        (* Under name hashing the µproxy iterates the directory site by
           site, tagging the requested site into the cookie's high bits;
           decode it, serve only that site's entries (one server may own
           several sites) and answer with the site-local cookie — the
           µproxy re-tags it. Under mkdir switching all of a directory's
           entries live at its attribute site. *)
        let site, start =
          match t.cfg.policy with
          | Mkdir_switching -> (dfh.Fh.attr_site, Int64.to_int cookie)
          | Name_hashing ->
              ( Int64.to_int (Int64.shift_right_logical cookie 32) mod t.cfg.nsites,
                Int64.to_int (Int64.logand cookie 0xFFFF_FFFFL) )
        in
        if not (owns t site) then bounce t site
        else begin
        note_site t site;
        let names =
          match Hashtbl.find_opt t.dir_index dfh.Fh.file_id with
          | None -> []
          | Some tbl -> List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
        in
        let names =
          match t.cfg.policy with
          | Mkdir_switching -> names
          | Name_hashing ->
              List.filter (fun (name, _) -> entry_site t dfh name = site) names
        in
        let total = List.length names in
        let rec take i acc = function
          | [] -> List.rev acc
          | _ when i >= start + count -> List.rev acc
          | (name, (child : Fh.t)) :: rest ->
              if i < start then take (i + 1) acc rest
              else
                take (i + 1)
                  ({ Nfs.entry_id = child.Fh.file_id;
                     entry_name = name;
                     entry_cookie = Int64.of_int (i + 1) }
                  :: acc)
                  rest
        in
        let entries = take 0 [] names in
        let next = min total (start + count) in
        Ok (Nfs.RReaddir (entries, Int64.of_int next, next >= total))
        end
      end
  | Nfs.Fsstat _ ->
      Ok
        (Nfs.RFsstat
           {
             total_bytes = 1_000_000_000_000L;
             free_bytes = 900_000_000_000L;
             total_files = 1_000_000_000L;
             free_files = 999_000_000L;
           })
  | Nfs.Read _ | Nfs.Write _ | Nfs.Commit _ -> Error Nfs.ERR_BADHANDLE

(* ---- peer request handling ---- *)

let mark_applied t op_id =
  Hashtbl.replace t.applied op_id ();
  log t rt_applied (payload_of (fun e -> Enc.u64 e op_id))

let handle_peer t (msg : Peer.msg) : Peer.reply =
  t.peer_ops <- t.peer_ops + 1;
  if wedged t then begin
    t.fence_bounces <- t.fence_bounces + 1;
    Peer.Rerr Nfs.ERR_MISDIRECTED
  end
  else
  let dedup op_id apply =
    if Hashtbl.mem t.applied op_id then Peer.Ack
    else begin
      let r = apply () in
      mark_applied t op_id;
      sync_log t;
      r
    end
  in
  match msg with
  | Peer.Getattr fh -> (
      match local_cell t fh.Fh.file_id with
      | Some c -> Peer.Rattr (attr_of_cell c)
      | None -> Peer.Rerr Nfs.ERR_STALE)
  | Peer.Setattr { op_id; fh; sattr } ->
      dedup op_id (fun () ->
          match local_cell t fh.Fh.file_id with
          | None -> Peer.Rerr Nfs.ERR_STALE
          | Some c ->
              c.attr <- Nfs.apply_sattr c.attr sattr ~now:(now t);
              log_cell t fh.Fh.file_id c;
              Peer.Rattr (attr_of_cell c))
  | Peer.Nlink { op_id; fh; delta } -> (
      match local_cell t fh.Fh.file_id with
      | None -> Peer.Rerr Nfs.ERR_STALE
      | Some c ->
          if Hashtbl.mem t.applied op_id then Peer.Rattr (attr_of_cell c)
          else begin
            c.attr <- { c.attr with nlink = c.attr.Nfs.nlink + delta; ctime = now t };
            let attr = attr_of_cell c in
            if c.attr.Nfs.nlink <= 0 then begin
              Hashtbl.remove t.attrs fh.Fh.file_id;
              log_remove_cell t fh.Fh.file_id
            end
            else log_cell t fh.Fh.file_id c;
            mark_applied t op_id;
            sync_log t;
            Peer.Rattr attr
          end)
  | Peer.Entry_count { op_id; dir; delta; mtime } ->
      dedup op_id (fun () ->
          (match local_cell t dir.Fh.file_id with
          | Some c ->
              c.entries <- c.entries + delta;
              c.attr <- { c.attr with mtime; ctime = now t };
              log_cell t dir.Fh.file_id c
          | None -> ());
          Peer.Ack)
  | Peer.Add_entry { op_id; dir; name; child } ->
      if Hashtbl.mem t.applied op_id then Peer.Ack
      else if Hashtbl.mem t.entries (dir.Fh.file_id, name) then Peer.Rerr Nfs.ERR_EXIST
      else begin
        apply_add_entry t dir.Fh.file_id name child;
        log_add_entry t dir.Fh.file_id name child;
        (match local_cell t dir.Fh.file_id with
        | Some c ->
            c.entries <- c.entries + 1;
            c.attr <- { c.attr with mtime = now t; ctime = now t };
            log_cell t dir.Fh.file_id c
        | None -> ());
        mark_applied t op_id;
        sync_log t;
        Peer.Ack
      end
  | Peer.Remove_entry { op_id; dir; name } ->
      if Hashtbl.mem t.applied op_id then Peer.Ack
      else if not (Hashtbl.mem t.entries (dir.Fh.file_id, name)) then Peer.Rerr Nfs.ERR_NOENT
      else begin
        apply_remove_entry t dir.Fh.file_id name;
        log_remove_entry t dir.Fh.file_id name;
        (match local_cell t dir.Fh.file_id with
        | Some c ->
            c.entries <- c.entries - 1;
            c.attr <- { c.attr with mtime = now t; ctime = now t };
            log_cell t dir.Fh.file_id c
        | None -> ());
        mark_applied t op_id;
        sync_log t;
        Peer.Ack
      end
  | Peer.Get_entry { dir; name } -> (
      match Hashtbl.find_opt t.entries (dir.Fh.file_id, name) with
      | Some child -> Peer.Rentry child
      | None -> Peer.Rerr Nfs.ERR_NOENT)

(* ---- service wiring ---- *)

let serve_peer t =
  Nfs_endpoint.serve_raw t.host ~port:t.cfg.peer_port ~handler:(fun pkt ->
      Engine.spawn t.host.Host.eng (fun () ->
          if t.up then
            match (try Some (Peer.decode_msg pkt.Packet.payload) with Peer.Malformed -> None) with
            | None -> ()
            | Some (xid, msg) ->
                let span =
                  Trace.child (Trace.span_of_xid t.trace xid) ~hop:"server"
                    ~site:(Host.name t.host) ()
                in
                Host.cpu t.host t.costs.per_peer_op;
                let reply = handle_peer t msg in
                Trace.finish span;
                Nfs_endpoint.reply_to t.host pkt (Peer.encode_reply ~xid reply)))

let install_root t =
  (* runs as a fiber at time 0: the log sync parks *)
  if t.cfg.logical_id = 0 then begin
    let c =
      {
        attr = Nfs.default_attr ~ftype:Fh.Dir ~fileid:Fh.root.Fh.file_id ~now:0.0;
        entries = 0;
        symlink = None;
      }
    in
    Hashtbl.replace t.attrs Fh.root.Fh.file_id c;
    log_cell t Fh.root.Fh.file_id c;
    sync_log t
  end

let make_wal (host : Host.t) =
  match host.Host.disk with
  | Some disk -> Wal.create ~eng:host.Host.eng ~disk ~name:"dir.wal" ()
  | None -> Wal.create ~name:"dir.wal" ()

(* lint: F1 ok — bootstrap: installs the root cell before the server is exposed to clients; no deposed instance can exist yet *)
let attach host ?(port = 2049) ?(costs = default_costs) ?trace ?qos cfg =
  let t =
    {
      host;
      cfg;
      costs;
      trace;
      (* lint: bounded — attribute cells: dataless-manager state, WAL+checkpoint-backed (§3.4) *)
      attrs = Hashtbl.create 1024;
      (* lint: bounded — name entries: dataless-manager state, WAL+checkpoint-backed (§3.4) *)
      entries = Hashtbl.create 4096;
      (* lint: bounded — one row per directory, dropped with the directory *)
      dir_index = Hashtbl.create 256;
      (* lint: bounded — applied-op dedup, compacted into each checkpoint *)
      applied = Hashtbl.create 64;
      (* lint: bounded — one row per in-flight two-phase op; commit/abort removes it *)
      prepares = Hashtbl.create 16;
      rpc = Rpc.create host.Host.net host.Host.addr ~port:2053;
      owned = cfg.logical_id :: cfg.also_owns;
      (* lint: bounded — sites mid-migration; cleared on commit/abort/crash *)
      draining = Hashtbl.create 4;
      (* lint: bounded — one row per logical directory site *)
      site_ops = Hashtbl.create 4;
      wal = make_wal host;
      next_file = 1;
      next_op = Int64.of_int (cfg.logical_id * 100_000_000);
      ops = 0;
      peer_ops = 0;
      peer_calls = 0;
      drain_bounces = 0;
      misdirect_bounces = 0;
      fence_bounces = 0;
      lease_until = infinity;
      lease_epoch = 0;
      up = true;
    }
  in
  Nfs_endpoint.serve host ~port
    ~cost:{ per_op = costs.per_op; per_byte = 0.0 }
    ~alive:(fun () -> t.up)
    ?trace ?qos ~handler:(handle t) ();
  serve_peer t;
  Engine.spawn host.Host.eng (fun () -> install_root t);
  t

let addr t = t.host.Host.addr
let logical_id t = t.cfg.logical_id
let ops_served t = t.ops
let peer_ops_served t = t.peer_ops
let cross_site_ops t = t.peer_calls
let entry_count t = Hashtbl.length t.entries
let attr_cell_count t = Hashtbl.length t.attrs
let log_bytes t = Wal.bytes_appended t.wal

let lookup_local t ~parent name = Hashtbl.find_opt t.entries (parent.Fh.file_id, name)
let owned_sites t = t.owned

let attr_local t fid = Option.map attr_of_cell (local_cell t fid)

(* ---- crash / recovery ---- *)

let reset_volatile t =
  Hashtbl.reset t.attrs;
  Hashtbl.reset t.entries;
  Hashtbl.reset t.dir_index;
  Hashtbl.reset t.applied;
  Hashtbl.reset t.prepares

(* lint: F1 ok — crash simulation: rebuilding the surviving journal image models the disk, not a client-visible mutation *)
let crash t =
  t.up <- false;
  (* A drain in progress is volatile control-plane state: the migration
     aborts and the recovered server serves the site normally again. *)
  Hashtbl.reset t.draining;
  let image = Wal.image t.wal in
  reset_volatile t;
  let wal = make_wal t.host in
  ignore (Wal.replay image (fun ~lsn:_ ~rtype payload -> ignore (Wal.append wal ~rtype payload)));
  Wal.sync wal;
  t.wal <- wal

let apply_record t ~rtype payload =
  let d = Dec.of_bytes (Bytes.of_string payload) in
  if rtype = rt_add_entry then begin
    let parent = Dec.u64 d in
    let name = Dec.str d in
    match Fh.decode (Dec.opaque d) with
    | Some child -> apply_add_entry t parent name child
    | None -> ()
  end
  else if rtype = rt_remove_entry then begin
    let parent = Dec.u64 d in
    apply_remove_entry t parent (Dec.str d)
  end
  else if rtype = rt_set_cell then begin
    let fid, c = dec_cell d in
    Hashtbl.replace t.attrs fid c;
    let minted = Int64.to_int fid / 4096 in
    if minted > t.next_file then t.next_file <- minted
  end
  else if rtype = rt_remove_cell then Hashtbl.remove t.attrs (Dec.u64 d)
  else if rtype = rt_prepare then begin
    let op_id = Dec.u64 d in
    let site = Dec.u32 d in
    let msg = Dec.opaque d in
    Hashtbl.replace t.prepares op_id (site, msg);
    if Int64.compare op_id t.next_op > 0 then t.next_op <- op_id
  end
  else if rtype = rt_commit then Hashtbl.remove t.prepares (Dec.u64 d)
  else if rtype = rt_applied then Hashtbl.replace t.applied (Dec.u64 d) ()
  else if rtype = rt_snapshot || rtype = rt_merge_snapshot then begin
    (* A server's own snapshot replaces its state wholesale; a snapshot
       imported from another server's journal merges into it (the
       receiver's own sites must survive the replay). *)
    if rtype = rt_snapshot then reset_volatile t;
    let n_cells = Dec.u32 d in
    for _ = 1 to n_cells do
      let fid, c = dec_cell d in
      Hashtbl.replace t.attrs fid c;
      let minted = Int64.to_int fid / 4096 in
      if minted > t.next_file then t.next_file <- minted
    done;
    let n_entries = Dec.u32 d in
    for _ = 1 to n_entries do
      let parent = Dec.u64 d in
      let name = Dec.str d in
      match Fh.decode (Dec.opaque d) with
      | Some child -> apply_add_entry t parent name child
      | None -> ()
    done
  end

(* lint: F1 ok — recovery replay runs before the server answers requests; fencing applies to dispatch, not to replay *)
let recover t =
  reset_volatile t;
  ignore
    (Wal.replay (Wal.image t.wal) (fun ~lsn:_ ~rtype payload ->
         try apply_record t ~rtype payload with Slice_xdr.Xdr.Truncated -> ()));
  t.up <- true;
  (* Re-drive prepared-but-uncommitted cross-site updates; peers dedup by
     op id so re-delivery is harmless. *)
  let pending = Hashtbl.fold (fun op_id v acc -> (op_id, v) :: acc) t.prepares [] in
  Engine.spawn t.host.Host.eng (fun () ->
      List.iter
        (fun (op_id, (site, msg_bytes)) ->
          match Peer.decode_msg (Bytes.of_string msg_bytes) with
          | _, msg ->
              ignore (peer_call t ~site msg);
              Hashtbl.remove t.prepares op_id;
              log t rt_commit (payload_of (fun e -> Enc.u64 e op_id));
              sync_log t
          | exception Peer.Malformed -> ())
        pending)

let log_image t = Wal.image t.wal

(* Replay another server's journal into this one, journaling every
   imported record locally so this server's own log stays self-contained
   (no checkpoint needed before a later crash). Snapshot records are
   downgraded to merge-snapshots: an import must never reset the
   receiver's own cells, here or on any later replay of its log.
   [skip] resumes a previous import: the first [skip] records of [log]
   are assumed already imported (journals are append-only, so a second
   pass over a fresher image of the same journal applies exactly the
   delta). Returns the record count consumed, to pass as the next
   [skip]. Does not sync — callers decide when to harden. *)
(* lint: F1 ok — migration control plane: the coordinator fences the source server before its journal is imported here *)
let import_log ?(skip = 0) t ~log:image =
  let seen = ref 0 in
  ignore
    (Wal.replay image (fun ~lsn:_ ~rtype payload ->
         let n = !seen in
         incr seen;
         if n >= skip then begin
           let rtype = if rtype = rt_snapshot then rt_merge_snapshot else rtype in
           log t rtype payload;
           try apply_record t ~rtype payload with Slice_xdr.Xdr.Truncated -> ()
         end));
  !seen

let sync_journal t = sync_log t

let own_site t site = if not (List.mem site t.owned) then t.owned <- site :: t.owned

let disown_site t site =
  t.owned <- List.filter (fun s -> s <> site) t.owned;
  Hashtbl.remove t.draining site

let begin_drain t site = Hashtbl.replace t.draining site ()
let end_drain t site = Hashtbl.remove t.draining site

let site_load t site =
  match Hashtbl.find_opt t.site_ops site with Some r -> !r | None -> 0

let drain_bounces t = t.drain_bounces
let misdirect_bounces t = t.misdirect_bounces

(* ---- fencing lease (failover) ---- *)

let set_lease t ~epoch ~until =
  t.lease_epoch <- epoch;
  t.lease_until <- until

let lease_epoch t = t.lease_epoch
let fence_bounces t = t.fence_bounces
let is_wedged t = wedged t
let is_up t = t.up
let host t = t.host

(* Clear the per-site load counter a donor accumulated for a site it no
   longer owns; without this a later rebalance reads the dead server's
   stale load through the registry gauge. *)
let reset_site_load t site = Hashtbl.remove t.site_ops site

(* Failover (Section 2.3): "a surviving site assumes the role of a failed
   server, recovering its state from shared storage". [adopt_site] replays
   the failed server's surviving journal into this server's cells and
   starts answering for its logical site; the external routing table is
   then rebound to this server. *)
(* lint: F1 ok — failover takeover: the deposed server is fenced by lease expiry before its site is adopted *)
let adopt_site t ~site ~log =
  ignore (import_log t ~log);
  own_site t site
  (* the caller may checkpoint afterwards to compact the imported records
     into a single snapshot of this server's journal *)

(* lint: F1 ok — journal compaction is operator-driven control plane, not client dispatch; it rewrites, never extends, history *)
let checkpoint t =
  let payload =
    payload_of (fun e ->
        Enc.u32 e (Hashtbl.length t.attrs);
        Hashtbl.iter (fun fid c -> enc_cell e fid c) t.attrs;
        Enc.u32 e (Hashtbl.length t.entries);
        Hashtbl.iter
          (fun (parent, name) child ->
            Enc.u64 e parent;
            Enc.str e name;
            Enc.opaque e (Fh.encode child))
          t.entries)
  in
  Wal.checkpoint t.wal;
  log t rt_snapshot payload;
  (* Preserve dedup state and outstanding prepares across the checkpoint. *)
  Hashtbl.iter (fun op_id () -> log t rt_applied (payload_of (fun e -> Enc.u64 e op_id))) t.applied;
  Hashtbl.iter
    (fun op_id (site, msg) ->
      log t rt_prepare
        (payload_of (fun e ->
             Enc.u64 e op_id;
             Enc.u32 e site;
             Enc.opaque e msg)))
    t.prepares;
  sync_log t

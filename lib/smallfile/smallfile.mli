(** Small-file server (Section 4.4 of the paper).

    Handles all I/O below the threshold offset. Each file is a sequence of
    8 KB logical blocks; a per-file {e map record} — held in an on-disk map
    descriptor array indexed by fileID — gives an (offset, length) extent
    in the backing storage object for each logical block. Physical space
    is rounded up to the next power of two (an 8300-byte file consumes
    8192 + 128 bytes), allocated best-fit from free fragments or appended
    at the end of the backing object, so create-heavy workloads lay data
    out sequentially (the Bullet-server/FFS-fragments/SquidMLA lineage the
    paper cites). Map records and data share the server's buffer cache;
    commit complies with NFS V3 stability semantics. *)

type t

val attach :
  Slice_storage.Host.t ->
  ?port:int ->
  ?cache_bytes:int ->
  ?backing_bytes:int64 ->
  ?threshold:int ->
  ?nsites:int ->
  ?sites:int list ->
  ?backend:Slice_disk.Bcache.backend ->
  ?trace:Slice_trace.Trace.t ->
  ?qos:Slice_qos.Wfq.t ->
  unit ->
  t
(** Default port 2049, cache 1 GB (the SPECsfs configuration), backing
    object 64 GB, threshold 64 KB. [backend] is where zone blocks live:
    small-file servers are dataless managers, so production configurations
    pass a remote backend over the network storage array; the default uses
    the host's local disk (for standalone tests). [nsites] is the logical
    small-file site count of the volume and [sites] the sites this server
    initially owns (defaults 1 / [\[0\]]); requests whose handle hashes to
    a site not owned here bounce with [SLICE_MISDIRECTED]. *)

val addr : t -> Slice_net.Packet.addr
val threshold : t -> int

val crash : t -> unit
(** Fail-stop: the endpoint goes silent and the cache is cold on
    {!recover}; map records and data survive in the backing object. *)

val recover : t -> unit
val is_up : t -> bool

val file_count : t -> int
val bytes_stored : t -> int64
(** Physical bytes allocated (after power-of-two rounding). *)

val logical_bytes : t -> int64
(** Sum of file sizes held here (below-threshold bytes). *)

val fragmentation : t -> int
(** Free-fragment count in the backing object. *)

val cache_hits : t -> int
val cache_misses : t -> int
val reads : t -> int
val writes : t -> int

val physical_size_of : int -> int
(** The power-of-two rounding rule for a block's physical footprint
    (minimum fragment 128 bytes); exposed for tests: an 8300-byte file
    occupies [physical_size_of 8192 + physical_size_of 108] = 8320. *)

(** {2 Reconfiguration hooks}

    In-process control-plane surface used by [Slice_reconfig]: logical
    small-file sites can be drained (reads served, writes bounced with
    [SLICE_MISDIRECTED]), exported, imported and rebound without stopping
    the server. *)

val owned_sites : t -> int list
val own_site : t -> int -> unit
val disown_site : t -> int -> unit

val begin_drain : t -> int -> unit
(** Draining is volatile: {!crash} clears it, so an aborted migration's
    donor serves the site again after recovery. *)

val end_drain : t -> int -> unit

type site_image
(** A deep copy of one site's files, for migration. *)

val export_site : t -> int -> site_image
val import_site : t -> int -> site_image -> unit
val drop_site : t -> int -> unit
val image_bytes : site_image -> int64
val site_bytes : t -> int -> int64
val site_load : t -> int -> int

val reset_site_load : t -> int -> unit
(** Forget the per-site load counter (site migrated or seized away). *)

val drain_bounces : t -> int
val misdirect_bounces : t -> int

(** {2 Fencing lease (failover)} *)

val set_lease : t -> epoch:int -> until:float -> unit
(** Grant (or renew) this server's fencing lease: it may serve until
    sim-time [until] under fencing epoch [epoch]. Servers start with an
    infinite lease (epoch 0) — attaching a failure detector is what
    makes fencing real. *)

val lease_epoch : t -> int

val is_wedged : t -> bool
(** The lease has expired: every request bounces with
    [SLICE_MISDIRECTED] until a new lease is granted, so a zombie
    deposed by a takeover cannot serve stale file contents. *)

val fence_bounces : t -> int
(** Requests bounced because the lease had expired. *)

val host : t -> Slice_storage.Host.t

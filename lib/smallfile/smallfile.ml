module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Bcache = Slice_disk.Bcache
module Ffs = Slice_disk.Ffs
module Host = Slice_storage.Host
module Nfs_endpoint = Slice_storage.Nfs_endpoint
module Trace = Slice_trace.Trace

let block_size = Bcache.block_size

(* Backing-cache object ids: one for the map descriptor array, one for the
   data zone. *)
let map_obj = 1L
let data_obj = 2L

(* Map records are 96 bytes in the descriptor array: 85 fit per 8 KB
   block, so files created together share map blocks (the locality the
   paper's fileID assignment is designed for). *)
let map_recs_per_block = 85

type extent = { phys_off : int64; phys_len : int }

type filerec = {
  mutable size : int;
  mutable blocks : extent option array; (* per 8 KB logical block *)
  mutable data : bytes option; (* materialized contents, when real *)
  mutable site : int; (* logical small-file site (stamped from the handle) *)
}

type t = {
  host : Host.t;
  cache : Bcache.t;
  alloc : Ffs.t;
  files : (int64, filerec) Hashtbl.t;
  threshold : int;
  nsites : int; (* logical small-file sites in the volume *)
  owned : (int, unit) Hashtbl.t; (* sites served here *)
  draining : (int, unit) Hashtbl.t; (* sites mid-migration: reads ok, writes bounce *)
  site_ops : (int, int ref) Hashtbl.t; (* per-site request load, for rebalancing *)
  mutable up : bool;
  mutable logical : int64;
  mutable physical : int64;
  mutable reads : int;
  mutable writes : int;
  mutable drain_bounces : int;
  mutable misdirect_bounces : int;
  (* Fencing lease (failover): an expired lease wedges the whole server —
     every request bounces — so a zombie deposed by a takeover cannot
     serve stale file contents. Defaults (infinite lease, epoch 0) keep
     standalone servers unfenced. *)
  mutable lease_until : float;
  mutable lease_epoch : int;
  mutable fence_bounces : int;
}

let physical_size_of n =
  if n <= 0 then 0
  else begin
    let size = ref 128 in
    while !size < n do
      size := !size * 2
    done;
    min !size block_size
  end

(* Logical small-file site of a handle; a file's state is keyed by
   fileID, so the site is stamped into its record when the handle passes
   by (the fileID alone cannot reproduce the routing hash). *)
let site_of t fh =
  if t.nsites <= 1 then 0 else Slice_nfs.Routekey.file_site ~nsites:t.nsites fh

let filerec_of t fh =
  let fid = fh.Fh.file_id in
  let site = site_of t fh in
  match Hashtbl.find_opt t.files fid with
  | Some fr ->
      fr.site <- site;
      fr
  | None ->
      let fr = { size = 0; blocks = [||]; data = None; site } in
      Hashtbl.replace t.files fid fr;
      fr

let owns t site = Hashtbl.mem t.owned site
let is_draining t site = Hashtbl.mem t.draining site

let touch_site t site =
  let r =
    match Hashtbl.find_opt t.site_ops site with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.site_ops site r;
        r
  in
  incr r

let ensure_blocks fr n =
  if Array.length fr.blocks < n then begin
    let nb = Array.make n None in
    Array.blit fr.blocks 0 nb 0 (Array.length fr.blocks);
    fr.blocks <- nb
  end

(* Touch the map descriptor block for this fileID in the cache. *)
let touch_map t fid ~write =
  let blk = Int64.to_int (Int64.rem fid 1_000_000L) / map_recs_per_block in
  if write then Bcache.write t.cache ~obj:map_obj ~block:blk
  else Bcache.read t.cache ~obj:map_obj ~block:blk

let touch_extent t (ext : extent) ~write =
  (* Physical fragments shorter than a block still cost the enclosing
     cache block. *)
  let first = Int64.to_int (Int64.div ext.phys_off (Int64.of_int block_size)) in
  let last =
    Int64.to_int
      (Int64.div (Int64.add ext.phys_off (Int64.of_int (max 0 (ext.phys_len - 1))))
         (Int64.of_int block_size))
  in
  for b = first to last do
    if write then Bcache.write t.cache ~obj:data_obj ~block:b
    else Bcache.read t.cache ~obj:data_obj ~block:b
  done

(* Grow/replace the physical extent for logical block [blk] to fit
   [needed] bytes of that block. Best-fit from fragments, else appended at
   the end (Ffs first large extent). [None] when the backing object is
   full — the caller answers ERR_NOSPC, it must not crash the server. *)
let place_block t fr blk ~needed =
  let want = physical_size_of needed in
  let current = fr.blocks.(blk) in
  match current with
  | Some ext when ext.phys_len >= want -> Some ext
  | _ -> (
      (match current with
      | Some ext ->
          Ffs.free t.alloc ~off:ext.phys_off ~len:ext.phys_len;
          t.physical <- Int64.sub t.physical (Int64.of_int ext.phys_len)
      | None -> ());
      match Ffs.alloc t.alloc ~strategy:`Best_fit want with
      | None -> None
      | Some off ->
          let ext = { phys_off = off; phys_len = want } in
          fr.blocks.(blk) <- Some ext;
          t.physical <- Int64.add t.physical (Int64.of_int want);
          Some ext)

let free_file t fr =
  Array.iter
    (function
      | Some ext ->
          Ffs.free t.alloc ~off:ext.phys_off ~len:ext.phys_len;
          t.physical <- Int64.sub t.physical (Int64.of_int ext.phys_len)
      | None -> ())
    fr.blocks;
  t.logical <- Int64.sub t.logical (Int64.of_int fr.size);
  fr.blocks <- [||];
  fr.size <- 0;
  fr.data <- None

let attr_of fh (fr : filerec) =
  {
    (Nfs.default_attr ~ftype:fh.Fh.ftype ~fileid:fh.Fh.file_id ~now:0.0) with
    size = Int64.of_int fr.size;
    used = Int64.of_int fr.size;
  }

let store_real fr ~off data =
  let len = String.length data in
  let needed = off + len in
  let buf =
    match fr.data with
    | Some b when Bytes.length b >= needed -> b
    | Some b ->
        let nb = Bytes.make needed '\000' in
        Bytes.blit b 0 nb 0 (Bytes.length b);
        fr.data <- Some nb;
        nb
    | None ->
        let nb = Bytes.make needed '\000' in
        fr.data <- Some nb;
        nb
  in
  Bytes.blit_string data 0 buf off len

let wedged t = Engine.now t.host.Host.eng > t.lease_until

let handle t span (call : Nfs.call) : Nfs.response =
  (* Map/extent cache touches are the synchronous disk work of this
     server; async write-behind stays untraced. *)
  let disk_timed f = Trace.timed span ~hop:"disk" ~site:(Host.name t.host) f in
  if wedged t then begin
    t.fence_bounces <- t.fence_bounces + 1;
    Error Nfs.ERR_MISDIRECTED
  end
  else
  match call with
  | Nfs.Null -> Ok Nfs.RNull
  | Nfs.Getattr fh ->
      let fr = filerec_of t fh in
      Ok (Nfs.RGetattr (attr_of fh fr))
  | Nfs.Read (fh, off64, count) ->
      let site = site_of t fh in
      if not (owns t site || is_draining t site) then begin
        t.misdirect_bounces <- t.misdirect_bounces + 1;
        Error Nfs.ERR_MISDIRECTED
      end
      else begin
      touch_site t site;
      let fr = filerec_of t fh in
      let off = Int64.to_int off64 in
      let count = max 0 (min count (fr.size - off)) in
      t.reads <- t.reads + 1;
      let first = off / block_size in
      let last = if count = 0 then first - 1 else (off + count - 1) / block_size in
      disk_timed (fun () ->
          touch_map t fh.Fh.file_id ~write:false;
          for b = first to last do
            if b < Array.length fr.blocks then
              match fr.blocks.(b) with
              | Some ext -> touch_extent t ext ~write:false
              | None -> ()
          done);
      let eof = off + count >= fr.size in
      let data =
        if count = 0 then Nfs.Data ""
        else
          match fr.data with
          | Some buf when Bytes.length buf >= off + count ->
              Nfs.Data (Bytes.sub_string buf off count)
          | _ -> Nfs.Synthetic count
      in
      Ok (Nfs.RRead (data, eof, attr_of fh fr))
      end
  | Nfs.Write (fh, off64, stable, wdata) ->
      let site = site_of t fh in
      (* Drain: reads keep being answered for a moving site, but writes
         bounce with [SLICE_MISDIRECTED] so no update can land behind the
         migration; the µproxy retries after a table refresh and reaches
         whichever side owns the site once the move commits or aborts. *)
      if is_draining t site then begin
        t.drain_bounces <- t.drain_bounces + 1;
        Error Nfs.ERR_MISDIRECTED
      end
      else if not (owns t site) then begin
        t.misdirect_bounces <- t.misdirect_bounces + 1;
        Error Nfs.ERR_MISDIRECTED
      end
      else begin
      touch_site t site;
      let fr = filerec_of t fh in
      let off = Int64.to_int off64 in
      let len = Nfs.wdata_length wdata in
      let fin = off + len in
      let first = off / block_size in
      let last = if len = 0 then first - 1 else (fin - 1) / block_size in
      ensure_blocks fr (last + 1);
      let nospc = ref false in
      disk_timed (fun () ->
          touch_map t fh.Fh.file_id ~write:true;
          for b = first to last do
            (* Bytes of this logical block that will exist after the write. *)
            let blk_end = min (max fin fr.size) ((b + 1) * block_size) in
            let needed = blk_end - (b * block_size) in
            if not !nospc then
              match place_block t fr b ~needed with
              | Some ext -> touch_extent t ext ~write:true
              | None -> nospc := true
          done);
      if !nospc then
        (* Blocks placed before the allocator ran dry stay placed (a
           partially-applied write, like a real server); the size is not
           extended and the client sees the error. *)
        Error Nfs.ERR_NOSPC
      else begin
      (match wdata with
      | Nfs.Data s -> store_real fr ~off s
      | Nfs.Synthetic _ -> fr.data <- None);
      if fin > fr.size then begin
        t.logical <- Int64.add t.logical (Int64.of_int (fin - fr.size));
        fr.size <- fin
      end;
      t.writes <- t.writes + 1;
      if stable <> Nfs.Unstable then
        disk_timed (fun () ->
            Bcache.commit t.cache ~obj:data_obj;
            Bcache.commit t.cache ~obj:map_obj);
      Ok (Nfs.RWrite (len, stable, attr_of fh fr))
      end
      end
  | Nfs.Commit (fh, _, _) ->
      let fr = filerec_of t fh in
      disk_timed (fun () ->
          Bcache.commit t.cache ~obj:data_obj;
          Bcache.commit t.cache ~obj:map_obj);
      Ok (Nfs.RCommit (attr_of fh fr))
  | Nfs.Remove (fh, _) ->
      (match Hashtbl.find_opt t.files fh.Fh.file_id with
      | Some fr ->
          free_file t fr;
          Hashtbl.remove t.files fh.Fh.file_id
      | None -> ());
      Ok Nfs.RRemove
  | Nfs.Setattr (fh, s) -> (
      let fr = filerec_of t fh in
      match s.Nfs.set_size with
      | Some nsz64 ->
          let nsz = min (Int64.to_int nsz64) t.threshold in
          if nsz = 0 then free_file t fr
          else if nsz < fr.size then begin
            (* Trim blocks past the new end and shrink the final block's
               fragment on the next write (leave it in place for now). *)
            let keep = ((nsz - 1) / block_size) + 1 in
            Array.iteri
              (fun b ext ->
                if b >= keep then
                  match ext with
                  | Some e ->
                      Ffs.free t.alloc ~off:e.phys_off ~len:e.phys_len;
                      t.physical <- Int64.sub t.physical (Int64.of_int e.phys_len);
                      fr.blocks.(b) <- None
                  | None -> ())
              fr.blocks;
            t.logical <- Int64.sub t.logical (Int64.of_int (fr.size - nsz));
            fr.size <- nsz;
            match fr.data with
            | Some b when Bytes.length b > nsz -> fr.data <- Some (Bytes.sub b 0 nsz)
            | _ -> ()
          end;
          Ok (Nfs.RSetattr (attr_of fh fr))
      | None -> Ok (Nfs.RSetattr (attr_of fh fr)))
  | Nfs.Lookup _ | Nfs.Access _ | Nfs.Readlink _ | Nfs.Create _ | Nfs.Mkdir _
  | Nfs.Symlink _ | Nfs.Rmdir _ | Nfs.Rename _ | Nfs.Link _ | Nfs.Readdir _
  | Nfs.Fsstat _ ->
      Error Nfs.ERR_BADHANDLE

let attach host ?(port = 2049) ?(cache_bytes = 1024 * 1024 * 1024)
    ?(backing_bytes = 68_719_476_736L) ?(threshold = 65536) ?(nsites = 1)
    ?(sites = [ 0 ]) ?backend ?trace ?qos () =
  let backend =
    match backend with
    | Some b -> b
    | None -> Bcache.disk_backend host.Host.eng (Host.disk_exn host)
  in
  let t =
    {
      host;
      cache = Bcache.create host.Host.eng ~backend ~capacity:cache_bytes ~name:(Host.name host);
      alloc = Ffs.create ~size:backing_bytes;
      (* lint: bounded — small-file server state, object-backed; Remove deletes rows *)
      files = Hashtbl.create 4096;
      threshold;
      nsites;
      (* lint: bounded — one row per logical small-file site bound here *)
      owned = Hashtbl.create 4;
      (* lint: bounded — sites mid-migration; cleared on commit/abort/crash *)
      draining = Hashtbl.create 4;
      (* lint: bounded — one row per logical small-file site *)
      site_ops = Hashtbl.create 4;
      up = true;
      logical = 0L;
      physical = 0L;
      reads = 0;
      writes = 0;
      drain_bounces = 0;
      misdirect_bounces = 0;
      lease_until = infinity;
      lease_epoch = 0;
      fence_bounces = 0;
    }
  in
  List.iter (fun s -> Hashtbl.replace t.owned s ()) sites;
  Nfs_endpoint.serve host ~port
    ~cost:{ per_op = 70e-6; per_byte = 4e-9 }
    ~alive:(fun () -> t.up)
    ?trace ?qos ~handler:(handle t) ();
  t

let crash t =
  t.up <- false;
  (* A drain in progress is volatile control-plane state: the migration
     aborts and the recovered server serves the site normally again. *)
  Hashtbl.reset t.draining;
  Bcache.drop_clean t.cache

let recover t = t.up <- true
let is_up t = t.up

(* ---- reconfiguration hooks (control-plane, in-process) ---- *)

let owned_sites t =
  Hashtbl.fold (fun s () acc -> s :: acc) t.owned [] |> List.sort compare

let own_site t site = Hashtbl.replace t.owned site ()

let disown_site t site =
  Hashtbl.remove t.owned site;
  Hashtbl.remove t.draining site

let begin_drain t site = Hashtbl.replace t.draining site ()
let end_drain t site = Hashtbl.remove t.draining site

let site_load t site =
  match Hashtbl.find_opt t.site_ops site with Some r -> !r | None -> 0

let reset_site_load t site = Hashtbl.remove t.site_ops site

let drain_bounces t = t.drain_bounces
let misdirect_bounces t = t.misdirect_bounces

(* ---- fencing lease (failover) ---- *)

let set_lease t ~epoch ~until =
  t.lease_epoch <- epoch;
  t.lease_until <- until

let lease_epoch t = t.lease_epoch
let fence_bounces t = t.fence_bounces
let is_wedged t = wedged t
let host t = t.host

type site_image = (int64 * int * string) list
(* (fileID, size, contents) per file of the site; synthetic contents are
   exported as zeros of the right length. *)

let export_site t site : site_image =
  Hashtbl.fold
    (fun fid (fr : filerec) acc ->
      if fr.site <> site then acc
      else
        let contents =
          match fr.data with
          | Some b when Bytes.length b >= fr.size -> Bytes.sub_string b 0 fr.size
          | Some b -> Bytes.to_string b ^ String.make (fr.size - Bytes.length b) '\000'
          | None -> String.make fr.size '\000'
        in
        (fid, fr.size, contents) :: acc)
    t.files []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* lint: F1 ok — migration control plane: extents are placed before the site is owned here, while the source is still serving *)
let import_site t site (img : site_image) =
  List.iter
    (fun (fid, size, contents) ->
      (match Hashtbl.find_opt t.files fid with
      | Some old -> free_file t old
      | None -> ());
      let fr = { size = 0; blocks = [||]; data = None; site } in
      Hashtbl.replace t.files fid fr;
      if size > 0 then begin
        (* Re-place the file's blocks in this server's backing object so
           physical accounting and fragmentation stay honest. *)
        let last = (size - 1) / block_size in
        ensure_blocks fr (last + 1);
        for b = 0 to last do
          let needed = min block_size (size - (b * block_size)) in
          ignore (place_block t fr b ~needed)
        done;
        store_real fr ~off:0 contents;
        fr.size <- size;
        t.logical <- Int64.add t.logical (Int64.of_int size)
      end)
    img

(* lint: F1 ok — migration control plane: frees extents only after the handoff commit has rebound the site elsewhere *)
let drop_site t site =
  let moved =
    Hashtbl.fold (fun fid (fr : filerec) acc -> if fr.site = site then fid :: acc else acc)
      t.files []
    |> List.sort compare
  in
  List.iter
    (fun fid ->
      (match Hashtbl.find_opt t.files fid with
      | Some fr -> free_file t fr
      | None -> ());
      Hashtbl.remove t.files fid)
    moved;
  Hashtbl.remove t.site_ops site

let image_bytes (img : site_image) =
  List.fold_left (fun acc (_, size, _) -> Int64.add acc (Int64.of_int size)) 0L img

let site_bytes t site =
  Hashtbl.fold
    (fun _ (fr : filerec) acc ->
      if fr.site = site then Int64.add acc (Int64.of_int fr.size) else acc)
    t.files 0L

let addr t = t.host.Host.addr
let threshold t = t.threshold
let file_count t = Hashtbl.length t.files
let bytes_stored t = t.physical
let logical_bytes t = t.logical
let fragmentation t = Ffs.fragment_count t.alloc
let cache_hits t = Bcache.hits t.cache
let cache_misses t = Bcache.misses t.cache
let reads t = t.reads
let writes t = t.writes

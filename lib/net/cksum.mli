(** 16-bit ones-complement transport checksum, with the incremental-update
    arithmetic (RFC 1624) the µproxy uses when it rewrites address/port
    fields or patches attribute words: cost proportional to the bytes
    modified, independent of packet size — the property the paper's
    differential checksum code (derived from FreeBSD NAT) relies on. *)

val compute : Packet.t -> int
(** Full checksum over pseudo-header (src, dst, ports, length) and
    payload. *)

val seal : Packet.t -> unit
(** Store the computed checksum into the packet. *)

val verify : Packet.t -> bool
(** Endpoints verify on receipt; a µproxy bug that forgets to adjust the
    checksum surfaces here. *)

val adjust : int -> old_word:int -> new_word:int -> int
(** [adjust cksum ~old_word ~new_word] is RFC 1624 eqn. 3:
    HC' = ~(~HC + ~m + m'), for one 16-bit word change. *)

val rewrite_src : Packet.t -> Packet.addr -> unit
(** Replace the source address, adjusting the checksum incrementally. *)

val rewrite_dst : Packet.t -> Packet.addr -> unit
val rewrite_sport : Packet.t -> int -> unit
val rewrite_dport : Packet.t -> int -> unit

val patch_payload : Packet.t -> off:int -> string -> unit
(** [patch_payload p ~off s] overwrites payload bytes at [off] (which must
    be even, as all XDR field offsets are) with [s], adjusting the checksum
    word-by-word. Raises [Invalid_argument] if out of range or misaligned. *)

val patch_payload_bytes : Packet.t -> off:int -> bytes -> spos:int -> len:int -> unit
(** Same splice sourced from [src.[spos, spos+len)] — the µproxy writes
    field values into a per-instance scratch buffer and patches from it,
    keeping the rewrite path free of string allocation. *)

module Engine = Slice_sim.Engine
module Resource = Slice_sim.Resource

type params = {
  bandwidth : float;
  wire_latency : float;
  switch_latency : float;
  drop_prob : float;
}

let default_params =
  { bandwidth = 125_000_000.0; wire_latency = 10e-6; switch_latency = 8e-6; drop_prob = 0.0 }

type filter = Packet.t -> Packet.t option

type node = {
  name : string;
  tx : Resource.t;
  rx : Resource.t;
  mutable up : bool;
  mutable egress : filter list; (* in application order *)
  mutable ingress : filter list;
  handlers : (int, Packet.t -> unit) Hashtbl.t;
}

(* An injected link fault: applies to every packet whose (src, dst) pair
   matches ([None] matches any address). *)
type link_fault = {
  lf_src : Packet.addr option;
  lf_dst : Packet.addr option;
  lf_drop : float;
  lf_delay : float;
  lf_dup : float;
}

type t = {
  eng : Engine.t;
  p : params;
  prng : Slice_util.Prng.t;
  mutable nodes : node array;
  mutable n : int;
  mutable sent : int;
  mutable bytes : int;
  mutable dropped : int;
  mutable xid_counter : int;
  (* fault schedule *)
  mutable link_faults : link_fault list;
  mutable partition : (Packet.addr -> int) option;
  mutable f_node_drops : int;
  mutable f_link_drops : int;
  mutable f_part_drops : int;
  mutable f_dups : int;
}

let create eng ?(params = default_params) ?(seed = 1) () =
  {
    eng;
    p = params;
    prng = Slice_util.Prng.create seed;
    nodes = [||];
    n = 0;
    sent = 0;
    bytes = 0;
    dropped = 0;
    xid_counter = 0;
    link_faults = [];
    partition = None;
    f_node_drops = 0;
    f_link_drops = 0;
    f_part_drops = 0;
    f_dups = 0;
  }

let engine t = t.eng
let params t = t.p

let fresh_xid t =
  t.xid_counter <- t.xid_counter + 1;
  t.xid_counter land 0xFFFFFFFF

let add_node t ~name =
  let node =
    {
      name;
      tx = Resource.create t.eng ~name:(name ^ ".tx") ();
      rx = Resource.create t.eng ~name:(name ^ ".rx") ();
      up = true;
      egress = [];
      ingress = [];
      (* lint: bounded — one handler per port bound on this node *)
      handlers = Hashtbl.create 4;
    }
  in
  if t.n = Array.length t.nodes then begin
    let cap = if t.n = 0 then 8 else t.n * 2 in
    let nodes = Array.make cap node in
    Array.blit t.nodes 0 nodes 0 t.n;
    t.nodes <- nodes
  end;
  t.nodes.(t.n) <- node;
  t.n <- t.n + 1;
  t.n - 1

let get t a =
  if a < 0 || a >= t.n then invalid_arg "Net: unknown address";
  t.nodes.(a)

let node_name t a = (get t a).name
let node_count t = t.n
let listen t a ~port handler = Hashtbl.replace (get t a).handlers port handler
let unlisten t a ~port = Hashtbl.remove (get t a).handlers port
let add_egress_filter t a f = (get t a).egress <- (get t a).egress @ [ f ]
let add_ingress_filter t a f = (get t a).ingress <- (get t a).ingress @ [ f ]

let rec apply_filters filters pkt =
  match filters with
  | [] -> Some pkt
  | f :: rest -> ( match f pkt with None -> None | Some pkt -> apply_filters rest pkt)

let handle_local t (node : node) (pkt : Packet.t) =
  match Hashtbl.find node.handlers pkt.dport with
  | h -> h pkt
  | exception Not_found -> t.dropped <- t.dropped + 1

let deliver t (pkt : Packet.t) =
  let dst = get t pkt.dst in
  match dst.ingress with
  | [] -> handle_local t dst pkt
  | fs -> (
      match apply_filters fs pkt with
      | None -> ()
      | Some pkt -> handle_local t dst pkt)

(* Put the packet on the destination NIC at [arrival]; a node that is down
   when the packet lands loses it silently. The receive serialization
   time is recomputed from the packet instead of captured, keeping the
   scheduled closure free of a boxed float. *)
let deliver_at t (pkt : Packet.t) ~arrival =
  Engine.schedule_at t.eng arrival (fun () ->
      let dst = get t pkt.dst in
      if not dst.up then begin
        t.dropped <- t.dropped + 1;
        t.f_node_drops <- t.f_node_drops + 1
      end
      else begin
        let rx_done =
          Resource.reserve dst.rx (float_of_int (Packet.wire_size pkt) /. t.p.bandwidth)
        in
        Engine.schedule_at t.eng rx_done (fun () -> deliver t pkt)
      end)

(* Consult the fault schedule for one transmission. The PRNG is only drawn
   for faults that are actually configured, so fault-free runs keep the
   exact event/random stream they had before the fault layer existed. *)
let fault_verdict t (pkt : Packet.t) =
  let partitioned =
    match t.partition with Some group -> group pkt.src <> group pkt.dst | None -> false
  in
  if partitioned then begin
    t.f_part_drops <- t.f_part_drops + 1;
    `Drop
  end
  else begin
    let delay = ref 0.0 in
    let dup = ref false in
    let dropped = ref false in
    List.iter
      (fun lf ->
        let matches =
          (match lf.lf_src with None -> true | Some a -> a = pkt.src)
          && match lf.lf_dst with None -> true | Some a -> a = pkt.dst
        in
        if matches && not !dropped then
          if lf.lf_drop > 0.0 && Slice_util.Prng.float t.prng 1.0 < lf.lf_drop then begin
            t.f_link_drops <- t.f_link_drops + 1;
            dropped := true
          end
          else begin
            delay := !delay +. lf.lf_delay;
            if lf.lf_dup > 0.0 && Slice_util.Prng.float t.prng 1.0 < lf.lf_dup then dup := true
          end)
      t.link_faults;
    if !dropped then `Drop else `Deliver (!delay, !dup)
  end

let transmit t (pkt : Packet.t) =
  if pkt.dst < 0 || pkt.dst >= t.n then t.dropped <- t.dropped + 1
  else begin
    t.sent <- t.sent + 1;
    let size = Packet.wire_size pkt in
    t.bytes <- t.bytes + size;
    let src = get t pkt.src in
    let ser = float_of_int size /. t.p.bandwidth in
    let tx_done = Resource.reserve src.tx ser in
    if not src.up then begin
      (* a crashed host transmits nothing *)
      t.dropped <- t.dropped + 1;
      t.f_node_drops <- t.f_node_drops + 1
    end
    else if t.p.drop_prob > 0.0 && Slice_util.Prng.float t.prng 1.0 < t.p.drop_prob then
      t.dropped <- t.dropped + 1
    else if t.partition == None && t.link_faults == [] then
      (* fault-free fast path: no verdict to build, no PRNG draws — the
         common case stays allocation-light and keeps the exact random
         stream of runs with no fault schedule configured *)
      deliver_at t pkt ~arrival:(tx_done +. t.p.wire_latency +. t.p.switch_latency)
    else
      match fault_verdict t pkt with
      | `Drop -> t.dropped <- t.dropped + 1
      | `Deliver (extra_delay, dup) ->
          let arrival = tx_done +. t.p.wire_latency +. t.p.switch_latency +. extra_delay in
          deliver_at t pkt ~arrival;
          if dup then begin
            (* an independent copy: downstream filters rewrite in place *)
            t.f_dups <- t.f_dups + 1;
            deliver_at t (Packet.copy pkt) ~arrival
          end
  end

let send t (pkt : Packet.t) =
  let src = get t pkt.src in
  match src.egress with
  | [] -> transmit t pkt
  | fs -> (
      match apply_filters fs pkt with
      | None -> ()
      | Some pkt -> transmit t pkt)

let inject t pkt = transmit t pkt

let dispatch t (pkt : Packet.t) = handle_local t (get t pkt.dst) pkt
(* ---- fault schedule ---- *)

let set_node_up t a up = (get t a).up <- up
let node_up t a = (get t a).up

let schedule_crash t a ~at ~until =
  if until <= at then invalid_arg "Net.schedule_crash: until <= at";
  Engine.schedule_at t.eng at (fun () -> set_node_up t a false);
  Engine.schedule_at t.eng until (fun () -> set_node_up t a true)

let add_link_fault t ?src ?dst ?(drop = 0.0) ?(delay = 0.0) ?(dup = 0.0) () =
  t.link_faults <-
    t.link_faults
    @ [ { lf_src = src; lf_dst = dst; lf_drop = drop; lf_delay = delay; lf_dup = dup } ]

let clear_link_faults t = t.link_faults <- []
let set_partition t group = t.partition <- Some group
let clear_partition t = t.partition <- None
let fault_node_drops t = t.f_node_drops
let fault_link_drops t = t.f_link_drops
let fault_partition_drops t = t.f_part_drops
let fault_duplicates t = t.f_dups
let fault_drops t = t.f_node_drops + t.f_link_drops + t.f_part_drops

let packets_sent t = t.sent
let bytes_sent t = t.bytes
let packets_dropped t = t.dropped
let nic_busy_time t a = Resource.busy_time (get t a).tx

(** Switched-LAN model: nodes with full-duplex NICs attached to a single
    switch, per-endpoint transmit/receive serialization (bandwidth), fixed
    wire + switch latency, optional random loss, and per-node egress /
    ingress packet filters — the interposition points where the Slice
    µproxy lives ("configurable to run as an intermediary at any point in
    the network between a client and the server ensemble").

    Filters run synchronously in event context and must not park; they may
    rewrite the packet in place, absorb it (return [None]), and initiate
    new packets via {!send} or {!inject}. *)

type t

type params = {
  bandwidth : float;  (** per-NIC bytes/second (full duplex, each way) *)
  wire_latency : float;  (** propagation delay per hop, seconds *)
  switch_latency : float;  (** forwarding latency of the switch, seconds *)
  drop_prob : float;  (** iid loss probability per packet *)
}

val default_params : params
(** Gigabit Ethernet with jumbo frames, per the paper's testbed:
    125 MB/s NICs, ~10 µs wire + ~8 µs switch latency, no loss. *)

val create : Slice_sim.Engine.t -> ?params:params -> ?seed:int -> unit -> t
val engine : t -> Slice_sim.Engine.t
val params : t -> params

val fresh_xid : t -> int
(** Next transaction id from this network's private counter (32-bit
    wrap).  One stream per simulated network keeps xids unique across
    all its endpoints while staying deterministic even when several
    simulations run in one process. *)

val add_node : t -> name:string -> Packet.addr
(** Attach a host; allocates its NIC resources. Addresses are dense
    small ints. *)

val node_name : t -> Packet.addr -> string
val node_count : t -> int

val listen : t -> Packet.addr -> port:int -> (Packet.t -> unit) -> unit
(** Register the datagram handler for [addr:port]. Packets to an
    unregistered port are counted as drops. *)

val unlisten : t -> Packet.addr -> port:int -> unit

type filter = Packet.t -> Packet.t option

val add_egress_filter : t -> Packet.addr -> filter -> unit
(** Filters apply in registration order to every packet leaving [addr]. *)

val add_ingress_filter : t -> Packet.addr -> filter -> unit
(** Filters apply to every packet arriving at [addr], before dispatch. *)

val send : t -> Packet.t -> unit
(** Transmit from [pkt.src]: egress filters, NIC serialization, latency,
    loss, receive serialization, ingress filters, dispatch. *)

val inject : t -> Packet.t -> unit
(** Like {!send} but skipping the source's egress filters: used by a
    filter that emits packets of its own (a filter re-sending through
    itself would loop). *)

val dispatch : t -> Packet.t -> unit
(** Deliver straight to the destination's port handler, bypassing
    filters, NICs and latency: how an interposed filter hands an
    already-arrived packet onward after processing it. *)

(** {2 Fault injection}

    A deterministic fault schedule layered on the switched LAN, driven by
    the same seeded PRNG as [drop_prob] (runs stay bit-reproducible; the
    PRNG is only consulted for faults actually configured). Three fault
    classes:

    - {e node crashes}: a down node transmits nothing and loses every
      packet that lands on it, in both directions — a dead host is silent,
      it does not refuse;
    - {e link faults}: per-(src, dst) drop probability, added one-way
      delay, and duplicate probability ([None] endpoints match any
      address);
    - {e partitions}: a node-grouping function; packets crossing groups
      are dropped until the partition heals.

    End-to-end retransmission (client RPC) is what recovers; the counters
    below let tests assert that injected faults actually bit. *)

val set_node_up : t -> Packet.addr -> bool -> unit
(** Crash ([false]) or recover ([true]) a node at the net layer. *)

val node_up : t -> Packet.addr -> bool

val schedule_crash : t -> Packet.addr -> at:float -> until:float -> unit
(** Pre-plan a crash window \[[at], [until]) in absolute simulated time.
    Raises [Invalid_argument] if [until <= at]. *)

val add_link_fault :
  t ->
  ?src:Packet.addr ->
  ?dst:Packet.addr ->
  ?drop:float ->
  ?delay:float ->
  ?dup:float ->
  unit ->
  unit
(** Install a link-fault rule. Matching rules apply in installation
    order: each may drop the packet (probability [drop]), add [delay]
    seconds of one-way latency, and deliver a duplicate copy
    (probability [dup]). *)

val clear_link_faults : t -> unit

val set_partition : t -> (Packet.addr -> int) -> unit
(** Partition the LAN: packets between nodes in different groups are
    dropped. *)

val clear_partition : t -> unit
(** Heal the partition. *)

val fault_node_drops : t -> int
(** Packets lost to a down node (either endpoint). *)

val fault_link_drops : t -> int
val fault_partition_drops : t -> int
val fault_duplicates : t -> int

val fault_drops : t -> int
(** Sum of node, link and partition drops (excludes iid [drop_prob]
    losses, which count only in {!packets_dropped}). *)

(** {2 Accounting} *)

val packets_sent : t -> int
val bytes_sent : t -> int
val packets_dropped : t -> int
(** Loss-injected (iid and fault-schedule) plus no-handler drops. *)

val nic_busy_time : t -> Packet.addr -> float
(** Transmit-side NIC busy seconds for a node. *)

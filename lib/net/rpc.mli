(** Datagram RPC endpoint with end-to-end retransmission.

    This is the client side of the NFS/RPC/UDP stack the paper relies on
    for correctness: the µproxy "is free to discard its state and/or
    pending packets without compromising correctness — end-to-end
    protocols retransmit packets as necessary to recover from drops in the
    µproxy". Replies are matched to calls by XID (first big-endian word of
    the payload). *)

exception Timeout
(** Raised when all retransmissions are exhausted. *)

type t

val create : Net.t -> Packet.addr -> port:int -> t
(** [create net addr ~port] claims [addr:port] for reply dispatch. *)

val addr : t -> Packet.addr

val fresh_xid : t -> int
(** Allocate the next XID from the network's per-simulation counter
    (callers that build their own payloads must place it in the first
    word).  Equal to {!Net.fresh_xid} on the endpoint's network. *)

val call :
  t ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?max_timeout:float ->
  ?span:Slice_trace.Trace.span ->
  dst:Packet.addr ->
  dport:int ->
  ?extra_size:int ->
  bytes ->
  bytes
(** [call t ~dst ~dport payload] sends the payload (whose first word must
    be a fresh XID from {!fresh_xid}) and parks the calling fiber until a
    matching reply arrives, raising {!Timeout} after [retries]
    retransmissions (default 8). The retransmit schedule starts at
    [timeout] seconds (default 0.1) and grows by factor [backoff]
    (default 2) up to [max_timeout] (default 2 s, or [timeout] if that is
    larger), with up to 10 % additive jitter from a deterministic
    per-endpoint stream — exponential backoff stops the fixed-interval
    retransmit storm under sustained loss while jitter decorrelates
    clients that lost packets together. Returns the reply payload.
    When [span] is live, an ["rpc"] child span covers the call and is
    bound to the xid while outstanding, so server-side spans for this
    request attach under it. *)

val retransmissions : t -> int
(** Total timeout-triggered resends across all calls. *)

val timeouts : t -> int
(** Calls that exhausted their retransmission budget and raised
    {!Timeout}. *)

val calls_completed : t -> int

val pending_calls : t -> int
(** Calls currently awaiting a reply (0 at quiesce). *)

type endpoint_stats = { calls : int; retransmits : int; timeouts : int }

val endpoint_stats : t -> Packet.addr -> endpoint_stats
(** Per-destination counters: how a specific server behaved from this
    endpoint's point of view (all zero for a destination never called). *)

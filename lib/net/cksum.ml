let ones_add a b =
  let s = a + b in
  (s land 0xFFFF) + (s lsr 16)

let compute (p : Packet.t) =
  Packet.compute_cksum ~src:p.src ~dst:p.dst ~sport:p.sport ~dport:p.dport p.payload

let seal p = p.Packet.cksum <- compute p
let verify p = p.Packet.cksum = compute p

let adjust cksum ~old_word ~new_word =
  (* RFC 1624: HC' = ~(~HC + ~m + m') in ones-complement arithmetic. *)
  let s = ones_add (lnot cksum land 0xFFFF) (lnot old_word land 0xFFFF) in
  let s = ones_add s (new_word land 0xFFFF) in
  lnot s land 0xFFFF

let adjust32 cksum ~old_v ~new_v =
  let c = adjust cksum ~old_word:(old_v lsr 16) ~new_word:(new_v lsr 16) in
  adjust c ~old_word:(old_v land 0xFFFF) ~new_word:(new_v land 0xFFFF)

let rewrite_src (p : Packet.t) a =
  p.cksum <- adjust32 p.cksum ~old_v:p.src ~new_v:a;
  p.src <- a

let rewrite_dst (p : Packet.t) a =
  p.cksum <- adjust32 p.cksum ~old_v:p.dst ~new_v:a;
  p.dst <- a

let rewrite_sport (p : Packet.t) v =
  p.cksum <- adjust p.cksum ~old_word:p.sport ~new_word:v;
  p.sport <- v

let rewrite_dport (p : Packet.t) v =
  p.cksum <- adjust p.cksum ~old_word:p.dport ~new_word:v;
  p.dport <- v

let word_at payload i =
  let n = Bytes.length payload in
  if i + 1 < n then
    (Char.code (Bytes.get payload i) lsl 8) lor Char.code (Bytes.get payload (i + 1))
  else (Char.code (Bytes.get payload i)) lsl 8

(* Adjust one aligned 16-bit word at a time. An odd-length patch shares
   its final word with the following payload byte, handled by word_at. *)
let patch_words (p : Packet.t) ~off src spos len =
  let i = ref 0 in
  while !i < len do
    let word_off = off + !i in
    let old_word = word_at p.payload word_off in
    Bytes.set p.payload word_off (Bytes.get src (spos + !i));
    if !i + 1 < len then Bytes.set p.payload (word_off + 1) (Bytes.get src (spos + !i + 1));
    let new_word = word_at p.payload word_off in
    p.cksum <- adjust p.cksum ~old_word ~new_word;
    i := !i + 2
  done

let patch_payload (p : Packet.t) ~off s =
  let len = String.length s in
  if off < 0 || off land 1 <> 0 || off + len > Bytes.length p.payload then
    invalid_arg "Cksum.patch_payload";
  patch_words p ~off (Bytes.unsafe_of_string s) 0 len

(* Bytes-sourced twin for the µproxy's reused scratch buffers: same word
   loop, no string materialization between computing a field value and
   splicing it in. *)
let patch_payload_bytes (p : Packet.t) ~off src ~spos ~len =
  if
    off < 0
    || off land 1 <> 0
    || off + len > Bytes.length p.payload
    || spos < 0
    || len < 0
    || spos + len > Bytes.length src
  then invalid_arg "Cksum.patch_payload_bytes";
  patch_words p ~off src spos len

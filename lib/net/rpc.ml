module Engine = Slice_sim.Engine

module Trace = Slice_trace.Trace

exception Timeout

type outcome = Reply of bytes | Timed_out

type ep = { mutable ep_calls : int; mutable ep_retransmits : int; mutable ep_timeouts : int }

type endpoint_stats = { calls : int; retransmits : int; timeouts : int }

type t = {
  net : Net.t;
  eng : Engine.t;
  addr : Packet.addr;
  port : int;
  prng : Slice_util.Prng.t;
  pending : (int, outcome -> unit) Hashtbl.t;
  endpoints : (Packet.addr, ep) Hashtbl.t;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable completed : int;
}

let on_packet t (pkt : Packet.t) =
  if Bytes.length pkt.payload >= 4 then begin
    let xid = Int32.to_int (Bytes.get_int32_be pkt.payload 0) land 0xFFFFFFFF in
    match Hashtbl.find_opt t.pending xid with
    | None -> () (* duplicate reply after a retransmission: drop *)
    | Some wake ->
        Hashtbl.remove t.pending xid;
        t.completed <- t.completed + 1;
        wake (Reply pkt.payload)
  end

let create net addr ~port =
  let t =
    {
      net;
      eng = Net.engine net;
      addr;
      port;
      (* jitter stream seeded from the endpoint identity: deterministic
         across runs, decorrelated across endpoints *)
      prng = Slice_util.Prng.create ((addr * 65599) + port + 17);
      (* lint: bounded — one row per outstanding call; reply or timeout removes it *)
      pending = Hashtbl.create 64;
      (* lint: bounded — one row per (addr, port) peer in the ensemble *)
      endpoints = Hashtbl.create 8;
      retransmits = 0;
      timeouts = 0;
      completed = 0;
    }
  in
  Net.listen net addr ~port (on_packet t);
  t

let ep_of t dst =
  match Hashtbl.find_opt t.endpoints dst with
  | Some ep -> ep
  | None ->
      let ep = { ep_calls = 0; ep_retransmits = 0; ep_timeouts = 0 } in
      Hashtbl.replace t.endpoints dst ep;
      ep

let addr t = t.addr

(* XIDs come from the network's private counter so no two endpoints in a
   simulation ever collide (an interposed filter can key its soft state
   on the XID alone) and the stream stays deterministic even when
   several simulations run in one process. *)
let fresh_xid t = Net.fresh_xid t.net

(* Fraction of the current timeout added as uniform jitter, so a fleet of
   endpoints that lost packets together does not retransmit in lockstep. *)
let jitter_frac = 0.1

let call t ?(timeout = 0.1) ?(retries = 8) ?(backoff = 2.0) ?(max_timeout = 2.0)
    ?(span = Trace.null) ~dst ~dport ?(extra_size = 0) payload =
  let xid = Int32.to_int (Bytes.get_int32_be payload 0) land 0xFFFFFFFF in
  let cap = if timeout > max_timeout then timeout else max_timeout in
  let ep = ep_of t dst in
  ep.ep_calls <- ep.ep_calls + 1;
  let sp = Trace.child span ~hop:"rpc" ~site:(Net.node_name t.net t.addr) () in
  Trace.bind_xid sp xid;
  let outcome =
    Engine.suspend (fun wake ->
        Hashtbl.replace t.pending xid wake;
        let rec attempt n cur =
          if Hashtbl.mem t.pending xid then begin
            if n > 0 then begin
              t.retransmits <- t.retransmits + 1;
              ep.ep_retransmits <- ep.ep_retransmits + 1
            end;
            (* Fresh packet per attempt: an interposed filter may have
               rewritten the previous copy in place. *)
            let pkt =
              Packet.make ~src:t.addr ~dst ~sport:t.port ~dport ~extra_size
                (Bytes.copy payload)
            in
            Net.send t.net pkt;
            let wait = cur *. (1.0 +. (jitter_frac *. Slice_util.Prng.float t.prng 1.0)) in
            Engine.schedule t.eng wait (fun () ->
                if Hashtbl.mem t.pending xid then
                  if n < retries then begin
                    let next = cur *. backoff in
                    attempt (n + 1) (if next > cap then cap else next)
                  end
                  else begin
                    Hashtbl.remove t.pending xid;
                    t.timeouts <- t.timeouts + 1;
                    ep.ep_timeouts <- ep.ep_timeouts + 1;
                    wake Timed_out
                  end)
          end
        in
        attempt 0 timeout)
  in
  Trace.unbind_xid sp xid;
  match outcome with
  | Reply b ->
      Trace.finish sp;
      b
  | Timed_out ->
      Trace.finish ~outcome:"timeout" sp;
      raise Timeout

let retransmissions t = t.retransmits
let timeouts t = t.timeouts
let calls_completed t = t.completed
let pending_calls t = Hashtbl.length t.pending

let endpoint_stats t dst =
  match Hashtbl.find_opt t.endpoints dst with
  | None -> { calls = 0; retransmits = 0; timeouts = 0 }
  | Some ep ->
      { calls = ep.ep_calls; retransmits = ep.ep_retransmits; timeouts = ep.ep_timeouts }

(** Network storage node: object-based storage device (OBSD/NASD style,
    Section 2.2 of the paper). Exports a flat space of storage objects
    addressed by (object, logical offset); "the storage nodes accept NFS
    file handles as object identifiers, using an external hash to map them
    to storage objects". Serves the NFS subset read / write / commit /
    remove / getattr directly off a buffer-cached disk array with
    sequential prefetch and write clustering.

    Offsets arriving here are {e object-local}: for striped files the
    µproxy rewrites the request offset to the node-local sequence, so each
    node sees a dense stream for its stripe and the prefetcher works, just
    as a real stripe places its chunks contiguously per disk. *)

type t

val attach :
  Host.t -> ?port:int -> ?cache_bytes:int -> ?cap_secret:string ->
  ?trace:Slice_trace.Trace.t -> unit -> t
(** Attach the service to a host with a disk array. Default port 2049,
    default cache 256 MB (the paper's storage nodes had 256 MB RAM).
    With [cap_secret], every request's handle must carry a valid
    {!Slice_nfs.Cap} tag minted with the same secret, else
    [NFS3ERR_PERM] — secure network-attached storage objects per
    Section 2.2: a compromised µproxy cannot forge access. *)

val addr : t -> Slice_net.Packet.addr

val crash : t -> unit
(** Fail-stop the service: the endpoint goes silent (no decode, no
    replies) and the buffer cache is cold on {!recover} — committed data
    survives, as on a real node whose disks outlive its RAM. Pair with
    {!Slice_net.Net.set_node_up} to silence the whole host. *)

val recover : t -> unit
val is_up : t -> bool

val object_id_of_fh : Slice_nfs.Fh.t -> int64
(** The external hash from file handles to storage object identifiers. *)

val object_count : t -> int
val object_size : t -> Slice_nfs.Fh.t -> int64 option
val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val disk : t -> Slice_disk.Disk.t
val drop_caches : t -> unit
(** Cold-cache the node (contents stay on "disk"); used to measure
    disk-bound read paths. *)

val cache_hits : t -> int
val cache_misses : t -> int

(** Network storage node: object-based storage device (OBSD/NASD style,
    Section 2.2 of the paper). Exports a flat space of storage objects
    addressed by (object, logical offset); "the storage nodes accept NFS
    file handles as object identifiers, using an external hash to map them
    to storage objects". Serves the NFS subset read / write / commit /
    remove / getattr directly off a buffer-cached disk array with
    sequential prefetch and write clustering.

    Offsets arriving here are {e object-local}: for striped files the
    µproxy rewrites the request offset to the node-local sequence, so each
    node sees a dense stream for its stripe and the prefetcher works, just
    as a real stripe places its chunks contiguously per disk. *)

type t

val attach :
  Host.t -> ?port:int -> ?cache_bytes:int -> ?cap_secret:string ->
  ?sites:int list -> ?trace:Slice_trace.Trace.t ->
  ?qos:Slice_qos.Wfq.t -> unit -> t
(** Attach the service to a host with a disk array. Default port 2049,
    default cache 256 MB (the paper's storage nodes had 256 MB RAM).
    With [cap_secret], every request's handle must carry a valid
    {!Slice_nfs.Cap} tag minted with the same secret, else
    [NFS3ERR_PERM] — secure network-attached storage objects per
    Section 2.2: a compromised µproxy cannot forge access.
    [sites] are the logical storage sites this node initially owns
    (default [\[0\]]): bulk-I/O offsets carry their logical site in the
    high bits ({!Slice_nfs.Routekey.site_offset}) and requests for a
    site not owned here bounce with [SLICE_MISDIRECTED].
    With [qos], request dispatch goes through the per-tenant WFQ
    scheduler (see {!Nfs_endpoint.serve}). *)

val addr : t -> Slice_net.Packet.addr

val queue_depth : t -> float
(** Instantaneous CPU backlog in seconds: how long a request arriving now
    would wait. The load gauge behind power-of-two-choices mirror
    routing. *)

val host : t -> Host.t
(** The host this node runs on (failover attaches a successor
    coordinator to a surviving storage node's host). *)

val crash : t -> unit
(** Fail-stop the service: the endpoint goes silent (no decode, no
    replies) and the buffer cache is cold on {!recover} — committed data
    survives, as on a real node whose disks outlive its RAM. Pair with
    {!Slice_net.Net.set_node_up} to silence the whole host. *)

val recover : t -> unit
val is_up : t -> bool

val object_id_of_fh : Slice_nfs.Fh.t -> int64
(** The external hash from file handles to storage object identifiers. *)

val object_count : t -> int
val object_size : t -> Slice_nfs.Fh.t -> int64 option
(** {2 Reconfiguration hooks}

    In-process control-plane surface used by [Slice_reconfig]: logical
    sites can be drained (reads served, writes bounced with
    [SLICE_MISDIRECTED]), exported, imported and rebound without stopping
    the node. *)

val owned_sites : t -> int list
(** Logical sites served here, sorted. *)

val own_site : t -> int -> unit
val disown_site : t -> int -> unit

val begin_drain : t -> int -> unit
(** Enter the drain phase for a moving site: reads keep being served,
    non-mirrored writes bounce with [SLICE_MISDIRECTED] (mirrored writes
    still land — their twin replica already applied the duplicate, and
    the commit-time delta sweep trues up the copy). Draining is volatile:
    {!crash} clears it, so an aborted migration's donor serves again. *)

val end_drain : t -> int -> unit

type site_image
(** A deep copy of one logical site's subobjects, for migration. *)

val export_site : t -> int -> site_image
val import_site : t -> int -> site_image -> unit
val drop_site : t -> int -> unit
(** Remove every subobject of the site (the donor's half of a committed
    migration). *)

val image_bytes : site_image -> int64
(** Logical bytes in the image — what a migration transfers. *)

val site_bytes : t -> int -> int64
(** Logical bytes currently stored for a site on this node. *)

val site_load : t -> int -> int
(** Read/write requests served for the site since attach (rebalancing
    signal). *)

val reset_site_load : t -> int -> unit
(** Forget the per-site load counter (site migrated or seized away). *)

val drain_bounces : t -> int
(** Writes bounced because their site was mid-drain. *)

val misdirect_bounces : t -> int
(** Requests bounced because their site is not bound here (stale µproxy
    tables after a reconfiguration). *)

(** {2 Fencing lease (failover)} *)

val set_lease : t -> epoch:int -> until:float -> unit
(** Grant (or renew) this node's fencing lease: it may serve until
    sim-time [until] under fencing epoch [epoch]. Nodes start with an
    infinite lease (epoch 0) — attaching a failure detector is what
    makes fencing real. *)

val lease_epoch : t -> int

val is_wedged : t -> bool
(** The lease has expired: every request bounces with
    [SLICE_MISDIRECTED] until a new lease is granted, so a zombie
    deposed by a takeover cannot acknowledge writes against stale
    object state. *)

val fence_bounces : t -> int
(** Requests bounced because the lease had expired. *)

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val disk : t -> Slice_disk.Disk.t
val drop_caches : t -> unit
(** Cold-cache the node (contents stay on "disk"); used to measure
    disk-bound read paths. *)

val cache_hits : t -> int
val cache_misses : t -> int

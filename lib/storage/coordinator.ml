module Engine = Slice_sim.Engine
module Fiber = Slice_sim.Fiber
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Packet = Slice_net.Packet
module Nfs = Slice_nfs.Nfs
module Codec = Slice_nfs.Codec
module Fh = Slice_nfs.Fh
module Wal = Slice_wal.Wal
module Trace = Slice_trace.Trace

type intent = {
  kind : Ctrl.kind;
  fh : Fh.t;
  participants : int list;
  mutable completed : bool;
}

let rt_intent = 1
let rt_complete = 2

type t = {
  host : Host.t;
  ctrl_port : int;
  rpc : Rpc.t;
  trace : Trace.t option;
  probe_timeout : float;
  map_sites : int array;
  mutable wal : Wal.t;
  intents : (int64, intent) Hashtbl.t;
  maps : (int64, int array ref) Hashtbl.t; (* fileID -> site per block-map chunk *)
  mutable next_op : int64;
  mutable logged : int;
  mutable completed_count : int;
  mutable redo_count : int;
  mutable up : bool;
  (* Fencing lease (failover): an expired lease wedges the coordinator —
     control messages get Nack, probes/redo stop — so a zombie deposed by
     a takeover cannot drive 2PC against the new incarnation. Defaults
     (infinite lease, epoch 0) keep standalone coordinators unfenced. *)
  mutable lease_until : float;
  mutable lease_epoch : int;
  mutable fence_bounces : int;
}

let wedged t = Engine.now t.host.Host.eng > t.lease_until

let cpu_cost = 25e-6

let log_intent ?(span = Trace.null) t op_id (i : intent) =
  let payload =
    Bytes.to_string
      (Ctrl.encode_msg ~xid:0
         (Ctrl.Intent { op_id; kind = i.kind; fh = i.fh; participants = i.participants }))
  in
  ignore (Wal.append t.wal ~rtype:rt_intent payload);
  Wal.sync ~span t.wal;
  t.logged <- t.logged + 1

let log_complete t op_id =
  (* Completions clear intentions asynchronously — appended but not
     force-synced (the paper amortizes these off the critical path). *)
  let payload = Bytes.to_string (Ctrl.encode_msg ~xid:0 (Ctrl.Complete { op_id })) in
  ignore (Wal.append t.wal ~rtype:rt_complete payload)

(* Idempotent redo: removes re-issue remove; commit-like kinds re-issue
   commit, forcing participants' dirty state stable. *)
let nfs_call_for_redo (i : intent) : Nfs.call =
  match i.kind with
  | Ctrl.K_remove | Ctrl.K_truncate -> Nfs.Remove (i.fh, "")
  | Ctrl.K_commit | Ctrl.K_mirror_write -> Nfs.Commit (i.fh, 0L, 0)

(* Push the call to every participant; true only when all of them acked.
   A participant timing out must not raise out of the join (that would
   abandon the sibling fibers) nor count as done — the caller keeps the
   intent and probes again. *)
let fan_out ?(span = Trace.null) t (call : Nfs.call) sites =
  let ok = ref true in
  Fiber.join_all t.host.Host.eng
    (List.map
       (fun site () ->
         let xid = Rpc.fresh_xid t.rpc in
         let payload = Codec.encode_call ~xid call in
         match Rpc.call t.rpc ~span ~timeout:2.0 ~dst:site ~dport:2049 payload with
         | (_ : bytes) -> ()
         | exception Rpc.Timeout -> ok := false)
       sites);
  !ok

(* Completion retires the intent from the in-memory table — the log
   already carries the completion record, so the table only ever holds
   operations in progress and cannot grow with op count. *)
let retire t op_id (i : intent) =
  i.completed <- true;
  t.completed_count <- t.completed_count + 1;
  log_complete t op_id;
  Hashtbl.remove t.intents op_id

(* Retire only when every participant acked the redo; otherwise keep the
   intent and re-arm the probe — a partitioned participant must still see
   its redo once the partition heals. *)
let rec redo t op_id (i : intent) =
  if (not i.completed) && not (wedged t) then begin
    t.redo_count <- t.redo_count + 1;
    if fan_out t (nfs_call_for_redo i) i.participants then retire t op_id i
    else schedule_probe t op_id
  end

and schedule_probe t op_id =
  Engine.schedule t.host.Host.eng t.probe_timeout (fun () ->
      if t.up && not (wedged t) then
        match Hashtbl.find_opt t.intents op_id with
        | Some i when not i.completed -> Engine.spawn t.host.Host.eng (fun () -> redo t op_id i)
        | _ -> ())

let fresh_op t =
  t.next_op <- Int64.add t.next_op 1L;
  t.next_op

let sites_for t fh block =
  let n = Array.length t.map_sites in
  if n = 0 then None
  else begin
    let key = fh.Fh.file_id in
    let map =
      match Hashtbl.find_opt t.maps key with
      | Some m -> m
      | None ->
          let m = ref [||] in
          Hashtbl.replace t.maps key m;
          m
    in
    if block >= Array.length !map then begin
      (* Extend the map with the placement policy: rotate the stripe start
         by a hash of the fileID so files spread over different nodes. *)
      let start = Int64.to_int (Int64.rem (Int64.abs key) (Int64.of_int n)) in
      let old = !map in
      let nm = Array.init (block + 1) (fun b ->
          if b < Array.length old then old.(b) else t.map_sites.((start + b) mod n))
      in
      map := nm
    end;
    Some !map.(block)
  end

let handle_msg t (pkt : Packet.t) =
  Engine.spawn t.host.Host.eng (fun () ->
      if t.up then
        match (try Some (Ctrl.decode_msg pkt.payload) with Ctrl.Malformed -> None) with
        | None -> ()
        | Some (xid, msg) ->
            let span =
              Trace.child (Trace.span_of_xid t.trace xid) ~hop:"server"
                ~site:(Host.name t.host) ()
            in
            Host.cpu t.host cpu_cost;
            let reply r =
              Trace.finish span;
              Nfs_endpoint.reply_to t.host pkt (Ctrl.encode_reply ~xid r)
            in
            if wedged t then begin
              (* Fenced: a deposed coordinator must refuse to log new
                 intentions or acknowledge anything — the requester backs
                 off and finds the successor through the routing table. *)
              t.fence_bounces <- t.fence_bounces + 1;
              reply Ctrl.Nack
            end
            else
            (match msg with
            | Ctrl.Intent { op_id; kind; fh; participants } ->
                let i = { kind; fh; participants; completed = false } in
                Hashtbl.replace t.intents op_id i;
                log_intent ~span t op_id i;
                Wal.sync ~span t.wal;
                schedule_probe t op_id;
                reply Ctrl.Ack
            | Ctrl.Complete { op_id } ->
                (match Hashtbl.find_opt t.intents op_id with
                | Some i when not i.completed -> retire t op_id i
                | _ -> ());
                reply Ctrl.Ack
            | Ctrl.Remove_file { fh; sites } ->
                let op_id = fresh_op t in
                let i = { kind = Ctrl.K_remove; fh; participants = sites; completed = false } in
                Hashtbl.replace t.intents op_id i;
                log_intent ~span t op_id i;
                (* The intent is durable, so ack either way: a participant
                   that missed the remove gets it from the probe/redo path. *)
                if fan_out ~span t (Nfs.Remove (fh, "")) sites then retire t op_id i
                else schedule_probe t op_id;
                reply Ctrl.Ack
            | Ctrl.Commit_file { fh; sites } ->
                let op_id = fresh_op t in
                let i = { kind = Ctrl.K_commit; fh; participants = sites; completed = false } in
                Hashtbl.replace t.intents op_id i;
                log_intent ~span t op_id i;
                if fan_out ~span t (Nfs.Commit (fh, 0L, 0)) sites then retire t op_id i
                else schedule_probe t op_id;
                reply Ctrl.Ack
            | Ctrl.Get_map { fh; first_block; count } -> (
                match sites_for t fh (first_block + count - 1) with
                | None -> reply Ctrl.Nack
                | Some _ ->
                    let sites =
                      Array.init count (fun k ->
                          match sites_for t fh (first_block + k) with
                          | Some s -> s
                          | None -> -1)
                    in
                    reply (Ctrl.Map { first_block; sites }))))

let attach host ?(port = 2050) ?(rpc_port = 2052) ?(probe_timeout = 0.5) ?(map_sites = [||])
    ?trace () =
  let wal =
    match host.Host.disk with
    | Some disk -> Wal.create ~eng:host.Host.eng ~disk ~name:"coord.wal" ()
    | None -> Wal.create ~name:"coord.wal" ()
  in
  let t =
    {
      host;
      ctrl_port = port;
      rpc = Rpc.create host.Host.net host.Host.addr ~port:rpc_port;
      trace;
      probe_timeout;
      map_sites;
      wal;
      (* lint: bounded — holds only ops in progress: completion retires the row (WAL keeps history) *)
      intents = Hashtbl.create 64;
      (* lint: bounded — one row per file with a block map; soft state, reset on crash *)
      maps = Hashtbl.create 64;
      next_op = Int64.of_int (host.Host.addr * 1_000_000);
      logged = 0;
      completed_count = 0;
      redo_count = 0;
      up = true;
      lease_until = infinity;
      lease_epoch = 0;
      fence_bounces = 0;
    }
  in
  Nfs_endpoint.serve_raw host ~port ~handler:(handle_msg t);
  t

let addr t = t.host.Host.addr
let port t = t.ctrl_port
let host t = t.host
let is_up t = t.up
let map_sites t = t.map_sites

let log_image t = Wal.image t.wal
(* The stable (synced) intentions log — what shared storage holds after
   this coordinator fails; a standby adopts it to finish 2PC. *)

(* ---- fencing lease (failover) ---- *)

let set_lease t ~epoch ~until =
  t.lease_epoch <- epoch;
  t.lease_until <- until

let lease_epoch t = t.lease_epoch
let fence_bounces t = t.fence_bounces
let is_wedged t = wedged t

let pending_intents t =
  Hashtbl.fold (fun _ i acc -> if i.completed then acc else acc + 1) t.intents 0

let intents_logged t = t.logged
let completions t = t.completed_count
let redos t = t.redo_count
let map_entries t = Hashtbl.length t.maps

(* lint: F1 ok — crash simulation: rebuilding the synced log image models the disk, not a client-visible mutation *)
let crash t =
  t.up <- false;
  (* Volatile state is lost; only the synced log image survives. *)
  let image = Wal.image t.wal in
  Hashtbl.reset t.intents;
  Hashtbl.reset t.maps;
  let wal = match t.host.Host.disk with
    | Some disk -> Wal.create ~eng:t.host.Host.eng ~disk ~name:"coord.wal" ()
    | None -> Wal.create ~name:"coord.wal" ()
  in
  (* Seed the fresh log with the surviving records so recover can scan it. *)
  ignore (Wal.replay image (fun ~lsn:_ ~rtype payload -> ignore (Wal.append wal ~rtype payload)));
  Wal.sync wal;
  t.wal <- wal

let recover t =
  (* Scan the intentions log: rebuild the table, then drive incomplete
     operations to completion ("a failed coordinator recovers by scanning
     its intentions log, completing or aborting operations in progress"). *)
  ignore
    (Wal.replay (Wal.image t.wal) (fun ~lsn:_ ~rtype payload ->
         match rtype with
         | rt when rt = rt_intent -> (
             match Ctrl.decode_msg (Bytes.of_string payload) with
             | _, Ctrl.Intent { op_id; kind; fh; participants } ->
                 Hashtbl.replace t.intents op_id { kind; fh; participants; completed = false }
             | _ -> ()
             | exception Ctrl.Malformed -> ())
         | rt when rt = rt_complete -> (
             match Ctrl.decode_msg (Bytes.of_string payload) with
             | _, Ctrl.Complete { op_id } -> Hashtbl.remove t.intents op_id
             | _ -> ()
             | exception Ctrl.Malformed -> ())
         | _ -> ()));
  t.up <- true;
  let incomplete =
    Hashtbl.fold (fun op_id i acc -> if i.completed then acc else (op_id, i) :: acc) t.intents []
  in
  Engine.spawn t.host.Host.eng (fun () ->
      List.iter (fun (op_id, i) -> redo t op_id i) incomplete)

(* lint: F1 ok — failover takeover: the deposed coordinator is fenced by lease expiry before its log is grafted here *)
let adopt_log t ~log =
  (* Takeover: graft a failed coordinator's stable intentions log into
     this (typically fresh) coordinator, then run the normal recovery
     scan — incomplete operations are re-driven from here. Journaling the
     adopted records locally first makes the adoption itself crash-safe:
     a standby that dies mid-adoption leaves a log a second standby can
     adopt again, and a re-adoption of the same image converges (replay
     rebuilds the same intent rows). *)
  ignore (Wal.replay log (fun ~lsn:_ ~rtype payload -> ignore (Wal.append t.wal ~rtype payload)));
  Wal.sync t.wal;
  recover t

module Engine = Slice_sim.Engine
module Packet = Slice_net.Packet
module Net = Slice_net.Net
module Nfs = Slice_nfs.Nfs
module Codec = Slice_nfs.Codec
module Trace = Slice_trace.Trace

type cost = { per_op : float; per_byte : float }

let reply_to (host : Host.t) (pkt : Packet.t) ?(extra_size = 0) payload =
  let reply =
    Packet.make ~src:host.addr ~dst:pkt.src ~sport:pkt.dport ~dport:pkt.sport ~extra_size
      payload
  in
  Net.send host.net reply

let request_data_bytes (call : Nfs.call) =
  match call with Nfs.Write (_, _, _, d) -> Nfs.wdata_length d | _ -> 0

let response_data_bytes (resp : Nfs.response) =
  match resp with Ok (Nfs.RRead (d, _, _)) -> Nfs.wdata_length d | _ -> 0

(* WFQ cost estimate: the CPU this request will charge. For reads the
   response size isn't known until the handler runs, so the requested
   count stands in for it — an upper bound, and the right one for
   scheduling (a tenant pays for what it asked to move). *)
let estimate_cost cost (call : Nfs.call) =
  let data =
    match call with
    | Nfs.Write (_, _, _, d) -> Nfs.wdata_length d
    | Nfs.Read (_, _, count) -> count
    | _ -> 0
  in
  cost.per_op +. (cost.per_byte *. float_of_int data)

let serve (host : Host.t) ~port ~cost ?(alive = fun () -> true) ?trace ?qos ~handler () =
  (* Duplicate request cache: a retransmitted non-idempotent call (create,
     remove, rename, ...) whose reply was lost must get the cached reply,
     not a re-execution. Keyed by XID (globally unique here). *)
  let drc : (int, bytes * int) Slice_util.Lru.t = Slice_util.Lru.create ~capacity:512 () in
  (* lint: bounded — one row per request being executed; removed with the reply *)
  let in_flight : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  Net.listen host.net host.addr ~port (fun pkt ->
      Engine.spawn host.eng (fun () ->
          (* A crashed service is silent: no decode, no error reply —
             the client's end-to-end retransmission is the recovery. *)
          if alive () && Slice_net.Cksum.verify pkt then
            match (try Some (Codec.decode_call pkt.payload) with Codec.Malformed _ -> None) with
            | None -> () (* garbage: drop; client retransmits *)
            | Some (xid, call) -> (
                match Slice_util.Lru.find drc xid with
                | Some (payload, extra_size) ->
                    (* retransmission of a completed request *)
                    Host.cpu host cost.per_op;
                    reply_to host pkt ~extra_size (Bytes.copy payload)
                | None ->
                    if not (Hashtbl.mem in_flight xid) then begin
                      (* a retransmission racing the original execution is
                         dropped; the eventual reply satisfies both — and the
                         mark goes in before any WFQ wait, so a request parked
                         in a tenant queue is already deduplicated *)
                      Hashtbl.replace in_flight xid ();
                      let execute () =
                        let span =
                          Trace.child (Trace.span_of_xid trace xid)
                            ~op:(Nfs.call_name call) ~hop:"server" ~site:(Host.name host) ()
                        in
                        let in_bytes = request_data_bytes call in
                        Host.cpu host (cost.per_op +. (cost.per_byte *. float_of_int in_bytes));
                        let resp = handler span call in
                        let out_bytes = response_data_bytes resp in
                        if out_bytes > 0 then
                          Host.cpu host (cost.per_byte *. float_of_int out_bytes);
                        let outcome =
                          match resp with Ok _ -> "ok" | Error e -> Nfs.status_name e
                        in
                        Trace.finish ~outcome span;
                        let payload = Codec.encode_reply ~xid resp in
                        let extra_size = Codec.extra_size_of_response resp in
                        Hashtbl.remove in_flight xid;
                        Slice_util.Lru.add drc xid (payload, extra_size);
                        reply_to host pkt ~extra_size (Bytes.copy payload)
                      in
                      match qos with
                      | None -> execute ()
                      | Some q ->
                          (* Fair queueing replaces FIFO dispatch: the request
                             waits its turn in its tenant's queue; the done_
                             continuation fires after the reply is sent, so
                             [depth] bounds true concurrent service. *)
                          let tenant = Slice_qos.Wfq.tenant_of q pkt.src in
                          Slice_qos.Wfq.submit q ~tenant
                            ~cost:(estimate_cost cost call) (fun done_ ->
                              execute ();
                              done_ ())
                    end)))

let serve_raw (host : Host.t) ~port ~handler = Net.listen host.net host.addr ~port handler

(** Server-side NFS endpoint: listens on a host port, decodes calls,
    charges per-request CPU, runs the handler in a fiber, and sends the
    encoded reply back to the requester. All Slice server classes and the
    baseline servers are built on this. *)

type cost = { per_op : float; per_byte : float }
(** CPU consumed per request: fixed cost plus cost proportional to the
    data payload moved (copies/checksums through the server stack). *)

val serve :
  Host.t ->
  port:int ->
  cost:cost ->
  ?alive:(unit -> bool) ->
  ?trace:Slice_trace.Trace.t ->
  ?qos:Slice_qos.Wfq.t ->
  handler:(Slice_trace.Trace.span -> Slice_nfs.Nfs.call -> Slice_nfs.Nfs.response) ->
  unit ->
  unit
(** The handler runs in a fiber and may use storage/cache/RPC operations
    that park. Malformed packets are dropped (the client retransmits).
    While [alive] (default: always) returns [false] the endpoint is
    silent — packets are swallowed without decode or reply, modeling a
    crashed service whose clients recover by retransmission.

    With [trace], each executed request gets a ["server"] span covering
    CPU charge + handler + reply encode, parented under the span bound
    to the request's xid (see {!Slice_net.Rpc.call} and the µproxy);
    its outcome is the NFS status. The span is handed to the handler so
    deeper hops (disk, WAL) can nest under it; handlers get
    {!Slice_trace.Trace.null} when tracing is off.

    With [qos], executed requests pass through the per-tenant WFQ
    scheduler instead of FIFO dispatch: the source address classifies
    the tenant, the request's estimated CPU is its scheduling cost, and
    service order under saturation is weight-proportional. DRC hits and
    drops bypass the scheduler (they cost one op and must stay fast).
    Without [qos] the path is unchanged. *)

val serve_raw :
  Host.t ->
  port:int ->
  handler:(Slice_net.Packet.t -> unit) ->
  unit
(** Escape hatch for non-NFS protocols (coordinator/peer messages):
    dispatch without decode; the handler spawns its own fibers. *)

val reply_to :
  Host.t -> Slice_net.Packet.t -> ?extra_size:int -> bytes -> unit
(** Send [payload] back to the source of [pkt], from this host. *)

module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Bcache = Slice_disk.Bcache
module Trace = Slice_trace.Trace

let block_size = Bcache.block_size

type obj = {
  mutable size : int64;
  data : (int, bytes) Hashtbl.t; (* materialized 8 KB blocks only *)
}

type t = {
  host : Host.t;
  cap_secret : string option;
  cache : Bcache.t;
  objects : (int64, obj) Hashtbl.t;
  mutable up : bool;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let object_id_of_fh fh = Slice_hash.Md5.fold64 (Fh.key fh)

let get_obj t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some o -> o
  | None ->
      (* lint: bounded — one object's blocks, capped by the object's size *)
      let o = { size = 0L; data = Hashtbl.create 8 } in
      Hashtbl.replace t.objects oid o;
      o

let attr_of t fh (o : obj) =
  ignore t;
  {
    (Nfs.default_attr ~ftype:fh.Fh.ftype ~fileid:fh.Fh.file_id ~now:0.0) with
    size = o.size;
    used = o.size;
  }

let block_range ~off ~count =
  let first = Int64.to_int (Int64.div off (Int64.of_int block_size)) in
  let last =
    Int64.to_int (Int64.div (Int64.add off (Int64.of_int (max 0 (count - 1)))) (Int64.of_int block_size))
  in
  (first, if count = 0 then first - 1 else last)

(* Store real bytes into the object's materialized blocks. *)
let store_data (o : obj) ~off data =
  let len = String.length data in
  let rec loop pos =
    if pos < len then begin
      let abs = Int64.add off (Int64.of_int pos) in
      let blk = Int64.to_int (Int64.div abs (Int64.of_int block_size)) in
      let in_blk = Int64.to_int (Int64.rem abs (Int64.of_int block_size)) in
      let n = min (block_size - in_blk) (len - pos) in
      let buf =
        match Hashtbl.find_opt o.data blk with
        | Some b -> b
        | None ->
            let b = Bytes.make block_size '\000' in
            Hashtbl.replace o.data blk b;
            b
      in
      Bytes.blit_string data pos buf in_blk n;
      loop (pos + n)
    end
  in
  loop 0

(* Extract real bytes if every touched block is materialized. *)
let load_data (o : obj) ~off ~count =
  let first, last = block_range ~off ~count in
  let all_real = ref (count > 0) in
  for b = first to last do
    if not (Hashtbl.mem o.data b) then all_real := false
  done;
  if not !all_real then None
  else begin
    let out = Bytes.create count in
    let rec loop pos =
      if pos < count then begin
        let abs = Int64.add off (Int64.of_int pos) in
        let blk = Int64.to_int (Int64.div abs (Int64.of_int block_size)) in
        let in_blk = Int64.to_int (Int64.rem abs (Int64.of_int block_size)) in
        let n = min (block_size - in_blk) (count - pos) in
        Bytes.blit (Hashtbl.find o.data blk) in_blk out pos n;
        loop (pos + n)
      end
    in
    loop 0;
    Some (Bytes.unsafe_to_string out)
  end

let authorized t (call : Nfs.call) =
  match t.cap_secret with
  | None -> true
  | Some secret -> (
      match call with
      | Nfs.Null -> true
      | Nfs.Getattr fh | Nfs.Read (fh, _, _) | Nfs.Write (fh, _, _, _)
      | Nfs.Commit (fh, _, _) | Nfs.Remove (fh, _) | Nfs.Setattr (fh, _) ->
          Slice_nfs.Cap.verify ~secret fh
      | _ -> true (* misdirected classes are rejected below anyway *))

let handle t span (call : Nfs.call) : Nfs.response =
  (* Synchronous cache/disk work records as a "disk" hop; asynchronous
     readahead and write-behind stay untraced (they complete after the
     request span closes). *)
  let disk_timed f = Trace.timed span ~hop:"disk" ~site:(Host.name t.host) f in
  if not (authorized t call) then Error Nfs.ERR_PERM
  else
  match call with
  | Nfs.Null -> Ok Nfs.RNull
  | Nfs.Getattr fh ->
      let o = get_obj t (object_id_of_fh fh) in
      Ok (Nfs.RGetattr (attr_of t fh o))
  | Nfs.Read (fh, off, count) ->
      let oid = object_id_of_fh fh in
      let o = get_obj t oid in
      let avail = Int64.sub o.size off in
      let count =
        if Int64.compare avail 0L <= 0 then 0 else min count (Int64.to_int (min avail (Int64.of_int count)))
      in
      let first, last = block_range ~off ~count in
      disk_timed (fun () ->
          for b = first to last do
            Bcache.read t.cache ~obj:oid ~block:b
          done);
      t.reads <- t.reads + 1;
      t.bytes_read <- t.bytes_read + count;
      let eof = Int64.compare (Int64.add off (Int64.of_int count)) o.size >= 0 in
      let data =
        if count = 0 then Nfs.Data ""
        else
          match load_data o ~off ~count with
          | Some s -> Nfs.Data s
          | None -> Nfs.Synthetic count
      in
      Ok (Nfs.RRead (data, eof, attr_of t fh o))
  | Nfs.Write (fh, off, stable, data) ->
      let oid = object_id_of_fh fh in
      let o = get_obj t oid in
      let len = Nfs.wdata_length data in
      let first, last = block_range ~off ~count:len in
      disk_timed (fun () ->
          for b = first to last do
            Bcache.write t.cache ~obj:oid ~block:b
          done);
      (match data with Nfs.Data s -> store_data o ~off s | Nfs.Synthetic _ -> ());
      let fin = Int64.add off (Int64.of_int len) in
      if Int64.compare fin o.size > 0 then o.size <- fin;
      t.writes <- t.writes + 1;
      t.bytes_written <- t.bytes_written + len;
      if stable <> Nfs.Unstable then disk_timed (fun () -> Bcache.commit t.cache ~obj:oid);
      Ok (Nfs.RWrite (len, stable, attr_of t fh o))
  | Nfs.Commit (fh, _off, _count) ->
      let oid = object_id_of_fh fh in
      let o = get_obj t oid in
      disk_timed (fun () -> Bcache.commit t.cache ~obj:oid);
      Ok (Nfs.RCommit (attr_of t fh o))
  | Nfs.Remove (fh, _name) ->
      (* Object remove: the coordinator names the object by handle; the
         name argument is unused at this layer. *)
      let oid = object_id_of_fh fh in
      Hashtbl.remove t.objects oid;
      Bcache.invalidate_object t.cache oid;
      Ok Nfs.RRemove
  | Nfs.Setattr (fh, s) -> (
      let oid = object_id_of_fh fh in
      let o = get_obj t oid in
      match s.Nfs.set_size with
      | Some sz ->
          o.size <- sz;
          let keep_last, _ = block_range ~off:sz ~count:1 in
          Hashtbl.iter
            (fun b _ -> if b > keep_last then Hashtbl.remove o.data b)
            (Hashtbl.copy o.data);
          Ok (Nfs.RSetattr (attr_of t fh o))
      | None -> Ok (Nfs.RSetattr (attr_of t fh o)))
  | Nfs.Lookup _ | Nfs.Access _ | Nfs.Readlink _ | Nfs.Create _ | Nfs.Mkdir _
  | Nfs.Symlink _ | Nfs.Rmdir _ | Nfs.Rename _ | Nfs.Link _ | Nfs.Readdir _
  | Nfs.Fsstat _ ->
      Error Nfs.ERR_NOTDIR

let attach host ?(port = 2049) ?(cache_bytes = 256 * 1024 * 1024) ?cap_secret ?trace () =
  let disk = Host.disk_exn host in
  let t =
    {
      host;
      cap_secret;
      cache =
        Bcache.create host.Host.eng
          ~backend:(Bcache.disk_backend host.Host.eng disk)
          ~capacity:cache_bytes ~name:(Host.name host);
      (* lint: bounded — the backing store itself: one row per stored object *)
      objects = Hashtbl.create 256;
      up = true;
      reads = 0;
      writes = 0;
      bytes_read = 0;
      bytes_written = 0;
    }
  in
  (* Per-op cost small and per-byte cost modeling the storage node's
     network/buffer path; the SCSI channel, not the CPU, is the intended
     per-node bandwidth cap. *)
  Nfs_endpoint.serve host ~port
    ~cost:{ per_op = 40e-6; per_byte = 2.5e-9 }
    ~alive:(fun () -> t.up)
    ?trace ~handler:(handle t) ();
  t

let crash t =
  t.up <- false;
  (* RAM is lost; the objects table plays the role of the disk. *)
  Bcache.drop_clean t.cache

let recover t = t.up <- true
let is_up t = t.up

let addr t = t.host.Host.addr
let object_count t = Hashtbl.length t.objects

let object_size t fh =
  Option.map (fun o -> o.size) (Hashtbl.find_opt t.objects (object_id_of_fh fh))

let reads t = t.reads
let writes t = t.writes
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let disk t = Host.disk_exn t.host
let drop_caches t = Bcache.drop_clean t.cache
let cache_hits t = Bcache.hits t.cache
let cache_misses t = Bcache.misses t.cache

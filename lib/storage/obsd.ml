module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Routekey = Slice_nfs.Routekey
module Bcache = Slice_disk.Bcache
module Trace = Slice_trace.Trace

let block_size = Bcache.block_size

type obj = {
  mutable size : int64;
  data : (int, bytes) Hashtbl.t; (* materialized 8 KB blocks only *)
}

(* One storage object may carry subobjects for several logical storage
   sites: the µproxy encodes the logical site into the high bits of every
   bulk-I/O offset (Routekey.site_offset), and the node decodes it here.
   Keeping sites separate is what lets a logical site migrate between
   nodes — or several sites share one node after a reconfiguration —
   without colliding in an object's offset space. *)
type t = {
  host : Host.t;
  cap_secret : string option;
  cache : Bcache.t;
  objects : (int64, (int, obj) Hashtbl.t) Hashtbl.t; (* oid -> site -> subobject *)
  owned : (int, unit) Hashtbl.t; (* logical sites served here *)
  draining : (int, unit) Hashtbl.t; (* sites mid-migration: reads ok, writes bounce *)
  site_ops : (int, int ref) Hashtbl.t; (* per-site request load, for rebalancing *)
  mutable up : bool;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable drain_bounces : int;
  mutable misdirect_bounces : int;
  (* Fencing lease (failover): an expired lease wedges the whole node —
     every request bounces — so a zombie deposed by a takeover cannot
     acknowledge writes against stale object state. Defaults (infinite
     lease, epoch 0) keep standalone nodes unfenced. *)
  mutable lease_until : float;
  mutable lease_epoch : int;
  mutable fence_bounces : int;
}

let object_id_of_fh fh = Slice_hash.Md5.fold64 (Fh.key fh)

let site_of_offset = Routekey.offset_site
let local_of_offset = Routekey.offset_local

(* Distinct Bcache block index space per logical site within one object. *)
let cache_block ~site ~local_block =
  (site * Int64.to_int (Int64.div Routekey.site_stride (Int64.of_int block_size)))
  + local_block

let sites_of t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some tbl -> tbl
  | None ->
      (* lint: bounded — one row per logical site holding part of this object *)
      let tbl = Hashtbl.create 2 in
      Hashtbl.replace t.objects oid tbl;
      tbl

let get_obj t oid site =
  let tbl = sites_of t oid in
  match Hashtbl.find_opt tbl site with
  | Some o -> o
  | None ->
      (* lint: bounded — one object's blocks, capped by the object's size *)
      let o = { size = 0L; data = Hashtbl.create 8 } in
      Hashtbl.replace tbl site o;
      o

(* Aggregate size across this node's subobjects, for offset-free ops
   (getattr, commit replies). *)
let total_size t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some tbl -> Hashtbl.fold (fun _ o acc -> Int64.add acc o.size) tbl 0L
  | None -> 0L

let attr_of t fh size =
  ignore t;
  {
    (Nfs.default_attr ~ftype:fh.Fh.ftype ~fileid:fh.Fh.file_id ~now:0.0) with
    size;
    used = size;
  }

let block_range ~off ~count =
  let first = Int64.to_int (Int64.div off (Int64.of_int block_size)) in
  let last =
    Int64.to_int (Int64.div (Int64.add off (Int64.of_int (max 0 (count - 1)))) (Int64.of_int block_size))
  in
  (first, if count = 0 then first - 1 else last)

(* Store real bytes into the subobject's materialized blocks. *)
let store_data (o : obj) ~off data =
  let len = String.length data in
  let rec loop pos =
    if pos < len then begin
      let abs = Int64.add off (Int64.of_int pos) in
      let blk = Int64.to_int (Int64.div abs (Int64.of_int block_size)) in
      let in_blk = Int64.to_int (Int64.rem abs (Int64.of_int block_size)) in
      let n = min (block_size - in_blk) (len - pos) in
      let buf =
        match Hashtbl.find_opt o.data blk with
        | Some b -> b
        | None ->
            let b = Bytes.make block_size '\000' in
            Hashtbl.replace o.data blk b;
            b
      in
      Bytes.blit_string data pos buf in_blk n;
      loop (pos + n)
    end
  in
  loop 0

(* Extract real bytes if every touched block is materialized. *)
let load_data (o : obj) ~off ~count =
  let first, last = block_range ~off ~count in
  let all_real = ref (count > 0) in
  for b = first to last do
    if not (Hashtbl.mem o.data b) then all_real := false
  done;
  if not !all_real then None
  else begin
    let out = Bytes.create count in
    let rec loop pos =
      if pos < count then begin
        let abs = Int64.add off (Int64.of_int pos) in
        let blk = Int64.to_int (Int64.div abs (Int64.of_int block_size)) in
        let in_blk = Int64.to_int (Int64.rem abs (Int64.of_int block_size)) in
        let n = min (block_size - in_blk) (count - pos) in
        Bytes.blit (Hashtbl.find o.data blk) in_blk out pos n;
        loop (pos + n)
      end
    in
    loop 0;
    Some (Bytes.unsafe_to_string out)
  end

let authorized t (call : Nfs.call) =
  match t.cap_secret with
  | None -> true
  | Some secret -> (
      match call with
      | Nfs.Null -> true
      | Nfs.Getattr fh | Nfs.Read (fh, _, _) | Nfs.Write (fh, _, _, _)
      | Nfs.Commit (fh, _, _) | Nfs.Remove (fh, _) | Nfs.Setattr (fh, _) ->
          Slice_nfs.Cap.verify ~secret fh
      | _ -> true (* misdirected classes are rejected below anyway *))

let touch_site t site =
  let r =
    match Hashtbl.find_opt t.site_ops site with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.site_ops site r;
        r
  in
  incr r

let owns t site = Hashtbl.mem t.owned site
let is_draining t site = Hashtbl.mem t.draining site

let wedged t = Engine.now t.host.Host.eng > t.lease_until

let handle t span (call : Nfs.call) : Nfs.response =
  (* Synchronous cache/disk work records as a "disk" hop; asynchronous
     readahead and write-behind stay untraced (they complete after the
     request span closes). *)
  let disk_timed f = Trace.timed span ~hop:"disk" ~site:(Host.name t.host) f in
  if wedged t then begin
    t.fence_bounces <- t.fence_bounces + 1;
    Error Nfs.ERR_MISDIRECTED
  end
  else if not (authorized t call) then Error Nfs.ERR_PERM
  else
  match call with
  | Nfs.Null -> Ok Nfs.RNull
  | Nfs.Getattr fh ->
      let oid = object_id_of_fh fh in
      Ok (Nfs.RGetattr (attr_of t fh (total_size t oid)))
  | Nfs.Read (fh, woff, count) ->
      let oid = object_id_of_fh fh in
      let site = site_of_offset woff in
      if not (owns t site || is_draining t site) then begin
        t.misdirect_bounces <- t.misdirect_bounces + 1;
        Error Nfs.ERR_MISDIRECTED
      end
      else begin
        touch_site t site;
        let off = local_of_offset woff in
        let o = get_obj t oid site in
        let avail = Int64.sub o.size off in
        let count =
          if Int64.compare avail 0L <= 0 then 0
          else min count (Int64.to_int (min avail (Int64.of_int count)))
        in
        let first, last = block_range ~off ~count in
        disk_timed (fun () ->
            for b = first to last do
              Bcache.read t.cache ~obj:oid ~block:(cache_block ~site ~local_block:b)
            done);
        t.reads <- t.reads + 1;
        t.bytes_read <- t.bytes_read + count;
        let eof = Int64.compare (Int64.add off (Int64.of_int count)) o.size >= 0 in
        let data =
          if count = 0 then Nfs.Data ""
          else
            match load_data o ~off ~count with
            | Some s -> Nfs.Data s
            | None -> Nfs.Synthetic count
        in
        Ok (Nfs.RRead (data, eof, attr_of t fh o.size))
      end
  | Nfs.Write (fh, woff, stable, data) ->
      let oid = object_id_of_fh fh in
      let site = site_of_offset woff in
      (* Drain: the donor answers reads for a moving site but bounces its
         writes so no update can land behind the migration's back.
         Mirrored subobjects are exempt (their twin replica has already
         applied the duplicated write; the commit-time delta sweep trues
         this replica up instead of forcing a half-applied bounce). *)
      if is_draining t site && not fh.Fh.mirrored then begin
        t.drain_bounces <- t.drain_bounces + 1;
        Error Nfs.ERR_MISDIRECTED
      end
      else if not (owns t site || is_draining t site) then begin
        t.misdirect_bounces <- t.misdirect_bounces + 1;
        Error Nfs.ERR_MISDIRECTED
      end
      else begin
        touch_site t site;
        let off = local_of_offset woff in
        let o = get_obj t oid site in
        let len = Nfs.wdata_length data in
        let first, last = block_range ~off ~count:len in
        disk_timed (fun () ->
            for b = first to last do
              Bcache.write t.cache ~obj:oid ~block:(cache_block ~site ~local_block:b)
            done);
        (match data with Nfs.Data s -> store_data o ~off s | Nfs.Synthetic _ -> ());
        let fin = Int64.add off (Int64.of_int len) in
        if Int64.compare fin o.size > 0 then o.size <- fin;
        t.writes <- t.writes + 1;
        t.bytes_written <- t.bytes_written + len;
        if stable <> Nfs.Unstable then disk_timed (fun () -> Bcache.commit t.cache ~obj:oid);
        Ok (Nfs.RWrite (len, stable, attr_of t fh o.size))
      end
  | Nfs.Commit (fh, _off, _count) ->
      (* Commit targets the whole node-local object (the coordinator fans
         it out per node, not per site) — never ownership-gated, so the
         coordinator's idempotent redo always lands. *)
      let oid = object_id_of_fh fh in
      disk_timed (fun () -> Bcache.commit t.cache ~obj:oid);
      Ok (Nfs.RCommit (attr_of t fh (total_size t oid)))
  | Nfs.Remove (fh, _name) ->
      (* Object remove: the coordinator names the object by handle; the
         name argument is unused at this layer. Drops every local
         subobject — permissive for the same redo reason as commit. *)
      let oid = object_id_of_fh fh in
      Hashtbl.remove t.objects oid;
      Bcache.invalidate_object t.cache oid;
      Ok Nfs.RRemove
  | Nfs.Setattr (fh, s) -> (
      let oid = object_id_of_fh fh in
      match s.Nfs.set_size with
      | Some sz ->
          let tbl = sites_of t oid in
          if Hashtbl.length tbl = 0 then ignore (get_obj t oid 0);
          let single = Hashtbl.length tbl <= 1 in
          Hashtbl.iter
            (fun _ (o : obj) ->
              (* With one subobject this is the plain truncate/extend of a
                 single-site object; across several sites the global size
                 can only clamp each site's folded subobject downward. *)
              o.size <- (if single then sz else min o.size sz);
              let keep_last, _ = block_range ~off:o.size ~count:1 in
              Hashtbl.iter
                (fun b _ -> if b > keep_last then Hashtbl.remove o.data b)
                (Hashtbl.copy o.data))
            tbl;
          Ok (Nfs.RSetattr (attr_of t fh (total_size t oid)))
      | None -> Ok (Nfs.RSetattr (attr_of t fh (total_size t oid))))
  | Nfs.Lookup _ | Nfs.Access _ | Nfs.Readlink _ | Nfs.Create _ | Nfs.Mkdir _
  | Nfs.Symlink _ | Nfs.Rmdir _ | Nfs.Rename _ | Nfs.Link _ | Nfs.Readdir _
  | Nfs.Fsstat _ ->
      Error Nfs.ERR_NOTDIR

let attach host ?(port = 2049) ?(cache_bytes = 256 * 1024 * 1024) ?cap_secret
    ?(sites = [ 0 ]) ?trace ?qos () =
  let disk = Host.disk_exn host in
  let t =
    {
      host;
      cap_secret;
      cache =
        Bcache.create host.Host.eng
          ~backend:(Bcache.disk_backend host.Host.eng disk)
          ~capacity:cache_bytes ~name:(Host.name host);
      (* lint: bounded — the backing store itself: one row per stored object *)
      objects = Hashtbl.create 256;
      (* lint: bounded — one row per logical storage site bound here *)
      owned = Hashtbl.create 4;
      (* lint: bounded — sites mid-migration; cleared on commit/abort/crash *)
      draining = Hashtbl.create 4;
      (* lint: bounded — one row per logical storage site *)
      site_ops = Hashtbl.create 4;
      up = true;
      reads = 0;
      writes = 0;
      bytes_read = 0;
      bytes_written = 0;
      drain_bounces = 0;
      misdirect_bounces = 0;
      lease_until = infinity;
      lease_epoch = 0;
      fence_bounces = 0;
    }
  in
  List.iter (fun s -> Hashtbl.replace t.owned s ()) sites;
  (* Per-op cost small and per-byte cost modeling the storage node's
     network/buffer path; the SCSI channel, not the CPU, is the intended
     per-node bandwidth cap. *)
  Nfs_endpoint.serve host ~port
    ~cost:{ per_op = 40e-6; per_byte = 2.5e-9 }
    ~alive:(fun () -> t.up)
    ?trace ?qos ~handler:(handle t) ();
  t

let crash t =
  t.up <- false;
  (* RAM is lost; the objects table plays the role of the disk. A drain
     in progress is volatile control-plane state: the migration aborts
     and the recovered node serves the site normally again. *)
  Hashtbl.reset t.draining;
  Bcache.drop_clean t.cache

let recover t = t.up <- true
let is_up t = t.up

let addr t = t.host.Host.addr
let host t = t.host

(* Instantaneous backlog in seconds — the load gauge a µproxy probes
   when choosing between two mirror replicas (power-of-two-choices).
   CPU plus disk arms: under read-heavy storms the arms, not the CPU,
   are the contended resource, so a CPU-only gauge would see two
   equally idle processors in front of very differently loaded
   arrays. *)
let queue_depth t =
  Slice_sim.Resource.backlog t.host.Host.cpu
  +. Slice_disk.Disk.backlog (Host.disk_exn t.host)
let object_count t = Hashtbl.length t.objects

let object_size t fh =
  match Hashtbl.find_opt t.objects (object_id_of_fh fh) with
  | None -> None
  | Some tbl -> Some (Hashtbl.fold (fun _ o acc -> Int64.add acc o.size) tbl 0L)

(* ---- reconfiguration hooks (control-plane, in-process) ---- *)

let owned_sites t =
  Hashtbl.fold (fun s () acc -> s :: acc) t.owned [] |> List.sort compare

let own_site t site = Hashtbl.replace t.owned site ()

let disown_site t site =
  Hashtbl.remove t.owned site;
  Hashtbl.remove t.draining site

let begin_drain t site = Hashtbl.replace t.draining site ()
let end_drain t site = Hashtbl.remove t.draining site

let site_load t site =
  match Hashtbl.find_opt t.site_ops site with Some r -> !r | None -> 0

let reset_site_load t site = Hashtbl.remove t.site_ops site

let drain_bounces t = t.drain_bounces
let misdirect_bounces t = t.misdirect_bounces

type site_image = (int64 * int64 * (int * bytes) list) list
(* (oid, subobject size, materialized blocks) per object of the site. *)

let export_site t site : site_image =
  Hashtbl.fold
    (fun oid tbl acc ->
      match Hashtbl.find_opt tbl site with
      | None -> acc
      | Some o ->
          let blocks =
            Hashtbl.fold (fun b buf acc -> (b, Bytes.copy buf) :: acc) o.data []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          (oid, o.size, blocks) :: acc)
    t.objects []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let import_site t site (img : site_image) =
  List.iter
    (fun (oid, size, blocks) ->
      (* lint: bounded — deep copy of one migrating subobject's blocks *)
      let o = { size; data = Hashtbl.create (max 8 (List.length blocks)) } in
      List.iter (fun (b, buf) -> Hashtbl.replace o.data b (Bytes.copy buf)) blocks;
      Hashtbl.replace (sites_of t oid) site o)
    img

let drop_site t site =
  Hashtbl.iter (fun _ tbl -> Hashtbl.remove tbl site) t.objects;
  (* Prune objects left with no subobjects so object_count stays honest. *)
  let empty =
    Hashtbl.fold (fun oid tbl acc -> if Hashtbl.length tbl = 0 then oid :: acc else acc)
      t.objects []
    |> List.sort compare
  in
  List.iter (fun oid -> Hashtbl.remove t.objects oid) empty;
  Hashtbl.remove t.site_ops site

let image_bytes (img : site_image) =
  List.fold_left (fun acc (_, size, _) -> Int64.add acc size) 0L img

let site_bytes t site =
  Hashtbl.fold
    (fun _ tbl acc ->
      match Hashtbl.find_opt tbl site with
      | Some o -> Int64.add acc o.size
      | None -> acc)
    t.objects 0L

(* ---- fencing lease (failover) ---- *)

let set_lease t ~epoch ~until =
  t.lease_epoch <- epoch;
  t.lease_until <- until

let lease_epoch t = t.lease_epoch
let fence_bounces t = t.fence_bounces
let is_wedged t = wedged t

let reads t = t.reads
let writes t = t.writes
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let disk t = Host.disk_exn t.host
let drop_caches t = Bcache.drop_clean t.cache
let cache_hits t = Bcache.hits t.cache
let cache_misses t = Bcache.misses t.cache

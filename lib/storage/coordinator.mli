(** Block service coordinator (Sections 2.2, 3.1, 3.3.2).

    "The Slice block service includes a coordinator module for files that
    span multiple storage nodes. The coordinator manages optional block
    maps and preserves atomicity of multisite operations."

    Atomicity uses the paper's intention-logging protocol: a requester
    sends an {e intention} before a multi-site operation; the coordinator
    logs it to stable storage (its write-ahead log); the requester sends a
    {e completion} when done, asynchronously clearing the intention. If no
    completion arrives within the probe timeout — or the coordinator
    recovers from a crash with intentions outstanding — the coordinator
    drives the operation to a consistent state by idempotent redo
    (re-issuing remove/commit to the participants).

    The coordinator also orchestrates whole-file multi-site remove and
    commit on behalf of directory servers and µproxies, and serves
    per-file block-map fragments for dynamic I/O routing policies. *)

type t

val attach :
  Host.t ->
  ?port:int ->
  ?rpc_port:int ->
  ?probe_timeout:float ->
  ?map_sites:int array ->
  ?trace:Slice_trace.Trace.t ->
  unit ->
  t
(** [map_sites] are the storage-node addresses used when minting block-map
    entries (default: empty — Get_map then returns Nack). Default control
    port 2050, probe timeout 0.5 s. With [trace], control messages whose
    xid is bound to a request span record a ["server"] hop here. *)

val addr : t -> Slice_net.Packet.addr
val port : t -> int
val host : t -> Host.t
val is_up : t -> bool
val map_sites : t -> int array
(** The storage-node placement array this coordinator mints maps from
    (a successor must be attached with the same array so block placement
    is preserved across a takeover). *)

(** {2 Introspection and failure injection} *)

val pending_intents : t -> int
val intents_logged : t -> int
val completions : t -> int
val redos : t -> int
(** Operations the coordinator had to finish itself (timeout probe or
    crash recovery). *)

val map_entries : t -> int

val crash : t -> unit
(** Stop service and discard all volatile state; only the synced log
    image survives (unsynced log records are torn away). *)

val recover : t -> unit
(** Replay the surviving log, redo incomplete intentions, resume
    service. *)

val log_image : t -> string
(** The stable (synced) intentions-log image — what shared storage holds
    after this coordinator fails. *)

val adopt_log : t -> log:string -> unit
(** Takeover: journal a failed coordinator's log image locally, then
    recover from it — incomplete intentions are re-driven from this
    coordinator. Safe to repeat (a standby that crashed mid-adoption can
    be re-adopted into): replay converges to the same intent table. *)

(** {2 Fencing lease (failover)} *)

val set_lease : t -> epoch:int -> until:float -> unit
(** Grant (or renew) this coordinator's fencing lease: it may serve
    until sim-time [until] under fencing epoch [epoch]. Coordinators
    start with an infinite lease (epoch 0). *)

val lease_epoch : t -> int

val is_wedged : t -> bool
(** The lease has expired: control messages are Nacked and redo probes
    stop, so a zombie deposed by a takeover cannot commit 2PC work. *)

val fence_bounces : t -> int
(** Control messages refused because the lease had expired. *)

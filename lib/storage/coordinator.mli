(** Block service coordinator (Sections 2.2, 3.1, 3.3.2).

    "The Slice block service includes a coordinator module for files that
    span multiple storage nodes. The coordinator manages optional block
    maps and preserves atomicity of multisite operations."

    Atomicity uses the paper's intention-logging protocol: a requester
    sends an {e intention} before a multi-site operation; the coordinator
    logs it to stable storage (its write-ahead log); the requester sends a
    {e completion} when done, asynchronously clearing the intention. If no
    completion arrives within the probe timeout — or the coordinator
    recovers from a crash with intentions outstanding — the coordinator
    drives the operation to a consistent state by idempotent redo
    (re-issuing remove/commit to the participants).

    The coordinator also orchestrates whole-file multi-site remove and
    commit on behalf of directory servers and µproxies, and serves
    per-file block-map fragments for dynamic I/O routing policies. *)

type t

val attach :
  Host.t ->
  ?port:int ->
  ?rpc_port:int ->
  ?probe_timeout:float ->
  ?map_sites:int array ->
  ?trace:Slice_trace.Trace.t ->
  unit ->
  t
(** [map_sites] are the storage-node addresses used when minting block-map
    entries (default: empty — Get_map then returns Nack). Default control
    port 2050, probe timeout 0.5 s. With [trace], control messages whose
    xid is bound to a request span record a ["server"] hop here. *)

val addr : t -> Slice_net.Packet.addr
val port : t -> int

(** {2 Introspection and failure injection} *)

val pending_intents : t -> int
val intents_logged : t -> int
val completions : t -> int
val redos : t -> int
(** Operations the coordinator had to finish itself (timeout probe or
    crash recovery). *)

val map_entries : t -> int

val crash : t -> unit
(** Stop service and discard all volatile state; only the synced log
    image survives (unsynced log records are torn away). *)

val recover : t -> unit
(** Replay the surviving log, redo incomplete intentions, resume
    service. *)

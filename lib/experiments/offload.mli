(** Metadata-offload exhibit: directory-server request reduction from the
    µproxy's name/attr fast path on the SPECsfs op mix, across a TTL and
    cache-capacity sweep (first point is always "cache off"). *)

type point = {
  label : string;
  ttl : float;
  capacity : int;
  ops : int;  (** measured operations completed *)
  dir_ops : int;  (** directory-server requests during the measured loop *)
  delivered_ops_s : float;
  avg_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  meta : Slice.Proxy.meta_cache_stats;
}

type fileset
(** Per-process SPECsfs file set (directories, files, symlinks). *)

val build_fileset :
  Slice_workload.Client.t ->
  root:Slice_nfs.Fh.t ->
  proc:int ->
  files:int ->
  fileset
(** Build process [proc]'s file set under [root]; all traffic this
    generates is setup, not measured-mix. *)

val one_op :
  Slice_workload.Client.t ->
  Slice_util.Prng.t ->
  fileset ->
  fresh:int ref ->
  unit
(** Issue one operation drawn from the SFS97 mix with the 80/20 hot-set
    skew ([fresh] numbers throwaway create/remove names). Shared with the
    tracing exhibit so both replay the same workload. *)

val compute : ?scale:float -> ?sweep:bool -> unit -> point list
(** [scale] multiplies file-set size and op count (default 1.0; tests use
    a fraction). The first point is the cache-off baseline, the second the
    default-knob cache; [sweep] (default true) adds the TTL/capacity
    corners. *)

val dir_reduction : off:point -> on:point -> float
(** Percent reduction in directory-server requests of [on] vs [off]. *)

val report_of : point list -> Report.t
(** Render precomputed points (the bench driver reuses them for the JSON
    artifact). *)

val report : ?scale:float -> unit -> Report.t

module Engine = Slice_sim.Engine
module Fiber = Slice_sim.Fiber
module Net = Slice_net.Net
module Client = Slice_workload.Client
module Untar = Slice_workload.Untar
module Specsfs = Slice_workload.Specsfs
module Ensemble = Slice.Ensemble
module Proxy = Slice.Proxy

type victim = Storage of int | Dir of int | Smallfile of int

type config = {
  seed : int;
  drop_prob : float;
  storage_nodes : int;
  untar_scale : float;
  procs : int;
  crash_node : victim option;
  crash_at : float;
  crash_for : float;
}

let default_config =
  {
    seed = 2001;
    drop_prob = 0.02;
    storage_nodes = 3;
    untar_scale = 0.01;
    procs = 2;
    (* never storage node 0: the block coordinator lives there *)
    crash_node = Some (Storage 1);
    crash_at = 1.0;
    crash_for = 2.0;
  }

type result = {
  ops : int;
  errors : int;
  retransmissions : int;
  stale_bounces : int;
  expired_pending : int;
  pending_at_quiesce : int;
  packets_dropped : int;
  fault_drops : int;
  elapsed : float;
}

let ensemble cfg =
  Ensemble.create
    {
      Ensemble.default_config with
      storage_nodes = cfg.storage_nodes;
      smallfile_servers = 1;
      net_params = Some { Net.default_params with drop_prob = cfg.drop_prob };
      seed = cfg.seed;
    }

let schedule_crash ens cfg =
  match cfg.crash_node with
  | None -> ()
  | Some v ->
      let crash, recover =
        match v with
        | Storage i -> ((fun () -> Ensemble.crash_storage ens i), fun () -> Ensemble.recover_storage ens i)
        | Dir i -> ((fun () -> Ensemble.crash_dir ens i), fun () -> Ensemble.recover_dir ens i)
        | Smallfile i ->
            ((fun () -> Ensemble.crash_smallfile ens i), fun () -> Ensemble.recover_smallfile ens i)
      in
      let eng = Ensemble.engine ens in
      (* crash/recover may park (dir-server WAL sync): run them as fibers *)
      Engine.schedule_at eng cfg.crash_at (fun () -> Engine.spawn eng crash);
      Engine.schedule_at eng (cfg.crash_at +. cfg.crash_for) (fun () -> Engine.spawn eng recover)

let collect ens clients proxies ~errors =
  let net = Ensemble.net ens in
  {
    ops = Array.fold_left (fun a c -> a + Client.ops_completed c) 0 clients;
    errors;
    retransmissions = Array.fold_left (fun a c -> a + Client.retransmissions c) 0 clients;
    stale_bounces = Array.fold_left (fun a p -> a + Proxy.stale_bounces p) 0 proxies;
    expired_pending = Array.fold_left (fun a p -> a + Proxy.expired_pending p) 0 proxies;
    pending_at_quiesce = Array.fold_left (fun a p -> a + Proxy.pending_size p) 0 proxies;
    packets_dropped = Net.packets_dropped net;
    fault_drops = Net.fault_drops net;
    elapsed = Engine.now (Ensemble.engine ens);
  }

let run_untar ?(cfg = default_config) () =
  let ens = ensemble cfg in
  let eng = Ensemble.engine ens in
  let pairs =
    Array.init cfg.procs (fun i ->
        Ensemble.add_client ens ~name:(Printf.sprintf "chaos%d" i))
  in
  let proxies = Array.map snd pairs in
  let clients =
    Array.mapi
      (fun i (host, _) ->
        Client.create host ~server:(Ensemble.virtual_addr ens) ~port:(1000 + i) ())
      pairs
  in
  schedule_crash ens cfg;
  let spec = Untar.scaled_spec cfg.untar_scale in
  (* Untar raises Failure on any operation that comes back wrong — its
     own oracle for lost work. (Client.errors is useless here: the
     benchmark's lookup-miss step returns NOENT by design.) *)
  let failed = ref 0 in
  Engine.spawn eng (fun () ->
      Fiber.join_all eng
        (Array.to_list
           (Array.mapi
              (fun i cl () ->
                try
                  ignore
                    (Untar.run cl ~root:Ensemble.root ~name:(Printf.sprintf "proc%d" i) spec)
                with Failure _ -> incr failed)
              clients)));
  Engine.run eng;
  collect ens clients proxies ~errors:!failed

let run_specsfs ?(cfg = default_config) () =
  let ens = ensemble cfg in
  let eng = Ensemble.engine ens in
  let pairs =
    Array.init cfg.procs (fun i ->
        Ensemble.add_client ens ~name:(Printf.sprintf "chaos%d" i))
  in
  let proxies = Array.map snd pairs in
  let clients =
    Array.mapi
      (fun i (host, _) ->
        Client.create host ~server:(Ensemble.virtual_addr ens) ~port:(1000 + i) ())
      pairs
  in
  schedule_crash ens cfg;
  let r =
    Specsfs.run eng ~clients ~root:Ensemble.root
      {
        Specsfs.default_config with
        offered_iops = 200.0;
        processes = cfg.procs;
        duration = 3.0;
        warmup = 0.5;
        bytes_per_iops = 20_000.0;
        seed = cfg.seed;
      }
  in
  collect ens clients proxies ~errors:r.Specsfs.errors

let report () =
  let clean = run_untar ~cfg:{ default_config with drop_prob = 0.0; crash_node = None } () in
  let lossy = run_untar ~cfg:{ default_config with crash_node = None } () in
  (* untar is pure name traffic, so its crash victim is a directory
     server; specsfs moves data, so it loses a storage node *)
  let crashy = run_untar ~cfg:{ default_config with crash_node = Some (Dir 0) } () in
  let sfs = run_specsfs () in
  let pct_i n = string_of_int n in
  let row label (r : result) =
    Report.row ~label
      ~paper:"0 lost"
      ~measured:
        (Printf.sprintf "%d ops, %d err, %d rexmit, %d pend" r.ops r.errors r.retransmissions
           r.pending_at_quiesce)
      ~note:
        (Printf.sprintf "%d drops (%d fault), %d expired, %d bounces" r.packets_dropped
           r.fault_drops r.expired_pending r.stale_bounces)
      ()
  in
  {
    Report.title = "Chaos: fault injection (loss + node crash), zero lost operations";
    preamble =
      [
        "the paper's end-to-end argument: the µproxy may drop state and packets;";
        "client RPC retransmission recovers. Each run must finish with zero";
        "client-visible errors and zero leaked pending records.";
        Printf.sprintf "clean run sanity: %s retransmissions (must be 0)"
          (pct_i clean.retransmissions);
      ];
    rows =
      [
        row "untar, no faults" clean;
        row (Printf.sprintf "untar, %.0f%% loss" (default_config.drop_prob *. 100.0)) lossy;
        row
          (Printf.sprintf "untar, %.0f%% loss + dir crash" (default_config.drop_prob *. 100.0))
          crashy;
        row "specsfs, loss + storage crash" sfs;
      ];
  }

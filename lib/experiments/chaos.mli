(** Fault-injection ("chaos") exhibit: the paper's end-to-end correctness
    argument, measured. Section 3.4 claims the µproxy "is free to discard
    its state and/or pending packets without compromising correctness" —
    so a Slice volume must survive sustained packet loss and a storage
    node fail-stopping mid-workload with {e zero} client-visible lost
    operations, recovering purely by client RPC retransmission.

    Each run drives a real workload (untar or SPECsfs) over a lossy LAN,
    optionally crashing and recovering one storage node mid-run, and
    returns the recovery counters the test suite asserts on. *)

type victim = Storage of int | Dir of int | Smallfile of int
(** Who fail-stops mid-run. Pick a victim the workload actually talks to
    (untar is pure name traffic — crash a [Dir]; specsfs moves data —
    crash a [Storage]). Never [Storage 0]: the block coordinator lives
    there, and its loss stalls commits for far longer. *)

type config = {
  seed : int;
  drop_prob : float;  (** iid loss probability on every link *)
  storage_nodes : int;
  untar_scale : float;  (** tree scale for {!run_untar} *)
  procs : int;  (** client processes (one host + µproxy each) *)
  crash_node : victim option;
  crash_at : float;  (** absolute simulated time of the crash *)
  crash_for : float;  (** seconds until recovery; keep below the client
                          retry budget (~11 s at default RPC settings) or
                          operations are lost *)
}

val default_config : config
(** 3 storage nodes, 2 % loss, storage node 1 crashed at t=1 s for 2 s. *)

type result = {
  ops : int;  (** client NFS operations completed *)
  errors : int;  (** lost operations: failed untar processes or
                     generator-reported errors — must be 0 *)
  retransmissions : int;  (** client RPC resends (the recovery mechanism) *)
  stale_bounces : int;  (** misdirected-request bounces re-routed *)
  expired_pending : int;  (** µproxy pending records reaped by the sweep *)
  pending_at_quiesce : int;  (** leaked µproxy records — must be 0 *)
  packets_dropped : int;  (** all loss (iid + faults + no-handler) *)
  fault_drops : int;  (** losses from the fault schedule alone *)
  elapsed : float;  (** simulated seconds to completion *)
}

val run_untar : ?cfg:config -> unit -> result
(** Name-intensive workload under faults.
    @raise Failure if any operation is lost (untar's own oracle). *)

val run_specsfs : ?cfg:config -> unit -> result
(** SPECsfs mix (reads/writes/commits) under faults; [errors] comes from
    the generator's own per-op accounting. *)

val report : unit -> Report.t
(** Clean baseline, loss-only, loss + crash, and SPECsfs runs. *)

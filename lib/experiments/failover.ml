(* Failover exhibit: dataless manager takeover under live load.

   A redundant ensemble (3 storage / 2 dir / 2 small-file servers, 8
   logical sites per class) runs a mixed workload continuously while the
   chaos schedule kills one manager of each class in turn: a directory
   server, a small-file server, then storage node 0 — taking the block
   coordinator with it. The lease/heartbeat detector declares each
   victim dead, waits out the largest lease it ever granted, and a
   hot standby replays the victim's journal/intention log from shared
   storage and claims its sites under a bumped fencing epoch. Each
   victim is then revived as a zombie and probed directly: every request
   bounces with SLICE_MISDIRECTED (counted at the server), and a mkdir
   sent to the zombie provably creates nothing. Finally the victims
   rejoin as empty peers.

   The exhibit reports MTTR per takeover (first missed renewal to
   service restored) and requests lost (post-run audit: every acked
   name and byte readable, every site owned by exactly one server) —
   the target is zero. Deterministic end to end: same seed,
   byte-identical JSON. *)

module Engine = Slice_sim.Engine
module Fiber = Slice_sim.Fiber
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Prng = Slice_util.Prng
module Stats = Slice_util.Stats
module Json = Slice_util.Json
module Metrics = Slice_util.Metrics
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Host = Slice_storage.Host
module Obsd = Slice_storage.Obsd
module Ctrl = Slice_storage.Ctrl
module Coordinator = Slice_storage.Coordinator
module Client = Slice_workload.Client
module Reconfig = Slice_reconfig.Reconfig
module Fo = Slice_failover.Failover
module Dirserver = Slice_dir.Dirserver
module Smallfile = Slice_smallfile.Smallfile
module Ensemble = Slice.Ensemble
module Table = Slice.Table
module Proxy = Slice.Proxy

let small_bytes = 4096
let chunk = 32768
let big_chunks = 4

type entry = { e_dir : Fh.t; e_name : string; e_fh : Fh.t }

type fileset = { fs_dirs : Fh.t array; fs_small : entry array; fs_big : entry array }

type phase = {
  ph_label : string;
  ph_ops : int;
  ph_ops_s : float;
  ph_lat : Stats.t;
  ph_errs : int;  (** client-visible NFS errors during the window *)
}

type zombie = {
  z_name : string;
  z_bounces : int;  (** fence bounces counted at the revived victim *)
  z_update_blocked : bool;  (** the mutation sent to the zombie left no trace *)
}

type audit = { aud_checked : int; aud_lost : int; aud_ownership_violations : int }

type takeover = {
  tk_class : string;
  tk_victim : int;
  tk_standby : int;
  tk_sites : int;
  tk_detect : float;
  tk_mttr : float;
}

type t = {
  phases : phase list;
  takeovers : takeover list;
  zombies : zombie list;
  audit : audit;
  fence_invalidations : int;  (** µproxy cache flushes on epoch bumps *)
  heartbeats : int;
  lease_duration : float;
  fo_metrics : Json.t;
}

let build_fileset cl ~root ~proc ~small ~big =
  let fail what st = failwith ("failover setup " ^ what ^ ": " ^ Nfs.status_name st) in
  let top =
    match Client.mkdir cl root (Printf.sprintf "fo%02d" proc) with
    | Ok (fh, _) -> fh
    | Error st -> fail "mkdir" st
  in
  let ndirs = max 2 (small / 24) in
  let dirs =
    Array.init ndirs (fun i ->
        if i = 0 then top
        else
          match Client.mkdir cl top (Printf.sprintf "d%03d" i) with
          | Ok (fh, _) -> fh
          | Error st -> fail "mkdir2" st)
  in
  let fs_small =
    Array.init small (fun i ->
        let dir = dirs.(i mod ndirs) in
        let name = Printf.sprintf "f%04d" i in
        match Client.create_file cl dir name with
        | Ok (fh, _) ->
            ignore (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic small_bytes) ());
            ignore (Client.commit cl fh);
            { e_dir = dir; e_name = name; e_fh = fh }
        | Error st -> fail "create" st)
  in
  let fs_big =
    Array.init big (fun i ->
        let name = Printf.sprintf "g%02d" i in
        match Client.create_file cl top name with
        | Ok (fh, _) ->
            for c = 0 to big_chunks - 1 do
              ignore
                (Client.write_at cl fh
                   ~off:(Int64.of_int (c * chunk))
                   ~data:(Nfs.Synthetic chunk) ())
            done;
            ignore (Client.commit cl fh);
            { e_dir = top; e_name = name; e_fh = fh }
        | Error st -> fail "create big" st)
  in
  { fs_dirs = dirs; fs_small; fs_big }

type op = O_lookup | O_getattr | O_readdir | O_sread | O_swrite | O_bread | O_bwrite | O_bcommit

let op_mix =
  [|
    (18.0, O_lookup);
    (12.0, O_getattr);
    (6.0, O_readdir);
    (20.0, O_sread);
    (14.0, O_swrite);
    (16.0, O_bread);
    (10.0, O_bwrite);
    (4.0, O_bcommit);
  |]

let pick_small prng fs =
  let n = Array.length fs.fs_small in
  let hot = max 1 (n / 5) in
  if Prng.float prng 1.0 < 0.8 then fs.fs_small.(Prng.int prng hot)
  else fs.fs_small.(Prng.int prng n)

let pick_big prng fs = fs.fs_big.(Prng.int prng (Array.length fs.fs_big))

(* chunks >= 2 sit above the small-file threshold: storage-class I/O *)
let big_off prng = Int64.of_int ((2 + Prng.int prng (big_chunks - 2)) * chunk)

let one_op cl prng fs =
  match Prng.weighted prng op_mix with
  | O_lookup ->
      let f = pick_small prng fs in
      Result.is_error (Client.lookup cl f.e_dir f.e_name)
  | O_getattr ->
      let f = pick_small prng fs in
      Result.is_error (Client.getattr cl f.e_fh)
  | O_readdir ->
      let d = fs.fs_dirs.(Prng.int prng (Array.length fs.fs_dirs)) in
      Result.is_error (Client.call cl (Nfs.Readdir (d, 0L, 24)))
  | O_sread ->
      let f = pick_small prng fs in
      Result.is_error (Client.read_at cl f.e_fh ~off:0L ~count:small_bytes)
  | O_swrite ->
      let f = pick_small prng fs in
      Result.is_error
        (Client.write_at cl f.e_fh ~off:0L ~data:(Nfs.Synthetic small_bytes) ())
  | O_bread ->
      let g = pick_big prng fs in
      Result.is_error (Client.read_at cl g.e_fh ~off:(big_off prng) ~count:chunk)
  | O_bwrite ->
      let g = pick_big prng fs in
      Result.is_error
        (Client.write_at cl g.e_fh ~off:(big_off prng) ~data:(Nfs.Synthetic chunk) ())
  | O_bcommit ->
      let g = pick_big prng fs in
      Result.is_error (Client.commit cl g.e_fh)

(* Post-run audit: the takeovers lost nothing — every acked name still
   resolves, every committed byte reads back, and every logical site of
   every class has exactly one owner, published by the routing table. *)
let run_audit ens cls (filesets : fileset array) =
  let checked = ref 0 and lost = ref 0 in
  Array.iteri
    (fun p fs ->
      let c = cls.(p) in
      Array.iter
        (fun f ->
          incr checked;
          (match Client.lookup c f.e_dir f.e_name with
          | Ok (fh, _) when Int64.equal fh.Fh.file_id f.e_fh.Fh.file_id -> ()
          | _ -> incr lost);
          incr checked;
          match Client.read_at c f.e_fh ~off:0L ~count:small_bytes with
          | Ok (d, _) when Nfs.wdata_length d = small_bytes -> ()
          | _ -> incr lost)
        fs.fs_small;
      Array.iter
        (fun g ->
          for ci = 0 to big_chunks - 1 do
            incr checked;
            match
              Client.read_at c g.e_fh ~off:(Int64.of_int (ci * chunk)) ~count:chunk
            with
            | Ok (d, _) when Nfs.wdata_length d = chunk -> ()
            | _ -> incr lost
          done)
        fs.fs_big)
    filesets;
  let viol = ref 0 in
  let check_class table owners addr_of n =
    for j = 0 to Table.nsites table - 1 do
      let os = List.filter (fun i -> List.mem j (owners i)) (List.init n Fun.id) in
      match os with
      | [ o ] -> if Table.lookup table j <> addr_of o then incr viol
      | _ -> incr viol
    done
  in
  let dirs = Ensemble.dirs ens in
  check_class (Ensemble.dir_table ens)
    (fun i -> Dirserver.owned_sites dirs.(i))
    (fun i -> Dirserver.addr dirs.(i))
    (Array.length dirs);
  (match Ensemble.smallfile_table ens with
  | None -> ()
  | Some tbl ->
      let sfs = Ensemble.smallfiles ens in
      check_class tbl
        (fun i -> Smallfile.owned_sites sfs.(i))
        (fun i -> Smallfile.addr sfs.(i))
        (Array.length sfs));
  (match Ensemble.storage_table ens with
  | None -> ()
  | Some tbl ->
      let sts = Ensemble.storage ens in
      check_class tbl
        (fun i -> Obsd.owned_sites sts.(i))
        (fun i -> Obsd.addr sts.(i))
        (Array.length sts));
  { aud_checked = !checked; aud_lost = !lost; aud_ownership_violations = !viol }

let compute ?(scale = 1.0) ?(seed = 42) () =
  let clients = 3 in
  let small = max 16 (int_of_float (48.0 *. scale)) in
  let big = max 2 (int_of_float (4.0 *. scale)) in
  let window = max 1.0 (1.2 *. scale) in
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        seed;
        storage_nodes = 3;
        dir_servers = 2;
        smallfile_servers = 2;
        mirror_new_files = false;
        dir_sites = 8;
        smallfile_sites = 8;
        storage_sites = 8;
      }
  in
  let eng = Ensemble.engine ens in
  let net = Ensemble.net ens in
  let rc = Reconfig.attach ?trace:(Ensemble.trace ens) ens in
  let fo = Fo.attach ens rc in
  let cls =
    Array.init clients (fun i ->
        let host, _proxy = Ensemble.add_client ens ~name:(Printf.sprintf "fo%d" i) in
        Client.create host ~server:(Ensemble.virtual_addr ens) ())
  in
  let nphases = 7 in
  let labels =
    [|
      "baseline (2 dir / 2 smallfile / 3 storage)";
      "dir 0 killed: lease expiry, takeover by peer";
      "dir 0 rejoined as empty peer";
      "smallfile 0 killed: takeover by peer";
      "smallfile 0 rejoined as empty peer";
      "storage 0 killed: coordinator takeover";
      "storage 0 recovered";
    |]
  in
  let lat = Array.init nphases (fun _ -> Stats.create ()) in
  let ops = Array.make nphases 0 in
  let errs = Array.make nphases 0 in
  let elapsed = Array.make nphases 0.0 in
  let bucket = ref (-1) in
  let running = ref true in
  let zombies = ref [] in
  let audit = ref { aud_checked = 0; aud_lost = 0; aud_ownership_violations = 0 } in
  let old_coord = Option.get (Ensemble.coordinator ens) in
  Engine.spawn eng (fun () ->
      let filesets = Array.make clients None in
      Fiber.join_all eng
        (List.init clients (fun p () ->
             filesets.(p) <-
               Some (build_fileset cls.(p) ~root:Fh.root ~proc:p ~small ~big)));
      let filesets = Array.map Option.get filesets in
      (* Probe a revived victim directly (no µproxy): the lease it lost
         fences every request, and the mutation leaves no trace. *)
      let probe_zombie name addr fences check_absent =
        let h = Host.create net ~name:("zprobe-" ^ name) () in
        let zc = Client.create h ~server:addr () in
        let before = fences () in
        let blocked =
          match Client.mkdir zc Fh.root ("zombie-" ^ name) with
          | Error _ -> true
          | Ok _ -> false
        in
        let blocked = blocked && check_absent () in
        zombies :=
          {
            z_name = name;
            z_bounces = fences () - before;
            z_update_blocked = blocked;
          }
          :: !zombies
      in
      let window_phase i =
        let t0 = Engine.now eng in
        bucket := i;
        Engine.sleep eng window;
        bucket := -1;
        elapsed.(i) <- Engine.now eng -. t0
      in
      let controller () =
        window_phase 0;
        (* --- directory manager --- *)
        Ensemble.crash_dir ens 0;
        window_phase 1;
        let d0 = (Ensemble.dirs ens).(0) in
        Ensemble.recover_dir ens 0;
        probe_zombie "dir" (Dirserver.addr d0)
          (fun () -> Dirserver.fence_bounces d0)
          (fun () ->
            Result.is_error (Client.lookup cls.(0) Fh.root "zombie-dir"));
        Fo.rejoin_dir fo 0;
        window_phase 2;
        (* --- small-file manager --- *)
        Ensemble.crash_smallfile ens 0;
        window_phase 3;
        let s0 = (Ensemble.smallfiles ens).(0) in
        Ensemble.recover_smallfile ens 0;
        probe_zombie "smallfile" (Smallfile.addr s0)
          (fun () -> Smallfile.fence_bounces s0)
          (fun () ->
            Result.is_error (Client.lookup cls.(0) Fh.root "zombie-smallfile"));
        Fo.rejoin_smallfile fo 0;
        window_phase 4;
        (* --- block coordinator (lives on storage node 0) --- *)
        Ensemble.crash_storage ens 0;
        window_phase 5;
        Ensemble.recover_storage ens 0;
        (* the deposed coordinator instance answers again — fenced *)
        let h = Host.create net ~name:"zprobe-coord" () in
        let rpc = Rpc.create net h.Host.addr ~port:1902 in
        let before = Coordinator.fence_bounces old_coord in
        let nacked =
          let xid = Rpc.fresh_xid rpc in
          match
            Rpc.call rpc ~timeout:0.5 ~retries:2
              ~dst:(Coordinator.addr old_coord)
              ~dport:(Coordinator.port old_coord)
              (Ctrl.encode_msg ~xid (Ctrl.Complete { op_id = 0L }))
          with
          | reply -> snd (Ctrl.decode_reply reply) = Ctrl.Nack
          | exception Rpc.Timeout -> false
        in
        zombies :=
          {
            z_name = "coordinator";
            z_bounces = Coordinator.fence_bounces old_coord - before;
            z_update_blocked = nacked;
          }
          :: !zombies;
        window_phase 6;
        running := false
      in
      let worker p w () =
        let prng = Prng.create (seed + 131 + (p * 7919) + (w * 977)) in
        while !running do
          let ph = !bucket in
          let s = Engine.now eng in
          let err = one_op cls.(p) prng filesets.(p) in
          if ph >= 0 then begin
            Stats.add lat.(ph) (Engine.now eng -. s);
            ops.(ph) <- ops.(ph) + 1;
            if err then errs.(ph) <- errs.(ph) + 1
          end
        done
      in
      Fiber.join_all eng
        (controller
        :: List.concat (List.init clients (fun p -> List.init 2 (fun w -> worker p w))));
      (* audit before stopping the detector: it needs live leases *)
      audit := run_audit ens cls filesets;
      Fo.stop fo);
  Engine.run eng;
  let phases =
    List.init nphases (fun i ->
        {
          ph_label = labels.(i);
          ph_ops = ops.(i);
          ph_ops_s =
            (if elapsed.(i) > 0.0 then float_of_int ops.(i) /. elapsed.(i) else 0.0);
          ph_lat = lat.(i);
          ph_errs = errs.(i);
        })
  in
  {
    phases;
    takeovers =
      List.map
        (fun (e : Fo.event) ->
          {
            tk_class = e.Fo.ev_class;
            tk_victim = e.Fo.ev_victim;
            tk_standby = e.Fo.ev_standby;
            tk_sites = e.Fo.ev_sites;
            tk_detect = e.Fo.ev_detect;
            tk_mttr = e.Fo.ev_mttr;
          })
        (Fo.events fo);
    zombies = List.rev !zombies;
    audit = !audit;
    fence_invalidations =
      List.fold_left
        (fun a p -> a + Proxy.fence_invalidations p)
        0
        (Ensemble.client_proxies ens);
    heartbeats = Fo.heartbeats fo;
    lease_duration = Fo.lease_duration fo;
    fo_metrics = Metrics.dump (Fo.metrics fo);
  }

let ms v = v *. 1e3

let report_of t =
  let audit_note =
    if t.audit.aud_lost = 0 && t.audit.aud_ownership_violations = 0 then
      Printf.sprintf "clean: %d checks, 0 lost, 0 ownership violations"
        t.audit.aud_checked
    else
      Printf.sprintf "FAILED: %d checks, %d lost, %d ownership violations"
        t.audit.aud_checked t.audit.aud_lost t.audit.aud_ownership_violations
  in
  let zombie_note z =
    Printf.sprintf "%s zombie: %d fence bounces, update %s" z.z_name z.z_bounces
      (if z.z_update_blocked then "blocked" else "NOT BLOCKED")
  in
  {
    Report.title = "Failover: hot-standby takeover with fencing epochs";
    preamble =
      [
        "One manager of each class is killed under live load; the lease";
        "detector declares it dead, waits out the largest granted lease, and";
        "a standby replays its journal from shared storage and claims its";
        Printf.sprintf
          "sites under a bumped fencing epoch (lease %.0f ms, %d heartbeats)."
          (ms t.lease_duration) t.heartbeats;
        String.concat "; " (List.map zombie_note t.zombies) ^ ".";
        "Post-run audit: " ^ audit_note ^ ".";
      ]
      @ List.map
          (fun tk ->
            Printf.sprintf
              "takeover %s: server %d -> %d, %d sites, detect %.0f ms, MTTR %.0f ms"
              tk.tk_class tk.tk_victim tk.tk_standby tk.tk_sites (ms tk.tk_detect)
              (ms tk.tk_mttr))
          t.takeovers;
    rows =
      List.map
        (fun p ->
          Report.row ~label:p.ph_label ~paper:"-"
            ~measured:(Printf.sprintf "%.0f ops/s" p.ph_ops_s)
            ~note:
              (Printf.sprintf "p95 %.2f ms; %d ops; %d errors"
                 (ms (Stats.percentile p.ph_lat 95.0))
                 p.ph_ops p.ph_errs)
            ())
        t.phases;
  }

(* Deterministic artifact: field names sorted at every level, phases and
   takeovers in run order. *)
let json_of t =
  let num v = Json.Num v in
  Json.Obj
    [
      ( "audit",
        Json.Obj
          [
            ("checked", num (float_of_int t.audit.aud_checked));
            ("lost", num (float_of_int t.audit.aud_lost));
            ( "ownership_violations",
              num (float_of_int t.audit.aud_ownership_violations) );
          ] );
      ("failover_metrics", t.fo_metrics);
      ("fence_invalidations", num (float_of_int t.fence_invalidations));
      ("heartbeats", num (float_of_int t.heartbeats));
      ("lease_duration_ms", num (ms t.lease_duration));
      ( "phases",
        Json.Arr
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("errors", num (float_of_int p.ph_errs));
                   ("label", Json.Str p.ph_label);
                   ( "lat_ms",
                     Json.Obj
                       [
                         ("mean_ms", num (ms (Stats.mean p.ph_lat)));
                         ("n", num (float_of_int (Stats.count p.ph_lat)));
                         ("p50_ms", num (ms (Stats.percentile p.ph_lat 50.0)));
                         ("p95_ms", num (ms (Stats.percentile p.ph_lat 95.0)));
                       ] );
                   ("ops", num (float_of_int p.ph_ops));
                   ("ops_s", num p.ph_ops_s);
                 ])
             t.phases) );
      ("requests_lost", num (float_of_int t.audit.aud_lost));
      ( "takeovers",
        Json.Arr
          (List.map
             (fun tk ->
               Json.Obj
                 [
                   ("class", Json.Str tk.tk_class);
                   ("detect_ms", num (ms tk.tk_detect));
                   ("mttr_ms", num (ms tk.tk_mttr));
                   ("sites", num (float_of_int tk.tk_sites));
                   ("standby", num (float_of_int tk.tk_standby));
                   ("victim", num (float_of_int tk.tk_victim));
                 ])
             t.takeovers) );
      ( "zombies",
        Json.Arr
          (List.map
             (fun z ->
               Json.Obj
                 [
                   ("fence_bounces", num (float_of_int z.z_bounces));
                   ("name", Json.Str z.z_name);
                   ("update_blocked", Json.Bool z.z_update_blocked);
                 ])
             t.zombies) );
    ]

let report ?scale () = report_of (compute ?scale ())

(* Metadata-offload exhibit: how many directory-server requests does the
   µproxy's metadata fast path absorb on the SPECsfs op mix, and what does
   it do to latency?

   The measured loop is separate from file-set construction (setup is all
   creates and writes — counting it would dilute the steady-state ratio
   the exhibit is about). Each point runs the same deterministic op
   sequence against a fresh ensemble, differing only in the cache knobs;
   "off" is TTL = 0. *)

module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Prng = Slice_util.Prng
module Stats = Slice_util.Stats
module Client = Slice_workload.Client

type point = {
  label : string;
  ttl : float;
  capacity : int;
  ops : int;  (** measured operations completed *)
  dir_ops : int;  (** directory-server requests during the measured loop *)
  delivered_ops_s : float;
  avg_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  meta : Slice.Proxy.meta_cache_stats;
}

(* SFS97 NFS V3 op mix (as in Specsfs; readdirplus folded into readdir). *)
type op =
  | O_lookup
  | O_read
  | O_write
  | O_getattr
  | O_setattr
  | O_readlink
  | O_readdir
  | O_create_remove
  | O_access
  | O_commit
  | O_fsstat

let op_mix =
  [|
    (27.0, O_lookup);
    (18.0, O_read);
    (9.0, O_write);
    (11.0, O_getattr);
    (1.0, O_setattr);
    (7.0, O_readlink);
    (11.0, O_readdir);
    (2.0, O_create_remove);
    (7.0, O_access);
    (5.0, O_commit);
    (1.0, O_fsstat);
  |]

type entry = { e_fh : Fh.t; e_dir : Fh.t; e_name : string }

type fileset = {
  fs_dirs : Fh.t array;
  fs_files : entry array;
  fs_links : entry array;
}

let file_bytes = 4096

let build_fileset cl ~root ~proc ~files =
  let dir_count = max 2 (files / 24) in
  let top =
    match Client.mkdir cl root (Printf.sprintf "off%02d" proc) with
    | Ok (fh, _) -> fh
    | Error st -> failwith ("offload setup mkdir: " ^ Nfs.status_name st)
  in
  let dirs =
    Array.init dir_count (fun i ->
        if i = 0 then top
        else
          match Client.mkdir cl top (Printf.sprintf "d%03d" i) with
          | Ok (fh, _) -> fh
          | Error st -> failwith ("offload setup mkdir2: " ^ Nfs.status_name st))
  in
  let fs_files =
    Array.init files (fun i ->
        let dir = dirs.(i mod dir_count) in
        let name = Printf.sprintf "f%04d" i in
        match Client.create_file cl dir name with
        | Ok (fh, _) ->
            ignore
              (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic file_bytes) ());
            ignore (Client.commit cl fh);
            { e_fh = fh; e_dir = dir; e_name = name }
        | Error st -> failwith ("offload setup create: " ^ Nfs.status_name st))
  in
  let fs_links =
    Array.init (max 1 (files / 20)) (fun i ->
        let dir = dirs.(i mod dir_count) in
        let name = Printf.sprintf "l%04d" i in
        match Client.symlink cl dir name ~target:"f0000" with
        | Ok (fh, _) -> { e_fh = fh; e_dir = dir; e_name = name }
        | Error st -> failwith ("offload setup symlink: " ^ Nfs.status_name st))
  in
  { fs_dirs = dirs; fs_files; fs_links }

(* 80/20 hot-set skew, as in the SPECsfs generator. *)
let pick prng (fs : fileset) =
  let n = Array.length fs.fs_files in
  let hot = max 1 (n / 5) in
  if Prng.float prng 1.0 < 0.8 then fs.fs_files.(Prng.int prng hot)
  else fs.fs_files.(Prng.int prng n)

let one_op cl prng (fs : fileset) ~fresh =
  match Prng.weighted prng op_mix with
  | O_lookup ->
      let f = pick prng fs in
      ignore (Client.lookup cl f.e_dir f.e_name)
  | O_read ->
      let f = pick prng fs in
      ignore (Client.read_at cl f.e_fh ~off:0L ~count:file_bytes)
  | O_write ->
      let f = pick prng fs in
      ignore (Client.write_at cl f.e_fh ~off:0L ~data:(Nfs.Synthetic file_bytes) ())
  | O_getattr ->
      let f = pick prng fs in
      ignore (Client.getattr cl f.e_fh)
  | O_setattr ->
      let f = pick prng fs in
      ignore (Client.setattr cl f.e_fh (Nfs.sattr_times ~mtime:0.0 ()))
  | O_readlink ->
      let l = fs.fs_links.(Prng.int prng (Array.length fs.fs_links)) in
      ignore (Client.call cl (Nfs.Readlink l.e_fh))
  | O_readdir ->
      let d = fs.fs_dirs.(Prng.int prng (Array.length fs.fs_dirs)) in
      ignore (Client.call cl (Nfs.Readdir (d, 0L, 32)))
  | O_create_remove ->
      incr fresh;
      let d = fs.fs_dirs.(Prng.int prng (Array.length fs.fs_dirs)) in
      let name = Printf.sprintf "tmp%06d" !fresh in
      (match Client.create_file cl d name with
      | Ok _ -> ignore (Client.remove cl d name)
      | Error _ -> ())
  | O_access ->
      let f = pick prng fs in
      ignore (Client.access cl f.e_fh)
  | O_commit ->
      let f = pick prng fs in
      ignore (Client.commit cl f.e_fh)
  | O_fsstat ->
      let f = pick prng fs in
      ignore (Client.call cl (Nfs.Fsstat f.e_fh))

let run_point ~label ~ttl ~capacity ~clients ~files_per_proc ~ops_per_proc ~seed =
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        seed;
        storage_nodes = 4;
        dir_servers = 2;
        smallfile_servers = 2;
        proxy_params =
          { Slice.Params.default with meta_cache_ttl = ttl; name_cache_capacity = capacity };
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let cls =
    Array.init clients (fun i ->
        let host, _proxy = Slice.Ensemble.add_client ens ~name:(Printf.sprintf "sfs%d" i) in
        Client.create host ~server:(Slice.Ensemble.virtual_addr ens) ())
  in
  let root = Slice_nfs.Fh.root in
  let lat = Stats.create () in
  let dir_ops = ref 0 in
  let delivered = ref 0.0 in
  let measured = ref 0 in
  Engine.spawn eng (fun () ->
      (* setup: each process builds its own file set (all dir-server
         traffic here is excluded from the measured window) *)
      let filesets = Array.make clients None in
      Slice_sim.Fiber.join_all eng
        (List.init clients (fun p () ->
             filesets.(p) <- Some (build_fileset cls.(p) ~root ~proc:p ~files:files_per_proc)));
      let filesets = Array.map Option.get filesets in
      let dir0 = Slice.Ensemble.dir_ops_served ens in
      let t0 = Engine.now eng in
      (* measured loop: closed-loop SFS97-mix ops, two workers per client *)
      Slice_sim.Fiber.join_all eng
        (List.concat
           (List.init clients (fun p ->
                List.init 2 (fun w ->
                    fun () ->
                      let prng = Prng.create (seed + 97 + (p * 7919) + (w * 131)) in
                      let fresh = ref (((p * 2) + w) * 100_000) in
                      for _ = 1 to ops_per_proc / 2 do
                        let s = Engine.now eng in
                        one_op cls.(p) prng filesets.(p) ~fresh;
                        Stats.add lat (Engine.now eng -. s);
                        incr measured
                      done))));
      let elapsed = Engine.now eng -. t0 in
      dir_ops := Slice.Ensemble.dir_ops_served ens - dir0;
      delivered := (if elapsed > 0.0 then float_of_int !measured /. elapsed else 0.0));
  Engine.run eng;
  {
    label;
    ttl;
    capacity;
    ops = !measured;
    dir_ops = !dir_ops;
    delivered_ops_s = !delivered;
    avg_ms = Stats.mean lat *. 1e3;
    p50_ms = Stats.percentile lat 50.0 *. 1e3;
    p95_ms = Stats.percentile lat 95.0 *. 1e3;
    p99_ms = Stats.percentile lat 99.0 *. 1e3;
    meta = Slice.Ensemble.meta_cache_totals ens;
  }

(* Sweep: cache off, default knobs, and the TTL x capacity corners that
   show where the offload comes from (lease length) and what bounds it
   (entry pressure). *)
let compute ?(scale = 1.0) ?(sweep = true) () =
  let clients = 4 in
  let files_per_proc = max 24 (int_of_float (120.0 *. scale)) in
  let ops_per_proc = max 100 (int_of_float (1000.0 *. scale)) in
  let point ~label ~ttl ~capacity =
    run_point ~label ~ttl ~capacity ~clients ~files_per_proc ~ops_per_proc ~seed:42
  in
  let core =
    [
      point ~label:"cache off (TTL=0)" ~ttl:0.0 ~capacity:4096;
      point ~label:"default (TTL=2s, 4096 entries)" ~ttl:2.0 ~capacity:4096;
    ]
  in
  if not sweep then core
  else
    core
    @ [
        point ~label:"short lease (TTL=0.5s)" ~ttl:0.5 ~capacity:4096;
        point ~label:"long lease (TTL=8s)" ~ttl:8.0 ~capacity:4096;
        point ~label:"tiny cache (64 entries)" ~ttl:2.0 ~capacity:64;
      ]

let dir_reduction ~off ~on =
  if off.dir_ops = 0 then 0.0
  else 100.0 *. (1.0 -. (float_of_int on.dir_ops /. float_of_int off.dir_ops))

let report_of points =
  let off = List.hd points in
  let per_kop p = 1000.0 *. float_of_int p.dir_ops /. float_of_int (max 1 p.ops) in
  {
    Report.title = "Metadata offload: directory-server requests absorbed by the µproxy";
    preamble =
      [
        "SPECsfs97 op mix, 80/20 hot set, 4 clients x 2 workers, closed loop.";
        "dir req/kop = directory-server requests per 1000 client ops during the";
        "measured window (file-set setup excluded). Reduction is vs. cache off.";
      ];
    rows =
      List.map
        (fun p ->
          Report.row ~label:p.label
            ~paper:"-"
            ~measured:(Printf.sprintf "%.0f dir req/kop" (per_kop p))
            ~note:
              (Printf.sprintf "-%.0f%% dir reqs; %.0f ops/s; p95 %.2f ms; hits %d+%d neg"
                 (dir_reduction ~off ~on:p)
                 p.delivered_ops_s p.p95_ms p.meta.Slice.Proxy.hits
                 p.meta.Slice.Proxy.negative_hits)
            ())
        points;
  }

let report ?scale () = report_of (compute ?scale ())


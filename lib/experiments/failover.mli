(** Failover exhibit: hot-standby takeover with fencing epochs under
    live load. The chaos schedule kills one manager of each class
    (directory, small-file, block coordinator); the lease detector
    deposes it, a standby replays its state from shared storage and
    claims its sites under a bumped fencing epoch, and the revived
    zombie is probed to show it bounces everything. Reports per-phase
    throughput/latency, per-takeover detection latency and MTTR, and a
    post-run audit proving zero requests lost. *)

type phase = {
  ph_label : string;
  ph_ops : int;
  ph_ops_s : float;
  ph_lat : Slice_util.Stats.t;
  ph_errs : int;  (** client-visible NFS errors during the window *)
}

type zombie = {
  z_name : string;
  z_bounces : int;  (** fence bounces counted at the revived victim *)
  z_update_blocked : bool;  (** the mutation sent to the zombie left no trace *)
}

type audit = { aud_checked : int; aud_lost : int; aud_ownership_violations : int }

type takeover = {
  tk_class : string;
  tk_victim : int;
  tk_standby : int;
  tk_sites : int;
  tk_detect : float;  (** first missed renewal to declaration, seconds *)
  tk_mttr : float;  (** first missed renewal to service restored, seconds *)
}

type t = {
  phases : phase list;
  takeovers : takeover list;
  zombies : zombie list;
  audit : audit;
  fence_invalidations : int;  (** µproxy cache flushes on epoch bumps *)
  heartbeats : int;
  lease_duration : float;
  fo_metrics : Slice_util.Json.t;
}

val compute : ?scale:float -> ?seed:int -> unit -> t
(** Run the exhibit. Deterministic: same [scale] and [seed], same
    result, byte-identical {!json_of} output. *)

val report_of : t -> Report.t
val json_of : t -> Slice_util.Json.t

val report : ?scale:float -> unit -> Report.t

(** Request-tracing exhibit: replay the SPECsfs-style mix with span
    recording on and break per-op-class latency down by hop (proxy /
    network / server / wal / disk / rpc, plus a "total" row per class).
    Deterministic: two same-seed runs produce byte-identical JSON. *)

type t = {
  rows : (string * string * Slice_util.Stats.t) list;
      (** (op, hop, self-time distribution), sorted by op then hop *)
  spans : int;
  dropped : int;
  ops : int;  (** measured-mix operations completed *)
  metrics : Slice_util.Json.t;  (** unified-registry dump at end of run *)
  trace : Slice_util.Json.t;  (** full span dump *)
}

val compute : ?scale:float -> ?seed:int -> unit -> t
val report_of : t -> Report.t
val json_of : t -> Slice_util.Json.t
(** The [trace-report.json] artifact: hop rows, registry dump and the
    full span dump, every object's fields in sorted order. *)

val report : ?scale:float -> unit -> Report.t

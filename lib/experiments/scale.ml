(* Scale-out exhibit: online reconfiguration under live load.

   A small ensemble (2 storage / 1 dir / 1 small-file server, 8 logical
   sites per class) runs a SPECsfs-flavoured mix continuously while the
   control plane grows each class by one server, rebalancing logical
   sites onto the newcomers with the full drain/copy/commit machinery.
   Four measurement windows — baseline, then one after each addition —
   show delivered throughput and per-class latency; ops issued while a
   migration is in flight are counted separately (service never stops).
   A post-run audit then proves no update was lost or duplicated: every
   created name still resolves, every byte written reads back at full
   length, and every logical site is owned by exactly one server whose
   address the routing table publishes.

   Deterministic end to end: same seed, byte-identical JSON. *)

module Engine = Slice_sim.Engine
module Fiber = Slice_sim.Fiber
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Prng = Slice_util.Prng
module Stats = Slice_util.Stats
module Json = Slice_util.Json
module Metrics = Slice_util.Metrics
module Client = Slice_workload.Client
module Reconfig = Slice_reconfig.Reconfig
module Plan = Slice_reconfig.Plan
module Dirserver = Slice_dir.Dirserver
module Smallfile = Slice_smallfile.Smallfile
module Obsd = Slice_storage.Obsd
module Ensemble = Slice.Ensemble
module Table = Slice.Table
module Proxy = Slice.Proxy

let small_bytes = 4096
let chunk = 32768 (* one stripe unit *)

let big_chunks = 8
(* 256 KB files; chunks >= 2 sit above the small-file threshold, so I/O
   there is storage-class *)

let classes = [| "name"; "smallfile"; "storage" |]

type entry = { e_dir : Fh.t; e_name : string; e_fh : Fh.t }

type fileset = {
  fs_dirs : Fh.t array;
  fs_small : entry array;
  fs_big : entry array;
}

type phase = {
  ph_label : string;
  ph_ops : int;
  ph_ops_s : float;
  ph_lat : Stats.t array;  (** per request class: name, smallfile, storage *)
  ph_stale : int;  (** µproxy bounce-refreshes during the window *)
  ph_drain : int;  (** donor drain bounces during the window *)
}

type audit = {
  aud_checked : int;
  aud_lost : int;
  aud_ownership_violations : int;
}

type t = {
  phases : phase list;
  trans_ops : int;  (** ops completed while a migration was in flight *)
  migrations : int;
  sites_moved : int;
  aborted : int;
  bytes_copied : int64;
  drain_bounces : int;
  audit : audit;
  rc_metrics : Json.t;  (** reconfig registry dump at end of run *)
}

let build_fileset cl ~root ~proc ~small ~big =
  let fail what st = failwith ("scale setup " ^ what ^ ": " ^ Nfs.status_name st) in
  let top =
    match Client.mkdir cl root (Printf.sprintf "sc%02d" proc) with
    | Ok (fh, _) -> fh
    | Error st -> fail "mkdir" st
  in
  let ndirs = max 2 (small / 24) in
  let dirs =
    Array.init ndirs (fun i ->
        if i = 0 then top
        else
          match Client.mkdir cl top (Printf.sprintf "d%03d" i) with
          | Ok (fh, _) -> fh
          | Error st -> fail "mkdir2" st)
  in
  let fs_small =
    Array.init small (fun i ->
        let dir = dirs.(i mod ndirs) in
        let name = Printf.sprintf "f%04d" i in
        match Client.create_file cl dir name with
        | Ok (fh, _) ->
            ignore
              (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic small_bytes) ());
            ignore (Client.commit cl fh);
            { e_dir = dir; e_name = name; e_fh = fh }
        | Error st -> fail "create" st)
  in
  let fs_big =
    Array.init big (fun i ->
        let name = Printf.sprintf "g%02d" i in
        match Client.create_file cl top name with
        | Ok (fh, _) ->
            for c = 0 to big_chunks - 1 do
              ignore
                (Client.write_at cl fh
                   ~off:(Int64.of_int (c * chunk))
                   ~data:(Nfs.Synthetic chunk) ())
            done;
            ignore (Client.commit cl fh);
            { e_dir = top; e_name = name; e_fh = fh }
        | Error st -> fail "create big" st)
  in
  { fs_dirs = dirs; fs_small; fs_big }

(* Mix over the three request classes: enough weight on each that every
   server addition relieves a loaded class. *)
type op =
  | O_lookup
  | O_getattr
  | O_access
  | O_readdir
  | O_sread
  | O_swrite
  | O_bread
  | O_bwrite
  | O_bcommit

let op_mix =
  [|
    (15.0, O_lookup);
    (10.0, O_getattr);
    (7.0, O_access);
    (8.0, O_readdir);
    (18.0, O_sread);
    (12.0, O_swrite);
    (16.0, O_bread);
    (10.0, O_bwrite);
    (4.0, O_bcommit);
  |]

(* 80/20 hot-set skew over the small files, as in the SPECsfs generator. *)
let pick_small prng fs =
  let n = Array.length fs.fs_small in
  let hot = max 1 (n / 5) in
  if Prng.float prng 1.0 < 0.8 then fs.fs_small.(Prng.int prng hot)
  else fs.fs_small.(Prng.int prng n)

let pick_big prng fs = fs.fs_big.(Prng.int prng (Array.length fs.fs_big))

(* big-file offsets stay at chunks >= 2: above the threshold, so the
   request is storage-class by construction *)
let big_off prng = Int64.of_int ((2 + Prng.int prng (big_chunks - 2)) * chunk)

(* Issue one op; returns the class index (0 name, 1 smallfile, 2 storage). *)
let one_op cl prng fs =
  match Prng.weighted prng op_mix with
  | O_lookup ->
      let f = pick_small prng fs in
      ignore (Client.lookup cl f.e_dir f.e_name);
      0
  | O_getattr ->
      let f = pick_small prng fs in
      ignore (Client.getattr cl f.e_fh);
      0
  | O_access ->
      let f = pick_small prng fs in
      ignore (Client.access cl f.e_fh);
      0
  | O_readdir ->
      let d = fs.fs_dirs.(Prng.int prng (Array.length fs.fs_dirs)) in
      ignore (Client.call cl (Nfs.Readdir (d, 0L, 24)));
      0
  | O_sread ->
      let f = pick_small prng fs in
      ignore (Client.read_at cl f.e_fh ~off:0L ~count:small_bytes);
      1
  | O_swrite ->
      let f = pick_small prng fs in
      ignore (Client.write_at cl f.e_fh ~off:0L ~data:(Nfs.Synthetic small_bytes) ());
      1
  | O_bread ->
      let g = pick_big prng fs in
      ignore (Client.read_at cl g.e_fh ~off:(big_off prng) ~count:chunk);
      2
  | O_bwrite ->
      let g = pick_big prng fs in
      ignore
        (Client.write_at cl g.e_fh ~off:(big_off prng) ~data:(Nfs.Synthetic chunk) ());
      2
  | O_bcommit ->
      let g = pick_big prng fs in
      ignore (Client.commit cl g.e_fh);
      2

(* Post-run audit: all data and names survive the reconfigurations, and
   the exactly-one-owner invariant holds for every logical site. *)
let run_audit ens cls (filesets : fileset array) =
  let checked = ref 0 and lost = ref 0 in
  Array.iteri
    (fun p fs ->
      let c = cls.(p) in
      Array.iter
        (fun f ->
          incr checked;
          (match Client.lookup c f.e_dir f.e_name with
          | Ok (fh, _) when Int64.equal fh.Fh.file_id f.e_fh.Fh.file_id -> ()
          | _ -> incr lost);
          incr checked;
          match Client.read_at c f.e_fh ~off:0L ~count:small_bytes with
          | Ok (d, _) when Nfs.wdata_length d = small_bytes -> ()
          | _ -> incr lost)
        fs.fs_small;
      Array.iter
        (fun g ->
          for ci = 0 to big_chunks - 1 do
            incr checked;
            match
              Client.read_at c g.e_fh ~off:(Int64.of_int (ci * chunk)) ~count:chunk
            with
            | Ok (d, _) when Nfs.wdata_length d = chunk -> ()
            | _ -> incr lost
          done)
        fs.fs_big)
    filesets;
  let viol = ref 0 in
  let check_class table owners addr_of n =
    for j = 0 to Table.nsites table - 1 do
      let os = List.filter (fun i -> List.mem j (owners i)) (List.init n Fun.id) in
      match os with
      | [ o ] -> if Table.lookup table j <> addr_of o then incr viol
      | _ -> incr viol
    done
  in
  let dirs = Ensemble.dirs ens in
  check_class (Ensemble.dir_table ens)
    (fun i -> Dirserver.owned_sites dirs.(i))
    (fun i -> Dirserver.addr dirs.(i))
    (Array.length dirs);
  (match Ensemble.smallfile_table ens with
  | None -> ()
  | Some tbl ->
      let sfs = Ensemble.smallfiles ens in
      check_class tbl
        (fun i -> Smallfile.owned_sites sfs.(i))
        (fun i -> Smallfile.addr sfs.(i))
        (Array.length sfs));
  (match Ensemble.storage_table ens with
  | None -> ()
  | Some tbl ->
      let sts = Ensemble.storage ens in
      check_class tbl
        (fun i -> Obsd.owned_sites sts.(i))
        (fun i -> Obsd.addr sts.(i))
        (Array.length sts));
  {
    aud_checked = !checked;
    aud_lost = !lost;
    aud_ownership_violations = !viol;
  }

let compute ?(scale = 1.0) ?(seed = 42) () =
  let clients = 4 in
  let small = max 16 (int_of_float (64.0 *. scale)) in
  let big = max 2 (int_of_float (6.0 *. scale)) in
  let window = max 0.8 (4.0 *. scale) in
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        seed;
        storage_nodes = 2;
        dir_servers = 1;
        smallfile_servers = 1;
        mirror_new_files = false;
        dir_sites = 8;
        smallfile_sites = 8;
        storage_sites = 8;
      }
  in
  let eng = Ensemble.engine ens in
  let rc = Reconfig.attach ?trace:(Ensemble.trace ens) ens in
  let cls =
    Array.init clients (fun i ->
        let host, _proxy =
          Ensemble.add_client ens ~name:(Printf.sprintf "sc%d" i)
        in
        Client.create host ~server:(Ensemble.virtual_addr ens) ())
  in
  let nphases = 4 in
  let plans =
    [|
      None;
      Some (Plan.Add_server Plan.Dir);
      Some (Plan.Add_server Plan.Storage);
      Some (Plan.Add_server Plan.Smallfile);
    |]
  in
  let labels =
    [|
      "baseline (1 dir / 2 storage / 1 smallfile)";
      "+1 directory server";
      "+1 storage node";
      "+1 small-file server";
    |]
  in
  let lat = Array.init nphases (fun _ -> Array.init 3 (fun _ -> Stats.create ())) in
  let ops = Array.make nphases 0 in
  let elapsed = Array.make nphases 0.0 in
  let stale = Array.make nphases 0 in
  let drain = Array.make nphases 0 in
  let bucket = ref (-1) in
  let running = ref true in
  let trans = ref 0 in
  let stale_now () =
    List.fold_left (fun a p -> a + Proxy.stale_bounces p) 0 (Ensemble.client_proxies ens)
  in
  let audit = ref { aud_checked = 0; aud_lost = 0; aud_ownership_violations = 0 } in
  Engine.spawn eng (fun () ->
      let filesets = Array.make clients None in
      Fiber.join_all eng
        (List.init clients (fun p () ->
             filesets.(p) <-
               Some (build_fileset cls.(p) ~root:Fh.root ~proc:p ~small ~big)));
      let filesets = Array.map Option.get filesets in
      let controller () =
        for i = 0 to nphases - 1 do
          (match plans.(i) with
          | None -> ()
          | Some pl -> Reconfig.execute rc pl);
          let s0 = stale_now () and d0 = Reconfig.drain_bounces rc in
          let t0 = Engine.now eng in
          bucket := i;
          Engine.sleep eng window;
          bucket := -1;
          elapsed.(i) <- Engine.now eng -. t0;
          stale.(i) <- stale_now () - s0;
          drain.(i) <- Reconfig.drain_bounces rc - d0
        done;
        running := false
      in
      let worker p w () =
        let prng = Prng.create (seed + 131 + (p * 7919) + (w * 977)) in
        while !running do
          let ph = !bucket in
          let s = Engine.now eng in
          let ci = one_op cls.(p) prng filesets.(p) in
          if ph >= 0 then begin
            Stats.add lat.(ph).(ci) (Engine.now eng -. s);
            ops.(ph) <- ops.(ph) + 1
          end
          else incr trans
        done
      in
      Fiber.join_all eng
        (controller
        :: List.concat
             (List.init clients (fun p -> List.init 2 (fun w -> worker p w))));
      audit := run_audit ens cls filesets);
  Engine.run eng;
  let phases =
    List.init nphases (fun i ->
        {
          ph_label = labels.(i);
          ph_ops = ops.(i);
          ph_ops_s =
            (if elapsed.(i) > 0.0 then float_of_int ops.(i) /. elapsed.(i)
             else 0.0);
          ph_lat = lat.(i);
          ph_stale = stale.(i);
          ph_drain = drain.(i);
        })
  in
  {
    phases;
    trans_ops = !trans;
    migrations = Reconfig.migrations rc;
    sites_moved = Reconfig.sites_moved rc;
    aborted = Reconfig.aborted rc;
    bytes_copied = Reconfig.bytes_copied rc;
    drain_bounces = Reconfig.drain_bounces rc;
    audit = !audit;
    rc_metrics = Metrics.dump (Reconfig.metrics rc);
  }

let ms v = v *. 1e3

let report_of t =
  let audit_note =
    if t.audit.aud_lost = 0 && t.audit.aud_ownership_violations = 0 then
      Printf.sprintf "clean: %d checks, 0 lost, 0 ownership violations"
        t.audit.aud_checked
    else
      Printf.sprintf "FAILED: %d checks, %d lost, %d ownership violations"
        t.audit.aud_checked t.audit.aud_lost t.audit.aud_ownership_violations
  in
  {
    Report.title = "Scale-out: online reconfiguration under live SPECsfs-style load";
    preamble =
      [
        "Four windows: baseline, then one after each server addition. Sites";
        "migrate with drain/copy/commit while the mix keeps running; µproxies";
        "chase the moved sites via SLICE_MISDIRECTED bounces. p95 latency is";
        "per request class (name / smallfile / storage), in ms.";
        Printf.sprintf
          "%d migrations moved %d sites (%Ld bytes, %d aborted); %d ops completed"
          t.migrations t.sites_moved t.bytes_copied t.aborted t.trans_ops;
        "while a migration was in flight. Post-run audit: " ^ audit_note ^ ".";
      ];
    rows =
      List.map
        (fun p ->
          Report.row ~label:p.ph_label ~paper:"-"
            ~measured:(Printf.sprintf "%.0f ops/s" p.ph_ops_s)
            ~note:
              (Printf.sprintf
                 "p95 name %.2f / sf %.2f / st %.2f; %d ops; %d stale, %d drain bounces"
                 (ms (Stats.percentile p.ph_lat.(0) 95.0))
                 (ms (Stats.percentile p.ph_lat.(1) 95.0))
                 (ms (Stats.percentile p.ph_lat.(2) 95.0))
                 p.ph_ops p.ph_stale p.ph_drain)
            ())
        t.phases;
  }

(* Deterministic artifact: field names sorted at every level, phases in
   run order, per-class latency keyed by class name. *)
let json_of t =
  let num v = Json.Num v in
  let lat_json s =
    Json.Obj
      [
        ("mean_ms", num (ms (Stats.mean s)));
        ("n", num (float_of_int (Stats.count s)));
        ("p50_ms", num (ms (Stats.percentile s 50.0)));
        ("p95_ms", num (ms (Stats.percentile s 95.0)));
      ]
  in
  Json.Obj
    [
      ( "audit",
        Json.Obj
          [
            ("checked", num (float_of_int t.audit.aud_checked));
            ("lost", num (float_of_int t.audit.aud_lost));
            ( "ownership_violations",
              num (float_of_int t.audit.aud_ownership_violations) );
          ] );
      ("bytes_copied", num (Int64.to_float t.bytes_copied));
      ("drain_bounces", num (float_of_int t.drain_bounces));
      ("migrations", num (float_of_int t.migrations));
      ("migrations_aborted", num (float_of_int t.aborted));
      ("ops_during_migration", num (float_of_int t.trans_ops));
      ( "phases",
        Json.Arr
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("drain_bounces", num (float_of_int p.ph_drain));
                   ("label", Json.Str p.ph_label);
                   ( "lat_ms",
                     Json.Obj
                       (List.init 3 (fun i -> (classes.(i), lat_json p.ph_lat.(i))))
                   );
                   ("ops", num (float_of_int p.ph_ops));
                   ("ops_s", num p.ph_ops_s);
                   ("stale_bounces", num (float_of_int p.ph_stale));
                 ])
             t.phases) );
      ("reconfig_metrics", t.rc_metrics);
      ("sites_moved", num (float_of_int t.sites_moved));
    ]

let report ?scale () = report_of (compute ?scale ())

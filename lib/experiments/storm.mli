(** Multi-tenant traffic-storm exhibit: three co-resident tenants (an
    interactive Zipf web-read tenant with a mid-run flash crowd, an
    AI-ingest small-file flood, a namespace-sweeping backup scan) run
    twice from identical seeds — FIFO servers vs. the full QoS stack
    (per-server WFQ, token-bucket admission on the scanner,
    power-of-two-choices mirrored reads). Headline: QoS holds the
    interactive tenant's p99 under {!default_p99_bound_ms} while
    keeping aggregate throughput within a few percent of FIFO. *)

type tenant_result = {
  tn_name : string;
  tn_ops : int;  (** ops started inside the measure window *)
  tn_ops_s : float;
  tn_bytes : int;
  tn_p50_ms : float;
  tn_p95_ms : float;
  tn_p99_ms : float;
  tn_errors : int;
}

type side = {
  sd_label : string;  (** ["qos_off"] or ["qos_on"] *)
  sd_tenants : tenant_result array;  (** web, flood, scan *)
  sd_total_ops : int;
  sd_admission_deferrals : int;
  sd_p2c_probes : int;
  sd_p2c_diverted : int;
  sd_metrics : Slice_util.Json.t;
}

type t = {
  st_off : side;
  st_on : side;
  st_throughput_ratio : float;  (** on / off aggregate measured ops *)
  st_p99_bound_ms : float;
  st_duration : float;  (** measure-window length, seconds *)
}

val default_p99_bound_ms : float
(** The interactive-p99 contract the bench smoke gate enforces with QoS
    on. *)

val interactive_p99_ms : side -> float
(** The web tenant's p99, milliseconds. *)

val compute : ?scale:float -> ?seed:int -> unit -> t
(** Run the storm twice (QoS off, then on) from the same seed.
    [scale] shrinks/grows offered load and data-set size together;
    defaults to 1.0. Deterministic: same arguments, same result. *)

val report_of : t -> Report.t
val json_of : t -> Slice_util.Json.t
(** Deterministic artifact: keys sorted at every level, tenants in
    roster order — byte-identical across same-seed reruns. *)

val report : ?scale:float -> unit -> Report.t

(** Scale-out exhibit: elastic scaling under live load. A running
    SPECsfs-style mix keeps issuing while the reconfiguration control
    plane ({!Slice_reconfig.Reconfig}) adds one server of each class and
    rebalances logical sites onto it; measurement windows bracket each
    addition, and a post-run audit proves no update was lost or
    duplicated. Same seed, byte-identical {!json_of} output. *)

type phase = {
  ph_label : string;
  ph_ops : int;
  ph_ops_s : float;
  ph_lat : Slice_util.Stats.t array;
      (** per request class: name, smallfile, storage *)
  ph_stale : int;  (** µproxy bounce-refreshes during the window *)
  ph_drain : int;  (** donor drain bounces during the window *)
}

type audit = {
  aud_checked : int;  (** names and byte ranges re-verified *)
  aud_lost : int;  (** failed or short — must be 0 *)
  aud_ownership_violations : int;
      (** logical sites without exactly one owner backing the published
          table entry — must be 0 *)
}

type t = {
  phases : phase list;
  trans_ops : int;  (** ops completed while a migration was in flight *)
  migrations : int;
  sites_moved : int;
  aborted : int;
  bytes_copied : int64;
  drain_bounces : int;
  audit : audit;
  rc_metrics : Slice_util.Json.t;
}

val compute : ?scale:float -> ?seed:int -> unit -> t
(** [scale] multiplies file-set sizes and window lengths (default 1.0;
    tests use a fraction). *)

val report_of : t -> Report.t
val json_of : t -> Slice_util.Json.t
(** Deterministic rendering (sorted keys, run-order phases) — the
    [scale-report.json] artifact CI diffs across same-seed runs. *)

val report : ?scale:float -> unit -> Report.t

(* End-to-end tracing exhibit: replay the SPECsfs-style mix with span
   recording on and print, per op class, where the time goes — proxy CPU,
   network (root self time: wire + queueing), server CPU, WAL and disk.

   The same deterministic workload as the offload exhibit (same file-set
   builder, same op mix); two same-seed runs produce byte-identical JSON,
   which is what the acceptance check diffs. *)

module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Prng = Slice_util.Prng
module Stats = Slice_util.Stats
module Json = Slice_util.Json
module Metrics = Slice_util.Metrics
module Trace = Slice_trace.Trace
module Client = Slice_workload.Client

type t = {
  rows : (string * string * Stats.t) list;  (** (op, hop, latency) sorted *)
  spans : int;
  dropped : int;
  ops : int;
  metrics : Json.t;  (** unified-registry dump at end of run *)
  trace : Json.t;  (** full span dump *)
}

let compute ?(scale = 1.0) ?(seed = 42) () =
  let clients = 2 in
  let files_per_proc = max 24 (int_of_float (96.0 *. scale)) in
  let ops_per_proc = max 120 (int_of_float (900.0 *. scale)) in
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        seed;
        storage_nodes = 4;
        dir_servers = 2;
        smallfile_servers = 2;
        proxy_params = { Slice.Params.default with trace_enabled = true };
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let cls =
    Array.init clients (fun i ->
        let host, _proxy = Slice.Ensemble.add_client ens ~name:(Printf.sprintf "tr%d" i) in
        Client.create host ~server:(Slice.Ensemble.virtual_addr ens) ())
  in
  let root = Slice_nfs.Fh.root in
  let measured = ref 0 in
  Engine.spawn eng (fun () ->
      let filesets = Array.make clients None in
      Slice_sim.Fiber.join_all eng
        (List.init clients (fun p () ->
             filesets.(p) <- Some (Offload.build_fileset cls.(p) ~root ~proc:p ~files:files_per_proc)));
      let filesets = Array.map Option.get filesets in
      Slice_sim.Fiber.join_all eng
        (List.concat
           (List.init clients (fun p ->
                List.init 2 (fun w ->
                    fun () ->
                      let prng = Prng.create (seed + 97 + (p * 7919) + (w * 131)) in
                      let fresh = ref (((p * 2) + w) * 100_000) in
                      for _ = 1 to ops_per_proc / 2 do
                        Offload.one_op cls.(p) prng filesets.(p) ~fresh;
                        incr measured
                      done)))));
  Engine.run eng;
  let tr =
    match Slice.Ensemble.trace ens with
    | Some tr -> tr
    | None -> failwith "tracing exhibit: tracer missing"
  in
  {
    rows = Trace.hop_breakdown tr;
    spans = Trace.count tr;
    dropped = Trace.dropped tr;
    ops = !measured;
    metrics = Metrics.dump (Slice.Ensemble.metrics ens);
    trace = Trace.to_json tr;
  }

let ms v = v *. 1e3

let report_of t =
  {
    Report.title = "Request tracing: per-op-class latency by hop (SPECsfs mix)";
    preamble =
      [
        "Span trees recorded at every hop of every request; a hop's time is its";
        "self time (children subtracted). 'total' is the whole request at the";
        "uproxy; 'network' is root self time — wire latency plus queueing that";
        Printf.sprintf "no server accounts for. %d spans recorded (%d dropped), %d measured ops."
          t.spans t.dropped t.ops;
      ];
    rows =
      List.map
        (fun (op, hop, s) ->
          Report.row
            ~label:(Printf.sprintf "%s/%s" op hop)
            ~paper:"-"
            ~measured:(Printf.sprintf "p50 %.3f ms" (ms (Stats.percentile s 50.0)))
            ~note:
              (Printf.sprintf "p95 %.3f p99 %.3f mean %.3f ms; n=%d"
                 (ms (Stats.percentile s 95.0))
                 (ms (Stats.percentile s 99.0))
                 (ms (Stats.mean s)) (Stats.count s))
            ())
        t.rows;
  }

(* Deterministic artifact: field names sorted at every level, rows in
   (op, hop) order. *)
let json_of t =
  let num v = Json.Num v in
  Json.Obj
    [
      ("dropped", num (float_of_int t.dropped));
      ( "hops",
        Json.Arr
          (List.map
             (fun (op, hop, s) ->
               Json.Obj
                 [
                   ("count", num (float_of_int (Stats.count s)));
                   ("hop", Json.Str hop);
                   ("mean_ms", num (ms (Stats.mean s)));
                   ("op", Json.Str op);
                   ("p50_ms", num (ms (Stats.percentile s 50.0)));
                   ("p95_ms", num (ms (Stats.percentile s 95.0)));
                   ("p99_ms", num (ms (Stats.percentile s 99.0)));
                 ])
             t.rows) );
      ("metrics", t.metrics);
      ("ops", num (float_of_int t.ops));
      ("spans", num (float_of_int t.spans));
      ("trace", t.trace);
    ]

let report ?scale () = report_of (compute ?scale ())

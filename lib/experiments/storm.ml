(* Multi-tenant traffic storm: the per-tenant QoS exhibit.

   Three tenants share one Slice ensemble: an interactive web tenant
   (open-loop Zipf page reads over mirrored files, with a mid-run flash
   crowd), an AI-ingest flood (closed-loop whole-file reads over a
   4-64 KB set) and a backup scanner sweeping the whole namespace. The
   same storm runs twice from identical seeds — once with FIFO servers
   (QoS off) and once with weighted fair queueing, token-bucket
   admission on the scanner and power-of-two-choices mirrored reads
   (QoS on). The headline: QoS keeps the interactive tenant's p99 under
   a configured bound while sacrificing almost none of the aggregate
   throughput (WFQ is work-conserving; admission only trims the
   scanner's bursts). *)

module Engine = Slice_sim.Engine
module Stats = Slice_util.Stats
module Json = Slice_util.Json
module Metrics = Slice_util.Metrics
module Tenant = Slice_qos.Tenant
module Ensemble = Slice.Ensemble
module Proxy = Slice.Proxy
module Client = Slice_workload.Client
module Stormgen = Slice_workload.Stormgen
module Zipf = Slice_workload.Zipf
module Prng = Slice_util.Prng

type tenant_result = {
  tn_name : string;
  tn_ops : int;
  tn_ops_s : float;
  tn_bytes : int;
  tn_p50_ms : float;
  tn_p95_ms : float;
  tn_p99_ms : float;
  tn_errors : int;
}

type side = {
  sd_label : string;
  sd_tenants : tenant_result array;  (* web, flood, scan *)
  sd_total_ops : int;
  sd_admission_deferrals : int;
  sd_p2c_probes : int;
  sd_p2c_diverted : int;
  sd_metrics : Json.t;
}

type t = {
  st_off : side;
  st_on : side;
  st_throughput_ratio : float;  (* on/off aggregate measured ops *)
  st_p99_bound_ms : float;
  st_duration : float;
}

let ms v = v *. 1e3

(* Interactive p99 must stay under this with QoS on — the contract the
   bench smoke gate enforces. *)
let default_p99_bound_ms = 55.0

(* Tenant roster. The scanner is the only admission-gated tenant: its
   weight already caps its share under contention, the bucket just stops
   burst trains from forming queues at all. [system] absorbs the
   dataless small-file managers' backend I/O — it rides the flood's
   critical path, so it keeps a real weight. *)
let tenant_specs ~scale =
  [|
    Tenant.spec ~klass:Tenant.Interactive ~name:"web" ~weight:16.0 ();
    Tenant.spec ~klass:Tenant.Batch ~name:"flood" ~weight:3.0 ();
    Tenant.spec ~klass:Tenant.Background ~name:"scan" ~weight:1.5
      ~admit_rate:(600.0 *. scale) ~admit_burst:40.0 ();
    Tenant.spec ~klass:Tenant.Batch ~name:"system" ~weight:6.0 ();
  |]

let system_tenant = 3

let result_of name (tl : Stormgen.tally) ~duration =
  {
    tn_name = name;
    tn_ops = tl.Stormgen.ops;
    tn_ops_s = float_of_int tl.Stormgen.ops /. duration;
    tn_bytes = tl.Stormgen.bytes;
    tn_p50_ms = ms (Stats.percentile tl.Stormgen.lat 50.0);
    tn_p95_ms = ms (Stats.percentile tl.Stormgen.lat 95.0);
    tn_p99_ms = ms (Stats.percentile tl.Stormgen.lat 99.0);
    tn_errors = tl.Stormgen.errors;
  }

let run_side ~scale ~seed ~duration ~warmup ~qos_on =
  let qos =
    if qos_on then
      Some
        {
          Ensemble.tenants = tenant_specs ~scale;
          wfq_depth = 4;
          p2c_reads = true;
          system_tenant;
        }
    else None
  in
  (* A deliberately tight ensemble: half the storage nodes and arms of
     the default, and caches far smaller than the combined working set,
     so the scan and flood actually contend with the web tenant for
     disk arms and server CPU instead of being absorbed by cache. *)
  let cfg =
    {
      Ensemble.default_config with
      seed;
      storage_nodes = 2;
      disks_per_node = 6;
      storage_cache = 2 * 1024 * 1024;
      smallfile_cache = 16 * 1024 * 1024;
      mirror_new_files = true;
      qos;
    }
  in
  let ens = Ensemble.create cfg in
  let eng = Ensemble.engine ens in
  let vaddr = Ensemble.virtual_addr ens in
  let mk_client ~tenant ~name ~port =
    let host, _px = Ensemble.add_client ~tenant ens ~name in
    Client.create host ~server:vaddr ~port ()
  in
  (* identical labels both sides: with QoS off the tenant id is ignored *)
  let web_cl = mk_client ~tenant:0 ~name:"web0" ~port:2001 in
  let flood_cl = mk_client ~tenant:1 ~name:"flood0" ~port:2002 in
  let scan_cl = mk_client ~tenant:2 ~name:"scan0" ~port:2003 in
  let web_files = max 8 (int_of_float (48.0 *. scale)) in
  let flood_files = max 16 (int_of_float (128.0 *. scale)) in
  let web_t = Stormgen.tally () and flood_t = Stormgen.tally () and scan_t = Stormgen.tally () in
  Engine.spawn eng (fun () ->
      (* --- setup: each tenant builds its subtree --- *)
      let web_tree = ref None and flood_tree = ref None in
      Slice_sim.Fiber.join_all eng
        [
          (fun () ->
            web_tree :=
              Some
                (Stormgen.build_tree web_cl ~root:Ensemble.root ~name:"web" ~dirs:6
                   ~files:web_files ~size_of:(fun _ -> 262144)));
          (fun () ->
            flood_tree :=
              Some
                (Stormgen.build_tree flood_cl ~root:Ensemble.root ~name:"flood" ~dirs:4
                   ~files:flood_files
                   ~size_of:(fun i -> 4096 + (i * 4096 mod 61440))));
        ];
      let web_tree = Option.get !web_tree and flood_tree = Option.get !flood_tree in
      (* --- the storm: all three tenants at once --- *)
      let t0 = Engine.now eng in
      let t_measure = t0 +. warmup in
      let t_end = t_measure +. duration in
      let zipf = Zipf.create ~n:web_files ~s:1.1 in
      Slice_sim.Fiber.join_all eng
        [
          (fun () ->
            Stormgen.web_run eng web_cl
              ~prng:(Prng.create (seed + 101))
              ~zipf ~tree:web_tree
              ~cfg:
                {
                  Stormgen.web_rate = 500.0 *. scale;
                  web_outstanding = 64;
                  web_hotspot_at = t_measure +. (duration /. 2.0);
                  web_hotspot_frac = 0.5;
                }
              ~t0 ~t_measure ~t_end web_t);
          (fun () ->
            Stormgen.flood_run eng flood_cl
              ~prng:(Prng.create (seed + 202))
              ~tree:flood_tree
              ~cfg:{ Stormgen.flood_workers = 32 }
              ~t_measure ~t_end flood_t);
          (fun () ->
            Stormgen.scan_run eng scan_cl ~workers:8
              ~trees:[| web_tree; flood_tree |]
              ~t_measure ~t_end scan_t);
        ]);
  Ensemble.run ens;
  let sum_proxies f = List.fold_left (fun acc px -> acc + f px) 0 (Ensemble.client_proxies ens) in
  let tenants =
    [|
      result_of "web" web_t ~duration;
      result_of "flood" flood_t ~duration;
      result_of "scan" scan_t ~duration;
    |]
  in
  {
    sd_label = (if qos_on then "qos_on" else "qos_off");
    sd_tenants = tenants;
    sd_total_ops = Array.fold_left (fun a r -> a + r.tn_ops) 0 tenants;
    sd_admission_deferrals = sum_proxies Proxy.admission_deferrals;
    sd_p2c_probes = sum_proxies Proxy.p2c_probes;
    sd_p2c_diverted = sum_proxies Proxy.p2c_diverted;
    sd_metrics = Metrics.dump (Ensemble.metrics ens);
  }

let compute ?(scale = 1.0) ?(seed = 4242) () =
  let duration = 3.0 and warmup = 0.5 in
  let off = run_side ~scale ~seed ~duration ~warmup ~qos_on:false in
  let on = run_side ~scale ~seed ~duration ~warmup ~qos_on:true in
  let ratio =
    if off.sd_total_ops = 0 then 0.0
    else float_of_int on.sd_total_ops /. float_of_int off.sd_total_ops
  in
  {
    st_off = off;
    st_on = on;
    st_throughput_ratio = ratio;
    st_p99_bound_ms = default_p99_bound_ms;
    st_duration = duration;
  }

let interactive_p99_ms side = side.sd_tenants.(0).tn_p99_ms

let report_of t =
  let side_rows side =
    Array.to_list
      (Array.map
         (fun r ->
           Report.row
             ~label:(Printf.sprintf "%s %s" side.sd_label r.tn_name)
             ~paper:"-"
             ~measured:(Printf.sprintf "%.0f ops/s" r.tn_ops_s)
             ~note:
               (Printf.sprintf "p50 %.2f / p95 %.2f / p99 %.2f ms; %d ops; %d errors"
                  r.tn_p50_ms r.tn_p95_ms r.tn_p99_ms r.tn_ops r.tn_errors)
             ())
         side.sd_tenants)
  in
  {
    Report.title = "Traffic storm: per-tenant QoS (WFQ + admission + p2c reads)";
    preamble =
      [
        "Same three-tenant storm, same seeds, run FIFO (qos_off) then with";
        "weighted fair queueing at every server, token-bucket admission on";
        "the scanner and power-of-two-choices mirrored reads (qos_on).";
        Printf.sprintf
          "Interactive p99: %.2f ms off -> %.2f ms on (bound %.0f ms); aggregate kept %.1f%%."
          (interactive_p99_ms t.st_off) (interactive_p99_ms t.st_on) t.st_p99_bound_ms
          (100.0 *. t.st_throughput_ratio);
        Printf.sprintf "Admission deferrals %d; p2c probes %d (%d diverted)."
          t.st_on.sd_admission_deferrals t.st_on.sd_p2c_probes t.st_on.sd_p2c_diverted;
      ];
    rows = side_rows t.st_off @ side_rows t.st_on;
  }

(* Deterministic artifact: field names sorted at every level, tenants in
   roster order. *)
let json_of t =
  let num v = Json.Num v in
  let side s =
    Json.Obj
      [
        ("admission_deferrals", num (float_of_int s.sd_admission_deferrals));
        ("label", Json.Str s.sd_label);
        ("metrics", s.sd_metrics);
        ("p2c_diverted", num (float_of_int s.sd_p2c_diverted));
        ("p2c_probes", num (float_of_int s.sd_p2c_probes));
        ( "tenants",
          Json.Arr
            (Array.to_list
               (Array.map
                  (fun r ->
                    Json.Obj
                      [
                        ("bytes", num (float_of_int r.tn_bytes));
                        ("errors", num (float_of_int r.tn_errors));
                        ("name", Json.Str r.tn_name);
                        ("ops", num (float_of_int r.tn_ops));
                        ("ops_s", num r.tn_ops_s);
                        ("p50_ms", num r.tn_p50_ms);
                        ("p95_ms", num r.tn_p95_ms);
                        ("p99_ms", num r.tn_p99_ms);
                      ])
                  s.sd_tenants)) );
        ("total_ops", num (float_of_int s.sd_total_ops));
      ]
  in
  Json.Obj
    [
      ("duration_s", num t.st_duration);
      ("interactive_p99_off_ms", num (interactive_p99_ms t.st_off));
      ("interactive_p99_on_ms", num (interactive_p99_ms t.st_on));
      ("p99_bound_ms", num t.st_p99_bound_ms);
      ("qos_off", side t.st_off);
      ("qos_on", side t.st_on);
      ("throughput_ratio", num t.st_throughput_ratio);
    ]

let report ?scale () = report_of (compute ?scale ())

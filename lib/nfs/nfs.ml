type time = float

(* The I/O-tracked fields are mutable so the µproxy's attribute cache can
   fold write/read traffic into a cached record in place on the per-packet
   path (no replacement record per reply). *)
type fattr = {
  ftype : Fh.ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  mutable size : int64;
  mutable used : int64;
  fileid : int64;
  mutable atime : time;
  mutable mtime : time;
  mutable ctime : time;
}

let default_attr ~ftype ~fileid ~now =
  {
    ftype;
    mode = (match ftype with Fh.Dir -> 0o755 | _ -> 0o644);
    nlink = (match ftype with Fh.Dir -> 2 | _ -> 1);
    uid = 0;
    gid = 0;
    size = 0L;
    used = 0L;
    fileid;
    atime = now;
    mtime = now;
    ctime = now;
  }

type sattr = {
  set_mode : int option;
  set_uid : int option;
  set_gid : int option;
  set_size : int64 option;
  set_atime : time option;
  set_mtime : time option;
}

let sattr_empty =
  { set_mode = None; set_uid = None; set_gid = None; set_size = None; set_atime = None; set_mtime = None }

let sattr_size size = { sattr_empty with set_size = Some size }
let sattr_times ?atime ?mtime () = { sattr_empty with set_atime = atime; set_mtime = mtime }

type status =
  | OK
  | ERR_PERM
  | ERR_NOENT
  | ERR_IO
  | ERR_EXIST
  | ERR_NOTDIR
  | ERR_ISDIR
  | ERR_NOSPC
  | ERR_NOTEMPTY
  | ERR_STALE
  | ERR_BADHANDLE
  | ERR_JUKEBOX
  | ERR_MISDIRECTED

let status_name = function
  | OK -> "NFS3_OK"
  | ERR_PERM -> "NFS3ERR_PERM"
  | ERR_NOENT -> "NFS3ERR_NOENT"
  | ERR_IO -> "NFS3ERR_IO"
  | ERR_EXIST -> "NFS3ERR_EXIST"
  | ERR_NOTDIR -> "NFS3ERR_NOTDIR"
  | ERR_ISDIR -> "NFS3ERR_ISDIR"
  | ERR_NOSPC -> "NFS3ERR_NOSPC"
  | ERR_NOTEMPTY -> "NFS3ERR_NOTEMPTY"
  | ERR_STALE -> "NFS3ERR_STALE"
  | ERR_BADHANDLE -> "NFS3ERR_BADHANDLE"
  | ERR_JUKEBOX -> "NFS3ERR_JUKEBOX"
  | ERR_MISDIRECTED -> "SLICE_MISDIRECTED"

type wdata = Data of string | Synthetic of int

let wdata_length = function Data s -> String.length s | Synthetic n -> n

type stable_how = Unstable | Data_sync | File_sync

type call =
  | Null
  | Getattr of Fh.t
  | Setattr of Fh.t * sattr
  | Lookup of Fh.t * string
  | Access of Fh.t * int
  | Readlink of Fh.t
  | Read of Fh.t * int64 * int
  | Write of Fh.t * int64 * stable_how * wdata
  | Create of Fh.t * string
  | Mkdir of Fh.t * string
  | Symlink of Fh.t * string * string
  | Remove of Fh.t * string
  | Rmdir of Fh.t * string
  | Rename of Fh.t * string * Fh.t * string
  | Link of Fh.t * Fh.t * string
  | Readdir of Fh.t * int64 * int
  | Fsstat of Fh.t
  | Commit of Fh.t * int64 * int

let call_name = function
  | Null -> "null"
  | Getattr _ -> "getattr"
  | Setattr _ -> "setattr"
  | Lookup _ -> "lookup"
  | Access _ -> "access"
  | Readlink _ -> "readlink"
  | Read _ -> "read"
  | Write _ -> "write"
  | Create _ -> "create"
  | Mkdir _ -> "mkdir"
  | Symlink _ -> "symlink"
  | Remove _ -> "remove"
  | Rmdir _ -> "rmdir"
  | Rename _ -> "rename"
  | Link _ -> "link"
  | Readdir _ -> "readdir"
  | Fsstat _ -> "fsstat"
  | Commit _ -> "commit"

let proc_of_call = function
  | Null -> 0
  | Getattr _ -> 1
  | Setattr _ -> 2
  | Lookup _ -> 3
  | Access _ -> 4
  | Readlink _ -> 5
  | Read _ -> 6
  | Write _ -> 7
  | Create _ -> 8
  | Mkdir _ -> 9
  | Symlink _ -> 10
  | Remove _ -> 12
  | Rmdir _ -> 13
  | Rename _ -> 14
  | Link _ -> 15
  | Readdir _ -> 16
  | Fsstat _ -> 18
  | Commit _ -> 21

type entry = { entry_id : int64; entry_name : string; entry_cookie : int64 }

type fsinfo = {
  total_bytes : int64;
  free_bytes : int64;
  total_files : int64;
  free_files : int64;
}

type reply =
  | RNull
  | RGetattr of fattr
  | RSetattr of fattr
  | RLookup of Fh.t * fattr
  | RAccess of int * fattr
  | RReadlink of string * fattr
  | RRead of wdata * bool * fattr
  | RWrite of int * stable_how * fattr
  | RCreate of Fh.t * fattr
  | RMkdir of Fh.t * fattr
  | RSymlink of Fh.t * fattr
  | RRemove
  | RRmdir
  | RRename
  | RLink of fattr
  | RReaddir of entry list * int64 * bool
  | RFsstat of fsinfo
  | RCommit of fattr

type response = (reply, status) result

let reply_attr = function
  | RGetattr a
  | RSetattr a
  | RLookup (_, a)
  | RAccess (_, a)
  | RReadlink (_, a)
  | RRead (_, _, a)
  | RWrite (_, _, a)
  | RCreate (_, a)
  | RMkdir (_, a)
  | RSymlink (_, a)
  | RLink a
  | RCommit a ->
      Some a
  | RNull | RRemove | RRmdir | RRename | RReaddir _ | RFsstat _ -> None

let apply_sattr attr s ~now =
  let attr = match s.set_mode with Some m -> { attr with mode = m } | None -> attr in
  let attr = match s.set_uid with Some u -> { attr with uid = u } | None -> attr in
  let attr = match s.set_gid with Some g -> { attr with gid = g } | None -> attr in
  let attr =
    match s.set_size with
    | Some sz -> { attr with size = sz; used = sz; mtime = now }
    | None -> attr
  in
  let attr = match s.set_atime with Some t -> { attr with atime = t } | None -> attr in
  let attr = match s.set_mtime with Some t -> { attr with mtime = t } | None -> attr in
  { attr with ctime = now }

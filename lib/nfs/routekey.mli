(** Routing fingerprints shared by the µproxy and the servers.

    Both sides must agree bit-for-bit on how requests map to logical
    sites — the µproxy to route, the servers to detect misdirected
    requests — so the functions live here, beside the protocol. All are
    MD5-based (the hash the paper selected for balance and cost). *)

val name_site : nsites:int -> Fh.t -> string -> int
(** Logical site of the name entry (parent handle, name) under the
    name-hashing policy, and the redirection target of mkdir switching. *)

val file_site : nsites:int -> Fh.t -> int
(** Logical site keyed by the file handle: small-file server selection
    and the primary stripe site of bulk I/O. *)

val chunk_of_offset : stripe_unit:int -> int64 -> int
(** Stripe chunk index containing a byte offset. *)

val stripe_site : nsites:int -> stripe_unit:int -> Fh.t -> int64 -> int
(** Storage site of a chunk under static striping: the file's primary
    site rotated by the chunk index. *)

val local_offset : nsites:int -> stripe_unit:int -> int64 -> int64
(** Node-local byte offset for a striped chunk: each node stores its
    every-Nth chunks densely, so its prefetcher sees a sequential
    stream. *)

val mirror_sites : nsites:int -> Fh.t -> int * int
(** Two replica sites for a mirrored file (distinct when [nsites > 1]). *)

val site_stride : int64
(** Offset-space stride separating logical storage sites within one
    object: the µproxy rewrites bulk-I/O offsets to
    [site * site_stride + local], and the storage node decodes the pair —
    so several logical sites can share (or migrate between) physical
    nodes without colliding in an object's offset space. *)

val site_offset : site:int -> int64 -> int64
(** Compose a wire offset from a logical site and a node-local offset. *)

val offset_site : int64 -> int
(** The logical site encoded in a wire offset (0 for plain offsets). *)

val offset_local : int64 -> int64
(** The node-local offset encoded in a wire offset. *)

(** {2 In-place variants}

    The same fingerprints computed directly over handle/name spans inside
    a packet buffer, plus plain-int offset arithmetic — the µproxy's
    allocation-free routing entry points. Each agrees bit-for-bit with
    its materializing twin above (test-enforced): servers detect
    misdirected requests with the string versions. *)

val file_site_at : nsites:int -> bytes -> off:int -> int
(** {!file_site} of the 32-byte handle span at [off]. *)

val name_site_at :
  nsites:int -> scratch:bytes -> bytes -> fh_off:int -> name_off:int -> name_len:int -> int
(** {!name_site} of the handle span at [fh_off] and name span at
    [name_off]; [scratch] must hold at least [33 + name_len] bytes (the
    caller owns and sizes it off the hot path). *)

val chunk_of_offset_int : stripe_unit:int -> int -> int

val stripe_site_at : nsites:int -> stripe_unit:int -> bytes -> off:int -> int -> int
(** {!stripe_site} of the handle span at [off] and an int byte offset. *)

val local_offset_int : nsites:int -> stripe_unit:int -> int -> int

val mirror_partner : nsites:int -> int -> int
(** Second replica site given the primary ({!file_site_at}); pairs with
    it to give exactly {!mirror_sites} without the tuple. *)

val site_stride_int : int
(** [Int64.to_int site_stride] (2^40 fits comfortably in an int). *)

val site_offset_int : site:int -> int -> int
val offset_site_int : int -> int
val offset_local_int : int -> int

(** Routing fingerprints shared by the µproxy and the servers.

    Both sides must agree bit-for-bit on how requests map to logical
    sites — the µproxy to route, the servers to detect misdirected
    requests — so the functions live here, beside the protocol. All are
    MD5-based (the hash the paper selected for balance and cost). *)

val name_site : nsites:int -> Fh.t -> string -> int
(** Logical site of the name entry (parent handle, name) under the
    name-hashing policy, and the redirection target of mkdir switching. *)

val file_site : nsites:int -> Fh.t -> int
(** Logical site keyed by the file handle: small-file server selection
    and the primary stripe site of bulk I/O. *)

val chunk_of_offset : stripe_unit:int -> int64 -> int
(** Stripe chunk index containing a byte offset. *)

val stripe_site : nsites:int -> stripe_unit:int -> Fh.t -> int64 -> int
(** Storage site of a chunk under static striping: the file's primary
    site rotated by the chunk index. *)

val local_offset : nsites:int -> stripe_unit:int -> int64 -> int64
(** Node-local byte offset for a striped chunk: each node stores its
    every-Nth chunks densely, so its prefetcher sees a sequential
    stream. *)

val mirror_sites : nsites:int -> Fh.t -> int * int
(** Two replica sites for a mirrored file (distinct when [nsites > 1]). *)

val site_stride : int64
(** Offset-space stride separating logical storage sites within one
    object: the µproxy rewrites bulk-I/O offsets to
    [site * site_stride + local], and the storage node decodes the pair —
    so several logical sites can share (or migrate between) physical
    nodes without colliding in an object's offset space. *)

val site_offset : site:int -> int64 -> int64
(** Compose a wire offset from a logical site and a node-local offset. *)

val offset_site : int64 -> int
(** The logical site encoded in a wire offset (0 for plain offsets). *)

val offset_local : int64 -> int64
(** The node-local offset encoded in a wire offset. *)

(** NFS V3 protocol subset (the operations of the paper's Table 1, plus
    [access], [readlink], [fsstat] and [commit], which the SPECsfs97 mix
    and the untar trace exercise). *)

type time = float
(** Seconds since epoch; encoded as (seconds, nanoseconds) on the wire. *)

type fattr = {
  ftype : Fh.ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  mutable size : int64;
  mutable used : int64;
  fileid : int64;
  mutable atime : time;
  mutable mtime : time;
  mutable ctime : time;
}
(** The I/O-tracked fields ([size]/[used]/times) are mutable so the
    µproxy's attribute cache can update a cached record in place on the
    per-packet path. *)

val default_attr : ftype:Fh.ftype -> fileid:int64 -> now:time -> fattr

type sattr = {
  set_mode : int option;
  set_uid : int option;
  set_gid : int option;
  set_size : int64 option;
  set_atime : time option;
  set_mtime : time option;
}

val sattr_empty : sattr
val sattr_size : int64 -> sattr
val sattr_times : ?atime:time -> ?mtime:time -> unit -> sattr

type status =
  | OK
  | ERR_PERM
  | ERR_NOENT
  | ERR_IO
  | ERR_EXIST
  | ERR_NOTDIR
  | ERR_ISDIR
  | ERR_NOSPC
  | ERR_NOTEMPTY
  | ERR_STALE
  | ERR_BADHANDLE
  | ERR_JUKEBOX
  | ERR_MISDIRECTED
      (** Not in RFC 1813: a Slice server's answer to a request routed by a
          stale µproxy routing table; triggers a lazy table refresh
          (Section 3.3.1 of the paper). *)

val status_name : status -> string

type wdata =
  | Data of string  (** materialized bytes (small-file paths, tests) *)
  | Synthetic of int
      (** bulk payload of the given length, carried as wire size only *)

val wdata_length : wdata -> int

type stable_how = Unstable | Data_sync | File_sync

type call =
  | Null
  | Getattr of Fh.t
  | Setattr of Fh.t * sattr
  | Lookup of Fh.t * string
  | Access of Fh.t * int
  | Readlink of Fh.t
  | Read of Fh.t * int64 * int
  | Write of Fh.t * int64 * stable_how * wdata
  | Create of Fh.t * string
  | Mkdir of Fh.t * string
  | Symlink of Fh.t * string * string  (** dir, name, target *)
  | Remove of Fh.t * string
  | Rmdir of Fh.t * string
  | Rename of Fh.t * string * Fh.t * string
  | Link of Fh.t * Fh.t * string  (** file, destination dir, new name *)
  | Readdir of Fh.t * int64 * int  (** dir, cookie, max entries *)
  | Fsstat of Fh.t
  | Commit of Fh.t * int64 * int

val call_name : call -> string

val proc_of_call : call -> int
(** RFC 1813 procedure numbers. *)

type entry = { entry_id : int64; entry_name : string; entry_cookie : int64 }

type fsinfo = {
  total_bytes : int64;
  free_bytes : int64;
  total_files : int64;
  free_files : int64;
}

type reply =
  | RNull
  | RGetattr of fattr
  | RSetattr of fattr
  | RLookup of Fh.t * fattr
  | RAccess of int * fattr
  | RReadlink of string * fattr
  | RRead of wdata * bool * fattr  (** data, eof, post-op attr *)
  | RWrite of int * stable_how * fattr  (** count written *)
  | RCreate of Fh.t * fattr
  | RMkdir of Fh.t * fattr
  | RSymlink of Fh.t * fattr
  | RRemove
  | RRmdir
  | RRename
  | RLink of fattr
  | RReaddir of entry list * int64 * bool  (** entries, cookie, eof *)
  | RFsstat of fsinfo
  | RCommit of fattr

type response = (reply, status) result

val reply_attr : reply -> fattr option
(** The post-op attribute block carried by a reply, if any — what the
    µproxy's attribute cache consumes. *)

val apply_sattr : fattr -> sattr -> now:time -> fattr
(** Attribute update semantics: applies requested fields and bumps ctime. *)

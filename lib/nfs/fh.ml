type ftype = Reg | Dir | Lnk

type t = {
  file_id : int64;
  gen : int;
  ftype : ftype;
  mirrored : bool;
  attr_site : int;
  cap : int64;
}

let root = { file_id = 1L; gen = 1; ftype = Dir; mirrored = false; attr_site = 0; cap = 0L }
let wire_length = 32
let magic = 0x534C4943 (* "SLIC" *)

let int_of_ftype = function Reg -> 1 | Dir -> 2 | Lnk -> 5
let ftype_of_int = function 1 -> Some Reg | 2 -> Some Dir | 5 -> Some Lnk | _ -> None

let encode t =
  let b = Bytes.make wire_length '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int magic);
  Bytes.set_int64_be b 4 t.file_id;
  Bytes.set_int32_be b 12 (Int32.of_int t.gen);
  Bytes.set b 16 (Char.chr (int_of_ftype t.ftype));
  Bytes.set b 17 (if t.mirrored then '\001' else '\000');
  Bytes.set_int32_be b 18 (Int32.of_int t.attr_site);
  Bytes.set_int64_be b 22 t.cap;
  Bytes.unsafe_to_string b

let decode s =
  if String.length s <> wire_length then None
  else
    let b = Bytes.unsafe_of_string s in
    if Int32.to_int (Bytes.get_int32_be b 0) <> magic then None
    else
      match ftype_of_int (Char.code (Bytes.get b 16)) with
      | None -> None
      | Some ftype ->
          Some
            {
              file_id = Bytes.get_int64_be b 4;
              gen = Int32.to_int (Bytes.get_int32_be b 12);
              ftype;
              mirrored = Bytes.get b 17 = '\001';
              attr_site = Int32.to_int (Bytes.get_int32_be b 18);
              cap = Bytes.get_int64_be b 22;
            }

let key t = encode t

(* ---- in-place peeks: read handle fields straight out of a packet
   buffer (the 32-byte span located by the codec's cursor) without
   materializing a string or a record. All [@hot] µproxy routing
   decisions run over these. [peek_valid] is the gate: every other peek
   assumes it returned [true] for the same (buf, off). *)

let[@hot] peek_valid buf off len =
  Int.equal len wire_length
  && off >= 0
  && off + wire_length <= Bytes.length buf
  && Int32.to_int (Bytes.get_int32_be buf off) = magic
  &&
  let ft = Char.code (Bytes.get buf (off + 16)) in
  ft = 1 || ft = 2 || ft = 5

let[@hot] peek_file_id_int buf off = Int64.to_int (Bytes.get_int64_be buf (off + 4))
let[@hot] peek_gen buf off = Int32.to_int (Bytes.get_int32_be buf (off + 12))
let[@hot] peek_ftype_code buf off = Char.code (Bytes.get buf (off + 16))
let[@hot] peek_mirrored buf off = Char.code (Bytes.get buf (off + 17)) = 1
let[@hot] peek_attr_site buf off = Int32.to_int (Bytes.get_int32_be buf (off + 18))

(* Cold-path materialization of a peeked span (intent logs, writeback,
   commit orchestration — places that outlive the packet buffer). *)
let decode_at buf off = decode (Bytes.sub_string buf off wire_length)

(* Keyed equality: exactly the (file_id, gen) identity, via the scalar
   equalities — never polymorphic compare over the whole record (policy
   bits and the capability tag are not identity). *)
let equal a b = Int64.equal a.file_id b.file_id && Int.equal a.gen b.gen
let compare a b =
  let c = Int64.compare a.file_id b.file_id in
  if c <> 0 then c else Int.compare a.gen b.gen

let hash t = Int64.to_int t.file_id lxor (t.gen * 0x9E3779B1)

let pp fmt t =
  Format.fprintf fmt "fh(%Ld g%d %s%s@site%d)" t.file_id t.gen
    (match t.ftype with Reg -> "reg" | Dir -> "dir" | Lnk -> "lnk")
    (if t.mirrored then " mirrored" else "")
    t.attr_site

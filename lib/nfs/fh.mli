(** NFS file handles.

    Slice directory servers "place keys in each newly minted file handle,
    allowing them to locate any resident cell if presented with an fhandle"
    — so besides the fileID and generation number, our handles embed the
    logical directory-server site holding the file's attribute cell and
    per-file policy bits (mirroring) that the µproxy's I/O routing policies
    consult. Handles are opaque 32-byte strings on the wire. *)

type ftype = Reg | Dir | Lnk

type t = {
  file_id : int64;  (** volume-unique file identifier *)
  gen : int;  (** generation number guarding against reuse *)
  ftype : ftype;
  mirrored : bool;  (** per-file mirrored-striping policy flag *)
  attr_site : int;  (** logical directory-server site of the attribute cell *)
  cap : int64;
      (** capability tag sealed in by the minting directory server when
          secure objects are enabled (see {!Cap}); 0 when unused. Ignored
          by {!equal}/{!compare}. *)
}

val root : t
(** The volume root directory (fileID 1, minted at logical site 0). *)

val wire_length : int
(** 32 bytes. *)

val encode : t -> string
val decode : string -> t option
(** [None] when the magic or length is wrong (a stale/garbage handle). *)

val key : t -> string
(** Canonical byte string for hashing a handle (routing fingerprints).
    Equal to {!encode} — exactly the 32 wire bytes — so routing hashes
    may equivalently run over a handle's span inside a packet buffer. *)

(** {2 In-place peeks}

    Allocation-free accessors over a handle's 32-byte wire span inside a
    packet buffer, for the µproxy hot path. {!peek_valid} checks length,
    magic and file-type byte; the field peeks assume it held. *)

val peek_valid : bytes -> int -> int -> bool
(** [peek_valid buf off len] — would [decode] of [buf.[off, off+len)]
    succeed? *)

val peek_file_id_int : bytes -> int -> int
(** FileID collapsed to an OCaml int (cache keys, routing); simulated
    fileIDs never reach 2^62. *)

val peek_gen : bytes -> int -> int
val peek_ftype_code : bytes -> int -> int
(** Raw wire code: 1 = Reg, 2 = Dir, 5 = Lnk. *)

val peek_mirrored : bytes -> int -> bool
val peek_attr_site : bytes -> int -> int

val decode_at : bytes -> int -> t option
(** Materialize a peeked span as a record (cold paths that outlive the
    packet buffer: intents, writeback, commit orchestration). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Enc = Slice_xdr.Xdr.Enc
module Dec = Slice_xdr.Xdr.Dec

exception Malformed of string

let nfs_program = 100003
let nfs_version = 3

(* ---- primitive helpers ---- *)

let enc_fh e fh = Enc.opaque e (Fh.encode fh)

let dec_fh d =
  match Fh.decode (Dec.opaque d) with
  | Some fh -> fh
  | None -> raise (Malformed "bad file handle")

let enc_time e (t : Nfs.time) =
  let secs = int_of_float (Float.floor t) in
  let nsecs = int_of_float ((t -. Float.floor t) *. 1e9) in
  Enc.u32 e secs;
  Enc.u32 e (min nsecs 999_999_999)

let dec_time d =
  let secs = Dec.u32 d in
  let nsecs = Dec.u32 d in
  float_of_int secs +. (float_of_int nsecs /. 1e9)

let enc_opt e enc = function
  | None -> Enc.bool e false
  | Some v ->
      Enc.bool e true;
      enc e v

let dec_opt d dec = if Dec.bool d then Some (dec d) else None

let enc_sattr e (s : Nfs.sattr) =
  enc_opt e (fun e v -> Enc.u32 e v) s.set_mode;
  enc_opt e (fun e v -> Enc.u32 e v) s.set_uid;
  enc_opt e (fun e v -> Enc.u32 e v) s.set_gid;
  enc_opt e (fun e v -> Enc.u64 e v) s.set_size;
  enc_opt e enc_time s.set_atime;
  enc_opt e enc_time s.set_mtime

let dec_sattr d : Nfs.sattr =
  let set_mode = dec_opt d Dec.u32 in
  let set_uid = dec_opt d Dec.u32 in
  let set_gid = dec_opt d Dec.u32 in
  let set_size = dec_opt d Dec.u64 in
  let set_atime = dec_opt d dec_time in
  let set_mtime = dec_opt d dec_time in
  { set_mode; set_uid; set_gid; set_size; set_atime; set_mtime }

let enc_wdata e = function
  | Nfs.Data s ->
      Enc.bool e false;
      Enc.opaque e s
  | Nfs.Synthetic n ->
      Enc.bool e true;
      Enc.u32 e n

let dec_wdata d =
  if Dec.bool d then Nfs.Synthetic (Dec.u32 d) else Nfs.Data (Dec.opaque d)

let int_of_stable = function Nfs.Unstable -> 0 | Nfs.Data_sync -> 1 | Nfs.File_sync -> 2

let[@hot] stable_of_int = function
  | 0 -> Nfs.Unstable
  | 1 -> Nfs.Data_sync
  | 2 -> Nfs.File_sync
  | n -> raise (Malformed (Printf.sprintf "bad stable_how %d" n))

let int_of_ftype = function Fh.Reg -> 1 | Fh.Dir -> 2 | Fh.Lnk -> 5

let[@hot] ftype_of_int = function
  | 1 -> Fh.Reg
  | 2 -> Fh.Dir
  | 5 -> Fh.Lnk
  | n -> raise (Malformed (Printf.sprintf "bad ftype %d" n))

(* fattr block: fixed 84-byte layout (offsets documented in the mli). *)
let attr_wire_size = 84
let attr_size_field_off = 20
let attr_fileid_field_off = 52
let attr_atime_field_off = 60
let attr_mtime_field_off = 68

let enc_fattr e (a : Nfs.fattr) =
  Enc.u32 e (int_of_ftype a.ftype);
  Enc.u32 e a.mode;
  Enc.u32 e a.nlink;
  Enc.u32 e a.uid;
  Enc.u32 e a.gid;
  Enc.u64 e a.size;
  Enc.u64 e a.used;
  Enc.u64 e 0L (* rdev *);
  Enc.u64 e 0L (* fsid *);
  Enc.u64 e a.fileid;
  enc_time e a.atime;
  enc_time e a.mtime;
  enc_time e a.ctime

let dec_fattr d : Nfs.fattr =
  let ftype = ftype_of_int (Dec.u32 d) in
  let mode = Dec.u32 d in
  let nlink = Dec.u32 d in
  let uid = Dec.u32 d in
  let gid = Dec.u32 d in
  let size = Dec.u64 d in
  let used = Dec.u64 d in
  let _rdev = Dec.u64 d in
  let _fsid = Dec.u64 d in
  let fileid = Dec.u64 d in
  let atime = dec_time d in
  let mtime = dec_time d in
  let ctime = dec_time d in
  { ftype; mode; nlink; uid; gid; size; used; fileid; atime; mtime; ctime }

(* ---- RPC call header ---- *)

(* AUTH_UNIX credential: stamp, machine name, uid, gid, gid list. The
   variable-length machine name and gid list are what make call headers
   variable-length (the paper's decode-cost culprit). *)
let machine_name = "slice-client"
let aux_gids = [ 0; 10; 100 ]

let enc_call_header e ~xid ~proc =
  Enc.u32 e xid;
  Enc.u32 e 0 (* CALL *);
  Enc.u32 e 2 (* RPC version *);
  Enc.u32 e nfs_program;
  Enc.u32 e nfs_version;
  Enc.u32 e proc;
  (* cred *)
  Enc.u32 e 1 (* AUTH_UNIX *);
  let body = Enc.create ~size:64 () in
  Enc.u32 body 0 (* stamp *);
  Enc.str body machine_name;
  Enc.u32 body 0 (* uid *);
  Enc.u32 body 0 (* gid *);
  Enc.u32 body (List.length aux_gids);
  List.iter (Enc.u32 body) aux_gids;
  Enc.opaque e (Bytes.to_string (Enc.to_bytes body));
  (* verf *)
  Enc.u32 e 0;
  Enc.u32 e 0

(* Returns (xid, proc) with the decoder positioned at the args. *)
let dec_call_header d =
  let xid = Dec.u32 d in
  let mtype = Dec.u32 d in
  if mtype <> 0 then raise (Malformed "not a call");
  let rpcvers = Dec.u32 d in
  if rpcvers <> 2 then raise (Malformed "bad RPC version");
  let prog = Dec.u32 d in
  let vers = Dec.u32 d in
  if prog <> nfs_program || vers <> nfs_version then raise (Malformed "not NFSv3");
  let proc = Dec.u32 d in
  let _cred_flavor = Dec.u32 d in
  let _cred_body = Dec.opaque d in
  let _verf_flavor = Dec.u32 d in
  let _verf_body = Dec.opaque d in
  (xid, proc)

(* ---- calls ---- *)

let encode_call ~xid (c : Nfs.call) =
  let e = Enc.create ~size:256 () in
  enc_call_header e ~xid ~proc:(Nfs.proc_of_call c);
  (match c with
  | Null -> ()
  | Getattr fh | Readlink fh | Fsstat fh -> enc_fh e fh
  | Setattr (fh, s) ->
      enc_fh e fh;
      enc_sattr e s
  | Lookup (fh, n) | Create (fh, n) | Mkdir (fh, n) | Remove (fh, n) | Rmdir (fh, n) ->
      enc_fh e fh;
      Enc.str e n
  | Access (fh, m) ->
      enc_fh e fh;
      Enc.u32 e m
  | Read (fh, off, count) ->
      enc_fh e fh;
      Enc.u64 e off;
      Enc.u32 e count
  | Write (fh, off, stable, data) ->
      enc_fh e fh;
      Enc.u64 e off;
      Enc.u32 e (Nfs.wdata_length data);
      Enc.u32 e (int_of_stable stable);
      enc_wdata e data
  | Symlink (fh, n, target) ->
      enc_fh e fh;
      Enc.str e n;
      Enc.str e target
  | Rename (fh1, n1, fh2, n2) ->
      enc_fh e fh1;
      Enc.str e n1;
      enc_fh e fh2;
      Enc.str e n2
  | Link (file, dir, n) ->
      enc_fh e file;
      enc_fh e dir;
      Enc.str e n
  | Readdir (fh, cookie, count) ->
      enc_fh e fh;
      Enc.u64 e cookie;
      Enc.u32 e count
  | Commit (fh, off, count) ->
      enc_fh e fh;
      Enc.u64 e off;
      Enc.u32 e count);
  Enc.to_bytes e

let decode_call buf =
  let d = Dec.of_bytes buf in
  try
    let xid, proc = dec_call_header d in
    let call : Nfs.call =
      match proc with
      | 0 -> Null
      | 1 -> Getattr (dec_fh d)
      | 2 ->
          let fh = dec_fh d in
          Setattr (fh, dec_sattr d)
      | 3 ->
          let fh = dec_fh d in
          Lookup (fh, Dec.str d)
      | 4 ->
          let fh = dec_fh d in
          Access (fh, Dec.u32 d)
      | 5 -> Readlink (dec_fh d)
      | 6 ->
          let fh = dec_fh d in
          let off = Dec.u64 d in
          Read (fh, off, Dec.u32 d)
      | 7 ->
          let fh = dec_fh d in
          let off = Dec.u64 d in
          let _count = Dec.u32 d in
          let stable = stable_of_int (Dec.u32 d) in
          Write (fh, off, stable, dec_wdata d)
      | 8 ->
          let fh = dec_fh d in
          Create (fh, Dec.str d)
      | 9 ->
          let fh = dec_fh d in
          Mkdir (fh, Dec.str d)
      | 10 ->
          let fh = dec_fh d in
          let n = Dec.str d in
          Symlink (fh, n, Dec.str d)
      | 12 ->
          let fh = dec_fh d in
          Remove (fh, Dec.str d)
      | 13 ->
          let fh = dec_fh d in
          Rmdir (fh, Dec.str d)
      | 14 ->
          let fh1 = dec_fh d in
          let n1 = Dec.str d in
          let fh2 = dec_fh d in
          Rename (fh1, n1, fh2, Dec.str d)
      | 15 ->
          let file = dec_fh d in
          let dir = dec_fh d in
          Link (file, dir, Dec.str d)
      | 16 ->
          let fh = dec_fh d in
          let cookie = Dec.u64 d in
          Readdir (fh, cookie, Dec.u32 d)
      | 18 -> Fsstat (dec_fh d)
      | 21 ->
          let fh = dec_fh d in
          let off = Dec.u64 d in
          Commit (fh, off, Dec.u32 d)
      | n -> raise (Malformed (Printf.sprintf "unsupported proc %d" n))
    in
    (xid, call)
  with Slice_xdr.Xdr.Truncated -> raise (Malformed "truncated call")

let extra_size_of_call = function
  | Nfs.Write (_, _, _, Nfs.Synthetic n) -> n
  | _ -> 0

(* ---- replies ---- *)

(* Header: xid(4) mtype(4) reply_stat(4) verf(8) accept_stat(4) = 24 bytes,
   then status(4); an OK reply carrying attributes has attr_present(4) at
   28 and the fattr block at 32. *)
let reply_status_off = 24
let reply_attr_present_off = 28
let reply_attr_block_off = 32

let[@hot] int_of_status : Nfs.status -> int = function
  | OK -> 0
  | ERR_PERM -> 1
  | ERR_NOENT -> 2
  | ERR_IO -> 5
  | ERR_EXIST -> 17
  | ERR_NOTDIR -> 20
  | ERR_ISDIR -> 21
  | ERR_NOSPC -> 28
  | ERR_NOTEMPTY -> 66
  | ERR_STALE -> 70
  | ERR_BADHANDLE -> 10001
  | ERR_JUKEBOX -> 10008
  | ERR_MISDIRECTED -> 20001

let status_of_int : int -> Nfs.status = function
  | 0 -> OK
  | 1 -> ERR_PERM
  | 2 -> ERR_NOENT
  | 5 -> ERR_IO
  | 17 -> ERR_EXIST
  | 20 -> ERR_NOTDIR
  | 21 -> ERR_ISDIR
  | 28 -> ERR_NOSPC
  | 66 -> ERR_NOTEMPTY
  | 70 -> ERR_STALE
  | 10001 -> ERR_BADHANDLE
  | 10008 -> ERR_JUKEBOX
  | 20001 -> ERR_MISDIRECTED
  | n -> raise (Malformed (Printf.sprintf "bad status %d" n))

let enc_reply_header e ~xid =
  Enc.u32 e xid;
  Enc.u32 e 1 (* REPLY *);
  Enc.u32 e 0 (* MSG_ACCEPTED *);
  Enc.u32 e 0 (* verf flavor *);
  Enc.u32 e 0 (* verf length *);
  Enc.u32 e 0 (* SUCCESS *)

let[@hot] reply_tag : Nfs.reply -> int = function
  | RNull -> 0
  | RGetattr _ -> 1
  | RSetattr _ -> 2
  | RLookup _ -> 3
  | RAccess _ -> 4
  | RReadlink _ -> 5
  | RRead _ -> 6
  | RWrite _ -> 7
  | RCreate _ -> 8
  | RMkdir _ -> 9
  | RSymlink _ -> 10
  | RRemove -> 12
  | RRmdir -> 13
  | RRename -> 14
  | RLink _ -> 15
  | RReaddir _ -> 16
  | RFsstat _ -> 18
  | RCommit _ -> 21

let encode_reply ~xid (r : Nfs.response) =
  let e = Enc.create ~size:256 () in
  enc_reply_header e ~xid;
  (match r with
  | Error st -> Enc.u32 e (int_of_status st)
  | Ok reply -> (
      Enc.u32 e 0 (* NFS3_OK, at reply_status_off *);
      (* attr_present + fattr at fixed offsets, enabling in-flight patch *)
      (match Nfs.reply_attr reply with
      | Some a ->
          Enc.u32 e 1;
          enc_fattr e a
      | None -> Enc.u32 e 0);
      Enc.u32 e (reply_tag reply);
      match reply with
      | RNull | RRemove | RRmdir | RRename -> ()
      | RGetattr _ | RSetattr _ | RLink _ | RCommit _ -> ()
      | RLookup (fh, _) | RCreate (fh, _) | RMkdir (fh, _) | RSymlink (fh, _) -> enc_fh e fh
      | RAccess (m, _) -> Enc.u32 e m
      | RReadlink (target, _) -> Enc.str e target
      | RRead (data, eof, _) ->
          Enc.u32 e (Nfs.wdata_length data);
          Enc.bool e eof;
          enc_wdata e data
      | RWrite (count, stable, _) ->
          Enc.u32 e count;
          Enc.u32 e (int_of_stable stable)
      | RReaddir (entries, cookie, eof) ->
          Enc.u32 e (List.length entries);
          List.iter
            (fun (en : Nfs.entry) ->
              Enc.u64 e en.entry_id;
              Enc.str e en.entry_name;
              Enc.u64 e en.entry_cookie)
            entries;
          Enc.u64 e cookie;
          Enc.bool e eof
      | RFsstat fs ->
          Enc.u64 e fs.total_bytes;
          Enc.u64 e fs.free_bytes;
          Enc.u64 e fs.total_files;
          Enc.u64 e fs.free_files));
  Enc.to_bytes e

let decode_reply buf =
  let d = Dec.of_bytes buf in
  try
    let xid = Dec.u32 d in
    let mtype = Dec.u32 d in
    if mtype <> 1 then raise (Malformed "not a reply");
    let _reply_stat = Dec.u32 d in
    let _verf_flavor = Dec.u32 d in
    let _verf_len = Dec.u32 d in
    let _accept_stat = Dec.u32 d in
    let status = status_of_int (Dec.u32 d) in
    match status with
    | OK ->
        let attr = if Dec.bool d then Some (dec_fattr d) else None in
        let need_attr label =
          match attr with
          | Some a -> a
          | None -> raise (Malformed (label ^ ": missing attributes"))
        in
        let tag = Dec.u32 d in
        let reply : Nfs.reply =
          match tag with
          | 0 -> RNull
          | 1 -> RGetattr (need_attr "getattr")
          | 2 -> RSetattr (need_attr "setattr")
          | 3 -> RLookup (dec_fh d, need_attr "lookup")
          | 4 -> RAccess (Dec.u32 d, need_attr "access")
          | 5 -> RReadlink (Dec.str d, need_attr "readlink")
          | 6 ->
              let _count = Dec.u32 d in
              let eof = Dec.bool d in
              RRead (dec_wdata d, eof, need_attr "read")
          | 7 ->
              let count = Dec.u32 d in
              RWrite (count, stable_of_int (Dec.u32 d), need_attr "write")
          | 8 -> RCreate (dec_fh d, need_attr "create")
          | 9 -> RMkdir (dec_fh d, need_attr "mkdir")
          | 10 -> RSymlink (dec_fh d, need_attr "symlink")
          | 12 -> RRemove
          | 13 -> RRmdir
          | 14 -> RRename
          | 15 -> RLink (need_attr "link")
          | 16 ->
              let n = Dec.u32 d in
              let entries =
                List.init n (fun _ ->
                    let entry_id = Dec.u64 d in
                    let entry_name = Dec.str d in
                    let entry_cookie = Dec.u64 d in
                    ({ entry_id; entry_name; entry_cookie } : Nfs.entry))
              in
              let cookie = Dec.u64 d in
              RReaddir (entries, cookie, Dec.bool d)
          | 18 ->
              let total_bytes = Dec.u64 d in
              let free_bytes = Dec.u64 d in
              let total_files = Dec.u64 d in
              RFsstat { total_bytes; free_bytes; total_files; free_files = Dec.u64 d }
          | 21 -> RCommit (need_attr "commit")
          | n -> raise (Malformed (Printf.sprintf "bad reply tag %d" n))
        in
        (xid, Ok reply)
    | st -> (xid, Error st)
  with Slice_xdr.Xdr.Truncated -> raise (Malformed "truncated reply")

let extra_size_of_response = function
  | Ok (Nfs.RRead (Nfs.Synthetic n, _, _)) -> n
  | _ -> 0

(* ---- µproxy partial decode ---- *)

type peek = {
  xid : int;
  proc : int;
  fh : Fh.t option;
  fh2 : Fh.t option;
  name : string option;
  name2 : string option;
  offset : int64 option;
  offset_field_off : int option;
  count : int option;
  write_stable : Nfs.stable_how option;
  set_size : int64 option;
  access_mask : int option;
  items : int;
}

let peek_call buf =
  let d = Dec.of_bytes buf in
  try
    let xid, proc = dec_call_header d in
    let base =
      { xid; proc; fh = None; fh2 = None; name = None; name2 = None; offset = None;
        offset_field_off = None; count = None; write_stable = None;
        set_size = None; access_mask = None; items = 0 }
    in
    let p =
      match proc with
      | 0 -> base
      | 1 | 5 | 18 -> { base with fh = Some (dec_fh d) }
      | 2 ->
          let fh = dec_fh d in
          let s = dec_sattr d in
          { base with fh = Some fh; set_size = s.Nfs.set_size }
      | 3 | 8 | 9 | 12 | 13 ->
          let fh = dec_fh d in
          { base with fh = Some fh; name = Some (Dec.str d) }
      | 4 ->
          let fh = dec_fh d in
          { base with fh = Some fh; access_mask = Some (Dec.u32 d) }
      | 6 ->
          let fh = dec_fh d in
          let fpos = Dec.pos d in
          let off = Dec.u64 d in
          { base with fh = Some fh; offset = Some off; offset_field_off = Some fpos;
            count = Some (Dec.u32 d) }
      | 7 ->
          let fh = dec_fh d in
          let fpos = Dec.pos d in
          let off = Dec.u64 d in
          let count = Dec.u32 d in
          let stable = stable_of_int (Dec.u32 d) in
          { base with fh = Some fh; offset = Some off; offset_field_off = Some fpos;
            count = Some count; write_stable = Some stable }
      | 10 ->
          let fh = dec_fh d in
          { base with fh = Some fh; name = Some (Dec.str d) }
      | 14 ->
          let fh1 = dec_fh d in
          let n1 = Dec.str d in
          let fh2 = dec_fh d in
          { base with fh = Some fh1; name = Some n1; fh2 = Some fh2;
            name2 = Some (Dec.str d) }
      | 15 ->
          let file = dec_fh d in
          let dir = dec_fh d in
          { base with fh = Some file; fh2 = Some dir; name = Some (Dec.str d) }
      | 16 ->
          let fh = dec_fh d in
          let fpos = Dec.pos d in
          let cookie = Dec.u64 d in
          { base with fh = Some fh; offset = Some cookie; offset_field_off = Some fpos;
            count = Some (Dec.u32 d) }
      | 21 ->
          let fh = dec_fh d in
          let fpos = Dec.pos d in
          let off = Dec.u64 d in
          { base with fh = Some fh; offset = Some off; offset_field_off = Some fpos;
            count = Some (Dec.u32 d) }
      | _ -> raise (Malformed "unknown proc")
    in
    Some { p with items = Dec.items_read d }
  with Slice_xdr.Xdr.Truncated | Malformed _ -> None

(* ---- cursor peek: the allocation-free twin of [peek_call] ----

   One long-lived cursor per µproxy instance; [peek_call_into] re-reads
   it from a packet buffer, recording field positions instead of
   materializing handles and names. Absent fields are -1 (offsets/counts)
   — the record is all-mutable and reset on every call, so steady-state
   interception allocates nothing. Field-for-field it consumes exactly
   the XDR items [peek_call] does, keeping the decode cost model (and so
   every simulated timing) bit-identical across the two paths. *)

type cursor = {
  cr : Dec.t;
  mutable c_xid : int;
  mutable c_proc : int;
  mutable c_fh_off : int;  (* span offset of the first handle, -1 = none *)
  mutable c_fh2_off : int;
  mutable c_name_off : int;
  mutable c_name_len : int;  (* -1 = none *)
  mutable c_name2_off : int;
  mutable c_name2_len : int;
  mutable c_offset : int;  (* valid iff c_off_field >= 0 *)
  mutable c_off_field : int;
  mutable c_count : int;  (* -1 = none *)
  mutable c_stable : int;  (* wire stable_how, -1 = none *)
  mutable c_has_set_size : bool;
  mutable c_set_size : int;  (* valid iff c_has_set_size *)
  mutable c_access : int;  (* -1 = none *)
  mutable c_items : int;
}

let cursor () =
  {
    cr = Dec.of_bytes (Bytes.create 0);
    c_xid = 0;
    c_proc = -1;
    c_fh_off = -1;
    c_fh2_off = -1;
    c_name_off = -1;
    c_name_len = -1;
    c_name2_off = -1;
    c_name2_len = -1;
    c_offset = 0;
    c_off_field = -1;
    c_count = -1;
    c_stable = -1;
    c_has_set_size = false;
    c_set_size = 0;
    c_access = -1;
    c_items = 0;
  }

exception Bad_peek

(* Consume a handle-sized opaque and validate it in place. *)
let[@hot] cur_fh d buf =
  Dec.opaque_span d;
  let off = Dec.span_off d in
  if not (Fh.peek_valid buf off (Dec.span_len d)) then raise Bad_peek;
  off

(* sattr walk mirroring [dec_sattr]: same item counts (times read as two
   u32 words each, like [dec_time]), only the size field retained. *)
let[@hot] cur_sattr c d =
  if Dec.bool d then ignore (Dec.u32 d);
  if Dec.bool d then ignore (Dec.u32 d);
  if Dec.bool d then ignore (Dec.u32 d);
  (if Dec.bool d then begin
     c.c_has_set_size <- true;
     c.c_set_size <- Dec.u64_int d
   end);
  (if Dec.bool d then begin
     ignore (Dec.u32 d);
     ignore (Dec.u32 d)
   end);
  if Dec.bool d then begin
    ignore (Dec.u32 d);
    ignore (Dec.u32 d)
  end

let[@hot] peek_call_into c buf =
  let d = c.cr in
  Dec.reset d buf ~pos:0 ~len:(Bytes.length buf);
  c.c_fh_off <- -1;
  c.c_fh2_off <- -1;
  c.c_name_off <- -1;
  c.c_name_len <- -1;
  c.c_name2_off <- -1;
  c.c_name2_len <- -1;
  c.c_offset <- 0;
  c.c_off_field <- -1;
  c.c_count <- -1;
  c.c_stable <- -1;
  c.c_has_set_size <- false;
  c.c_set_size <- 0;
  c.c_access <- -1;
  c.c_items <- 0;
  try
    c.c_xid <- Dec.u32 d;
    if Dec.u32 d <> 0 then raise Bad_peek;
    if Dec.u32 d <> 2 then raise Bad_peek;
    if Dec.u32 d <> nfs_program then raise Bad_peek;
    if Dec.u32 d <> nfs_version then raise Bad_peek;
    let proc = Dec.u32 d in
    c.c_proc <- proc;
    ignore (Dec.u32 d) (* cred flavor *);
    Dec.opaque_span d (* cred body stays in place: no per-packet string *);
    ignore (Dec.u32 d) (* verf flavor *);
    Dec.opaque_span d;
    (match proc with
    | 0 -> ()
    | 1 | 5 | 18 -> c.c_fh_off <- cur_fh d buf
    | 2 ->
        c.c_fh_off <- cur_fh d buf;
        cur_sattr c d
    | 3 | 8 | 9 | 10 | 12 | 13 ->
        c.c_fh_off <- cur_fh d buf;
        Dec.opaque_span d;
        c.c_name_off <- Dec.span_off d;
        c.c_name_len <- Dec.span_len d
    | 4 ->
        c.c_fh_off <- cur_fh d buf;
        c.c_access <- Dec.u32 d
    | 6 ->
        c.c_fh_off <- cur_fh d buf;
        c.c_off_field <- Dec.pos d;
        c.c_offset <- Dec.u64_int d;
        c.c_count <- Dec.u32 d
    | 7 ->
        c.c_fh_off <- cur_fh d buf;
        c.c_off_field <- Dec.pos d;
        c.c_offset <- Dec.u64_int d;
        c.c_count <- Dec.u32 d;
        let stable = Dec.u32 d in
        if stable > 2 then raise Bad_peek;
        c.c_stable <- stable
    | 14 ->
        c.c_fh_off <- cur_fh d buf;
        Dec.opaque_span d;
        c.c_name_off <- Dec.span_off d;
        c.c_name_len <- Dec.span_len d;
        c.c_fh2_off <- cur_fh d buf;
        Dec.opaque_span d;
        c.c_name2_off <- Dec.span_off d;
        c.c_name2_len <- Dec.span_len d
    | 15 ->
        c.c_fh_off <- cur_fh d buf;
        c.c_fh2_off <- cur_fh d buf;
        Dec.opaque_span d;
        c.c_name_off <- Dec.span_off d;
        c.c_name_len <- Dec.span_len d
    | 16 | 21 ->
        c.c_fh_off <- cur_fh d buf;
        c.c_off_field <- Dec.pos d;
        c.c_offset <- Dec.u64_int d;
        c.c_count <- Dec.u32 d
    | _ -> raise Bad_peek);
    c.c_items <- Dec.items_read d;
    true
  with Slice_xdr.Xdr.Truncated | Bad_peek -> false

let[@hot] is_call buf =
  Bytes.length buf >= 8 && Int32.to_int (Bytes.get_int32_be buf 4) = 0

let[@hot] xid_of buf =
  if Bytes.length buf < 4 then raise (Malformed "short packet");
  Int32.to_int (Bytes.get_int32_be buf 0) land 0xFFFFFFFF

(* ---- reply attribute patching ---- *)

let reply_attr_offset buf =
  if Bytes.length buf < reply_attr_block_off then None
  else if Int32.to_int (Bytes.get_int32_be buf 4) <> 1 then None
  else if Bytes.get_int32_be buf reply_status_off <> 0l then None
  else if Bytes.get_int32_be buf reply_attr_present_off <> 1l then None
  else Some reply_attr_block_off

let decode_attr_at buf off =
  let d = Dec.of_bytes ~pos:off buf in
  try dec_fattr d with Slice_xdr.Xdr.Truncated -> raise (Malformed "truncated attr")

(* For replies whose body leads with a file handle (lookup/create/mkdir/
   symlink): fetch it without a full decode. *)
let reply_fh_after_attr buf =
  match reply_attr_offset buf with
  | None -> None
  | Some off -> (
      let tag_off = off + attr_wire_size in
      if Bytes.length buf < tag_off + 4 then None
      else
        match Int32.to_int (Bytes.get_int32_be buf tag_off) with
        | 3 | 8 | 9 | 10 -> (
            let d = Dec.of_bytes ~pos:(tag_off + 4) buf in
            try Fh.decode (Dec.opaque d) with Slice_xdr.Xdr.Truncated -> None)
        | _ -> None)

let u64_be v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.unsafe_to_string b

let time_be t =
  let b = Bytes.create 8 in
  let secs = int_of_float (Float.floor t) in
  let nsecs = int_of_float ((t -. Float.floor t) *. 1e9) in
  Bytes.set_int32_be b 0 (Int32.of_int secs);
  Bytes.set_int32_be b 4 (Int32.of_int (min nsecs 999_999_999));
  Bytes.unsafe_to_string b

(* Scratch renderings: the µproxy writes patch values into a reused
   8-byte scratch and splices with [Cksum.patch_payload_bytes]. Single
   byte stores keep the int path free of boxed int32/int64. Byte-for-byte
   identical to [u64_be]/[time_be] on in-range values. *)
let[@hot] put_u64_be b v =
  for j = 0 to 7 do
    Bytes.set_uint8 b j ((v lsr (8 * (7 - j))) land 0xFF)
  done

(* Not a lint root: the static model charges the local float chain (the
   compiler unboxes it; the runtime Gc probes confirm zero allocation). *)
let put_time_be b t =
  let secs = int_of_float (Float.floor t) in
  let nsecs = int_of_float ((t -. Float.floor t) *. 1e9) in
  let ns = if nsecs > 999_999_999 then 999_999_999 else nsecs in
  for j = 0 to 3 do
    Bytes.set_uint8 b j ((secs lsr (8 * (3 - j))) land 0xFF);
    Bytes.set_uint8 b (4 + j) ((ns lsr (8 * (3 - j))) land 0xFF)
  done

(* Option-free twins of [reply_attr_offset]/[reply_fh_after_attr] for the
   hot reply path: -1 means absent. *)
let[@hot] reply_attr_offset_i buf =
  if Bytes.length buf < reply_attr_block_off then -1
  else if Int32.to_int (Bytes.get_int32_be buf 4) <> 1 then -1
  else if Int32.to_int (Bytes.get_int32_be buf reply_status_off) <> 0 then -1
  else if Int32.to_int (Bytes.get_int32_be buf reply_attr_present_off) <> 1 then -1
  else reply_attr_block_off

let[@hot] reply_fh_after_attr_off buf =
  let off = reply_attr_offset_i buf in
  if off < 0 then -1
  else begin
    let tag_off = off + attr_wire_size in
    if Bytes.length buf < tag_off + 8 then -1
    else
      let tag = Int32.to_int (Bytes.get_int32_be buf tag_off) in
      if tag = 3 || tag = 8 || tag = 9 || tag = 10 then begin
        let len = Int32.to_int (Bytes.get_int32_be buf (tag_off + 4)) land 0xFFFFFFFF in
        let fh_off = tag_off + 8 in
        if fh_off + len <= Bytes.length buf && Fh.peek_valid buf fh_off len then fh_off else -1
      end
      else -1
  end

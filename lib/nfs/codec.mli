(** Byte-level codec for NFS V3 over ONC RPC.

    Calls carry a realistic variable-length AUTH_UNIX credential — the
    paper attributes nearly half the µproxy's decode cost to locating the
    request type and arguments past variable-length RPC/NFS header fields,
    and this codec reproduces that structure.

    Replies place the post-op attribute block at a fixed offset
    ({!reply_attr_offset}) so the µproxy can patch cached attributes into
    forwarded responses with incremental checksum repair. *)

exception Malformed of string

val encode_call : xid:int -> Nfs.call -> bytes
val decode_call : bytes -> int * Nfs.call
(** @raise Malformed on garbage. *)

val encode_reply : xid:int -> Nfs.response -> bytes
val decode_reply : bytes -> int * Nfs.response

val extra_size_of_call : Nfs.call -> int
(** Unmaterialized (synthetic) payload bytes, for [Packet.extra_size]. *)

val extra_size_of_response : Nfs.response -> int

val int_of_status : Nfs.status -> int
val status_of_int : int -> Nfs.status
(** The NFS V3 wire values ([ERR_MISDIRECTED] is Slice's 20001).
    @raise Malformed on an unknown code. *)

(** {2 µproxy partial decode} *)

type peek = {
  xid : int;
  proc : int;
  fh : Fh.t option;  (** first file-handle argument *)
  fh2 : Fh.t option;  (** second handle ([rename]/[link] destination dir) *)
  name : string option;  (** first name-component argument *)
  name2 : string option;  (** [rename] destination name *)
  offset : int64 option;  (** [read]/[write]/[commit] offset *)
  offset_field_off : int option;
      (** byte offset of the 8-byte offset/cookie field within the
          payload, so the µproxy can rewrite it in place (stripe-local
          offsets, readdir cookie translation) with incremental checksum
          repair *)
  count : int option;
  write_stable : Nfs.stable_how option;
  set_size : int64 option;
      (** [setattr] size field when present — a truncation, which must
          invalidate the µproxy's cached block map for the file *)
  access_mask : int option;  (** [access] requested permission mask *)
  items : int;  (** XDR items consumed — drives the decode cost model *)
}

val peek_call : bytes -> peek option
(** Decode exactly the fields the µproxy routes on ("the µproxy examines
    up to four fields of each request"); [None] if the payload is not an
    NFS V3 call. *)

(** {2 Cursor peek}

    The allocation-free twin of {!peek_call}: one long-lived all-mutable
    cursor per µproxy instance records field {e positions} in the packet
    buffer instead of materializing handles and names, so steady-state
    interception allocates nothing. It consumes exactly the XDR items
    {!peek_call} does, keeping the decode cost model identical. *)

type cursor = {
  cr : Slice_xdr.Xdr.Dec.t;
  mutable c_xid : int;
  mutable c_proc : int;
  mutable c_fh_off : int;
      (** span offset of the first handle's 32 wire bytes; -1 = none *)
  mutable c_fh2_off : int;  (** rename/link second handle; -1 = none *)
  mutable c_name_off : int;
  mutable c_name_len : int;  (** -1 = none *)
  mutable c_name2_off : int;
  mutable c_name2_len : int;  (** rename destination name; -1 = none *)
  mutable c_offset : int;  (** valid iff [c_off_field >= 0] *)
  mutable c_off_field : int;
      (** byte offset of the 8-byte offset/cookie field; -1 = none *)
  mutable c_count : int;  (** -1 = none *)
  mutable c_stable : int;  (** wire stable_how (0/1/2); -1 = none *)
  mutable c_has_set_size : bool;
  mutable c_set_size : int;  (** valid iff [c_has_set_size] *)
  mutable c_access : int;  (** -1 = none *)
  mutable c_items : int;  (** XDR items consumed — decode cost model *)
}

val cursor : unit -> cursor

val peek_call_into : cursor -> bytes -> bool
(** [false] if the payload is not a well-formed NFS V3 call (truncated
    buffers and oversized length fields included — bounds are enforced
    before any read). On [false] the cursor contents are unspecified. *)

val is_call : bytes -> bool
val xid_of : bytes -> int
(** XID of either a call or a reply (first word). *)

(** {2 Reply attribute patching} *)

val reply_attr_offset : bytes -> int option
(** Byte offset of the 84-byte post-op fattr block in an OK reply carrying
    one, else [None]. Constant-time header inspection. *)

val attr_wire_size : int
(** 84. *)

val attr_size_field_off : int
(** Offset of the 8-byte [size] within a fattr block (20). *)

val attr_fileid_field_off : int
(** Offset of the 8-byte [fileid] within a fattr block (52) — the
    µproxy's attribute-cache key, readable without decoding the block. *)

val attr_atime_field_off : int
val attr_mtime_field_off : int

val decode_attr_at : bytes -> int -> Nfs.fattr

(** For OK replies whose body leads with a handle (lookup / create /
    mkdir / symlink): the handle, without a full decode. *)
val reply_fh_after_attr : bytes -> Fh.t option
val u64_be : int64 -> string
(** 8-byte big-endian rendering, for [Cksum.patch_payload]. *)

val time_be : Nfs.time -> string
(** 8-byte (seconds, nanoseconds) rendering of a timestamp. *)

val reply_attr_offset_i : bytes -> int
(** {!reply_attr_offset} without the option: -1 = absent. *)

val reply_fh_after_attr_off : bytes -> int
(** Span offset of the validated handle led by an OK lookup / create /
    mkdir / symlink reply body, else -1 ({!reply_fh_after_attr} without
    materializing). *)

val put_u64_be : bytes -> int -> unit
(** Render an int value big-endian into the first 8 bytes of a reused
    scratch buffer — [u64_be] without the allocation, for
    [Cksum.patch_payload_bytes]. *)

val put_time_be : bytes -> Nfs.time -> unit
(** [time_be] into a reused scratch buffer. *)

let name_site ~nsites parent name =
  Slice_hash.Md5.bucket (Fh.key parent ^ "\x00" ^ name) nsites

let file_site ~nsites fh = Slice_hash.Md5.bucket (Fh.key fh) nsites

let chunk_of_offset ~stripe_unit off =
  Int64.to_int (Int64.div off (Int64.of_int stripe_unit))

let stripe_site ~nsites ~stripe_unit fh off =
  let primary = file_site ~nsites fh in
  (primary + chunk_of_offset ~stripe_unit off) mod nsites

let local_offset ~nsites ~stripe_unit off =
  let su = Int64.of_int stripe_unit in
  let chunk = Int64.div off su in
  let within = Int64.rem off su in
  Int64.add (Int64.mul (Int64.div chunk (Int64.of_int nsites)) su) within

let mirror_sites ~nsites fh =
  let r0 = file_site ~nsites fh in
  if nsites < 2 then (r0, r0)
  else (r0, (r0 + 1 + ((nsites - 1) / 2)) mod nsites)

(* ---- in-place variants: the same fingerprints computed over handle and
   name spans inside a packet buffer, plus plain-int offset arithmetic.
   These are the µproxy hot-path entry points; each must agree
   bit-for-bit with its materializing twin above (test-enforced), since
   servers detect misdirection with the string versions. *)

let file_site_at ~nsites buf ~off =
  Slice_hash.Md5.bucket_bytes buf ~pos:off ~len:Fh.wire_length nsites

(* The string key is [Fh.key parent ^ "\x00" ^ name]; build the same
   bytes in the caller's scratch buffer (the proxy sizes and grows it
   off the hot path) and bucket in place. *)
let name_site_at ~nsites ~scratch buf ~fh_off ~name_off ~name_len =
  Bytes.blit buf fh_off scratch 0 Fh.wire_length;
  Bytes.set scratch Fh.wire_length '\000';
  Bytes.blit buf name_off scratch (Fh.wire_length + 1) name_len;
  Slice_hash.Md5.bucket_bytes scratch ~pos:0 ~len:(Fh.wire_length + 1 + name_len) nsites

let chunk_of_offset_int ~stripe_unit off = off / stripe_unit

let stripe_site_at ~nsites ~stripe_unit buf ~off offset =
  let primary = file_site_at ~nsites buf ~off in
  (primary + chunk_of_offset_int ~stripe_unit offset) mod nsites

let local_offset_int ~nsites ~stripe_unit off =
  let chunk = off / stripe_unit in
  (chunk / nsites * stripe_unit) + (off mod stripe_unit)

(* Second replica site given the primary ([file_site_at]); returning it
   separately keeps the hot path free of the pair allocation in
   [mirror_sites]. *)
let mirror_partner ~nsites r0 =
  if nsites < 2 then r0 else (r0 + 1 + ((nsites - 1) / 2)) mod nsites

(* Logical sites can outnumber storage nodes, and reconfiguration may
   bind several sites to one node.  The wire offset therefore carries the
   logical site in its high bits: the node decodes it to keep each site's
   subobject separate (so co-located or migrating sites never collide in
   one object's offset space) while the low bits stay the dense node-local
   sequence the prefetcher wants. *)
let site_stride = 1_099_511_627_776L (* 2^40: far above any object size *)

let site_offset ~site local =
  Int64.add (Int64.mul (Int64.of_int site) site_stride) local

let offset_site off = Int64.to_int (Int64.div off site_stride)
let offset_local off = Int64.rem off site_stride

(* Plain-int twins of the stride codec, for the µproxy's unboxed offset
   fields: site·2^40 + local fits a 63-bit int for any plausible site
   count, so the hot path never touches a boxed int64. *)
let site_stride_int = 1 lsl 40
let site_offset_int ~site local = (site * site_stride_int) + local
let offset_site_int off = off / site_stride_int
let offset_local_int off = off mod site_stride_int

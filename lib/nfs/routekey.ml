let name_site ~nsites parent name =
  Slice_hash.Md5.bucket (Fh.key parent ^ "\x00" ^ name) nsites

let file_site ~nsites fh = Slice_hash.Md5.bucket (Fh.key fh) nsites

let chunk_of_offset ~stripe_unit off =
  Int64.to_int (Int64.div off (Int64.of_int stripe_unit))

let stripe_site ~nsites ~stripe_unit fh off =
  let primary = file_site ~nsites fh in
  (primary + chunk_of_offset ~stripe_unit off) mod nsites

let local_offset ~nsites ~stripe_unit off =
  let su = Int64.of_int stripe_unit in
  let chunk = Int64.div off su in
  let within = Int64.rem off su in
  Int64.add (Int64.mul (Int64.div chunk (Int64.of_int nsites)) su) within

let mirror_sites ~nsites fh =
  let r0 = file_site ~nsites fh in
  if nsites < 2 then (r0, r0)
  else (r0, (r0 + 1 + ((nsites - 1) / 2)) mod nsites)

(* Logical sites can outnumber storage nodes, and reconfiguration may
   bind several sites to one node.  The wire offset therefore carries the
   logical site in its high bits: the node decodes it to keep each site's
   subobject separate (so co-located or migrating sites never collide in
   one object's offset space) while the low bits stay the dense node-local
   sequence the prefetcher wants. *)
let site_stride = 1_099_511_627_776L (* 2^40: far above any object size *)

let site_offset ~site local =
  Int64.add (Int64.mul (Int64.of_int site) site_stride) local

let offset_site off = Int64.to_int (Int64.div off site_stride)
let offset_local off = Int64.rem off site_stride

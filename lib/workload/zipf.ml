(* Deterministic Zipf(s) sampler over ranks 0..n-1.

   Popularity of rank k is proportional to 1/(k+1)^s. We precompute the
   normalized cumulative mass once and sample by binary-searching a
   uniform draw from the workload's own Prng stream — no [Random], no
   hidden state, so a storm run is byte-identical under the same seed.
   Setup is O(n) floats; each draw is O(log n) and allocation-free.

   All three storm generators (web, flood, scan ordering) share this one
   sampler so their skew knobs mean the same thing. *)

module Prng = Slice_util.Prng

type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (k + 1)) s);
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  (* Guard against rounding: the last bucket must catch every draw. *)
  cdf.(n - 1) <- 1.0;
  { cdf }

let n t = Array.length t.cdf

(* Smallest rank whose cumulative mass covers the draw. *)
let rank_of t u =
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let sample t prng = rank_of t (Prng.float prng 1.0)

let mass t k =
  if k < 0 || k >= Array.length t.cdf then invalid_arg "Zipf.mass: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)

let cumulative t k =
  if k < 0 || k >= Array.length t.cdf then
    invalid_arg "Zipf.cumulative: rank out of range";
  t.cdf.(k)

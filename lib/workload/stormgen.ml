(* Traffic-storm generators: three co-resident tenant workloads that
   together saturate a Slice ensemble from opposite directions.

   - [web_run]: open-loop Zipf-skewed 32 KB page reads over a tree of
     large (mirrored) files — the interactive tenant whose tail latency
     the QoS machinery must defend. Mid-run it can develop a flash
     crowd: a fraction of requests collapses onto one directory subtree.
   - [flood_run]: closed-loop whole-file reads over a 4–64 KB small-file
     set with many outstanding workers — an AI-training-style ingest
     flood pounding the small-file class.
   - [scan_run]: a backup scanner sweeping the namespace end to end —
     readdir + getattr + sequential read of every file, as fast as the
     servers let it.

   All randomness comes from caller-provided {!Slice_util.Prng} streams
   (file picks via the shared {!Zipf} sampler), so a storm replays
   byte-identically under the same seed. Each generator fills a {!tally}
   with ops/bytes/latency measured over [t_measure, t_end) — the
   open-vs-closed loop distinction lives in the generator, the
   accounting is uniform. *)

module Engine = Slice_sim.Engine
module Fiber = Slice_sim.Fiber
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Prng = Slice_util.Prng
module Stats = Slice_util.Stats

type entry = { e_fh : Fh.t; e_size : int }

type tree = {
  tr_dirs : Fh.t array;
  tr_files : entry array;
  tr_dir_of : int array; (* file index -> index into [tr_dirs] *)
}

type tally = {
  mutable ops : int;
  mutable bytes : int;
  lat : Stats.t;
  mutable errors : int;
}

let tally () = { ops = 0; bytes = 0; lat = Stats.create (); errors = 0 }

let io_chunk = 32768

let must what = function
  | Ok v -> v
  | Error st -> failwith (what ^ ": " ^ Nfs.status_name st)

let write_whole cl fh size =
  let rec loop off =
    if off < size then begin
      let n = min io_chunk (size - off) in
      ignore (Client.write_at cl fh ~off:(Int64.of_int off) ~data:(Nfs.Synthetic n) ());
      loop (off + n)
    end
  in
  loop 0;
  if size > 0 then ignore (Client.commit cl fh)

(* Build one tenant's subtree under [root]: [dirs] directories of [files]
   files whose sizes come from [size_of] (deterministic in the index).
   Fiber context; runs during the shared setup phase. *)
let build_tree cl ~root ~name ~dirs ~files ~size_of =
  let top = fst (must "storm mkdir" (Client.mkdir cl root name)) in
  let dir_count = max 1 dirs in
  let dir_fhs =
    Array.init dir_count (fun i ->
        if i = 0 then top
        else fst (must "storm mkdir" (Client.mkdir cl top (Printf.sprintf "d%03d" i))))
  in
  let dir_of = Array.make (max 1 files) 0 in
  let entries =
    Array.init files (fun i ->
        let d = i mod dir_count in
        dir_of.(i) <- d;
        let fh =
          fst (must "storm create" (Client.create_file cl dir_fhs.(d) (Printf.sprintf "f%05d" i)))
        in
        let size = size_of i in
        write_whole cl fh size;
        { e_fh = fh; e_size = size })
  in
  { tr_dirs = dir_fhs; tr_files = entries; tr_dir_of = dir_of }

let note tally ~t_measure ~t_end ~start ~fin ~bytes ~err =
  if start >= t_measure && start < t_end then begin
    tally.ops <- tally.ops + 1;
    tally.bytes <- tally.bytes + bytes;
    Stats.add tally.lat (fin -. start);
    if err then tally.errors <- tally.errors + 1
  end

(* ---- interactive web tenant ---- *)

type web_config = {
  web_rate : float;  (* offered 32 KB reads/second, open loop *)
  web_outstanding : int;  (* arrival shedding cap (a real LB's limit) *)
  web_hotspot_at : float;  (* absolute onset of the flash crowd; infinity = never *)
  web_hotspot_frac : float;  (* post-onset fraction aimed at the hot subtree *)
}

let web_run eng cl ~prng ~zipf ~tree ~cfg ~t0 ~t_measure ~t_end tally =
  let n = Array.length tree.tr_files in
  (* the flash crowd collapses onto directory 0's subtree *)
  let hot =
    Array.of_list (List.filter (fun i -> tree.tr_dir_of.(i) = 0) (List.init n (fun i -> i)))
  in
  let inflight = ref 0 in
  let rec arrivals t_next =
    if t_next < t_end then begin
      Engine.sleep_until eng t_next;
      if !inflight < cfg.web_outstanding then begin
        incr inflight;
        let idx =
          if
            Engine.now eng >= cfg.web_hotspot_at
            && Array.length hot > 0
            && Prng.float prng 1.0 < cfg.web_hotspot_frac
          then hot.(Prng.int prng (Array.length hot))
          else Zipf.sample zipf prng
        in
        let f = tree.tr_files.(idx) in
        (* one page at a mirrored-range offset (>= the small-file
           threshold), so interactive reads exercise the storage class
           and its power-of-two-choices replica selection *)
        let chunks = max 1 (f.e_size / io_chunk) in
        let lo = min (65536 / io_chunk) (chunks - 1) in
        let off = (lo + (if chunks > lo then Prng.int prng (chunks - lo) else 0)) * io_chunk in
        Engine.spawn eng (fun () ->
            let s = Engine.now eng in
            let err =
              match Client.read_at cl f.e_fh ~off:(Int64.of_int off) ~count:io_chunk with
              | Ok _ -> false
              | Error _ -> true
            in
            decr inflight;
            note tally ~t_measure ~t_end ~start:s ~fin:(Engine.now eng) ~bytes:io_chunk ~err)
      end;
      arrivals (t_next +. Prng.exponential prng (1.0 /. cfg.web_rate))
    end
  in
  arrivals (t0 +. Prng.float prng 0.02)

(* ---- closed-loop helpers shared by flood and scan ---- *)

let read_file cl (f : entry) =
  let err = ref false in
  let rec rd off =
    if off < f.e_size then begin
      let c = min io_chunk (f.e_size - off) in
      (match Client.read_at cl f.e_fh ~off:(Int64.of_int off) ~count:c with
      | Ok _ -> ()
      | Error _ -> err := true);
      rd (off + c)
    end
  in
  rd 0;
  !err

(* ---- small-file flood tenant ---- *)

type flood_config = { flood_workers : int }

let flood_run eng cl ~prng ~tree ~cfg ~t_measure ~t_end tally =
  let n = Array.length tree.tr_files in
  let prngs = Array.init cfg.flood_workers (fun _ -> Prng.split prng) in
  Fiber.join_all eng
    (List.init cfg.flood_workers (fun w () ->
         let prng = prngs.(w) in
         let rec loop () =
           if Engine.now eng < t_end then begin
             let f = tree.tr_files.(Prng.int prng n) in
             let s = Engine.now eng in
             let err = read_file cl f in
             note tally ~t_measure ~t_end ~start:s ~fin:(Engine.now eng) ~bytes:f.e_size ~err;
             loop ()
           end
         in
         loop ()))

(* ---- backup-scan tenant ---- *)

let scan_run eng cl ~workers ~trees ~t_measure ~t_end tally =
  let w_count = max 1 workers in
  let scan_file (f : entry) =
    let s = Engine.now eng in
    let err_attr = match Client.getattr cl f.e_fh with Ok _ -> false | Error _ -> true in
    let err = read_file cl f || err_attr in
    note tally ~t_measure ~t_end ~start:s ~fin:(Engine.now eng) ~bytes:f.e_size ~err
  in
  let scan_dir d =
    let s = Engine.now eng in
    let err = match Client.readdir_all cl d with Ok _ -> false | Error _ -> true in
    note tally ~t_measure ~t_end ~start:s ~fin:(Engine.now eng) ~bytes:0 ~err
  in
  (* Worker [w] owns the dirs and files whose index mod [workers] = w —
     a deterministic partition of the sweep, no draws needed. *)
  Fiber.join_all eng
    (List.init w_count (fun w () ->
         let rec sweep () =
           if Engine.now eng < t_end then begin
             Array.iter
               (fun tr ->
                 Array.iteri
                   (fun i d ->
                     if i mod w_count = w && Engine.now eng < t_end then scan_dir d)
                   tr.tr_dirs;
                 Array.iteri
                   (fun i f ->
                     if i mod w_count = w && Engine.now eng < t_end then scan_file f)
                   tr.tr_files)
               trees;
             if Engine.now eng < t_end then sweep ()
           end
         in
         sweep ()))

(** Traffic-storm generators: three co-resident tenant workloads — an
    interactive Zipf web-read tenant (with an optional mid-run flash
    crowd), an AI-ingest small-file flood, and a namespace-sweeping
    backup scan. All draws come from caller-owned {!Slice_util.Prng}
    streams, so a storm replays byte-identically under one seed. Every
    generator runs in fiber context and accounts ops whose {e start}
    falls in [t_measure, t_end) into a shared-shape {!tally}. *)

type entry = { e_fh : Slice_nfs.Fh.t; e_size : int }

type tree = {
  tr_dirs : Slice_nfs.Fh.t array;
  tr_files : entry array;
  tr_dir_of : int array;  (** file index -> index into [tr_dirs] *)
}

type tally = {
  mutable ops : int;
  mutable bytes : int;
  lat : Slice_util.Stats.t;
  mutable errors : int;
}

val tally : unit -> tally

val io_chunk : int
(** 32 KB — the page/stripe-chunk unit every generator reads in. *)

val build_tree :
  Client.t ->
  root:Slice_nfs.Fh.t ->
  name:string ->
  dirs:int ->
  files:int ->
  size_of:(int -> int) ->
  tree
(** Create and populate one tenant's subtree (fiber context, setup
    phase). @raise Failure on any NFS error during setup. *)

type web_config = {
  web_rate : float;  (** offered 32 KB reads/second (open-loop Poisson) *)
  web_outstanding : int;  (** arrivals shed beyond this many in flight *)
  web_hotspot_at : float;
      (** absolute sim time the flash crowd starts; [infinity] = never *)
  web_hotspot_frac : float;
      (** post-onset fraction of requests collapsing onto directory 0's
          subtree *)
}

val web_run :
  Slice_sim.Engine.t ->
  Client.t ->
  prng:Slice_util.Prng.t ->
  zipf:Zipf.t ->
  tree:tree ->
  cfg:web_config ->
  t0:float ->
  t_measure:float ->
  t_end:float ->
  tally ->
  unit
(** Interactive tenant: open-loop Zipf-picked single-page reads at
    mirrored-range offsets (>= the small-file threshold), so they hit
    the storage class and exercise p2c replica choice. *)

type flood_config = { flood_workers : int }

val flood_run :
  Slice_sim.Engine.t ->
  Client.t ->
  prng:Slice_util.Prng.t ->
  tree:tree ->
  cfg:flood_config ->
  t_measure:float ->
  t_end:float ->
  tally ->
  unit
(** Closed-loop whole-file reads by [flood_workers] parallel workers
    over a 4–64 KB file set (the small-file class). Returns when
    [t_end] passes. *)

val scan_run :
  Slice_sim.Engine.t ->
  Client.t ->
  workers:int ->
  trees:tree array ->
  t_measure:float ->
  t_end:float ->
  tally ->
  unit
(** Backup tenant: [workers] parallel closed-loop sweepers partition
    every tree deterministically (index mod [workers]) — readdir each
    directory, then getattr + sequentially read each file — restarting
    until [t_end]. *)

(** Deterministic Zipf(s) sampler over ranks [0..n-1]: popularity of rank
    k is proportional to 1/(k+1)^s. Draws come from the caller's
    {!Slice_util.Prng} stream (never [Random]), so workloads built on it
    replay byte-identically under the same seed. Setup is O(n); each
    sample is an O(log n) allocation-free binary search. *)

type t

val create : n:int -> s:float -> t
(** @raise Invalid_argument when [n <= 0] or [s < 0]. [s = 0] degenerates
    to uniform; web-like skew is s ~ 0.8–1.2. *)

val n : t -> int
val sample : t -> Slice_util.Prng.t -> int

val mass : t -> int -> float
(** Probability of drawing rank [k] — the distribution-shape oracle for
    tests. @raise Invalid_argument when out of range. *)

val cumulative : t -> int -> float
(** Probability of drawing a rank [<= k]. @raise Invalid_argument when
    out of range. *)

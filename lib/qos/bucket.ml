(* Token-bucket admission gate: [rate] tokens/second accrue up to
   [burst]; a request takes one token or reports how long until one is
   available. Refill is computed lazily from the last touch, so the gate
   costs two float ops per decision and never arms a timer itself —
   the caller schedules the deferred retry. Purely arithmetic in the
   caller's clock: deterministic by construction. *)

type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;  (* clock of the last refill *)
}

let create ~rate ~burst =
  if rate <= 0.0 then invalid_arg "Bucket.create: rate must be positive";
  let burst = if burst < 1.0 then 1.0 else burst in
  { rate; burst; tokens = burst; last = 0.0 }

let refill t ~now =
  if now > t.last then begin
    let filled = t.tokens +. ((now -. t.last) *. t.rate) in
    t.tokens <- (if filled > t.burst then t.burst else filled);
    t.last <- now
  end

let try_take t ~now =
  refill t ~now;
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    true
  end
  else false

(* Seconds until a full token exists (0.0 when one is already there).
   After a failed [try_take] this is the natural deferral delay. *)
let next_ready t ~now =
  refill t ~now;
  if t.tokens >= 1.0 then 0.0 else (1.0 -. t.tokens) /. t.rate

let level t = t.tokens

(** Tenant identity and per-tenant accounting.

    Requests carry a tenant id from the originating client host, through
    the µproxy's pooled pending records, into the per-server WFQ queues.
    The registry maps dense host addresses to tenant ids (flat int
    array — server-side classification allocates nothing) and owns the
    per-tenant counters and latency/queue-delay reservoirs every layer
    pushes into. *)

type klass = Interactive | Batch | Background

type spec = {
  name : string;
  weight : float;  (** WFQ share under contention; must be positive *)
  klass : klass;
  admit_rate : float;  (** µproxy admission tokens/second; <= 0 = ungated *)
  admit_burst : float;  (** bucket depth, requests *)
}

val spec :
  ?klass:klass ->
  ?admit_rate:float ->
  ?admit_burst:float ->
  name:string ->
  weight:float ->
  unit ->
  spec
(** @raise Invalid_argument when [weight <= 0]. *)

type t

val create : spec array -> t
(** @raise Invalid_argument on an empty array or a non-positive weight. *)

val count : t -> int
val spec_of : t -> int -> spec
val name_of : t -> int -> string
val weight_of : t -> int -> float

val bind_addr : t -> addr:int -> tenant:int -> unit
(** Classify every packet sourced from [addr] as [tenant]. *)

val of_addr : t -> int -> int
(** Tenant of a source address; unbound addresses classify as tenant 0.
    Total and allocation-free: runs on the server packet path. *)

(** {2 Accounting} *)

val note_reply : t -> int -> bytes:int -> unit
val note_admitted : t -> int -> unit
val note_deferred : t -> int -> unit
val observe_queue_delay : t -> int -> float -> unit
val observe_latency : t -> int -> float -> unit

val ops : t -> int -> int
val bytes : t -> int -> int
val admitted : t -> int -> int
val deferred : t -> int -> int
val queue_delay : t -> int -> Slice_util.Stats.t
val latency : t -> int -> Slice_util.Stats.t

val register_metrics : t -> Slice_util.Metrics.t -> unit
(** Register every tenant's series under ["qos.<tenant>."] via
    {!Slice_util.Metrics.labelled}; the registry dump keeps them in
    sorted, byte-stable order. *)

(** Token-bucket admission gate for background-class tenants at the
    µproxy: [rate] tokens/second accrue up to [burst]; each admitted
    request spends one. Refill is lazy from the caller-supplied clock, so
    the bucket arms no timers and is deterministic by construction. *)

type t

val create : rate:float -> burst:float -> t
(** [burst] is clamped up to 1.0 (a bucket that can never hold a whole
    token would deadlock its tenant).
    @raise Invalid_argument when [rate <= 0]. *)

val try_take : t -> now:float -> bool
(** Spend one token if available. *)

val next_ready : t -> now:float -> float
(** Seconds until a full token exists (0.0 if one is already there): the
    deferral delay after a failed {!try_take}. *)

val level : t -> float
(** Tokens currently held (after the last refill). *)

(* Start-time fair queueing (SFQ, a virtual-time WFQ variant) over the
   per-server request stream.

   Each submitted job carries a cost (its estimated service time); its
   finish tag is max(V, last_finish[tenant]) + cost/weight, appended to
   the tenant's FIFO. The dispatcher runs at most [depth] jobs at once
   and always starts the job with the smallest head-of-queue finish tag
   (tie: lowest tenant id, then FIFO), advancing V to the dispatched
   job's start tag. Under saturation each tenant's service share is
   proportional to its weight; an idle tenant's weight strands no
   capacity (work conservation) because the dispatcher only ever looks
   at non-empty queues.

   Jobs run in their own fiber (Engine.spawn), so same-instant dispatch
   order is spawn order — the engine's (time, seq) tie-break makes WFQ
   pop order the CPU booking order downstream. A job must call its
   completion continuation exactly once; that frees the slot and pulls
   the next job. All of this is enqueue/dequeue bookkeeping on the cold
   side of the packet path: the allocation-free µproxy fast path is
   untouched. *)

module Engine = Slice_sim.Engine

type job = {
  j_cost : float;
  j_enq : float;  (* clock at submit: measures scheduling delay *)
  j_finish : float;  (* virtual finish tag *)
  j_run : (unit -> unit) -> unit;
}

type t = {
  eng : Engine.t;
  tenants : Tenant.t;
  queues : job Queue.t array;
  last_finish : float array;
  mutable vtime : float;
  depth : int;
  mutable in_flight : int;
  mutable backlog : int;
  dispatched : int array;
  mutable total_dispatched : int;
}

let create eng ~tenants ?(depth = 4) () =
  if depth <= 0 then invalid_arg "Wfq.create: depth must be positive";
  let n = Tenant.count tenants in
  {
    eng;
    tenants;
    queues = Array.init n (fun _ -> Queue.create ());
    last_finish = Array.make n 0.0;
    vtime = 0.0;
    depth;
    in_flight = 0;
    backlog = 0;
    dispatched = Array.make n 0;
    total_dispatched = 0;
  }

let tenants t = t.tenants
let tenant_of t addr = Tenant.of_addr t.tenants addr

(* Tenant with the smallest head-of-queue finish tag; strict < keeps the
   tie-break at the lowest tenant id, so equal tags starve nobody: both
   tenants' heads carry equal tags only transiently, and serving the
   lower id raises its next tag past the other's. *)
let pick t =
  let best = ref (-1) in
  let best_f = ref infinity in
  for id = 0 to Array.length t.queues - 1 do
    if not (Queue.is_empty t.queues.(id)) then begin
      let f = (Queue.peek t.queues.(id)).j_finish in
      if f < !best_f then begin
        best_f := f;
        best := id
      end
    end
  done;
  !best

let rec pump t =
  if t.in_flight < t.depth then begin
    let id = pick t in
    if id >= 0 then begin
      let j = Queue.pop t.queues.(id) in
      t.backlog <- t.backlog - 1;
      t.in_flight <- t.in_flight + 1;
      t.dispatched.(id) <- t.dispatched.(id) + 1;
      t.total_dispatched <- t.total_dispatched + 1;
      (* V advances to the start tag of the job entering service *)
      let start_tag = j.j_finish -. (j.j_cost /. Tenant.weight_of t.tenants id) in
      if start_tag > t.vtime then t.vtime <- start_tag;
      Tenant.observe_queue_delay t.tenants id (Engine.now t.eng -. j.j_enq);
      Engine.spawn t.eng (fun () ->
          j.j_run (fun () ->
              t.in_flight <- t.in_flight - 1;
              pump t));
      pump t
    end
  end

let submit t ~tenant ~cost run =
  let cost = if cost > 0.0 then cost else 1e-9 in
  let start = if t.vtime > t.last_finish.(tenant) then t.vtime else t.last_finish.(tenant) in
  let finish = start +. (cost /. Tenant.weight_of t.tenants tenant) in
  t.last_finish.(tenant) <- finish;
  Queue.push
    { j_cost = cost; j_enq = Engine.now t.eng; j_finish = finish; j_run = run }
    t.queues.(tenant);
  t.backlog <- t.backlog + 1;
  pump t

let backlog t = t.backlog
let in_flight t = t.in_flight
let dispatched t tenant = t.dispatched.(tenant)
let total_dispatched t = t.total_dispatched
let virtual_time t = t.vtime

(** Start-time fair queueing (a virtual-time WFQ variant) replacing FIFO
    dispatch at a server: jobs are tagged
    [max(V, last_finish[tenant]) + cost/weight], queued FIFO per tenant,
    and dispatched smallest-tag-first with at most [depth] in flight.
    Under saturation service shares are weight-proportional; idle
    tenants strand no capacity (work conservation). Scheduling is
    enqueue/dequeue bookkeeping on the cold side of the packet path. *)

type t

val create : Slice_sim.Engine.t -> tenants:Tenant.t -> ?depth:int -> unit -> t
(** [depth] bounds concurrently running jobs (default 4): small enough
    that the backlog stays reorderable, large enough to keep the CPU fed
    while a job parks on disk.
    @raise Invalid_argument when [depth <= 0]. *)

val tenants : t -> Tenant.t
val tenant_of : t -> int -> int
(** Classify a source address via the scheduler's registry. *)

val submit : t -> tenant:int -> cost:float -> ((unit -> unit) -> unit) -> unit
(** [submit t ~tenant ~cost run] enqueues a job; when dispatched, [run]
    executes in its own fiber and MUST call the completion continuation
    it is given exactly once (after its last parking operation) — that
    frees the slot and pulls the next job. Same-instant dispatches run
    in tag order (the engine's seq tie-break), so downstream FCFS
    resources see WFQ order. Non-positive costs are clamped to a tiny
    epsilon. *)

val backlog : t -> int
(** Jobs enqueued and not yet dispatched. *)

val in_flight : t -> int
val dispatched : t -> int -> int
(** Jobs dispatched so far for one tenant. *)

val total_dispatched : t -> int
val virtual_time : t -> float

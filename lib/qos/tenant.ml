(* Tenant identity and per-tenant accounting.

   A tenant is a traffic class sharing the ensemble: its requests carry
   the tenant id from the originating client host, through the µproxy's
   pooled pending records, into the per-server WFQ queues. The registry
   maps dense host addresses to tenant ids (an int array, so server-side
   classification on the packet path allocates nothing) and owns the
   per-tenant accounting cells every layer pushes into. *)

module Stats = Slice_util.Stats
module Metrics = Slice_util.Metrics

type klass = Interactive | Batch | Background

type spec = {
  name : string;
  weight : float;  (* WFQ share under contention; must be positive *)
  klass : klass;
  admit_rate : float;  (* µproxy admission tokens/second; <= 0 = ungated *)
  admit_burst : float;  (* bucket depth, requests *)
}

let spec ?(klass = Batch) ?(admit_rate = 0.0) ?(admit_burst = 0.0) ~name ~weight () =
  if weight <= 0.0 then invalid_arg "Tenant.spec: weight must be positive";
  { name; weight; klass; admit_rate; admit_burst }

(* One accounting cell per tenant. [ops]/[bytes] are proxy-side reply
   counts; [queue_delay] is server-side WFQ scheduling delay; [latency]
   is the proxy-visible request round trip. All reservoirs are the
   deterministic Stats kind, so p99 queries are byte-stable. *)
type cell = {
  mutable ops : int;
  mutable bytes : int;
  mutable admitted : int;
  mutable deferred : int;
  queue_delay : Stats.t;
  latency : Stats.t;
}

type t = {
  specs : spec array;
  cells : cell array;
  mutable by_addr : int array;  (* addr -> tenant id + 1; 0 = unbound *)
}

let fresh_cell () =
  {
    ops = 0;
    bytes = 0;
    admitted = 0;
    deferred = 0;
    queue_delay = Stats.create ();
    latency = Stats.create ();
  }

let create specs =
  if Array.length specs = 0 then invalid_arg "Tenant.create: no tenants";
  Array.iter (fun s -> if s.weight <= 0.0 then invalid_arg "Tenant.create: weight") specs;
  {
    specs = Array.copy specs;
    cells = Array.init (Array.length specs) (fun _ -> fresh_cell ());
    by_addr = Array.make 64 0;
  }

let count t = Array.length t.specs
let spec_of t id = t.specs.(id)
let name_of t id = t.specs.(id).name
let weight_of t id = t.specs.(id).weight

let bind_addr t ~addr ~tenant =
  if tenant < 0 || tenant >= Array.length t.specs then invalid_arg "Tenant.bind_addr";
  if addr >= Array.length t.by_addr then begin
    let n = Array.make (max (addr + 1) (2 * Array.length t.by_addr)) 0 in
    Array.blit t.by_addr 0 n 0 (Array.length t.by_addr);
    t.by_addr <- n
  end;
  t.by_addr.(addr) <- tenant + 1

(* Packet-path classification: total, allocation-free. An unbound source
   (manager-internal traffic, probes) classifies as tenant 0 — callers
   that want a distinct system tenant bind their manager hosts to one. *)
let of_addr t addr =
  if addr < 0 || addr >= Array.length t.by_addr then 0
  else
    let v = t.by_addr.(addr) in
    if v = 0 then 0 else v - 1

let note_reply t id ~bytes =
  let c = t.cells.(id) in
  c.ops <- c.ops + 1;
  c.bytes <- c.bytes + bytes

let note_admitted t id = t.cells.(id).admitted <- t.cells.(id).admitted + 1
let note_deferred t id = t.cells.(id).deferred <- t.cells.(id).deferred + 1
let observe_queue_delay t id d = Stats.add t.cells.(id).queue_delay d
let observe_latency t id d = Stats.add t.cells.(id).latency d

let ops t id = t.cells.(id).ops
let bytes t id = t.cells.(id).bytes
let admitted t id = t.cells.(id).admitted
let deferred t id = t.cells.(id).deferred
let queue_delay t id = t.cells.(id).queue_delay
let latency t id = t.cells.(id).latency

(* Register every tenant's series under "qos.<tenant>.": the labelled
   scope builds the keys once and the registry dump sorts them, so the
   series are byte-stable however many tenants exist. *)
let register_metrics t m =
  Array.iteri
    (fun id s ->
      let sc = Metrics.labelled m ~prefix:"qos" ~tenant:s.name in
      Metrics.scoped_gauge sc "ops" (fun () -> float_of_int (ops t id));
      Metrics.scoped_gauge sc "bytes" (fun () -> float_of_int (bytes t id));
      Metrics.scoped_gauge sc "admitted" (fun () -> float_of_int (admitted t id));
      Metrics.scoped_gauge sc "deferred" (fun () -> float_of_int (deferred t id));
      Metrics.scoped_gauge sc "queue_delay_p99_ms" (fun () ->
          Stats.percentile (queue_delay t id) 99.0 *. 1e3);
      Metrics.scoped_gauge sc "latency_p99_ms" (fun () ->
          Stats.percentile (latency t id) 99.0 *. 1e3))
    t.specs

open Parsetree

(* Longident path as a list of components, "Stdlib" prefix stripped so
   [Stdlib.Hashtbl.create] and [Hashtbl.create] read the same. *)
let parts lid =
  let rec flat acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> flat (s :: acc) l
    | Longident.Lapply _ -> acc
  in
  match flat [] lid with "Stdlib" :: rest -> rest | l -> l

let d1_banned = function
  | "Random" :: _ -> Some "Random.* (OS-seeded entropy; use Slice_util.Prng)"
  | [ "Sys"; ("time" | "cpu_time") ] -> Some "wall-clock time (use Engine.now)"
  | ("Unix" | "UnixLabels") :: _ -> Some "Unix.* (real time/IO under the simulation)"
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param" | "randomize") ] ->
      Some "Hashtbl hashing primitives (iteration/seed-order dependent)"
  | _ -> None

let is_sort = function
  | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] | [ "Array"; "sort" ] ->
      true
  | _ -> false

let e1_poly_fun = function
  | [ "compare" ] -> Some "compare"
  | [ "List"; (("mem" | "assoc" | "mem_assoc" | "remove_assoc") as f) ] -> Some ("List." ^ f)
  | _ -> None

let p1_partial = function
  | [ "Option"; "get" ] -> Some "Option.get"
  | [ "List"; (("hd" | "tl" | "nth") as f) ] -> Some ("List." ^ f)
  | [ "failwith" ] -> Some "failwith"
  | _ -> None

(* Syntactically composite operand: a tuple, record, list/array literal
   or constructor WITH an argument — the shapes under which polymorphic
   (=) descends into a file handle or route key. Comparisons against
   constants and constant constructors (None, Fh.Reg, status codes)
   never descend, so they stay legal. *)
let rec composite e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_constraint (e, _) -> composite e
  | _ -> false

let structure (cfg : Config.t) ~file str =
  let findings = ref [] in
  let in_sorted = ref false in
  let d1 = not (cfg.Config.d1_allow file) in
  let d2 = cfg.Config.d2_scope file in
  let r1 = cfg.Config.r1_scope file in
  let e1 = cfg.Config.e1_scope file in
  let p1 = cfg.Config.p1_scope file in
  let add (loc : Location.t) rule msg =
    let p = loc.Location.loc_start in
    findings :=
      Finding.make ~file ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
        ~rule msg
      :: !findings
  in
  let check_module_ident loc lid =
    if d1 then
      match parts lid with
      | ("Unix" | "UnixLabels" | "Random") :: _ ->
          add loc Finding.D1 "D1: opening/aliasing a nondeterministic module"
      | _ -> ()
  in
  let check_ident loc lid =
    let p = parts lid in
    (if d1 then
       match d1_banned p with
       | Some what -> add loc Finding.D1 ("D1: " ^ what)
       | None -> ());
    (if d2 && not !in_sorted then
       match p with
       | [ "Hashtbl"; (("iter" | "fold") as f) ] ->
           add loc Finding.D2
             (Printf.sprintf
                "D2: Hashtbl.%s feeds output here — sort the keys first or add a pragma" f)
       | _ -> ());
    (if r1 then
       match p with
       | [ "Hashtbl"; "create" ] ->
           add loc Finding.R1
             "R1: Hashtbl.create in a long-lived module — use Lru/Table or add a `lint: \
              bounded` pragma with a reason"
       | _ -> ());
    (if e1 then
       match e1_poly_fun p with
       | Some f ->
           add loc Finding.E1
             (Printf.sprintf "E1: polymorphic %s — use a keyed equality/compare" f)
       | None -> ());
    if p1 then
      match p1_partial p with
      | Some f ->
          add loc Finding.P1
            (Printf.sprintf "P1: partial %s on a protocol path — handle the failure case" f)
      | None -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident loc txt
          | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
            when p1 ->
              add e.pexp_loc Finding.P1
                "P1: `assert false` on a protocol path — return an NFS error instead"
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
              (if d1 && parts txt = [ "Hashtbl"; "create" ] then
                 List.iter
                   (fun (lbl, (a : expression)) ->
                     match (lbl, a.pexp_desc) with
                     | ( Asttypes.Labelled "random",
                         Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) ) ->
                         ()
                     | Asttypes.Labelled "random", _ ->
                         add a.pexp_loc Finding.D1
                           "D1: Hashtbl.create ~random:true is seed-dependent"
                     | _ -> ())
                   args);
              if e1 then
                match (parts txt, List.map snd args) with
                | [ ("=" | "<>") ], [ a; b ] when composite a || composite b ->
                    add e.pexp_loc Finding.E1
                      "E1: polymorphic =/<> over a structured operand — use a keyed equality"
                | _ -> ())
          | _ -> ());
          match e.pexp_desc with
          | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) when is_sort (parts txt)
            ->
              it.Ast_iterator.expr it f;
              let saved = !in_sorted in
              in_sorted := true;
              List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args;
              in_sorted := saved
          | _ -> Ast_iterator.default_iterator.expr it e);
      open_description =
        (fun it od ->
          check_module_ident od.popen_loc od.popen_expr.txt;
          Ast_iterator.default_iterator.open_description it od);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; loc } -> check_module_ident loc txt
          | _ -> ());
          Ast_iterator.default_iterator.module_expr it me);
    }
  in
  iter.Ast_iterator.structure iter str;
  List.rev !findings

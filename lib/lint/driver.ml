module Json = Slice_util.Json

type report = { findings : Finding.t list; files : int }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let parse_findings ~file exn =
  let msg =
    match Location.error_of_exn exn with
    | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
    | _ -> Printexc.to_string exn
  in
  [ Finding.make ~file ~line:1 ~col:0 ~rule:Finding.Parse ("failed to parse: " ^ msg) ]

let lint_file cfg path =
  let content = read_file path in
  let pragmas, bad = Pragma.collect ~file:path content in
  let ast =
    let lexbuf = Lexing.from_string content in
    Lexing.set_filename lexbuf path;
    if ends_with ~suffix:".ml" path then
      try Rules.structure cfg ~file:path (Parse.implementation lexbuf)
      with exn -> parse_findings ~file:path exn
    else
      try
        ignore (Parse.interface lexbuf);
        []
      with exn -> parse_findings ~file:path exn
  in
  Pragma.apply ~file:path pragmas (bad @ ast)

(* X1, directory level: a dune file declaring a library must carry the
   uniform flags stanza, and every .ml beside it needs a sibling .mli. *)
let x1_dir (cfg : Config.t) dir entries =
  let join f = if dir = "" then f else dir ^ "/" ^ f in
  if not (List.mem cfg.Config.dune_file entries) then []
  else
    let dune_path = join cfg.Config.dune_file in
    let content = read_file dune_path in
    let squash s =
      String.concat " " (List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.map (function '\n' | '\t' -> ' ' | c -> c) s)))
    in
    if
      not
        (let c = squash content in
         let needle = "(library" in
         let rec has i = i >= 0 && (String.sub c i (String.length needle) = needle || has (i - 1)) in
         has (String.length c - String.length needle))
    then []
    else
      let flags =
        let c = squash content and want = squash cfg.Config.required_dune_flags in
        let rec has i = i >= 0 && (String.sub c i (String.length want) = want || has (i - 1)) in
        if has (String.length c - String.length want) then []
        else
          [
            Finding.make ~file:dune_path ~line:1 ~col:0 ~rule:Finding.X1
              (Printf.sprintf "X1: library dune is missing the uniform flags stanza %s"
                 cfg.Config.required_dune_flags);
          ]
      in
      let mlis =
        List.filter_map
          (fun f ->
            if ends_with ~suffix:".ml" f && not (cfg.Config.x1_allow (join f)) then
              let mli = String.sub f 0 (String.length f - 3) ^ ".mli" in
              if List.mem mli entries then None
              else
                Some
                  (Finding.make ~file:(join f) ~line:1 ~col:0 ~rule:Finding.X1
                     (Printf.sprintf "X1: library module has no interface (%s missing)" mli))
            else None)
          entries
      in
      flags @ mlis

let scan cfg roots =
  let findings = ref [] and files = ref 0 in
  let rec walk path =
    if Sys.is_directory path then begin
      let entries =
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> String.length f > 0 && f.[0] <> '.' && f.[0] <> '_')
        |> List.sort String.compare
      in
      findings := x1_dir cfg path entries @ !findings;
      List.iter (fun f -> walk (path ^ "/" ^ f)) entries
    end
    else if ends_with ~suffix:".ml" path || ends_with ~suffix:".mli" path then begin
      incr files;
      findings := lint_file cfg path @ !findings
    end
  in
  List.iter walk roots;
  { findings = List.sort Finding.order !findings; files = !files }

let errors r =
  List.length
    (List.filter
       (fun f -> (not (Finding.is_suppressed f)) && f.Finding.severity = Finding.Error)
       r.findings)

let suppressed r = List.length (List.filter Finding.is_suppressed r.findings)

let to_json r =
  Json.Obj
    [
      ("tool", Json.Str "slicelint");
      ("files", Json.Num (float_of_int r.files));
      ("errors", Json.Num (float_of_int (errors r)));
      ("suppressed", Json.Num (float_of_int (suppressed r)));
      ("findings", Json.Arr (List.map Finding.to_json r.findings));
    ]

let render_human r =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      if not (Finding.is_suppressed f) then
        Buffer.add_string b (Format.asprintf "%a@." Finding.pp f))
    r.findings;
  Buffer.add_string b
    (Printf.sprintf "slicelint: %d file(s), %d finding(s), %d suppressed\n" r.files (errors r)
       (suppressed r));
  Buffer.contents b

module Json = Slice_util.Json

type report = {
  findings : Finding.t list;
  files : int;
  typed_ran : bool;
  hot_roots : Typed.hot_root list;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let parse_findings ~file exn =
  let msg =
    match Location.error_of_exn exn with
    | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
    | _ -> Printexc.to_string exn
  in
  [ Finding.make ~file ~line:1 ~col:0 ~rule:Finding.Parse ("failed to parse: " ^ msg) ]

(* Parsetree pass only: pragma application is deferred to [scan] so the
   typed tier's findings for the same file share one pragma set (and one
   unused-pragma audit). *)
let lint_file cfg path =
  let content = read_file path in
  let pragmas, bad = Pragma.collect ~file:path content in
  let ast =
    let lexbuf = Lexing.from_string content in
    Lexing.set_filename lexbuf path;
    if ends_with ~suffix:".ml" path then
      try Rules.structure cfg ~file:path (Parse.implementation lexbuf)
      with exn -> parse_findings ~file:path exn
    else
      try
        ignore (Parse.interface lexbuf);
        []
      with exn -> parse_findings ~file:path exn
  in
  (pragmas, bad @ ast)

(* X1, directory level: a dune file declaring a library must carry the
   uniform flags stanza, and every .ml beside it needs a sibling .mli. *)
let x1_dir (cfg : Config.t) dir entries =
  let join f = if dir = "" then f else dir ^ "/" ^ f in
  if not (List.mem cfg.Config.dune_file entries) then []
  else
    let dune_path = join cfg.Config.dune_file in
    let content = read_file dune_path in
    let squash s =
      String.concat " " (List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.map (function '\n' | '\t' -> ' ' | c -> c) s)))
    in
    let c = squash content in
    let has needle =
      let rec go i = i >= 0 && (String.sub c i (String.length needle) = needle || go (i - 1)) in
      go (String.length c - String.length needle)
    in
    let is_library = has "(library" in
    (* Since PR 8 the uniform flags stanza is required of executable and
       test stanzas too, not just libraries. *)
    let is_component = is_library || has "(executable" || has "(test" in
    if not is_component then []
    else
      let flags =
        let want = squash cfg.Config.required_dune_flags in
        if has want then []
        else
          [
            Finding.make ~file:dune_path ~line:1 ~col:0 ~rule:Finding.X1
              (Printf.sprintf "X1: %s dune is missing the uniform flags stanza %s"
                 (if is_library then "library" else "executable/test")
                 cfg.Config.required_dune_flags);
          ]
      in
      let mlis =
        if not is_library then []
        else
          List.filter_map
            (fun f ->
              if ends_with ~suffix:".ml" f && not (cfg.Config.x1_allow (join f)) then
                let mli = String.sub f 0 (String.length f - 3) ^ ".mli" in
                if List.mem mli entries then None
                else
                  Some
                    (Finding.make ~file:(join f) ~line:1 ~col:0 ~rule:Finding.X1
                       (Printf.sprintf "X1: library module has no interface (%s missing)" mli))
              else None)
            entries
      in
      flags @ mlis

let scan ?cmt_dir cfg roots =
  let extra = ref [] (* x1 and other non-pragma-bearing findings *) in
  let per_file : (string, Pragma.t list * Finding.t list) Hashtbl.t = Hashtbl.create 64 in
  let ordered_files = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      let entries =
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> String.length f > 0 && f.[0] <> '.' && f.[0] <> '_')
        |> List.sort String.compare
      in
      extra := x1_dir cfg path entries @ !extra;
      List.iter (fun f -> walk (path ^ "/" ^ f)) entries
    end
    else if ends_with ~suffix:".ml" path || ends_with ~suffix:".mli" path then begin
      ordered_files := path :: !ordered_files;
      Hashtbl.replace per_file path (lint_file cfg path)
    end
  in
  List.iter walk roots;
  let files = List.rev !ordered_files in
  let typed_ran = cmt_dir <> None in
  let hot_roots =
    match cmt_dir with
    | None -> []
    | Some dir ->
        let typed_findings, roots = Typed.analyze cfg ~cmt_dir:dir ~files in
        List.iter
          (fun (file, fs) ->
            match Hashtbl.find_opt per_file file with
            | Some (pragmas, existing) ->
                Hashtbl.replace per_file file (pragmas, existing @ fs)
            | None -> extra := fs @ !extra)
          typed_findings;
        roots
  in
  let findings =
    List.concat_map
      (fun file ->
        let pragmas, fs = Hashtbl.find per_file file in
        Pragma.apply ~typed_ran ~file pragmas fs)
      files
    @ !extra
  in
  {
    findings = List.sort Finding.order findings;
    files = List.length files;
    typed_ran;
    hot_roots;
  }

let errors r =
  List.length
    (List.filter
       (fun f -> (not (Finding.is_suppressed f)) && f.Finding.severity = Finding.Error)
       r.findings)

let suppressed r = List.length (List.filter Finding.is_suppressed r.findings)

let hot_root_json (h : Typed.hot_root) =
  Json.Obj
    [
      ("name", Json.Str h.Typed.hr_name);
      ("file", Json.Str h.Typed.hr_file);
      ("line", Json.Num (float_of_int h.Typed.hr_line));
      ("est_words", Json.Num (float_of_int h.Typed.hr_words));
      ("sites", Json.Num (float_of_int h.Typed.hr_sites));
    ]

let to_json r =
  Json.Obj
    [
      ("tool", Json.Str "slicelint");
      ("files", Json.Num (float_of_int r.files));
      ("typed", Json.Bool r.typed_ran);
      ("errors", Json.Num (float_of_int (errors r)));
      ("suppressed", Json.Num (float_of_int (suppressed r)));
      ("hot_roots", Json.Arr (List.map hot_root_json r.hot_roots));
      ("findings", Json.Arr (List.map Finding.to_json r.findings));
    ]

let render_human r =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      if not (Finding.is_suppressed f) then
        Buffer.add_string b (Format.asprintf "%a@." Finding.pp f))
    r.findings;
  if r.typed_ran then
    List.iter
      (fun (h : Typed.hot_root) ->
        Buffer.add_string b
          (Printf.sprintf "[@hot] %s (%s:%d): %d alloc site(s), ~%d words/call\n"
             h.Typed.hr_name h.Typed.hr_file h.Typed.hr_line h.Typed.hr_sites h.Typed.hr_words))
      r.hot_roots;
  Buffer.add_string b
    (Printf.sprintf "slicelint: %d file(s), %d finding(s), %d suppressed%s\n" r.files (errors r)
       (suppressed r)
       (if r.typed_ran then " [typed tier: on]" else ""));
  Buffer.contents b

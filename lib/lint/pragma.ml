type t = { line : int; rule : Finding.rule; reason : string; mutable used : bool }

(* Built by concatenation so the scanner does not fire on its own
   source text. *)
let marker = "(* lint" ^ ":"
let em_dash = "\xe2\x80\x94"

(* Index of [sub] in [s] at or after [from]; -1 when absent. *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
  if m = 0 then from else go from

(* Pragma body grammar, after the "lint:" marker and before "*)":
     <rule> ok <dash> <reason>     generic suppression
     bounded <dash> <reason>       R1's canonical form
   where <dash> is an em dash or one-or-more ASCII hyphens. *)

let split_reason body =
  let hyphen = String.index_opt body '-' in
  let em = find_sub body em_dash 0 in
  let dash =
    match (hyphen, em) with
    | None, -1 -> None
    | Some i, -1 -> Some (i, 1)
    | None, i -> Some (i, 3)
    | Some i, j -> if i < j then Some (i, 1) else Some (j, 3)
  in
  match dash with
  | None -> None
  | Some (i, w) ->
      let head = String.trim (String.sub body 0 i) in
      let rec skip j = if j < String.length body && body.[j] = '-' then skip (j + 1) else j in
      let j = if w = 1 then skip i else i + w in
      let reason = String.trim (String.sub body j (String.length body - j)) in
      Some (head, reason)

let parse_body ~file ~line ~col body =
  let bad msg = Error (Finding.make ~file ~line ~col ~rule:Finding.Parse msg) in
  match split_reason body with
  | None -> bad "malformed lint pragma: expected `<rule> ok — reason` or `bounded — reason`"
  | Some (head, reason) -> (
      let missing rule =
        Error
          (Finding.make ~file ~line ~col ~rule
             (Printf.sprintf "lint pragma `%s` is missing its reason" head))
      in
      match String.split_on_char ' ' (String.trim head) with
      | [ "bounded" ] ->
          if reason = "" then missing Finding.R1
          else Ok { line; rule = Finding.R1; reason; used = false }
      | [ name; "ok" ] -> (
          match Finding.rule_of_name name with
          | None -> bad (Printf.sprintf "lint pragma names unknown rule `%s`" name)
          | Some rule ->
              if reason = "" then missing rule else Ok { line; rule; reason; used = false })
      | _ ->
          bad
            (Printf.sprintf "malformed lint pragma `%s`: expected `<rule> ok` or `bounded`" head))

let collect ~file content =
  let pragmas = ref [] and bad = ref [] in
  let len = String.length content in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let mlen = String.length marker in
  while !i < len do
    (if content.[!i] = '\n' then begin
       incr line;
       bol := !i + 1
     end
     else if !i + mlen <= len && String.sub content !i mlen = marker then begin
       let col = !i - !bol in
       match find_sub content "*)" (!i + mlen) with
       | -1 ->
           bad :=
             Finding.make ~file ~line:!line ~col ~rule:Finding.Parse "unterminated lint pragma"
             :: !bad
       | stop -> (
           let body = String.trim (String.sub content (!i + mlen) (stop - !i - mlen)) in
           match parse_body ~file ~line:!line ~col body with
           | Ok p -> pragmas := p :: !pragmas
           | Error f -> bad := f :: !bad)
     end);
    incr i
  done;
  (List.rev !pragmas, List.rev !bad)

let apply ?(typed_ran = true) ~file pragmas findings =
  let suppress (f : Finding.t) =
    if f.Finding.rule = Finding.Parse then f
    else
      match
        List.find_opt
          (fun p ->
            p.rule = f.Finding.rule && (p.line = f.Finding.line || p.line = f.Finding.line - 1))
          pragmas
      with
      | None -> f
      | Some p ->
          p.used <- true;
          { f with Finding.suppressed = Some p.reason }
  in
  let findings = List.map suppress findings in
  let unused =
    List.filter_map
      (fun p ->
        if p.used then None
          (* A parsetree-only scan cannot judge A1/F1 pragmas — their
             findings come from the typed tier. Without .cmt input the
             pragma is neither used nor provably stale, so stay quiet. *)
        else if Finding.is_typed p.rule && not typed_ran then None
        else
          Some
            (Finding.make ~file ~line:p.line ~col:0 ~rule:p.rule
               (Printf.sprintf
                  "unused lint pragma (%s): nothing to suppress here or on the next line"
                  (Finding.rule_name p.rule))))
      pragmas
  in
  findings @ unused

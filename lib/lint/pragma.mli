(** Inline suppression pragmas.

    Grammar — a comment of its own or trailing a line, whose body is
    [lint:] followed by:

    {v <rule> ok — reason       generic suppression
       bounded — reason         R1's canonical form v}

    The dash may be an em dash or ASCII hyphen(s); the reason is
    mandatory — a pragma without one is itself a finding, as is a pragma
    that suppresses nothing (so suppressions cannot rot silently). A
    pragma suppresses matching findings on its own line or the line
    immediately below. *)

type t = { line : int; rule : Finding.rule; reason : string; mutable used : bool }

val collect : file:string -> string -> t list * Finding.t list
(** Scan raw source text. Returns well-formed pragmas plus findings for
    malformed ones (unknown rule, missing reason, unterminated). *)

val apply : ?typed_ran:bool -> file:string -> t list -> Finding.t list -> Finding.t list
(** Mark findings suppressed by a matching pragma (recording the reason)
    and append an error finding for every pragma that matched nothing.
    With [~typed_ran:false] (a parsetree-only scan), unused A1/F1
    pragmas are not reported — the tier that could have used them never
    ran. Default [true]. *)

(** The AST rule catalog (D1, D2, R1, E1, P1), evaluated over a parsed
    implementation with an [Ast_iterator].

    Heuristics are syntactic: a module alias ([module H = Hashtbl]) can
    evade them, which code review treats the same as deleting a test.
    X1 and pragma handling live in {!Driver} / {!Pragma}; signatures
    carry no expressions, so [.mli] files only get parse and X1
    checks. *)

val structure : Config.t -> file:string -> Parsetree.structure -> Finding.t list
(** Findings in source order, not yet pragma-filtered. [file] is the
    repo-relative path used both for rule scoping and in findings. *)

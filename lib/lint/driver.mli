(** File discovery, parsing and report assembly.

    [scan cfg roots] walks each root (directory or single file),
    skipping dot- and underscore-prefixed entries ([_build]), lints
    every [.ml]/[.mli], applies pragmas, and runs the directory-level X1
    checks. Findings come back sorted by {!Finding.order}, so reports
    are byte-stable. *)

type report = { findings : Finding.t list; files : int }

val lint_file : Config.t -> string -> Finding.t list
(** AST rules + pragmas for one source file (no X1). *)

val scan : Config.t -> string list -> report

val errors : report -> int
(** Unsuppressed error-severity findings: the gate fails when nonzero. *)

val suppressed : report -> int
val to_json : report -> Slice_util.Json.t
val render_human : report -> string
(** Unsuppressed findings one per line, then a summary line. *)

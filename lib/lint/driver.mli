(** File discovery, parsing and report assembly.

    [scan ?cmt_dir cfg roots] walks each root (directory or single
    file), skipping dot- and underscore-prefixed entries ([_build]),
    lints every [.ml]/[.mli] with the parsetree rules, runs the
    directory-level X1 checks, and — when [cmt_dir] is given — the typed
    interprocedural tier ({!Typed.analyze}) over the [.cmt] files found
    under it. Pragmas collected per file apply to both tiers at once.
    Findings come back sorted by {!Finding.order}, so reports are
    byte-stable. *)

type report = {
  findings : Finding.t list;
  files : int;
  typed_ran : bool;  (** whether the [.cmt]-based tier ran *)
  hot_roots : Typed.hot_root list;  (** per-[\[@hot\]]-root allocation summary *)
}

val lint_file : Config.t -> string -> Pragma.t list * Finding.t list
(** Parsetree rules for one source file (no X1, pragmas not yet
    applied — the caller merges typed-tier findings first). *)

val scan : ?cmt_dir:string -> Config.t -> string list -> report

val errors : report -> int
(** Unsuppressed error-severity findings: the gate fails when nonzero. *)

val suppressed : report -> int
val to_json : report -> Slice_util.Json.t
val render_human : report -> string
(** Unsuppressed findings one per line, hot-root summary when the typed
    tier ran, then a summary line. *)

(** The typed analysis tier (DESIGN.md §14).

    Consumes the [.cmt] files dune already produces, builds a call graph
    over the Typedtree, and runs the interprocedural rule families:

    - {b A1} — every function reachable from a [\[@hot\]] binding in an
      [a1_scope] file must be allocation-free. Each violation carries an
      estimated words-allocated figure.
    - {b F1} — in every [f1_scope] module, each exported entry point
      that reaches a protected mutation ([f1_protected]) must pass a
      wedge/lease check ([f1_guards]) first, on every path.

    A file in either scope with no matching [.cmt] yields a finding of
    its own: the tier fails loudly rather than silently not running. *)

type hot_root = {
  hr_name : string;  (** canonical ["Mod.fn"] *)
  hr_file : string;
  hr_line : int;
  hr_words : int;  (** estimated words allocated per call, transitively *)
  hr_sites : int;  (** allocation sites reachable from this root *)
}

val analyze :
  Config.t ->
  cmt_dir:string ->
  files:string list ->
  (string * Finding.t list) list * hot_root list
(** [analyze cfg ~cmt_dir ~files] scans every [.cmt] under [cmt_dir]
    (recursively), keeps those whose recorded source file matches one of
    the walked [files], and returns findings grouped per walked file
    plus the [\[@hot\]] root summary. Pragma application is the caller's
    job — findings come back unsuppressed. *)

type rule = D1 | D2 | R1 | E1 | P1 | X1 | A1 | F1 | Parse

let rule_name = function
  | D1 -> "D1"
  | D2 -> "D2"
  | R1 -> "R1"
  | E1 -> "E1"
  | P1 -> "P1"
  | X1 -> "X1"
  | A1 -> "A1"
  | F1 -> "F1"
  | Parse -> "parse"

let rule_of_name = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "R1" -> Some R1
  | "E1" -> Some E1
  | "P1" -> Some P1
  | "X1" -> Some X1
  | "A1" -> Some A1
  | "F1" -> Some F1
  | _ -> None

let rule_doc = function
  | D1 -> "determinism: wall clock, OS entropy and randomized hashing are banned"
  | D2 -> "iteration order: hash-table iteration feeding output must be sorted"
  | R1 -> "bounded state: long-lived hash tables need a bound or a bounded pragma"
  | E1 -> "polymorphic equality: compare handles and route keys with keyed equality"
  | P1 -> "partiality: no partial stdlib calls or bare aborts on protocol paths"
  | X1 -> "interface hygiene: lib modules need an .mli and uniform dune flags"
  | A1 -> "hot-path allocation: code reachable from a [@hot] root must not allocate"
  | F1 -> "fencing totality: WAL/state mutation must be dominated by a wedge check"
  | Parse -> "file failed to parse"

(* A1 and F1 are interprocedural and need the typed tree; the other
   families run on the parsetree alone. *)
let is_typed = function A1 | F1 -> true | _ -> false

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  severity : severity;
  msg : string;
  words : int option;
  suppressed : string option;
}

let make ~file ~line ~col ~rule ?(severity = Error) ?words msg =
  { file; line; col; rule; severity; msg; words; suppressed = None }

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_name a.rule) (rule_name b.rule)

let is_suppressed t = Option.is_some t.suppressed

let to_json t =
  let module J = Slice_util.Json in
  J.Obj
    [
      ("file", J.Str t.file);
      ("line", J.Num (float_of_int t.line));
      ("col", J.Num (float_of_int t.col));
      ("rule", J.Str (rule_name t.rule));
      ("severity", J.Str (severity_name t.severity));
      ("msg", J.Str t.msg);
      ("words", match t.words with None -> J.Null | Some w -> J.Num (float_of_int w));
      ("suppressed", J.Bool (is_suppressed t));
      ("reason", match t.suppressed with None -> J.Null | Some r -> J.Str r);
    ]

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s/%s] %s" t.file t.line t.col (rule_name t.rule)
    (severity_name t.severity) t.msg;
  match t.suppressed with
  | None -> ()
  | Some r -> Format.fprintf ppf " (suppressed: %s)" r

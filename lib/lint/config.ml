type t = {
  d1_allow : string -> bool;
  d2_scope : string -> bool;
  r1_scope : string -> bool;
  e1_scope : string -> bool;
  p1_scope : string -> bool;
  x1_allow : string -> bool;
  dune_file : string;
  required_dune_flags : string;
  a1_scope : string -> bool;
  f1_scope : string -> bool;
  hot_attr : string;
  f1_guards : string list;
  f1_protected : string list;
}

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p
let any_prefix ps s = List.exists (fun p -> has_prefix p s) ps
let basename s = match String.rindex_opt s '/' with None -> s | Some i -> String.sub s (i + 1) (String.length s - i - 1)

(* The curated warning set promoted to errors in every library — and,
   since PR 8, in the bench/bin/test executable stanzas too: partial
   matches (8), unused values/opens/types/indices/constructors/rec flags
   (26 27 32..35 37 39). Checked verbatim (modulo whitespace) in each
   scanned dune by X1. *)
let uniform_flags = "(flags (:standard -warn-error +8+26+27+32+33+34+35+37+39))"

let repo =
  {
    (* The PRNG wrapper and the simulation core own time and randomness;
       everything else must go through them. *)
    d1_allow = any_prefix [ "lib/util/prng."; "lib/sim/" ];
    (* Modules whose hash-table iteration feeds reports, stats
       aggregation or BENCH_*.json artifacts — including the tracer,
       metrics registry and the load generators, whose dumps and op
       streams must be byte-stable across runs. *)
    d2_scope =
      (fun f ->
        any_prefix
          [ "lib/experiments/"; "bench/"; "examples/"; "lib/trace/";
            "lib/reconfig/"; "lib/failover/"; "lib/workload/"; "lib/qos/" ]
          f
        || List.mem f [ "lib/util/stats.ml"; "lib/util/metrics.ml" ]);
    (* Long-lived proxy/server modules: state here survives across
       requests, so every Hashtbl needs a bound or a bounded pragma. *)
    r1_scope =
      (fun f ->
        List.mem f
          [
            "lib/core/proxy.ml";
            "lib/net/net.ml";
            "lib/net/rpc.ml";
            "lib/dir/dirserver.ml";
            "lib/baseline/nfs_server.ml";
            "lib/disk/bcache.ml";
            "lib/storage/coordinator.ml";
            "lib/storage/obsd.ml";
            "lib/storage/nfs_endpoint.ml";
            "lib/smallfile/smallfile.ml";
            "lib/reconfig/reconfig.ml";
            "lib/failover/failover.ml";
            "lib/qos/tenant.ml";
            "lib/qos/wfq.ml";
            "lib/util/lru.ml";
            "lib/util/metrics.ml";
            "lib/trace/trace.ml";
          ]);
    (* Routing and cache paths where a stray polymorphic compare on a
       file handle or route key silently disagrees with keyed equality. *)
    e1_scope = any_prefix [ "lib/nfs/"; "lib/core/" ];
    (* Protocol request paths: a partial call here turns a malformed or
       unlucky request into a crash instead of an NFS error status. The
       codec feeders — XDR primitives and the routing hashes — are in
       scope too: they see raw request bytes before any validation. *)
    p1_scope =
      (fun f ->
        any_prefix [ "lib/nfs/"; "lib/hash/"; "lib/xdr/" ] f
        || List.mem f
             [
               "lib/core/proxy.ml";
               "lib/core/ensemble.ml";
               "lib/net/rpc.ml";
               "lib/net/net.ml";
               "lib/dir/dirserver.ml";
               "lib/dir/peer.ml";
               "lib/baseline/nfs_server.ml";
               "lib/storage/coordinator.ml";
               "lib/storage/obsd.ml";
               "lib/storage/nfs_endpoint.ml";
               "lib/smallfile/smallfile.ml";
             ]);
    x1_allow = (fun _ -> false);
    dune_file = "dune";
    required_dune_flags = uniform_flags;
    (* Files whose [@hot] roots seed A1, and which therefore must have a
       .cmt available when the typed tier runs: the µproxy packet path,
       the codec peek path and its XDR primitives, and the engine's
       event dispatch (plus the heap it leans on). *)
    a1_scope =
      (fun f ->
        List.mem f
          [
            "lib/core/proxy.ml";
            "lib/nfs/codec.ml";
            "lib/xdr/xdr.ml";
            "lib/sim/engine.ml";
            "lib/util/heap.ml";
          ]);
    (* The fenced server modules of PR 6: every dispatch path that
       reaches the WAL, the buffer cache or the allocator must be
       dominated by the wedge/lease-epoch check. *)
    f1_scope =
      (fun f ->
        List.mem f
          [
            "lib/dir/dirserver.ml";
            "lib/smallfile/smallfile.ml";
            "lib/storage/obsd.ml";
            "lib/storage/coordinator.ml";
          ]);
    hot_attr = "hot";
    f1_guards = [ "wedged"; "is_wedged" ];
    f1_protected =
      [ "Wal.append"; "Bcache.write"; "Bcache.commit"; "Ffs.alloc"; "Ffs.free" ];
  }

(* Fixture profile: each rule is active exactly on files whose basename
   starts with the rule's lowercase name, so one fixture file exercises
   one rule family without cross-talk. *)
let fixtures =
  let named rule f = has_prefix rule (basename f) in
  {
    d1_allow = (fun f -> not (named "d1" f));
    d2_scope = named "d2";
    r1_scope = named "r1";
    e1_scope = named "e1";
    p1_scope = named "p1";
    x1_allow = (fun f -> basename f = "allowed.ml");
    dune_file = "dune.lint-fixture";
    required_dune_flags = uniform_flags;
    a1_scope = named "a1";
    f1_scope = named "f1";
    hot_attr = "hot";
    f1_guards = [ "wedged"; "is_wedged" ];
    f1_protected =
      [ "Wal.append"; "Bcache.write"; "Bcache.commit"; "Ffs.alloc"; "Ffs.free" ];
  }

(** Rule scoping: which files each rule family applies to.

    Paths are repo-relative with ['/'] separators, exactly as the driver
    discovers them (e.g. ["lib/core/proxy.ml"]). Scoping lives here, not
    in the rules, so the fixture corpus can exercise every rule without
    living under [lib/]. *)

type t = {
  d1_allow : string -> bool;  (** D1 skips these files (own time/randomness) *)
  d2_scope : string -> bool;  (** D2 applies: output- and stats-emitting code *)
  r1_scope : string -> bool;  (** R1 applies: long-lived proxy/server modules *)
  e1_scope : string -> bool;  (** E1 applies: routing and cache paths *)
  p1_scope : string -> bool;  (** P1 applies: protocol request paths *)
  x1_allow : string -> bool;  (** X1 skips these [.ml] files (no [.mli] needed) *)
  dune_file : string;  (** dune file name X1 inspects (fixtures use a decoy) *)
  required_dune_flags : string;  (** stanza every library dune must carry *)
  a1_scope : string -> bool;
      (** A1: files whose [\[@hot\]] bindings seed allocation analysis —
          a missing [.cmt] for one of these is itself a finding, so the
          typed tier cannot silently rot away *)
  f1_scope : string -> bool;  (** F1 applies: the fenced server modules *)
  hot_attr : string;  (** attribute name marking A1 roots (["hot"]) *)
  f1_guards : string list;
      (** base names whose call counts as the wedge/lease check *)
  f1_protected : string list;
      (** canonical [Module.fn] names that mutate durable server state *)
}

val uniform_flags : string
(** The curated warning-as-error stanza, verbatim. *)

val repo : t
(** Production scoping for this repository. *)

val fixtures : t
(** Test scoping: rule [Rn] applies exactly to files whose basename
    starts with ["rn"], and [allowed.ml] is X1-allowlisted. *)

(** A single slicelint diagnostic: where, which rule, and whether an
    inline pragma suppressed it (the reason is kept for the audit
    trail — suppressed findings still appear in the JSON report). *)

type rule =
  | D1  (** determinism: no wall clock / OS entropy / randomized hashing *)
  | D2  (** iteration order: hash iteration feeding output must be sorted *)
  | R1  (** bounded state: long-lived [Hashtbl]s need a bound or pragma *)
  | E1  (** polymorphic equality on handles / route keys *)
  | P1  (** partial stdlib calls or bare aborts on protocol paths *)
  | X1  (** interface hygiene: missing [.mli] or non-uniform dune flags *)
  | A1  (** hot-path allocation reachable from a [\[@hot\]] root *)
  | F1  (** WAL/state mutation not dominated by the wedge/lease check *)
  | Parse  (** the file failed to parse at all *)

val rule_name : rule -> string
val rule_of_name : string -> rule option
(** [None] for unknown names, including ["parse"] (pragmas cannot
    suppress parse errors). *)

val rule_doc : rule -> string
(** One-line catalog entry, shown in [--help] style listings. *)

val is_typed : rule -> bool
(** A1 and F1 only run when the typed tier has [.cmt] input; pragma
    bookkeeping for them is gated on the tier actually running. *)

type severity = Error | Warning

val severity_name : severity -> string

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  severity : severity;
  msg : string;
  words : int option;  (** A1: estimated words allocated at this site *)
  suppressed : string option;  (** pragma reason when suppressed *)
}

val make :
  file:string ->
  line:int ->
  col:int ->
  rule:rule ->
  ?severity:severity ->
  ?words:int ->
  string ->
  t

val order : t -> t -> int
(** Sort key: file, line, column, rule — the report order, stable across
    runs by construction. *)

val is_suppressed : t -> bool
val to_json : t -> Slice_util.Json.t
val pp : Format.formatter -> t -> unit

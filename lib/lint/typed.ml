(* The typed analysis tier (DESIGN.md §14): loads the .cmt files dune
   already produces, builds a call graph over the Typedtree, and runs the
   two interprocedural rule families:

   A1 — hot-path allocation: every function reachable from a [@hot]
   binding must be allocation-free. Allocation sites carry an estimated
   words-allocated figure so lint-report.json doubles as the optimization
   worklist for the ns/packet work (ROADMAP item 3).

   F1 — fencing-guard totality: in the fenced server modules, every
   dispatch path that reaches the WAL / buffer cache / allocator must be
   dominated by the wedge/lease check (a must-call-before pass).

   Names are canonical last-two-component keys ("Dec.u32", "Wal.append"):
   this repo aliases modules under their own short name (module Codec =
   Slice_nfs.Codec), so the key a call site produces matches the key the
   callee's cmt produces, without resolving through module aliases. *)

module F = Finding

(* ---- canonical names ---- *)

let rec path_parts (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_parts p @ [ s ]
  | Path.Papply (a, _) -> path_parts a
  | Path.Pextra_ty (p, _) -> path_parts p

let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

(* "Slice_nfs__Codec" -> "Codec": dune's wrapped-library mangling. *)
let canonical_modname m =
  match String.index_opt m '_' with
  | None -> m
  | Some _ ->
      let n = String.length m in
      let rec last i acc =
        if i + 1 >= n then acc
        else if m.[i] = '_' && m.[i + 1] = '_' then last (i + 2) (i + 2)
        else last (i + 1) acc
      in
      let start = last 0 0 in
      String.sub m start (n - start)

let key_of_parts parts =
  match List.rev parts with
  | [] -> ""
  | [ f ] -> f
  | f :: m :: _ -> m ^ "." ^ f

let base_of_parts parts = match List.rev parts with [] -> "" | f :: _ -> f

(* ---- stdlib effect tables ---- *)

(* Calls that neither allocate nor box their result. *)
let clean_table =
  [
    "Bytes.length"; "String.length"; "Array.length"; "Bytes.get"; "Bytes.set";
    "Bytes.unsafe_get"; "Bytes.unsafe_set"; "String.get"; "String.unsafe_get";
    "Array.get"; "Array.set"; "Array.unsafe_get"; "Array.unsafe_set";
    "Bytes.get_uint8"; "Bytes.get_int8"; "Bytes.get_uint16_be"; "Bytes.get_uint16_le";
    (* stores into preexisting buffers: the int16/32/64 setters consume a
       boxed argument (boxing is charged where the box is built) and
       allocate nothing themselves, like Bytes.set *)
    "Bytes.set_uint8"; "Bytes.set_uint16_be"; "Bytes.set_uint16_le";
    "Bytes.set_int32_be"; "Bytes.set_int32_le"; "Bytes.set_int64_be"; "Bytes.set_int64_le";
    "Bytes.blit"; "Bytes.fill"; "Bytes.blit_string"; "Array.blit"; "Array.fill";
    "Char.code"; "Char.chr"; "Char.equal"; "Char.compare";
    "Int.equal"; "Int.compare"; "Int.max"; "Int.min"; "String.equal"; "Bool.equal";
    "Int32.to_int"; "Int64.to_int"; "Nativeint.to_int"; "Int64.to_float";
    "Int32.equal"; "Int64.equal"; "Int32.compare"; "Int64.compare";
    "Float.equal"; "Float.compare"; "Float.is_finite"; "Float.is_nan";
    "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare"; "min"; "max";
    "+"; "-"; "*"; "/"; "mod"; "abs"; "succ"; "pred";
    "land"; "lor"; "lxor"; "lnot"; "lsl"; "lsr"; "asr";
    "&&"; "||"; "not"; "ignore"; "incr"; "decr"; "fst"; "snd"; ":="; "!";
    "List.length"; "List.is_empty";
    "int_of_char"; "char_of_int"; "int_of_float"; "truncate";
    "Float.to_int"; "Hashtbl.mem"; "Hashtbl.length"; "Queue.length"; "Queue.is_empty";
  ]

(* Raising helpers: their arguments are the error path, not the packet
   path, so allocation inside them is exempt. *)
let raising_table = [ "raise"; "raise_notrace"; "invalid_arg"; "failwith"; "exit" ]

(* Unbox consumers: a boxed-number primitive feeding one of these
   directly is unboxed by the compiler (cmmgen's local unboxing), so the
   composition allocates nothing. *)
let unboxing_table =
  [
    "Int32.to_int"; "Int64.to_int"; "Nativeint.to_int";
    "="; "<>"; "<"; ">"; "<="; ">="; "compare";
    "Int32.equal"; "Int64.equal"; "Float.equal";
    "Int32.compare"; "Int64.compare"; "Float.compare";
  ]

(* Primitives whose result is a freshly boxed number unless an unbox
   consumer takes it directly. 64-bit words: float box = 2, int32/int64
   custom block = 3. *)
let boxing_table =
  [
    ("Bytes.get_int32_be", 3); ("Bytes.get_int32_le", 3);
    ("Bytes.get_int64_be", 3); ("Bytes.get_int64_le", 3);
    ("Int32.of_int", 3); ("Int64.of_int", 3); ("Nativeint.of_int", 3);
    ("Int64.add", 3); ("Int64.sub", 3); ("Int64.mul", 3); ("Int64.div", 3);
    ("Int64.rem", 3); ("Int64.abs", 3); ("Int64.logand", 3); ("Int64.shift_left", 3);
    ("Int64.shift_right_logical", 3); ("Int64.of_float", 3); ("Int64.to_string", 16);
    ("Int32.add", 3); ("Int32.sub", 3); ("Int32.logand", 3);
    ("+."), 2; ("-."), 2; ("*."), 2; ("/."), 2; ("Float.of_int", 2);
    ("float_of_int", 2); ("mod_float", 2); ("Float.rem", 2);
  ]

(* Known-allocating stdlib entry points, with a nominal per-call estimate
   (per-element costs are flagged as such in the message). *)
let allocating_table =
  [
    ("List.map", 24, "conses per element"); ("List.mapi", 24, "conses per element");
    ("List.filter", 24, "conses per element"); ("List.filter_map", 24, "conses per element");
    ("List.init", 24, "conses per element"); ("List.append", 24, "conses per element");
    ("List.rev", 24, "conses per element"); ("List.concat", 24, "conses per element");
    ("List.sort", 32, "intermediate lists"); ("@", 24, "conses per element");
    ("Array.make", 16, "fresh array"); ("Array.init", 16, "fresh array");
    ("Array.copy", 16, "fresh array"); ("Array.append", 16, "fresh array");
    ("Array.sub", 16, "fresh array"); ("Array.to_list", 24, "conses per element");
    ("String.sub", 16, "fresh string");
    ("String.concat", 16, "fresh string"); ("String.make", 16, "fresh string");
    ("^", 16, "fresh string"); ("String.split_on_char", 32, "list of fresh strings");
    ("String.trim", 16, "fresh string"); ("String.uppercase_ascii", 16, "fresh string");
    ("Bytes.create", 16, "fresh bytes"); ("Bytes.make", 16, "fresh bytes");
    ("Bytes.copy", 16, "fresh bytes"); ("Bytes.sub", 16, "fresh bytes");
    ("Bytes.sub_string", 16, "fresh string"); ("Bytes.of_string", 16, "fresh bytes");
    ("Bytes.to_string", 16, "fresh string"); ("Bytes.extend", 16, "fresh bytes");
    ("Buffer.create", 16, "buffer"); ("Buffer.add_string", 8, "amortized growth");
    ("Buffer.add_char", 8, "amortized growth"); ("Buffer.contents", 16, "fresh string");
    ("Buffer.to_bytes", 16, "fresh bytes");
    ("Printf.sprintf", 32, "format interpretation"); ("Printf.printf", 32, "format interpretation");
    ("Printf.eprintf", 32, "format interpretation"); ("Format.asprintf", 32, "format interpretation");
    ("Format.fprintf", 32, "format interpretation"); ("Format.sprintf", 32, "format interpretation");
    ("Hashtbl.create", 16, "table"); ("Hashtbl.add", 4, "bucket cons");
    ("Hashtbl.replace", 4, "bucket cons"); ("Hashtbl.find_opt", 2, "option");
    ("Hashtbl.fold", 8, "closure application"); ("Hashtbl.iter", 8, "closure application");
    ("Hashtbl.remove", 0, ""); ("Hashtbl.copy", 16, "table");
    ("Option.map", 2, "option"); ("Option.bind", 2, "option"); ("Option.value", 0, "");
    ("List.find_opt", 2, "option"); ("List.assoc_opt", 2, "option");
    ("Int64.of_string", 3, "boxed int64"); ("int_of_string", 0, "");
    ("string_of_int", 16, "fresh string"); ("Int.to_string", 16, "fresh string");
    ("ref", 2, "ref cell"); ("Lazy.force", 2, "thunk"); ("Queue.create", 8, "queue");
    ("Queue.push", 4, "queue cell"); ("Queue.pop", 0, "");
    ("Seq.map", 8, "seq node"); ("Seq.filter", 8, "seq node");
    ("Fun.protect", 8, "closure record");
  ]

(* ---- function table ---- *)

type fun_info = {
  fi_key : string;  (* canonical "Mod.fn" *)
  fi_file : string;  (* walked source path, findings speak this *)
  fi_line : int;
  fi_col : int;
  fi_hot : bool;
  fi_stack : string list;  (* enclosing modules, outermost first *)
  fi_body : Typedtree.expression;
}

type tables = {
  funs : (string, fun_info) Hashtbl.t;
  ambiguous : (string, unit) Hashtbl.t;
}

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.Location.txt = name) attrs

let loc_pos (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let add_fun tables fi =
  if Hashtbl.mem tables.funs fi.fi_key then Hashtbl.replace tables.ambiguous fi.fi_key ()
  else Hashtbl.replace tables.funs fi.fi_key fi

let rec collect_structure cfg tables ~file ~stack (str : Typedtree.structure) =
  List.iter (collect_item cfg tables ~file ~stack) str.Typedtree.str_items

and collect_item cfg tables ~file ~stack (item : Typedtree.structure_item) =
  match item.Typedtree.str_desc with
  | Typedtree.Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match vb.Typedtree.vb_pat.Typedtree.pat_desc with
          (* A type-annotated binding (let f : ty = ...) surfaces as
             Tpat_alias rather than Tpat_var. *)
          | Typedtree.Tpat_var (_, name) | Typedtree.Tpat_alias (_, _, name) ->
              let line, col = loc_pos vb.Typedtree.vb_pat.Typedtree.pat_loc in
              let innermost = match List.rev stack with m :: _ -> m | [] -> "" in
              let hot =
                has_attr cfg.Config.hot_attr vb.Typedtree.vb_attributes
                || has_attr cfg.Config.hot_attr vb.Typedtree.vb_expr.Typedtree.exp_attributes
              in
              add_fun tables
                {
                  fi_key = innermost ^ "." ^ name.Location.txt;
                  fi_file = file;
                  fi_line = line;
                  fi_col = col;
                  fi_hot = hot;
                  fi_stack = stack;
                  fi_body = vb.Typedtree.vb_expr;
                }
          | _ -> ())
        vbs
  | Typedtree.Tstr_module mb -> collect_module cfg tables ~file ~stack mb
  | Typedtree.Tstr_recmodule mbs -> List.iter (collect_module cfg tables ~file ~stack) mbs
  | _ -> ()

and collect_module cfg tables ~file ~stack (mb : Typedtree.module_binding) =
  let name =
    match mb.Typedtree.mb_id with Some id -> Ident.name id | None -> "_"
  in
  let rec descend (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s ->
        collect_structure cfg tables ~file ~stack:(stack @ [ name ]) s
    | Typedtree.Tmod_constraint (me, _, _, _) -> descend me
    | _ -> ()
  in
  descend mb.Typedtree.mb_expr

(* ---- callee resolution ---- *)

type callee =
  | Guard  (* a wedge/lease check *)
  | Protected of string  (* mutates durable server state *)
  | Fn of fun_info  (* in the table: follow the edge *)
  | Raising  (* error path: arguments exempt *)
  | Clean
  | Boxing of string * int  (* boxed-number primitive *)
  | Allocating of string * int * string
  | Unknown of string

let resolve cfg tables ~(stack : string list) (p : Path.t) : callee =
  let parts = strip_stdlib (path_parts p) in
  let base = base_of_parts parts in
  if List.mem base cfg.Config.f1_guards then Guard
  else
    let lookup key =
      if List.mem key cfg.Config.f1_protected then Some (Protected key)
      else if Hashtbl.mem tables.ambiguous key then Some (Unknown (key ^ " (ambiguous)"))
      else
        match Hashtbl.find_opt tables.funs key with
        | Some fi -> Some (Fn fi)
        | None -> None
    in
    match parts with
    | [ name ] -> (
        (* Unqualified: a sibling under any enclosing module, else an
           stdlib name in one of the effect tables. *)
        let rec try_stack = function
          | [] -> None
          | m :: outer -> (
              match lookup (m ^ "." ^ name) with Some c -> Some c | None -> try_stack outer)
        in
        match try_stack (List.rev stack) with
        | Some c -> c
        | None ->
            if List.mem name raising_table then Raising
            else if List.mem name clean_table then Clean
            else
              let boxing = List.assoc_opt name boxing_table in
              (match boxing with
              | Some w -> Boxing (name, w)
              | None -> (
                  match
                    List.find_opt (fun (k, _, _) -> k = name) allocating_table
                  with
                  | Some (k, w, what) -> Allocating (k, w, what)
                  | None -> Unknown name)))
    | _ -> (
        let key = key_of_parts parts in
        match lookup key with
        | Some c -> c
        | None ->
            if List.mem key clean_table then Clean
            else
              let boxing = List.assoc_opt key boxing_table in
              (match boxing with
              | Some w -> Boxing (key, w)
              | None -> (
                  match List.find_opt (fun (k, _, _) -> k = key) allocating_table with
                  | Some (k, w, what) -> Allocating (k, w, what)
                  | None -> Unknown key)))

(* ---- A1: per-function allocation summary ---- *)

type alloc_site = { al_line : int; al_col : int; al_words : int; al_what : string }

type a1_summary = { su_allocs : alloc_site list; su_edges : string list }

(* The curried-parameter chain of a binding is not a closure: full
   application goes direct, and partial application is charged at the
   call site. Everything below the chain is the body. *)
let rec function_bodies (e : Typedtree.expression) acc =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { cases; _ } ->
      List.fold_left
        (fun acc (c : Typedtree.value Typedtree.case) ->
          let acc =
            match c.Typedtree.c_guard with Some g -> g :: acc | None -> acc
          in
          function_bodies c.Typedtree.c_rhs acc)
        acc cases
  | _ -> e :: acc

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* Local let-bound lambdas: an application of one is already covered by
   the closure-creation finding at its definition, so the apply itself
   is not separately flagged. *)
let local_lambda_names (e : Typedtree.expression) =
  let names = ref [] in
  let expr it (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match
              (vb.Typedtree.vb_pat.Typedtree.pat_desc, vb.Typedtree.vb_expr.Typedtree.exp_desc)
            with
            | Typedtree.Tpat_var (_, n), Typedtree.Texp_function _ ->
                names := n.Location.txt :: !names
            | _ -> ())
          vbs
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !names

let a1_summarize cfg tables (fi : fun_info) : a1_summary =
  let allocs = ref [] and edges = ref [] in
  let add_alloc loc words what =
    let line, col = loc_pos loc in
    allocs := { al_line = line; al_col = col; al_words = words; al_what = what } :: !allocs
  in
  let bodies = function_bodies fi.fi_body [] in
  let lambdas = List.concat_map local_lambda_names bodies in
  (* exempt: inside a raising call's arguments. unbox: this expression's
     boxed-number result is consumed directly by an unbox consumer. *)
  let rec walk ~exempt ~unbox (e : Typedtree.expression) =
    let desc = e.Typedtree.exp_desc in
    let loc = e.Typedtree.exp_loc in
    match desc with
    | Typedtree.Texp_ident _ | Typedtree.Texp_constant _
    | Typedtree.Texp_instvar _ | Typedtree.Texp_unreachable ->
        ()
    | Typedtree.Texp_let (_, vbs, body) ->
        List.iter
          (fun (vb : Typedtree.value_binding) -> walk ~exempt ~unbox:false vb.Typedtree.vb_expr)
          vbs;
        walk ~exempt ~unbox body
    | Typedtree.Texp_function _ ->
        if not exempt then add_alloc loc 5 "closure creation"
    | Typedtree.Texp_apply (hd, args) ->
        let walk_args ~exempt ~unbox_args =
          List.iter
            (fun (_, a) ->
              match a with Some a -> walk ~exempt ~unbox:unbox_args a | None -> ())
            args
        in
        (match hd.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            let c = resolve cfg tables ~stack:fi.fi_stack p in
            let partial () =
              if (not exempt) && is_arrow e.Typedtree.exp_type then
                add_alloc loc 5 "partial application (closure)"
            in
            match c with
            | Raising -> walk_args ~exempt:true ~unbox_args:false
            | Guard | Clean ->
                partial ();
                let key = key_of_parts (strip_stdlib (path_parts p)) in
                let unbox_args = List.mem key unboxing_table in
                walk_args ~exempt ~unbox_args
            | Boxing (key, w) ->
                partial ();
                if (not exempt) && not unbox then
                  add_alloc loc w ("boxed result of " ^ key);
                walk_args ~exempt ~unbox_args:false
            | Allocating (key, w, what) ->
                if not exempt then
                  add_alloc loc w
                    (key ^ " allocates" ^ if what = "" then "" else " (" ^ what ^ ")");
                walk_args ~exempt ~unbox_args:false
            | Protected _ ->
                (* F1's concern; for allocation treat as unknown-clean. *)
                partial ();
                walk_args ~exempt ~unbox_args:false
            | Fn callee ->
                partial ();
                edges := callee.fi_key :: !edges;
                walk_args ~exempt ~unbox_args:false
            | Unknown name ->
                if not exempt then
                  if List.mem name lambdas then
                    (* local lambda: its creation is already flagged *)
                    ()
                  else if String.contains name '.' then
                    add_alloc loc 8 ("call to " ^ name ^ " outside the analysis tables")
                  else
                    add_alloc loc 8
                      ("indirect call via `" ^ name ^ "` (function value, not analyzable)");
                walk_args ~exempt ~unbox_args:false)
        | _ ->
            if not exempt then add_alloc loc 8 "indirect call through a computed function";
            walk ~exempt ~unbox:false hd;
            walk_args ~exempt ~unbox_args:false)
    | Typedtree.Texp_match (e0, cases, _) ->
        walk ~exempt ~unbox:false e0;
        List.iter
          (fun (c : Typedtree.computation Typedtree.case) ->
            (match c.Typedtree.c_guard with Some g -> walk ~exempt ~unbox:false g | None -> ());
            walk ~exempt ~unbox c.Typedtree.c_rhs)
          cases
    | Typedtree.Texp_try (b, cases) ->
        walk ~exempt ~unbox b;
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            (match c.Typedtree.c_guard with Some g -> walk ~exempt ~unbox:false g | None -> ());
            walk ~exempt ~unbox c.Typedtree.c_rhs)
          cases
    | Typedtree.Texp_tuple es ->
        if not exempt then add_alloc loc (List.length es + 1) "tuple";
        List.iter (walk ~exempt ~unbox:false) es
    | Typedtree.Texp_construct (_, cd, args) ->
        if args <> [] && not exempt then
          add_alloc loc
            (List.length args + 1)
            ("constructor " ^ cd.Types.cstr_name ^ " with arguments");
        List.iter (walk ~exempt ~unbox:false) args
    | Typedtree.Texp_variant (_, arg) ->
        (match arg with
        | Some a ->
            if not exempt then add_alloc loc 3 "polymorphic variant";
            walk ~exempt ~unbox:false a
        | None -> ())
    | Typedtree.Texp_record { fields; extended_expression; _ } ->
        if not exempt then add_alloc loc (Array.length fields + 1) "record";
        Array.iter
          (fun (_, def) ->
            match def with
            | Typedtree.Overridden (_, e) -> walk ~exempt ~unbox:false e
            | Typedtree.Kept _ -> ())
          fields;
        (match extended_expression with Some e -> walk ~exempt ~unbox:false e | None -> ())
    | Typedtree.Texp_field (a, _, _) -> walk ~exempt ~unbox:false a
    | Typedtree.Texp_setfield (a, _, _, b) ->
        walk ~exempt ~unbox:false a;
        walk ~exempt ~unbox:false b
    | Typedtree.Texp_array es ->
        if not exempt then add_alloc loc (List.length es + 1) "array literal";
        List.iter (walk ~exempt ~unbox:false) es
    | Typedtree.Texp_ifthenelse (c, t, f) ->
        walk ~exempt ~unbox:false c;
        walk ~exempt ~unbox t;
        (match f with Some f -> walk ~exempt ~unbox f | None -> ())
    | Typedtree.Texp_sequence (a, b) ->
        walk ~exempt ~unbox:false a;
        walk ~exempt ~unbox b
    | Typedtree.Texp_while (c, b) ->
        walk ~exempt ~unbox:false c;
        walk ~exempt ~unbox:false b
    | Typedtree.Texp_for (_, _, lo, hi, _, b) ->
        walk ~exempt ~unbox:false lo;
        walk ~exempt ~unbox:false hi;
        walk ~exempt ~unbox:false b
    | Typedtree.Texp_assert (e, _) -> walk ~exempt:true ~unbox:false e
    | Typedtree.Texp_lazy e ->
        if not exempt then add_alloc loc 3 "lazy thunk";
        walk ~exempt ~unbox:false e
    | Typedtree.Texp_open (_, e) -> walk ~exempt ~unbox e
    | Typedtree.Texp_letexception (_, e) -> walk ~exempt ~unbox e
    | _ ->
        if not exempt then
          add_alloc loc 8 "construct outside the A1 allocation model"
  in
  List.iter (walk ~exempt:false ~unbox:false) bodies;
  { su_allocs = List.rev !allocs; su_edges = List.rev !edges }

(* ---- F1: latch walk + unsafe fixpoint ---- *)

type f1_site = { fs_line : int; fs_col : int; fs_what : string }

type f1_summary = {
  f1_direct : f1_site list;  (* protected ops reached unguarded *)
  f1_calls : (f1_site * string) list;  (* unguarded edges: site, callee key *)
}

let f1_summarize cfg tables (fi : fun_info) : f1_summary =
  let direct = ref [] and calls = ref [] in
  let site loc what =
    let line, col = loc_pos loc in
    { fs_line = line; fs_col = col; fs_what = what }
  in
  (* Returns whether the continuation is guarded after evaluating [e]
     from a [guarded] state. The latch only sets: polarity of the check
     is the runtime tests' concern; presence is ours. *)
  let rec walk guarded (e : Typedtree.expression) : bool =
    let desc = e.Typedtree.exp_desc in
    let loc = e.Typedtree.exp_loc in
    match desc with
    | Typedtree.Texp_ident _ | Typedtree.Texp_constant _ | Typedtree.Texp_instvar _
    | Typedtree.Texp_unreachable ->
        guarded
    | Typedtree.Texp_let (_, vbs, body) ->
        let g =
          List.fold_left
            (fun g (vb : Typedtree.value_binding) -> walk g vb.Typedtree.vb_expr)
            guarded vbs
        in
        walk g body
    | Typedtree.Texp_function { cases; _ } ->
        (* A closure runs later, but conservatively at least as late as
           its creation: walk the body in the current state. *)
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            (match c.Typedtree.c_guard with Some g -> ignore (walk guarded g) | None -> ());
            ignore (walk guarded c.Typedtree.c_rhs))
          cases;
        guarded
    | Typedtree.Texp_apply (hd, args) -> (
        let g =
          List.fold_left
            (fun g (_, a) -> match a with Some a -> walk g a | None -> g)
            guarded args
        in
        match hd.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            match resolve cfg tables ~stack:fi.fi_stack p with
            | Guard -> true
            | Protected key ->
                if not g then direct := site loc key :: !direct;
                g
            | Fn callee ->
                if not g then calls := (site loc callee.fi_key, callee.fi_key) :: !calls;
                g
            | Raising | Clean | Boxing _ | Allocating _ | Unknown _ -> g)
        | _ -> walk g hd)
    | Typedtree.Texp_match (e0, cases, _) ->
        let g = walk guarded e0 in
        if cases = [] then g
        else
          List.fold_left
            (fun acc (c : Typedtree.computation Typedtree.case) ->
              let gc =
                match c.Typedtree.c_guard with Some gd -> walk g gd | None -> g
              in
              let gr = walk gc c.Typedtree.c_rhs in
              acc && gr)
            true cases
    | Typedtree.Texp_try (b, cases) ->
        let g = walk guarded b in
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            (match c.Typedtree.c_guard with Some gd -> ignore (walk guarded gd) | None -> ());
            ignore (walk guarded c.Typedtree.c_rhs))
          cases;
        g
    | Typedtree.Texp_tuple es | Typedtree.Texp_array es ->
        List.fold_left walk guarded es
    | Typedtree.Texp_construct (_, _, args) -> List.fold_left walk guarded args
    | Typedtree.Texp_variant (_, arg) -> (
        match arg with Some a -> walk guarded a | None -> guarded)
    | Typedtree.Texp_record { fields; extended_expression; _ } ->
        let g =
          Array.fold_left
            (fun g (_, def) ->
              match def with
              | Typedtree.Overridden (_, e) -> walk g e
              | Typedtree.Kept _ -> g)
            guarded fields
        in
        (match extended_expression with Some e -> walk g e | None -> g)
    | Typedtree.Texp_field (a, _, _) -> walk guarded a
    | Typedtree.Texp_setfield (a, _, _, b) -> walk (walk guarded a) b
    | Typedtree.Texp_ifthenelse (c, t, f) ->
        let g = walk guarded c in
        let gt = walk g t in
        let gf = match f with Some f -> walk g f | None -> g in
        gt && gf
    | Typedtree.Texp_sequence (a, b) -> walk (walk guarded a) b
    | Typedtree.Texp_while (c, b) ->
        let g = walk guarded c in
        ignore (walk g b);
        g
    | Typedtree.Texp_for (_, _, lo, hi, _, b) ->
        let g = walk (walk guarded lo) hi in
        ignore (walk g b);
        g
    | Typedtree.Texp_assert (e, _) -> walk guarded e
    | Typedtree.Texp_lazy e ->
        ignore (walk guarded e);
        guarded
    | Typedtree.Texp_open (_, e) -> walk guarded e
    | Typedtree.Texp_letexception (_, e) -> walk guarded e
    | _ -> guarded
  in
  ignore (walk false fi.fi_body);
  { f1_direct = List.rev !direct; f1_calls = List.rev !calls }

(* ---- cmt discovery ---- *)

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let find_cmts dir =
  let out = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | true ->
        if Filename.basename path <> ".git" then
          Array.iter (fun f -> walk (Filename.concat path f)) (Sys.readdir path)
    | false -> if ends_with ~suffix:".cmt" path then out := path :: !out
    | exception Sys_error _ -> ()
  in
  walk dir;
  List.sort String.compare !out

(* The cmt's recorded source path is relative to the build-context root;
   the walked path is relative to the scan's cwd. Either may be a proper
   suffix of the other at a '/' boundary. *)
let path_matches ~cmt_src ~walked =
  cmt_src = walked
  || ends_with ~suffix:("/" ^ walked) cmt_src
  || ends_with ~suffix:("/" ^ cmt_src) walked

(* ---- analysis driver ---- *)

type hot_root = {
  hr_name : string;
  hr_file : string;
  hr_line : int;
  hr_words : int;
  hr_sites : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exported value names of the .mli next to [ml_file], or None when no
   interface exists (then every top-level binding is an entry point). *)
let exported_names ~files ~ml_file =
  let mli = String.sub ml_file 0 (String.length ml_file - 3) ^ ".mli" in
  if not (List.mem mli files && Sys.file_exists mli) then None
  else
    match Parse.interface (Lexing.from_string (read_file mli)) with
    | sg ->
        Some
          (List.filter_map
             (fun (it : Parsetree.signature_item) ->
               match it.Parsetree.psig_desc with
               | Parsetree.Psig_value vd -> Some vd.Parsetree.pval_name.Location.txt
               | _ -> None)
             sg)
    | exception _ -> None

let analyze cfg ~cmt_dir ~files =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let ml_files = List.filter (fun f -> ends_with ~suffix:".ml" f) files in
  let tables = { funs = Hashtbl.create 512; ambiguous = Hashtbl.create 8 } in
  let matched : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | exception _ -> ()
      | cmt -> (
          match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
          | Some src, Cmt_format.Implementation str -> (
              match
                List.find_opt (fun w -> path_matches ~cmt_src:src ~walked:w) ml_files
              with
              | None -> ()
              | Some walked ->
                  if not (Hashtbl.mem matched walked) then begin
                    Hashtbl.replace matched walked ();
                    let modname = canonical_modname cmt.Cmt_format.cmt_modname in
                    collect_structure cfg tables ~file:walked ~stack:[ modname ] str
                  end)
          | _ -> ()))
    (find_cmts cmt_dir);
  (* A hot-path or fenced file with no cmt is a broken gate, not a clean
     one: fail loudly so the tier cannot silently rot away. *)
  List.iter
    (fun f ->
      if not (Hashtbl.mem matched f) then begin
        if cfg.Config.a1_scope f then
          add
            (F.make ~file:f ~line:1 ~col:0 ~rule:F.A1
               "A1: no .cmt found for this hot-path file — build it before linting \
                (check --cmt-dir)");
        if cfg.Config.f1_scope f then
          add
            (F.make ~file:f ~line:1 ~col:0 ~rule:F.F1
               "F1: no .cmt found for this fenced module — build it before linting \
                (check --cmt-dir)")
      end)
    ml_files;
  (* ---- A1 ---- *)
  let a1_memo : (string, a1_summary) Hashtbl.t = Hashtbl.create 64 in
  let summarize fi =
    match Hashtbl.find_opt a1_memo fi.fi_key with
    | Some s -> s
    | None ->
        let s = a1_summarize cfg tables fi in
        Hashtbl.replace a1_memo fi.fi_key s;
        s
  in
  let hot_roots = ref [] in
  let roots =
    Hashtbl.fold
      (fun _ fi acc -> if fi.fi_hot && cfg.Config.a1_scope fi.fi_file then fi :: acc else acc)
      tables.funs []
    |> List.sort (fun a b -> String.compare a.fi_key b.fi_key)
  in
  let reported : (string * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun root ->
      let visited : (string, unit) Hashtbl.t = Hashtbl.create 16 in
      let words = ref 0 and sites = ref 0 in
      let rec visit fi =
        if not (Hashtbl.mem visited fi.fi_key) then begin
          Hashtbl.replace visited fi.fi_key ();
          let s = summarize fi in
          List.iter
            (fun al ->
              words := !words + al.al_words;
              incr sites;
              let where =
                if fi.fi_key = root.fi_key then ""
                else Printf.sprintf " in %s" fi.fi_key
              in
              if not (Hashtbl.mem reported (fi.fi_file, al.al_line, al.al_col)) then begin
                Hashtbl.replace reported (fi.fi_file, al.al_line, al.al_col) ();
                add
                  (F.make ~file:fi.fi_file ~line:al.al_line ~col:al.al_col ~rule:F.A1
                     ~words:al.al_words
                     (Printf.sprintf "A1: %s (~%d words)%s — reachable from [@hot] %s"
                        al.al_what al.al_words where root.fi_key))
              end)
            s.su_allocs;
          List.iter
            (fun key ->
              match Hashtbl.find_opt tables.funs key with
              | Some callee -> visit callee
              | None -> ())
            s.su_edges
        end
      in
      visit root;
      hot_roots :=
        {
          hr_name = root.fi_key;
          hr_file = root.fi_file;
          hr_line = root.fi_line;
          hr_words = !words;
          hr_sites = !sites;
        }
        :: !hot_roots)
    roots;
  (* ---- F1 ---- *)
  let f1_memo : (string, f1_summary) Hashtbl.t = Hashtbl.create 64 in
  let f1_sum fi =
    match Hashtbl.find_opt f1_memo fi.fi_key with
    | Some s -> s
    | None ->
        let s = f1_summarize cfg tables fi in
        Hashtbl.replace f1_memo fi.fi_key s;
        s
  in
  let fenced_files = List.filter cfg.Config.f1_scope ml_files in
  List.iter
    (fun file ->
      if Hashtbl.mem matched file then begin
        let in_file =
          Hashtbl.fold
            (fun _ fi acc -> if fi.fi_file = file then fi :: acc else acc)
            tables.funs []
          |> List.sort (fun a b -> compare (a.fi_line, a.fi_col) (b.fi_line, b.fi_col))
        in
        (* Transitive closure over unguarded edges, then a fixpoint for
           unsafe(f): reaches a protected op with no guard on the way. *)
        let involved : (string, fun_info) Hashtbl.t = Hashtbl.create 32 in
        let rec gather fi =
          if not (Hashtbl.mem involved fi.fi_key) then begin
            Hashtbl.replace involved fi.fi_key fi;
            List.iter
              (fun (_, key) ->
                match Hashtbl.find_opt tables.funs key with
                | Some callee -> gather callee
                | None -> ())
              (f1_sum fi).f1_calls
          end
        in
        List.iter gather in_file;
        let unsafe : (string, unit) Hashtbl.t = Hashtbl.create 16 in
        let changed = ref true in
        while !changed do
          changed := false;
          Hashtbl.iter
            (fun key fi ->
              if not (Hashtbl.mem unsafe key) then begin
                let s = f1_sum fi in
                if
                  s.f1_direct <> []
                  || List.exists (fun (_, k) -> Hashtbl.mem unsafe k) s.f1_calls
                then begin
                  Hashtbl.replace unsafe key ();
                  changed := true
                end
              end)
            involved
        done;
        let witness fi =
          let rec chase fi depth =
            let s = f1_sum fi in
            match s.f1_direct with
            | w :: _ -> Printf.sprintf "%s at %s:%d" w.fs_what fi.fi_file w.fs_line
            | [] -> (
                match
                  List.find_opt (fun (_, k) -> Hashtbl.mem unsafe k) s.f1_calls
                with
                | Some (w, key) when depth < 6 -> (
                    match Hashtbl.find_opt tables.funs key with
                    | Some callee ->
                        Printf.sprintf "%s (%s:%d) -> %s" key fi.fi_file w.fs_line
                          (chase callee (depth + 1))
                    | None -> Printf.sprintf "%s at %s:%d" key fi.fi_file w.fs_line)
                | _ -> "unguarded path")
          in
          chase fi 0
        in
        let exported = exported_names ~files ~ml_file:file in
        List.iter
          (fun fi ->
            let name =
              match String.index_opt fi.fi_key '.' with
              | Some i -> String.sub fi.fi_key (i + 1) (String.length fi.fi_key - i - 1)
              | None -> fi.fi_key
            in
            let is_entry =
              List.length fi.fi_stack = 1
              && match exported with None -> true | Some names -> List.mem name names
            in
            if is_entry && Hashtbl.mem unsafe fi.fi_key then
              add
                (F.make ~file:fi.fi_file ~line:fi.fi_line ~col:fi.fi_col ~rule:F.F1
                   (Printf.sprintf
                      "F1: exported %s reaches a protected mutation without a dominating \
                       wedge/lease check (via %s)"
                      fi.fi_key (witness fi))))
          in_file
      end)
    fenced_files;
  let by_file = Hashtbl.create 16 in
  List.iter
    (fun (f : F.t) ->
      let cur = match Hashtbl.find_opt by_file f.F.file with Some l -> l | None -> [] in
      Hashtbl.replace by_file f.F.file (f :: cur))
    !findings;
  let per_file = Hashtbl.fold (fun file fs acc -> (file, List.rev fs) :: acc) by_file [] in
  ( per_file,
    List.sort (fun a b -> String.compare a.hr_name b.hr_name) !hot_roots )

(** Structured request tracing.

    A span records one hop of one request: id, parent, op class, site,
    sim-time start/stop, and an outcome.  Spans form trees rooted at the
    µproxy's interception of a client call; remote hops attach to the
    right tree through the RPC xid (globally unique per simulation).

    The disabled path is allocation-free: every operation on {!null} is
    a constant-time no-op, and children of an unallocated span are
    themselves {!null}, so recorded trees are always complete — the span
    cap truncates whole requests, never subtrees. *)

type t
(** A tracer: one per simulation, owning span storage and the xid
    binding table. *)

type span

val null : span
(** The inert span: all operations on it are no-ops.  Handed out when
    tracing is disabled, the root was not sampled, or the cap was hit. *)

val is_live : span -> bool

val create : Slice_sim.Engine.t -> ?sample:float -> ?cap:int -> ?seed:int -> unit -> t
(** [sample] is the fraction of request roots recorded (default 1.0,
    drawn from a private deterministic PRNG); [cap] bounds total spans
    retained (default 200k) — past it new roots are dropped whole. *)

val root : t option -> op:string -> site:string -> span
(** Open a request root (hop ["request"]).  [None] tracer gives {!null}. *)

val child : span -> ?op:string -> hop:string -> site:string -> unit -> span
(** Open a child span under [sp]; starts now, op defaults to the parent's. *)

val finish : ?outcome:string -> span -> unit
(** Close at current sim time (default outcome ["ok"]). *)

val finish_at : ?outcome:string -> span -> float -> unit
(** Close at an explicit sim time (clamped to the span's start). *)

val emit :
  span -> ?op:string -> hop:string -> site:string -> start:float -> stop:float ->
  ?outcome:string -> unit -> unit
(** Record an already-completed child of [sp] over [\[start, stop\]];
    dropped when the interval is empty. *)

val timed : span -> hop:string -> site:string -> (unit -> 'a) -> 'a
(** Run [f] and record it as a completed child if it consumed sim time. *)

val bind_xid : span -> int -> unit
(** Register [sp] as the parent for remote spans carrying this xid. *)

val unbind_xid : span -> int -> unit
val span_of_xid : t option -> int -> span

type info = {
  i_id : int;
  i_parent : int; (* 0 for roots *)
  i_op : string;
  i_hop : string;
  i_site : string;
  i_start : float;
  i_stop : float;
  i_outcome : string; (* "unfinished" when never closed *)
}

val count : t -> int
val dropped : t -> int
val infos : t -> info list

val to_json : t -> Slice_util.Json.t
(** Deterministic dump: spans in id order, fixed field order. *)

val hop_breakdown : t -> (string * string * Slice_util.Stats.t) list
(** [(op, hop, stats)] rows sorted by op then hop.  A span's self time is
    its duration minus its direct children's durations (clamped ≥ 0);
    roots contribute a ["total"] row (full duration) and a ["network"]
    row (root self time: wire + queueing no hop accounts for). *)

(* Structured request tracing for the simulation.

   A span records one hop of one request: an id, its parent span, the
   request's op class, the site (node) where the hop ran, sim-time
   start/stop, and an outcome string.  Spans form trees rooted at the
   µproxy's interception of a client call; remote hops (server handler,
   disk, WAL) attach to the right tree through the RPC xid, which is
   globally unique per simulation.

   The disabled path is allocation-free: every operation on [null] (the
   span handed out when tracing is off, the root was not sampled, or the
   span cap was reached) is a constant-time no-op.  Because children of
   an unallocated span are themselves [null], recorded trees are always
   complete — the cap truncates whole requests, never subtrees. *)

module Engine = Slice_sim.Engine
module Prng = Slice_util.Prng
module Json = Slice_util.Json
module Stats = Slice_util.Stats

type t = {
  eng : Engine.t;
  sample : float;
  prng : Prng.t;
  cap : int;
  mutable spans : span array; (* index i holds the span with id i+1 *)
  mutable len : int;
  mutable dropped : int;
  xids : (int, span) Hashtbl.t; (* one row per in-flight rpc xid *)
}

and span = {
  tr : t option; (* None = the null span: every op is a no-op *)
  id : int;
  parent : int; (* 0 for roots *)
  op : string;
  hop : string;
  site : string;
  t_start : float;
  mutable t_stop : float;
  mutable outcome : string;
}

let null =
  { tr = None; id = 0; parent = 0; op = ""; hop = ""; site = ""; t_start = 0.0;
    t_stop = 0.0; outcome = "" }

let is_live sp = sp.tr <> None

let create eng ?(sample = 1.0) ?(cap = 200_000) ?(seed = 0x7ace) () =
  { eng; sample; prng = Prng.create seed; cap; spans = Array.make 256 null;
    (* lint: bounded — one row per in-flight rpc xid, removed on unbind *)
    len = 0; dropped = 0; xids = Hashtbl.create 256 }

let record t sp =
  if t.len = Array.length t.spans then begin
    let bigger = Array.make (2 * t.len) null in
    Array.blit t.spans 0 bigger 0 t.len;
    t.spans <- bigger
  end;
  t.spans.(t.len) <- sp;
  t.len <- t.len + 1

let alloc t ~parent ~op ~hop ~site ~start =
  if t.len >= t.cap then begin
    t.dropped <- t.dropped + 1;
    null
  end
  else begin
    let sp =
      { tr = Some t; id = t.len + 1; parent; op; hop; site; t_start = start;
        t_stop = start; outcome = "" }
    in
    record t sp;
    sp
  end

let root topt ~op ~site =
  match topt with
  | None -> null
  | Some t ->
      if t.sample < 1.0 && Prng.float t.prng 1.0 >= t.sample then null
      else alloc t ~parent:0 ~op ~hop:"request" ~site ~start:(Engine.now t.eng)

let child sp ?op ~hop ~site () =
  match sp.tr with
  | None -> null
  | Some t ->
      let op = match op with Some o -> o | None -> sp.op in
      alloc t ~parent:sp.id ~op ~hop ~site ~start:(Engine.now t.eng)

let finish_at ?(outcome = "ok") sp stop =
  match sp.tr with
  | None -> ()
  | Some _ ->
      sp.t_stop <- (if stop > sp.t_start then stop else sp.t_start);
      sp.outcome <- outcome

let finish ?outcome sp =
  match sp.tr with
  | None -> ()
  | Some t -> finish_at ?outcome sp (Engine.now t.eng)

let emit sp ?op ~hop ~site ~start ~stop ?(outcome = "ok") () =
  match sp.tr with
  | None -> ()
  | Some t ->
      if stop > start then begin
        let op = match op with Some o -> o | None -> sp.op in
        let c = alloc t ~parent:sp.id ~op ~hop ~site ~start in
        finish_at ~outcome c stop
      end

let timed sp ~hop ~site f =
  match sp.tr with
  | None -> f ()
  | Some t ->
      let start = Engine.now t.eng in
      let r = f () in
      emit sp ~hop ~site ~start ~stop:(Engine.now t.eng) ();
      r

let bind_xid sp xid =
  match sp.tr with None -> () | Some t -> Hashtbl.replace t.xids xid sp

let unbind_xid sp xid =
  match sp.tr with None -> () | Some t -> Hashtbl.remove t.xids xid

let span_of_xid topt xid =
  match topt with
  | None -> null
  | Some t -> ( match Hashtbl.find_opt t.xids xid with Some sp -> sp | None -> null)

(* -- inspection ---------------------------------------------------------- *)

type info = {
  i_id : int;
  i_parent : int;
  i_op : string;
  i_hop : string;
  i_site : string;
  i_start : float;
  i_stop : float;
  i_outcome : string;
}

let info_of sp =
  { i_id = sp.id; i_parent = sp.parent; i_op = sp.op; i_hop = sp.hop;
    i_site = sp.site; i_start = sp.t_start; i_stop = sp.t_stop;
    i_outcome = (if sp.outcome = "" then "unfinished" else sp.outcome) }

let count t = t.len
let dropped t = t.dropped
let infos t = List.init t.len (fun i -> info_of t.spans.(i))

let to_json t =
  (* Spans are stored in id order, so the dump is deterministic without a
     sort; fields within each object are emitted in a fixed order. *)
  let one sp =
    let i = info_of sp in
    Json.Obj
      [
        ("hop", Json.Str i.i_hop);
        ("id", Json.Num (float_of_int i.i_id));
        ("op", Json.Str i.i_op);
        ("outcome", Json.Str i.i_outcome);
        ("parent", Json.Num (float_of_int i.i_parent));
        ("site", Json.Str i.i_site);
        ("start", Json.Num i.i_start);
        ("stop", Json.Num i.i_stop);
      ]
  in
  Json.Obj
    [
      ("dropped", Json.Num (float_of_int t.dropped));
      ("spans", Json.Arr (List.init t.len (fun i -> one t.spans.(i))));
    ]

(* -- per-hop latency breakdown ------------------------------------------ *)

(* Self-time analysis: a span's self time is its duration minus the summed
   durations of its direct children (clamped at zero — overlapping
   concurrent children, e.g. mirrored writes, can exceed the parent).
   A root's self time is the part of request latency no hop accounts for:
   wire time plus queueing, reported as "network". *)
let hop_breakdown t =
  let n = t.len in
  let child_sum = Array.make (n + 1) 0.0 in
  let root_of = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let sp = t.spans.(i) in
    let dur = Stdlib.max 0.0 (sp.t_stop -. sp.t_start) in
    if sp.parent > 0 then begin
      (* Parents always allocate before children, so parent < id. *)
      child_sum.(sp.parent) <- child_sum.(sp.parent) +. dur;
      root_of.(sp.id) <- root_of.(sp.parent)
    end
    else root_of.(sp.id) <- sp.id
  done;
  (* Per-request, per-hop self-time sums, then per-op-class distributions. *)
  (* lint: bounded — keyed by (root id, hop); local to this analysis call *)
  let per_req : (int * string, float ref) Hashtbl.t = Hashtbl.create 256 in
  let bump root hop v =
    match Hashtbl.find_opt per_req (root, hop) with
    | Some r -> r := !r +. v
    | None -> Hashtbl.replace per_req (root, hop) (ref v)
  in
  for i = 0 to n - 1 do
    let sp = t.spans.(i) in
    let dur = Stdlib.max 0.0 (sp.t_stop -. sp.t_start) in
    let self = Stdlib.max 0.0 (dur -. child_sum.(sp.id)) in
    let root = root_of.(sp.id) in
    if sp.parent = 0 then begin
      bump root "total" dur;
      bump root "network" self
    end
    else bump root sp.hop self
  done;
  (* lint: bounded — keyed by (op class, hop name); both small sets *)
  let dists : (string * string, Stats.t) Hashtbl.t = Hashtbl.create 64 in
  (* lint: D2 ok — fold output is sorted on the next line *)
  let rows = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) per_req [] in
  let rows = List.sort compare rows in
  List.iter
    (fun ((root, hop), v) ->
      let op = t.spans.(root - 1).op in
      let s =
        match Hashtbl.find_opt dists (op, hop) with
        | Some s -> s
        | None ->
            let s = Stats.create () in
            Hashtbl.replace dists (op, hop) s;
            s
      in
      Stats.add s v)
    rows;
  (* lint: D2 ok — fold output is sorted on the next line *)
  let out = Hashtbl.fold (fun k v acc -> (k, v) :: acc) dists [] in
  List.sort (fun (a, _) (b, _) -> compare a b) out
  |> List.map (fun ((op, hop), s) -> (op, hop, s))

module Engine = Slice_sim.Engine
module Fiber = Slice_sim.Fiber
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Packet = Slice_net.Packet
module Cksum = Slice_net.Cksum
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Routekey = Slice_nfs.Routekey
module Host = Slice_storage.Host
module Ctrl = Slice_storage.Ctrl
module Prng = Slice_util.Prng
module Lru = Slice_util.Lru
module Trace = Slice_trace.Trace

type targets = {
  virtual_addr : Packet.addr;
  dir_table : Table.t;
  smallfile_table : Table.t option;
  storage : Table.t option;
  coordinator : unit -> (Packet.addr * int) option;
      (* resolved at call time: a coordinator takeover rebinds the
         endpoint without reinstalling every µproxy *)
}

type phase_cpu = {
  interception : float;
  decode : float;
  rewrite : float;
  soft_state : float;
}

type klass = KName | KStorage | KSmallfile

type pending = {
  p_klass : klass;
  p_fh : Fh.t option;
  p_proc : int;
  p_name : string option; (* name argument: feeds the name cache on reply *)
  p_offset : int64 option;
  p_count : int option;
  p_orig : bytes; (* pristine client payload: misdirect / failover retry *)
  p_rd_site : int; (* readdir: logical dir site the request was sent to *)
  p_born : float; (* arrival time; refreshed by each client retransmit *)
  p_epoch : int; (* meta_epoch at forward time: replies from before an
                    invalidation must not (re)populate the metadata cache *)
  p_tblv : int * int * int; (* (dir, smallfile, storage) table versions at
                               forward time: a bounce with unchanged
                               versions means the move has not committed
                               yet, so the retry must back off *)
  p_retries : int; (* misdirect retries already spent on this request *)
  mutable p_mirror_left : int;
  mutable p_worst : int; (* worst NFS status seen across mirror acks *)
  p_span : Trace.span; (* request root; finished when the reply leaves *)
}

type cached_attr = {
  ca_fh : Fh.t;
  mutable ca_attr : Nfs.fattr;
  mutable ca_dirty : bool;
  mutable ca_valid_until : float;
      (* lease deadline for serving this attr from the fast path; only an
         authoritative directory-server reply grants one. neg_infinity on
         fabricated entries, so locally-invented attrs are never served. *)
}

type meta_cache_stats = {
  hits : int;  (** positive lookup/getattr/access answered at the proxy *)
  negative_hits : int;  (** lookups answered NOENT from a negative entry *)
  misses : int;  (** fast-path attempts forwarded for lack of an entry *)
  stale : int;  (** fast-path attempts forwarded because a lease lapsed *)
  invalidations : int;  (** mutating ops that invalidated cached entries *)
}

type t = {
  host : Host.t;
  net : Net.t;
  eng : Engine.t;
  p : Params.t;
  trace : Trace.t option;
  tg : targets;
  prng : Prng.t;
  rpc : Rpc.t;
  pending : (int, pending) Hashtbl.t;
  attrs : (int64, cached_attr) Lru.t;
  name_cache : (int64 * string, Fh.t option) Lru.t;
      (* (dir file-id, component) -> handle; None is a negative entry *)
  map_cache : (int64, int * int array) Lru.t;
      (* file-id -> (generation, per-chunk logical storage site); the
         generation guards against a recycled file-id routing I/O to old
         sites. Entries are logical, so a migration never invalidates
         them — the site is bound to a physical node at forward time. *)
  intents_open : (int64, int64) Hashtbl.t;
  mutable meta_epoch : int;
  mutable fence_seen : int;
      (* sum of the routing tables' fencing epochs at the last refresh; an
         advance means a manager was deposed and the caches hold entries
         from a dead incarnation *)
  mutable n_fence_inval : int;
  (* private snapshots (hints) of the routing tables *)
  mutable dir_map : Packet.addr array;
  mutable dir_version : int;
  mutable sf_map : Packet.addr array;
  mutable sf_version : int;
  mutable st_map : Packet.addr array;
  mutable st_version : int;
  (* Table 3 phase accounting *)
  mutable t_intercept : float;
  mutable t_decode : float;
  mutable t_rewrite : float;
  mutable t_softstate : float;
  (* counters *)
  mutable n_intercepted : int;
  mutable n_replies : int;
  mutable n_storage : int;
  mutable n_smallfile : int;
  mutable n_dir : int;
  dir_hist : int array;
  mutable n_mkdir_redirect : int;
  mutable n_mirror_dup : int;
  mutable n_attr_patch : int;
  mutable n_writeback : int;
  mutable n_commits : int;
  mutable n_intents : int;
  mutable n_stale : int;
  mutable n_map_fetch : int;
  mutable n_expired : int;
  mutable n_meta_hit : int;
  mutable n_meta_neg_hit : int;
  mutable n_meta_miss : int;
  mutable n_meta_stale : int;
  mutable n_meta_inval : int;
  mutable sweep_armed : bool;
}

let[@hot] meta_enabled t = t.p.Params.meta_cache_enabled && t.p.Params.meta_cache_ttl > 0.0

(* ---- per-packet cost accounting ----
   Phases accumulate into a per-packet cell, are charged to the client CPU
   in one booking, and the packet moves on when the booking completes. *)

type cost = { mutable c_total : float; mutable c_span : Trace.span }

let charge t (c : cost) phase amount =
  c.c_total <- c.c_total +. amount;
  match phase with
  | `Intercept -> t.t_intercept <- t.t_intercept +. amount
  | `Decode -> t.t_decode <- t.t_decode +. amount
  | `Rewrite -> t.t_rewrite <- t.t_rewrite +. amount
  | `Softstate -> t.t_softstate <- t.t_softstate +. amount

let after_cpu t (c : cost) k =
  let start = Engine.now t.eng in
  let finish = Host.cpu_async t.host c.c_total in
  (* the booking covers queueing behind earlier packets plus this
     packet's own phases *)
  Trace.emit c.c_span ~hop:"proxy" ~site:(Host.name t.host) ~start ~stop:finish ();
  Engine.schedule_at t.eng finish k

(* ---- outgoing calls from the µproxy itself ---- *)

let nfs_call t ?(span = Trace.null) (call : Nfs.call) ~dst =
  let xid = Rpc.fresh_xid t.rpc in
  let payload = Codec.encode_call ~xid call in
  let reply =
    Rpc.call t.rpc ~span ~timeout:2.0 ~dst ~dport:2049
      ~extra_size:(Codec.extra_size_of_call call) payload
  in
  snd (Codec.decode_reply reply)

let ctrl_call t ?(span = Trace.null) msg =
  match t.tg.coordinator () with
  | None -> Ctrl.Nack
  | Some (addr, port) ->
      let xid = Rpc.fresh_xid t.rpc in
      let reply =
        Rpc.call t.rpc ~span ~timeout:2.0 ~dst:addr ~dport:port (Ctrl.encode_msg ~xid msg)
      in
      snd (Ctrl.decode_reply reply)

(* ---- attribute cache ---- *)

let cached_attr t (fh : Fh.t) =
  match Lru.find t.attrs fh.Fh.file_id with
  | Some c -> c
  | None ->
      let c =
        {
          ca_fh = fh;
          ca_attr = Nfs.default_attr ~ftype:fh.Fh.ftype ~fileid:fh.Fh.file_id ~now:(Engine.now t.eng);
          ca_dirty = false;
          ca_valid_until = neg_infinity;
        }
      in
      Lru.add t.attrs fh.Fh.file_id c;
      c

let[@hot] dir_phys t logical =
  let n = Array.length t.dir_map in
  (* No directory sites (misconfiguration or a snapshot taken mid-reshape):
     aim at the virtual address, where the packet is counted as a drop and
     the client's retransmission gets another chance after a refresh —
     never divide by zero in the fast path. *)
  if n = 0 then t.tg.virtual_addr else t.dir_map.(logical mod n)

(* Push one dirty cached attribute back to its directory server (the
   paper's setattr write-back on commit / eviction / interval). *)
let writeback_one t (c : cached_attr) =
  if c.ca_dirty then begin
    c.ca_dirty <- false;
    t.n_writeback <- t.n_writeback + 1;
    let a = c.ca_attr in
    let s =
      {
        Nfs.sattr_empty with
        set_size = Some a.Nfs.size;
        set_mtime = Some a.Nfs.mtime;
        set_atime = Some a.Nfs.atime;
      }
    in
    ignore (nfs_call t (Nfs.Setattr (c.ca_fh, s)) ~dst:(dir_phys t c.ca_fh.Fh.attr_site))
  end

let writeback_dirty_attrs t =
  let dirty = ref [] in
  Lru.iter t.attrs (fun _ c -> if c.ca_dirty then dirty := c :: !dirty);
  List.iter (fun c -> Engine.spawn t.eng (fun () -> writeback_one t c)) !dirty

(* ---- table snapshots ---- *)

let combined_epoch_of targets =
  Table.epoch targets.dir_table
  + (match targets.smallfile_table with Some tbl -> Table.epoch tbl | None -> 0)
  + (match targets.storage with Some tbl -> Table.epoch tbl | None -> 0)

(* A fencing-epoch advance means a manager was deposed by a takeover:
   every metadata entry cached from the dead incarnation is suspect.
   Names and block maps are dropped outright. Attribute entries lose
   their lease so the next fast-path attempt revalidates at the new
   owner — except dirty ones, whose pending I/O state (sizes, mtimes of
   writes already acked to the client) must survive the takeover: they
   keep their bytes and are written back to the successor immediately. *)
let fence_invalidate t =
  Lru.clear t.name_cache;
  Lru.clear t.map_cache;
  let clean = ref [] and dirty = ref [] in
  Lru.iter t.attrs (fun k c -> if c.ca_dirty then dirty := c :: !dirty else clean := k :: !clean);
  List.iter (fun k -> Lru.remove t.attrs k) !clean;
  List.iter
    (fun c ->
      c.ca_valid_until <- neg_infinity;
      Engine.spawn t.eng (fun () -> writeback_one t c))
    !dirty;
  t.meta_epoch <- t.meta_epoch + 1;
  t.n_meta_inval <- t.n_meta_inval + 1;
  t.n_fence_inval <- t.n_fence_inval + 1

let refresh_tables t =
  let m, v = Table.snapshot t.tg.dir_table in
  t.dir_map <- m;
  t.dir_version <- v;
  (match t.tg.smallfile_table with
  | Some tbl ->
      let m, v = Table.snapshot tbl in
      t.sf_map <- m;
      t.sf_version <- v
  | None -> ());
  (match t.tg.storage with
  | Some tbl ->
      let m, v = Table.snapshot tbl in
      t.st_map <- m;
      t.st_version <- v
  | None -> ());
  let ep = combined_epoch_of t.tg in
  if ep > t.fence_seen then begin
    t.fence_seen <- ep;
    fence_invalidate t
  end

let table_versions t = (t.dir_version, t.sf_version, t.st_version)

(* ---- forwarding ---- *)

(* Expire pending records whose reply will never arrive: a client that
   exhausted its retransmissions stops refreshing its record, so nothing
   will ever match that XID again and the entry would leak forever. The
   sweep arms itself only while records exist — an idle µproxy keeps the
   event queue empty, so unbounded [Engine.run] still terminates. The
   sweep charges no CPU: it models a background timer off the packet
   path. *)
let rec arm_sweep t =
  let interval = t.p.Params.pending_sweep_interval in
  if interval > 0.0 && not t.sweep_armed then begin
    t.sweep_armed <- true;
    Engine.schedule t.eng interval (fun () ->
        t.sweep_armed <- false;
        let now = Engine.now t.eng in
        let expired =
          Hashtbl.fold
            (fun xid pd acc ->
              if now -. pd.p_born >= t.p.Params.pending_expiry then (xid, pd) :: acc else acc)
            t.pending []
        in
        List.iter
          (fun (xid, pd) ->
            Hashtbl.remove t.pending xid;
            Trace.unbind_xid pd.p_span xid;
            Trace.finish ~outcome:"expired" pd.p_span;
            t.n_expired <- t.n_expired + 1)
          expired;
        if Hashtbl.length t.pending > 0 then arm_sweep t)
  end

let remember t (peek : Codec.peek) ~span ~klass ~orig ~rd_site ~mirrors ~retries =
  (* a client retransmit replaces the record: close the superseded tree *)
  (match Hashtbl.find_opt t.pending peek.Codec.xid with
  | Some old ->
      Trace.unbind_xid old.p_span peek.Codec.xid;
      Trace.finish ~outcome:"superseded" old.p_span
  | None -> ());
  Trace.bind_xid span peek.Codec.xid;
  Hashtbl.replace t.pending peek.Codec.xid
    {
      p_klass = klass;
      p_fh = peek.Codec.fh;
      p_proc = peek.Codec.proc;
      p_name = peek.Codec.name;
      p_offset = peek.Codec.offset;
      p_count = peek.Codec.count;
      p_orig = orig;
      p_rd_site = rd_site;
      p_born = Engine.now t.eng;
      p_epoch = t.meta_epoch;
      p_tblv = table_versions t;
      p_retries = retries;
      p_mirror_left = mirrors;
      p_worst = 0;
      p_span = span;
    };
  arm_sweep t

let forward t (c : cost) (pkt : Packet.t) ~dst =
  charge t c `Rewrite t.p.Params.rewrite_cost;
  Cksum.rewrite_dst pkt dst;
  charge t c `Softstate t.p.Params.softstate_cost;
  after_cpu t c (fun () -> Net.inject t.net pkt)

let patch_offset t (c : cost) (pkt : Packet.t) (peek : Codec.peek) v =
  match peek.Codec.offset_field_off with
  | Some off ->
      charge t c `Rewrite t.p.Params.rewrite_cost;
      Cksum.patch_payload pkt ~off (Codec.u64_be v)
  | None -> ()

(* ---- commit orchestration ---- *)

(* Physical storage nodes that may hold data of [fh], resolved through
   the current table snapshot (distinct: several logical sites can live
   on one node). *)
let storage_sites_of t (fh : Fh.t) =
  let n = Array.length t.st_map in
  if n = 0 then []
  else if fh.Fh.mirrored then begin
    let r0, r1 = Routekey.mirror_sites ~nsites:n fh in
    let a0 = t.st_map.(r0) and a1 = t.st_map.(r1) in
    if a0 = a1 then [ a0 ] else [ a0; a1 ]
  end
  else List.sort_uniq Int.compare (Array.to_list t.st_map)

let smallfile_dst t (fh : Fh.t) =
  if t.p.Params.threshold <= 0 || Array.length t.sf_map = 0 then None
  else Some t.sf_map.(Routekey.file_site ~nsites:(Array.length t.sf_map) fh)

let orchestrate_commit t ~span (pkt : Packet.t) (peek : Codec.peek) (fh : Fh.t) =
  t.n_commits <- t.n_commits + 1;
  let client = pkt.Packet.src in
  let client_port = pkt.Packet.sport in
  Engine.spawn t.eng (fun () ->
      let jobs = ref [] in
      (match smallfile_dst t fh with
      | Some dst ->
          jobs := (fun () -> ignore (nfs_call t ~span (Nfs.Commit (fh, 0L, 0)) ~dst)) :: !jobs
      | None -> ());
      let sites = storage_sites_of t fh in
      (match (sites, t.tg.coordinator ()) with
      | [], _ -> ()
      | sites, Some _ ->
          jobs := (fun () -> ignore (ctrl_call t ~span (Ctrl.Commit_file { fh; sites }))) :: !jobs
      | sites, None ->
          jobs :=
            List.map (fun dst () -> ignore (nfs_call t ~span (Nfs.Commit (fh, 0L, 0)) ~dst)) sites
            @ !jobs);
      Fiber.join_all t.eng !jobs;
      (* Close any open mirrored-write intention. *)
      (match Hashtbl.find_opt t.intents_open fh.Fh.file_id with
      | Some op_id ->
          Hashtbl.remove t.intents_open fh.Fh.file_id;
          ignore (ctrl_call t ~span (Ctrl.Complete { op_id }))
      | None -> ());
      (* Push modified attributes to the directory server (the paper's
         µproxy generates a setattr on NFS V3 commit). *)
      let c = cached_attr t fh in
      writeback_one t c;
      (* Synthesize the commit reply to the client. *)
      let payload = Codec.encode_reply ~xid:peek.Codec.xid (Ok (Nfs.RCommit c.ca_attr)) in
      let reply =
        Packet.make ~src:t.tg.virtual_addr ~dst:client ~sport:2049 ~dport:client_port payload
      in
      Net.dispatch t.net reply;
      Trace.finish span)

(* ---- mirrored-write intention (amortized across the file's writes) ---- *)

let open_intent_if_needed t (fh : Fh.t) =
  if t.tg.coordinator () <> None && not (Hashtbl.mem t.intents_open fh.Fh.file_id) then begin
    let op_id = Int64.of_int (Rpc.fresh_xid t.rpc) in
    Hashtbl.replace t.intents_open fh.Fh.file_id op_id;
    t.n_intents <- t.n_intents + 1;
    let participants = storage_sites_of t fh in
    Engine.spawn t.eng (fun () ->
        ignore (ctrl_call t (Ctrl.Intent { op_id; kind = Ctrl.K_mirror_write; fh; participants })))
  end

(* ---- request routing ---- *)

let name_logical t (peek : Codec.peek) (fh : Fh.t) =
  let nsites = Array.length t.dir_map in
  if nsites = 0 then 0 (* no dir sites: degenerate logical id; dir_phys copes *)
  else
  let by_hash name = Routekey.name_site ~nsites fh name in
  match (peek.Codec.proc, t.p.Params.name_policy) with
  | (1 | 2 | 4 | 5), _ -> fh.Fh.attr_site mod nsites (* getattr/setattr/access/readlink *)
  | 9, Params.Name_hashing -> by_hash (Option.value ~default:"" peek.Codec.name)
  | 9, Params.Mkdir_switching ->
      (* mkdir switching: redirect with probability p to the site named by
         the hash (so a raced name involves at most two sites). *)
      let parent_site = fh.Fh.attr_site mod nsites in
      if nsites > 1 && Prng.float t.prng 1.0 < t.p.Params.mkdir_p then begin
        let site = by_hash (Option.value ~default:"" peek.Codec.name) in
        if site <> parent_site then t.n_mkdir_redirect <- t.n_mkdir_redirect + 1;
        site
      end
      else parent_site
  | (3 | 8 | 10 | 12 | 13 | 14), Params.Name_hashing ->
      by_hash (Option.value ~default:"" peek.Codec.name)
  | 15, Params.Name_hashing -> (
      (* link routes by the new entry (destination dir, new name) *)
      match peek.Codec.fh2 with
      | Some dir -> Routekey.name_site ~nsites dir (Option.value ~default:"" peek.Codec.name)
      | None -> fh.Fh.attr_site mod nsites)
  | 15, Params.Mkdir_switching -> (
      match peek.Codec.fh2 with
      | Some dir -> dir.Fh.attr_site mod nsites
      | None -> fh.Fh.attr_site mod nsites)
  | (3 | 8 | 10 | 12 | 13 | 14), Params.Mkdir_switching -> fh.Fh.attr_site mod nsites
  | 16, _ -> (
      (* readdir: under name hashing the cookie's high half carries the
         site being iterated. *)
      match t.p.Params.name_policy with
      | Params.Mkdir_switching -> fh.Fh.attr_site mod nsites
      | Params.Name_hashing ->
          Int64.to_int (Int64.shift_right_logical (Option.value ~default:0L peek.Codec.offset) 32)
          mod nsites)
  | _ -> fh.Fh.attr_site mod nsites

let route_name t (c : cost) (pkt : Packet.t) (peek : Codec.peek) (fh : Fh.t) ~orig ~retries =
  let site = name_logical t peek fh in
  t.n_dir <- t.n_dir + 1;
  if site < Array.length t.dir_hist then t.dir_hist.(site) <- t.dir_hist.(site) + 1;
  (* readdir cookies travel tagged: the directory server decodes the
     (site, local-cookie) pair itself and owns-gates the site, so a
     server hosting several logical sites iterates the right one. *)
  remember t peek ~span:c.c_span ~klass:KName ~orig ~rd_site:site ~mirrors:1 ~retries;
  forward t c pkt ~dst:(dir_phys t site)

(* Bulk I/O routing. Storage placement is logical-site based: the chosen
   logical site is encoded into the wire offset's high bits
   ([Routekey.site_offset]) so a node hosting several logical sites keeps
   their extents apart, then bound to a physical node through the current
   table snapshot. *)
let rec route_io t (c : cost) (pkt : Packet.t) (peek : Codec.peek) (fh : Fh.t) ~orig ~retries =
  let off = Option.value ~default:0L peek.Codec.offset in
  match smallfile_dst t fh with
  | Some dst when Int64.compare off (Int64.of_int t.p.Params.threshold) < 0 ->
      t.n_smallfile <- t.n_smallfile + 1;
      remember t peek ~span:c.c_span ~klass:KSmallfile ~orig ~rd_site:0 ~mirrors:1 ~retries;
      forward t c pkt ~dst
  | _ ->
      let n = Array.length t.st_map in
      if n = 0 then begin
        (* No storage class configured: let a directory server reject it. *)
        t.n_dir <- t.n_dir + 1;
        remember t peek ~span:c.c_span ~klass:KName ~orig ~rd_site:0 ~mirrors:1 ~retries;
        forward t c pkt ~dst:(dir_phys t 0)
      end
      else if fh.Fh.mirrored then begin
        let r0, r1 = Routekey.mirror_sites ~nsites:n fh in
        let chunk = Routekey.chunk_of_offset ~stripe_unit:t.p.Params.stripe_unit off in
        if peek.Codec.proc = 6 then begin
          (* mirrored read: alternate between the replicas to balance load *)
          let site = if chunk land 1 = 0 then r0 else r1 in
          patch_offset t c pkt peek (Routekey.site_offset ~site off);
          t.n_storage <- t.n_storage + 1;
          remember t peek ~span:c.c_span ~klass:KStorage ~orig ~rd_site:0 ~mirrors:1 ~retries;
          forward t c pkt ~dst:t.st_map.(site)
        end
        else begin
          (* mirrored write: duplicate to both replicas *)
          open_intent_if_needed t fh;
          t.n_storage <- t.n_storage + 1;
          t.n_mirror_dup <- t.n_mirror_dup + 1;
          remember t peek ~span:c.c_span ~klass:KStorage ~orig ~rd_site:0
            ~mirrors:(if r0 = r1 then 1 else 2) ~retries;
          let copy = Packet.copy pkt in
          patch_offset t c pkt peek (Routekey.site_offset ~site:r0 off);
          forward t c pkt ~dst:t.st_map.(r0);
          if r1 <> r0 then begin
            let c2 = { c_total = 0.0; c_span = c.c_span } in
            (* duplicate emission: requeue + checksum share of the data *)
            charge t c2 `Rewrite
              (t.p.Params.rewrite_cost
              +. (t.p.Params.mirror_dup_cost_per_byte
                 *. float_of_int (Option.value ~default:0 peek.Codec.count)));
            patch_offset t c2 copy peek (Routekey.site_offset ~site:r1 off);
            forward t c2 copy ~dst:t.st_map.(r1)
          end
        end
      end
      else begin
        let su = t.p.Params.stripe_unit in
        let chunk = Routekey.chunk_of_offset ~stripe_unit:su off in
        let static_route () =
          let site = Routekey.stripe_site ~nsites:n ~stripe_unit:su fh off in
          patch_offset t c pkt peek
            (Routekey.site_offset ~site (Routekey.local_offset ~nsites:n ~stripe_unit:su off));
          t.n_storage <- t.n_storage + 1;
          remember t peek ~span:c.c_span ~klass:KStorage ~orig ~rd_site:0 ~mirrors:1 ~retries;
          forward t c pkt ~dst:t.st_map.(site)
        in
        match t.p.Params.io_policy with
        | Params.Static_striping -> static_route ()
        | Params.Block_map -> (
            match Lru.find t.map_cache fh.Fh.file_id with
            | Some (g, map) when g = fh.Fh.gen && chunk < Array.length map ->
                let site = map.(chunk) mod n in
                patch_offset t c pkt peek
                  (Routekey.site_offset ~site
                     (Routekey.local_offset ~nsites:n ~stripe_unit:su off));
                t.n_storage <- t.n_storage + 1;
                remember t peek ~span:c.c_span ~klass:KStorage ~orig ~rd_site:0 ~mirrors:1
                  ~retries;
                forward t c pkt ~dst:t.st_map.(site)
            | _ ->
                (* Map-fragment miss (including a generation mismatch from
                   a recycled file-id): fetch from the coordinator, then
                   re-route the absorbed request (the µproxy "interacts
                   with the coordinators to fetch and cache fragments of
                   the block maps"). Map entries are logical sites. *)
                t.n_map_fetch <- t.n_map_fetch + 1;
                charge t c `Softstate t.p.Params.softstate_cost;
                after_cpu t c (fun () ->
                    Engine.spawn t.eng (fun () ->
                        (match
                           ctrl_call t ~span:c.c_span
                             (Ctrl.Get_map { fh; first_block = 0; count = chunk + 64 })
                         with
                        | Ctrl.Map { first_block = _; sites } ->
                            Lru.add t.map_cache fh.Fh.file_id (fh.Fh.gen, sites)
                        | Ctrl.Ack | Ctrl.Nack ->
                            (* no dynamic map: fall back to static *)
                            Lru.add t.map_cache fh.Fh.file_id
                              ( fh.Fh.gen,
                                Array.init (chunk + 64) (fun b ->
                                    (Routekey.file_site ~nsites:n fh + b) mod n) ));
                        let c2 = { c_total = 0.0; c_span = c.c_span } in
                        route_io t c2 pkt peek fh ~orig ~retries)))
      end

(* ---- metadata fast path ----
   The SPECsfs mix is dominated by lookup/getattr/access; each of those
   today costs a directory-server round trip. The µproxy already sees
   every reply, so it can absorb repeats: name entries (including
   negative ones) live in [name_cache] under a TTL lease, and attribute
   entries are served while their lease ([ca_valid_until]) is live.
   Correctness is write-through invalidation (below) plus the lease
   bounding what another client's unseen mutation can cost us. *)

let synth_reply t (c : cost) (pkt : Packet.t) ~xid (resp : Nfs.response) =
  charge t c `Rewrite t.p.Params.rewrite_cost;
  let payload = Codec.encode_reply ~xid resp in
  let reply =
    Packet.make ~src:t.tg.virtual_addr ~dst:pkt.Packet.src ~sport:2049 ~dport:pkt.Packet.sport
      payload
  in
  after_cpu t c (fun () ->
      Net.dispatch t.net reply;
      Trace.finish c.c_span)

(* Returns true when the request was answered at the proxy. *)
let try_meta_fast_path t (c : cost) (pkt : Packet.t) (peek : Codec.peek) (fh : Fh.t) =
  let now = Engine.now t.eng in
  charge t c `Softstate t.p.Params.softstate_cost;
  let hit resp =
    t.n_meta_hit <- t.n_meta_hit + 1;
    synth_reply t c pkt ~xid:peek.Codec.xid resp;
    true
  in
  let miss () =
    t.n_meta_miss <- t.n_meta_miss + 1;
    false
  in
  let stale () =
    t.n_meta_stale <- t.n_meta_stale + 1;
    false
  in
  match peek.Codec.proc with
  | 1 -> (
      match Lru.find t.attrs fh.Fh.file_id with
      | Some ca when ca.ca_valid_until > now -> hit (Ok (Nfs.RGetattr ca.ca_attr))
      | Some _ -> stale ()
      | None -> miss ())
  | 4 -> (
      match (peek.Codec.access_mask, Lru.find t.attrs fh.Fh.file_id) with
      | Some mask, Some ca when ca.ca_valid_until > now ->
          (* the directory server grants the full requested mask (see
             Dirserver's Access handler), so echoing it is faithful *)
          hit (Ok (Nfs.RAccess (mask, ca.ca_attr)))
      | _, Some _ -> stale ()
      | _, None -> miss ())
  | 3 -> (
      match peek.Codec.name with
      | None -> miss ()
      | Some name -> (
          match Lru.find_ttl t.name_cache (fh.Fh.file_id, name) ~now with
          | Lru.Fresh (Some child) -> (
              (* a positive hit must also produce attributes; serve only
                 if the child's attr lease is live too *)
              match Lru.find t.attrs child.Fh.file_id with
              | Some ca when ca.ca_valid_until > now -> hit (Ok (Nfs.RLookup (child, ca.ca_attr)))
              | Some _ -> stale ()
              | None -> miss ())
          | Lru.Fresh None ->
              t.n_meta_neg_hit <- t.n_meta_neg_hit + 1;
              synth_reply t c pkt ~xid:peek.Codec.xid (Error Nfs.ERR_NOENT);
              true
          | Lru.Stale -> stale ()
          | Lru.Miss -> miss ()))
  | _ -> false

(* Write-through invalidation: drop or revoke every cached entry a
   mutating op can falsify, *before* the op is forwarded — a later hit
   can then never contradict the server. Attr entries are revoked (lease
   zeroed) rather than removed so dirty I/O state keeps its write-back;
   entries for a removed file are dropped outright. The epoch bump makes
   in-flight replies from before the mutation unable to repopulate. *)
let revoke_attr t (fh_id : int64) =
  match Lru.find t.attrs fh_id with
  | Some ca -> ca.ca_valid_until <- neg_infinity
  | None -> ()

let drop_child t (child : Fh.t) =
  Lru.remove t.attrs child.Fh.file_id;
  Lru.remove t.map_cache child.Fh.file_id

let invalidate_meta t (peek : Codec.peek) (fh : Fh.t) =
  let bump () =
    t.meta_epoch <- t.meta_epoch + 1;
    t.n_meta_inval <- t.n_meta_inval + 1
  in
  let resolve dir_id name =
    match Lru.find t.name_cache (dir_id, name) with Some (Some child) -> Some child | _ -> None
  in
  let name = Option.value ~default:"" peek.Codec.name in
  match peek.Codec.proc with
  | 2 ->
      (* setattr: attributes change; a truncation also invalidates the
         block map (a re-created file must not route I/O to placement
         decided for the old extent) *)
      revoke_attr t fh.Fh.file_id;
      if peek.Codec.set_size <> None then Lru.remove t.map_cache fh.Fh.file_id;
      bump ()
  | 8 | 9 | 10 ->
      (* create/mkdir/symlink: kill any negative entry under this name;
         the directory's own attrs (mtime, size) change *)
      Lru.remove t.name_cache (fh.Fh.file_id, name);
      revoke_attr t fh.Fh.file_id;
      bump ()
  | 12 | 13 ->
      (* remove/rmdir: the child is gone for good — drop everything known
         about it (its dirty state has nowhere to go anyway) *)
      (match resolve fh.Fh.file_id name with Some child -> drop_child t child | None -> ());
      Lru.remove t.name_cache (fh.Fh.file_id, name);
      revoke_attr t fh.Fh.file_id;
      bump ()
  | 14 ->
      (* rename: the source name vanishes but the file persists (keep its
         dirty attr state, just revoke the lease — ctime changed); any
         previous destination target is silently deleted *)
      (match resolve fh.Fh.file_id name with
      | Some child -> revoke_attr t child.Fh.file_id
      | None -> ());
      Lru.remove t.name_cache (fh.Fh.file_id, name);
      (match (peek.Codec.fh2, peek.Codec.name2) with
      | Some dir2, Some n2 ->
          (match resolve dir2.Fh.file_id n2 with
          | Some victim -> drop_child t victim
          | None -> ());
          Lru.remove t.name_cache (dir2.Fh.file_id, n2);
          revoke_attr t dir2.Fh.file_id
      | _ -> ());
      revoke_attr t fh.Fh.file_id;
      bump ()
  | 15 ->
      (* link: a new entry appears in dir2; the file's nlink changes *)
      revoke_attr t fh.Fh.file_id;
      (match peek.Codec.fh2 with
      | Some dir2 ->
          Lru.remove t.name_cache (dir2.Fh.file_id, name);
          revoke_attr t dir2.Fh.file_id
      | None -> ());
      bump ()
  | _ -> ()

(* RFC 1813 procedure numbers, as op-class labels for trace roots. *)
let[@hot] op_of_proc = function
  | 0 -> "null"
  | 1 -> "getattr"
  | 2 -> "setattr"
  | 3 -> "lookup"
  | 4 -> "access"
  | 5 -> "readlink"
  | 6 -> "read"
  | 7 -> "write"
  | 8 -> "create"
  | 9 -> "mkdir"
  | 10 -> "symlink"
  | 12 -> "remove"
  | 13 -> "rmdir"
  | 14 -> "rename"
  | 15 -> "link"
  | 16 -> "readdir"
  | 18 -> "fsstat"
  | 21 -> "commit"
  | _ -> "other"

let handle_request ?(retries = 0) t (pkt : Packet.t) =
  t.n_intercepted <- t.n_intercepted + 1;
  let c = { c_total = 0.0; c_span = Trace.null } in
  charge t c `Intercept t.p.Params.intercept_cost;
  match Codec.peek_call pkt.Packet.payload with
  | None ->
      (* not an NFS call: the virtual server has nothing else behind it *)
      charge t c `Decode t.p.Params.decode_cost_per_item
  | Some peek -> (
      c.c_span <- Trace.root t.trace ~op:(op_of_proc peek.Codec.proc) ~site:(Host.name t.host);
      charge t c `Decode (t.p.Params.decode_cost_per_item *. float_of_int peek.Codec.items);
      (* Pristine copy before any in-place rewrite (offset/cookie patches):
         a bounce or failover retry must re-enter routing with the bytes
         the client sent, or stripe offsets would be translated twice. *)
      let orig = Bytes.copy pkt.Packet.payload in
      match peek.Codec.fh with
      | None ->
          (* NULL: any directory server can answer *)
          t.n_dir <- t.n_dir + 1;
          remember t peek ~span:c.c_span ~klass:KName ~orig ~rd_site:0 ~mirrors:1 ~retries;
          forward t c pkt ~dst:(dir_phys t 0)
      | Some fh -> (
          match peek.Codec.proc with
          | 6 | 7 when fh.Fh.ftype = Fh.Reg -> route_io t c pkt peek fh ~orig ~retries
          | 21 when fh.Fh.ftype = Fh.Reg ->
              charge t c `Softstate t.p.Params.softstate_cost;
              after_cpu t c (fun () -> orchestrate_commit t ~span:c.c_span pkt peek fh)
          | (1 | 3 | 4) when meta_enabled t ->
              if not (try_meta_fast_path t c pkt peek fh) then
                route_name t c pkt peek fh ~orig ~retries
          | _ ->
              invalidate_meta t peek fh;
              route_name t c pkt peek fh ~orig ~retries))

(* ---- reply handling ---- *)

let[@hot] reply_status (payload : bytes) =
  if Bytes.length payload >= 28 then Int32.to_int (Bytes.get_int32_be payload 24)
  else -1

(* Retry a bounced request after refreshing the routing tables. Every
   request class keeps its pristine payload, so any bounce can be
   re-routed instead of silently swallowed. *)
let retry_misdirected ?(retries = 0) t (pd : pending) (client_pkt : Packet.t) =
  let pkt =
    Packet.make ~src:client_pkt.Packet.dst ~dst:t.tg.virtual_addr ~sport:client_pkt.Packet.dport
      ~dport:2049 (Bytes.copy pd.p_orig)
  in
  handle_request ~retries t pkt

(* A bounce that a refresh could not explain (the table versions did not
   change) means a migration is mid-drain: the move has not committed
   yet, so an immediate retry would bounce right back. Back off a little
   and retry; after the budget is spent, drop the request and let the
   client's own RPC retransmission drive the next attempt. *)
let misdirect_retry_limit = 8
let misdirect_retry_delay = 0.01

(* readdir iteration across hash sites: translate local cookies into
   (site, cookie) pairs and splice sites together at EOF boundaries. *)
let translate_readdir t (c : cost) (pd : pending) (pkt : Packet.t) =
  match Codec.decode_reply pkt.Packet.payload with
  | _, Error _ ->
      Trace.finish ~outcome:"error" pd.p_span;
      Some pkt (* pass errors through *)
  | xid, Ok (Nfs.RReaddir (entries, cookie, eof)) ->
      charge t c `Decode
        (t.p.Params.decode_cost_per_item *. float_of_int (4 + (3 * List.length entries)));
      let site = Int64.of_int pd.p_rd_site in
      let tag v = Int64.logor (Int64.shift_left site 32) (Int64.logand v 0xFFFFFFFFL) in
      let entries =
        List.map (fun (e : Nfs.entry) -> { e with Nfs.entry_cookie = tag e.Nfs.entry_cookie }) entries
      in
      let nsites = Array.length t.dir_map in
      let cookie, eof =
        if eof && pd.p_rd_site + 1 < nsites then
          (Int64.shift_left (Int64.add site 1L) 32, false)
        else (tag cookie, eof)
      in
      let payload = Codec.encode_reply ~xid (Ok (Nfs.RReaddir (entries, cookie, eof))) in
      charge t c `Rewrite t.p.Params.rewrite_cost;
      let reply =
        Packet.make ~src:t.tg.virtual_addr ~dst:pkt.Packet.dst ~sport:pkt.Packet.sport
          ~dport:pkt.Packet.dport payload
      in
      after_cpu t c (fun () ->
          Net.dispatch t.net reply;
          Trace.finish pd.p_span);
      None
  | _, Ok _ ->
      Trace.finish pd.p_span;
      Some pkt

let patch_reply_attrs t (c : cost) (pd : pending) (pkt : Packet.t) =
  match Codec.reply_attr_offset pkt.Packet.payload with
  | None -> ()
  | Some off -> (
      charge t c `Decode (t.p.Params.decode_cost_per_item *. 13.0);
      let returned = Codec.decode_attr_at pkt.Packet.payload off in
      let now = Engine.now t.eng in
      match pd.p_klass with
      | KStorage | KSmallfile ->
          (* Node-local attributes are not authoritative for striped /
             split files: patch size and times from the µproxy's cache. *)
          let fh = match pd.p_fh with Some fh -> fh | None -> Fh.root in
          let ca = cached_attr t fh in
          (match pd.p_proc with
          | 7 ->
              (* write: size grows to at least offset + count written *)
              let hi =
                Int64.add
                  (Option.value ~default:0L pd.p_offset)
                  (Int64.of_int (Option.value ~default:0 pd.p_count))
              in
              let size =
                if Int64.compare hi ca.ca_attr.Nfs.size > 0 then hi else ca.ca_attr.Nfs.size
              in
              ca.ca_attr <- { ca.ca_attr with size; used = size; mtime = now; ctime = now };
              ca.ca_dirty <- true
          | 6 ->
              (* read: maintain access time; learn the size if we had
                 nothing cached yet (single-node files report truly). *)
              if Int64.compare ca.ca_attr.Nfs.size returned.Nfs.size < 0 && not ca.ca_dirty
              then ca.ca_attr <- { ca.ca_attr with size = returned.Nfs.size };
              ca.ca_attr <- { ca.ca_attr with atime = now };
              ca.ca_dirty <- true
          | _ -> ());
          let a = ca.ca_attr in
          Cksum.patch_payload pkt ~off:(off + Codec.attr_size_field_off) (Codec.u64_be a.Nfs.size);
          Cksum.patch_payload pkt ~off:(off + Codec.attr_atime_field_off) (Codec.time_be a.Nfs.atime);
          Cksum.patch_payload pkt ~off:(off + Codec.attr_mtime_field_off) (Codec.time_be a.Nfs.mtime);
          charge t c `Rewrite (3.0 *. t.p.Params.rewrite_cost);
          t.n_attr_patch <- t.n_attr_patch + 1;
          (* reads: fix the EOF flag, which the node judged against its
             local fragment of the file *)
          if pd.p_proc = 6 then begin
            let payload = pkt.Packet.payload in
            let tag_off = off + Codec.attr_wire_size in
            if Bytes.length payload >= tag_off + 12 then begin
              let count = Int32.to_int (Bytes.get_int32_be payload (tag_off + 4)) in
              let fin = Int64.add (Option.value ~default:0L pd.p_offset) (Int64.of_int count) in
              let eof = Int64.compare fin a.Nfs.size >= 0 in
              let word = Bytes.create 4 in
              Bytes.set_int32_be word 0 (if eof then 1l else 0l);
              Cksum.patch_payload pkt ~off:(tag_off + 8) (Bytes.to_string word);
              charge t c `Rewrite t.p.Params.rewrite_cost
            end
          end
      | KName -> (
          (* Directory servers are authoritative; refresh the cache. If
             the µproxy holds dirtier I/O state, patch it in. The refresh
             also grants a fast-path lease — unless an invalidation raced
             past while this reply was in flight (epoch mismatch), in
             which case the reply's data may already be falsified and
             must not become servable. *)
          let grant ca =
            if meta_enabled t && pd.p_epoch = t.meta_epoch then
              ca.ca_valid_until <- now +. t.p.Params.meta_cache_ttl
          in
          let fh_for_attr =
            match Codec.reply_fh_after_attr pkt.Packet.payload with
            | Some child -> Some child
            | None -> pd.p_fh
          in
          match fh_for_attr with
          | None -> ()
          | Some fh ->
              let keyed = returned.Nfs.fileid in
              (match Lru.find t.attrs keyed with
              | Some ca when ca.ca_dirty ->
                  let size =
                    if Int64.compare ca.ca_attr.Nfs.size returned.Nfs.size > 0 then
                      ca.ca_attr.Nfs.size
                    else returned.Nfs.size
                  in
                  ca.ca_attr <- { returned with size; mtime = ca.ca_attr.Nfs.mtime };
                  Cksum.patch_payload pkt ~off:(off + Codec.attr_size_field_off)
                    (Codec.u64_be size);
                  Cksum.patch_payload pkt
                    ~off:(off + Codec.attr_mtime_field_off)
                    (Codec.time_be ca.ca_attr.Nfs.mtime);
                  charge t c `Rewrite (2.0 *. t.p.Params.rewrite_cost);
                  t.n_attr_patch <- t.n_attr_patch + 1;
                  grant ca
              | Some ca ->
                  ca.ca_attr <- returned;
                  grant ca
              | None ->
                  let ca =
                    { ca_fh = fh; ca_attr = returned; ca_dirty = false;
                      ca_valid_until = neg_infinity }
                  in
                  grant ca;
                  Lru.add t.attrs keyed ca)))

(* Populate the name cache from a directory server's answer: a successful
   lookup/create/mkdir/symlink binds (dir, name) -> child handle; a
   lookup that returned NOENT proves absence, worth a negative entry
   (SPECsfs and build workloads probe absent names repeatedly). Replies
   from before an invalidation (epoch mismatch) teach nothing. *)
let learn_name t (pd : pending) (pkt : Packet.t) =
  if meta_enabled t && pd.p_epoch = t.meta_epoch && pd.p_klass = KName then
    match (pd.p_fh, pd.p_name) with
    | Some dir, Some name -> (
        let key = (dir.Fh.file_id, name) in
        let expires = Engine.now t.eng +. t.p.Params.meta_cache_ttl in
        let st = reply_status pkt.Packet.payload in
        match pd.p_proc with
        | (3 | 8 | 9 | 10) when st = 0 -> (
            match Codec.reply_fh_after_attr pkt.Packet.payload with
            | Some child -> Lru.add t.name_cache ~expires_at:expires key (Some child)
            | None -> ())
        | 3 when st = Codec.int_of_status Nfs.ERR_NOENT ->
            Lru.add t.name_cache ~expires_at:expires key None
        | _ -> ())
    | _ -> ()

let handle_reply t (pkt : Packet.t) (pd : pending) =
  let c = { c_total = 0.0; c_span = pd.p_span } in
  charge t c `Intercept t.p.Params.intercept_cost;
  charge t c `Softstate t.p.Params.softstate_cost;
  t.n_replies <- t.n_replies + 1;
  if pd.p_mirror_left > 1 then begin
    (* first mirror ack: wait for the slower replica, but keep the worst
       status seen — acking a write the first replica failed would lose
       data silently. *)
    pd.p_mirror_left <- pd.p_mirror_left - 1;
    let st = reply_status pkt.Packet.payload in
    if st > 0 then pd.p_worst <- st;
    after_cpu t c (fun () -> ());
    None
  end
  else begin
    (* pending record already removed by the caller, keyed on xid *)
    let st = reply_status pkt.Packet.payload in
    if st = 20001 || pd.p_worst = 20001 then begin
      t.n_stale <- t.n_stale + 1;
      (* a bounced storage request may have been routed by a stale block
         map fragment: refetch it on the retry *)
      (match (pd.p_klass, pd.p_fh) with
      | KStorage, Some fh -> Lru.remove t.map_cache fh.Fh.file_id
      | _ -> ());
      refresh_tables t;
      let moved = table_versions t <> pd.p_tblv in
      after_cpu t c (fun () ->
          (* the retry re-enters routing and opens a fresh root *)
          Trace.finish ~outcome:"bounced" pd.p_span;
          if moved then retry_misdirected t pd pkt
          else if pd.p_retries < misdirect_retry_limit then
            Engine.schedule t.eng
              (misdirect_retry_delay *. float_of_int (pd.p_retries + 1))
              (fun () -> retry_misdirected ~retries:(pd.p_retries + 1) t pd pkt));
      None
    end
    else if pd.p_worst > 0 && st = 0 then begin
      (* Mirrored write: an earlier replica failed but the last one
         succeeded. Forward the failure so the client retries — the
         success reply would hide a half-written mirror pair. *)
      let xid = Codec.xid_of pkt.Packet.payload in
      let status =
        try Codec.status_of_int pd.p_worst with Codec.Malformed _ -> Nfs.ERR_IO
      in
      let payload = Codec.encode_reply ~xid (Error status) in
      charge t c `Rewrite t.p.Params.rewrite_cost;
      let reply =
        Packet.make ~src:t.tg.virtual_addr ~dst:pkt.Packet.dst ~sport:pkt.Packet.sport
          ~dport:pkt.Packet.dport payload
      in
      after_cpu t c (fun () ->
          Net.dispatch t.net reply;
          Trace.finish ~outcome:"mirror_error" pd.p_span);
      None
    end
    else if pd.p_proc = 16 && t.p.Params.name_policy = Params.Name_hashing then
      translate_readdir t c pd pkt
    else begin
      patch_reply_attrs t c pd pkt;
      learn_name t pd pkt;
      charge t c `Rewrite t.p.Params.rewrite_cost;
      Cksum.rewrite_src pkt t.tg.virtual_addr;
      after_cpu t c (fun () ->
          Net.dispatch t.net pkt;
          Trace.finish ~outcome:(if st = 0 then "ok" else "error") pd.p_span);
      None
    end
  end

(* ---- filters ---- *)

let egress_filter t (pkt : Packet.t) =
  if pkt.Packet.dst = t.tg.virtual_addr && pkt.Packet.dport = 2049 then begin
    handle_request t pkt;
    None
  end
  else Some pkt

let ingress_filter t (pkt : Packet.t) =
  if Bytes.length pkt.Packet.payload < 4 then Some pkt
  else begin
    let xid = Int32.to_int (Bytes.get_int32_be pkt.Packet.payload 0) land 0xFFFFFFFF in
    match Hashtbl.find_opt t.pending xid with
    | None -> Some pkt
    | Some pd ->
        if pd.p_mirror_left <= 1 then begin
          Hashtbl.remove t.pending xid;
          Trace.unbind_xid pd.p_span xid
        end;
        handle_reply t pkt pd
  end

let rec writeback_tick t =
  if t.p.Params.attr_writeback_interval > 0.0 then
    Engine.schedule t.eng t.p.Params.attr_writeback_interval (fun () ->
        writeback_dirty_attrs t;
        writeback_tick t)

let install host ?(params = Params.default) ?(seed = 7) ?trace targets =
  let net = host.Host.net in
  let dir_map, dir_version = Table.snapshot targets.dir_table in
  let sf_map, sf_version =
    match targets.smallfile_table with Some tbl -> Table.snapshot tbl | None -> ([||], 0)
  in
  let st_map, st_version =
    match targets.storage with Some tbl -> Table.snapshot tbl | None -> ([||], 0)
  in
  (* Evicted dirty attributes must be pushed back to their directory
     server; the eviction hook needs the proxy record, which needs the
     cache — tie the knot through a forward reference. *)
  let self = ref None in
  let attrs =
    Lru.create ~capacity:params.Params.attr_cache_capacity
      ~on_evict:(fun _ c ->
        match !self with
        | Some t when c.ca_dirty ->
            Slice_sim.Engine.spawn host.Host.eng (fun () -> writeback_one t c)
        | _ -> ())
      ()
  in
  let t =
    {
      host;
      net;
      eng = host.Host.eng;
      p = params;
      trace;
      tg = targets;
      prng = Prng.create (seed + (host.Host.addr * 7919));
      rpc = Rpc.create net host.Host.addr ~port:params.Params.rpc_port;
      (* lint: bounded — one row per in-flight request; replies remove, the periodic sweep expires orphans *)
      pending = Hashtbl.create 256;
      attrs;
      name_cache = Lru.create ~capacity:params.Params.name_cache_capacity ();
      map_cache = Lru.create ~capacity:params.Params.map_cache_capacity ();
      (* lint: bounded — one row per file with an open mirrored-write intent; commit closes it *)
      intents_open = Hashtbl.create 16;
      meta_epoch = 0;
      fence_seen = combined_epoch_of targets;
      n_fence_inval = 0;
      dir_map;
      dir_version;
      sf_map;
      sf_version;
      st_map;
      st_version;
      t_intercept = 0.0;
      t_decode = 0.0;
      t_rewrite = 0.0;
      t_softstate = 0.0;
      n_intercepted = 0;
      n_replies = 0;
      n_storage = 0;
      n_smallfile = 0;
      n_dir = 0;
      dir_hist = Array.make (Table.nsites targets.dir_table) 0;
      n_mkdir_redirect = 0;
      n_mirror_dup = 0;
      n_attr_patch = 0;
      n_writeback = 0;
      n_commits = 0;
      n_intents = 0;
      n_stale = 0;
      n_map_fetch = 0;
      n_expired = 0;
      n_meta_hit = 0;
      n_meta_neg_hit = 0;
      n_meta_miss = 0;
      n_meta_stale = 0;
      n_meta_inval = 0;
      sweep_armed = false;
    }
  in
  self := Some t;
  Net.add_egress_filter net host.Host.addr (egress_filter t);
  Net.add_ingress_filter net host.Host.addr (ingress_filter t);
  writeback_tick t;
  t

let params t = t.p

let discard_soft_state t =
  Hashtbl.reset t.pending;
  Lru.clear t.attrs;
  Lru.clear t.name_cache;
  Lru.clear t.map_cache;
  t.meta_epoch <- t.meta_epoch + 1

let cpu_breakdown t =
  {
    interception = t.t_intercept;
    decode = t.t_decode;
    rewrite = t.t_rewrite;
    soft_state = t.t_softstate;
  }

let packets_intercepted t = t.n_intercepted
let replies_processed t = t.n_replies
let routed_to_storage t = t.n_storage
let routed_to_smallfile t = t.n_smallfile
let routed_to_dir t = t.n_dir
let dir_site_histogram t = Array.copy t.dir_hist
let mkdir_redirects t = t.n_mkdir_redirect
let mirror_duplicates t = t.n_mirror_dup
let attr_patches t = t.n_attr_patch
let attr_writebacks t = t.n_writeback
let commits_orchestrated t = t.n_commits
let intents_opened t = t.n_intents
let stale_bounces t = t.n_stale
let map_fetches t = t.n_map_fetch
let expired_pending t = t.n_expired
let pending_size t = Hashtbl.length t.pending

let meta_cache_stats t =
  {
    hits = t.n_meta_hit;
    negative_hits = t.n_meta_neg_hit;
    misses = t.n_meta_miss;
    stale = t.n_meta_stale;
    invalidations = t.n_meta_inval;
  }

let name_cache_entries t = Lru.entry_count t.name_cache
let map_cache_entries t = Lru.entry_count t.map_cache
let fence_invalidations t = t.n_fence_inval

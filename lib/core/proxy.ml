module Engine = Slice_sim.Engine
module Fiber = Slice_sim.Fiber
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Packet = Slice_net.Packet
module Cksum = Slice_net.Cksum
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Routekey = Slice_nfs.Routekey
module Host = Slice_storage.Host
module Ctrl = Slice_storage.Ctrl
module Prng = Slice_util.Prng
module Lru = Slice_util.Lru
module Trace = Slice_trace.Trace

type targets = {
  virtual_addr : Packet.addr;
  dir_table : Table.t;
  smallfile_table : Table.t option;
  storage : Table.t option;
  coordinator : unit -> (Packet.addr * int) option;
      (* resolved at call time: a coordinator takeover rebinds the
         endpoint without reinstalling every µproxy *)
}

type phase_cpu = {
  interception : float;
  decode : float;
  rewrite : float;
  soft_state : float;
}

type klass = KName | KStorage | KSmallfile

(* One in-flight request. Records are pooled: every field is mutable and
   reset on reuse, the request payload lives in a per-record buffer that
   is grown (never shrunk) to the packet size, and name/handle arguments
   are kept as (offset, length) spans into that buffer — so steady-state
   interception recycles records without allocating. [p_born] lives in a
   parallel float array ([pool_born]) because a mutable float field in a
   mixed record would box a fresh float on every store. *)
type pending = {
  mutable p_xid : int;
  mutable p_active : bool;
  mutable p_klass : klass;
  mutable p_proc : int;
  mutable p_fh_off : int; (* handle span offset in [p_buf]; -1 = none *)
  mutable p_name_off : int;
  mutable p_name_len : int; (* -1 = none *)
  mutable p_offset : int; (* valid iff [p_off_field >= 0] *)
  mutable p_off_field : int;
  mutable p_count : int; (* -1 = none *)
  mutable p_buf : bytes; (* pristine client payload: misdirect / failover
                            retry re-enters routing with the bytes the
                            client sent (grown to a power of two) *)
  mutable p_len : int;
  mutable p_rd_site : int; (* readdir: logical dir site requested *)
  mutable p_epoch : int; (* meta_epoch at forward time: replies from
                            before an invalidation must not (re)populate
                            the metadata cache *)
  mutable p_dirv : int; (* table versions at forward time: a bounce with
                           unchanged versions means the move has not
                           committed yet, so the retry must back off *)
  mutable p_sfv : int;
  mutable p_stv : int;
  mutable p_retries : int; (* misdirect retries already spent *)
  mutable p_tenant : int; (* QoS tenant id stamped at forward time; the
                             tag survives retransmit/supersede slot reuse
                             because [remember] restamps every fill *)
  mutable p_mirror_left : int;
  mutable p_worst : int; (* worst NFS status seen across mirror acks *)
  mutable p_span : Trace.span; (* request root; finished on reply *)
  mutable p_next_free : int; (* freelist link (slot index); -1 = end *)
}

type cached_attr = {
  ca_fh : Fh.t;
  mutable ca_attr : Nfs.fattr;
  mutable ca_dirty : bool;
  mutable ca_valid_until : float;
      (* lease deadline for serving this attr from the fast path; only an
         authoritative directory-server reply grants one. neg_infinity on
         fabricated entries, so locally-invented attrs are never served. *)
}

type meta_cache_stats = {
  hits : int;  (** positive lookup/getattr/access answered at the proxy *)
  negative_hits : int;  (** lookups answered NOENT from a negative entry *)
  misses : int;  (** fast-path attempts forwarded for lack of an entry *)
  stale : int;  (** fast-path attempts forwarded because a lease lapsed *)
  invalidations : int;  (** mutating ops that invalidated cached entries *)
}

(* Per-packet cost cell. The total lives in a one-element float array so
   accumulation stays unboxed (a mutable float field of this mixed record
   would box on every store). One cell per µproxy, reset per packet: all
   packet handling runs synchronously to completion within one event
   turn, and every deferred continuation extracts what it needs before
   the cell is reused. *)
type cost = { c_tot : float array; mutable c_span : Trace.span }

(* QoS configuration of one µproxy: which tenant its client is, the
   shared registry to account into, an optional token-bucket admission
   gate (background-class tenants), and an optional load probe over
   logical storage sites that turns mirrored-read routing from
   chunk-parity alternation into power-of-two-choices. *)
type qos = {
  q_tenant : int;
  q_tenants : Slice_qos.Tenant.t;
  q_admit : Slice_qos.Bucket.t option;
  q_read_probe : (int -> float) option;
}

type t = {
  host : Host.t;
  net : Net.t;
  eng : Engine.t;
  p : Params.t;
  trace : Trace.t option;
  qos : qos option;
  tg : targets;
  prng : Prng.t;
  rpc : Rpc.t;
  (* pending-record pool + open-addressing xid index. [xidx] stores
     slot+1 (0 = empty) and is sized at twice the pool, so load stays
     under 1/2 and linear probes always terminate on an empty cell.
     Deletion back-shifts (no tombstones). *)
  mutable pool : pending array;
  mutable pool_born : float array; (* arrival time, refreshed by retransmit *)
  mutable free_head : int;
  mutable xidx : int array;
  mutable xmask : int;
  mutable n_pending : int;
  mutable sweep_buf : int array; (* expiry sweep scratch (slot indices) *)
  attrs : (int, cached_attr) Lru.t; (* keyed by file-id collapsed to int *)
  name_cache : (int * string, Fh.t option) Lru.t;
      (* (dir file-id, component) -> handle; None is a negative entry *)
  map_cache : (int, int * int array) Lru.t;
      (* file-id -> (generation, per-chunk logical storage site); the
         generation guards against a recycled file-id routing I/O to old
         sites. Entries are logical, so a migration never invalidates
         them — the site is bound to a physical node at forward time. *)
  intents_open : (int, int64) Hashtbl.t;
  mutable meta_epoch : int;
  mutable fence_seen : int;
      (* sum of the routing tables' fencing epochs at the last refresh; an
         advance means a manager was deposed and the caches hold entries
         from a dead incarnation *)
  mutable n_fence_inval : int;
  (* private snapshots (hints) of the routing tables *)
  mutable dir_map : Packet.addr array;
  mutable dir_version : int;
  mutable sf_map : Packet.addr array;
  mutable sf_version : int;
  mutable st_map : Packet.addr array;
  mutable st_version : int;
  (* Table 3 phase accounting: intercept / decode / rewrite / softstate.
     A float array keeps the per-packet accumulation unboxed. *)
  phase : float array;
  (* reused per-packet machinery *)
  cost : cost;
  cur : Codec.cursor;
  scr4 : bytes; (* EOF-flag patch word *)
  scr8 : bytes; (* u64 / timestamp patch scratch *)
  mutable key_scratch : bytes; (* name-hash scratch (33 + name bytes) *)
  mutable sweep_fn : unit -> unit; (* preallocated sweep closure *)
  (* counters *)
  mutable n_intercepted : int;
  mutable n_replies : int;
  mutable n_storage : int;
  mutable n_smallfile : int;
  mutable n_dir : int;
  dir_hist : int array;
  mutable n_mkdir_redirect : int;
  mutable n_mirror_dup : int;
  mutable n_attr_patch : int;
  mutable n_writeback : int;
  mutable n_commits : int;
  mutable n_intents : int;
  mutable n_stale : int;
  mutable n_map_fetch : int;
  mutable n_expired : int;
  mutable n_meta_hit : int;
  mutable n_meta_neg_hit : int;
  mutable n_meta_miss : int;
  mutable n_meta_stale : int;
  mutable n_meta_inval : int;
  mutable n_admit_defer : int;
  mutable n_p2c_probes : int;
  mutable n_p2c_diverted : int;
  mutable sweep_armed : bool;
}

let[@hot] meta_enabled t = t.p.Params.meta_cache_enabled && t.p.Params.meta_cache_ttl > 0.0

(* ---- per-packet cost accounting ----
   Phases accumulate into the per-packet cell, are charged to the client
   CPU in one booking, and the packet moves on when the booking
   completes. *)

let charge t (c : cost) phase amount =
  c.c_tot.(0) <- c.c_tot.(0) +. amount;
  let i = match phase with `Intercept -> 0 | `Decode -> 1 | `Rewrite -> 2 | `Softstate -> 3 in
  t.phase.(i) <- t.phase.(i) +. amount

let after_cpu t (c : cost) k =
  let start = Engine.now t.eng in
  let finish = Host.cpu_async t.host c.c_tot.(0) in
  (* the booking covers queueing behind earlier packets plus this
     packet's own phases; the emit (a no-op on dead spans, but its float
     arguments box at the call) is gated so untraced runs skip it *)
  if Trace.is_live c.c_span then
    Trace.emit c.c_span ~hop:"proxy" ~site:(Host.name t.host) ~start ~stop:finish ();
  Engine.schedule_at t.eng finish k

(* ---- outgoing calls from the µproxy itself ---- *)

let nfs_call t ?(span = Trace.null) (call : Nfs.call) ~dst =
  let xid = Rpc.fresh_xid t.rpc in
  let payload = Codec.encode_call ~xid call in
  let reply =
    Rpc.call t.rpc ~span ~timeout:2.0 ~dst ~dport:2049
      ~extra_size:(Codec.extra_size_of_call call) payload
  in
  snd (Codec.decode_reply reply)

let ctrl_call t ?(span = Trace.null) msg =
  match t.tg.coordinator () with
  | None -> Ctrl.Nack
  | Some (addr, port) ->
      let xid = Rpc.fresh_xid t.rpc in
      let reply =
        Rpc.call t.rpc ~span ~timeout:2.0 ~dst:addr ~dport:port (Ctrl.encode_msg ~xid msg)
      in
      snd (Ctrl.decode_reply reply)

(* ---- pending-record pool + xid index ---- *)

let rec round_pow2_from p n = if p >= n then p else round_pow2_from (p * 2) n
let round_pow2 n = round_pow2_from 16 n

let fresh_pending () =
  {
    p_xid = 0;
    p_active = false;
    p_klass = KName;
    p_proc = 0;
    p_fh_off = -1;
    p_name_off = 0;
    p_name_len = -1;
    p_offset = 0;
    p_off_field = -1;
    p_count = -1;
    p_buf = Bytes.empty;
    p_len = 0;
    p_rd_site = 0;
    p_epoch = 0;
    p_dirv = 0;
    p_sfv = 0;
    p_stv = 0;
    p_retries = 0;
    p_tenant = 0;
    p_mirror_left = 0;
    p_worst = 0;
    p_span = Trace.null;
    p_next_free = -1;
  }

let xidx_home t xid = xid * 0x9E3779B1 land t.xmask

let[@hot] rec xidx_probe t xid i =
  let v = t.xidx.(i) in
  if v = 0 then -1
  else if t.pool.(v - 1).p_xid = xid then i
  else xidx_probe t xid ((i + 1) land t.xmask)

let[@hot] xidx_pos t xid = xidx_probe t xid (xidx_home t xid)

let[@hot] rec xidx_scan_free t i =
  if t.xidx.(i) = 0 then i else xidx_scan_free t ((i + 1) land t.xmask)

let[@hot] xidx_insert t xid slot = t.xidx.(xidx_scan_free t (xidx_home t xid)) <- slot + 1

(* Backward-shift deletion: refill the hole at [i] from the probe run
   following [j], so lookups never need tombstones. An entry at [j] may
   move into the hole iff its home position is cyclically outside
   (i, j] — otherwise the move would break its own probe chain. *)
let[@hot] rec xidx_shift t i j =
  let j = (j + 1) land t.xmask in
  let v = t.xidx.(j) in
  if v <> 0 then begin
    let k = xidx_home t t.pool.(v - 1).p_xid in
    let movable = if j > i then k <= i || k > j else k <= i && k > j in
    if movable then begin
      t.xidx.(i) <- v;
      t.xidx.(j) <- 0;
      xidx_shift t j j
    end
    else xidx_shift t i j
  end

let[@hot] xidx_delete t xid =
  let pos = xidx_pos t xid in
  if pos >= 0 then begin
    t.xidx.(pos) <- 0;
    xidx_shift t pos pos
  end

let[@hot] release_slot t slot =
  let pd = t.pool.(slot) in
  pd.p_active <- false;
  pd.p_span <- Trace.null;
  pd.p_next_free <- t.free_head;
  t.free_head <- slot;
  t.n_pending <- t.n_pending - 1

(* Overflow past [Params.pending_capacity]: double the pool and rebuild
   the index at matching headroom (cold; the capacity is a sizing hint). *)
let grow_pool t =
  let cap = Array.length t.pool in
  let ncap = cap * 2 in
  let pool = Array.init ncap (fun i -> if i < cap then t.pool.(i) else fresh_pending ()) in
  let born = Array.make ncap 0.0 in
  Array.blit t.pool_born 0 born 0 cap;
  t.pool <- pool;
  t.pool_born <- born;
  t.sweep_buf <- Array.make ncap 0;
  for i = ncap - 1 downto cap do
    pool.(i).p_next_free <- t.free_head;
    t.free_head <- i
  done;
  t.xidx <- Array.make (ncap * 2) 0;
  t.xmask <- (ncap * 2) - 1;
  for i = 0 to cap - 1 do
    if pool.(i).p_active then xidx_insert t pool.(i).p_xid i
  done

let acquire_slot t =
  if t.free_head < 0 then grow_pool t;
  let s = t.free_head in
  t.free_head <- t.pool.(s).p_next_free;
  s

(* ---- span helpers ---- *)

(* Materialize a peeked handle span (cold paths that outlive the packet
   buffer: intents, writeback, commit orchestration). The cursor only
   records offsets of spans [Fh.peek_valid] accepted, so decode cannot
   fail here. *)
let fh_at (payload : bytes) off =
  match Fh.decode_at payload off with
  | Some fh -> fh
  | None -> invalid_arg "Proxy.fh_at: unvalidated handle span"

let scratch_for t nlen =
  let need = 33 + nlen in
  if Bytes.length t.key_scratch < need then t.key_scratch <- Bytes.create (round_pow2 need);
  t.key_scratch

let hash_name t (cur : Codec.cursor) (payload : bytes) ~fh_off ~nsites =
  let nlen = if cur.Codec.c_name_len < 0 then 0 else cur.Codec.c_name_len in
  let noff = if cur.Codec.c_name_len < 0 then 0 else cur.Codec.c_name_off in
  Routekey.name_site_at ~nsites ~scratch:(scratch_for t nlen) payload ~fh_off ~name_off:noff
    ~name_len:nlen

(* ---- attribute cache ---- *)

let cached_attr t (fh : Fh.t) =
  let key = Int64.to_int fh.Fh.file_id in
  match Lru.find t.attrs key with
  | Some c -> c
  | None ->
      let c =
        {
          ca_fh = fh;
          ca_attr = Nfs.default_attr ~ftype:fh.Fh.ftype ~fileid:fh.Fh.file_id ~now:(Engine.now t.eng);
          ca_dirty = false;
          ca_valid_until = neg_infinity;
        }
      in
      Lru.add t.attrs key c;
      c

(* The same lookup keyed straight off the pending record's handle span;
   materializes the handle only when the entry must be created. *)
let cached_attr_of_pending t (pd : pending) =
  if pd.p_fh_off < 0 then cached_attr t Fh.root
  else
    match Lru.find t.attrs (Fh.peek_file_id_int pd.p_buf pd.p_fh_off) with
    | Some c -> c
    | None -> cached_attr t (fh_at pd.p_buf pd.p_fh_off)

let[@hot] dir_phys t logical =
  let n = Array.length t.dir_map in
  (* No directory sites (misconfiguration or a snapshot taken mid-reshape):
     aim at the virtual address, where the packet is counted as a drop and
     the client's retransmission gets another chance after a refresh —
     never divide by zero in the fast path. *)
  if n = 0 then t.tg.virtual_addr else t.dir_map.(logical mod n)

(* Push one dirty cached attribute back to its directory server (the
   paper's setattr write-back on commit / eviction / interval). *)
let writeback_one t (c : cached_attr) =
  if c.ca_dirty then begin
    c.ca_dirty <- false;
    t.n_writeback <- t.n_writeback + 1;
    let a = c.ca_attr in
    let s =
      {
        Nfs.sattr_empty with
        set_size = Some a.Nfs.size;
        set_mtime = Some a.Nfs.mtime;
        set_atime = Some a.Nfs.atime;
      }
    in
    ignore (nfs_call t (Nfs.Setattr (c.ca_fh, s)) ~dst:(dir_phys t c.ca_fh.Fh.attr_site))
  end

let writeback_dirty_attrs t =
  let dirty = ref [] in
  Lru.iter t.attrs (fun _ c -> if c.ca_dirty then dirty := c :: !dirty);
  List.iter (fun c -> Engine.spawn t.eng (fun () -> writeback_one t c)) !dirty

(* ---- table snapshots ---- *)

let combined_epoch_of targets =
  Table.epoch targets.dir_table
  + (match targets.smallfile_table with Some tbl -> Table.epoch tbl | None -> 0)
  + (match targets.storage with Some tbl -> Table.epoch tbl | None -> 0)

(* A fencing-epoch advance means a manager was deposed by a takeover:
   every metadata entry cached from the dead incarnation is suspect.
   Names and block maps are dropped outright. Attribute entries lose
   their lease so the next fast-path attempt revalidates at the new
   owner — except dirty ones, whose pending I/O state (sizes, mtimes of
   writes already acked to the client) must survive the takeover: they
   keep their bytes and are written back to the successor immediately. *)
let fence_invalidate t =
  Lru.clear t.name_cache;
  Lru.clear t.map_cache;
  let clean = ref [] and dirty = ref [] in
  Lru.iter t.attrs (fun k c -> if c.ca_dirty then dirty := c :: !dirty else clean := k :: !clean);
  List.iter (fun k -> Lru.remove t.attrs k) !clean;
  List.iter
    (fun c ->
      c.ca_valid_until <- neg_infinity;
      Engine.spawn t.eng (fun () -> writeback_one t c))
    !dirty;
  t.meta_epoch <- t.meta_epoch + 1;
  t.n_meta_inval <- t.n_meta_inval + 1;
  t.n_fence_inval <- t.n_fence_inval + 1

let refresh_tables t =
  let m, v = Table.snapshot t.tg.dir_table in
  t.dir_map <- m;
  t.dir_version <- v;
  (match t.tg.smallfile_table with
  | Some tbl ->
      let m, v = Table.snapshot tbl in
      t.sf_map <- m;
      t.sf_version <- v
  | None -> ());
  (match t.tg.storage with
  | Some tbl ->
      let m, v = Table.snapshot tbl in
      t.st_map <- m;
      t.st_version <- v
  | None -> ());
  let ep = combined_epoch_of t.tg in
  if ep > t.fence_seen then begin
    t.fence_seen <- ep;
    fence_invalidate t
  end

(* ---- pending-record expiry ---- *)

(* Expire pending records whose reply will never arrive: a client that
   exhausted its retransmissions stops refreshing its record, so nothing
   will ever match that XID again and the slot would leak forever. The
   sweep arms itself only while records exist — an idle µproxy keeps the
   event queue empty, so unbounded [Engine.run] still terminates. The
   sweep charges no CPU: it models a background timer off the packet
   path. The preallocated [sweep_fn] closure keeps arming allocation-free. *)
let arm_sweep t =
  let interval = t.p.Params.pending_sweep_interval in
  if interval > 0.0 && not t.sweep_armed then begin
    t.sweep_armed <- true;
    Engine.schedule t.eng interval t.sweep_fn
  end

let sweep t =
  t.sweep_armed <- false;
  let now = Engine.now t.eng in
  let expiry = t.p.Params.pending_expiry in
  let buf = t.sweep_buf in
  let n = ref 0 in
  for s = 0 to Array.length t.pool - 1 do
    if t.pool.(s).p_active && now -. t.pool_born.(s) >= expiry then begin
      buf.(!n) <- s;
      incr n
    end
  done;
  (* expire in ascending-xid order (insertion sort over the scratch
     array): victim order — hence trace emission — is deterministic and
     independent of pool slot assignment *)
  for i = 1 to !n - 1 do
    let v = buf.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && t.pool.(buf.(!j)).p_xid > t.pool.(v).p_xid do
      buf.(!j + 1) <- buf.(!j);
      decr j
    done;
    buf.(!j + 1) <- v
  done;
  for i = 0 to !n - 1 do
    let s = buf.(i) in
    let pd = t.pool.(s) in
    xidx_delete t pd.p_xid;
    Trace.unbind_xid pd.p_span pd.p_xid;
    Trace.finish ~outcome:"expired" pd.p_span;
    release_slot t s;
    t.n_expired <- t.n_expired + 1
  done;
  if t.n_pending > 0 then arm_sweep t

(* ---- forwarding ---- *)

(* Record the request in the pool, keyed by xid. Must run before any
   in-place rewrite (offset/cookie patches): the pooled buffer keeps the
   bytes the client sent, so a bounce or failover retry re-enters routing
   pristine — stripe offsets are never translated twice. *)
let remember t (cur : Codec.cursor) (payload : bytes) ~span ~klass ~rd_site ~mirrors ~retries =
  let xid = cur.Codec.c_xid in
  let pos = xidx_pos t xid in
  let slot =
    if pos >= 0 then begin
      (* a client retransmit replaces the record: close the superseded
         tree and reuse the slot (the index binding stands) *)
      let s = t.xidx.(pos) - 1 in
      let old = t.pool.(s) in
      Trace.unbind_xid old.p_span xid;
      Trace.finish ~outcome:"superseded" old.p_span;
      s
    end
    else begin
      let s = acquire_slot t in
      xidx_insert t xid s;
      t.n_pending <- t.n_pending + 1;
      s
    end
  in
  let pd = t.pool.(slot) in
  Trace.bind_xid span xid;
  pd.p_xid <- xid;
  pd.p_active <- true;
  pd.p_klass <- klass;
  pd.p_proc <- cur.Codec.c_proc;
  pd.p_fh_off <- cur.Codec.c_fh_off;
  pd.p_name_off <- cur.Codec.c_name_off;
  pd.p_name_len <- cur.Codec.c_name_len;
  pd.p_offset <- cur.Codec.c_offset;
  pd.p_off_field <- cur.Codec.c_off_field;
  pd.p_count <- cur.Codec.c_count;
  let len = Bytes.length payload in
  if Bytes.length pd.p_buf < len then pd.p_buf <- Bytes.create (round_pow2 len);
  Bytes.blit payload 0 pd.p_buf 0 len;
  pd.p_len <- len;
  pd.p_rd_site <- rd_site;
  pd.p_epoch <- t.meta_epoch;
  pd.p_dirv <- t.dir_version;
  pd.p_sfv <- t.sf_version;
  pd.p_stv <- t.st_version;
  pd.p_retries <- retries;
  pd.p_tenant <- (match t.qos with Some q -> q.q_tenant | None -> 0);
  pd.p_mirror_left <- mirrors;
  pd.p_worst <- 0;
  pd.p_span <- span;
  t.pool_born.(slot) <- Engine.now t.eng;
  arm_sweep t

let forward t (c : cost) (pkt : Packet.t) ~dst =
  charge t c `Rewrite t.p.Params.rewrite_cost;
  Cksum.rewrite_dst pkt dst;
  charge t c `Softstate t.p.Params.softstate_cost;
  after_cpu t c (fun () -> Net.inject t.net pkt)

let patch_offset t (c : cost) (pkt : Packet.t) (cur : Codec.cursor) v =
  if cur.Codec.c_off_field >= 0 then begin
    charge t c `Rewrite t.p.Params.rewrite_cost;
    Codec.put_u64_be t.scr8 v;
    Cksum.patch_payload_bytes pkt ~off:cur.Codec.c_off_field t.scr8 ~spos:0 ~len:8
  end

(* ---- commit orchestration ---- *)

(* Physical storage nodes that may hold data of [fh], resolved through
   the current table snapshot (distinct: several logical sites can live
   on one node). *)
let storage_sites_of t (fh : Fh.t) =
  let n = Array.length t.st_map in
  if n = 0 then []
  else if fh.Fh.mirrored then begin
    let r0, r1 = Routekey.mirror_sites ~nsites:n fh in
    let a0 = t.st_map.(r0) and a1 = t.st_map.(r1) in
    if a0 = a1 then [ a0 ] else [ a0; a1 ]
  end
  else List.sort_uniq Int.compare (Array.to_list t.st_map)

let smallfile_dst t (fh : Fh.t) =
  if t.p.Params.threshold <= 0 || Array.length t.sf_map = 0 then None
  else Some t.sf_map.(Routekey.file_site ~nsites:(Array.length t.sf_map) fh)

let orchestrate_commit t ~span ~xid (pkt : Packet.t) (fh : Fh.t) =
  t.n_commits <- t.n_commits + 1;
  let client = pkt.Packet.src in
  let client_port = pkt.Packet.sport in
  Engine.spawn t.eng (fun () ->
      let jobs = ref [] in
      (match smallfile_dst t fh with
      | Some dst ->
          jobs := (fun () -> ignore (nfs_call t ~span (Nfs.Commit (fh, 0L, 0)) ~dst)) :: !jobs
      | None -> ());
      let sites = storage_sites_of t fh in
      (match (sites, t.tg.coordinator ()) with
      | [], _ -> ()
      | sites, Some _ ->
          jobs := (fun () -> ignore (ctrl_call t ~span (Ctrl.Commit_file { fh; sites }))) :: !jobs
      | sites, None ->
          jobs :=
            List.map (fun dst () -> ignore (nfs_call t ~span (Nfs.Commit (fh, 0L, 0)) ~dst)) sites
            @ !jobs);
      Fiber.join_all t.eng !jobs;
      (* Close any open mirrored-write intention. *)
      let fid = Int64.to_int fh.Fh.file_id in
      (match Hashtbl.find_opt t.intents_open fid with
      | Some op_id ->
          Hashtbl.remove t.intents_open fid;
          ignore (ctrl_call t ~span (Ctrl.Complete { op_id }))
      | None -> ());
      (* Push modified attributes to the directory server (the paper's
         µproxy generates a setattr on NFS V3 commit). *)
      let c = cached_attr t fh in
      writeback_one t c;
      (* Synthesize the commit reply to the client. *)
      let payload = Codec.encode_reply ~xid (Ok (Nfs.RCommit c.ca_attr)) in
      let reply =
        Packet.make ~src:t.tg.virtual_addr ~dst:client ~sport:2049 ~dport:client_port payload
      in
      Net.dispatch t.net reply;
      Trace.finish span)

(* ---- mirrored-write intention (amortized across the file's writes) ---- *)

let open_intent_if_needed t (payload : bytes) fh_off =
  if t.tg.coordinator () <> None then begin
    let fid = Fh.peek_file_id_int payload fh_off in
    if not (Hashtbl.mem t.intents_open fid) then begin
      let fh = fh_at payload fh_off in
      let op_id = Int64.of_int (Rpc.fresh_xid t.rpc) in
      Hashtbl.replace t.intents_open fid op_id;
      t.n_intents <- t.n_intents + 1;
      let participants = storage_sites_of t fh in
      Engine.spawn t.eng (fun () ->
          ignore
            (ctrl_call t (Ctrl.Intent { op_id; kind = Ctrl.K_mirror_write; fh; participants })))
    end
  end

(* ---- request routing ---- *)

let name_logical t (cur : Codec.cursor) (payload : bytes) =
  let nsites = Array.length t.dir_map in
  if nsites = 0 then 0 (* no dir sites: degenerate logical id; dir_phys copes *)
  else begin
    let fh_off = cur.Codec.c_fh_off in
    let parent_site = Fh.peek_attr_site payload fh_off mod nsites in
    match (cur.Codec.c_proc, t.p.Params.name_policy) with
    | (1 | 2 | 4 | 5), _ -> parent_site (* getattr/setattr/access/readlink *)
    | 9, Params.Name_hashing -> hash_name t cur payload ~fh_off ~nsites
    | 9, Params.Mkdir_switching ->
        (* mkdir switching: redirect with probability p to the site named
           by the hash (so a raced name involves at most two sites). *)
        if nsites > 1 && Prng.float t.prng 1.0 < t.p.Params.mkdir_p then begin
          let site = hash_name t cur payload ~fh_off ~nsites in
          if site <> parent_site then t.n_mkdir_redirect <- t.n_mkdir_redirect + 1;
          site
        end
        else parent_site
    | (3 | 8 | 10 | 12 | 13 | 14), Params.Name_hashing ->
        hash_name t cur payload ~fh_off ~nsites
    | 15, Params.Name_hashing ->
        (* link routes by the new entry (destination dir, new name) *)
        if cur.Codec.c_fh2_off >= 0 then
          hash_name t cur payload ~fh_off:cur.Codec.c_fh2_off ~nsites
        else parent_site
    | 15, Params.Mkdir_switching ->
        if cur.Codec.c_fh2_off >= 0 then Fh.peek_attr_site payload cur.Codec.c_fh2_off mod nsites
        else parent_site
    | (3 | 8 | 10 | 12 | 13 | 14), Params.Mkdir_switching -> parent_site
    | 16, _ -> (
        (* readdir: under name hashing the cookie's high half carries the
           site being iterated. *)
        match t.p.Params.name_policy with
        | Params.Mkdir_switching -> parent_site
        | Params.Name_hashing ->
            let cookie = if cur.Codec.c_off_field >= 0 then cur.Codec.c_offset else 0 in
            cookie lsr 32 mod nsites)
    | _ -> parent_site
  end

let route_name t (c : cost) (pkt : Packet.t) (cur : Codec.cursor) ~retries =
  let site = name_logical t cur pkt.Packet.payload in
  t.n_dir <- t.n_dir + 1;
  if site < Array.length t.dir_hist then t.dir_hist.(site) <- t.dir_hist.(site) + 1;
  (* readdir cookies travel tagged: the directory server decodes the
     (site, local-cookie) pair itself and owns-gates the site, so a
     server hosting several logical sites iterates the right one. *)
  remember t cur pkt.Packet.payload ~span:c.c_span ~klass:KName ~rd_site:site ~mirrors:1 ~retries;
  forward t c pkt ~dst:(dir_phys t site)

(* Bulk I/O routing. Storage placement is logical-site based: the chosen
   logical site is encoded into the wire offset's high bits
   ([Routekey.site_offset]) so a node hosting several logical sites keeps
   their extents apart, then bound to a physical node through the current
   table snapshot. *)
let rec route_io t (c : cost) (pkt : Packet.t) (cur : Codec.cursor) ~retries =
  let payload = pkt.Packet.payload in
  let fh_off = cur.Codec.c_fh_off in
  let off = if cur.Codec.c_off_field >= 0 then cur.Codec.c_offset else 0 in
  let nsf = Array.length t.sf_map in
  if t.p.Params.threshold > 0 && nsf > 0 && off < t.p.Params.threshold then begin
    let dst = t.sf_map.(Routekey.file_site_at ~nsites:nsf payload ~off:fh_off) in
    t.n_smallfile <- t.n_smallfile + 1;
    remember t cur payload ~span:c.c_span ~klass:KSmallfile ~rd_site:0 ~mirrors:1 ~retries;
    forward t c pkt ~dst
  end
  else begin
    let n = Array.length t.st_map in
    if n = 0 then begin
      (* No storage class configured: let a directory server reject it. *)
      t.n_dir <- t.n_dir + 1;
      remember t cur payload ~span:c.c_span ~klass:KName ~rd_site:0 ~mirrors:1 ~retries;
      forward t c pkt ~dst:(dir_phys t 0)
    end
    else if Fh.peek_mirrored payload fh_off then begin
      let r0 = Routekey.file_site_at ~nsites:n payload ~off:fh_off in
      let r1 = Routekey.mirror_partner ~nsites:n r0 in
      let chunk = Routekey.chunk_of_offset_int ~stripe_unit:t.p.Params.stripe_unit off in
      if cur.Codec.c_proc = 6 then begin
        (* mirrored read: either replica can serve it. Default policy
           alternates on chunk parity; with a QoS load probe this becomes
           power-of-two-choices — read the two replicas' instantaneous
           backlogs and take the shorter queue (ties keep the default, so
           an idle system behaves exactly like parity alternation). *)
        let parity_site = if chunk land 1 = 0 then r0 else r1 in
        let site =
          match t.qos with
          | Some { q_read_probe = Some probe; _ } when r0 <> r1 ->
              t.n_p2c_probes <- t.n_p2c_probes + 1;
              let l0 = probe r0 and l1 = probe r1 in
              let best = if l0 < l1 then r0 else if l1 < l0 then r1 else parity_site in
              if best <> parity_site then t.n_p2c_diverted <- t.n_p2c_diverted + 1;
              best
          | _ -> parity_site
        in
        t.n_storage <- t.n_storage + 1;
        remember t cur payload ~span:c.c_span ~klass:KStorage ~rd_site:0 ~mirrors:1 ~retries;
        patch_offset t c pkt cur (Routekey.site_offset_int ~site off);
        forward t c pkt ~dst:t.st_map.(site)
      end
      else begin
        (* mirrored write: duplicate to both replicas *)
        open_intent_if_needed t payload fh_off;
        t.n_storage <- t.n_storage + 1;
        t.n_mirror_dup <- t.n_mirror_dup + 1;
        remember t cur payload ~span:c.c_span ~klass:KStorage ~rd_site:0
          ~mirrors:(if r0 = r1 then 1 else 2) ~retries;
        let copy = Packet.copy pkt in
        patch_offset t c pkt cur (Routekey.site_offset_int ~site:r0 off);
        forward t c pkt ~dst:t.st_map.(r0);
        if r1 <> r0 then begin
          let c2 = { c_tot = [| 0.0 |]; c_span = c.c_span } in
          (* duplicate emission: requeue + checksum share of the data *)
          charge t c2 `Rewrite
            (t.p.Params.rewrite_cost
            +. (t.p.Params.mirror_dup_cost_per_byte
               *. float_of_int (if cur.Codec.c_count > 0 then cur.Codec.c_count else 0)));
          patch_offset t c2 copy cur (Routekey.site_offset_int ~site:r1 off);
          forward t c2 copy ~dst:t.st_map.(r1)
        end
      end
    end
    else begin
      let su = t.p.Params.stripe_unit in
      let chunk = Routekey.chunk_of_offset_int ~stripe_unit:su off in
      match t.p.Params.io_policy with
      | Params.Static_striping ->
          let site = Routekey.stripe_site_at ~nsites:n ~stripe_unit:su payload ~off:fh_off off in
          t.n_storage <- t.n_storage + 1;
          remember t cur payload ~span:c.c_span ~klass:KStorage ~rd_site:0 ~mirrors:1 ~retries;
          patch_offset t c pkt cur
            (Routekey.site_offset_int ~site (Routekey.local_offset_int ~nsites:n ~stripe_unit:su off));
          forward t c pkt ~dst:t.st_map.(site)
      | Params.Block_map -> (
          let fid = Fh.peek_file_id_int payload fh_off in
          match Lru.find t.map_cache fid with
          | Some (g, map) when g = Fh.peek_gen payload fh_off && chunk < Array.length map ->
              let site = map.(chunk) mod n in
              t.n_storage <- t.n_storage + 1;
              remember t cur payload ~span:c.c_span ~klass:KStorage ~rd_site:0 ~mirrors:1 ~retries;
              patch_offset t c pkt cur
                (Routekey.site_offset_int ~site
                   (Routekey.local_offset_int ~nsites:n ~stripe_unit:su off));
              forward t c pkt ~dst:t.st_map.(site)
          | _ ->
              (* Map-fragment miss (including a generation mismatch from
                 a recycled file-id): fetch from the coordinator, then
                 re-route the absorbed request (the µproxy "interacts
                 with the coordinators to fetch and cache fragments of
                 the block maps"). Map entries are logical sites. The
                 fiber re-peeks the request into the shared cursor when
                 it resumes — the cursor holds no state across turns. *)
              t.n_map_fetch <- t.n_map_fetch + 1;
              charge t c `Softstate t.p.Params.softstate_cost;
              let span = c.c_span in
              let fh = fh_at payload fh_off in
              after_cpu t c (fun () ->
                  Engine.spawn t.eng (fun () ->
                      (match
                         ctrl_call t ~span (Ctrl.Get_map { fh; first_block = 0; count = chunk + 64 })
                       with
                      | Ctrl.Map { first_block = _; sites } ->
                          Lru.add t.map_cache fid (fh.Fh.gen, sites)
                      | Ctrl.Ack | Ctrl.Nack ->
                          (* no dynamic map: fall back to static *)
                          Lru.add t.map_cache fid
                            ( fh.Fh.gen,
                              Array.init (chunk + 64) (fun b ->
                                  (Routekey.file_site ~nsites:n fh + b) mod n) ));
                      let c2 = { c_tot = [| 0.0 |]; c_span = span } in
                      if Codec.peek_call_into t.cur pkt.Packet.payload then
                        route_io t c2 pkt t.cur ~retries)))
    end
  end

(* ---- metadata fast path ----
   The SPECsfs mix is dominated by lookup/getattr/access; each of those
   today costs a directory-server round trip. The µproxy already sees
   every reply, so it can absorb repeats: name entries (including
   negative ones) live in [name_cache] under a TTL lease, and attribute
   entries are served while their lease ([ca_valid_until]) is live.
   Correctness is write-through invalidation (below) plus the lease
   bounding what another client's unseen mutation can cost us. *)

let synth_reply t (c : cost) (pkt : Packet.t) ~xid (resp : Nfs.response) =
  charge t c `Rewrite t.p.Params.rewrite_cost;
  let payload = Codec.encode_reply ~xid resp in
  let reply =
    Packet.make ~src:t.tg.virtual_addr ~dst:pkt.Packet.src ~sport:2049 ~dport:pkt.Packet.sport
      payload
  in
  let span = c.c_span in
  after_cpu t c (fun () ->
      Net.dispatch t.net reply;
      Trace.finish span)

(* Returns true when the request was answered at the proxy. *)
let try_meta_fast_path t (c : cost) (pkt : Packet.t) (cur : Codec.cursor) =
  let payload = pkt.Packet.payload in
  let now = Engine.now t.eng in
  charge t c `Softstate t.p.Params.softstate_cost;
  let fid = Fh.peek_file_id_int payload cur.Codec.c_fh_off in
  let hit resp =
    t.n_meta_hit <- t.n_meta_hit + 1;
    synth_reply t c pkt ~xid:cur.Codec.c_xid resp;
    true
  in
  let miss () =
    t.n_meta_miss <- t.n_meta_miss + 1;
    false
  in
  let stale () =
    t.n_meta_stale <- t.n_meta_stale + 1;
    false
  in
  match cur.Codec.c_proc with
  | 1 -> (
      match Lru.find t.attrs fid with
      | Some ca when ca.ca_valid_until > now -> hit (Ok (Nfs.RGetattr ca.ca_attr))
      | Some _ -> stale ()
      | None -> miss ())
  | 4 -> (
      match Lru.find t.attrs fid with
      | Some ca when ca.ca_valid_until > now && cur.Codec.c_access >= 0 ->
          (* the directory server grants the full requested mask (see
             Dirserver's Access handler), so echoing it is faithful *)
          hit (Ok (Nfs.RAccess (cur.Codec.c_access, ca.ca_attr)))
      | Some _ -> stale ()
      | None -> miss ())
  | 3 ->
      if cur.Codec.c_name_len < 0 then miss ()
      else begin
        let name = Bytes.sub_string payload cur.Codec.c_name_off cur.Codec.c_name_len in
        match Lru.find_ttl t.name_cache (fid, name) ~now with
        | Lru.Fresh (Some child) -> (
            (* a positive hit must also produce attributes; serve only
               if the child's attr lease is live too *)
            match Lru.find t.attrs (Int64.to_int child.Fh.file_id) with
            | Some ca when ca.ca_valid_until > now -> hit (Ok (Nfs.RLookup (child, ca.ca_attr)))
            | Some _ -> stale ()
            | None -> miss ())
        | Lru.Fresh None ->
            t.n_meta_neg_hit <- t.n_meta_neg_hit + 1;
            synth_reply t c pkt ~xid:cur.Codec.c_xid (Error Nfs.ERR_NOENT);
            true
        | Lru.Stale -> stale ()
        | Lru.Miss -> miss ()
      end
  | _ -> false

(* Write-through invalidation: drop or revoke every cached entry a
   mutating op can falsify, *before* the op is forwarded — a later hit
   can then never contradict the server. Attr entries are revoked (lease
   zeroed) rather than removed so dirty I/O state keeps its write-back;
   entries for a removed file are dropped outright. The epoch bump makes
   in-flight replies from before the mutation unable to repopulate.
   Name-cache surgery is gated on [meta_enabled]: the cache is empty
   otherwise, and the gate keeps the meta-off packet path free of the
   name-string allocation. *)
let revoke_attr t (fid : int) =
  match Lru.find t.attrs fid with
  | Some ca -> ca.ca_valid_until <- neg_infinity
  | None -> ()

let drop_child t (fid : int) =
  Lru.remove t.attrs fid;
  Lru.remove t.map_cache fid

let invalidate_meta t (cur : Codec.cursor) (payload : bytes) =
  let bump () =
    t.meta_epoch <- t.meta_epoch + 1;
    t.n_meta_inval <- t.n_meta_inval + 1
  in
  let resolve dir_id name =
    match Lru.find t.name_cache (dir_id, name) with Some (Some child) -> Some child | _ -> None
  in
  let name () =
    if cur.Codec.c_name_len < 0 then ""
    else Bytes.sub_string payload cur.Codec.c_name_off cur.Codec.c_name_len
  in
  let fid = Fh.peek_file_id_int payload cur.Codec.c_fh_off in
  match cur.Codec.c_proc with
  | 2 ->
      (* setattr: attributes change; a truncation also invalidates the
         block map (a re-created file must not route I/O to placement
         decided for the old extent) *)
      revoke_attr t fid;
      if cur.Codec.c_has_set_size then Lru.remove t.map_cache fid;
      bump ()
  | 8 | 9 | 10 ->
      (* create/mkdir/symlink: kill any negative entry under this name;
         the directory's own attrs (mtime, size) change *)
      if meta_enabled t then Lru.remove t.name_cache (fid, name ());
      revoke_attr t fid;
      bump ()
  | 12 | 13 ->
      (* remove/rmdir: the child is gone for good — drop everything known
         about it (its dirty state has nowhere to go anyway) *)
      if meta_enabled t then begin
        let nm = name () in
        (match resolve fid nm with
        | Some child -> drop_child t (Int64.to_int child.Fh.file_id)
        | None -> ());
        Lru.remove t.name_cache (fid, nm)
      end;
      revoke_attr t fid;
      bump ()
  | 14 ->
      (* rename: the source name vanishes but the file persists (keep its
         dirty attr state, just revoke the lease — ctime changed); any
         previous destination target is silently deleted *)
      if meta_enabled t then begin
        let nm = name () in
        (match resolve fid nm with
        | Some child -> revoke_attr t (Int64.to_int child.Fh.file_id)
        | None -> ());
        Lru.remove t.name_cache (fid, nm)
      end;
      if cur.Codec.c_fh2_off >= 0 && cur.Codec.c_name2_len >= 0 then begin
        let fid2 = Fh.peek_file_id_int payload cur.Codec.c_fh2_off in
        if meta_enabled t then begin
          let n2 = Bytes.sub_string payload cur.Codec.c_name2_off cur.Codec.c_name2_len in
          (match resolve fid2 n2 with
          | Some victim -> drop_child t (Int64.to_int victim.Fh.file_id)
          | None -> ());
          Lru.remove t.name_cache (fid2, n2)
        end;
        revoke_attr t fid2
      end;
      revoke_attr t fid;
      bump ()
  | 15 ->
      (* link: a new entry appears in dir2; the file's nlink changes *)
      revoke_attr t fid;
      if cur.Codec.c_fh2_off >= 0 then begin
        let fid2 = Fh.peek_file_id_int payload cur.Codec.c_fh2_off in
        if meta_enabled t then Lru.remove t.name_cache (fid2, name ());
        revoke_attr t fid2
      end;
      bump ()
  | _ -> ()

(* RFC 1813 procedure numbers, as op-class labels for trace roots. *)
let[@hot] op_of_proc = function
  | 0 -> "null"
  | 1 -> "getattr"
  | 2 -> "setattr"
  | 3 -> "lookup"
  | 4 -> "access"
  | 5 -> "readlink"
  | 6 -> "read"
  | 7 -> "write"
  | 8 -> "create"
  | 9 -> "mkdir"
  | 10 -> "symlink"
  | 12 -> "remove"
  | 13 -> "rmdir"
  | 14 -> "rename"
  | 15 -> "link"
  | 16 -> "readdir"
  | 18 -> "fsstat"
  | 21 -> "commit"
  | _ -> "other"

let rec handle_request ?(retries = 0) t (pkt : Packet.t) =
  (* Admission gate: a background-class tenant over its token rate has
     the request held at its own µproxy — deferred, not dropped — until a
     token accrues. Backpressure lands at the edge, before the request
     can queue on any shared server. *)
  let admitted =
    match t.qos with
    | Some { q_admit = Some b; q_tenants; q_tenant; _ } ->
        let now = Engine.now t.eng in
        if Slice_qos.Bucket.try_take b ~now then begin
          Slice_qos.Tenant.note_admitted q_tenants q_tenant;
          true
        end
        else begin
          t.n_admit_defer <- t.n_admit_defer + 1;
          Slice_qos.Tenant.note_deferred q_tenants q_tenant;
          (* Floor the retry delay at 1 µs: when the bucket sits within
             one ulp of a whole token, [next_ready] can be smaller than
             the clock's own resolution and [now +. delay = now] would
             respin this event at a frozen instant forever. *)
          Engine.schedule t.eng
            (Float.max (Slice_qos.Bucket.next_ready b ~now) 1e-6)
            (fun () -> handle_request ~retries t pkt);
          false
        end
    | _ -> true
  in
  if admitted then handle_admitted ~retries t pkt

and handle_admitted ~retries t (pkt : Packet.t) =
  t.n_intercepted <- t.n_intercepted + 1;
  let c = t.cost in
  c.c_tot.(0) <- 0.0;
  c.c_span <- Trace.null;
  charge t c `Intercept t.p.Params.intercept_cost;
  let cur = t.cur in
  if not (Codec.peek_call_into cur pkt.Packet.payload) then
    (* not an NFS call: the virtual server has nothing else behind it *)
    charge t c `Decode t.p.Params.decode_cost_per_item
  else begin
    c.c_span <- Trace.root t.trace ~op:(op_of_proc cur.Codec.c_proc) ~site:(Host.name t.host);
    charge t c `Decode (t.p.Params.decode_cost_per_item *. float_of_int cur.Codec.c_items);
    if cur.Codec.c_fh_off < 0 then begin
      (* NULL: any directory server can answer *)
      t.n_dir <- t.n_dir + 1;
      remember t cur pkt.Packet.payload ~span:c.c_span ~klass:KName ~rd_site:0 ~mirrors:1
        ~retries;
      forward t c pkt ~dst:(dir_phys t 0)
    end
    else
      match cur.Codec.c_proc with
      | 6 | 7 when Fh.peek_ftype_code pkt.Packet.payload cur.Codec.c_fh_off = 1 ->
          route_io t c pkt cur ~retries
      | 21 when Fh.peek_ftype_code pkt.Packet.payload cur.Codec.c_fh_off = 1 ->
          charge t c `Softstate t.p.Params.softstate_cost;
          let span = c.c_span in
          let xid = cur.Codec.c_xid in
          let fh = fh_at pkt.Packet.payload cur.Codec.c_fh_off in
          after_cpu t c (fun () -> orchestrate_commit t ~span ~xid pkt fh)
      | (1 | 3 | 4) when meta_enabled t ->
          if not (try_meta_fast_path t c pkt cur) then route_name t c pkt cur ~retries
      | _ ->
          invalidate_meta t cur pkt.Packet.payload;
          route_name t c pkt cur ~retries
  end

(* ---- reply handling ---- *)

let[@hot] reply_status (payload : bytes) =
  if Bytes.length payload >= 28 then Int32.to_int (Bytes.get_int32_be payload 24)
  else -1

(* Retry a bounced request after refreshing the routing tables. Every
   request class keeps its pristine payload, so any bounce can be
   re-routed instead of silently swallowed. [orig] is a fresh copy cut
   from the pooled buffer by the caller — the pool slot may be reused
   before the retry fires. *)
let retry_misdirected ?(retries = 0) t ~src ~sport (orig : bytes) =
  let pkt = Packet.make ~src ~dst:t.tg.virtual_addr ~sport ~dport:2049 orig in
  handle_request ~retries t pkt

(* A bounce that a refresh could not explain (the table versions did not
   change) means a migration is mid-drain: the move has not committed
   yet, so an immediate retry would bounce right back. Back off a little
   and retry; after the budget is spent, drop the request and let the
   client's own RPC retransmission drive the next attempt. *)
let misdirect_retry_limit = 8
let misdirect_retry_delay = 0.01

(* readdir iteration across hash sites: translate local cookies into
   (site, cookie) pairs and splice sites together at EOF boundaries. *)
let translate_readdir t (c : cost) ~rd_site ~span (pkt : Packet.t) =
  match Codec.decode_reply pkt.Packet.payload with
  | _, Error _ ->
      Trace.finish ~outcome:"error" span;
      Some pkt (* pass errors through *)
  | xid, Ok (Nfs.RReaddir (entries, cookie, eof)) ->
      charge t c `Decode
        (t.p.Params.decode_cost_per_item *. float_of_int (4 + (3 * List.length entries)));
      let site = Int64.of_int rd_site in
      let tag v = Int64.logor (Int64.shift_left site 32) (Int64.logand v 0xFFFFFFFFL) in
      let entries =
        List.map (fun (e : Nfs.entry) -> { e with Nfs.entry_cookie = tag e.Nfs.entry_cookie }) entries
      in
      let nsites = Array.length t.dir_map in
      let cookie, eof =
        if eof && rd_site + 1 < nsites then (Int64.shift_left (Int64.add site 1L) 32, false)
        else (tag cookie, eof)
      in
      let payload = Codec.encode_reply ~xid (Ok (Nfs.RReaddir (entries, cookie, eof))) in
      charge t c `Rewrite t.p.Params.rewrite_cost;
      let reply =
        Packet.make ~src:t.tg.virtual_addr ~dst:pkt.Packet.dst ~sport:pkt.Packet.sport
          ~dport:pkt.Packet.dport payload
      in
      after_cpu t c (fun () ->
          Net.dispatch t.net reply;
          Trace.finish span);
      None
  | _, Ok _ ->
      Trace.finish span;
      Some pkt

let patch_reply_attrs t (c : cost) (pd : pending) (pkt : Packet.t) =
  let payload = pkt.Packet.payload in
  let off = Codec.reply_attr_offset_i payload in
  if off >= 0 then begin
    charge t c `Decode (t.p.Params.decode_cost_per_item *. 13.0);
    let now = Engine.now t.eng in
    match pd.p_klass with
    | KStorage | KSmallfile ->
        (* Node-local attributes are not authoritative for striped /
           split files: patch size and times from the µproxy's cache,
           folding this op's effect into the cached record in place. *)
        let ca = cached_attr_of_pending t pd in
        (match pd.p_proc with
        | 7 ->
            (* write: size grows to at least offset + count written *)
            let hi =
              (if pd.p_off_field >= 0 then pd.p_offset else 0)
              + (if pd.p_count > 0 then pd.p_count else 0)
            in
            let sz = Int64.to_int ca.ca_attr.Nfs.size in
            let size = if hi > sz then hi else sz in
            ca.ca_attr.Nfs.size <- Int64.of_int size;
            ca.ca_attr.Nfs.used <- Int64.of_int size;
            ca.ca_attr.Nfs.mtime <- now;
            ca.ca_attr.Nfs.ctime <- now;
            ca.ca_dirty <- true
        | 6 ->
            (* read: maintain access time; learn the size if we had
               nothing cached yet (single-node files report truly). *)
            let ret_size =
              Int64.to_int (Bytes.get_int64_be payload (off + Codec.attr_size_field_off))
            in
            if Int64.to_int ca.ca_attr.Nfs.size < ret_size && not ca.ca_dirty then
              ca.ca_attr.Nfs.size <- Int64.of_int ret_size;
            ca.ca_attr.Nfs.atime <- now;
            ca.ca_dirty <- true
        | _ -> ());
        let a = ca.ca_attr in
        Codec.put_u64_be t.scr8 (Int64.to_int a.Nfs.size);
        Cksum.patch_payload_bytes pkt ~off:(off + Codec.attr_size_field_off) t.scr8 ~spos:0 ~len:8;
        Codec.put_time_be t.scr8 a.Nfs.atime;
        Cksum.patch_payload_bytes pkt ~off:(off + Codec.attr_atime_field_off) t.scr8 ~spos:0 ~len:8;
        Codec.put_time_be t.scr8 a.Nfs.mtime;
        Cksum.patch_payload_bytes pkt ~off:(off + Codec.attr_mtime_field_off) t.scr8 ~spos:0 ~len:8;
        charge t c `Rewrite (3.0 *. t.p.Params.rewrite_cost);
        t.n_attr_patch <- t.n_attr_patch + 1;
        (* reads: fix the EOF flag, which the node judged against its
           local fragment of the file *)
        if pd.p_proc = 6 then begin
          let tag_off = off + Codec.attr_wire_size in
          if Bytes.length payload >= tag_off + 12 then begin
            let count = Int32.to_int (Bytes.get_int32_be payload (tag_off + 4)) in
            let fin = (if pd.p_off_field >= 0 then pd.p_offset else 0) + count in
            let eof = fin >= Int64.to_int a.Nfs.size in
            Bytes.set_int32_be t.scr4 0 (if eof then 1l else 0l);
            Cksum.patch_payload_bytes pkt ~off:(tag_off + 8) t.scr4 ~spos:0 ~len:4;
            charge t c `Rewrite t.p.Params.rewrite_cost
          end
        end
    | KName ->
        (* Directory servers are authoritative; refresh the cache. If
           the µproxy holds dirtier I/O state, patch it in. The refresh
           also grants a fast-path lease — unless an invalidation raced
           past while this reply was in flight (epoch mismatch), in
           which case the reply's data may already be falsified and
           must not become servable. The cache key (fileid) reads
           straight off the wire; the 84-byte block is only decoded
           when an entry actually consumes it. *)
        let grant ca =
          if meta_enabled t && pd.p_epoch = t.meta_epoch then
            ca.ca_valid_until <- now +. t.p.Params.meta_cache_ttl
        in
        let rfh_off = Codec.reply_fh_after_attr_off payload in
        if rfh_off >= 0 || pd.p_fh_off >= 0 then begin
          let keyed =
            Int64.to_int (Bytes.get_int64_be payload (off + Codec.attr_fileid_field_off))
          in
          match Lru.find t.attrs keyed with
          | Some ca when ca.ca_dirty ->
              let returned = Codec.decode_attr_at payload off in
              let size =
                if Int64.compare ca.ca_attr.Nfs.size returned.Nfs.size > 0 then
                  ca.ca_attr.Nfs.size
                else returned.Nfs.size
              in
              let mtime = ca.ca_attr.Nfs.mtime in
              returned.Nfs.size <- size;
              returned.Nfs.mtime <- mtime;
              ca.ca_attr <- returned;
              Codec.put_u64_be t.scr8 (Int64.to_int size);
              Cksum.patch_payload_bytes pkt ~off:(off + Codec.attr_size_field_off) t.scr8
                ~spos:0 ~len:8;
              Codec.put_time_be t.scr8 mtime;
              Cksum.patch_payload_bytes pkt ~off:(off + Codec.attr_mtime_field_off) t.scr8
                ~spos:0 ~len:8;
              charge t c `Rewrite (2.0 *. t.p.Params.rewrite_cost);
              t.n_attr_patch <- t.n_attr_patch + 1;
              grant ca
          | Some ca ->
              ca.ca_attr <- Codec.decode_attr_at payload off;
              grant ca
          | None ->
              (* Creating entries only matters to the metadata fast
                 path; with it off, skip the handle/attr decode. *)
              if meta_enabled t then begin
                let fh_opt =
                  if rfh_off >= 0 then Fh.decode_at payload rfh_off
                  else Fh.decode_at pd.p_buf pd.p_fh_off
                in
                match fh_opt with
                | None -> ()
                | Some fh ->
                    let ca =
                      { ca_fh = fh; ca_attr = Codec.decode_attr_at payload off;
                        ca_dirty = false; ca_valid_until = neg_infinity }
                    in
                    grant ca;
                    Lru.add t.attrs keyed ca
              end
        end
  end

(* Populate the name cache from a directory server's answer: a successful
   lookup/create/mkdir/symlink binds (dir, name) -> child handle; a
   lookup that returned NOENT proves absence, worth a negative entry
   (SPECsfs and build workloads probe absent names repeatedly). Replies
   from before an invalidation (epoch mismatch) teach nothing. *)
let learn_name t (pd : pending) (pkt : Packet.t) =
  if
    meta_enabled t && pd.p_epoch = t.meta_epoch
    && (match pd.p_klass with KName -> true | _ -> false)
    && pd.p_fh_off >= 0 && pd.p_name_len >= 0
  then begin
    let dir_id = Fh.peek_file_id_int pd.p_buf pd.p_fh_off in
    let name = Bytes.sub_string pd.p_buf pd.p_name_off pd.p_name_len in
    let key = (dir_id, name) in
    let expires = Engine.now t.eng +. t.p.Params.meta_cache_ttl in
    let st = reply_status pkt.Packet.payload in
    match pd.p_proc with
    | (3 | 8 | 9 | 10) when st = 0 -> (
        match Codec.reply_fh_after_attr pkt.Packet.payload with
        | Some child -> Lru.add t.name_cache ~expires_at:expires key (Some child)
        | None -> ())
    | 3 when st = Codec.int_of_status Nfs.ERR_NOENT ->
        Lru.add t.name_cache ~expires_at:expires key None
    | _ -> ()
  end

(* The borrowed pending record is only valid for the synchronous part of
   this call: every deferred continuation extracts the fields it needs
   (span, retry budget, a fresh copy of the pristine payload) before
   [after_cpu] — the caller releases the slot as soon as we return. *)
let handle_reply t (pkt : Packet.t) (pd : pending) =
  let c = t.cost in
  c.c_tot.(0) <- 0.0;
  c.c_span <- pd.p_span;
  charge t c `Intercept t.p.Params.intercept_cost;
  charge t c `Softstate t.p.Params.softstate_cost;
  t.n_replies <- t.n_replies + 1;
  if pd.p_mirror_left > 1 then begin
    (* first mirror ack: wait for the slower replica, but keep the worst
       status seen — acking a write the first replica failed would lose
       data silently. *)
    pd.p_mirror_left <- pd.p_mirror_left - 1;
    let st = reply_status pkt.Packet.payload in
    if st > 0 then pd.p_worst <- st;
    after_cpu t c (fun () -> ());
    None
  end
  else begin
    (* pending record already unbound by the caller, keyed on xid *)
    let st = reply_status pkt.Packet.payload in
    if st = 20001 || pd.p_worst = 20001 then begin
      t.n_stale <- t.n_stale + 1;
      (* a bounced storage request may have been routed by a stale block
         map fragment: refetch it on the retry *)
      (match pd.p_klass with
      | KStorage when pd.p_fh_off >= 0 ->
          Lru.remove t.map_cache (Fh.peek_file_id_int pd.p_buf pd.p_fh_off)
      | _ -> ());
      refresh_tables t;
      let moved =
        t.dir_version <> pd.p_dirv || t.sf_version <> pd.p_sfv || t.st_version <> pd.p_stv
      in
      let span = pd.p_span in
      let retries = pd.p_retries in
      let orig = Bytes.sub pd.p_buf 0 pd.p_len in
      let csrc = pkt.Packet.dst and csport = pkt.Packet.dport in
      after_cpu t c (fun () ->
          (* the retry re-enters routing and opens a fresh root *)
          Trace.finish ~outcome:"bounced" span;
          if moved then retry_misdirected t ~src:csrc ~sport:csport orig
          else if retries < misdirect_retry_limit then
            Engine.schedule t.eng
              (misdirect_retry_delay *. float_of_int (retries + 1))
              (fun () -> retry_misdirected ~retries:(retries + 1) t ~src:csrc ~sport:csport orig));
      None
    end
    else if pd.p_worst > 0 && st = 0 then begin
      (* Mirrored write: an earlier replica failed but the last one
         succeeded. Forward the failure so the client retries — the
         success reply would hide a half-written mirror pair. *)
      let xid = Codec.xid_of pkt.Packet.payload in
      let status =
        try Codec.status_of_int pd.p_worst with Codec.Malformed _ -> Nfs.ERR_IO
      in
      let payload = Codec.encode_reply ~xid (Error status) in
      charge t c `Rewrite t.p.Params.rewrite_cost;
      let reply =
        Packet.make ~src:t.tg.virtual_addr ~dst:pkt.Packet.dst ~sport:pkt.Packet.sport
          ~dport:pkt.Packet.dport payload
      in
      let span = pd.p_span in
      after_cpu t c (fun () ->
          Net.dispatch t.net reply;
          Trace.finish ~outcome:"mirror_error" span);
      None
    end
    else if pd.p_proc = 16 && t.p.Params.name_policy = Params.Name_hashing then
      translate_readdir t c ~rd_site:pd.p_rd_site ~span:pd.p_span pkt
    else begin
      patch_reply_attrs t c pd pkt;
      learn_name t pd pkt;
      charge t c `Rewrite t.p.Params.rewrite_cost;
      Cksum.rewrite_src pkt t.tg.virtual_addr;
      let span = pd.p_span in
      after_cpu t c (fun () ->
          Net.dispatch t.net pkt;
          Trace.finish ~outcome:(if st = 0 then "ok" else "error") span);
      None
    end
  end

(* ---- filters ---- *)

let egress_filter t (pkt : Packet.t) =
  if pkt.Packet.dst = t.tg.virtual_addr && pkt.Packet.dport = 2049 then begin
    handle_request t pkt;
    None
  end
  else Some pkt

let ingress_filter t (pkt : Packet.t) =
  if Bytes.length pkt.Packet.payload < 4 then Some pkt
  else begin
    let xid = Int32.to_int (Bytes.get_int32_be pkt.Packet.payload 0) land 0xFFFFFFFF in
    let pos = xidx_pos t xid in
    if pos < 0 then Some pkt
    else begin
      let slot = t.xidx.(pos) - 1 in
      let pd = t.pool.(slot) in
      let last = pd.p_mirror_left <= 1 in
      if last then begin
        t.xidx.(pos) <- 0;
        xidx_shift t pos pos;
        Trace.unbind_xid pd.p_span xid;
        (* per-tenant accounting on the closing reply: one op, the
           response bytes, and the client-visible latency measured from
           the pending record's (retransmit-refreshed) arrival stamp *)
        match t.qos with
        | Some q ->
            Slice_qos.Tenant.note_reply q.q_tenants pd.p_tenant
              ~bytes:(Bytes.length pkt.Packet.payload + pkt.Packet.extra_size);
            Slice_qos.Tenant.observe_latency q.q_tenants pd.p_tenant
              (Engine.now t.eng -. t.pool_born.(slot))
        | None -> ()
      end;
      let r = handle_reply t pkt pd in
      if last then release_slot t slot;
      r
    end
  end

let rec writeback_tick t =
  if t.p.Params.attr_writeback_interval > 0.0 then
    Engine.schedule t.eng t.p.Params.attr_writeback_interval (fun () ->
        writeback_dirty_attrs t;
        writeback_tick t)

let install host ?(params = Params.default) ?(seed = 7) ?trace ?qos targets =
  let net = host.Host.net in
  let dir_map, dir_version = Table.snapshot targets.dir_table in
  let sf_map, sf_version =
    match targets.smallfile_table with Some tbl -> Table.snapshot tbl | None -> ([||], 0)
  in
  let st_map, st_version =
    match targets.storage with Some tbl -> Table.snapshot tbl | None -> ([||], 0)
  in
  (* Evicted dirty attributes must be pushed back to their directory
     server; the eviction hook needs the proxy record, which needs the
     cache — tie the knot through a forward reference. *)
  let self = ref None in
  let attrs =
    Lru.create ~capacity:params.Params.attr_cache_capacity
      ~on_evict:(fun _ c ->
        match !self with
        | Some t when c.ca_dirty ->
            Slice_sim.Engine.spawn host.Host.eng (fun () -> writeback_one t c)
        | _ -> ())
      ()
  in
  let cap = round_pow2 (max 16 params.Params.pending_capacity) in
  let pool = Array.init cap (fun _ -> fresh_pending ()) in
  let t =
    {
      host;
      net;
      eng = host.Host.eng;
      p = params;
      trace;
      qos;
      tg = targets;
      prng = Prng.create (seed + (host.Host.addr * 7919));
      rpc = Rpc.create net host.Host.addr ~port:params.Params.rpc_port;
      pool;
      pool_born = Array.make cap 0.0;
      free_head = -1;
      xidx = Array.make (cap * 2) 0;
      xmask = (cap * 2) - 1;
      n_pending = 0;
      sweep_buf = Array.make cap 0;
      attrs;
      name_cache = Lru.create ~capacity:params.Params.name_cache_capacity ();
      map_cache = Lru.create ~capacity:params.Params.map_cache_capacity ();
      (* lint: bounded — one row per file with an open mirrored-write intent; commit closes it *)
      intents_open = Hashtbl.create 16;
      meta_epoch = 0;
      fence_seen = combined_epoch_of targets;
      n_fence_inval = 0;
      dir_map;
      dir_version;
      sf_map;
      sf_version;
      st_map;
      st_version;
      phase = Array.make 4 0.0;
      cost = { c_tot = [| 0.0 |]; c_span = Trace.null };
      cur = Codec.cursor ();
      scr4 = Bytes.create 4;
      scr8 = Bytes.create 8;
      key_scratch = Bytes.create (33 + 256);
      sweep_fn = (fun () -> ());
      n_intercepted = 0;
      n_replies = 0;
      n_storage = 0;
      n_smallfile = 0;
      n_dir = 0;
      dir_hist = Array.make (Table.nsites targets.dir_table) 0;
      n_mkdir_redirect = 0;
      n_mirror_dup = 0;
      n_attr_patch = 0;
      n_writeback = 0;
      n_commits = 0;
      n_intents = 0;
      n_stale = 0;
      n_map_fetch = 0;
      n_expired = 0;
      n_meta_hit = 0;
      n_meta_neg_hit = 0;
      n_meta_miss = 0;
      n_meta_stale = 0;
      n_meta_inval = 0;
      n_admit_defer = 0;
      n_p2c_probes = 0;
      n_p2c_diverted = 0;
      sweep_armed = false;
    }
  in
  for i = cap - 1 downto 0 do
    pool.(i).p_next_free <- t.free_head;
    t.free_head <- i
  done;
  t.sweep_fn <- (fun () -> sweep t);
  self := Some t;
  Net.add_egress_filter net host.Host.addr (egress_filter t);
  Net.add_ingress_filter net host.Host.addr (ingress_filter t);
  writeback_tick t;
  t

let params t = t.p

let discard_soft_state t =
  Array.fill t.xidx 0 (Array.length t.xidx) 0;
  t.free_head <- -1;
  for i = Array.length t.pool - 1 downto 0 do
    let pd = t.pool.(i) in
    pd.p_active <- false;
    pd.p_span <- Trace.null;
    pd.p_next_free <- t.free_head;
    t.free_head <- i
  done;
  t.n_pending <- 0;
  Lru.clear t.attrs;
  Lru.clear t.name_cache;
  Lru.clear t.map_cache;
  t.meta_epoch <- t.meta_epoch + 1

let cpu_breakdown t =
  {
    interception = t.phase.(0);
    decode = t.phase.(1);
    rewrite = t.phase.(2);
    soft_state = t.phase.(3);
  }

let packets_intercepted t = t.n_intercepted
let replies_processed t = t.n_replies
let routed_to_storage t = t.n_storage
let routed_to_smallfile t = t.n_smallfile
let routed_to_dir t = t.n_dir
let dir_site_histogram t = Array.copy t.dir_hist
let mkdir_redirects t = t.n_mkdir_redirect
let mirror_duplicates t = t.n_mirror_dup
let attr_patches t = t.n_attr_patch
let attr_writebacks t = t.n_writeback
let commits_orchestrated t = t.n_commits
let intents_opened t = t.n_intents
let stale_bounces t = t.n_stale
let map_fetches t = t.n_map_fetch
let expired_pending t = t.n_expired
let pending_size t = t.n_pending

let meta_cache_stats t =
  {
    hits = t.n_meta_hit;
    negative_hits = t.n_meta_neg_hit;
    misses = t.n_meta_miss;
    stale = t.n_meta_stale;
    invalidations = t.n_meta_inval;
  }

let name_cache_entries t = Lru.entry_count t.name_cache
let map_cache_entries t = Lru.entry_count t.map_cache
let fence_invalidations t = t.n_fence_inval
let admission_deferrals t = t.n_admit_defer
let p2c_probes t = t.n_p2c_probes
let p2c_diverted t = t.n_p2c_diverted

(* Test hook: the tenant stamped on the live pending record for [xid]
   (None when no record is pending). Exercises tag preservation across
   retransmit-supersede slot reuse. *)
let pending_tenant t ~xid =
  let pos = xidx_pos t xid in
  if pos < 0 then None else Some t.pool.(t.xidx.(pos) - 1).p_tenant

(** Ensemble assembly: builds a complete Slice deployment on a simulated
    switched LAN — storage nodes, block-service coordinator, directory
    servers, small-file servers, routing tables, a virtual NFS server
    address — and installs a µproxy on each client host added to it.

    Faithful structural details:
    - storage nodes are 733 MHz-class machines with 8-arm disk arrays;
    - the coordinator runs as an extension of storage node 0's module;
    - directory and small-file servers are PC-class {e dataless} managers:
      small-file zones are striped over the network storage array through
      a storage-only µproxy on the manager's own host, and directory
      journals go to a dedicated local log disk (sequential-only traffic;
      see DESIGN.md for the substitution note);
    - clients are PC-class hosts whose µproxy interposes on the path to
      the virtual server address. *)

type qos_config = {
  tenants : Slice_qos.Tenant.spec array;
      (** tenant roster shared by every layer; ids are array indices *)
  wfq_depth : int;
      (** concurrent jobs per server's WFQ scheduler. Dataless managers
          (directory and small-file servers) hold a dispatch slot across
          backend round trips, so they run at 4x this depth; storage
          nodes use it as-is. Size it to the storage node's disk-arm
          count: deeper dispatch just moves queueing below the
          scheduler, where weights cannot protect anyone. *)
  p2c_reads : bool;
      (** route mirrored reads by power-of-two-choices over replica
          backlogs instead of chunk-parity alternation *)
  system_tenant : int;
      (** tenant charged for infrastructure traffic (dataless managers'
          backend I/O, unlabelled clients); index into [tenants] *)
}
(** Per-tenant QoS: a shared tenant registry, a WFQ scheduler replacing
    FIFO dispatch at every server, token-bucket admission at tenant
    µproxies (for specs with a positive [admit_rate]) and optional
    power-of-d mirrored reads. *)

type config = {
  seed : int;
  net_params : Slice_net.Net.params option;
  storage_nodes : int;
  disks_per_node : int;
  storage_cache : int;  (** bytes of buffer cache per storage node *)
  dir_servers : int;
  smallfile_servers : int;
  smallfile_cache : int;  (** bytes of cache per small-file server *)
  proxy_params : Params.t;  (** routing policies shared by all µproxies *)
  dir_costs : Slice_dir.Dirserver.costs option;
  mirror_new_files : bool;
  secure_objects : bool;
      (** seal NASD-style capability tags into minted handles and make the
          storage nodes verify them (the µproxy stays outside the trust
          boundary; see {!Slice_nfs.Cap}) *)
  dir_sites : int;
  smallfile_sites : int;
  storage_sites : int;
      (** logical site counts per class — the rebalancing granularity,
          fixed for the volume's lifetime. 0 (the default) means one site
          per initial server; run more sites than servers to leave
          headroom for elastic scaling ({!add_dir_server} & co. plus
          [Slice_reconfig]). *)
  qos : qos_config option;  (** per-tenant QoS; [None] = FIFO everywhere *)
}

val default_config : config
(** 4 storage nodes × 8 disks, 1 directory server, 2 small-file servers,
    default µproxy parameters. *)

type t

val create : config -> t

val engine : t -> Slice_sim.Engine.t
val net : t -> Slice_net.Net.t
val virtual_addr : t -> Slice_net.Packet.addr
val root : Slice_nfs.Fh.t
(** The volume root handle clients start from. *)

val add_client : ?tenant:int -> t -> name:string -> Slice_storage.Host.t * Proxy.t
(** A fresh client host with its µproxy interposed. Under a QoS config,
    [tenant] labels every request from this host (binding its address in
    the registry and arming the tenant's admission bucket and, when
    configured, the p2c read probe); omitted, the client accounts to the
    system tenant, ungated.
    @raise Invalid_argument when [tenant] is out of range. *)

val qos_tenants : t -> Slice_qos.Tenant.t option
(** The shared tenant registry, when a QoS config is active — the
    per-tenant ops/bytes/latency/queue-delay readout. *)

val crash_storage : t -> int -> unit
(** Fail-stop storage node [i]: silences its service (cold cache on
    recovery) and downs its host at the net layer. Caution: the block
    coordinator lives on storage node 0 — crashing it stalls commits and
    map fetches for far longer than the other nodes. *)

val recover_storage : t -> int -> unit
val crash_smallfile : t -> int -> unit
val recover_smallfile : t -> int -> unit

val crash_dir : t -> int -> unit
(** Fail-stop directory server [i]; {!recover_dir} replays its journal
    (see {!Slice_dir.Dirserver.recover}). *)

val recover_dir : t -> int -> unit

val storage : t -> Slice_storage.Obsd.t array

val coordinator : t -> Slice_storage.Coordinator.t option

val replace_coordinator : t -> Slice_storage.Coordinator.t -> unit
(** Failover: hand the coordinator role to a successor instance (attached
    on a surviving storage host). Every consumer — µproxies, directory
    servers, the metrics gauges — resolves the endpoint at call time, so
    the swap is atomic in sim time. The deposed instance is left in place
    for its fencing lease to wedge it. *)

val dirs : t -> Slice_dir.Dirserver.t array
val smallfiles : t -> Slice_smallfile.Smallfile.t array
val dir_table : t -> Table.t
val smallfile_table : t -> Table.t option

val storage_table : t -> Table.t option
(** Logical storage site -> physical node binding shared with every
    µproxy; [None] when the ensemble has no storage class. *)

val config : t -> config

(** {2 Elastic scaling}

    New servers join owning no logical sites: the reconfiguration control
    plane ({!Slice_reconfig}) migrates sites onto them and republishes
    the routing tables. Each returns the new server's index. *)

val add_storage_node : t -> int
val add_dir_server : t -> int
val add_smallfile_server : t -> int

val client_proxies : t -> Proxy.t list
(** µproxies installed by {!add_client}, in creation order (the
    storage-only proxies of dataless small-file servers are excluded). *)

val meta_cache_totals : t -> Proxy.meta_cache_stats
(** Metadata fast-path counters summed over all client µproxies. *)

val dir_ops_served : t -> int
(** Name-space requests served, summed over the directory servers — the
    denominator of the metadata-offload exhibit. *)

val trace : t -> Slice_trace.Trace.t option
(** The ensemble-wide tracer, present when
    [proxy_params.trace_enabled] (or {!Params.trace_force}); shared by
    every µproxy and server. *)

val drain_traces : unit -> Slice_trace.Trace.t list
(** All tracers built since the last drain, in ensemble-creation order —
    the CLI's [--trace-json] dump collects the traces of exhibits that
    build their ensembles internally. *)

val metrics : t -> Slice_util.Metrics.t
(** A unified registry of gauges over every counter the ensemble's parts
    keep (net, µproxies, storage, coordinator, directory and small-file
    servers, tracer). [Slice_util.Metrics.dump] of the result is
    deterministic across same-seed runs. *)

val run : ?until:float -> t -> unit
(** Convenience: run the underlying engine. *)

module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Packet = Slice_net.Packet
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Routekey = Slice_nfs.Routekey
module Host = Slice_storage.Host
module Obsd = Slice_storage.Obsd
module Coordinator = Slice_storage.Coordinator
module Smallfile = Slice_smallfile.Smallfile
module Bcache = Slice_disk.Bcache
module Dirserver = Slice_dir.Dirserver
module Trace = Slice_trace.Trace
module Metrics = Slice_util.Metrics

(* Multi-tenant QoS: one shared tenant registry, a WFQ scheduler per
   server, token-bucket admission at tenant µproxies, and (optionally)
   power-of-two-choices mirrored reads. [system_tenant] is the tenant
   the infrastructure's own traffic accounts to — dataless small-file
   managers reach the storage array through their own storage-only
   µproxies, so their backend I/O arrives with the manager host as
   source and must not be charged to whichever tenant is id 0. *)
type qos_config = {
  tenants : Slice_qos.Tenant.spec array;
  wfq_depth : int;
  p2c_reads : bool;
  system_tenant : int;
}

type config = {
  seed : int;
  net_params : Net.params option;
  storage_nodes : int;
  disks_per_node : int;
  storage_cache : int;
  dir_servers : int;
  smallfile_servers : int;
  smallfile_cache : int;
  proxy_params : Params.t;
  dir_costs : Dirserver.costs option;
  mirror_new_files : bool;
  secure_objects : bool;
  dir_sites : int;
  smallfile_sites : int;
  storage_sites : int;
      (** logical site counts per class — the rebalancing granularity,
          fixed for the volume's lifetime (routing hashes are mod the
          site count). 0 means one site per initial server, the
          pre-reconfiguration identity mapping. Run more sites than
          servers to leave headroom for {!add_dir_server} & co. *)
  qos : qos_config option;
}

let default_config =
  {
    seed = 42;
    net_params = None;
    storage_nodes = 4;
    disks_per_node = 8;
    storage_cache = 256 * 1024 * 1024;
    dir_servers = 1;
    smallfile_servers = 2;
    smallfile_cache = 1024 * 1024 * 1024;
    proxy_params = Params.default;
    dir_costs = None;
    mirror_new_files = false;
    secure_objects = false;
    dir_sites = 0;
    smallfile_sites = 0;
    storage_sites = 0;
    qos = None;
  }

type qos_rt = { qr_cfg : qos_config; qr_reg : Slice_qos.Tenant.t }

type t = {
  cfg : config;
  eng : Engine.t;
  net_ : Net.t;
  trace_ : Trace.t option;
  vaddr : Packet.addr;
  mutable storage_ : Obsd.t array;
  mutable storage_addrs : Packet.addr array;
  st_tbl : Table.t option; (* logical storage site -> physical node *)
  mutable coord : Coordinator.t option; (* mutable: failover replaces it *)
  mutable dirs_ : Dirserver.t array;
  mutable smallfiles_ : Smallfile.t array;
  dir_tbl : Table.t;
  sf_tbl : Table.t option;
  mutable next_client : int;
  mutable client_proxies : Proxy.t list; (* newest first *)
  qos_ : qos_rt option;
}

(* Every server gets its own WFQ instance: fair shares are per-server
   (the contended resource is that server's CPU), the registry is
   shared. Dataless managers (directory and small-file servers) hold a
   dispatch slot across their backend round trips to network storage,
   so they run 4x the configured depth — enough concurrency to cover
   the backend bandwidth-delay product without loosening the storage
   nodes' own isolation. *)
let wfq_of ?(dataless = false) qos_ eng =
  match qos_ with
  | Some q ->
      let depth = q.qr_cfg.wfq_depth * if dataless then 4 else 1 in
      Some (Slice_qos.Wfq.create eng ~tenants:q.qr_reg ~depth ())
  | None -> None

let bind_system_host qos_ (host : Host.t) =
  match qos_ with
  | Some q ->
      Slice_qos.Tenant.bind_addr q.qr_reg ~addr:host.Host.addr
        ~tenant:q.qr_cfg.system_tenant
  | None -> ()

let root = Fh.root

let dir_policy (p : Params.t) =
  match p.Params.name_policy with
  | Params.Mkdir_switching -> Dirserver.Mkdir_switching
  | Params.Name_hashing -> Dirserver.Name_hashing

(* Zone handles for a dataless small-file server's backing objects: one
   per (server, cache-object) pair, striped across the storage array by
   the manager host's own storage-only µproxy. *)
let zone_fh ~secure ~sf_idx ~obj =
  let fh =
    {
      Fh.file_id = Int64.add 900_000_000_000L (Int64.of_int ((sf_idx * 16) + Int64.to_int obj));
      gen = 1;
      ftype = Fh.Reg;
      mirrored = false;
      attr_site = 0;
      cap = 0L;
    }
  in
  if secure then Slice_nfs.Cap.seal ~secret:"slice-ensemble-shared-secret" fh else fh

(* Remote backend: zone blocks live on the network storage array, reached
   through [rpc] + the host's µproxy (which stripes and, on commit,
   orchestrates through the coordinator). *)
let remote_backend eng rpc ~vaddr ~secure ~sf_idx ~stripe_unit =
  let chunked_io ~write ~obj ~block ~count k =
    (* split requests on stripe-chunk boundaries so each lands whole on
       one storage node *)
    let bs = Bcache.block_size in
    let remaining = ref count in
    let blk = ref block in
    let reqs = ref [] in
    while !remaining > 0 do
      let off = !blk * bs in
      let within = off mod stripe_unit in
      let room = (stripe_unit - within) / bs in
      let n = min !remaining (max 1 room) in
      reqs := (off, n * bs) :: !reqs;
      blk := !blk + n;
      remaining := !remaining - n
    done;
    let fh = zone_fh ~secure ~sf_idx ~obj in
    let jobs =
      List.map
        (fun (off, len) () ->
          let xid = Rpc.fresh_xid rpc in
          let call =
            if write then Nfs.Write (fh, Int64.of_int off, Nfs.Unstable, Nfs.Synthetic len)
            else Nfs.Read (fh, Int64.of_int off, len)
          in
          let payload = Codec.encode_call ~xid call in
          ignore
            (Rpc.call rpc ~timeout:2.0 ~dst:vaddr ~dport:2049
               ~extra_size:(Codec.extra_size_of_call call) payload))
        !reqs
    in
    Slice_sim.Fiber.join_all eng jobs;
    k ()
  in
  {
    Bcache.demand_read =
      (fun ~obj ~block ~count ~sequential:_ ->
        chunked_io ~write:false ~obj ~block ~count (fun () -> ()));
    readahead =
      (fun ~obj ~block ~count ->
        Engine.spawn eng (fun () ->
            chunked_io ~write:false ~obj ~block ~count (fun () -> ())));
    write_back =
      (fun ~obj ~block ~count ~done_ ->
        Engine.spawn eng (fun () -> chunked_io ~write:true ~obj ~block ~count done_));
    sync =
      (fun () ->
        (* zone commit: the µproxy orchestrates commitment across the
           storage sites via the coordinator *)
        Slice_sim.Fiber.join_all eng
          (List.map
             (fun obj () ->
               let fh = zone_fh ~secure ~sf_idx ~obj in
               let xid = Rpc.fresh_xid rpc in
               let payload = Codec.encode_call ~xid (Nfs.Commit (fh, 0L, 0)) in
               ignore (Rpc.call rpc ~timeout:2.0 ~dst:vaddr ~dport:2049 payload))
             [ 1L; 2L ]));
  }

(* Shared secret between the file managers and the storage nodes. Any
   value works — the µproxies never see it. *)
let cap_secret = "slice-ensemble-shared-secret"

(* Tracers of every ensemble built so far, for the CLI's --trace-json
   dump (exhibits build their ensembles internally and only hand back a
   report). Creation order is deterministic; drained by the dumper. *)
let trace_registry : Trace.t list ref = ref [] (* newest first *)

let drain_traces () =
  let l = List.rev !trace_registry in
  trace_registry := [];
  l

(* Logical sites [0..sites), dealt round-robin over [servers]: server [i]
   initially hosts every site congruent to it. With sites = servers this
   is the identity mapping — the pre-reconfiguration deployments. *)
let sites_owned_by ~servers ~sites i =
  List.filter (fun j -> j mod servers = i) (List.init sites (fun k -> k))

let coord_endpoint t _fh =
  match t.coord with Some c -> Some (Coordinator.addr c, Coordinator.port c) | None -> None

(* Physical storage nodes that may hold data of [fh], resolved through
   the current storage table (distinct: several logical sites may live
   on one node). *)
let data_sites_of t (fh : Fh.t) =
  match t.st_tbl with
  | None -> []
  | Some tbl ->
      let l = Table.nsites tbl in
      if fh.Fh.mirrored then begin
        let r0, r1 = Routekey.mirror_sites ~nsites:l fh in
        let a0 = Table.lookup tbl r0 and a1 = Table.lookup tbl r1 in
        if a0 = a1 then [ a0 ] else [ a0; a1 ]
      end
      else List.sort_uniq Int.compare (Array.to_list (fst (Table.snapshot tbl)))

let smallfile_site_of t (fh : Fh.t) =
  match t.sf_tbl with
  | Some tbl when t.cfg.proxy_params.Params.threshold > 0 ->
      Some (Table.lookup tbl (Routekey.file_site ~nsites:(Table.nsites tbl) fh))
  | _ -> None

let attach_dir t ~idx ~host ~also_owns =
  let l_dir = Table.nsites t.dir_tbl in
  let config =
    {
      Dirserver.logical_id = idx;
      nsites = l_dir;
      policy = dir_policy t.cfg.proxy_params;
      resolve = (fun logical -> Table.lookup t.dir_tbl (logical mod l_dir));
      peer_port = 2051;
      data_sites = data_sites_of t;
      smallfile_site = smallfile_site_of t;
      coordinator = coord_endpoint t;
      mirror_new_files = t.cfg.mirror_new_files;
      cap_secret = (if t.cfg.secure_objects then Some cap_secret else None);
      also_owns;
    }
  in
  bind_system_host t.qos_ host;
  Dirserver.attach host ?costs:t.cfg.dir_costs ?trace:t.trace_
    ?qos:(wfq_of ~dataless:true t.qos_ t.eng)
    config

let smallfile_host t idx =
  if Array.length t.storage_ > 0 then
    Host.create t.net_ ~name:(Printf.sprintf "smallfile%d" idx) ()
  else
    (* standalone (no storage array): local disks stand in *)
    Host.create t.net_ ~name:(Printf.sprintf "smallfile%d" idx) ~disks:t.cfg.disks_per_node ()

(* Small-file servers are dataless managers: their backends route through
   a storage-only µproxy on the manager's own host. *)
let attach_smallfile t ~idx ~host ~sites =
  let nsites = match t.sf_tbl with Some tbl -> Table.nsites tbl | None -> 1 in
  bind_system_host t.qos_ host;
  if Array.length t.storage_ > 0 then begin
    let storage_only = { t.cfg.proxy_params with Params.threshold = 0 } in
    let _px : Proxy.t =
      Proxy.install host ~params:storage_only ~seed:(t.cfg.seed + 100 + idx)
        {
          Proxy.virtual_addr = t.vaddr;
          dir_table = t.dir_tbl;
          smallfile_table = None;
          storage = t.st_tbl;
          coordinator = (fun () -> coord_endpoint t Fh.root);
        }
    in
    let rpc = Rpc.create t.net_ host.Host.addr ~port:1900 in
    let backend =
      remote_backend t.eng rpc ~vaddr:t.vaddr ~secure:t.cfg.secure_objects ~sf_idx:idx
        ~stripe_unit:t.cfg.proxy_params.Params.stripe_unit
    in
    Smallfile.attach host ~cache_bytes:t.cfg.smallfile_cache
      ~threshold:t.cfg.proxy_params.Params.threshold ~nsites ~sites ~backend ?trace:t.trace_
      ?qos:(wfq_of ~dataless:true t.qos_ t.eng) ()
  end
  else
    Smallfile.attach host ~cache_bytes:t.cfg.smallfile_cache
      ~threshold:t.cfg.proxy_params.Params.threshold ~nsites ~sites ?trace:t.trace_
      ?qos:(wfq_of ~dataless:true t.qos_ t.eng) ()

let create cfg =
  let eng = Engine.create () in
  let net_ = Net.create eng ?params:cfg.net_params ~seed:cfg.seed () in
  let trace_ =
    if cfg.proxy_params.Params.trace_enabled || !Params.trace_force then
      Some (Trace.create eng ~sample:cfg.proxy_params.Params.trace_sample ())
    else None
  in
  (match trace_ with Some tr -> trace_registry := tr :: !trace_registry | None -> ());
  let qos_ =
    match cfg.qos with
    | Some qc ->
        if qc.system_tenant < 0 || qc.system_tenant >= Array.length qc.tenants then
          invalid_arg "Ensemble.create: system_tenant out of range";
        Some { qr_cfg = qc; qr_reg = Slice_qos.Tenant.create qc.tenants }
    | None -> None
  in
  let vaddr = Net.add_node net_ ~name:"virtual-nfs" in
  let l_st = if cfg.storage_sites > 0 then cfg.storage_sites else cfg.storage_nodes in
  let l_dir = if cfg.dir_sites > 0 then cfg.dir_sites else cfg.dir_servers in
  let l_sf = if cfg.smallfile_sites > 0 then cfg.smallfile_sites else cfg.smallfile_servers in
  (* storage nodes: 733 MHz Xeon-class, 8-arm arrays *)
  let storage_hosts =
    Array.init cfg.storage_nodes (fun i ->
        Host.create net_ ~name:(Printf.sprintf "storage%d" i) ~cpu_scale:1.6
          ~disks:cfg.disks_per_node ())
  in
  Array.iter (bind_system_host qos_) storage_hosts;
  let storage_ =
    Array.mapi
      (fun i h ->
        Obsd.attach h ~cache_bytes:cfg.storage_cache
          ?cap_secret:(if cfg.secure_objects then Some cap_secret else None)
          ~sites:(sites_owned_by ~servers:cfg.storage_nodes ~sites:l_st i)
          ?trace:trace_ ?qos:(wfq_of qos_ eng) ())
      storage_hosts
  in
  let storage_addrs = Array.map (fun (h : Host.t) -> h.Host.addr) storage_hosts in
  let st_tbl =
    if cfg.storage_nodes > 0 then
      Some (Table.create (Array.init l_st (fun j -> storage_addrs.(j mod cfg.storage_nodes))))
    else None
  in
  let coord =
    if cfg.storage_nodes > 0 then
      (* the coordinator's block maps place chunks on logical sites; the
         µproxies bind them to nodes through the storage table *)
      Some
        (Coordinator.attach storage_hosts.(0)
           ~map_sites:(Array.init l_st (fun j -> j))
           ?trace:trace_ ())
    else None
  in
  (* directory servers: PC-class with a dedicated sequential log disk *)
  let dir_hosts =
    Array.init cfg.dir_servers (fun i ->
        Host.create net_ ~name:(Printf.sprintf "dir%d" i) ~disks:1 ())
  in
  let dir_tbl =
    Table.create (Array.init l_dir (fun j -> (dir_hosts.(j mod cfg.dir_servers)).Host.addr))
  in
  (* small-file servers *)
  let sf_hosts =
    Array.init cfg.smallfile_servers (fun i ->
        if cfg.storage_nodes > 0 then
          Host.create net_ ~name:(Printf.sprintf "smallfile%d" i) ()
        else
          (* standalone (no storage array): local disks stand in *)
          Host.create net_ ~name:(Printf.sprintf "smallfile%d" i) ~disks:cfg.disks_per_node ())
  in
  let sf_tbl =
    if cfg.smallfile_servers > 0 then
      Some
        (Table.create
           (Array.init l_sf (fun j -> (sf_hosts.(j mod cfg.smallfile_servers)).Host.addr)))
    else None
  in
  (* small-file servers attach last: their dataless backends route through
     their own storage-only µproxies *)
  let t =
    {
      cfg;
      eng;
      net_;
      trace_;
      vaddr;
      storage_;
      storage_addrs;
      st_tbl;
      coord;
      dirs_ = [||];
      smallfiles_ = [||];
      dir_tbl;
      sf_tbl;
      next_client = 0;
      client_proxies = [];
      qos_;
    }
  in
  t.dirs_ <-
    Array.init cfg.dir_servers (fun i ->
        attach_dir t ~idx:i ~host:dir_hosts.(i)
          ~also_owns:
            (List.filter (fun j -> j <> i)
               (sites_owned_by ~servers:cfg.dir_servers ~sites:l_dir i)));
  t.smallfiles_ <-
    Array.init cfg.smallfile_servers (fun i ->
        attach_smallfile t ~idx:i ~host:sf_hosts.(i)
          ~sites:(sites_owned_by ~servers:cfg.smallfile_servers ~sites:l_sf i));
  t

let engine t = t.eng
let net t = t.net_
let virtual_addr t = t.vaddr

(* Replica load probe for power-of-two-choices: logical storage site ->
   instantaneous backlog of the node currently serving it (resolved
   through the live table, so migrations keep the gauge honest). *)
let site_backlog t site =
  match t.st_tbl with
  | None -> 0.0
  | Some tbl ->
      let addr = Table.lookup tbl site in
      let n = Array.length t.storage_addrs in
      let rec find i =
        if i >= n then 0.0
        else if t.storage_addrs.(i) = addr then Obsd.queue_depth t.storage_.(i)
        else find (i + 1)
      in
      find 0

let add_client ?tenant t ~name:client_name =
  t.next_client <- t.next_client + 1;
  let host = Host.create t.net_ ~name:client_name () in
  (* Resolved at call time: a coordinator takeover swaps [t.coord] and
     every existing µproxy follows without being reinstalled. *)
  let coordinator () = coord_endpoint t root in
  let qos =
    match (t.qos_, tenant) with
    | None, _ -> None
    | Some q, None ->
        (* unlabelled client under a QoS config: accounts to the system
           tenant, no admission gate, no probing *)
        Slice_qos.Tenant.bind_addr q.qr_reg ~addr:host.Host.addr
          ~tenant:q.qr_cfg.system_tenant;
        Some
          {
            Proxy.q_tenant = q.qr_cfg.system_tenant;
            q_tenants = q.qr_reg;
            q_admit = None;
            q_read_probe = None;
          }
    | Some q, Some id ->
        if id < 0 || id >= Slice_qos.Tenant.count q.qr_reg then
          invalid_arg "Ensemble.add_client: tenant out of range";
        Slice_qos.Tenant.bind_addr q.qr_reg ~addr:host.Host.addr ~tenant:id;
        let spec = Slice_qos.Tenant.spec_of q.qr_reg id in
        let admit =
          if spec.Slice_qos.Tenant.admit_rate > 0.0 then
            Some
              (Slice_qos.Bucket.create ~rate:spec.Slice_qos.Tenant.admit_rate
                 ~burst:spec.Slice_qos.Tenant.admit_burst)
          else None
        in
        let probe = if q.qr_cfg.p2c_reads then Some (site_backlog t) else None in
        Some
          { Proxy.q_tenant = id; q_tenants = q.qr_reg; q_admit = admit; q_read_probe = probe }
  in
  let proxy =
    Proxy.install host ~params:t.cfg.proxy_params ~seed:(t.cfg.seed + t.next_client)
      ?trace:t.trace_ ?qos
      {
        Proxy.virtual_addr = t.vaddr;
        dir_table = t.dir_tbl;
        smallfile_table = t.sf_tbl;
        storage = t.st_tbl;
        coordinator;
      }
  in
  t.client_proxies <- proxy :: t.client_proxies;
  (host, proxy)

(* Fail-stop a server at both layers: the service stops answering and the
   net drops everything addressed to (or sent by) the host, so in-flight
   packets die exactly as on a powered-off machine. *)
let crash_storage t i =
  Obsd.crash t.storage_.(i);
  Net.set_node_up t.net_ t.storage_addrs.(i) false

let recover_storage t i =
  Obsd.recover t.storage_.(i);
  Net.set_node_up t.net_ t.storage_addrs.(i) true

let crash_smallfile t i =
  Smallfile.crash t.smallfiles_.(i);
  Net.set_node_up t.net_ (Smallfile.addr t.smallfiles_.(i)) false

let recover_smallfile t i =
  Smallfile.recover t.smallfiles_.(i);
  Net.set_node_up t.net_ (Smallfile.addr t.smallfiles_.(i)) true

let crash_dir t i =
  Dirserver.crash t.dirs_.(i);
  Net.set_node_up t.net_ (Dirserver.addr t.dirs_.(i)) false

let recover_dir t i =
  Net.set_node_up t.net_ (Dirserver.addr t.dirs_.(i)) true;
  Dirserver.recover t.dirs_.(i)

(* ---- elastic scaling ----
   New servers join owning no logical sites; the reconfiguration control
   plane ([Slice_reconfig]) migrates sites onto them and republishes the
   routing tables. Indices returned are stable (arrays only grow). *)

let add_storage_node t =
  let i = Array.length t.storage_ in
  let host =
    Host.create t.net_ ~name:(Printf.sprintf "storage%d" i) ~cpu_scale:1.6
      ~disks:t.cfg.disks_per_node ()
  in
  bind_system_host t.qos_ host;
  let s =
    Obsd.attach host ~cache_bytes:t.cfg.storage_cache
      ?cap_secret:(if t.cfg.secure_objects then Some cap_secret else None)
      ~sites:[] ?trace:t.trace_ ?qos:(wfq_of t.qos_ t.eng) ()
  in
  t.storage_ <- Array.append t.storage_ [| s |];
  t.storage_addrs <- Array.append t.storage_addrs [| host.Host.addr |];
  i

let add_dir_server t =
  let i = Array.length t.dirs_ in
  let host = Host.create t.net_ ~name:(Printf.sprintf "dir%d" i) ~disks:1 () in
  let d = attach_dir t ~idx:i ~host ~also_owns:[] in
  (* attach claims the server's namesake site; a late joiner starts
     empty-handed instead — sites arrive by migration *)
  Dirserver.disown_site d i;
  t.dirs_ <- Array.append t.dirs_ [| d |];
  i

let add_smallfile_server t =
  let i = Array.length t.smallfiles_ in
  let host = smallfile_host t i in
  let s = attach_smallfile t ~idx:i ~host ~sites:[] in
  t.smallfiles_ <- Array.append t.smallfiles_ [| s |];
  i

let storage t = t.storage_
let coordinator t = t.coord

let replace_coordinator t c =
  (* Failover: hand the coordinator role to a successor instance. All
     consumers resolve the endpoint through [coord_endpoint] at call
     time (µproxy targets are closures, Dirserver configs call
     [coordinator fh] per operation), so the swap is atomic in sim
     time — no endpoint re-registration, no missed messages. *)
  t.coord <- Some c
let dirs t = t.dirs_
let smallfiles t = t.smallfiles_
let dir_table t = t.dir_tbl
let smallfile_table t = t.sf_tbl
let storage_table t = t.st_tbl
let config t = t.cfg
let client_proxies t = List.rev t.client_proxies

let meta_cache_totals t =
  List.fold_left
    (fun (acc : Proxy.meta_cache_stats) px ->
      let s = Proxy.meta_cache_stats px in
      {
        Proxy.hits = acc.Proxy.hits + s.Proxy.hits;
        negative_hits = acc.Proxy.negative_hits + s.Proxy.negative_hits;
        misses = acc.Proxy.misses + s.Proxy.misses;
        stale = acc.Proxy.stale + s.Proxy.stale;
        invalidations = acc.Proxy.invalidations + s.Proxy.invalidations;
      })
    { Proxy.hits = 0; negative_hits = 0; misses = 0; stale = 0; invalidations = 0 }
    t.client_proxies

let dir_ops_served t = Array.fold_left (fun acc d -> acc + Dirserver.ops_served d) 0 t.dirs_
let run ?until t = Engine.run ?until t.eng

let qos_tenants t = match t.qos_ with Some q -> Some q.qr_reg | None -> None

let trace t = t.trace_

(* One registry over every counter the ensemble's parts already keep:
   gauges read the live values, so a single deterministic dump replaces
   per-exhibit hand-rolled reporting. *)
let metrics t =
  let m = Metrics.create () in
  let g name f = Metrics.gauge m name (fun () -> float_of_int (f ())) in
  let sum_proxies f () = List.fold_left (fun acc px -> acc + f px) 0 t.client_proxies in
  g "net.packets_sent" (fun () -> Net.packets_sent t.net_);
  g "net.bytes_sent" (fun () -> Net.bytes_sent t.net_);
  g "net.packets_dropped" (fun () -> Net.packets_dropped t.net_);
  g "net.fault_drops" (fun () -> Net.fault_drops t.net_);
  g "proxy.intercepted" (sum_proxies Proxy.packets_intercepted);
  g "proxy.replies" (sum_proxies Proxy.replies_processed);
  g "proxy.routed_storage" (sum_proxies Proxy.routed_to_storage);
  g "proxy.routed_smallfile" (sum_proxies Proxy.routed_to_smallfile);
  g "proxy.routed_dir" (sum_proxies Proxy.routed_to_dir);
  g "proxy.mkdir_redirects" (sum_proxies Proxy.mkdir_redirects);
  g "proxy.mirror_duplicates" (sum_proxies Proxy.mirror_duplicates);
  g "proxy.attr_patches" (sum_proxies Proxy.attr_patches);
  g "proxy.attr_writebacks" (sum_proxies Proxy.attr_writebacks);
  g "proxy.commits" (sum_proxies Proxy.commits_orchestrated);
  g "proxy.intents" (sum_proxies Proxy.intents_opened);
  g "proxy.stale_bounces" (sum_proxies Proxy.stale_bounces);
  g "proxy.map_fetches" (sum_proxies Proxy.map_fetches);
  g "proxy.expired_pending" (sum_proxies Proxy.expired_pending);
  g "proxy.meta_hits" (fun () -> (meta_cache_totals t).Proxy.hits);
  g "proxy.meta_negative_hits" (fun () -> (meta_cache_totals t).Proxy.negative_hits);
  g "proxy.meta_misses" (fun () -> (meta_cache_totals t).Proxy.misses);
  g "proxy.meta_stale" (fun () -> (meta_cache_totals t).Proxy.stale);
  g "proxy.meta_invalidations" (fun () -> (meta_cache_totals t).Proxy.invalidations);
  g "proxy.fence_invalidations" (sum_proxies Proxy.fence_invalidations);
  g "proxy.admission_deferrals" (sum_proxies Proxy.admission_deferrals);
  g "proxy.p2c_probes" (sum_proxies Proxy.p2c_probes);
  g "proxy.p2c_diverted" (sum_proxies Proxy.p2c_diverted);
  (match t.qos_ with Some q -> Slice_qos.Tenant.register_metrics q.qr_reg m | None -> ());
  g "storage.reads" (fun () -> Array.fold_left (fun a s -> a + Obsd.reads s) 0 t.storage_);
  g "storage.writes" (fun () -> Array.fold_left (fun a s -> a + Obsd.writes s) 0 t.storage_);
  g "storage.bytes_read" (fun () -> Array.fold_left (fun a s -> a + Obsd.bytes_read s) 0 t.storage_);
  g "storage.bytes_written"
    (fun () -> Array.fold_left (fun a s -> a + Obsd.bytes_written s) 0 t.storage_);
  g "storage.cache_hits" (fun () -> Array.fold_left (fun a s -> a + Obsd.cache_hits s) 0 t.storage_);
  g "storage.cache_misses"
    (fun () -> Array.fold_left (fun a s -> a + Obsd.cache_misses s) 0 t.storage_);
  (match t.coord with
  | Some _ ->
      (* resolve through [t.coord] at dump time: a takeover swaps the
         instance and the gauges must follow the successor *)
      let gc name f = g name (fun () -> match t.coord with Some c -> f c | None -> 0) in
      gc "coordinator.intents_logged" Coordinator.intents_logged;
      gc "coordinator.completions" Coordinator.completions;
      gc "coordinator.redos" Coordinator.redos;
      gc "coordinator.pending_intents" Coordinator.pending_intents;
      gc "coordinator.fence_bounces" Coordinator.fence_bounces
  | None -> ());
  g "dir.ops" (fun () -> dir_ops_served t);
  g "dir.peer_ops" (fun () -> Array.fold_left (fun a d -> a + Dirserver.peer_ops_served d) 0 t.dirs_);
  g "dir.cross_site_ops"
    (fun () -> Array.fold_left (fun a d -> a + Dirserver.cross_site_ops d) 0 t.dirs_);
  g "dir.log_bytes" (fun () -> Array.fold_left (fun a d -> a + Dirserver.log_bytes d) 0 t.dirs_);
  g "dir.fence_bounces"
    (fun () -> Array.fold_left (fun a d -> a + Dirserver.fence_bounces d) 0 t.dirs_);
  g "smallfile.fence_bounces"
    (fun () -> Array.fold_left (fun a s -> a + Smallfile.fence_bounces s) 0 t.smallfiles_);
  g "smallfile.reads"
    (fun () -> Array.fold_left (fun a s -> a + Smallfile.reads s) 0 t.smallfiles_);
  g "smallfile.writes"
    (fun () -> Array.fold_left (fun a s -> a + Smallfile.writes s) 0 t.smallfiles_);
  g "smallfile.cache_hits"
    (fun () -> Array.fold_left (fun a s -> a + Smallfile.cache_hits s) 0 t.smallfiles_);
  g "smallfile.cache_misses"
    (fun () -> Array.fold_left (fun a s -> a + Smallfile.cache_misses s) 0 t.smallfiles_);
  (match t.trace_ with
  | Some tr ->
      g "trace.spans" (fun () -> Trace.count tr);
      g "trace.dropped" (fun () -> Trace.dropped tr)
  | None -> ());
  m

(** The Slice µproxy: an interposed request-routing packet filter.

    Installed on a client's network path (here: the client host's egress
    and ingress filter chain, the paper's "configured below the IP stack
    on each client node"), it virtualizes a single NFS server address:

    - requests to the virtual server are intercepted, partially decoded
      (request type + up to four argument fields), classified, and
      redirected by rewriting the destination address — with incremental
      checksum repair — to a storage node, small-file server, or directory
      server chosen by the configured routing policies;
    - bulk I/O on striped files additionally has its offset field
      rewritten to the node-local stripe offset; mirrored files have
      writes duplicated to both replicas and reads alternated between
      them;
    - replies are matched to soft-state pending records by XID, their
      source rewritten back to the virtual address, and their post-op
      attribute blocks patched from the µproxy's attribute cache (which
      it keeps current with I/O traffic and writes back to the directory
      servers via setattr on commit, eviction, or a periodic timer);
    - NFS commit on a multi-site file is absorbed and orchestrated through
      the block-service coordinator (write commitment, intention
      completion), with the reply synthesized to the client;
    - [lookup]/[getattr]/[access] are answered directly at the proxy when
      its metadata cache holds a live-leased entry (names — including
      negative entries — and attributes), with write-through invalidation
      on every mutating op it routes and a short TTL bounding what an
      unseen mutation by another client can cost (NFS close-to-open
      semantics);
    - readdir over a name-hashed volume is iterated across all directory
      sites by cookie translation;
    - a server bouncing a request with [SLICE_MISDIRECTED] triggers a lazy
      refresh of the µproxy's private routing-table snapshots.

    The µproxy keeps no state shared across clients; losing its soft
    state only costs client RPC retransmissions. Per-phase CPU is both
    charged to the client host and accumulated for the Table 3
    breakdown. *)

type t

type targets = {
  virtual_addr : Slice_net.Packet.addr;
  dir_table : Table.t;
  smallfile_table : Table.t option;
  storage : Table.t option;
      (** logical storage site -> physical node; [None] when the ensemble
          runs without a storage class *)
  coordinator : unit -> (Slice_net.Packet.addr * int) option;
      (** block-service coordinator endpoint, resolved at call time so a
          coordinator takeover rebinds it without reinstalling proxies *)
}

type qos = {
  q_tenant : int;  (** tenant id of this µproxy's client *)
  q_tenants : Slice_qos.Tenant.t;  (** shared registry accounted into *)
  q_admit : Slice_qos.Bucket.t option;
      (** token-bucket admission gate; over-rate requests are deferred at
          this edge (never dropped) until a token accrues *)
  q_read_probe : (int -> float) option;
      (** instantaneous backlog of a logical storage site; its presence
          turns mirrored-read routing into power-of-two-choices *)
}
(** Per-µproxy QoS wiring (normally built by [Slice_core.Ensemble]). *)

val install :
  Slice_storage.Host.t ->
  ?params:Params.t ->
  ?seed:int ->
  ?trace:Slice_trace.Trace.t ->
  ?qos:qos ->
  targets ->
  t
(** Interpose on all traffic of this host. [seed] drives the
    mkdir-switching coin. With [trace], every intercepted NFS call opens
    a request-root span; proxy CPU bookings, outgoing RPCs and remote
    server work attach under it. With [qos], requests pass the admission
    gate before routing, replies account ops/bytes/latency to the
    tenant, and mirrored reads go to the less-loaded replica. *)

val params : t -> Params.t
val refresh_tables : t -> unit
(** Reload routing-table snapshots from the authoritative tables (done
    automatically on a misdirected-request bounce). *)

val discard_soft_state : t -> unit
(** Failure injection: drop pending records, cached attributes and block
    maps — clients must recover by retransmission. *)

val writeback_dirty_attrs : t -> unit
(** Push all dirty cached attributes to the directory servers now
    (runs asynchronously in fibers). *)

(** {2 Statistics} *)

type phase_cpu = {
  interception : float;
  decode : float;
  rewrite : float;
  soft_state : float;
}

val cpu_breakdown : t -> phase_cpu
(** Accumulated CPU seconds per µproxy phase (Table 3). *)

val packets_intercepted : t -> int
val replies_processed : t -> int

val reply_status : bytes -> int
(** Peek the NFS status word of an encoded reply without decoding it
    (-1 when the packet is too short). On the per-packet path — kept
    allocation-free (A1). *)

val op_of_proc : int -> string
(** Constant op-name string for an NFS procedure number (no allocation —
    the strings are literals). *)

val routed_to_storage : t -> int
val routed_to_smallfile : t -> int
val routed_to_dir : t -> int
val dir_site_histogram : t -> int array
(** Requests per logical directory site — the load-balance measure behind
    Figures 3 and 4. *)

val mkdir_redirects : t -> int
val mirror_duplicates : t -> int
val attr_patches : t -> int
val attr_writebacks : t -> int
val commits_orchestrated : t -> int
val intents_opened : t -> int
val stale_bounces : t -> int
val map_fetches : t -> int

val expired_pending : t -> int
(** Pending records reaped by the background sweep because no reply (and
    no client retransmission, which refreshes the record) arrived within
    [Params.pending_expiry] — the leak the sweep exists to stop. Zero in
    a healthy run: entries normally leave via the reply path. *)

val pending_size : t -> int
(** Live pending records (soft state keyed by XID). Must be 0 once the
    workload has quiesced — anything else is a leaked record. *)

type meta_cache_stats = {
  hits : int;  (** positive lookup/getattr/access answered at the proxy *)
  negative_hits : int;  (** lookups answered NOENT from a negative entry *)
  misses : int;  (** fast-path attempts forwarded for lack of an entry *)
  stale : int;  (** fast-path attempts forwarded because a lease lapsed *)
  invalidations : int;  (** mutating ops that invalidated cached entries *)
}

val meta_cache_stats : t -> meta_cache_stats
(** Metadata fast-path counters. Requests the fast path answers never
    reach a directory server — the offload the cache exists to provide. *)

val name_cache_entries : t -> int
val map_cache_entries : t -> int
(** Current entry counts of the name and block-map caches (both bounded
    by [Params.name_cache_capacity] / [Params.map_cache_capacity]). *)

val fence_invalidations : t -> int
(** Times a routing-table fencing-epoch advance flushed the metadata
    caches (a manager takeover deposed the incarnation the entries came
    from). Clean entries are dropped, dirty attributes keep their bytes
    (lease revoked, written back to the successor) so no acked update is
    lost. *)

val admission_deferrals : t -> int
(** Requests the QoS token bucket held back (each wait counts once). *)

val p2c_probes : t -> int
(** Mirrored reads routed by power-of-two-choices. *)

val p2c_diverted : t -> int
(** Mirrored reads the load probe steered away from the chunk-parity
    default replica. *)

val pending_tenant : t -> xid:int -> int option
(** Test hook: tenant stamped on the live pending record for [xid]. *)

(** µproxy policy and cost parameters.

    The CPU costs are calibrated from the paper's Table 3: at 6250
    packets/second a client-based µproxy spent 0.7 % of a 500 MHz CPU
    intercepting packets (1.12 µs each), 4.1 % decoding (6.56 µs — mostly
    skipping variable-length RPC/NFS header fields, ≈20 XDR items at
    ~0.33 µs), 0.5 % redirecting/rewriting (0.8 µs) and 0.8 % managing
    soft state (1.28 µs). *)

type name_policy = Mkdir_switching | Name_hashing
type io_policy = Static_striping | Block_map

type t = {
  threshold : int;
      (** small-file threshold offset in bytes; I/O below it routes to a
          small-file server (64 KB in the paper; 0 disables the
          small-file class) *)
  stripe_unit : int;  (** bulk-I/O striping granularity (32 KB) *)
  name_policy : name_policy;
  mkdir_p : float;
      (** mkdir-switching redirection probability p: a new directory is
          placed on a different site from its parent with probability p *)
  io_policy : io_policy;
  intercept_cost : float;  (** CPU seconds per intercepted packet *)
  decode_cost_per_item : float;  (** CPU seconds per XDR item examined *)
  rewrite_cost : float;  (** CPU per field-rewrite + checksum adjust *)
  softstate_cost : float;  (** CPU per pending-record / cache update *)
  mirror_dup_cost_per_byte : float;
      (** client-side cost to emit the duplicate packet of a mirrored
          write (buffer requeue + checksum share; ~1/5 of the full write
          path per byte, calibrated to Table 2's 38.9 -> 32.2 MB/s) *)
  attr_cache_capacity : int;  (** attribute cache entries *)
  attr_writeback_interval : float;
      (** period of the background push of dirty cached attributes to the
          directory servers (0 = rely on commit/evict-driven writeback) *)
  meta_cache_enabled : bool;
      (** master switch for the µproxy metadata fast path: answer
          [lookup]/[getattr]/[access] from proxy-cached state instead of
          forwarding to a directory server *)
  meta_cache_ttl : float;
      (** lease duration (seconds of simulated time) granted to each
          cached name/attr entry; bounds cross-client staleness. 0
          disables the fast path entirely (equivalent to
          [meta_cache_enabled = false]) *)
  name_cache_capacity : int;
      (** entries in the [(dir file-id, name)] -> handle cache, counting
          negative entries *)
  map_cache_capacity : int;
      (** entries in the per-file block-map placement cache *)
  pending_capacity : int;
      (** pending records (and xid-index headroom) preallocated per
          µproxy; the pool doubles on overflow, so this is a steady-state
          sizing hint, not a limit *)
  pending_sweep_interval : float;
      (** period of the sweep that expires abandoned pending records —
          soft state for requests whose reply will never arrive because
          the client gave up retransmitting (0 disables the sweep). The
          sweep self-arms only while pending records exist, so idle
          µproxies schedule nothing. *)
  pending_expiry : float;
      (** age at which an unanswered pending record is expired by the
          sweep; must exceed the client's retransmit interval (a live
          client refreshes its record with every retransmission) *)
  rpc_port : int;  (** port of the µproxy's own endpoint on the client *)
  trace_enabled : bool;
      (** record per-request span trees (default false: the hot path
          stays allocation-free — every span operation is a no-op) *)
  trace_sample : float;
      (** fraction of request roots recorded when tracing is on, drawn
          from a deterministic per-tracer stream (default 1.0) *)
}

val default : t

val trace_force : bool ref
(** When true, every {!Ensemble.create} builds a tracer regardless of
    [trace_enabled]. Set once by the CLI ([--trace-json]) before any
    simulation exists; never toggle mid-run. *)

(** Compact routing tables mapping logical server sites to physical
    servers (Section 3.3.1). "Multiple logical sites may map to the same
    physical server, leaving flexibility for reconfiguration. The routing
    tables constitute soft state; the mapping is determined externally, so
    the µproxy never modifies the tables."

    This is the authoritative, externally-managed table; each µproxy holds
    a private {!snapshot} (a hint) that may go stale and is refreshed
    lazily when a server bounces a misdirected request. *)

type t

val create : Slice_net.Packet.addr array -> t
(** [create map] with [map.(logical) = physical]. *)

val nsites : t -> int
(** Number of logical sites (fixed at creation: the rebalancing
    granularity). *)

val lookup : t -> int -> Slice_net.Packet.addr
val version : t -> int

val update : t -> Slice_net.Packet.addr array -> unit
(** Reconfiguration: rebind logical sites to physical servers, bumping
    the version so stale µproxy snapshots refresh on their next bounce.
    Publishing a mapping identical to the current one is a no-op (no
    version bump): idempotent control-plane commits must not cause
    refresh storms. Must keep the same number of logical sites — the
    site count is the rebalancing granularity, fixed at creation because
    the routing hashes are [mod nsites] (growing it would rehome every
    entry); deployments run more logical sites than servers instead.
    @raise Invalid_argument on a length change. *)

val snapshot : t -> Slice_net.Packet.addr array * int
(** Copy of the mapping plus its version, for a µproxy's private hint. *)

val epoch : t -> int
(** Fencing epoch (starts at 1). Unlike the version — which moves on any
    rebinding — the epoch only advances on a failover takeover, and marks
    every lease granted under a smaller epoch as deposed. *)

val bump_epoch : t -> unit
(** Advance the fencing epoch after a takeover claims a failed server's
    sites. Also bumps the version (even if the mapping is unchanged) so
    stale µproxy snapshots refresh — and, seeing the epoch move, discard
    metadata cached from the dead incarnation. *)

type name_policy = Mkdir_switching | Name_hashing
type io_policy = Static_striping | Block_map

type t = {
  threshold : int;
  stripe_unit : int;
  name_policy : name_policy;
  mkdir_p : float;
  io_policy : io_policy;
  intercept_cost : float;
  decode_cost_per_item : float;
  rewrite_cost : float;
  softstate_cost : float;
  mirror_dup_cost_per_byte : float;
  attr_cache_capacity : int;
  attr_writeback_interval : float;
  meta_cache_enabled : bool;
  meta_cache_ttl : float;
  name_cache_capacity : int;
  map_cache_capacity : int;
  pending_capacity : int;
  pending_sweep_interval : float;
  pending_expiry : float;
  rpc_port : int;
  trace_enabled : bool;
  trace_sample : float;
}

let default =
  {
    threshold = 65536;
    stripe_unit = 32768;
    name_policy = Mkdir_switching;
    mkdir_p = 0.25;
    io_policy = Static_striping;
    intercept_cost = 1.12e-6;
    decode_cost_per_item = 0.33e-6;
    rewrite_cost = 0.8e-6;
    softstate_cost = 1.28e-6;
    mirror_dup_cost_per_byte = 5.2e-9;
    attr_cache_capacity = 4096;
    attr_writeback_interval = 0.0;
    meta_cache_enabled = true;
    meta_cache_ttl = 2.0;
    name_cache_capacity = 4096;
    map_cache_capacity = 1024;
    pending_capacity = 1024;
    pending_sweep_interval = 1.0;
    pending_expiry = 10.0;
    rpc_port = 3001;
    trace_enabled = false;
    trace_sample = 1.0;
  }

(* CLI override (slice_sim --trace-json): set once at process start,
   before any simulation is built, never mutated mid-run — so per-run
   determinism is unaffected. Consulted by Ensemble.create in addition to
   the per-exhibit [trace_enabled] knob. *)
let trace_force = ref false

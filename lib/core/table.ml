type t = {
  mutable map : Slice_net.Packet.addr array;
  mutable version : int;
  mutable epoch : int;
}

let create map =
  if Array.length map = 0 then invalid_arg "Table.create: empty";
  { map = Array.copy map; version = 1; epoch = 1 }

let nsites t = Array.length t.map

let lookup t i =
  if i < 0 || i >= Array.length t.map then invalid_arg "Table.lookup: bad site";
  t.map.(i)

let version t = t.version

(* The logical site count is fixed at creation by design, not accident:
   it is the rebalancing granularity.  Reconfiguration moves load by
   rebinding logical sites to different physical servers; growing the
   site count would change every routing hash (name_site/file_site are
   [mod nsites]) and thus the home of every existing entry.  Deployments
   therefore create more logical sites than servers and scale by
   remapping (Section 3.3.1: "multiple logical sites may map to the same
   physical server, leaving flexibility for reconfiguration"). *)
let update t map =
  if Array.length map <> Array.length t.map then
    invalid_arg "Table.update: logical site count is fixed";
  (* Idempotent commits are a no-op: re-publishing an unchanged mapping
     must not bump the version, or every µproxy bounce would trigger a
     spurious refresh storm after each control-plane pass. *)
  if map <> t.map then begin
    t.map <- Array.copy map;
    t.version <- t.version + 1
  end

let snapshot t = (Array.copy t.map, t.version)

let epoch t = t.epoch

(* Fencing: a takeover that rebinds a failed server's sites advances the
   epoch so (a) every server granted a lease under the old epoch is
   provably deposed and (b) µproxies treat the bump as a hard
   invalidation, not just a routing refresh.  The version bumps too —
   even when the mapping itself is unchanged (e.g. a coordinator
   takeover) — so stale snapshots notice on their next bounce. *)
let bump_epoch t =
  t.epoch <- t.epoch + 1;
  t.version <- t.version + 1

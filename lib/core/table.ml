type t = { mutable map : Slice_net.Packet.addr array; mutable version : int }

let create map =
  if Array.length map = 0 then invalid_arg "Table.create: empty";
  { map = Array.copy map; version = 1 }

let nsites t = Array.length t.map

let lookup t i =
  if i < 0 || i >= Array.length t.map then invalid_arg "Table.lookup: bad site";
  t.map.(i)

let version t = t.version

(* The logical site count is fixed at creation by design, not accident:
   it is the rebalancing granularity.  Reconfiguration moves load by
   rebinding logical sites to different physical servers; growing the
   site count would change every routing hash (name_site/file_site are
   [mod nsites]) and thus the home of every existing entry.  Deployments
   therefore create more logical sites than servers and scale by
   remapping (Section 3.3.1: "multiple logical sites may map to the same
   physical server, leaving flexibility for reconfiguration"). *)
let update t map =
  if Array.length map <> Array.length t.map then
    invalid_arg "Table.update: logical site count is fixed";
  (* Idempotent commits are a no-op: re-publishing an unchanged mapping
     must not bump the version, or every µproxy bounce would trigger a
     spurious refresh storm after each control-plane pass. *)
  if map <> t.map then begin
    t.map <- Array.copy map;
    t.version <- t.version + 1
  end

let snapshot t = (Array.copy t.map, t.version)

(** MD5 message digest, implemented from RFC 1321.

    The paper's µproxy routes name-space requests by an MD5 fingerprint of
    the parent file handle and name component ("we determined empirically
    that MD5 yields a combination of balanced distribution and low cost
    superior to competing hash functions"). We implement MD5 in-repo so the
    routing behaviour matches the paper without external dependencies.

    This is used for request routing and content fingerprints, not for
    security; MD5's known cryptographic weaknesses are irrelevant here. *)

val digest : string -> string
(** [digest msg] is the raw 16-byte MD5 digest of [msg]. *)

val digest_bytes : bytes -> pos:int -> len:int -> string
(** Digest of a subrange of a byte buffer. *)

val to_hex : string -> string
(** Lowercase hex rendering of a raw digest. *)

val hex : string -> string
(** [hex msg] is [to_hex (digest msg)]. *)

val fold64 : string -> int64
(** First 8 digest bytes folded to a little-endian [int64]; the routing
    fingerprint used by the µproxy's hash-based policies. *)

val bucket : string -> int -> int
(** [bucket msg n] maps [msg] uniformly onto [\[0, n)] via [fold64]. *)

val bucket_bytes : bytes -> pos:int -> len:int -> int -> int
(** [bucket_bytes buf ~pos ~len n] is [bucket] of [buf.[pos, pos+len)]
    without materializing the key: the digest runs over the buffer in
    place and allocates nothing, so routing hashes can be computed
    directly from a packet's payload bytes on the µproxy hot path.
    Produces exactly the same bucket as {!bucket} on the same bytes. *)

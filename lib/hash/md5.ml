(* RFC 1321. The sine-derived constants are computed at module init:
   T[i] = floor(2^32 * abs(sin(i+1))), which avoids transcribing 64 magic
   numbers and is bit-exact because sin is correctly rounded well within
   the 32 bits we keep.

   The core runs on plain OCaml ints masked to 32 bits rather than boxed
   [int32]s: the µproxy fingerprints a routing key per name-space packet,
   so the digest sits on the allocation-free hot path. All scratch state
   (the 16-word message schedule, the padded tail block, and the running
   digest words) is preallocated at module init and reused, the round
   loop avoids tuples and refs, and the tail length is written as single
   bytes — digesting an in-buffer key allocates nothing. The simulator is
   single-domain, so the shared scratch needs no locking. *)

let m32 = 0xFFFFFFFF

let t_const =
  Array.init 64 (fun i ->
      let v = Float.abs (sin (float_of_int (i + 1))) *. 4294967296.0 in
      Int64.to_int (Int64.of_float v) land m32)

let shifts =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

let rotl32 x s = ((x lsl s) lor (x lsr (32 - s))) land m32

type state = { mutable a : int; mutable b : int; mutable c : int; mutable d : int }

(* Reused scratch: one digest runs at a time (single-domain simulator).
   [st] holds the running digest, [w] the per-block working words. *)
let st = { a = 0; b = 0; c = 0; d = 0 }
let w = { a = 0; b = 0; c = 0; d = 0 }
let msg_words = Array.make 16 0
let tail_buf = Bytes.make 128 '\000'

let process_block block off =
  for j = 0 to 15 do
    msg_words.(j) <- Int32.to_int (Bytes.get_int32_le block (off + (4 * j))) land m32
  done;
  w.a <- st.a;
  w.b <- st.b;
  w.c <- st.c;
  w.d <- st.d;
  for i = 0 to 63 do
    let f =
      if i < 16 then (w.b land w.c) lor (lnot w.b land w.d)
      else if i < 32 then (w.d land w.b) lor (lnot w.d land w.c)
      else if i < 48 then w.b lxor w.c lxor w.d
      else w.c lxor ((w.b lor (lnot w.d land m32)) land m32)
    in
    let g =
      if i < 16 then i
      else if i < 32 then ((5 * i) + 1) mod 16
      else if i < 48 then ((3 * i) + 5) mod 16
      else 7 * i mod 16
    in
    let sum = (f + w.a + t_const.(i) + msg_words.(g)) land m32 in
    let nb = (w.b + rotl32 sum shifts.(i)) land m32 in
    let na = w.d in
    w.d <- w.c;
    w.c <- w.b;
    w.b <- nb;
    w.a <- na
  done;
  st.a <- (st.a + w.a) land m32;
  st.b <- (st.b + w.b) land m32;
  st.c <- (st.c + w.c) land m32;
  st.d <- (st.d + w.d) land m32

(* Full MD5 over buf.[pos, pos+len), leaving the digest words in [st].
   Allocation-free: the tail block reuses [tail_buf] and the 64-bit
   little-endian bit length is stored byte by byte (no boxed int64). *)
let run buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then invalid_arg "Md5.digest_bytes";
  st.a <- 0x67452301;
  st.b <- 0xefcdab89;
  st.c <- 0x98badcfe;
  st.d <- 0x10325476;
  let full_blocks = len / 64 in
  for i = 0 to full_blocks - 1 do
    process_block buf (pos + (64 * i))
  done;
  (* Tail: remaining bytes + 0x80 + zero pad + 64-bit little-endian bit length. *)
  let rem = len - (64 * full_blocks) in
  let tail_len = if rem + 9 <= 64 then 64 else 128 in
  Bytes.fill tail_buf 0 tail_len '\000';
  Bytes.blit buf (pos + (64 * full_blocks)) tail_buf 0 rem;
  Bytes.set tail_buf rem '\x80';
  let bits = len * 8 in
  for j = 0 to 7 do
    Bytes.set_uint8 tail_buf (tail_len - 8 + j) ((bits lsr (8 * j)) land 0xFF)
  done;
  process_block tail_buf 0;
  if tail_len = 128 then process_block tail_buf 64

let digest_bytes buf ~pos ~len =
  run buf ~pos ~len;
  let out = Bytes.create 16 in
  Bytes.set_int32_le out 0 (Int32.of_int st.a);
  Bytes.set_int32_le out 4 (Int32.of_int st.b);
  Bytes.set_int32_le out 8 (Int32.of_int st.c);
  Bytes.set_int32_le out 12 (Int32.of_int st.d);
  Bytes.unsafe_to_string out

let digest msg = digest_bytes (Bytes.unsafe_of_string msg) ~pos:0 ~len:(String.length msg)

let to_hex raw =
  let b = Buffer.create 32 in
  String.iter (fun ch -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code ch))) raw;
  Buffer.contents b

let hex msg = to_hex (digest msg)

let fold64 msg =
  run (Bytes.unsafe_of_string msg) ~pos:0 ~len:(String.length msg);
  Int64.logor (Int64.shift_left (Int64.of_int st.b) 32) (Int64.of_int st.a)

(* [fold64] is (b << 32) | a of the digest state, and the bucket is
   ((fold64 >>> 1) mod n). The shifted value is b·2^31 + (a >>> 1), which
   overflows a 63-bit int for b ≥ 2^31, so the remainder is taken
   modularly over the halves: ((b mod n)·(2^31 mod n) + (a>>>1) mod n)
   mod n — exact for every digest and every positive n below 2^31. *)
let bucket_of_state n =
  let hi = st.b mod n * ((1 lsl 31) mod n) mod n in
  (hi + (st.a lsr 1 mod n)) mod n

let bucket msg n =
  if n <= 0 then invalid_arg "Md5.bucket: n must be positive";
  run (Bytes.unsafe_of_string msg) ~pos:0 ~len:(String.length msg);
  bucket_of_state n

let bucket_bytes buf ~pos ~len n =
  if n <= 0 then invalid_arg "Md5.bucket_bytes: n must be positive";
  run buf ~pos ~len;
  bucket_of_state n

(* slice_sim: command-line driver for the Slice reproduction.

   Each subcommand regenerates one exhibit from the paper's evaluation
   (Section 5) at a configurable scale. `all` runs everything. *)

module E = Slice_experiments
open Cmdliner

let scale_arg ~default =
  let doc =
    "Scale factor for the experiment (file sizes, op counts, file sets). 1.0 reproduces the \
     paper's full workload sizes; smaller values preserve the shapes and run much faster."
  in
  Arg.(value & opt float default & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let trace_json_arg =
  let doc =
    "Force request tracing on for every simulation this command runs and write the collected \
     span dumps (a JSON array, one entry per simulation in creation order) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

(* Set the force flag once, before any engine exists, so tracing cannot
   perturb determinism mid-run; collect whatever ensembles were built. *)
let with_trace_dump trace_json f =
  (match trace_json with Some _ -> Slice.Params.trace_force := true | None -> ());
  f ();
  match trace_json with
  | None -> ()
  | Some path ->
      let dumps =
        List.map Slice_trace.Trace.to_json (Slice.Ensemble.drain_traces ())
      in
      write_file path (Slice_util.Json.to_string (Arr dumps));
      Printf.printf "wrote %s (%d trace dump%s)\n%!" path (List.length dumps)
        (if List.length dumps = 1 then "" else "s")

let run_table2 scale = E.Report.print (E.Table2.report ~scale ())
let run_table3 scale = E.Report.print (E.Table3.report ~scale ())
let run_fig3 scale = E.Report.print (E.Fig3.report ~scale ())
let run_fig4 scale = E.Report.print (E.Fig4.report ~scale ())

let run_fig56 ~fig5 ~fig6 scale points =
  let t = E.Fig5.compute ~scale ~points_per_curve:points () in
  if fig5 then E.Report.print (E.Fig5.report_fig5 t);
  if fig6 then E.Report.print (E.Fig5.report_fig6 t)

let points_arg =
  Arg.(value & opt int 4 & info [ "points" ] ~docv:"N" ~doc:"Load points per curve.")

let cmd name ~default_scale ~doc f =
  let run scale trace_json = with_trace_dump trace_json (fun () -> f scale) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ scale_arg ~default:default_scale $ trace_json_arg)

let table2_cmd = cmd "table2" ~default_scale:0.08 ~doc:"Table 2: bulk I/O bandwidth." run_table2

let table3_cmd =
  cmd "table3" ~default_scale:0.05 ~doc:"Table 3: uproxy CPU cost breakdown." run_table3

let fig3_cmd = cmd "fig3" ~default_scale:0.04 ~doc:"Figure 3: directory service scaling." run_fig3

let fig4_cmd =
  cmd "fig4" ~default_scale:0.03 ~doc:"Figure 4: mkdir-switching affinity sweep." run_fig4

let fig5_cmd =
  Cmd.v
    (Cmd.info "fig5" ~doc:"Figure 5: SPECsfs97 delivered throughput.")
    Term.(
      const (fun s p tj -> with_trace_dump tj (fun () -> run_fig56 ~fig5:true ~fig6:false s p))
      $ scale_arg ~default:0.01 $ points_arg $ trace_json_arg)

let fig6_cmd =
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figure 6: SPECsfs97 latency vs throughput.")
    Term.(
      const (fun s p tj -> with_trace_dump tj (fun () -> run_fig56 ~fig5:false ~fig6:true s p))
      $ scale_arg ~default:0.01 $ points_arg $ trace_json_arg)

let run_chaos () = E.Report.print (E.Chaos.report ())

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos" ~doc:"Fault injection: workloads under loss and node crashes.")
    Term.(const (fun tj -> with_trace_dump tj run_chaos) $ trace_json_arg)

let run_offload scale = E.Report.print (E.Offload.report ~scale ())

let offload_cmd =
  cmd "offload" ~default_scale:0.25
    ~doc:"Metadata offload: dir-server requests absorbed by the uproxy cache." run_offload

let run_trace scale json =
  let t = E.Tracing.compute ~scale () in
  E.Report.print (E.Tracing.report_of t);
  match json with
  | None -> ()
  | Some path ->
      write_file path (Slice_util.Json.to_string (E.Tracing.json_of t));
      Printf.printf "wrote %s\n%!" path

let trace_cmd =
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full trace report (hop rows, metrics registry, span dump) to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Per-op-class latency by hop (proxy/network/server/disk) on the SPECsfs mix.")
    Term.(const run_trace $ scale_arg ~default:0.25 $ json)

let run_scale scale json =
  let t = E.Scale.compute ~scale () in
  E.Report.print (E.Scale.report_of t);
  match json with
  | None -> ()
  | Some path ->
      write_file path (Slice_util.Json.to_string (E.Scale.json_of t));
      Printf.printf "wrote %s\n%!" path

let scale_cmd =
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the scale-out report (phase throughput/latency, migration counts, post-run \
             audit, reconfig metrics) to $(docv).")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Online reconfiguration: add a server of each class under live load.")
    Term.(
      const (fun s j tj -> with_trace_dump tj (fun () -> run_scale s j))
      $ scale_arg ~default:0.2 $ json $ trace_json_arg)

let run_failover scale json =
  let t = E.Failover.compute ~scale () in
  E.Report.print (E.Failover.report_of t);
  match json with
  | None -> ()
  | Some path ->
      write_file path (Slice_util.Json.to_string (E.Failover.json_of t));
      Printf.printf "wrote %s\n%!" path

let failover_cmd =
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the failover report (per-phase throughput/latency, takeover MTTR, zombie \
             fence probes, post-run audit, failover metrics) to $(docv).")
  in
  Cmd.v
    (Cmd.info "failover"
       ~doc:"Dataless failover: kill a manager of each class; hot standbys take over.")
    Term.(
      const (fun s j tj -> with_trace_dump tj (fun () -> run_failover s j))
      $ scale_arg ~default:1.0 $ json $ trace_json_arg)

let run_storm scale json =
  let t = E.Storm.compute ~scale () in
  E.Report.print (E.Storm.report_of t);
  match json with
  | None -> ()
  | Some path ->
      write_file path (Slice_util.Json.to_string (E.Storm.json_of t));
      Printf.printf "wrote %s\n%!" path

let storm_cmd =
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the storm report (per-tenant throughput/latency for the QoS-off and QoS-on \
             runs, admission/p2c counters, ensemble metrics) to $(docv).")
  in
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Multi-tenant traffic storm: web + flood + scan tenants, FIFO vs per-tenant QoS (WFQ, \
          admission, p2c mirrored reads).")
    Term.(
      const (fun s j tj -> with_trace_dump tj (fun () -> run_storm s j))
      $ scale_arg ~default:1.0 $ json $ trace_json_arg)

(* Every exhibit in one table: its subcommand plus what `all` runs for it
   ([None] = covered by another row — fig6 rides with fig5). Both the
   CLI's command list and `all` derive from here, so a new exhibit shows
   up in both by construction. *)
let exhibits : (unit Cmd.t * (fast:float -> fast_points:int -> unit) option) list =
  [
    (table2_cmd, Some (fun ~fast ~fast_points:_ -> run_table2 (0.08 *. fast)));
    (table3_cmd, Some (fun ~fast:_ ~fast_points:_ -> run_table3 0.05));
    (fig3_cmd, Some (fun ~fast ~fast_points:_ -> run_fig3 (0.04 *. fast)));
    (fig4_cmd, Some (fun ~fast ~fast_points:_ -> run_fig4 (0.03 *. fast)));
    ( fig5_cmd,
      Some
        (fun ~fast ~fast_points ->
          run_fig56 ~fig5:true ~fig6:true (0.01 *. fast) fast_points) );
    (fig6_cmd, None);
    (offload_cmd, Some (fun ~fast ~fast_points:_ -> run_offload (0.25 *. fast)));
    (trace_cmd, Some (fun ~fast ~fast_points:_ -> run_trace (0.25 *. fast) None));
    (scale_cmd, Some (fun ~fast ~fast_points:_ -> run_scale (0.2 *. fast) None));
    (failover_cmd, Some (fun ~fast:_ ~fast_points:_ -> run_failover 1.0 None));
    (storm_cmd, Some (fun ~fast ~fast_points:_ -> run_storm (0.5 *. fast) None));
    (chaos_cmd, Some (fun ~fast:_ ~fast_points:_ -> run_chaos ()));
  ]

let all_cmd =
  let run fast trace_json =
    with_trace_dump trace_json (fun () ->
        let f = if fast then 0.5 else 1.0 in
        let points = if fast then 3 else 4 in
        List.iter
          (fun (_, action) ->
            match action with
            | Some g -> g ~fast:f ~fast_points:points
            | None -> ())
          exhibits)
  in
  let fast = Arg.(value & flag & info [ "fast" ] ~doc:"Halve the default scales.") in
  Cmd.v (Cmd.info "all" ~doc:"Every table and figure.") Term.(const run $ fast $ trace_json_arg)

let main_cmd =
  let doc = "reproduce the evaluation of Slice (Interposed Request Routing, OSDI 2000)" in
  Cmd.group
    (Cmd.info "slice_sim" ~version:"1.0" ~doc)
    (List.map fst exhibits @ [ all_cmd ])

let () = exit (Cmd.eval main_cmd)

(* slicelint — repo-specific static analysis (see DESIGN.md §10, §14).

   Usage: slicelint [--json] [--json-out FILE] [--fixtures]
                    [--cmt-dir DIR] ROOT...
   Exits 1 when any unsuppressed finding exists. [--fixtures] swaps in
   the fixture rule-scoping profile; it exists to regenerate the golden
   files under test/lint_fixtures/golden/. [--cmt-dir DIR] enables the
   typed interprocedural tier (A1/F1) over the .cmt files dune left
   under DIR — without it only the parsetree rules run. *)

let () =
  let json = ref false and json_out = ref None and roots = ref [] in
  let cmt_dir = ref None in
  let config = ref Slice_lint.Config.repo in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--fixtures" :: rest ->
        config := Slice_lint.Config.fixtures;
        parse rest
    | "--json-out" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--cmt-dir" :: dir :: rest ->
        cmt_dir := Some dir;
        parse rest
    | ("--json-out" | "--cmt-dir") :: [] ->
        prerr_endline "slicelint: --json-out and --cmt-dir need an argument";
        exit 2
    | root :: rest ->
        roots := root :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline
      "usage: slicelint [--json] [--json-out FILE] [--fixtures] [--cmt-dir DIR] ROOT...";
    exit 2
  end;
  let report = Slice_lint.Driver.scan ?cmt_dir:!cmt_dir !config roots in
  (match !json_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Slice_util.Json.to_string (Slice_lint.Driver.to_json report));
      output_char oc '\n';
      close_out oc);
  if !json then
    print_endline (Slice_util.Json.to_string (Slice_lint.Driver.to_json report))
  else print_string (Slice_lint.Driver.render_human report);
  exit (if Slice_lint.Driver.errors report > 0 then 1 else 0)

(* slicelint — repo-specific static analysis (see DESIGN.md §10).

   Usage: slicelint [--json] [--json-out FILE] [--fixtures] ROOT...
   Exits 1 when any unsuppressed finding exists. [--fixtures] swaps in
   the fixture rule-scoping profile; it exists to regenerate the golden
   files under test/lint_fixtures/golden/. *)

let () =
  let json = ref false and json_out = ref None and roots = ref [] in
  let config = ref Slice_lint.Config.repo in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--fixtures" :: rest ->
        config := Slice_lint.Config.fixtures;
        parse rest
    | "--json-out" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--json-out" :: [] ->
        prerr_endline "slicelint: --json-out needs a file argument";
        exit 2
    | root :: rest ->
        roots := root :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline "usage: slicelint [--json] [--json-out FILE] [--fixtures] ROOT...";
    exit 2
  end;
  let report = Slice_lint.Driver.scan !config roots in
  (match !json_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Slice_util.Json.to_string (Slice_lint.Driver.to_json report));
      output_char oc '\n';
      close_out oc);
  if !json then
    print_endline (Slice_util.Json.to_string (Slice_lint.Driver.to_json report))
  else print_string (Slice_lint.Driver.render_human report);
  exit (if Slice_lint.Driver.errors report > 0 then 1 else 0)

open Helpers
module Xdr = Slice_xdr.Xdr

let roundtrip_primitives () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.u32 e 0;
  Xdr.Enc.u32 e 0xFFFFFFFF;
  Xdr.Enc.u64 e 0x1122334455667788L;
  Xdr.Enc.bool e true;
  Xdr.Enc.bool e false;
  Xdr.Enc.i32 e (-5l);
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  check_int "u32 zero" 0 (Xdr.Dec.u32 d);
  check_int "u32 max" 0xFFFFFFFF (Xdr.Dec.u32 d);
  check_bool "u64" true (Xdr.Dec.u64 d = 0x1122334455667788L);
  check_bool "bool t" true (Xdr.Dec.bool d);
  check_bool "bool f" false (Xdr.Dec.bool d);
  check_bool "i32" true (Xdr.Dec.i32 d = -5l);
  check_int "consumed all" 0 (Xdr.Dec.remaining d)

let opaque_padding () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.opaque e "abc" (* 4 len + 3 data + 1 pad *);
  check_int "padded length" 8 (Xdr.Enc.length e);
  Xdr.Enc.opaque e "abcd" (* no pad *);
  check_int "aligned length" 16 (Xdr.Enc.length e);
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  check_string "first" "abc" (Xdr.Dec.opaque d);
  check_string "second" "abcd" (Xdr.Dec.opaque d)

let opaque_fixed () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.opaque_fixed e "xy";
  check_int "padded to 4" 4 (Xdr.Enc.length e);
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  check_string "fixed" "xy" (Xdr.Dec.opaque_fixed d 2);
  check_int "pad skipped" 0 (Xdr.Dec.remaining d)

let truncation_raises () =
  let d = Xdr.Dec.of_bytes (Bytes.create 3) in
  Alcotest.check_raises "u32 truncated" Xdr.Truncated (fun () -> ignore (Xdr.Dec.u32 d));
  let e = Xdr.Enc.create () in
  Xdr.Enc.u32 e 100 (* length prefix promising 100 bytes *);
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  Alcotest.check_raises "opaque truncated" Xdr.Truncated (fun () -> ignore (Xdr.Dec.opaque d))

let skip_and_pos () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.u32 e 1;
  Xdr.Enc.u32 e 2;
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  Xdr.Dec.skip d 4;
  check_int "pos" 4 (Xdr.Dec.pos d);
  check_int "second" 2 (Xdr.Dec.u32 d)

let items_counted () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.u32 e 1;
  Xdr.Enc.u64 e 2L;
  Xdr.Enc.str e "hello";
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  ignore (Xdr.Dec.u32 d);
  ignore (Xdr.Dec.u64 d);
  ignore (Xdr.Dec.str d);
  (* str = length word + fixed body = 2 items *)
  check_int "items" 4 (Xdr.Dec.items_read d)

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> `U32 (n land 0xFFFFFFFF)) int;
        map (fun n -> `U64 n) (map Int64.of_int int);
        map (fun s -> `Str s) (string_size (int_range 0 50));
        map (fun b -> `Bool b) bool;
      ])

let roundtrip_sequences =
  qtest "sequences roundtrip" QCheck2.Gen.(list gen_value) (fun vs ->
      let e = Xdr.Enc.create () in
      List.iter
        (function
          | `U32 n -> Xdr.Enc.u32 e n
          | `U64 n -> Xdr.Enc.u64 e n
          | `Str s -> Xdr.Enc.str e s
          | `Bool b -> Xdr.Enc.bool e b)
        vs;
      let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
      List.for_all
        (function
          | `U32 n -> Xdr.Dec.u32 d = n
          | `U64 n -> Xdr.Dec.u64 d = n
          | `Str s -> Xdr.Dec.str d = s
          | `Bool b -> Xdr.Dec.bool d = b)
        vs
      && Xdr.Dec.remaining d = 0)

let alignment_invariant =
  qtest "encoded length is 4-aligned" QCheck2.Gen.(string_size (int_range 0 64)) (fun s ->
      let e = Xdr.Enc.create () in
      Xdr.Enc.opaque e s;
      Xdr.Enc.length e mod 4 = 0)

let span_peeks_match_materializing () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.opaque e "hello-world";
  Xdr.Enc.opaque_fixed e "abcd";
  Xdr.Enc.u32 e 7;
  let buf = Xdr.Enc.to_bytes e in
  let d = Xdr.Dec.of_bytes buf in
  Xdr.Dec.opaque_span d;
  check_string "var span bytes" "hello-world"
    (Bytes.sub_string buf (Xdr.Dec.span_off d) (Xdr.Dec.span_len d));
  Xdr.Dec.opaque_fixed_span d 4;
  check_string "fixed span bytes" "abcd"
    (Bytes.sub_string buf (Xdr.Dec.span_off d) (Xdr.Dec.span_len d));
  check_int "trailing word still readable" 7 (Xdr.Dec.u32 d);
  (* item accounting matches the materializing reads *)
  let d2 = Xdr.Dec.of_bytes buf in
  ignore (Xdr.Dec.opaque d2);
  ignore (Xdr.Dec.opaque_fixed d2 4);
  ignore (Xdr.Dec.u32 d2);
  let d3 = Xdr.Dec.of_bytes buf in
  Xdr.Dec.opaque_span d3;
  Xdr.Dec.opaque_fixed_span d3 4;
  ignore (Xdr.Dec.u32 d3);
  check_int "span items = materializing items" (Xdr.Dec.items_read d2) (Xdr.Dec.items_read d3)

let reset_reuses_decoder () =
  let mk s =
    let e = Xdr.Enc.create () in
    Xdr.Enc.opaque e s;
    Xdr.Enc.to_bytes e
  in
  let b1 = mk "first" and b2 = mk "second-buffer" in
  let d = Xdr.Dec.of_bytes b1 in
  Xdr.Dec.opaque_span d;
  Xdr.Dec.reset d b2 ~pos:0 ~len:(Bytes.length b2);
  check_int "pos cleared" 0 (Xdr.Dec.pos d);
  check_int "items cleared" 0 (Xdr.Dec.items_read d);
  Xdr.Dec.opaque_span d;
  check_string "rebinds to the new buffer" "second-buffer"
    (Bytes.sub_string b2 (Xdr.Dec.span_off d) (Xdr.Dec.span_len d))

(* Span reads must bounds-check before touching memory: any random
   buffer either yields an in-bounds span or raises Truncated — never an
   out-of-bounds access (which would surface as Invalid_argument). *)
let span_bounds_fuzz =
  qtest "span peeks never read out of bounds"
    QCheck2.Gen.(pair (string_size (int_range 0 64)) (int_range (-4) 72))
    (fun (raw, n) ->
      let buf = Bytes.of_string raw in
      let len = Bytes.length buf in
      let in_bounds d = Xdr.Dec.span_off d >= 0 && Xdr.Dec.span_off d + Xdr.Dec.span_len d <= len in
      let var_ok =
        let d = Xdr.Dec.of_bytes buf in
        match Xdr.Dec.opaque_span d with
        | () -> in_bounds d
        | exception Xdr.Truncated -> true
      in
      let fixed_ok =
        let d = Xdr.Dec.of_bytes buf in
        match Xdr.Dec.opaque_fixed_span d n with
        | () -> n >= 0 && in_bounds d
        | exception Xdr.Truncated -> true
      in
      var_ok && fixed_ok)

let u64_int_matches_u64 =
  qtest "u64_int agrees with u64 on simulation-range values"
    QCheck2.Gen.(int_range 0 max_int)
    (fun v ->
      let e = Xdr.Enc.create () in
      Xdr.Enc.u64 e (Int64.of_int v);
      let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
      Xdr.Dec.u64_int d = v)

let suite =
  [
    ("roundtrip primitives", `Quick, roundtrip_primitives);
    ("opaque padding", `Quick, opaque_padding);
    ("opaque fixed", `Quick, opaque_fixed);
    ("truncation raises", `Quick, truncation_raises);
    ("skip and pos", `Quick, skip_and_pos);
    ("items counted", `Quick, items_counted);
    ("span peeks match materializing", `Quick, span_peeks_match_materializing);
    ("decoder reset reuse", `Quick, reset_reuses_decoder);
    roundtrip_sequences;
    alignment_invariant;
    span_bounds_fuzz;
    u64_int_matches_u64;
  ]

open Helpers
module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Packet = Slice_net.Packet
module Rpc = Slice_net.Rpc
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Host = Slice_storage.Host
module Obsd = Slice_storage.Obsd
module Client = Slice_workload.Client
module Ensemble = Slice.Ensemble
module Proxy = Slice.Proxy
module Table = Slice.Table
module Chaos = Slice_experiments.Chaos

let mk_net ?params ?(seed = 11) () =
  let eng = Engine.create () in
  let net = Net.create eng ?params ~seed () in
  (eng, net)

let pkt ~src ~dst = Packet.make ~src ~dst ~sport:1 ~dport:9 (Bytes.create 100)

(* ---- net-level fault schedule ---- *)

let link_fault_drops () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let got = ref 0 in
  Net.listen net a ~port:9 (fun _ -> incr got);
  Net.listen net b ~port:9 (fun _ -> incr got);
  Net.add_link_fault net ~src:a ~dst:b ~drop:1.0 ();
  Net.send net (pkt ~src:a ~dst:b);
  Net.send net (pkt ~src:b ~dst:a);
  Engine.run eng;
  (* a->b black-holed; the reverse direction unaffected *)
  check_int "only reverse delivered" 1 !got;
  check_int "link drop counted" 1 (Net.fault_link_drops net);
  check_int "summed in fault_drops" 1 (Net.fault_drops net)

let link_fault_duplicates () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let got = ref 0 in
  Net.listen net b ~port:9 (fun _ -> incr got);
  Net.add_link_fault net ~src:a ~dst:b ~dup:1.0 ();
  Net.send net (pkt ~src:a ~dst:b);
  Engine.run eng;
  check_int "both copies arrive" 2 !got;
  check_int "duplicate counted" 1 (Net.fault_duplicates net)

let link_fault_delay () =
  let base = ref 0.0 in
  let slow = ref 0.0 in
  let once ~delay cell =
    let eng, net = mk_net () in
    let a = Net.add_node net ~name:"a" in
    let b = Net.add_node net ~name:"b" in
    Net.listen net b ~port:9 (fun _ -> cell := Engine.now eng);
    if delay > 0.0 then Net.add_link_fault net ~src:a ~dst:b ~delay ();
    Net.send net (pkt ~src:a ~dst:b);
    Engine.run eng
  in
  once ~delay:0.0 base;
  once ~delay:0.005 slow;
  check_float_eps 1e-9 "delay added verbatim" (!base +. 0.005) !slow

let partition_drops_and_heals () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let c = Net.add_node net ~name:"c" in
  let got = ref [] in
  List.iter (fun n -> Net.listen net n ~port:9 (fun p -> got := p.Packet.src :: !got)) [ a; b; c ];
  (* a | {b, c} *)
  Net.set_partition net (fun n -> if n = a then 0 else 1);
  Net.send net (pkt ~src:a ~dst:b);
  Net.send net (pkt ~src:b ~dst:c);
  Engine.run eng;
  check_bool "same-side traffic flows" true (!got = [ b ]);
  check_int "cross traffic dropped" 1 (Net.fault_partition_drops net);
  Net.clear_partition net;
  Net.send net (pkt ~src:a ~dst:b);
  Engine.run eng;
  check_bool "healed" true (List.mem a !got)

let crash_window_silences_node () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let got = ref 0 in
  Net.listen net b ~port:9 (fun _ -> incr got);
  Net.schedule_crash net b ~at:1.0 ~until:2.0;
  Engine.schedule_at eng 1.5 (fun () ->
      check_bool "down inside the window" false (Net.node_up net b);
      Net.send net (pkt ~src:a ~dst:b));
  Engine.schedule_at eng 2.5 (fun () ->
      check_bool "up after the window" true (Net.node_up net b);
      Net.send net (pkt ~src:a ~dst:b));
  Engine.run eng;
  check_int "only post-recovery packet arrives" 1 !got;
  check_int "crash-window loss counted" 1 (Net.fault_node_drops net);
  Alcotest.check_raises "empty window rejected"
    (Invalid_argument "Net.schedule_crash: until <= at") (fun () ->
      Net.schedule_crash net b ~at:3.0 ~until:3.0)

let crashed_source_transmits_nothing () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let got = ref 0 in
  Net.listen net b ~port:9 (fun _ -> incr got);
  Net.set_node_up net a false;
  Net.send net (pkt ~src:a ~dst:b);
  Engine.run eng;
  check_int "nothing delivered" 0 !got;
  check_int "counted as node drop" 1 (Net.fault_node_drops net)

let faultfree_runs_identical () =
  (* the fault layer must not perturb the PRNG stream of a run that
     configures no faults: same seed + drop_prob, same delivery times *)
  let once ~faults =
    let eng, net =
      mk_net ~params:{ Net.default_params with drop_prob = 0.2 } ~seed:3 ()
    in
    let a = Net.add_node net ~name:"a" in
    let b = Net.add_node net ~name:"b" in
    if faults then Net.add_link_fault net ~src:b ~dst:a ~drop:1.0 ();
    let log = ref [] in
    Net.listen net b ~port:9 (fun _ -> log := Engine.now eng :: !log);
    for _ = 1 to 50 do
      Net.send net (pkt ~src:a ~dst:b)
    done;
    Engine.run eng;
    !log
  in
  check_bool "iid loss pattern unchanged by unrelated fault rules" true
    (once ~faults:false = once ~faults:true)

(* ---- RPC exponential backoff ---- *)

let backoff_schedule () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let rpc = Rpc.create net a ~port:50 in
  run_on eng (fun () ->
      (* no listener on b: every attempt times out. Waits are
         0.1, 0.2, 0.4, 0.8 seconds, each with at most +10% jitter. *)
      let t0 = Engine.now eng in
      let payload = Bytes.create 8 in
      Bytes.set_int32_be payload 0 (Int32.of_int (Rpc.fresh_xid rpc));
      (try
         ignore (Rpc.call rpc ~timeout:0.1 ~retries:3 ~dst:b ~dport:9 payload);
         Alcotest.fail "expected Rpc.Timeout"
       with Rpc.Timeout -> ());
      let elapsed = Engine.now eng -. t0 in
      check_bool "at least the base schedule" true (elapsed >= 1.5 -. 1e-9);
      check_bool "at most +10% jitter" true (elapsed <= 1.65 +. 1e-9);
      check_int "three retransmissions" 3 (Rpc.retransmissions rpc);
      check_int "one exhausted call" 1 (Rpc.timeouts rpc);
      check_int "no pending entry leaked" 0 (Rpc.pending_calls rpc);
      let s = Rpc.endpoint_stats rpc b in
      check_bool "per-endpoint counters" true
        (s.Rpc.calls = 1 && s.Rpc.retransmits = 3 && s.Rpc.timeouts = 1);
      let z = Rpc.endpoint_stats rpc 999 in
      check_bool "unknown endpoint all zero" true
        (z.Rpc.calls = 0 && z.Rpc.retransmits = 0 && z.Rpc.timeouts = 0))

let backoff_cap () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let rpc = Rpc.create net a ~port:50 in
  run_on eng (fun () ->
      (* cap at max_timeout: 0.5, 1.0, 2.0, 2.0, 2.0 -> base total 7.5 *)
      let t0 = Engine.now eng in
      let payload = Bytes.create 8 in
      Bytes.set_int32_be payload 0 (Int32.of_int (Rpc.fresh_xid rpc));
      (try ignore (Rpc.call rpc ~timeout:0.5 ~retries:4 ~dst:b ~dport:9 payload)
       with Rpc.Timeout -> ());
      let elapsed = Engine.now eng -. t0 in
      check_bool "capped schedule lower bound" true (elapsed >= 7.5 -. 1e-9);
      check_bool "capped schedule upper bound" true (elapsed <= 8.25 +. 1e-9))

(* ---- µproxy pending sweep ---- *)

let dead_node_expires_pending () =
  let ens =
    Ensemble.create
      { Ensemble.default_config with storage_nodes = 2; smallfile_servers = 0 }
  in
  let eng = Ensemble.engine ens in
  let net = Ensemble.net ens in
  let host, proxy = Ensemble.add_client ens ~name:"giveup" in
  let rpc = Rpc.create net host.Host.addr ~port:5000 in
  run_on eng (fun () ->
      (* both storage nodes dead: a bulk read can never be answered *)
      Ensemble.crash_storage ens 0;
      Ensemble.crash_storage ens 1;
      let fh =
        { Fh.file_id = 42L; gen = 1; ftype = Fh.Reg; mirrored = false; attr_site = 0; cap = 0L }
      in
      let xid = Rpc.fresh_xid rpc in
      let payload = Codec.encode_call ~xid (Nfs.Read (fh, 0L, 1000)) in
      (try
         ignore
           (Rpc.call rpc ~timeout:0.05 ~retries:2 ~dst:(Ensemble.virtual_addr ens) ~dport:2049
              payload);
         Alcotest.fail "expected Rpc.Timeout"
       with Rpc.Timeout -> ());
      (* the client gave up; its record is stranded in the µproxy *)
      check_int "record stranded" 1 (Proxy.pending_size proxy);
      let expiry = (Proxy.params proxy).Slice.Params.pending_expiry in
      Engine.sleep eng (expiry +. 3.0);
      check_int "sweep reaped it" 0 (Proxy.pending_size proxy);
      check_bool "reap counted" true (Proxy.expired_pending proxy >= 1));
  (* the sweep disarms once pending is empty, so the run above terminated *)
  check_int "rpc side clean too" 0 (Rpc.pending_calls rpc)

(* ---- mirrored writes must not mask a replica failure ---- *)

let mirror_failure_not_masked () =
  let eng = Engine.create () in
  let net = Net.create eng ~seed:4 () in
  let vaddr = Net.add_node net ~name:"virtual" in
  let dirnode = Net.add_node net ~name:"dir-unused" in
  let s0 = Host.create net ~name:"s0" ~disks:1 () in
  let s1 = Host.create net ~name:"s1" ~disks:1 () in
  (* replica 0 demands sealed capability handles; replica 1 does not: an
     unsealed handle fails on exactly one replica of the pair *)
  let _o0 = Obsd.attach s0 ~cap_secret:"secret" () in
  let _o1 = Obsd.attach s1 ~sites:[ 1 ] () in
  let ch = Host.create net ~name:"client" () in
  let _proxy =
    Proxy.install ch
      {
        Proxy.virtual_addr = vaddr;
        dir_table = Table.create [| dirnode |];
        smallfile_table = None;
        storage = Some (Table.create [| s0.Host.addr; s1.Host.addr |]);
        coordinator = (fun () -> None);
      }
  in
  let cl = Client.create ch ~server:vaddr () in
  run_on eng (fun () ->
      let fh =
        { Fh.file_id = 7L; gen = 1; ftype = Fh.Reg; mirrored = true; attr_site = 0; cap = 0L }
      in
      (* one replica acks OK, the other NFS3ERR_PERM: the client must see
         the failure, whichever replica answers last *)
      expect_err "worst mirror status forwarded" Nfs.ERR_PERM
        (Client.write_at cl fh ~off:0L ~data:(Nfs.Data "payload") ()))

(* ---- chaos: real workloads under loss and crash ---- *)

let clean_run_is_quiet () =
  let r = Chaos.run_untar ~cfg:{ Chaos.default_config with drop_prob = 0.0; crash_node = None } () in
  check_int "no errors" 0 r.Chaos.errors;
  check_int "no retransmissions" 0 r.Chaos.retransmissions;
  check_int "no expiries" 0 r.Chaos.expired_pending;
  check_int "no fault drops" 0 r.Chaos.fault_drops;
  check_int "pending empty at quiesce" 0 r.Chaos.pending_at_quiesce;
  check_bool "work actually ran" true (r.Chaos.ops > 1000)

let untar_under_loss () =
  List.iter
    (fun drop ->
      let r =
        Chaos.run_untar ~cfg:{ Chaos.default_config with drop_prob = drop; crash_node = None } ()
      in
      let tag = Printf.sprintf "%.0f%% loss:" (drop *. 100.0) in
      check_int (tag ^ " zero lost operations") 0 r.Chaos.errors;
      check_int (tag ^ " pending empty at quiesce") 0 r.Chaos.pending_at_quiesce;
      check_bool (tag ^ " loss actually bit") true (r.Chaos.packets_dropped > 0);
      check_bool (tag ^ " recovery by retransmission") true (r.Chaos.retransmissions > 0))
    [ 0.01; 0.03; 0.05 ]

let untar_with_node_crash () =
  (* untar traffic is all name operations: the dir server is the victim *)
  let r = Chaos.run_untar ~cfg:{ Chaos.default_config with crash_node = Some (Chaos.Dir 0) } () in
  check_int "zero lost operations" 0 r.Chaos.errors;
  check_int "pending empty at quiesce" 0 r.Chaos.pending_at_quiesce;
  check_bool "crash actually bit" true (r.Chaos.fault_drops > 0);
  check_bool "recovery by retransmission" true (r.Chaos.retransmissions > 0)

let specsfs_with_node_crash () =
  let r = Chaos.run_specsfs () in
  check_int "zero lost operations" 0 r.Chaos.errors;
  check_int "pending empty at quiesce" 0 r.Chaos.pending_at_quiesce;
  check_bool "work actually ran" true (r.Chaos.ops > 100);
  check_bool "crash actually bit" true (r.Chaos.fault_drops > 0);
  check_bool "recovery by retransmission" true (r.Chaos.retransmissions > 0)

(* regression: a coordinator redo whose fan-out times out used to retire
   the intent anyway after the first probe — a participant behind a
   partition never saw its redo. The redo must re-arm the probe and only
   retire once every participant acks. *)
let coordinator_redo_waits_for_partition_heal () =
  let module Coordinator = Slice_storage.Coordinator in
  let module Ctrl = Slice_storage.Ctrl in
  let eng = Engine.create () in
  let net = Net.create eng () in
  let hosts =
    Array.init 2 (fun i ->
        Host.create net ~name:(Printf.sprintf "cs%d" i) ~cpu_scale:1.6 ~disks:8 ())
  in
  let obsds = Array.map (fun h -> Obsd.attach h ()) hosts in
  let coord =
    Coordinator.attach hosts.(0) ~probe_timeout:0.2
      ~map_sites:(Array.map (fun (h : Host.t) -> h.Host.addr) hosts)
      ()
  in
  let client = Host.create net ~name:"cl" () in
  let rpc = Rpc.create net client.Host.addr ~port:1000 in
  let victim = hosts.(1).Host.addr in
  let fh =
    { Fh.file_id = 42L; gen = 1; ftype = Fh.Reg; mirrored = false; attr_site = 0; cap = 0L }
  in
  run_on eng (fun () ->
      (* seed the object on the victim, then cut it off *)
      let xid = Rpc.fresh_xid rpc in
      ignore
        (Rpc.call rpc ~dst:victim ~dport:2049
           (Codec.encode_call ~xid (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "zz"))));
      Net.set_partition net (fun n -> if n = victim then 1 else 0);
      (* log a remove intent whose completion never arrives *)
      let xid = Rpc.fresh_xid rpc in
      (match
         snd
           (Ctrl.decode_reply
              (Rpc.call rpc ~timeout:2.0 ~dst:(Coordinator.addr coord)
                 ~dport:(Coordinator.port coord)
                 (Ctrl.encode_msg ~xid
                    (Ctrl.Intent
                       { op_id = 99L; kind = Ctrl.K_remove; fh; participants = [ victim ] }))))
       with
      | Ctrl.Ack -> ()
      | _ -> Alcotest.fail "intent not acked");
      Engine.sleep eng 1.0;
      (* the first probe fired into the partition: it must keep the intent *)
      check_bool "redo attempted" true (Coordinator.redos coord >= 1);
      check_int "intent survives failed redo" 1 (Coordinator.pending_intents coord);
      check_bool "victim untouched behind partition" true
        (Obsd.object_size obsds.(1) fh <> None);
      Net.clear_partition net;
      Engine.sleep eng 6.0;
      check_int "intent retired after heal" 0 (Coordinator.pending_intents coord);
      check_bool "remove reached the participant" true (Obsd.object_size obsds.(1) fh = None))

(* ---- failover: coordinator crash mid-2PC ---- *)

(* regression: the block coordinator used to be pinned to storage node 0
   — crashing that node stalled every commit until the node itself came
   back. A peer storage host must be able to adopt the victim's
   intention log and finish the in-flight 2PC, and adopting the same log
   twice (a standby crashing mid-replay and starting over) must not
   resurrect retired intents. *)
let coordinator_takeover_completes_2pc () =
  let module Coordinator = Slice_storage.Coordinator in
  let module Ctrl = Slice_storage.Ctrl in
  let eng = Engine.create () in
  let net = Net.create eng () in
  let hosts =
    Array.init 2 (fun i ->
        Host.create net ~name:(Printf.sprintf "cs%d" i) ~cpu_scale:1.6 ~disks:8 ())
  in
  let obsds = Array.map (fun h -> Obsd.attach h ()) hosts in
  let map_sites = Array.map (fun (h : Host.t) -> h.Host.addr) hosts in
  let coord = Coordinator.attach hosts.(0) ~probe_timeout:0.2 ~map_sites () in
  let client = Host.create net ~name:"cl" () in
  let rpc = Rpc.create net client.Host.addr ~port:1000 in
  let participant = hosts.(1).Host.addr in
  let fh =
    { Fh.file_id = 42L; gen = 1; ftype = Fh.Reg; mirrored = false; attr_site = 0; cap = 0L }
  in
  run_on eng (fun () ->
      (* seed the object on the participant *)
      let xid = Rpc.fresh_xid rpc in
      ignore
        (Rpc.call rpc ~dst:participant ~dport:2049
           (Codec.encode_call ~xid (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "zz"))));
      (* log a remove intent, then kill the coordinator before its redo
         can complete the operation *)
      let xid = Rpc.fresh_xid rpc in
      (match
         snd
           (Ctrl.decode_reply
              (Rpc.call rpc ~timeout:2.0 ~dst:(Coordinator.addr coord)
                 ~dport:(Coordinator.port coord)
                 (Ctrl.encode_msg ~xid
                    (Ctrl.Intent
                       { op_id = 7L; kind = Ctrl.K_remove; fh; participants = [ participant ] }))))
       with
      | Ctrl.Ack -> ()
      | _ -> Alcotest.fail "intent not acked");
      check_int "intent in flight" 1 (Coordinator.pending_intents coord);
      Coordinator.crash coord;
      (* the standby on the surviving peer adopts the victim's log from
         shared storage *)
      let log = Coordinator.log_image coord in
      let coord' = Coordinator.attach hosts.(1) ~probe_timeout:0.2 ~map_sites () in
      Coordinator.adopt_log coord' ~log;
      Engine.sleep eng 2.0;
      check_int "adopted intent retired" 0 (Coordinator.pending_intents coord');
      check_bool "redo ran on the new coordinator" true (Coordinator.redos coord' >= 1);
      check_bool "remove reached the participant" true (Obsd.object_size obsds.(1) fh = None);
      (* a standby that crashed mid-replay starts over: re-adopting the
         same donor log must converge, not resurrect retired intents *)
      Coordinator.adopt_log coord' ~log;
      Engine.sleep eng 1.0;
      check_int "re-adoption resurrects nothing" 0 (Coordinator.pending_intents coord'))

(* ---- failover: detector false positive under partition ---- *)

(* A partitioned-but-alive manager is indistinguishable from a dead one.
   The detector will declare it and promote a standby — that is fine,
   PROVIDED exactly one side of the split serves: the donor must have
   self-wedged (lease expiry) strictly before the standby claims its
   sites, and must stay fenced after the partition heals until it is
   explicitly rejoined. *)
let failover_partition_false_positive () =
  let module Fo = Slice_failover.Failover in
  let module Reconfig = Slice_reconfig.Reconfig in
  let module Dirserver = Slice_dir.Dirserver in
  let ens =
    Ensemble.create
      { Ensemble.default_config with storage_nodes = 2; smallfile_servers = 0; dir_servers = 2; seed = 5 }
  in
  let eng = Ensemble.engine ens in
  let net = Ensemble.net ens in
  let rc = Reconfig.attach ens in
  let fo = Fo.attach ens rc in
  let ch, _ = Ensemble.add_client ens ~name:"c0" in
  let cl = Client.create ch ~server:(Ensemble.virtual_addr ens) () in
  run_on eng (fun () ->
      let names = List.init 8 (Printf.sprintf "p%02d") in
      List.iter
        (fun n -> ignore (ok_or_fail "create" (Client.create_file cl Ensemble.root n)))
        names;
      let dirs = Ensemble.dirs ens in
      let victim = Dirserver.addr dirs.(0) in
      (* dir 0 is cut off but NOT dead: renewals stop, the detector
         declares it, a standby takes over — a false positive by design *)
      Net.set_partition net (fun n -> if n = victim then 1 else 0);
      Engine.sleep eng 1.0;
      check_int "false positive declared and replaced" 1 (Fo.takeovers fo);
      check_bool "donor self-wedged behind the partition" true (Dirserver.is_wedged dirs.(0));
      check_bool "deposed list names the donor" true (Fo.deposed fo = [ "dir0" ]);
      (* the majority side serves the full namespace meanwhile *)
      List.iter
        (fun n -> ignore (ok_or_fail "lookup during partition" (Client.lookup cl Ensemble.root n)))
        names;
      Net.clear_partition net;
      (* healed zombie: still fenced — a mutation sent straight to it
         bounces and leaves no trace *)
      let zh = Host.create net ~name:"zprobe" () in
      let zc = Client.create zh ~server:victim () in
      let before = Dirserver.fence_bounces dirs.(0) in
      check_bool "zombie refuses updates" true
        (Result.is_error (Client.mkdir zc Ensemble.root "zombie-d"));
      check_bool "zombie bounced, not served" true (Dirserver.fence_bounces dirs.(0) > before);
      check_bool "phantom directory absent" true
        (Result.is_error (Client.lookup cl Ensemble.root "zombie-d"));
      (* explicit rejoin lifts the fence: the donor returns as a peer *)
      Fo.rejoin_dir fo 0;
      check_bool "rejoined donor unfenced" false (Dirserver.is_wedged dirs.(0));
      List.iter
        (fun n -> ignore (ok_or_fail "lookup after rejoin" (Client.lookup cl Ensemble.root n)))
        names;
      Fo.stop fo)

let chaos_deterministic () =
  let cfg = { Chaos.default_config with crash_node = Some (Chaos.Dir 0) } in
  let r1 = Chaos.run_untar ~cfg () in
  let r2 = Chaos.run_untar ~cfg () in
  check_bool "identical seeds, identical chaos" true (compare r1 r2 = 0)

let suite =
  [
    ("link fault drops", `Quick, link_fault_drops);
    ("link fault duplicates", `Quick, link_fault_duplicates);
    ("link fault delay", `Quick, link_fault_delay);
    ("partition drops and heals", `Quick, partition_drops_and_heals);
    ("crash window silences node", `Quick, crash_window_silences_node);
    ("crashed source transmits nothing", `Quick, crashed_source_transmits_nothing);
    ("fault-free runs identical", `Quick, faultfree_runs_identical);
    ("rpc backoff schedule", `Quick, backoff_schedule);
    ("rpc backoff cap", `Quick, backoff_cap);
    ("dead node expires pending", `Quick, dead_node_expires_pending);
    ("mirror failure not masked", `Quick, mirror_failure_not_masked);
    ("chaos: clean run is quiet", `Slow, clean_run_is_quiet);
    ("chaos: untar under loss", `Slow, untar_under_loss);
    ("coordinator redo waits for partition heal", `Quick, coordinator_redo_waits_for_partition_heal);
    ("coordinator takeover completes 2pc", `Quick, coordinator_takeover_completes_2pc);
    ("failover partition false positive", `Quick, failover_partition_false_positive);
    ("chaos: untar with node crash", `Slow, untar_with_node_crash);
    ("chaos: specsfs with node crash", `Slow, specsfs_with_node_crash);
    ("chaos: deterministic", `Slow, chaos_deterministic);
  ]

let () =
  Alcotest.run "slice"
    [
      ("util", Test_util.suite);
      ("hash", Test_hash.suite);
      ("sim", Test_sim.suite);
      ("xdr", Test_xdr.suite);
      ("net", Test_net.suite);
      ("nfs", Test_nfs.suite);
      ("disk", Test_disk.suite);
      ("wal", Test_wal.suite);
      ("storage", Test_storage.suite);
      ("dir", Test_dir.suite);
      ("smallfile", Test_smallfile.suite);
      ("proxy", Test_proxy.suite);
      ("table", Test_table.suite);
      ("reconfig", Test_reconfig.suite);
      ("metacache", Test_metacache.suite);
      ("fault", Test_fault.suite);
      ("trace", Test_trace.suite);
      ("workload", Test_workload.suite);
      ("qos", Test_qos.suite);
      ("baseline", Test_baseline.suite);
      ("experiments", Test_experiments.suite);
      ("lint", Test_lint.suite);
    ]

open Helpers
module Engine = Slice_sim.Engine
module Wal = Slice_wal.Wal
module Disk = Slice_disk.Disk

let append_sync_replay () =
  let w = Wal.create ~name:"t" () in
  let l1 = Wal.append w ~rtype:1 "alpha" in
  let l2 = Wal.append w ~rtype:2 "beta" in
  check_bool "lsns increase" true (Int64.compare l2 l1 > 0);
  check_bool "nothing synced yet" true (Wal.synced_lsn w = 0L);
  Wal.sync w;
  check_bool "synced to l2" true (Wal.synced_lsn w = l2);
  let seen = ref [] in
  let n = Wal.replay (Wal.image w) (fun ~lsn ~rtype payload -> seen := (lsn, rtype, payload) :: !seen) in
  check_int "two records" 2 n;
  check_bool "order and content" true
    (List.rev !seen = [ (l1, 1, "alpha"); (l2, 2, "beta") ])

let unsynced_invisible () =
  let w = Wal.create ~name:"t" () in
  ignore (Wal.append w ~rtype:1 "x");
  check_int "image empty before sync" 0 (Wal.replay (Wal.image w) (fun ~lsn:_ ~rtype:_ _ -> ()))

let torn_tail_recovers_prefix =
  qtest ~count:80 "torn tail yields intact prefix"
    QCheck2.Gen.(pair (list_size (int_range 1 10) (string_size (int_range 0 40))) (int_range 0 500))
    (fun (payloads, cut) ->
      let w = Wal.create ~name:"t" () in
      (* first half synced, second half pending *)
      let n = List.length payloads in
      List.iteri
        (fun i p ->
          ignore (Wal.append w ~rtype:i p);
          if i = (n / 2) - 1 then Wal.sync w)
        payloads;
      let img = Wal.crash_image w ~keep_unsynced_bytes:cut in
      let seen = ref [] in
      ignore (Wal.replay img (fun ~lsn:_ ~rtype:_ payload -> seen := payload :: !seen));
      let recovered = List.rev !seen in
      (* recovered must be a prefix of the appended sequence, covering at
         least everything synced *)
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ -> false
      in
      is_prefix recovered payloads && List.length recovered >= n / 2)

let corrupt_record_stops_replay () =
  let w = Wal.create ~name:"t" () in
  ignore (Wal.append w ~rtype:1 "good");
  ignore (Wal.append w ~rtype:1 "bad!");
  Wal.sync w;
  let img = Bytes.of_string (Wal.image w) in
  (* flip a byte inside the second record's payload *)
  let len = Bytes.length img in
  Bytes.set img (len - 6) 'X';
  let seen = ref 0 in
  ignore (Wal.replay (Bytes.to_string img) (fun ~lsn:_ ~rtype:_ _ -> incr seen));
  check_int "only first survives" 1 !seen

let checkpoint_truncates () =
  let w = Wal.create ~name:"t" () in
  ignore (Wal.append w ~rtype:1 "old");
  Wal.sync w;
  Wal.checkpoint w;
  ignore (Wal.append w ~rtype:2 "new");
  Wal.sync w;
  let seen = ref [] in
  ignore (Wal.replay (Wal.image w) (fun ~lsn:_ ~rtype:_ p -> seen := p :: !seen));
  check_bool "only post-checkpoint" true (!seen = [ "new" ])

let disk_backed_sync_takes_time () =
  run_fiber (fun eng ->
      let d = Disk.create eng ~arms:1 ~name:"log" () in
      let w = Wal.create ~eng ~disk:d ~name:"t" () in
      ignore (Wal.append w ~rtype:1 (String.make 100 'a'));
      let t0 = Engine.now eng in
      Wal.sync w;
      check_bool "sync waited for disk" true (Engine.now eng > t0);
      check_int "one disk write" 1 (Disk.ops d))

let group_commit () =
  let eng = Engine.create () in
  let d = Disk.create eng ~arms:1 ~name:"log" () in
  let w = Wal.create ~eng ~disk:d ~name:"t" () in
  let done_count = ref 0 in
  (* many fibers append + sync concurrently: far fewer disk writes than
     records *)
  for i = 1 to 20 do
    Engine.spawn eng (fun () ->
        ignore (Wal.append w ~rtype:i "rec");
        Wal.sync w;
        check_bool "my record stable" true (Int64.compare (Wal.synced_lsn w) (Int64.of_int i) >= 0);
        incr done_count)
  done;
  Engine.run eng;
  check_int "all synced" 20 !done_count;
  check_bool "group commit batches" true (Wal.sync_count w < 20)

let engine_without_sink_rejected () =
  (* regression: ~eng with neither ~disk nor ~sync_fn used to be accepted
     and silently dropped the engine, skipping group commit entirely *)
  let eng = Engine.create () in
  Alcotest.check_raises "engine needs a sink"
    (Invalid_argument "Wal.create: an engine needs a disk or a sync_fn") (fun () ->
      ignore (Wal.create ~eng ~name:"t" ()))

(* ---- failover replay idempotency ----

   A hot standby adopts a dead manager's journal by replaying the shared
   image and re-appending every record into its own log. These tests pin
   the two properties takeover relies on: replay is a pure read (running
   it twice over the same image yields identical records), and a standby
   that crashes mid-adoption converges after re-replaying — the synced
   prefix survives its crash, and resuming with a skip count reproduces
   exactly the journal a crash-free adoption would have produced. *)

let records img =
  let seen = ref [] in
  ignore (Wal.replay img (fun ~lsn ~rtype payload -> seen := (lsn, rtype, payload) :: !seen));
  List.rev !seen

let replay_twice_identical () =
  let donor = Wal.create ~name:"donor" () in
  for i = 1 to 8 do
    ignore (Wal.append donor ~rtype:i (Printf.sprintf "rec%02d" i))
  done;
  Wal.sync donor;
  let img = Wal.image donor in
  let a = records img and b = records img in
  check_int "all records" 8 (List.length a);
  check_bool "replay is a pure read" true (a = b)

let crash_mid_adoption_converges () =
  let donor = Wal.create ~name:"donor" () in
  for i = 1 to 10 do
    ignore (Wal.append donor ~rtype:i (Printf.sprintf "rec%02d" i))
  done;
  Wal.sync donor;
  let img = Wal.image donor in
  (* reference: a crash-free adoption *)
  let adopt_all () =
    let w = Wal.create ~name:"standby" () in
    ignore (Wal.replay img (fun ~lsn:_ ~rtype payload -> ignore (Wal.append w ~rtype payload)));
    Wal.sync w;
    Wal.image w
  in
  let reference = records (adopt_all ()) in
  (* the standby crashes mid-replay: 6 records appended, only 4 synced,
     plus a torn tail of unsynced bytes *)
  let w = Wal.create ~name:"standby" () in
  let n = ref 0 in
  ignore
    (Wal.replay img (fun ~lsn:_ ~rtype payload ->
         if !n < 6 then ignore (Wal.append w ~rtype payload);
         incr n;
         if !n = 4 then Wal.sync w));
  let crashed = Wal.crash_image w ~keep_unsynced_bytes:9 in
  (* recovery: replay whatever survived into a fresh log, count it, then
     re-replay the donor image skipping the already-applied prefix *)
  let w2 = Wal.create ~name:"standby2" () in
  let applied = ref 0 in
  ignore
    (Wal.replay crashed (fun ~lsn:_ ~rtype payload ->
         ignore (Wal.append w2 ~rtype payload);
         incr applied));
  check_bool "synced prefix survived" true (!applied >= 4);
  check_bool "torn tail dropped" true (!applied <= 6);
  let k = ref 0 in
  ignore
    (Wal.replay img (fun ~lsn:_ ~rtype payload ->
         if !k >= !applied then ignore (Wal.append w2 ~rtype payload);
         incr k));
  Wal.sync w2;
  check_bool "re-replay converges on the crash-free journal" true
    (records (Wal.image w2) = reference)

let sync_fn_hook () =
  let eng = Engine.create () in
  let written = ref 0 in
  let w = Wal.create ~eng ~sync_fn:(fun n -> written := !written + n) ~name:"t" () in
  run_on eng (fun () ->
      ignore (Wal.append w ~rtype:1 "abc");
      Wal.sync w);
  check_bool "hook saw bytes" true (!written > 0)

let suite =
  [
    ("append/sync/replay", `Quick, append_sync_replay);
    ("unsynced invisible", `Quick, unsynced_invisible);
    torn_tail_recovers_prefix;
    ("corrupt record stops replay", `Quick, corrupt_record_stops_replay);
    ("checkpoint truncates", `Quick, checkpoint_truncates);
    ("disk-backed sync takes time", `Quick, disk_backed_sync_takes_time);
    ("group commit", `Quick, group_commit);
    ("engine without sink rejected", `Quick, engine_without_sink_rejected);
    ("sync_fn hook", `Quick, sync_fn_hook);
    ("replay twice identical", `Quick, replay_twice_identical);
    ("crash mid-adoption converges", `Quick, crash_mid_adoption_converges);
  ]

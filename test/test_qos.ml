(* Per-tenant QoS: the Zipf sampler's shape, WFQ scheduling invariants
   (work conservation, weight-proportional shares, equal-tag fairness),
   tenant-tag preservation across retransmit/supersede slot reuse, and
   storm-exhibit determinism. *)

open Helpers
module Engine = Slice_sim.Engine
module Prng = Slice_util.Prng
module Json = Slice_util.Json
module Tenant = Slice_qos.Tenant
module Bucket = Slice_qos.Bucket
module Wfq = Slice_qos.Wfq
module Zipf = Slice_workload.Zipf
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Packet = Slice_net.Packet
module Net = Slice_net.Net
module Host = Slice_storage.Host
module Proxy = Slice.Proxy
module Params = Slice.Params
module Table = Slice.Table
module E = Slice_experiments

(* ---- Zipf sampler ---- *)

(* The mass oracle is a normalized power law and the empirical draw
   frequencies converge to it. *)
let zipf_shape () =
  let n = 40 in
  let z = Zipf.create ~n ~s:1.1 in
  check_int "n recorded" n (Zipf.n z);
  (* masses are a probability distribution, monotone decreasing in rank *)
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. Zipf.mass z k;
    if k > 0 then
      check_bool
        (Printf.sprintf "mass decreasing at %d" k)
        true
        (Zipf.mass z k <= Zipf.mass z (k - 1))
  done;
  check_float_eps 1e-9 "masses sum to 1" 1.0 !total;
  check_float_eps 1e-9 "cumulative reaches 1" 1.0 (Zipf.cumulative z (n - 1));
  (* the power law itself: mass(0)/mass(1) = 2^s *)
  check_float_eps 1e-9 "power-law ratio" (2.0 ** 1.1) (Zipf.mass z 0 /. Zipf.mass z 1);
  (* empirical frequencies track the oracle *)
  let draws = 30_000 in
  let prng = Prng.create 7 in
  let hist = Array.make n 0 in
  for _ = 1 to draws do
    let k = Zipf.sample z prng in
    hist.(k) <- hist.(k) + 1
  done;
  for k = 0 to 4 do
    let emp = float_of_int hist.(k) /. float_of_int draws in
    let exp_ = Zipf.mass z k in
    check_bool
      (Printf.sprintf "rank %d empirical %.4f ~ %.4f" k emp exp_)
      true
      (Float.abs (emp -. exp_) < 0.01)
  done;
  (* s = 0 degenerates to uniform *)
  let u = Zipf.create ~n:10 ~s:0.0 in
  check_float_eps 1e-9 "s=0 uniform" 0.1 (Zipf.mass u 9)

let zipf_deterministic () =
  let z = Zipf.create ~n:100 ~s:0.9 in
  let seq seed = List.init 200 (fun _ -> 0) |> List.map (fun _ -> Zipf.sample z (Prng.create seed)) in
  ignore seq;
  let draw seed =
    let prng = Prng.create seed in
    List.init 200 (fun _ -> Zipf.sample z prng)
  in
  check_bool "same seed, same stream" true (draw 42 = draw 42);
  check_bool "different seed, different stream" true (draw 42 <> draw 43)

(* ---- WFQ scheduler ---- *)

let mk_wfq ?(depth = 1) weights =
  let eng = Engine.create () in
  let specs =
    Array.mapi (fun i w -> Tenant.spec ~name:(Printf.sprintf "t%d" i) ~weight:w ()) weights
  in
  let tenants = Tenant.create specs in
  (eng, Wfq.create eng ~tenants ~depth ())

(* A lone active tenant gets the server to itself: its tiny weight never
   strands capacity when the heavyweights are idle. *)
let wfq_work_conservation () =
  let eng, w = mk_wfq [| 0.1; 100.0; 100.0 |] in
  let jobs = 20 and service = 0.01 in
  let done_ = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to jobs do
        Wfq.submit w ~tenant:0 ~cost:service (fun complete ->
            Engine.sleep eng service;
            incr done_;
            complete ())
      done);
  Engine.run eng;
  check_int "all jobs served" jobs !done_;
  check_int "all from the active tenant" jobs (Wfq.dispatched w 0);
  (* depth 1, back-to-back: the makespan is exactly jobs * service — no
     idle gaps waiting on the idle tenants' weight *)
  check_float_eps 1e-9 "no stranded capacity" (float_of_int jobs *. service) (Engine.now eng);
  check_int "backlog drained" 0 (Wfq.backlog w)

(* Under saturation, service shares are weight-proportional: 3:1 weights
   serve ~75%/25% of dispatches over any window. *)
let wfq_weight_shares () =
  let eng, w = mk_wfq [| 3.0; 1.0 |] in
  let service = 0.001 in
  let snap = ref (0, 0) in
  Engine.spawn eng (fun () ->
      for _ = 1 to 200 do
        Wfq.submit w ~tenant:0 ~cost:service (fun complete ->
            Engine.sleep eng service;
            complete ());
        Wfq.submit w ~tenant:1 ~cost:service (fun complete ->
            Engine.sleep eng service;
            complete ())
      done);
  Engine.spawn eng (fun () ->
      (* mid-run, both queues still saturated: 100 dispatches done *)
      Engine.sleep eng (100.0 *. service);
      snap := (Wfq.dispatched w 0, Wfq.dispatched w 1));
  Engine.run eng;
  let d0, d1 = !snap in
  check_int "window saturated" 100 (d0 + d1);
  check_bool (Printf.sprintf "3:1 shares (%d vs %d)" d0 d1) true (d0 >= 72 && d0 <= 78);
  check_int "work conserving overall" 400 (Wfq.total_dispatched w)

(* Regression: two equal-weight tenants submitting at the same instant
   interleave strictly — the lowest-id tie-break must not become
   head-of-line starvation, because serving one tenant pushes its next
   tag past the other's. *)
let wfq_equal_timestamp_fairness () =
  let eng, w = mk_wfq [| 1.0; 1.0 |] in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      (* tenant 1 enqueues its whole burst first: FIFO dispatch would
         serve all of tenant 1 before tenant 0 touches the server *)
      for _ = 1 to 8 do
        Wfq.submit w ~tenant:1 ~cost:1.0 (fun complete ->
            order := 1 :: !order;
            Engine.sleep eng 0.001;
            complete ())
      done;
      for _ = 1 to 8 do
        Wfq.submit w ~tenant:0 ~cost:1.0 (fun complete ->
            order := 0 :: !order;
            Engine.sleep eng 0.001;
            complete ())
      done);
  Engine.run eng;
  let order = List.rev !order in
  check_int "all served" 16 (List.length order);
  (* equal tags must not become blockwise service: over every prefix the
     served counts stay within 2 of each other (serving the lower id on
     a tie pushes its next tag past the other's, forcing interleave) *)
  let c = [| 0; 0 |] in
  List.iter
    (fun t ->
      c.(t) <- c.(t) + 1;
      check_bool
        (Printf.sprintf "prefix balanced (%d vs %d)" c.(0) c.(1))
        true
        (abs (c.(0) - c.(1)) <= 2))
    order;
  check_int "even split" 8 c.(0)

(* ---- token bucket ---- *)

let bucket_refill () =
  let b = Bucket.create ~rate:10.0 ~burst:2.0 in
  check_bool "initial burst spendable" true (Bucket.try_take b ~now:0.0);
  check_bool "second token there" true (Bucket.try_take b ~now:0.0);
  check_bool "burst exhausted" false (Bucket.try_take b ~now:0.0);
  let wait = Bucket.next_ready b ~now:0.0 in
  check_bool "refill wait positive" true (wait > 0.0 && wait <= 0.1 +. 1e-9);
  check_bool "token back after the wait" true (Bucket.try_take b ~now:(0.0 +. wait));
  (* a long idle period refills to burst, not beyond *)
  check_bool "t1" true (Bucket.try_take b ~now:100.0);
  check_bool "t2" true (Bucket.try_take b ~now:100.0);
  check_bool "burst caps accrual" false (Bucket.try_take b ~now:100.0)

(* ---- tenant tag through the µproxy pending pool ---- *)

let reg_fh i =
  { Fh.file_id = Int64.of_int (1000 + i); gen = 1; ftype = Fh.Reg; mirrored = false;
    attr_site = 0; cap = 0L }

let mk_qos_proxy () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let chost = Host.create net ~name:"client" () in
  let dhost = Host.create net ~name:"dir" () in
  let vaddr = Net.add_node net ~name:"virt" in
  let tenants =
    Tenant.create
      [|
        Tenant.spec ~name:"system" ~weight:1.0 ();
        Tenant.spec ~name:"web" ~weight:8.0 ();
        Tenant.spec ~name:"scan" ~weight:1.0 ();
      |]
  in
  Tenant.bind_addr tenants ~addr:chost.Host.addr ~tenant:2;
  let proxy =
    Proxy.install chost
      ~params:
        { Params.default with threshold = 0; meta_cache_enabled = false; pending_sweep_interval = 0.0 }
      ~qos:{ Proxy.q_tenant = 2; q_tenants = tenants; q_admit = None; q_read_probe = None }
      {
        Proxy.virtual_addr = vaddr;
        dir_table = Table.create [| dhost.Host.addr |];
        smallfile_table = None;
        storage = None;
        coordinator = (fun () -> None);
      }
  in
  (eng, net, chost, dhost, vaddr, proxy, tenants)

(* The tenant tag stamped at interception survives a retransmit
   superseding the pending record in place, and the reply accounts the
   op to that tenant. *)
let tenant_survives_retransmit () =
  let eng, net, chost, dhost, vaddr, proxy, tenants = mk_qos_proxy () in
  let fh = reg_fh 1 in
  let attr = Nfs.default_attr ~ftype:Fh.Reg ~fileid:fh.Fh.file_id ~now:0.0 in
  let call = Nfs.Getattr fh and resp = Ok (Nfs.RGetattr attr) in
  let call_pkt ~xid =
    Packet.make ~src:chost.Host.addr ~dst:vaddr ~sport:1000 ~dport:2049
      (Codec.encode_call ~xid call)
  in
  run_on eng (fun () -> Net.send net (call_pkt ~xid:0x5151));
  check_bool "tag stamped at interception" true (Proxy.pending_tenant proxy ~xid:0x5151 = Some 2);
  (* the retransmit supersedes the record in place — same slot, tag kept *)
  run_on eng (fun () -> Net.send net (call_pkt ~xid:0x5151));
  check_int "slot reused" 1 (Proxy.pending_size proxy);
  check_bool "tag survives supersede" true (Proxy.pending_tenant proxy ~xid:0x5151 = Some 2);
  run_on eng (fun () ->
      Net.send net
        (Packet.make ~src:dhost.Host.addr ~dst:chost.Host.addr ~sport:2049 ~dport:1000
           (Codec.encode_reply ~xid:0x5151 resp)));
  check_bool "slot settled" true (Proxy.pending_tenant proxy ~xid:0x5151 = None);
  check_int "op accounted to the stamped tenant" 1 (Tenant.ops tenants 2);
  check_int "no bleed into other tenants" 0 (Tenant.ops tenants 0 + Tenant.ops tenants 1)

(* ---- storm exhibit ---- *)

(* Same seed, same artifact, byte for byte — the CI determinism gate in
   miniature. Also pins the headline contract at this scale: QoS holds
   the interactive p99 under the bound the artifact carries. *)
let storm_deterministic () =
  let dump () = Json.to_string (E.Storm.json_of (E.Storm.compute ~scale:0.2 ())) in
  let a = dump () in
  check_string "run-twice byte-identical" a (dump ());
  let t = E.Storm.compute ~scale:0.2 () in
  check_bool "measured ops on both sides" true
    (t.E.Storm.st_off.E.Storm.sd_total_ops > 0 && t.E.Storm.st_on.E.Storm.sd_total_ops > 0);
  check_bool "qos engaged" true (t.E.Storm.st_on.E.Storm.sd_admission_deferrals >= 0)

let suite =
  [
    ("zipf shape", `Quick, zipf_shape);
    ("zipf deterministic", `Quick, zipf_deterministic);
    ("wfq work conservation", `Quick, wfq_work_conservation);
    ("wfq weight shares", `Quick, wfq_weight_shares);
    ("wfq equal-timestamp fairness", `Quick, wfq_equal_timestamp_fairness);
    ("bucket refill", `Quick, bucket_refill);
    ("tenant survives retransmit", `Quick, tenant_survives_retransmit);
    ("storm deterministic", `Slow, storm_deterministic);
  ]

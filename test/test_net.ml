open Helpers
module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Packet = Slice_net.Packet
module Cksum = Slice_net.Cksum
module Rpc = Slice_net.Rpc

let mk_pkt ?(payload = "hello world") () =
  Packet.make ~src:0 ~dst:1 ~sport:1000 ~dport:2049 (Bytes.of_string payload)

(* ---- checksums ---- *)

let checksum_verifies () =
  let p = mk_pkt () in
  check_bool "fresh packet verifies" true (Cksum.verify p);
  Bytes.set p.Packet.payload 0 'X';
  check_bool "corruption detected" false (Cksum.verify p)

let rewrite_dst_keeps_checksum () =
  let p = mk_pkt () in
  Cksum.rewrite_dst p 77;
  check_int "dst rewritten" 77 p.Packet.dst;
  check_bool "incremental checksum still valid" true (Cksum.verify p)

let rewrite_all_fields =
  qtest "incremental rewrites = recompute"
    QCheck2.Gen.(
      tup4 (string_size (int_range 0 80)) (int_range 0 1000) (int_range 0 65535)
        (int_range 0 65535))
    (fun (payload, addr, sport, dport) ->
      let p = mk_pkt ~payload () in
      Cksum.rewrite_src p addr;
      Cksum.rewrite_dst p (addr + 1);
      Cksum.rewrite_sport p sport;
      Cksum.rewrite_dport p dport;
      Cksum.verify p)

let patch_payload_checksum =
  qtest "payload patch keeps checksum"
    QCheck2.Gen.(pair (int_range 0 10) (string_size (int_range 1 8)))
    (fun (off4, data) ->
      let p = mk_pkt ~payload:(String.make 64 'q') () in
      let off = off4 * 2 in
      Cksum.patch_payload p ~off data;
      Bytes.sub_string p.Packet.payload off (String.length data) = data && Cksum.verify p)

let patch_payload_bounds () =
  let p = mk_pkt ~payload:"0123456789" () in
  Alcotest.check_raises "odd offset" (Invalid_argument "Cksum.patch_payload") (fun () ->
      Cksum.patch_payload p ~off:1 "ab");
  Alcotest.check_raises "overflow" (Invalid_argument "Cksum.patch_payload") (fun () ->
      Cksum.patch_payload p ~off:8 "abcdef")

let patch_payload_odd_straddle () =
  (* Odd-length patch: its final word is shared with the byte that
     follows the patch, so the adjustment must fold that neighbour in. *)
  let p = mk_pkt ~payload:"0123456789" () in
  Cksum.patch_payload p ~off:2 "abc";
  check_bool "bytes patched" true (Bytes.to_string p.Packet.payload = "01abc56789");
  check_bool "shared-word checksum valid" true (Cksum.verify p)

let patch_payload_final_byte () =
  (* Odd-length payload: patching the last byte exercises word_at's
     half-word path, where the final byte forms a word on its own. *)
  let p = mk_pkt ~payload:"0123456" () in
  Cksum.patch_payload p ~off:6 "z";
  check_bool "last byte patched" true (Bytes.to_string p.Packet.payload = "012345z");
  check_bool "half-word checksum valid" true (Cksum.verify p);
  (* and an odd patch that runs up to the very end of an odd payload:
     words at 4-5 and the lone byte at 6 *)
  let q = mk_pkt ~payload:"0123456" () in
  Cksum.patch_payload q ~off:4 "xyz";
  check_bool "tail straddle patched" true (Bytes.to_string q.Packet.payload = "0123xyz");
  check_bool "tail straddle checksum valid" true (Cksum.verify q)

let proxy_rewrite_sequence_verifies () =
  (* End-to-end: an egress filter performs the full µproxy rewrite
     sequence — redirect dst/dport, patch a stripe-offset field and an
     odd-length tail in the payload — and the receiver verifies the
     checksum on arrival, exactly as a storage node would. *)
  let eng, net =
    let eng = Engine.create () in
    (eng, Net.create eng ())
  in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let c = Net.add_node net ~name:"c" in
  let verified = ref 0 in
  Net.listen net c ~port:3049 (fun pkt ->
      if Cksum.verify pkt then incr verified);
  Net.add_egress_filter net a (fun pkt ->
      Cksum.rewrite_dst pkt c;
      Cksum.rewrite_dport pkt 3049;
      Cksum.patch_payload pkt ~off:8 "\x00\x00\x00\x00\x00\x01\x86\xa0";
      Cksum.patch_payload pkt ~off:60 "end";
      Some pkt);
  Net.send net (Packet.make ~src:a ~dst:b ~sport:1 ~dport:9 (Bytes.make 63 'q'));
  Engine.run eng;
  check_int "rewritten packet verifies at receiver" 1 !verified

let packet_copy_independent () =
  let p = mk_pkt () in
  let q = Packet.copy p in
  Bytes.set q.Packet.payload 0 'Z';
  Cksum.rewrite_dst q 9;
  check_bool "original payload intact" true (Bytes.get p.Packet.payload 0 = 'h');
  check_int "original dst intact" 1 p.Packet.dst

let wire_size_accounts_extra () =
  let p = Packet.make ~src:0 ~dst:1 ~sport:1 ~dport:2 ~extra_size:32768 (Bytes.create 100) in
  check_int "wire size" (Packet.header_bytes + 100 + 32768) (Packet.wire_size p)

(* ---- network delivery ---- *)

let mk_net ?params ?seed () =
  let eng = Engine.create () in
  let net = Net.create eng ?params ?seed () in
  (eng, net)

let delivery_and_latency () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let arrived = ref (-1.0) in
  Net.listen net b ~port:9 (fun _ -> arrived := Engine.now eng);
  let payload = Bytes.create 1000 in
  Net.send net (Packet.make ~src:a ~dst:b ~sport:1 ~dport:9 payload);
  Engine.run eng;
  let p = Net.default_params in
  (* tx serialization + wire + switch + rx serialization *)
  let ser = float_of_int (Packet.header_bytes + 1000) /. p.Net.bandwidth in
  let expect = (2.0 *. ser) +. p.Net.wire_latency +. p.Net.switch_latency in
  check_float_eps 1e-9 "latency model" expect !arrived;
  check_int "packets" 1 (Net.packets_sent net);
  check_int "bytes" (Packet.header_bytes + 1000) (Net.bytes_sent net)

let unknown_port_drops () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  Net.send net (Packet.make ~src:a ~dst:b ~sport:1 ~dport:12345 (Bytes.create 4));
  Engine.run eng;
  check_int "dropped" 1 (Net.packets_dropped net)

let nic_serializes () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let count = ref 0 in
  let last = ref 0.0 in
  Net.listen net b ~port:9 (fun _ ->
      incr count;
      last := Engine.now eng);
  (* two back-to-back 125000-byte packets serialize at 1ms each on tx *)
  for _ = 1 to 2 do
    Net.send net
      (Packet.make ~src:a ~dst:b ~sport:1 ~dport:9 (Bytes.create (125_000 - Packet.header_bytes)))
  done;
  Engine.run eng;
  check_int "both arrive" 2 !count;
  check_bool "tx+rx serialization ~3ms" true (!last > 2.9e-3 && !last < 3.3e-3)

let egress_filter_rewrites () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let c = Net.add_node net ~name:"c" in
  let got = ref [] in
  Net.listen net b ~port:9 (fun _ -> got := `B :: !got);
  Net.listen net c ~port:9 (fun _ -> got := `C :: !got);
  (* filter redirects everything to c *)
  Net.add_egress_filter net a (fun pkt ->
      Cksum.rewrite_dst pkt c;
      Some pkt);
  Net.send net (Packet.make ~src:a ~dst:b ~sport:1 ~dport:9 (Bytes.create 4));
  Engine.run eng;
  check_bool "redirected to c" true (!got = [ `C ])

let egress_filter_absorbs () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let got = ref 0 in
  Net.listen net b ~port:9 (fun _ -> incr got);
  Net.add_egress_filter net a (fun _ -> None);
  Net.send net (Packet.make ~src:a ~dst:b ~sport:1 ~dport:9 (Bytes.create 4));
  Engine.run eng;
  check_int "absorbed" 0 !got

let ingress_filter_sees_arrivals () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let seen = ref 0 in
  let got = ref 0 in
  Net.add_ingress_filter net b (fun pkt ->
      incr seen;
      Some pkt);
  Net.listen net b ~port:9 (fun _ -> incr got);
  Net.send net (Packet.make ~src:a ~dst:b ~sport:1 ~dport:9 (Bytes.create 4));
  Engine.run eng;
  check_int "filter saw it" 1 !seen;
  check_int "handler got it" 1 !got

let inject_skips_egress () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let got = ref 0 in
  Net.listen net b ~port:9 (fun _ -> incr got);
  Net.add_egress_filter net a (fun _ -> Alcotest.fail "egress must be skipped");
  Net.inject net (Packet.make ~src:a ~dst:b ~sport:1 ~dport:9 (Bytes.create 4));
  Engine.run eng;
  check_int "delivered" 1 !got

let dispatch_is_immediate () =
  let eng, net = mk_net () in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  let got = ref false in
  Net.listen net b ~port:9 (fun _ -> got := true);
  Net.dispatch net (Packet.make ~src:a ~dst:b ~sport:1 ~dport:9 (Bytes.create 4));
  check_bool "no events needed" true !got;
  check_float "no time passed" 0.0 (Engine.now eng)

(* ---- RPC ---- *)

let echo_server net addr ~port =
  Net.listen net addr ~port (fun pkt ->
      let reply =
        Packet.make ~src:addr ~dst:pkt.Packet.src ~sport:port ~dport:pkt.Packet.sport
          (Bytes.copy pkt.Packet.payload)
      in
      Net.send net reply)

let mk_call_payload rpc tag =
  let xid = Rpc.fresh_xid rpc in
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int xid);
  Bytes.set_int32_be b 4 (Int32.of_int tag);
  b

let rpc_roundtrip () =
  let eng, net = mk_net () in
  let c = Net.add_node net ~name:"client" in
  let s = Net.add_node net ~name:"server" in
  echo_server net s ~port:2049;
  let rpc = Rpc.create net c ~port:900 in
  let tag =
    run_on eng (fun () ->
        let payload = mk_call_payload rpc 55 in
        let reply = Rpc.call rpc ~dst:s ~dport:2049 payload in
        Int32.to_int (Bytes.get_int32_be reply 4))
  in
  check_int "echoed" 55 tag;
  check_int "no retransmissions" 0 (Rpc.retransmissions rpc);
  check_int "completed" 1 (Rpc.calls_completed rpc)

let rpc_retransmits_through_loss () =
  (* 40% loss: end-to-end retry must still deliver *)
  let eng, net = mk_net ~params:{ Net.default_params with drop_prob = 0.4 } ~seed:5 () in
  let c = Net.add_node net ~name:"client" in
  let s = Net.add_node net ~name:"server" in
  echo_server net s ~port:2049;
  let rpc = Rpc.create net c ~port:900 in
  let n = 25 in
  let replies =
    run_on eng (fun () ->
        let ok = ref 0 in
        for _ = 1 to n do
          let payload = mk_call_payload rpc 1 in
          match Rpc.call rpc ~retries:20 ~dst:s ~dport:2049 payload with
          | _ -> incr ok
        done;
        !ok)
  in
  check_int "all completed" n replies;
  check_bool "some retransmissions" true (Rpc.retransmissions rpc > 0)

let rpc_times_out () =
  let eng, net = mk_net () in
  let c = Net.add_node net ~name:"client" in
  let s = Net.add_node net ~name:"server" in
  (* no listener on s: requests vanish *)
  let rpc = Rpc.create net c ~port:900 in
  let raised =
    run_on eng (fun () ->
        let payload = mk_call_payload rpc 1 in
        try
          ignore (Rpc.call rpc ~timeout:0.05 ~retries:2 ~dst:s ~dport:2049 payload);
          false
        with Rpc.Timeout -> true)
  in
  check_bool "timeout raised" true raised;
  check_int "retried twice" 2 (Rpc.retransmissions rpc)

let rpc_duplicate_replies_dropped () =
  let eng, net = mk_net () in
  let c = Net.add_node net ~name:"client" in
  let s = Net.add_node net ~name:"server" in
  (* server replies twice to every request *)
  Net.listen net s ~port:2049 (fun pkt ->
      for _ = 1 to 2 do
        Net.send net
          (Packet.make ~src:s ~dst:pkt.Packet.src ~sport:2049 ~dport:pkt.Packet.sport
             (Bytes.copy pkt.Packet.payload))
      done);
  let rpc = Rpc.create net c ~port:900 in
  let v =
    run_on eng (fun () ->
        let payload = mk_call_payload rpc 7 in
        ignore (Rpc.call rpc ~dst:s ~dport:2049 payload);
        Engine.sleep eng 1.0;
        true)
  in
  check_bool "no crash on dup" true v;
  check_int "completed once" 1 (Rpc.calls_completed rpc)

let suite =
  [
    ("checksum verifies", `Quick, checksum_verifies);
    ("rewrite dst keeps checksum", `Quick, rewrite_dst_keeps_checksum);
    rewrite_all_fields;
    patch_payload_checksum;
    ("patch payload bounds", `Quick, patch_payload_bounds);
    ("patch payload odd straddle", `Quick, patch_payload_odd_straddle);
    ("patch payload final byte", `Quick, patch_payload_final_byte);
    ("proxy rewrite sequence verifies", `Quick, proxy_rewrite_sequence_verifies);
    ("packet copy independent", `Quick, packet_copy_independent);
    ("wire size accounts extra", `Quick, wire_size_accounts_extra);
    ("delivery and latency", `Quick, delivery_and_latency);
    ("unknown port drops", `Quick, unknown_port_drops);
    ("nic serializes", `Quick, nic_serializes);
    ("egress filter rewrites", `Quick, egress_filter_rewrites);
    ("egress filter absorbs", `Quick, egress_filter_absorbs);
    ("ingress filter sees arrivals", `Quick, ingress_filter_sees_arrivals);
    ("inject skips egress", `Quick, inject_skips_egress);
    ("dispatch is immediate", `Quick, dispatch_is_immediate);
    ("rpc roundtrip", `Quick, rpc_roundtrip);
    ("rpc retransmits through loss", `Quick, rpc_retransmits_through_loss);
    ("rpc times out", `Quick, rpc_times_out);
    ("rpc duplicate replies dropped", `Quick, rpc_duplicate_replies_dropped);
  ]

open Helpers
module Engine = Slice_sim.Engine
module Resource = Slice_sim.Resource
module Fiber = Slice_sim.Fiber

let event_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng 2.0 (fun () -> log := "c" :: !log);
  Engine.schedule eng 1.0 (fun () -> log := "a" :: !log);
  Engine.schedule eng 1.0 (fun () -> log := "b" :: !log) (* FIFO at same time *);
  Engine.run eng;
  check_bool "order a,b,c" true (List.rev !log = [ "a"; "b"; "c" ]);
  check_float "clock at last event" 2.0 (Engine.now eng)

let schedule_past_clamps () =
  let eng = Engine.create () in
  let at = ref 0.0 in
  Engine.schedule eng 1.0 (fun () ->
      Engine.schedule_at eng 0.5 (fun () -> at := Engine.now eng));
  Engine.run eng;
  check_float "clamped to now" 1.0 !at

let run_until () =
  let eng = Engine.create () in
  let fired = ref 0 in
  Engine.schedule eng 1.0 (fun () -> incr fired);
  Engine.schedule eng 5.0 (fun () -> incr fired);
  Engine.run ~until:2.0 eng;
  check_int "only first fired" 1 !fired;
  check_int "one pending" 1 (Engine.pending eng);
  Engine.run eng;
  check_int "all fired" 2 !fired

let run_until_advances_clock () =
  (* [run ~until] leaves the clock at [until] even when the event queue
     drains first — periodic measurement loops rely on this so a quiet
     window still advances simulated time. *)
  let eng = Engine.create () in
  Engine.run ~until:3.0 eng;
  check_float "empty queue still advances" 3.0 (Engine.now eng);
  Engine.schedule eng 1.0 (fun () -> ());
  Engine.run ~until:10.0 eng;
  check_float "past last event" 10.0 (Engine.now eng);
  Engine.run ~until:5.0 eng;
  check_float "never moves backwards" 10.0 (Engine.now eng)

let sleep_advances_time () =
  let elapsed =
    run_fiber (fun eng ->
        let t0 = Engine.now eng in
        Engine.sleep eng 1.5;
        Engine.sleep eng 0.25;
        Engine.now eng -. t0)
  in
  check_float "slept 1.75" 1.75 elapsed

let suspend_resumes_with_value () =
  let v =
    run_fiber (fun eng ->
        Engine.suspend (fun wake -> Engine.schedule eng 1.0 (fun () -> wake 42)))
  in
  check_int "resumed value" 42 v

let waker_idempotent () =
  let v =
    run_fiber (fun eng ->
        Engine.suspend (fun wake ->
            Engine.schedule eng 1.0 (fun () -> wake 1);
            Engine.schedule eng 2.0 (fun () -> wake 2)))
  in
  check_int "first waker wins" 1 v

let fibers_interleave () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      Engine.sleep eng 1.0;
      log := `A :: !log);
  Engine.spawn eng (fun () ->
      Engine.sleep eng 0.5;
      log := `B :: !log);
  Engine.run eng;
  check_bool "B before A" true (List.rev !log = [ `B; `A ])

let resource_fcfs () =
  let eng = Engine.create () in
  let r = Resource.create eng ~name:"cpu" () in
  let finish = Array.make 2 0.0 in
  Engine.spawn eng (fun () ->
      Resource.use r 1.0;
      finish.(0) <- Engine.now eng);
  Engine.spawn eng (fun () ->
      Resource.use r 0.5;
      finish.(1) <- Engine.now eng);
  Engine.run eng;
  check_float "first holds 1.0" 1.0 finish.(0);
  check_float "second queues behind" 1.5 finish.(1);
  check_float "busy time" 1.5 (Resource.busy_time r);
  check_float "utilization" 1.0 (Resource.utilization r ~elapsed:1.5);
  check_float "queue delay" 1.0 (Resource.queue_delay_total r);
  check_int "served" 2 (Resource.served r)

let resource_parallel_capacity () =
  let eng = Engine.create () in
  let r = Resource.create eng ~capacity:2 ~name:"arms" () in
  let finish = Array.make 3 0.0 in
  for i = 0 to 2 do
    Engine.spawn eng (fun () ->
        Resource.use r 1.0;
        finish.(i) <- Engine.now eng)
  done;
  Engine.run eng;
  check_float "two run in parallel" 1.0 finish.(0);
  check_float "two run in parallel 2" 1.0 finish.(1);
  check_float "third queues" 2.0 finish.(2)

let resource_zero_service () =
  run_fiber (fun eng ->
      let r = Resource.create eng ~name:"r" () in
      let t0 = Engine.now eng in
      Resource.use r 0.0;
      check_float "no wait" t0 (Engine.now eng))

let fiber_join_all () =
  let eng = Engine.create () in
  let done_at = ref 0.0 in
  Engine.spawn eng (fun () ->
      Fiber.join_all eng
        [ (fun () -> Engine.sleep eng 1.0); (fun () -> Engine.sleep eng 3.0); (fun () -> ()) ];
      done_at := Engine.now eng);
  Engine.run eng;
  check_float "joined at max" 3.0 !done_at

let fiber_join_empty () =
  run_fiber (fun eng ->
      let t0 = Engine.now eng in
      Fiber.join_all eng [];
      check_float "instant" t0 (Engine.now eng))

let fiber_timeout () =
  let r =
    run_fiber (fun eng ->
        Fiber.timeout eng 1.0 (fun () ->
            Engine.sleep eng 5.0;
            `Late))
  in
  check_bool "timed out" true (r = None);
  let r =
    run_fiber (fun eng ->
        Fiber.timeout eng 1.0 (fun () ->
            Engine.sleep eng 0.5;
            `Fast))
  in
  check_bool "completed" true (r = Some `Fast)

let parallel_window_bounds () =
  let eng = Engine.create () in
  let inflight = ref 0 in
  let peak = ref 0 in
  let ran = ref 0 in
  Engine.spawn eng (fun () ->
      Fiber.parallel_window eng ~window:3 10 (fun _ ->
          incr inflight;
          if !inflight > !peak then peak := !inflight;
          Engine.sleep eng 1.0;
          decr inflight;
          incr ran));
  Engine.run eng;
  check_int "all ran" 10 !ran;
  check_bool "peak <= window" true (!peak <= 3);
  check_int "peak reaches window" 3 !peak

let parallel_window_order () =
  let eng = Engine.create () in
  let starts = ref [] in
  Engine.spawn eng (fun () ->
      Fiber.parallel_window eng ~window:2 5 (fun i ->
          starts := i :: !starts;
          Engine.sleep eng (0.1 *. float_of_int (5 - i))));
  Engine.run eng;
  check_bool "issue order" true (List.rev !starts = [ 0; 1; 2; 3; 4 ])

let parallel_window_zero () =
  run_fiber (fun eng -> Fiber.parallel_window eng ~window:4 0 (fun _ -> Alcotest.fail "no items"))

let suite =
  [
    ("event ordering", `Quick, event_ordering);
    ("schedule past clamps", `Quick, schedule_past_clamps);
    ("run ~until", `Quick, run_until);
    ("run ~until advances clock", `Quick, run_until_advances_clock);
    ("sleep advances time", `Quick, sleep_advances_time);
    ("suspend resumes with value", `Quick, suspend_resumes_with_value);
    ("waker idempotent", `Quick, waker_idempotent);
    ("fibers interleave", `Quick, fibers_interleave);
    ("resource FCFS", `Quick, resource_fcfs);
    ("resource parallel capacity", `Quick, resource_parallel_capacity);
    ("resource zero service", `Quick, resource_zero_service);
    ("fiber join_all", `Quick, fiber_join_all);
    ("fiber join empty", `Quick, fiber_join_empty);
    ("fiber timeout", `Quick, fiber_timeout);
    ("parallel_window bounds", `Quick, parallel_window_bounds);
    ("parallel_window order", `Quick, parallel_window_order);
    ("parallel_window zero items", `Quick, parallel_window_zero);
  ]

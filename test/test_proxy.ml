open Helpers
module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Client = Slice_workload.Client
module Obsd = Slice_storage.Obsd
module Ensemble = Slice.Ensemble
module Proxy = Slice.Proxy
module Params = Slice.Params
module Table = Slice.Table

let mk ?(storage = 4) ?(dirs = 2) ?(smallfiles = 2) ?(mirror = false) ?(policy = Params.Mkdir_switching)
    ?(io_policy = Params.Static_striping) () =
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        storage_nodes = storage;
        dir_servers = dirs;
        smallfile_servers = smallfiles;
        mirror_new_files = mirror;
        proxy_params =
          {
            Params.default with
            name_policy = policy;
            io_policy;
            threshold = (if smallfiles = 0 then 0 else 65536);
          };
      }
  in
  let host, proxy = Ensemble.add_client ens ~name:"c0" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  (ens, proxy, cl)

let pattern tag len = String.init len (fun i -> Char.chr ((tag + (i * 13)) mod 256))

let routing_classes () =
  let ens, proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "f") in
      (* small write: below threshold -> small-file server *)
      ignore (ok_or_fail "small write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Data "hi") ()));
      check_int "smallfile routed" 1 (Proxy.routed_to_smallfile proxy);
      (* bulk write: beyond threshold -> storage node *)
      ignore
        (ok_or_fail "bulk write"
           (Client.write_at cl fh ~off:65536L ~data:(Nfs.Synthetic 32768) ()));
      check_int "storage routed" 1 (Proxy.routed_to_storage proxy);
      check_bool "name ops routed to dirs" true (Proxy.routed_to_dir proxy >= 1);
      check_bool "all intercepted" true (Proxy.packets_intercepted proxy >= 3))

let threshold_split_data_roundtrip () =
  let ens, _proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "split") in
      (* 64 KB on the small-file server, 5 more 32 KB chunks striped over
         the storage nodes, each with a distinct pattern *)
      let small = pattern 1 65536 in
      ignore (ok_or_fail "small" (Client.write_at cl fh ~off:0L ~data:(Nfs.Data small) ()));
      for c = 0 to 4 do
        let data = pattern (10 + c) 32768 in
        ignore
          (ok_or_fail "chunk"
             (Client.write_at cl fh
                ~off:(Int64.of_int (65536 + (c * 32768)))
                ~data:(Nfs.Data data) ()))
      done;
      ignore (ok_or_fail "commit" (Client.commit cl fh));
      (* read everything back through the µproxy *)
      (match ok_or_fail "read small" (Client.read_at cl fh ~off:0L ~count:65536) with
      | Nfs.Data d, _ -> check_bool "small part intact" true (d = small)
      | _ -> Alcotest.fail "small part went synthetic");
      for c = 0 to 4 do
        match
          ok_or_fail "read chunk"
            (Client.read_at cl fh ~off:(Int64.of_int (65536 + (c * 32768))) ~count:32768)
        with
        | Nfs.Data d, _ -> check_bool "chunk intact" true (d = pattern (10 + c) 32768)
        | _ -> Alcotest.fail "chunk went synthetic"
      done)

let striping_spreads_chunks () =
  let ens, _proxy, cl = mk ~smallfiles:0 () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "wide") in
      Client.sequential_write cl fh ~bytes:(Int64.of_int (32768 * 16));
      (* every storage node holds part of the file *)
      Array.iter
        (fun node -> check_bool "node has data" true (Obsd.object_size node fh <> None))
        (Ensemble.storage ens))

let eof_patched_for_split_file () =
  let ens, proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "big") in
      (* 128 KB file: small-file server holds the first 64 KB and would
         claim EOF at its boundary *)
      Client.sequential_write cl fh ~bytes:131072L;
      (match ok_or_fail "read at 32K" (Client.read_at cl fh ~off:32768L ~count:32768) with
      | _, eof -> check_bool "no EOF at small-file boundary" false eof);
      (match ok_or_fail "read at end" (Client.read_at cl fh ~off:98304L ~count:32768) with
      | _, eof -> check_bool "EOF at true end" true eof);
      check_bool "attrs were patched in flight" true (Proxy.attr_patches proxy > 0))

let attr_writeback_on_commit () =
  let ens, proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "wb") in
      Client.sequential_write cl fh ~bytes:100_000L;
      check_bool "commit orchestrated" true (Proxy.commits_orchestrated proxy >= 1);
      check_bool "writeback happened" true (Proxy.attr_writebacks proxy >= 1);
      (* after commit, the directory server's authoritative size is
         current; a fresh getattr shows it *)
      match ok_or_fail "getattr" (Client.getattr cl fh) with
      | a -> check_bool "size pushed to dir server" true (a.Nfs.size = 100_000L))

let mirrored_write_both_replicas () =
  let ens, proxy, cl = mk ~mirror:true ~smallfiles:0 () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "m") in
      check_bool "fh carries mirror flag" true fh.Fh.mirrored;
      Client.sequential_write cl fh ~bytes:(Int64.of_int (32768 * 8));
      check_bool "writes duplicated" true (Proxy.mirror_duplicates proxy >= 8);
      check_bool "intent opened" true (Proxy.intents_opened proxy >= 1);
      (* exactly two replicas hold the object *)
      let holders =
        Array.fold_left
          (fun acc node -> if Obsd.object_size node fh <> None then acc + 1 else acc)
          0 (Ensemble.storage ens)
      in
      check_int "two replicas" 2 holders;
      (* both replicas complete: intent closed at the coordinator *)
      match Ensemble.coordinator ens with
      | Some coord ->
          check_int "no pending intents" 0 (Slice_storage.Coordinator.pending_intents coord)
      | None -> Alcotest.fail "coordinator expected")

let mirrored_read_roundtrip () =
  let ens, _proxy, cl = mk ~mirror:true ~smallfiles:0 () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "mr") in
      for c = 0 to 7 do
        ignore
          (ok_or_fail "w"
             (Client.write_at cl fh ~off:(Int64.of_int (c * 32768))
                ~data:(Nfs.Data (pattern c 32768)) ()))
      done;
      ignore (ok_or_fail "commit" (Client.commit cl fh));
      (* reads alternate between mirrors; all chunks must come back right *)
      for c = 0 to 7 do
        match ok_or_fail "r" (Client.read_at cl fh ~off:(Int64.of_int (c * 32768)) ~count:32768) with
        | Nfs.Data d, _ -> check_bool "mirror read intact" true (d = pattern c 32768)
        | _ -> Alcotest.fail "synthetic"
      done)

let readdir_spans_hash_sites () =
  let ens, _proxy, cl = mk ~dirs:3 ~policy:Params.Name_hashing () in
  run_on (Ensemble.engine ens) (fun () ->
      let d, _ = ok_or_fail "mkdir" (Client.mkdir cl Ensemble.root "spread") in
      let names = List.init 30 (Printf.sprintf "entry%02d") in
      List.iter (fun n -> ignore (ok_or_fail n (Client.create_file cl d n))) names;
      (* entries hash over 3 directory servers; readdir must splice them *)
      let entries = ok_or_fail "readdir" (Client.readdir_all cl d) in
      let got = List.sort compare (List.map (fun (e : Nfs.entry) -> e.Nfs.entry_name) entries) in
      check_bool "all entries listed across sites" true (got = names);
      (* confirm they truly spanned sites *)
      let with_entries =
        Array.fold_left
          (fun acc ds -> if Slice_dir.Dirserver.entry_count ds > 0 then acc + 1 else acc)
          0 (Ensemble.dirs ens)
      in
      check_bool "entries on >1 site" true (with_entries > 1))

let name_hashing_balances () =
  let ens, proxy, cl = mk ~dirs:4 ~policy:Params.Name_hashing () in
  run_on (Ensemble.engine ens) (fun () ->
      let d, _ = ok_or_fail "mkdir" (Client.mkdir cl Ensemble.root "bal") in
      for i = 0 to 199 do
        ignore (ok_or_fail "c" (Client.create_file cl d (Printf.sprintf "x%03d" i)))
      done;
      let hist = Proxy.dir_site_histogram proxy in
      Array.iteri
        (fun i c -> check_bool (Printf.sprintf "site %d used (%d)" i c) true (c > 0))
        hist)

let stale_table_lazy_refresh () =
  (* Build the routing by hand: the proxy starts with a deliberately
     stale snapshot pointing logical site 1 at the wrong server; the
     server bounces, the proxy refreshes lazily and retries. *)
  let eng = Engine.create () in
  let net = Slice_net.Net.create eng () in
  let hosts =
    Array.init 2 (fun i -> Slice_storage.Host.create net ~name:(Printf.sprintf "d%d" i) ~disks:1 ())
  in
  let addrs = Array.map (fun (h : Slice_storage.Host.t) -> h.Slice_storage.Host.addr) hosts in
  let _dirs =
    Array.init 2 (fun i ->
        Slice_dir.Dirserver.attach hosts.(i)
          {
            Slice_dir.Dirserver.logical_id = i;
            nsites = 2;
            policy = Slice_dir.Dirserver.Name_hashing;
            resolve = (fun l -> addrs.(l mod 2));
            peer_port = 2051;
            data_sites = (fun _ -> []);
            smallfile_site = (fun _ -> None);
            coordinator = (fun _ -> None);
            mirror_new_files = false;
            cap_secret = None;
            also_owns = [];
          })
  in
  let vaddr = Slice_net.Net.add_node net ~name:"virt" in
  (* wrong table: both logical sites at server 0 *)
  let table = Table.create [| addrs.(0); addrs.(0) |] in
  let chost = Slice_storage.Host.create net ~name:"client" () in
  let proxy =
    Proxy.install chost
      ~params:{ Params.default with threshold = 0; name_policy = Params.Name_hashing }
      {
        Proxy.virtual_addr = vaddr;
        dir_table = table;
        smallfile_table = None;
        storage = None;
        coordinator = (fun () -> None);
      }
  in
  let cl = Client.create chost ~server:vaddr () in
  run_on eng (fun () ->
      (* fix the authoritative table AFTER the proxy snapshotted it *)
      Table.update table [| addrs.(0); addrs.(1) |];
      (* create names until one hashes to logical site 1 *)
      for i = 0 to 9 do
        ignore (ok_or_fail "create" (Client.create_file cl Fh.root (Printf.sprintf "n%d" i)))
      done;
      check_bool "stale bounces handled" true (Proxy.stale_bounces proxy > 0);
      check_int "client saw no errors" 0 (Client.errors cl))

let soft_state_discard_recovers () =
  let ens, proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      ignore (ok_or_fail "c1" (Client.create_file cl Ensemble.root "before"));
      Proxy.discard_soft_state proxy;
      (* correctness is preserved end-to-end: later ops just work *)
      ignore (ok_or_fail "c2" (Client.create_file cl Ensemble.root "after"));
      ignore (ok_or_fail "lookup" (Client.lookup cl Ensemble.root "before")))

let block_map_policy_roundtrip () =
  let ens, proxy, cl = mk ~smallfiles:0 ~io_policy:Params.Block_map () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "mapped") in
      for c = 0 to 7 do
        ignore
          (ok_or_fail "w"
             (Client.write_at cl fh ~off:(Int64.of_int (c * 32768))
                ~data:(Nfs.Data (pattern (40 + c) 32768)) ()))
      done;
      check_bool "map fetched from coordinator" true (Proxy.map_fetches proxy >= 1);
      for c = 0 to 7 do
        match ok_or_fail "r" (Client.read_at cl fh ~off:(Int64.of_int (c * 32768)) ~count:32768) with
        | Nfs.Data d, _ -> check_bool "mapped chunk intact" true (d = pattern (40 + c) 32768)
        | _ -> Alcotest.fail "synthetic"
      done)

let remove_cleans_data_everywhere () =
  let ens, _proxy, cl = mk () in
  let eng = Ensemble.engine ens in
  run_on eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "tmp") in
      Client.sequential_write cl fh ~bytes:200_000L;
      ignore (ok_or_fail "remove" (Client.remove cl Ensemble.root "tmp"));
      (* data removal is asynchronous through the coordinator's intention
         protocol; give it a moment *)
      Engine.sleep eng 1.0;
      Array.iter
        (fun node -> check_bool "storage data gone" true (Obsd.object_size node fh = None))
        (Ensemble.storage ens);
      let sf_files =
        Array.fold_left
          (fun acc sf -> acc + Slice_smallfile.Smallfile.file_count sf)
          0 (Ensemble.smallfiles ens)
      in
      check_int "small-file part gone" 0 sf_files)

let checksums_end_to_end () =
  (* the ultimate µproxy rewrite check: every packet that reaches an
     endpoint verifies; rewrites are checksum-neutral by construction.
     Endpoint handlers drop bad checksums, so a broken incremental update
     would surface as client timeouts/errors here. *)
  let ens, proxy, cl = mk ~mirror:false () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "ck") in
      Client.sequential_write cl fh ~bytes:150_000L;
      Client.sequential_read cl fh ~bytes:150_000L;
      check_int "no client errors" 0 (Client.errors cl);
      check_int "no retransmissions" 0 (Client.retransmissions cl);
      check_bool "replies processed" true (Proxy.replies_processed proxy > 10))

let suite =
  [
    ("routing classes", `Quick, routing_classes);
    ("threshold split data roundtrip", `Quick, threshold_split_data_roundtrip);
    ("striping spreads chunks", `Quick, striping_spreads_chunks);
    ("eof patched for split file", `Quick, eof_patched_for_split_file);
    ("attr writeback on commit", `Quick, attr_writeback_on_commit);
    ("mirrored write both replicas", `Quick, mirrored_write_both_replicas);
    ("mirrored read roundtrip", `Quick, mirrored_read_roundtrip);
    ("readdir spans hash sites", `Quick, readdir_spans_hash_sites);
    ("name hashing balances sites", `Quick, name_hashing_balances);
    ("stale table lazy refresh", `Quick, stale_table_lazy_refresh);
    ("soft state discard recovers", `Quick, soft_state_discard_recovers);
    ("block map policy roundtrip", `Quick, block_map_policy_roundtrip);
    ("remove cleans data everywhere", `Quick, remove_cleans_data_everywhere);
    ("checksums end to end", `Quick, checksums_end_to_end);
  ]

let secure_objects_capabilities () =
  (* Section 2.2: capability-sealed handles let the µproxy live outside
     the trust boundary — storage nodes verify each handle's tag. *)
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        storage_nodes = 2;
        smallfile_servers = 0;
        secure_objects = true;
        proxy_params = { Params.default with threshold = 0 };
      }
  in
  let host, _ = Ensemble.add_client ens ~name:"c0" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  run_on (Ensemble.engine ens) (fun () ->
      (* legitimate path: handle minted (and sealed) by a directory server *)
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "secret.dat") in
      check_bool "handle carries a tag" true (fh.Fh.cap <> 0L);
      ignore (ok_or_fail "write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Data (pattern 3 4096)) ()));
      (match ok_or_fail "read" (Client.read_at cl fh ~off:0L ~count:4096) with
      | Nfs.Data d, _ -> check_bool "authorized read works" true (d = pattern 3 4096)
      | _ -> Alcotest.fail "synthetic");
      (* forged handle (a compromised µproxy inventing authority): denied *)
      let forged = { fh with Fh.cap = 0L } in
      (match Client.read_at cl forged ~off:0L ~count:4096 with
      | Error Nfs.ERR_PERM -> ()
      | _ -> Alcotest.fail "forged handle must be rejected");
      (* tampered identity (reusing a valid tag for another object): denied *)
      let tampered = { fh with Fh.file_id = Int64.add fh.Fh.file_id 1L } in
      match Client.write_at cl tampered ~off:0L ~data:(Nfs.Data "evil") () with
      | Error Nfs.ERR_PERM -> ()
      | _ -> Alcotest.fail "tampered handle must be rejected")

let cap_properties =
  Helpers.qtest "capability tags: deterministic, secret- and identity-bound"
    QCheck2.Gen.(pair (string_size (int_range 1 12)) (string_size (int_range 1 12)))
    (fun (s1, s2) ->
      let fh = { Fh.root with Fh.file_id = 77L; ftype = Fh.Reg } in
      let sealed = Slice_nfs.Cap.seal ~secret:s1 fh in
      Slice_nfs.Cap.verify ~secret:s1 sealed
      && (s1 = s2 || not (Slice_nfs.Cap.verify ~secret:s2 sealed))
      && not (Slice_nfs.Cap.verify ~secret:s1 { sealed with Fh.gen = sealed.Fh.gen + 1 }))

let suite =
  suite
  @ [
      ("secure objects: capabilities", `Quick, secure_objects_capabilities);
      cap_properties;
    ]

let periodic_attr_writeback () =
  (* the µproxy's interval-driven setattr push bounds attribute drift
     without waiting for commit or eviction *)
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        storage_nodes = 2;
        proxy_params = { Params.default with attr_writeback_interval = 0.5 };
      }
  in
  let eng = Ensemble.engine ens in
  let host, proxy = Ensemble.add_client ens ~name:"c0" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  Engine.spawn eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "drifty") in
      (* uncommitted write: only the µproxy knows the new size *)
      ignore (ok_or_fail "write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic 30000) ()));
      (* wait out a timer tick plus slack: the push happens in background *)
      Engine.sleep eng 1.5;
      check_bool "interval writeback ran" true (Proxy.attr_writebacks proxy >= 1);
      match ok_or_fail "getattr" (Client.getattr cl fh) with
      | a -> check_bool "dir server saw the size" true (a.Nfs.size = 30000L));
  (* the timer keeps one event pending forever; run bounded *)
  Engine.run ~until:10.0 eng

let suite = suite @ [ ("periodic attr writeback", `Quick, periodic_attr_writeback) ]

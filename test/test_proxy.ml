open Helpers
module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Client = Slice_workload.Client
module Obsd = Slice_storage.Obsd
module Ensemble = Slice.Ensemble
module Proxy = Slice.Proxy
module Params = Slice.Params
module Table = Slice.Table

let mk ?(storage = 4) ?(dirs = 2) ?(smallfiles = 2) ?(mirror = false) ?(policy = Params.Mkdir_switching)
    ?(io_policy = Params.Static_striping) () =
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        storage_nodes = storage;
        dir_servers = dirs;
        smallfile_servers = smallfiles;
        mirror_new_files = mirror;
        proxy_params =
          {
            Params.default with
            name_policy = policy;
            io_policy;
            threshold = (if smallfiles = 0 then 0 else 65536);
          };
      }
  in
  let host, proxy = Ensemble.add_client ens ~name:"c0" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  (ens, proxy, cl)

let pattern tag len = String.init len (fun i -> Char.chr ((tag + (i * 13)) mod 256))

let routing_classes () =
  let ens, proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "f") in
      (* small write: below threshold -> small-file server *)
      ignore (ok_or_fail "small write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Data "hi") ()));
      check_int "smallfile routed" 1 (Proxy.routed_to_smallfile proxy);
      (* bulk write: beyond threshold -> storage node *)
      ignore
        (ok_or_fail "bulk write"
           (Client.write_at cl fh ~off:65536L ~data:(Nfs.Synthetic 32768) ()));
      check_int "storage routed" 1 (Proxy.routed_to_storage proxy);
      check_bool "name ops routed to dirs" true (Proxy.routed_to_dir proxy >= 1);
      check_bool "all intercepted" true (Proxy.packets_intercepted proxy >= 3))

let threshold_split_data_roundtrip () =
  let ens, _proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "split") in
      (* 64 KB on the small-file server, 5 more 32 KB chunks striped over
         the storage nodes, each with a distinct pattern *)
      let small = pattern 1 65536 in
      ignore (ok_or_fail "small" (Client.write_at cl fh ~off:0L ~data:(Nfs.Data small) ()));
      for c = 0 to 4 do
        let data = pattern (10 + c) 32768 in
        ignore
          (ok_or_fail "chunk"
             (Client.write_at cl fh
                ~off:(Int64.of_int (65536 + (c * 32768)))
                ~data:(Nfs.Data data) ()))
      done;
      ignore (ok_or_fail "commit" (Client.commit cl fh));
      (* read everything back through the µproxy *)
      (match ok_or_fail "read small" (Client.read_at cl fh ~off:0L ~count:65536) with
      | Nfs.Data d, _ -> check_bool "small part intact" true (d = small)
      | _ -> Alcotest.fail "small part went synthetic");
      for c = 0 to 4 do
        match
          ok_or_fail "read chunk"
            (Client.read_at cl fh ~off:(Int64.of_int (65536 + (c * 32768))) ~count:32768)
        with
        | Nfs.Data d, _ -> check_bool "chunk intact" true (d = pattern (10 + c) 32768)
        | _ -> Alcotest.fail "chunk went synthetic"
      done)

let striping_spreads_chunks () =
  let ens, _proxy, cl = mk ~smallfiles:0 () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "wide") in
      Client.sequential_write cl fh ~bytes:(Int64.of_int (32768 * 16));
      (* every storage node holds part of the file *)
      Array.iter
        (fun node -> check_bool "node has data" true (Obsd.object_size node fh <> None))
        (Ensemble.storage ens))

let eof_patched_for_split_file () =
  let ens, proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "big") in
      (* 128 KB file: small-file server holds the first 64 KB and would
         claim EOF at its boundary *)
      Client.sequential_write cl fh ~bytes:131072L;
      (match ok_or_fail "read at 32K" (Client.read_at cl fh ~off:32768L ~count:32768) with
      | _, eof -> check_bool "no EOF at small-file boundary" false eof);
      (match ok_or_fail "read at end" (Client.read_at cl fh ~off:98304L ~count:32768) with
      | _, eof -> check_bool "EOF at true end" true eof);
      check_bool "attrs were patched in flight" true (Proxy.attr_patches proxy > 0))

let attr_writeback_on_commit () =
  let ens, proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "wb") in
      Client.sequential_write cl fh ~bytes:100_000L;
      check_bool "commit orchestrated" true (Proxy.commits_orchestrated proxy >= 1);
      check_bool "writeback happened" true (Proxy.attr_writebacks proxy >= 1);
      (* after commit, the directory server's authoritative size is
         current; a fresh getattr shows it *)
      match ok_or_fail "getattr" (Client.getattr cl fh) with
      | a -> check_bool "size pushed to dir server" true (a.Nfs.size = 100_000L))

let mirrored_write_both_replicas () =
  let ens, proxy, cl = mk ~mirror:true ~smallfiles:0 () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "m") in
      check_bool "fh carries mirror flag" true fh.Fh.mirrored;
      Client.sequential_write cl fh ~bytes:(Int64.of_int (32768 * 8));
      check_bool "writes duplicated" true (Proxy.mirror_duplicates proxy >= 8);
      check_bool "intent opened" true (Proxy.intents_opened proxy >= 1);
      (* exactly two replicas hold the object *)
      let holders =
        Array.fold_left
          (fun acc node -> if Obsd.object_size node fh <> None then acc + 1 else acc)
          0 (Ensemble.storage ens)
      in
      check_int "two replicas" 2 holders;
      (* both replicas complete: intent closed at the coordinator *)
      match Ensemble.coordinator ens with
      | Some coord ->
          check_int "no pending intents" 0 (Slice_storage.Coordinator.pending_intents coord)
      | None -> Alcotest.fail "coordinator expected")

let mirrored_read_roundtrip () =
  let ens, _proxy, cl = mk ~mirror:true ~smallfiles:0 () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "mr") in
      for c = 0 to 7 do
        ignore
          (ok_or_fail "w"
             (Client.write_at cl fh ~off:(Int64.of_int (c * 32768))
                ~data:(Nfs.Data (pattern c 32768)) ()))
      done;
      ignore (ok_or_fail "commit" (Client.commit cl fh));
      (* reads alternate between mirrors; all chunks must come back right *)
      for c = 0 to 7 do
        match ok_or_fail "r" (Client.read_at cl fh ~off:(Int64.of_int (c * 32768)) ~count:32768) with
        | Nfs.Data d, _ -> check_bool "mirror read intact" true (d = pattern c 32768)
        | _ -> Alcotest.fail "synthetic"
      done)

let readdir_spans_hash_sites () =
  let ens, _proxy, cl = mk ~dirs:3 ~policy:Params.Name_hashing () in
  run_on (Ensemble.engine ens) (fun () ->
      let d, _ = ok_or_fail "mkdir" (Client.mkdir cl Ensemble.root "spread") in
      let names = List.init 30 (Printf.sprintf "entry%02d") in
      List.iter (fun n -> ignore (ok_or_fail n (Client.create_file cl d n))) names;
      (* entries hash over 3 directory servers; readdir must splice them *)
      let entries = ok_or_fail "readdir" (Client.readdir_all cl d) in
      let got = List.sort compare (List.map (fun (e : Nfs.entry) -> e.Nfs.entry_name) entries) in
      check_bool "all entries listed across sites" true (got = names);
      (* confirm they truly spanned sites *)
      let with_entries =
        Array.fold_left
          (fun acc ds -> if Slice_dir.Dirserver.entry_count ds > 0 then acc + 1 else acc)
          0 (Ensemble.dirs ens)
      in
      check_bool "entries on >1 site" true (with_entries > 1))

let name_hashing_balances () =
  let ens, proxy, cl = mk ~dirs:4 ~policy:Params.Name_hashing () in
  run_on (Ensemble.engine ens) (fun () ->
      let d, _ = ok_or_fail "mkdir" (Client.mkdir cl Ensemble.root "bal") in
      for i = 0 to 199 do
        ignore (ok_or_fail "c" (Client.create_file cl d (Printf.sprintf "x%03d" i)))
      done;
      let hist = Proxy.dir_site_histogram proxy in
      Array.iteri
        (fun i c -> check_bool (Printf.sprintf "site %d used (%d)" i c) true (c > 0))
        hist)

let stale_table_lazy_refresh () =
  (* Build the routing by hand: the proxy starts with a deliberately
     stale snapshot pointing logical site 1 at the wrong server; the
     server bounces, the proxy refreshes lazily and retries. *)
  let eng = Engine.create () in
  let net = Slice_net.Net.create eng () in
  let hosts =
    Array.init 2 (fun i -> Slice_storage.Host.create net ~name:(Printf.sprintf "d%d" i) ~disks:1 ())
  in
  let addrs = Array.map (fun (h : Slice_storage.Host.t) -> h.Slice_storage.Host.addr) hosts in
  let _dirs =
    Array.init 2 (fun i ->
        Slice_dir.Dirserver.attach hosts.(i)
          {
            Slice_dir.Dirserver.logical_id = i;
            nsites = 2;
            policy = Slice_dir.Dirserver.Name_hashing;
            resolve = (fun l -> addrs.(l mod 2));
            peer_port = 2051;
            data_sites = (fun _ -> []);
            smallfile_site = (fun _ -> None);
            coordinator = (fun _ -> None);
            mirror_new_files = false;
            cap_secret = None;
            also_owns = [];
          })
  in
  let vaddr = Slice_net.Net.add_node net ~name:"virt" in
  (* wrong table: both logical sites at server 0 *)
  let table = Table.create [| addrs.(0); addrs.(0) |] in
  let chost = Slice_storage.Host.create net ~name:"client" () in
  let proxy =
    Proxy.install chost
      ~params:{ Params.default with threshold = 0; name_policy = Params.Name_hashing }
      {
        Proxy.virtual_addr = vaddr;
        dir_table = table;
        smallfile_table = None;
        storage = None;
        coordinator = (fun () -> None);
      }
  in
  let cl = Client.create chost ~server:vaddr () in
  run_on eng (fun () ->
      (* fix the authoritative table AFTER the proxy snapshotted it *)
      Table.update table [| addrs.(0); addrs.(1) |];
      (* create names until one hashes to logical site 1 *)
      for i = 0 to 9 do
        ignore (ok_or_fail "create" (Client.create_file cl Fh.root (Printf.sprintf "n%d" i)))
      done;
      check_bool "stale bounces handled" true (Proxy.stale_bounces proxy > 0);
      check_int "client saw no errors" 0 (Client.errors cl))

let soft_state_discard_recovers () =
  let ens, proxy, cl = mk () in
  run_on (Ensemble.engine ens) (fun () ->
      ignore (ok_or_fail "c1" (Client.create_file cl Ensemble.root "before"));
      Proxy.discard_soft_state proxy;
      (* correctness is preserved end-to-end: later ops just work *)
      ignore (ok_or_fail "c2" (Client.create_file cl Ensemble.root "after"));
      ignore (ok_or_fail "lookup" (Client.lookup cl Ensemble.root "before")))

let block_map_policy_roundtrip () =
  let ens, proxy, cl = mk ~smallfiles:0 ~io_policy:Params.Block_map () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "mapped") in
      for c = 0 to 7 do
        ignore
          (ok_or_fail "w"
             (Client.write_at cl fh ~off:(Int64.of_int (c * 32768))
                ~data:(Nfs.Data (pattern (40 + c) 32768)) ()))
      done;
      check_bool "map fetched from coordinator" true (Proxy.map_fetches proxy >= 1);
      for c = 0 to 7 do
        match ok_or_fail "r" (Client.read_at cl fh ~off:(Int64.of_int (c * 32768)) ~count:32768) with
        | Nfs.Data d, _ -> check_bool "mapped chunk intact" true (d = pattern (40 + c) 32768)
        | _ -> Alcotest.fail "synthetic"
      done)

let remove_cleans_data_everywhere () =
  let ens, _proxy, cl = mk () in
  let eng = Ensemble.engine ens in
  run_on eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "tmp") in
      Client.sequential_write cl fh ~bytes:200_000L;
      ignore (ok_or_fail "remove" (Client.remove cl Ensemble.root "tmp"));
      (* data removal is asynchronous through the coordinator's intention
         protocol; give it a moment *)
      Engine.sleep eng 1.0;
      Array.iter
        (fun node -> check_bool "storage data gone" true (Obsd.object_size node fh = None))
        (Ensemble.storage ens);
      let sf_files =
        Array.fold_left
          (fun acc sf -> acc + Slice_smallfile.Smallfile.file_count sf)
          0 (Ensemble.smallfiles ens)
      in
      check_int "small-file part gone" 0 sf_files)

let checksums_end_to_end () =
  (* the ultimate µproxy rewrite check: every packet that reaches an
     endpoint verifies; rewrites are checksum-neutral by construction.
     Endpoint handlers drop bad checksums, so a broken incremental update
     would surface as client timeouts/errors here. *)
  let ens, proxy, cl = mk ~mirror:false () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "ck") in
      Client.sequential_write cl fh ~bytes:150_000L;
      Client.sequential_read cl fh ~bytes:150_000L;
      check_int "no client errors" 0 (Client.errors cl);
      check_int "no retransmissions" 0 (Client.retransmissions cl);
      check_bool "replies processed" true (Proxy.replies_processed proxy > 10))

let suite =
  [
    ("routing classes", `Quick, routing_classes);
    ("threshold split data roundtrip", `Quick, threshold_split_data_roundtrip);
    ("striping spreads chunks", `Quick, striping_spreads_chunks);
    ("eof patched for split file", `Quick, eof_patched_for_split_file);
    ("attr writeback on commit", `Quick, attr_writeback_on_commit);
    ("mirrored write both replicas", `Quick, mirrored_write_both_replicas);
    ("mirrored read roundtrip", `Quick, mirrored_read_roundtrip);
    ("readdir spans hash sites", `Quick, readdir_spans_hash_sites);
    ("name hashing balances sites", `Quick, name_hashing_balances);
    ("stale table lazy refresh", `Quick, stale_table_lazy_refresh);
    ("soft state discard recovers", `Quick, soft_state_discard_recovers);
    ("block map policy roundtrip", `Quick, block_map_policy_roundtrip);
    ("remove cleans data everywhere", `Quick, remove_cleans_data_everywhere);
    ("checksums end to end", `Quick, checksums_end_to_end);
  ]

let secure_objects_capabilities () =
  (* Section 2.2: capability-sealed handles let the µproxy live outside
     the trust boundary — storage nodes verify each handle's tag. *)
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        storage_nodes = 2;
        smallfile_servers = 0;
        secure_objects = true;
        proxy_params = { Params.default with threshold = 0 };
      }
  in
  let host, _ = Ensemble.add_client ens ~name:"c0" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  run_on (Ensemble.engine ens) (fun () ->
      (* legitimate path: handle minted (and sealed) by a directory server *)
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "secret.dat") in
      check_bool "handle carries a tag" true (fh.Fh.cap <> 0L);
      ignore (ok_or_fail "write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Data (pattern 3 4096)) ()));
      (match ok_or_fail "read" (Client.read_at cl fh ~off:0L ~count:4096) with
      | Nfs.Data d, _ -> check_bool "authorized read works" true (d = pattern 3 4096)
      | _ -> Alcotest.fail "synthetic");
      (* forged handle (a compromised µproxy inventing authority): denied *)
      let forged = { fh with Fh.cap = 0L } in
      (match Client.read_at cl forged ~off:0L ~count:4096 with
      | Error Nfs.ERR_PERM -> ()
      | _ -> Alcotest.fail "forged handle must be rejected");
      (* tampered identity (reusing a valid tag for another object): denied *)
      let tampered = { fh with Fh.file_id = Int64.add fh.Fh.file_id 1L } in
      match Client.write_at cl tampered ~off:0L ~data:(Nfs.Data "evil") () with
      | Error Nfs.ERR_PERM -> ()
      | _ -> Alcotest.fail "tampered handle must be rejected")

let cap_properties =
  Helpers.qtest "capability tags: deterministic, secret- and identity-bound"
    QCheck2.Gen.(pair (string_size (int_range 1 12)) (string_size (int_range 1 12)))
    (fun (s1, s2) ->
      let fh = { Fh.root with Fh.file_id = 77L; ftype = Fh.Reg } in
      let sealed = Slice_nfs.Cap.seal ~secret:s1 fh in
      Slice_nfs.Cap.verify ~secret:s1 sealed
      && (s1 = s2 || not (Slice_nfs.Cap.verify ~secret:s2 sealed))
      && not (Slice_nfs.Cap.verify ~secret:s1 { sealed with Fh.gen = sealed.Fh.gen + 1 }))

let suite =
  suite
  @ [
      ("secure objects: capabilities", `Quick, secure_objects_capabilities);
      cap_properties;
    ]

let periodic_attr_writeback () =
  (* the µproxy's interval-driven setattr push bounds attribute drift
     without waiting for commit or eviction *)
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        storage_nodes = 2;
        proxy_params = { Params.default with attr_writeback_interval = 0.5 };
      }
  in
  let eng = Ensemble.engine ens in
  let host, proxy = Ensemble.add_client ens ~name:"c0" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  Engine.spawn eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "drifty") in
      (* uncommitted write: only the µproxy knows the new size *)
      ignore (ok_or_fail "write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic 30000) ()));
      (* wait out a timer tick plus slack: the push happens in background *)
      Engine.sleep eng 1.5;
      check_bool "interval writeback ran" true (Proxy.attr_writebacks proxy >= 1);
      match ok_or_fail "getattr" (Client.getattr cl fh) with
      | a -> check_bool "dir server saw the size" true (a.Nfs.size = 30000L));
  (* the timer keeps one event pending forever; run bounded *)
  Engine.run ~until:10.0 eng

let suite = suite @ [ ("periodic attr writeback", `Quick, periodic_attr_writeback) ]

(* ---- zero-allocation packet path (PR 9) ---- *)

module Codec = Slice_nfs.Codec
module Packet = Slice_net.Packet
module Cksum = Slice_net.Cksum
module Routekey = Slice_nfs.Routekey
module Net = Slice_net.Net
module Host = Slice_storage.Host

let reg_fh i =
  { Fh.file_id = Int64.of_int (1000 + i); gen = 1; ftype = Fh.Reg; mirrored = false;
    attr_site = 0; cap = 0L }

(* The decode -> classify -> rewrite -> checksum-patch core, composed
   from the library primitives the µproxy uses, must allocate exactly
   zero words per packet. Measured over 1024 iterations: any single
   boxed value per packet would show up as >= 1024 words. *)
let packet_core_allocates_nothing () =
  let fh = reg_fh 0 in
  let read_buf = Codec.encode_call ~xid:42 (Nfs.Read (fh, 131072L, 8192)) in
  let pristine = Bytes.copy read_buf in
  let lookup_buf = Codec.encode_call ~xid:43 (Nfs.Lookup (fh, "a_component")) in
  let pkt = Packet.make ~src:1 ~dst:2 ~sport:9 ~dport:2049 read_buf in
  let cur = Codec.cursor () in
  let scr8 = Bytes.create 8 in
  let scratch = Bytes.create 64 in
  let step () =
    Bytes.blit pristine 0 read_buf 0 (Bytes.length pristine);
    check_bool "read peeks" true (Codec.peek_call_into cur read_buf);
    let off = cur.Codec.c_offset in
    let site =
      Routekey.stripe_site_at ~nsites:4 ~stripe_unit:32768 read_buf ~off:cur.Codec.c_fh_off off
    in
    Codec.put_u64_be scr8
      (Routekey.site_offset_int ~site (Routekey.local_offset_int ~nsites:4 ~stripe_unit:32768 off));
    Cksum.patch_payload_bytes pkt ~off:cur.Codec.c_off_field scr8 ~spos:0 ~len:8;
    Cksum.rewrite_dst pkt ((site + 3) land 0xFF);
    check_bool "lookup peeks" true (Codec.peek_call_into cur lookup_buf);
    ignore
      (Routekey.name_site_at ~nsites:4 ~scratch lookup_buf ~fh_off:cur.Codec.c_fh_off
         ~name_off:cur.Codec.c_name_off ~name_len:cur.Codec.c_name_len)
  in
  let silent () =
    Bytes.blit pristine 0 read_buf 0 (Bytes.length pristine);
    ignore (Codec.peek_call_into cur read_buf);
    let off = cur.Codec.c_offset in
    let site =
      Routekey.stripe_site_at ~nsites:4 ~stripe_unit:32768 read_buf ~off:cur.Codec.c_fh_off off
    in
    Codec.put_u64_be scr8
      (Routekey.site_offset_int ~site (Routekey.local_offset_int ~nsites:4 ~stripe_unit:32768 off));
    Cksum.patch_payload_bytes pkt ~off:cur.Codec.c_off_field scr8 ~spos:0 ~len:8;
    Cksum.rewrite_dst pkt ((site + 3) land 0xFF);
    ignore (Codec.peek_call_into cur lookup_buf);
    ignore
      (Routekey.name_site_at ~nsites:4 ~scratch lookup_buf ~fh_off:cur.Codec.c_fh_off
         ~name_off:cur.Codec.c_name_off ~name_len:cur.Codec.c_name_len)
  in
  step ();
  (* correctness once with assertions, then the measured silent loop *)
  for _ = 1 to 64 do
    silent ()
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1024 do
    silent ()
  done;
  let dw = Gc.minor_words () -. w0 in
  check_bool (Printf.sprintf "core allocates 0 words/packet (saw %.3f total)" dw) true
    (dw < 1024.0)

(* Random truncation and byte corruption of well-formed calls: the
   cursor peek must return a bool — never raise, never read out of
   bounds — and a successful peek must leave every recorded span inside
   the buffer. *)
let gen_fuzz_case =
  QCheck2.Gen.(
    let call =
      oneof
        [
          return (Nfs.Lookup (reg_fh 1, "some_name"));
          return (Nfs.Getattr (reg_fh 2));
          return (Nfs.Read (reg_fh 3, 65536L, 8192));
          return (Nfs.Write (reg_fh 4, 32768L, Nfs.Unstable, Nfs.Synthetic 4096));
          return (Nfs.Rename (reg_fh 5, "from_name", reg_fh 6, "to_name"));
          return (Nfs.Setattr (reg_fh 7, { Nfs.sattr_empty with Nfs.set_size = Some 0L }));
          return (Nfs.Readdir (reg_fh 8, 0L, 64));
        ]
    in
    triple call (int_range 0 200) (pair (int_range 0 199) (int_range 0 255)))

let cursor_peek_fuzz =
  qtest ~count:500 "cursor peek survives truncation and corruption" gen_fuzz_case
    (fun (call, cut, (pos, byte)) ->
      let full = Codec.encode_call ~xid:77 call in
      let len = min cut (Bytes.length full) in
      let buf = Bytes.sub full 0 len in
      if len > 0 then Bytes.set buf (pos mod len) (Char.chr byte);
      let cur = Codec.cursor () in
      match Codec.peek_call_into cur buf with
      | false -> true
      | true ->
          let span off l = off >= 0 && l >= 0 && off + l <= len in
          (cur.Codec.c_fh_off < 0 || span cur.Codec.c_fh_off 32)
          && (cur.Codec.c_fh2_off < 0 || span cur.Codec.c_fh2_off 32)
          && (cur.Codec.c_name_len < 0 || span cur.Codec.c_name_off cur.Codec.c_name_len)
          && (cur.Codec.c_name2_len < 0 || span cur.Codec.c_name2_off cur.Codec.c_name2_len)
          && (cur.Codec.c_off_field < 0 || span cur.Codec.c_off_field 8))

(* Hand-built client + black-box servers, no Client machinery: lets the
   tests drive the µproxy filters with exact packets (and withhold
   replies) without RPC retransmission refreshing pending records. *)
let mk_raw ?(params_f = fun p -> p) () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let chost = Host.create net ~name:"client" () in
  let dhost = Host.create net ~name:"dir" () in
  let s0 = Host.create net ~name:"s0" () in
  let s1 = Host.create net ~name:"s1" () in
  let vaddr = Net.add_node net ~name:"virt" in
  let params =
    params_f
      {
        Params.default with
        threshold = 0;
        meta_cache_enabled = false;
        pending_sweep_interval = 0.0;
      }
  in
  let proxy =
    Proxy.install chost ~params
      {
        Proxy.virtual_addr = vaddr;
        dir_table = Table.create [| dhost.Host.addr |];
        smallfile_table = None;
        storage = Some (Table.create [| s0.Host.addr; s1.Host.addr |]);
        coordinator = (fun () -> None);
      }
  in
  (eng, net, chost, dhost, vaddr, proxy)

let call_pkt chost vaddr ~xid call =
  Packet.make ~src:chost.Host.addr ~dst:vaddr ~sport:1000 ~dport:2049
    (Codec.encode_call ~xid call)

let reply_pkt dhost chost ~xid resp =
  Packet.make ~src:dhost.Host.addr ~dst:chost.Host.addr ~sport:2049 ~dport:1000
    (Codec.encode_reply ~xid resp)

let sfs_mix i =
  let fh = reg_fh (i mod 8) in
  let attr = Nfs.default_attr ~ftype:Fh.Reg ~fileid:fh.Fh.file_id ~now:0.0 in
  match i mod 5 with
  | 0 -> (Nfs.Lookup (Fh.root, Printf.sprintf "f%d" (i mod 8)), Ok (Nfs.RLookup (fh, attr)))
  | 1 -> (Nfs.Getattr fh, Ok (Nfs.RGetattr attr))
  | 2 -> (Nfs.Access (fh, 1), Ok (Nfs.RAccess (1, attr)))
  | 3 ->
      ( Nfs.Read (fh, Int64.of_int (i mod 32 * 8192), 8192),
        Ok (Nfs.RRead (Nfs.Synthetic 8192, false, attr)) )
  | _ ->
      ( Nfs.Write (fh, Int64.of_int (i mod 32 * 8192), Nfs.Unstable, Nfs.Synthetic 4096),
        Ok (Nfs.RWrite (4096, Nfs.Unstable, attr)) )

(* Steady-state interception through the full installed µproxy — filters,
   pending pool, forwarding, reply patching — stays under the packet-path
   allocation budget (meta fast path off). The pre-PR baseline was ~6000
   words/packet; the pooled path must hold under 64. *)
let packet_path_words_budget () =
  let eng, net, chost, dhost, vaddr, proxy = mk_raw () in
  let n = 512 in
  let calls = Array.init n (fun i -> fst (sfs_mix i)) in
  let pkts = Array.map (fun c -> call_pkt chost vaddr ~xid:0 c) calls in
  let replies = Array.init n (fun i -> snd (sfs_mix i)) in
  (* distinct xids, far from the proxy's own RPC stream *)
  Array.iteri
    (fun i _ ->
      let xid = 0x100000 + i in
      pkts.(i) <- call_pkt chost vaddr ~xid calls.(i))
    pkts;
  let rpkts = Array.init n (fun i -> reply_pkt dhost chost ~xid:(0x100000 + i) replies.(i)) in
  let batch = 64 in
  let run_batch b =
    run_on eng (fun () ->
        for i = b * batch to ((b + 1) * batch) - 1 do
          Net.send net pkts.(i)
        done);
    run_on eng (fun () ->
        for i = b * batch to ((b + 1) * batch) - 1 do
          Net.send net rpkts.(i)
        done)
  in
  (* warm-up batch: pool buffers and cache entries reach steady state *)
  run_batch 0;
  let before_req = Proxy.packets_intercepted proxy and before_rep = Proxy.replies_processed proxy in
  let w0 = Gc.minor_words () in
  for b = 1 to (n / batch) - 1 do
    run_batch b
  done;
  let dw = Gc.minor_words () -. w0 in
  let packets =
    Proxy.packets_intercepted proxy - before_req + (Proxy.replies_processed proxy - before_rep)
  in
  check_bool "measured packets flowed" true (packets >= 2 * (n - batch) - 2);
  let wpp = dw /. float_of_int packets in
  check_bool (Printf.sprintf "words/packet %.1f under budget 64" wpp) true (wpp < 64.0);
  check_int "every pending record released" 0 (Proxy.pending_size proxy)

(* A retransmitted xid supersedes its pending record in place; the one
   reply then settles the slot and the pool returns to empty. *)
let retransmit_supersedes_pending () =
  let eng, net, chost, dhost, vaddr, proxy = mk_raw () in
  let call, resp = sfs_mix 1 in
  run_on eng (fun () -> Net.send net (call_pkt chost vaddr ~xid:0x7777 call));
  check_int "one pending" 1 (Proxy.pending_size proxy);
  run_on eng (fun () -> Net.send net (call_pkt chost vaddr ~xid:0x7777 call));
  check_int "retransmit reuses the record" 1 (Proxy.pending_size proxy);
  run_on eng (fun () -> Net.send net (reply_pkt dhost chost ~xid:0x7777 resp));
  check_int "reply settles the slot" 0 (Proxy.pending_size proxy);
  check_int "exactly one reply processed" 1 (Proxy.replies_processed proxy)

(* Abandoned records expire via the sweep even when slots were freed and
   reused out of xid order first (exercises the sorted expiry scan and
   the backward-shift index deletes), and the pool keeps working after. *)
let pending_expiry_reclaims_pool () =
  let eng, net, chost, dhost, vaddr, proxy =
    mk_raw ~params_f:(fun p -> { p with Params.pending_sweep_interval = 0.05; pending_expiry = 0.2 }) ()
  in
  let send_call i = Net.send net (call_pkt chost vaddr ~xid:(0x9000 + i) (fst (sfs_mix i))) in
  let send_reply i = Net.send net (reply_pkt dhost chost ~xid:(0x9000 + i) (snd (sfs_mix i))) in
  (* one fiber with simulated-time pauses: the sweep runs while records
     are live, so draining the engine between steps would expire them *)
  run_on eng (fun () ->
      for i = 0 to 9 do
        send_call i
      done;
      Engine.sleep eng 0.02;
      (* free a few slots out of order, then refill them with fresh xids *)
      send_reply 7;
      send_reply 2;
      send_reply 5;
      Engine.sleep eng 0.02;
      for i = 10 to 12 do
        send_call i
      done;
      Engine.sleep eng 0.02;
      check_int "ten in flight" 10 (Proxy.pending_size proxy);
      (* nobody replies: the sweep must reclaim all of them *)
      Engine.sleep eng 2.0;
      check_int "all abandoned records expired" 10 (Proxy.expired_pending proxy);
      check_int "pool empty" 0 (Proxy.pending_size proxy);
      (* the pool still cycles correctly after a full expiry pass *)
      send_call 20;
      Engine.sleep eng 0.02;
      send_reply 20;
      Engine.sleep eng 0.02;
      check_int "pool reusable after expiry" 0 (Proxy.pending_size proxy))

let suite =
  suite
  @ [
      ("packet core allocates nothing", `Quick, packet_core_allocates_nothing);
      cursor_peek_fuzz;
      ("packet path words budget", `Quick, packet_path_words_budget);
      ("retransmit supersedes pending", `Quick, retransmit_supersedes_pending);
      ("pending expiry reclaims pool", `Quick, pending_expiry_reclaims_pool);
    ]

open Helpers
module Heap = Slice_util.Heap
module Prng = Slice_util.Prng
module Stats = Slice_util.Stats
module Lru = Slice_util.Lru
module Json = Slice_util.Json

(* ---- Heap ---- *)

let heap_basic () =
  let h = Heap.create ~cmp:compare in
  check_bool "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  check_int "length" 6 (Heap.length h);
  check_int "peek min" 1 (Option.get (Heap.peek h));
  check_int "pop 1" 1 (Heap.pop_exn h);
  check_int "pop 2" 2 (Heap.pop_exn h);
  Heap.push h 0;
  check_int "pop 0" 0 (Heap.pop_exn h);
  check_int "length after" 4 (Heap.length h)

let heap_pop_empty () =
  let h = Heap.create ~cmp:compare in
  check_bool "pop none" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty") (fun () ->
      ignore (Heap.pop_exn h))

let heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let heap_sorts =
  qtest "heap yields sorted order" QCheck2.Gen.(list int) (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

let heap_interleaved =
  qtest "heap min under interleaved push/pop"
    QCheck2.Gen.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Heap.push h v;
            model := List.sort compare (v :: !model);
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some x, m :: rest ->
                model := rest;
                x = m
            | _ -> false)
        ops)

(* ---- Prng ---- *)

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.int64 a = Prng.int64 b)
  done

let prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let prng_int_range =
  qtest "int in range" QCheck2.Gen.(pair int (int_range 1 1000)) (fun (seed, bound) ->
      let p = Prng.create seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let prng_float_range =
  qtest "float in range" QCheck2.Gen.int (fun seed ->
      let p = Prng.create seed in
      let v = Prng.float p 3.5 in
      v >= 0.0 && v < 3.5)

let prng_weighted () =
  let p = Prng.create 7 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.weighted p [| (1.0, `A); (2.0, `B); (7.0, `C) |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  check_bool "A ~10%" true (abs (get `A - 1000) < 250);
  check_bool "B ~20%" true (abs (get `B - 2000) < 350);
  check_bool "C ~70%" true (abs (get `C - 7000) < 500)

let prng_exponential () =
  let p = Prng.create 9 in
  let total = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Prng.exponential p 2.0 in
    check_bool "non-negative" true (v >= 0.0);
    total := !total +. v
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean near 2.0" true (Float.abs (mean -. 2.0) < 0.1)

let prng_shuffle_permutes =
  qtest "shuffle permutes" QCheck2.Gen.(pair int (list int)) (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Prng.shuffle (Prng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* ---- Stats ---- *)

let stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "min" 1.0 (Stats.min s);
  check_float "max" 4.0 (Stats.max s);
  check_float "sum" 10.0 (Stats.sum s);
  check_float_eps 1e-6 "stddev" 1.1180339887 (Stats.stddev s)

let stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check_float "p50" 50.0 (Stats.percentile s 50.0);
  check_float "p95" 95.0 (Stats.percentile s 95.0);
  check_float "p100" 100.0 (Stats.percentile s 100.0)

let stats_empty () =
  let s = Stats.create () in
  check_float "mean empty" 0.0 (Stats.mean s);
  check_float "percentile empty" 0.0 (Stats.percentile s 50.0)

let stats_merge =
  qtest "merge pools samples"
    QCheck2.Gen.(pair (list (float_range 0. 100.)) (list (float_range 0. 100.)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      let m = Stats.merge a b in
      Stats.count m = List.length xs + List.length ys
      && Float.abs (Stats.sum m -. (Stats.sum a +. Stats.sum b)) < 1e-6)

let counter_rate () =
  let c = Stats.Counter.create () in
  Stats.Counter.add c 10;
  Stats.Counter.incr c;
  check_int "count" 11 (Stats.Counter.get c);
  check_float "rate" 5.5 (Stats.Counter.rate c ~elapsed:2.0);
  check_float "rate zero elapsed" 0.0 (Stats.Counter.rate c ~elapsed:0.0)

let histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; 15.0; -1.0 ];
  check_int "bucket 0" 2 (Stats.Histogram.bucket_count h 0) (* 0.5 and clamped -1.0 *);
  check_int "bucket 1" 2 (Stats.Histogram.bucket_count h 1);
  check_int "overflow" 1 (Stats.Histogram.bucket_count h 10);
  check_int "total" 6 (Stats.Histogram.total h);
  check_bool "render nonempty" true (String.length (Stats.Histogram.render h) > 0)

(* ---- Lru ---- *)

let lru_basic () =
  let l = Lru.create ~capacity:3 () in
  Lru.add l 1 "a";
  Lru.add l 2 "b";
  Lru.add l 3 "c";
  check_bool "find 1" true (Lru.find l 1 = Some "a");
  (* 1 is now MRU; adding 4 evicts 2 *)
  Lru.add l 4 "d";
  check_bool "2 evicted" true (Lru.find l 2 = None);
  check_bool "1 kept" true (Lru.find l 1 = Some "a");
  check_int "entries" 3 (Lru.entry_count l)

let lru_eviction_callback () =
  let evicted = ref [] in
  let l = Lru.create ~on_evict:(fun k v -> evicted := (k, v) :: !evicted) ~capacity:2 () in
  Lru.add l 1 "a";
  Lru.add l 2 "b";
  Lru.add l 3 "c";
  check_bool "evicted (1,a)" true (!evicted = [ (1, "a") ]);
  Lru.remove l 2;
  check_bool "remove is silent" true (List.length !evicted = 1);
  Lru.flush l;
  check_int "flush fires callbacks" 2 (List.length !evicted)

let lru_replace_fires_evict () =
  let evicted = ref [] in
  let l = Lru.create ~on_evict:(fun k v -> evicted := (k, v) :: !evicted) ~capacity:4 () in
  Lru.add l 1 "a";
  Lru.add l 2 "b";
  (* replacing a live key displaces its old value just like pressure
     does — the hook must see it (else a dirty entry loses write-back) *)
  Lru.add l 1 "a2";
  check_bool "replace fired on_evict with old value" true (!evicted = [ (1, "a") ]);
  check_bool "new value visible" true (Lru.find l 1 = Some "a2");
  check_int "no duplicate entry" 2 (Lru.entry_count l)

let lru_weights () =
  let l = Lru.create ~capacity:100 () in
  Lru.add l 1 "x" ~weight:60;
  Lru.add l 2 "y" ~weight:30;
  check_int "size" 90 (Lru.size l);
  Lru.add l 3 "z" ~weight:40;
  (* 60+30+40 > 100: LRU (key 1) evicted *)
  check_bool "1 evicted" true (Lru.find l 1 = None);
  check_int "size after" 70 (Lru.size l)

let lru_replace () =
  let l = Lru.create ~capacity:10 () in
  Lru.add l 1 "a" ~weight:4;
  Lru.add l 1 "b" ~weight:6;
  check_int "replaced weight" 6 (Lru.size l);
  check_bool "value updated" true (Lru.find l 1 = Some "b");
  check_int "one entry" 1 (Lru.entry_count l)

let lru_mem_no_promote () =
  let l = Lru.create ~capacity:2 () in
  Lru.add l 1 "a";
  Lru.add l 2 "b";
  check_bool "mem" true (Lru.mem l 1);
  (* mem must not promote: 1 is still LRU and gets evicted *)
  Lru.add l 3 "c";
  check_bool "1 evicted despite mem" true (Lru.find l 1 = None)

let lru_model =
  qtest ~count:100 "lru matches model"
    QCheck2.Gen.(list (pair (int_range 0 10) (int_range 0 2)))
    (fun ops ->
      (* model: list of keys, MRU first, capacity 4 *)
      let l = Lru.create ~capacity:4 () in
      let model = ref [] in
      List.for_all
        (fun (k, op) ->
          match op with
          | 0 ->
              Lru.add l k k;
              model := k :: List.filter (( <> ) k) !model;
              if List.length !model > 4 then
                model := List.filteri (fun i _ -> i < 4) !model;
              true
          | 1 ->
              let expect = List.mem k !model in
              let got = Lru.find l k <> None in
              if got then model := k :: List.filter (( <> ) k) !model;
              expect = got
          | _ ->
              Lru.remove l k;
              model := List.filter (( <> ) k) !model;
              true)
        ops)

(* ---- lease-aware lookup (the metadata cache's TTL machinery) ---- *)

let lru_find_ttl () =
  let evicted = ref [] in
  let l = Lru.create ~capacity:8 ~on_evict:(fun k _ -> evicted := k :: !evicted) () in
  Lru.add l ~expires_at:5.0 "leased" 1;
  Lru.add l "forever" 2;
  (match Lru.find_ttl l "leased" ~now:4.9 with
  | Lru.Fresh v -> check_int "fresh within lease" 1 v
  | _ -> Alcotest.fail "expected Fresh");
  (match Lru.find_ttl l "leased" ~now:5.0 with
  | Lru.Stale -> ()
  | _ -> Alcotest.fail "expected Stale at expiry");
  (* expiry removed the entry silently: no eviction callback, and a
     re-probe is a Miss, not Stale again *)
  check_bool "no on_evict for lease expiry" true (!evicted = []);
  (match Lru.find_ttl l "leased" ~now:5.0 with
  | Lru.Miss -> ()
  | _ -> Alcotest.fail "expected Miss after expiry removal");
  check_int "expired entry no longer counted" 1 (Lru.entry_count l);
  (match Lru.find_ttl l "forever" ~now:1e12 with
  | Lru.Fresh v -> check_int "default lease is infinite" 2 v
  | _ -> Alcotest.fail "expected Fresh");
  (* the plain interface ignores leases entirely *)
  Lru.add l ~expires_at:0.5 "old" 3;
  check_bool "plain find ignores lease" true (Lru.find l "old" = Some 3)

(* ---- reservoir percentiles ---- *)

let stats_reservoir_bounded () =
  let s = Stats.create ~reservoir:100 () in
  for i = 1 to 10_000 do
    Stats.add s (float_of_int i)
  done;
  check_int "count is exact" 10_000 (Stats.count s);
  check_float "mean is exact" 5000.5 (Stats.mean s);
  (* percentiles are estimates from 100 retained samples of a uniform
     ramp: nearest-rank over the reservoir should land within a few
     percent of truth *)
  let p50 = Stats.percentile s 50.0 in
  check_bool "median estimate sane" true (p50 > 3000.0 && p50 < 7000.0);
  let p100 = Stats.percentile s 100.0 in
  check_bool "max estimate below true max" true (p100 <= 10_000.0)

let stats_reservoir_exact_under_cap =
  qtest "percentile exact when samples fit the reservoir"
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create ~reservoir:256 () in
      List.iter (Stats.add s) xs;
      let sorted = List.sort compare xs in
      let m = List.length xs in
      List.for_all
        (fun p ->
          let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int m))) in
          Stats.percentile s p = List.nth sorted (min (m - 1) (rank - 1)))
        [ 0.0; 50.0; 90.0; 99.0; 100.0 ])

let stats_merge_capped () =
  let a = Stats.create ~reservoir:64 () in
  let b = Stats.create ~reservoir:64 () in
  for i = 1 to 500 do
    Stats.add a (float_of_int i);
    Stats.add b (float_of_int (i + 500))
  done;
  let m = Stats.merge a b in
  check_int "merged count exact" 1000 (Stats.count m);
  check_float "merged mean exact" 500.5 (Stats.mean m);
  let p50 = Stats.percentile m 50.0 in
  check_bool "merged median from both halves" true (p50 > 200.0 && p50 < 800.0)

(* ---- json ---- *)

let json_roundtrip () =
  let open Json in
  let j =
    Obj
      [
        ("schema_version", Num 1.0);
        ("name", Str "bench \"smoke\"\n\ttab");
        ("neg", Num (-12.5));
        ("big", Num 1e9);
        ("flags", Arr [ Bool true; Bool false; Null ]);
        ("empty_arr", Arr []);
        ("nested", Obj [ ("k", Str "v") ]);
      ]
  in
  Alcotest.check
    (Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (to_string j)) ( = ))
    "of_string (to_string j) = j" j
    (of_string (to_string j))

let json_parse_errors () =
  List.iter
    (fun txt ->
      match Json.of_string txt with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" txt)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let json_accessors () =
  let j = Json.of_string {|{"micro": [{"name": "x", "ns_per_op": 41.5}]}|} in
  match Json.member "micro" j with
  | Some (Json.Arr [ row ]) ->
      check_bool "str accessor" true (Json.member "name" row = Some (Json.Str "x"));
      (match Json.member "ns_per_op" row with
      | Some (Json.Num n) -> check_float "num accessor" 41.5 n
      | _ -> Alcotest.fail "ns_per_op missing")
  | _ -> Alcotest.fail "micro missing"

let suite =
  [
    ("heap basic", `Quick, heap_basic);
    ("heap pop empty", `Quick, heap_pop_empty);
    ("heap clear", `Quick, heap_clear);
    heap_sorts;
    heap_interleaved;
    ("prng deterministic", `Quick, prng_deterministic);
    ("prng seeds differ", `Quick, prng_seeds_differ);
    prng_int_range;
    prng_float_range;
    ("prng weighted", `Quick, prng_weighted);
    ("prng exponential", `Quick, prng_exponential);
    prng_shuffle_permutes;
    ("stats basic", `Quick, stats_basic);
    ("stats percentile", `Quick, stats_percentile);
    ("stats empty", `Quick, stats_empty);
    stats_merge;
    ("counter rate", `Quick, counter_rate);
    ("histogram", `Quick, histogram);
    ("lru basic", `Quick, lru_basic);
    ("lru eviction callback", `Quick, lru_eviction_callback);
    ("lru replace fires evict", `Quick, lru_replace_fires_evict);
    ("lru weights", `Quick, lru_weights);
    ("lru replace", `Quick, lru_replace);
    ("lru mem does not promote", `Quick, lru_mem_no_promote);
    lru_model;
    ("lru find_ttl leases", `Quick, lru_find_ttl);
    ("stats reservoir bounded", `Quick, stats_reservoir_bounded);
    stats_reservoir_exact_under_cap;
    ("stats merge capped", `Quick, stats_merge_capped);
    ("json roundtrip", `Quick, json_roundtrip);
    ("json parse errors", `Quick, json_parse_errors);
    ("json accessors", `Quick, json_accessors);
  ]

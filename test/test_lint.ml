(* Tier-1 coverage for slicelint itself (DESIGN.md §10): each rule
   family fires on its fixture, respects its inline suppression, and the
   JSON report matches the checked-in golden byte-for-byte. Goldens are
   regenerated with `slicelint --fixtures --json <root>`. *)

open Helpers
module Driver = Slice_lint.Driver
module Config = Slice_lint.Config
module Finding = Slice_lint.Finding
module Pragma = Slice_lint.Pragma
module Typed = Slice_lint.Typed
module Json = Slice_util.Json
module Xdr = Slice_xdr.Xdr
module Codec = Slice_nfs.Codec
module Proxy = Slice.Proxy

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Config scopes and the golden reports both speak relative paths, so
   run each test from a directory containing [anchor]. Under
   `dune runtest` that is already the cwd; under `dune exec` from the
   repo root we hop into the right directory and hop back. *)
let with_cwd anchor f () =
  if Sys.file_exists anchor then f ()
  else
    let candidates =
      [ Filename.concat "_build" (Filename.concat "default" "test");
        "test"; ".."; Filename.concat ".." (Filename.concat ".." "..") ]
      @ (match Sys.getenv_opt "DUNE_SOURCEROOT" with
        | Some root -> [ root; Filename.concat root "test" ]
        | None -> [])
    in
    match List.find_opt (fun d -> Sys.file_exists (Filename.concat d anchor)) candidates with
    | None -> Alcotest.fail (anchor ^ ": not found from cwd or source root")
    | Some d ->
        let old = Sys.getcwd () in
        Sys.chdir d;
        Fun.protect ~finally:(fun () -> Sys.chdir old) f

let scan roots = Driver.scan Config.fixtures roots

(* Typed-tier scans point --cmt-dir at the fixture library's own build
   tree, so the analysis sees exactly the fixtures' .cmt files. *)
let scan_typed roots = Driver.scan ~cmt_dir:"lint_fixtures_typed" Config.fixtures roots

(* The report for a fixture root must match its golden exactly —
   messages, positions, suppression reasons and ordering included. *)
let golden ?(typed = false) name roots () =
  let report = (if typed then scan_typed else scan) roots in
  let got = Json.to_string (Driver.to_json report) ^ "\n" in
  let want = read_file ("lint_fixtures/golden/" ^ name ^ ".json") in
  check_string ("golden " ^ name) want got

(* Structural claims the goldens imply, asserted directly so a golden
   regenerated from a broken linter cannot silently weaken the suite:
   the rule fires at least [live] times unsuppressed, and exactly
   [suppressed] findings of the rule carry a pragma reason. *)
let fires ?(typed = false) rule roots ~live ~suppressed () =
  let report = (if typed then scan_typed else scan) roots in
  let of_rule = List.filter (fun f -> f.Finding.rule = rule) report.Driver.findings in
  let supp, unsupp = List.partition Finding.is_suppressed of_rule in
  check_int (Finding.rule_name rule ^ " live findings") live (List.length unsupp);
  check_int (Finding.rule_name rule ^ " suppressed findings") suppressed (List.length supp);
  List.iter
    (fun f ->
      check_bool "suppression carries a reason" true
        (match f.Finding.suppressed with Some r -> r <> "" | None -> false))
    supp

(* Negatives that must stay negative: the blessed sorted-fold pattern,
   scalar equality, constant constructors, total matches, allowlisted
   and interface-complete modules. *)
let no_false_positives () =
  let d2 = scan [ "lint_fixtures/d2.ml" ] in
  List.iter
    (fun f ->
      if not (Finding.is_suppressed f) then
        check_bool "sorted fold is not flagged" false (f.Finding.line = 8))
    d2.Driver.findings;
  let e1 = scan [ "lint_fixtures/e1.ml" ] in
  List.iter
    (fun f -> check_bool "scalar =/None compare not flagged" false (f.Finding.line >= 11 && f.Finding.line <= 12))
    e1.Driver.findings;
  let x1 = scan [ "lint_fixtures/x1" ] in
  List.iter
    (fun f ->
      check_bool "allowed.ml / withint.ml not flagged" false
        (f.Finding.file = "lint_fixtures/x1/allowed.ml"
        || f.Finding.file = "lint_fixtures/x1/withint.ml"))
    x1.Driver.findings

(* The gate's exit condition: suppressed findings do not count as
   errors, unsuppressed ones do. *)
let error_counting () =
  let report = scan [ "lint_fixtures/d2.ml" ] in
  check_int "d2 errors" 1 (Driver.errors report);
  check_int "d2 suppressed" 1 (Driver.suppressed report)

(* Pragma grammar, driven directly: the marker is assembled by
   concatenation so this file does not trip the scanner itself. *)
let pragma_parsing () =
  let m = "(* lint" ^ ": " in
  let collect src = Pragma.collect ~file:"inline.ml" src in
  let ok, bad = collect ("let x = 1 " ^ m ^ "E1 ok — tested inline *)\n") in
  check_int "one pragma" 1 (List.length ok);
  check_int "no parse findings" 0 (List.length bad);
  (match ok with
  | [ p ] ->
      check_bool "rule is E1" true (p.Pragma.rule = Finding.E1);
      check_string "reason" "tested inline" p.Pragma.reason
  | _ -> Alcotest.fail "expected exactly one pragma");
  let ok, bad = collect (m ^ "bounded -- ascii dashes work too *)\n") in
  check_int "ascii-dash pragma parses" 1 (List.length ok);
  check_int "ascii-dash pragma is clean" 0 (List.length bad);
  (match ok with
  | [ p ] ->
      check_bool "bounded maps to R1" true (p.Pragma.rule = Finding.R1);
      check_string "ascii reason" "ascii dashes work too" p.Pragma.reason
  | _ -> Alcotest.fail "expected exactly one pragma");
  let ok, bad = collect (m ^ "R1 ok *)\n") in
  check_int "reason-less pragma rejected" 0 (List.length ok);
  check_int "reason-less pragma is a finding" 1 (List.length bad);
  let ok, bad = collect (m ^ "parse ok — cannot suppress parse *)\n") in
  check_int "parse is not suppressible" 0 (List.length ok);
  check_int "parse pragma is a finding" 1 (List.length bad)

(* A pragma suppresses a finding on its own line or the line below,
   nothing further; an unmatched pragma is itself a finding. *)
let pragma_application () =
  let pragma line = { Pragma.line; rule = Finding.R1; reason = "why"; used = false } in
  let finding line = Finding.make ~file:"f.ml" ~line ~col:0 ~rule:Finding.R1 "R1: t" in
  let applied = Pragma.apply ~file:"f.ml" [ pragma 10 ] [ finding 10; finding 11; finding 12 ] in
  let by_line n = List.find (fun f -> f.Finding.line = n) applied in
  check_bool "same line suppressed" true (Finding.is_suppressed (by_line 10));
  check_bool "next line suppressed" true (Finding.is_suppressed (by_line 11));
  check_bool "two lines below not suppressed" false (Finding.is_suppressed (by_line 12));
  let applied = Pragma.apply ~file:"f.ml" [ pragma 20 ] [] in
  check_int "unused pragma surfaces" 1 (List.length applied);
  check_bool "unused pragma keeps its rule" true
    ((List.hd applied).Finding.rule = Finding.R1)

(* ---- typed tier (A1/F1) ---- *)

let a1_roots = [ "lint_fixtures_typed/a1.ml" ]
let f1_roots = [ "lint_fixtures_typed/f1.ml"; "lint_fixtures_typed/f1.mli" ]

(* Structural claims over the A1 fixture beyond the golden: every [@hot]
   binding surfaces as a hot root, clean roots report a zero budget, and
   suppressed sites still count toward their root's words/sites. *)
let a1_hot_roots () =
  let report = scan_typed a1_roots in
  check_bool "typed tier ran" true report.Driver.typed_ran;
  let names = List.map (fun (h : Typed.hot_root) -> h.Typed.hr_name) report.Driver.hot_roots in
  check_bool "all [@hot] roots surface, sorted" true
    (names
    = [
        "A1.calls_helper"; "A1.dispatch"; "A1.install"; "A1.masked"; "A1.pair";
        "A1.read_boxed"; "A1.slow_pair";
      ]);
  let root n = List.find (fun (h : Typed.hot_root) -> h.Typed.hr_name = n) report.Driver.hot_roots in
  let masked = root "A1.masked" in
  check_int "clean root has no sites" 0 masked.Typed.hr_sites;
  check_int "clean root costs no words" 0 masked.Typed.hr_words;
  let pair = root "A1.pair" in
  check_int "tuple root has one site" 1 pair.Typed.hr_sites;
  check_bool "tuple root costs words" true (pair.Typed.hr_words > 0);
  let dispatch = root "A1.dispatch" in
  check_int "suppressed site still counts in the budget" 1 dispatch.Typed.hr_sites

(* Interprocedural attribution: the helper's conses are charged to the
   hot caller, at the helper's own source position, naming both. *)
let a1_interprocedural () =
  let report = scan_typed a1_roots in
  let on_17 =
    List.filter
      (fun f -> f.Finding.rule = Finding.A1 && f.Finding.line = 17)
      report.Driver.findings
  in
  check_int "both helper conses flagged once each" 2 (List.length on_17);
  List.iter
    (fun f ->
      check_bool "finding names the helper" true (contains ~needle:"A1.helper" f.Finding.msg);
      check_bool "finding names the hot root" true
        (contains ~needle:"A1.calls_helper" f.Finding.msg))
    on_17

(* A pragma above the first line of a multi-line expression suppresses
   the finding the expression reports at its start line. *)
let a1_multiline_pragma () =
  let report = scan_typed a1_roots in
  let f =
    List.find
      (fun f -> f.Finding.rule = Finding.A1 && f.Finding.line = 27)
      report.Driver.findings
  in
  check_bool "multi-line tuple suppressed" true (Finding.is_suppressed f)

(* F1 placement: findings sit on exported entry points only — the
   private helper is reported through its callers, the wedge-guarded
   dispatcher stays clean, and the witness spells out the call chain. *)
let f1_entries () =
  let report = scan_typed f1_roots in
  let f1 = List.filter (fun f -> f.Finding.rule = Finding.F1) report.Driver.findings in
  let live = List.filter (fun f -> not (Finding.is_suppressed f)) f1 in
  check_bool "findings sit on the exported entries" true
    (List.sort compare (List.map (fun f -> f.Finding.line) live) = [ 18; 21; 24 ]);
  check_bool "no finding on the private helper" true
    (not (List.exists (fun f -> f.Finding.line = 15) f1));
  check_bool "wedge-guarded handle is clean" true
    (not (List.exists (fun f -> f.Finding.line = 29) f1));
  let via = List.find (fun f -> f.Finding.line = 21) live in
  check_bool "witness chains through the private helper" true
    (contains ~needle:"F1.log_raw" via.Finding.msg
    && contains ~needle:"Wal.append" via.Finding.msg)

(* A hot-path file with no .cmt must fail loudly, not pass silently. *)
let typed_missing_cmt () =
  let report = Driver.scan ~cmt_dir:"lint_fixtures/golden" Config.fixtures a1_roots in
  check_bool "missing cmt is an error" true (Driver.errors report > 0);
  check_bool "message points at --cmt-dir" true
    (List.exists
       (fun f -> f.Finding.rule = Finding.A1 && contains ~needle:"no .cmt" f.Finding.msg)
       report.Driver.findings)

(* Two pragmas stacked on one line each suppress their own rule on the
   next line, and neither is reported unused. *)
let pragma_stacking () =
  let m = "(* lint" ^ ": " in
  let src =
    "let x = 1\n" ^ m ^ "R1 ok — first *) " ^ m ^ "E1 ok — second *)\n" ^ "let y = 2\n"
  in
  let ok, bad = Pragma.collect ~file:"inline.ml" src in
  check_int "two pragmas on one line" 2 (List.length ok);
  check_int "stacked pragmas parse clean" 0 (List.length bad);
  let f rule = Finding.make ~file:"inline.ml" ~line:3 ~col:0 ~rule (Finding.rule_name rule ^ ": t") in
  let applied = Pragma.apply ~file:"inline.ml" ok [ f Finding.R1; f Finding.E1 ] in
  check_int "no unused-pragma findings appear" 2 (List.length applied);
  check_int "both findings suppressed" 2
    (List.length (List.filter Finding.is_suppressed applied))

(* Typed-tier pragma naming, and the unused-pragma audit's gating: an
   unused A1/F1 pragma is an error only when the typed tier ran, while
   surface-tier pragmas are audited either way. *)
let pragma_typed_rules () =
  let m = "(* lint" ^ ": " in
  let collect src = Pragma.collect ~file:"inline.ml" src in
  (match collect (m ^ "A1 ok — hot-path budget reviewed *)\n") with
  | [ p ], [] -> check_bool "A1 pragma names the typed rule" true (p.Pragma.rule = Finding.A1)
  | _ -> Alcotest.fail "expected one clean A1 pragma");
  (match collect (m ^ "F1 ok — control plane, fenced upstream *)\n") with
  | [ p ], [] -> check_bool "F1 pragma names the typed rule" true (p.Pragma.rule = Finding.F1)
  | _ -> Alcotest.fail "expected one clean F1 pragma");
  let unused rule = { Pragma.line = 4; rule; reason = "why"; used = false } in
  check_int "unused A1 pragma silent without cmts" 0
    (List.length (Pragma.apply ~typed_ran:false ~file:"f.ml" [ unused Finding.A1 ] []));
  check_int "unused A1 pragma surfaces with cmts" 1
    (List.length (Pragma.apply ~typed_ran:true ~file:"f.ml" [ unused Finding.A1 ] []));
  check_int "unused R1 pragma surfaces either way" 1
    (List.length (Pragma.apply ~typed_ran:false ~file:"f.ml" [ unused Finding.R1 ] []))

(* Runtime cross-check of A1's verdict: the repo lint report (written by
   the @lint rule this test run depends on) says these exported [@hot]
   roots are allocation-free; Gc.minor_words must agree per call. *)
let probe_hot_roots () =
  let report = Json.of_string (read_file "../lint-report.json") in
  let roots =
    match Json.member "hot_roots" report with
    | Some (Json.Arr l) -> l
    | _ -> Alcotest.fail "lint-report.json has no hot_roots"
  in
  let est name =
    match
      List.find_opt (fun r -> Json.member "name" r = Some (Json.Str name)) roots
    with
    | None -> Alcotest.failf "%s not among hot_roots in lint-report.json" name
    | Some r -> (
        match Json.member "est_words" r with
        | Some (Json.Num w) -> int_of_float w
        | _ -> Alcotest.fail "hot root without est_words")
  in
  let measure f =
    for _ = 1 to 256 do
      ignore (Sys.opaque_identity (f ()))
    done;
    let n = 2048 in
    let before = Gc.minor_words () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Gc.minor_words () -. before) /. float_of_int n
  in
  let agree name f =
    check_int (name ^ " static budget") 0 (est name);
    let per_call = measure f in
    if per_call > 0.5 then
      Alcotest.failf "%s allocates %.3f words/call at runtime; A1 says none" name per_call
  in
  (* XDR decode primitives over one long zeroed buffer, so the consuming
     calls never need a fresh decoder inside the measured loop *)
  let d = Xdr.Dec.of_bytes (Bytes.make 65536 '\x00') in
  agree "Dec.u32" (fun () -> Xdr.Dec.u32 d);
  agree "Dec.bool" (fun () -> Xdr.Dec.bool d);
  agree "Dec.enum" (fun () -> Xdr.Dec.enum d);
  agree "Dec.skip" (fun () -> Xdr.Dec.skip d 4);
  agree "Dec.pos" (fun () -> Xdr.Dec.pos d);
  agree "Dec.remaining" (fun () -> Xdr.Dec.remaining d);
  agree "Dec.items_read" (fun () -> Xdr.Dec.items_read d);
  (* codec peek path and µproxy reply inspection on a zeroed packet *)
  let pkt = Bytes.make 64 '\x00' in
  agree "Codec.is_call" (fun () -> Codec.is_call pkt);
  agree "Codec.xid_of" (fun () -> Codec.xid_of pkt);
  agree "Codec.int_of_status" (fun () -> Codec.int_of_status Slice_nfs.Nfs.OK);
  agree "Proxy.reply_status" (fun () -> Proxy.reply_status pkt);
  agree "Proxy.op_of_proc" (fun () -> Proxy.op_of_proc 6)

(* The repo profile itself must be clean — the same scan the @lint alias
   runs, typed tier included, executed from the repo root (scopes and
   --cmt-dir are relative paths). *)
let repo_clean () =
  let report = Driver.scan ~cmt_dir:"." Config.repo [ "lib"; "bin"; "bench"; "examples" ] in
  check_int "repo unsuppressed findings" 0 (Driver.errors report);
  check_bool "typed tier ran over the repo" true report.Driver.typed_ran;
  check_bool "repo hot roots discovered" true
    (List.exists (fun (h : Typed.hot_root) -> h.Typed.hr_name = "Dec.u32") report.Driver.hot_roots
    && List.exists (fun (h : Typed.hot_root) -> h.Typed.hr_name = "Engine.pop_min") report.Driver.hot_roots);
  (* the zero-allocation ratchet: every root's static budget is zero *)
  check_bool "repo hot roots all zero" true
    (List.for_all (fun (h : Typed.hot_root) -> h.Typed.hr_words = 0) report.Driver.hot_roots);
  check_bool "repo suppressions all carry reasons" true
    (List.for_all
       (fun f ->
         match f.Finding.suppressed with Some r -> r <> "" | None -> true)
       report.Driver.findings)

let fixture_case name body = Alcotest.test_case name `Quick (with_cwd "lint_fixtures" body)

let suite =
  [
    fixture_case "golden d1" (golden "d1" [ "lint_fixtures/d1.ml" ]);
    fixture_case "golden d2" (golden "d2" [ "lint_fixtures/d2.ml" ]);
    fixture_case "golden r1" (golden "r1" [ "lint_fixtures/r1.ml" ]);
    fixture_case "golden e1" (golden "e1" [ "lint_fixtures/e1.ml" ]);
    fixture_case "golden p1" (golden "p1" [ "lint_fixtures/p1.ml" ]);
    fixture_case "golden x1" (golden "x1" [ "lint_fixtures/x1" ]);
    fixture_case "golden bad_pragma" (golden "bad_pragma" [ "lint_fixtures/bad_pragma.ml" ]);
    fixture_case "D1 fires and suppresses"
      (fires Finding.D1 [ "lint_fixtures/d1.ml" ] ~live:5 ~suppressed:1);
    fixture_case "D2 fires and suppresses"
      (fires Finding.D2 [ "lint_fixtures/d2.ml" ] ~live:1 ~suppressed:1);
    fixture_case "R1 fires and suppresses"
      (fires Finding.R1 [ "lint_fixtures/r1.ml" ] ~live:2 ~suppressed:1);
    fixture_case "E1 fires and suppresses"
      (fires Finding.E1 [ "lint_fixtures/e1.ml" ] ~live:4 ~suppressed:1);
    fixture_case "P1 fires and suppresses"
      (fires Finding.P1 [ "lint_fixtures/p1.ml" ] ~live:4 ~suppressed:1);
    fixture_case "X1 fires" (fires Finding.X1 [ "lint_fixtures/x1" ] ~live:2 ~suppressed:0);
    fixture_case "golden a1" (golden ~typed:true "a1" a1_roots);
    fixture_case "golden f1" (golden ~typed:true "f1" f1_roots);
    fixture_case "A1 fires and suppresses"
      (fires ~typed:true Finding.A1 a1_roots ~live:5 ~suppressed:2);
    fixture_case "F1 fires and suppresses"
      (fires ~typed:true Finding.F1 f1_roots ~live:3 ~suppressed:2);
    fixture_case "A1 hot-root accounting" a1_hot_roots;
    fixture_case "A1 interprocedural attribution" a1_interprocedural;
    fixture_case "A1 pragma covers a multi-line expression" a1_multiline_pragma;
    fixture_case "F1 findings land on exported entries" f1_entries;
    fixture_case "typed tier fails loudly without cmts" typed_missing_cmt;
    fixture_case "no false positives" no_false_positives;
    fixture_case "error counting" error_counting;
    Alcotest.test_case "pragma parsing" `Quick pragma_parsing;
    Alcotest.test_case "pragma application" `Quick pragma_application;
    Alcotest.test_case "pragma stacking" `Quick pragma_stacking;
    Alcotest.test_case "typed pragma rules and gating" `Quick pragma_typed_rules;
    fixture_case "Gc probe agrees with A1" probe_hot_roots;
    Alcotest.test_case "repo profile is clean" `Quick (with_cwd "lib" repo_clean);
  ]

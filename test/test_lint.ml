(* Tier-1 coverage for slicelint itself (DESIGN.md §10): each rule
   family fires on its fixture, respects its inline suppression, and the
   JSON report matches the checked-in golden byte-for-byte. Goldens are
   regenerated with `slicelint --fixtures --json <root>`. *)

open Helpers
module Driver = Slice_lint.Driver
module Config = Slice_lint.Config
module Finding = Slice_lint.Finding
module Pragma = Slice_lint.Pragma
module Json = Slice_util.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Config scopes and the golden reports both speak relative paths, so
   run each test from a directory containing [anchor]. Under
   `dune runtest` that is already the cwd; under `dune exec` from the
   repo root we hop into the right directory and hop back. *)
let with_cwd anchor f () =
  if Sys.file_exists anchor then f ()
  else
    let candidates =
      [ "test"; ".."; Filename.concat ".." (Filename.concat ".." "..") ]
      @ (match Sys.getenv_opt "DUNE_SOURCEROOT" with
        | Some root -> [ root; Filename.concat root "test" ]
        | None -> [])
    in
    match List.find_opt (fun d -> Sys.file_exists (Filename.concat d anchor)) candidates with
    | None -> Alcotest.fail (anchor ^ ": not found from cwd or source root")
    | Some d ->
        let old = Sys.getcwd () in
        Sys.chdir d;
        Fun.protect ~finally:(fun () -> Sys.chdir old) f

let scan roots = Driver.scan Config.fixtures roots

(* The report for a fixture root must match its golden exactly —
   messages, positions, suppression reasons and ordering included. *)
let golden name roots () =
  let report = scan roots in
  let got = Json.to_string (Driver.to_json report) ^ "\n" in
  let want = read_file ("lint_fixtures/golden/" ^ name ^ ".json") in
  check_string ("golden " ^ name) want got

(* Structural claims the goldens imply, asserted directly so a golden
   regenerated from a broken linter cannot silently weaken the suite:
   the rule fires at least [live] times unsuppressed, and exactly
   [suppressed] findings of the rule carry a pragma reason. *)
let fires rule roots ~live ~suppressed () =
  let report = scan roots in
  let of_rule = List.filter (fun f -> f.Finding.rule = rule) report.Driver.findings in
  let supp, unsupp = List.partition Finding.is_suppressed of_rule in
  check_int (Finding.rule_name rule ^ " live findings") live (List.length unsupp);
  check_int (Finding.rule_name rule ^ " suppressed findings") suppressed (List.length supp);
  List.iter
    (fun f ->
      check_bool "suppression carries a reason" true
        (match f.Finding.suppressed with Some r -> r <> "" | None -> false))
    supp

(* Negatives that must stay negative: the blessed sorted-fold pattern,
   scalar equality, constant constructors, total matches, allowlisted
   and interface-complete modules. *)
let no_false_positives () =
  let d2 = scan [ "lint_fixtures/d2.ml" ] in
  List.iter
    (fun f ->
      if not (Finding.is_suppressed f) then
        check_bool "sorted fold is not flagged" false (f.Finding.line = 8))
    d2.Driver.findings;
  let e1 = scan [ "lint_fixtures/e1.ml" ] in
  List.iter
    (fun f -> check_bool "scalar =/None compare not flagged" false (f.Finding.line >= 11 && f.Finding.line <= 12))
    e1.Driver.findings;
  let x1 = scan [ "lint_fixtures/x1" ] in
  List.iter
    (fun f ->
      check_bool "allowed.ml / withint.ml not flagged" false
        (f.Finding.file = "lint_fixtures/x1/allowed.ml"
        || f.Finding.file = "lint_fixtures/x1/withint.ml"))
    x1.Driver.findings

(* The gate's exit condition: suppressed findings do not count as
   errors, unsuppressed ones do. *)
let error_counting () =
  let report = scan [ "lint_fixtures/d2.ml" ] in
  check_int "d2 errors" 1 (Driver.errors report);
  check_int "d2 suppressed" 1 (Driver.suppressed report)

(* Pragma grammar, driven directly: the marker is assembled by
   concatenation so this file does not trip the scanner itself. *)
let pragma_parsing () =
  let m = "(* lint" ^ ": " in
  let collect src = Pragma.collect ~file:"inline.ml" src in
  let ok, bad = collect ("let x = 1 " ^ m ^ "E1 ok — tested inline *)\n") in
  check_int "one pragma" 1 (List.length ok);
  check_int "no parse findings" 0 (List.length bad);
  (match ok with
  | [ p ] ->
      check_bool "rule is E1" true (p.Pragma.rule = Finding.E1);
      check_string "reason" "tested inline" p.Pragma.reason
  | _ -> Alcotest.fail "expected exactly one pragma");
  let ok, bad = collect (m ^ "bounded -- ascii dashes work too *)\n") in
  check_int "ascii-dash pragma parses" 1 (List.length ok);
  check_int "ascii-dash pragma is clean" 0 (List.length bad);
  (match ok with
  | [ p ] ->
      check_bool "bounded maps to R1" true (p.Pragma.rule = Finding.R1);
      check_string "ascii reason" "ascii dashes work too" p.Pragma.reason
  | _ -> Alcotest.fail "expected exactly one pragma");
  let ok, bad = collect (m ^ "R1 ok *)\n") in
  check_int "reason-less pragma rejected" 0 (List.length ok);
  check_int "reason-less pragma is a finding" 1 (List.length bad);
  let ok, bad = collect (m ^ "parse ok — cannot suppress parse *)\n") in
  check_int "parse is not suppressible" 0 (List.length ok);
  check_int "parse pragma is a finding" 1 (List.length bad)

(* A pragma suppresses a finding on its own line or the line below,
   nothing further; an unmatched pragma is itself a finding. *)
let pragma_application () =
  let pragma line = { Pragma.line; rule = Finding.R1; reason = "why"; used = false } in
  let finding line = Finding.make ~file:"f.ml" ~line ~col:0 ~rule:Finding.R1 "R1: t" in
  let applied = Pragma.apply ~file:"f.ml" [ pragma 10 ] [ finding 10; finding 11; finding 12 ] in
  let by_line n = List.find (fun f -> f.Finding.line = n) applied in
  check_bool "same line suppressed" true (Finding.is_suppressed (by_line 10));
  check_bool "next line suppressed" true (Finding.is_suppressed (by_line 11));
  check_bool "two lines below not suppressed" false (Finding.is_suppressed (by_line 12));
  let applied = Pragma.apply ~file:"f.ml" [ pragma 20 ] [] in
  check_int "unused pragma surfaces" 1 (List.length applied);
  check_bool "unused pragma keeps its rule" true
    ((List.hd applied).Finding.rule = Finding.R1)

(* The repo profile itself must be clean: the same scan the @lint alias
   runs, executed from the repo root (scopes are relative paths). *)
let repo_clean () =
  let report = Driver.scan Config.repo [ "lib"; "bin"; "bench"; "examples" ] in
  check_int "repo unsuppressed findings" 0 (Driver.errors report);
  check_bool "repo suppressions all carry reasons" true
    (List.for_all
       (fun f ->
         match f.Finding.suppressed with Some r -> r <> "" | None -> true)
       report.Driver.findings)

let fixture_case name body = Alcotest.test_case name `Quick (with_cwd "lint_fixtures" body)

let suite =
  [
    fixture_case "golden d1" (golden "d1" [ "lint_fixtures/d1.ml" ]);
    fixture_case "golden d2" (golden "d2" [ "lint_fixtures/d2.ml" ]);
    fixture_case "golden r1" (golden "r1" [ "lint_fixtures/r1.ml" ]);
    fixture_case "golden e1" (golden "e1" [ "lint_fixtures/e1.ml" ]);
    fixture_case "golden p1" (golden "p1" [ "lint_fixtures/p1.ml" ]);
    fixture_case "golden x1" (golden "x1" [ "lint_fixtures/x1" ]);
    fixture_case "golden bad_pragma" (golden "bad_pragma" [ "lint_fixtures/bad_pragma.ml" ]);
    fixture_case "D1 fires and suppresses"
      (fires Finding.D1 [ "lint_fixtures/d1.ml" ] ~live:5 ~suppressed:1);
    fixture_case "D2 fires and suppresses"
      (fires Finding.D2 [ "lint_fixtures/d2.ml" ] ~live:1 ~suppressed:1);
    fixture_case "R1 fires and suppresses"
      (fires Finding.R1 [ "lint_fixtures/r1.ml" ] ~live:2 ~suppressed:1);
    fixture_case "E1 fires and suppresses"
      (fires Finding.E1 [ "lint_fixtures/e1.ml" ] ~live:4 ~suppressed:1);
    fixture_case "P1 fires and suppresses"
      (fires Finding.P1 [ "lint_fixtures/p1.ml" ] ~live:4 ~suppressed:1);
    fixture_case "X1 fires" (fires Finding.X1 [ "lint_fixtures/x1" ] ~live:2 ~suppressed:0);
    fixture_case "no false positives" no_false_positives;
    fixture_case "error counting" error_counting;
    Alcotest.test_case "pragma parsing" `Quick pragma_parsing;
    Alcotest.test_case "pragma application" `Quick pragma_application;
    Alcotest.test_case "repo profile is clean" `Quick (with_cwd "lib" repo_clean);
  ]

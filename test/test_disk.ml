open Helpers
module Engine = Slice_sim.Engine
module Disk = Slice_disk.Disk
module Bcache = Slice_disk.Bcache
module Ffs = Slice_disk.Ffs

let mk_disk eng ?(arms = 8) () = Disk.create eng ~arms ~name:"d" ()

(* ---- Disk model ---- *)

let random_access_time () =
  run_fiber (fun eng ->
      let d = mk_disk eng () in
      let t0 = Engine.now eng in
      Disk.read d ~sequential:false ~bytes:8192 ();
      let dt = Engine.now eng -. t0 in
      (* seek + rotation + controller + media + channel: ~9.7ms; the
         calibration that gives ~104 random IOPS per arm *)
      check_bool "random 8K in 9..11 ms" true (dt > 9e-3 && dt < 11e-3))

let sequential_access_cheap () =
  run_fiber (fun eng ->
      let d = mk_disk eng () in
      let t0 = Engine.now eng in
      Disk.read d ~sequential:true ~bytes:8192 ();
      let dt = Engine.now eng -. t0 in
      (* media + channel only: ~0.4 ms *)
      check_bool "sequential 8K < 1ms" true (dt < 1e-3))

let arms_in_parallel () =
  let eng = Engine.create () in
  let d = mk_disk eng ~arms:4 () in
  let done_at = ref 0.0 in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () ->
        Disk.read d ~sequential:false ~bytes:8192 ();
        done_at := Float.max !done_at (Engine.now eng))
  done;
  Engine.run eng;
  (* 4 random reads on 4 arms overlap on positioning; the shared channel
     transfer is small *)
  check_bool "parallel arms" true (!done_at < 12e-3);
  check_int "ops" 4 (Disk.ops d)

let channel_caps_bandwidth () =
  let eng = Engine.create () in
  let d = mk_disk eng ~arms:8 () in
  let done_at = ref 0.0 in
  (* 16 MB of sequential reads: channel at 55 MB/s is the bottleneck *)
  Engine.spawn eng (fun () ->
      for _ = 1 to 64 do
        Disk.read d ~sequential:true ~bytes:(256 * 1024) ()
      done;
      done_at := Engine.now eng);
  Engine.run eng;
  let mbs = 16.0 /. !done_at in
  (* a single synchronous stream is media-rate bound (~33 MB/s); the
     channel (55 MB/s) caps aggregates *)
  check_bool "within media/channel rates" true (mbs < 56.0 && mbs > 28.0)

let async_booking () =
  run_fiber (fun eng ->
      let d = mk_disk eng () in
      let t0 = Engine.now eng in
      let fin = Disk.write_async d ~sequential:true ~bytes:65536 in
      check_float "caller not parked" t0 (Engine.now eng);
      check_bool "completion in future" true (fin > t0);
      check_bool "busy accounted" true (Disk.channel_busy_time d > 0.0))

(* ---- Bcache ---- *)

let mk_cache eng ?(capacity = 1 lsl 20) () =
  let d = mk_disk eng () in
  (Bcache.create eng ~backend:(Bcache.disk_backend eng d) ~capacity ~name:"c", d)

let cache_hit_no_disk () =
  run_fiber (fun eng ->
      let c, d = mk_cache eng () in
      Bcache.read c ~obj:1L ~block:0;
      let ops_before = Disk.ops d in
      let t0 = Engine.now eng in
      Bcache.read c ~obj:1L ~block:0;
      check_float "hit is instant" t0 (Engine.now eng);
      check_int "no disk op" ops_before (Disk.ops d);
      check_int "one hit" 1 (Bcache.hits c))

let sequential_prefetch () =
  run_fiber (fun eng ->
      let c, d = mk_cache eng () in
      Bcache.read c ~obj:1L ~block:0;
      (* blocks 1..31 prefetched asynchronously *)
      check_bool "prefetched" true (Bcache.prefetched_blocks c >= 31);
      let ops = Disk.ops d in
      Bcache.read c ~obj:1L ~block:1;
      Bcache.read c ~obj:1L ~block:2;
      check_int "no more disk ops" ops (Disk.ops d))

let random_no_prefetch () =
  run_fiber (fun eng ->
      let c, _ = mk_cache eng () in
      Bcache.read c ~obj:1L ~block:100;
      Bcache.read c ~obj:1L ~block:5000;
      check_int "no prefetch on random" 0 (Bcache.prefetched_blocks c))

let write_behind_and_commit () =
  run_fiber (fun eng ->
      let c, d = mk_cache eng () in
      let t0 = Engine.now eng in
      for b = 0 to 9 do
        Bcache.write c ~obj:2L ~block:b
      done;
      check_float "writes don't wait" t0 (Engine.now eng);
      check_int "nothing written yet" 0 (Disk.ops d);
      Bcache.commit c ~obj:2L;
      check_bool "commit waited" true (Engine.now eng > t0);
      (* clustering: 10 contiguous dirty blocks in one transfer *)
      check_int "one clustered write" 1 (Disk.ops d);
      check_int "all bytes" (10 * 8192) (Disk.bytes_transferred d))

let commit_only_target_object () =
  run_fiber (fun eng ->
      let c, d = mk_cache eng () in
      Bcache.write c ~obj:1L ~block:0;
      Bcache.write c ~obj:2L ~block:0;
      Bcache.commit c ~obj:1L;
      check_int "one object flushed" 1 (Disk.ops d);
      Bcache.commit_all c;
      check_int "rest flushed" 2 (Disk.ops d))

let eviction_writes_back_dirty () =
  run_fiber (fun eng ->
      (* capacity of 4 blocks *)
      let c, d = mk_cache eng ~capacity:(4 * 8192) () in
      for b = 0 to 7 do
        Bcache.write c ~obj:3L ~block:(b * 100) (* non-contiguous: no clustering *)
      done;
      Engine.sleep eng 1.0;
      check_bool "evictions wrote back" true (Disk.ops d >= 4))

let invalidate_discards () =
  run_fiber (fun eng ->
      let c, d = mk_cache eng () in
      Bcache.write c ~obj:4L ~block:0;
      Bcache.invalidate_object c 4L;
      Bcache.commit c ~obj:4L;
      check_int "nothing flushed" 0 (Disk.ops d);
      check_int "not resident" 0 (Bcache.resident_bytes c))

let drop_clean_cold () =
  run_fiber (fun eng ->
      let c, d = mk_cache eng () in
      Bcache.read c ~obj:1L ~block:0;
      Bcache.drop_clean c;
      let ops = Disk.ops d in
      Bcache.read c ~obj:1L ~block:0;
      check_bool "cold again" true (Disk.ops d > ops))

let mirrored_stride_counts_sequential () =
  run_fiber (fun eng ->
      let c, _ = mk_cache eng () in
      (* stride-8 pattern (alternating 32 KB chunks of 4 blocks): still
         prefetches contiguously, creating the paper's wasted prefetch *)
      Bcache.read c ~obj:1L ~block:0;
      let pf1 = Bcache.prefetched_blocks c in
      Bcache.read c ~obj:1L ~block:40 (* beyond the window: new stream *);
      ignore pf1;
      Bcache.read c ~obj:1L ~block:48 (* stride 8: sequentialish *);
      check_bool "stride-8 prefetches" true (Bcache.prefetched_blocks c > pf1))

let throttle_bounds_dirty () =
  run_fiber (fun eng ->
      let c, _ = mk_cache eng ~capacity:(1 lsl 30) () in
      let t0 = Engine.now eng in
      (* 64 MB of writes: far beyond the 32 MB outstanding bound, so the
         writer must have been stalled to the disk's pace *)
      for b = 0 to 8191 do
        Bcache.write c ~obj:9L ~block:b
      done;
      check_bool "writer throttled" true (Engine.now eng > t0))

(* ---- Ffs ---- *)

let ffs_alloc_free_basic () =
  let f = Ffs.create ~size:1000L in
  let a = Option.get (Ffs.alloc f 100) in
  check_bool "first at 0" true (a = 0L);
  let b = Option.get (Ffs.alloc f 200) in
  check_bool "second sequential" true (b = 100L);
  check_bool "used" true (Ffs.used_bytes f = 300L);
  Ffs.free f ~off:a ~len:100;
  check_bool "freed" true (Ffs.free_bytes f = 800L);
  check_bool "invariants" true (Ffs.check_invariants f)

let ffs_exhaustion () =
  let f = Ffs.create ~size:100L in
  check_bool "fits" true (Ffs.alloc f 100 <> None);
  check_bool "full" true (Ffs.alloc f 1 = None)

let ffs_coalescing () =
  let f = Ffs.create ~size:300L in
  let a = Option.get (Ffs.alloc f 100) in
  let b = Option.get (Ffs.alloc f 100) in
  let c = Option.get (Ffs.alloc f 100) in
  Ffs.free f ~off:a ~len:100;
  Ffs.free f ~off:c ~len:100;
  check_int "two fragments" 2 (Ffs.fragment_count f);
  Ffs.free f ~off:b ~len:100;
  check_int "coalesced to one" 1 (Ffs.fragment_count f);
  check_bool "largest" true (Ffs.largest_free f = 300L)

let ffs_double_free_rejected () =
  let f = Ffs.create ~size:100L in
  let a = Option.get (Ffs.alloc f 50) in
  Ffs.free f ~off:a ~len:50;
  check_bool "double free raises" true
    (try
       Ffs.free f ~off:a ~len:50;
       false
     with Invalid_argument _ -> true)

let ffs_best_fit_reuses_fragment () =
  let f = Ffs.create ~size:1000L in
  let a = Option.get (Ffs.alloc f 100) in
  let _b = Option.get (Ffs.alloc f 50) in
  Ffs.free f ~off:a ~len:100;
  (* best fit should take the 100-byte hole, not the big tail *)
  let c = Option.get (Ffs.alloc f ~strategy:`Best_fit 100) in
  check_bool "hole reused" true (c = 0L)

let ffs_model =
  qtest ~count:100 "ffs invariants under random ops"
    QCheck2.Gen.(list (int_range 1 64))
    (fun sizes ->
      let f = Ffs.create ~size:4096L in
      let live = ref [] in
      List.iteri
        (fun i sz ->
          if i mod 3 = 2 && !live <> [] then begin
            let off, len = List.hd !live in
            live := List.tl !live;
            Ffs.free f ~off ~len
          end
          else
            match Ffs.alloc f sz with
            | Some off -> live := (off, sz) :: !live
            | None -> ())
        sizes;
      (* no two live extents overlap *)
      let sorted = List.sort compare !live in
      let rec no_overlap = function
        | (o1, l1) :: ((o2, _) :: _ as rest) ->
            Int64.add o1 (Int64.of_int l1) <= o2 && no_overlap rest
        | _ -> true
      in
      no_overlap sorted && Ffs.check_invariants f)

let suite =
  [
    ("random access time", `Quick, random_access_time);
    ("sequential access cheap", `Quick, sequential_access_cheap);
    ("arms in parallel", `Quick, arms_in_parallel);
    ("channel caps bandwidth", `Quick, channel_caps_bandwidth);
    ("async booking", `Quick, async_booking);
    ("cache hit avoids disk", `Quick, cache_hit_no_disk);
    ("sequential prefetch", `Quick, sequential_prefetch);
    ("random no prefetch", `Quick, random_no_prefetch);
    ("write behind and commit clustering", `Quick, write_behind_and_commit);
    ("commit only target object", `Quick, commit_only_target_object);
    ("eviction writes back dirty", `Quick, eviction_writes_back_dirty);
    ("invalidate discards", `Quick, invalidate_discards);
    ("drop_clean makes cold", `Quick, drop_clean_cold);
    ("mirrored stride prefetches", `Quick, mirrored_stride_counts_sequential);
    ("throttle bounds dirty", `Quick, throttle_bounds_dirty);
    ("ffs alloc/free basic", `Quick, ffs_alloc_free_basic);
    ("ffs exhaustion", `Quick, ffs_exhaustion);
    ("ffs coalescing", `Quick, ffs_coalescing);
    ("ffs double free rejected", `Quick, ffs_double_free_rejected);
    ("ffs best fit reuses fragment", `Quick, ffs_best_fit_reuses_fragment);
    ffs_model;
  ]

(* Reconfiguration control-plane coverage: per-class migrations preserve
   data, a donor crash mid-copy aborts cleanly onto exactly one side,
   an abandoned intent is rolled back by recovery, and the scale-out
   exhibit is byte-deterministic. *)

open Helpers
module Engine = Slice_sim.Engine
module Fh = Slice_nfs.Fh
module Nfs = Slice_nfs.Nfs
module Json = Slice_util.Json
module Obsd = Slice_storage.Obsd
module Smallfile = Slice_smallfile.Smallfile
module Dirserver = Slice_dir.Dirserver
module Table = Slice.Table
module Ensemble = Slice.Ensemble
module Client = Slice_workload.Client
module Reconfig = Slice_reconfig.Reconfig
module Plan = Slice_reconfig.Plan

let chunk = 32768
let big_chunks = 6 (* chunks >= 2 are storage-class (above the threshold) *)

let mk_ens ?(seed = 9) ?(dir_servers = 1) () =
  Ensemble.create
    {
      Ensemble.default_config with
      seed;
      storage_nodes = 2;
      dir_servers;
      smallfile_servers = 1;
      mirror_new_files = false;
      dir_sites = 4;
      smallfile_sites = 4;
      storage_sites = 4;
    }

let mk_client ens name =
  let host, _ = Ensemble.add_client ens ~name in
  Client.create host ~server:(Ensemble.virtual_addr ens) ()

let write_big cl ~name =
  let fh, _ = ok_or_fail "create" (Client.create_file cl Fh.root name) in
  for c = 0 to big_chunks - 1 do
    ignore
      (ok_or_fail "write"
         (Client.write_at cl fh ~off:(Int64.of_int (c * chunk))
            ~data:(Nfs.Synthetic chunk) ()))
  done;
  ok_or_fail "commit" (Client.commit cl fh);
  fh

let read_big_ok cl fh =
  for c = 0 to big_chunks - 1 do
    match Client.read_at cl fh ~off:(Int64.of_int (c * chunk)) ~count:chunk with
    | Ok (d, _) when Nfs.wdata_length d = chunk -> ()
    | Ok (d, _) -> Alcotest.failf "short read: %d" (Nfs.wdata_length d)
    | Error st -> Alcotest.failf "read: %s" (Nfs.status_name st)
  done

(* Exactly-one-owner invariant: every logical site of [table] is owned
   by precisely one server, and the table publishes that owner. *)
let check_exclusive ~what table owners addr_of n =
  for j = 0 to Table.nsites table - 1 do
    let os = List.filter (fun i -> List.mem j (owners i)) (List.init n Fun.id) in
    (match os with
    | [ o ] ->
        check_int
          (Printf.sprintf "%s site %d published owner" what j)
          (addr_of o) (Table.lookup table j)
    | _ ->
        Alcotest.failf "%s site %d owned by %d servers" what j (List.length os))
  done

let check_storage_exclusive ens =
  let tbl = Option.get (Ensemble.storage_table ens) in
  let sts = Ensemble.storage ens in
  check_exclusive ~what:"storage" tbl
    (fun i -> Obsd.owned_sites sts.(i))
    (fun i -> Obsd.addr sts.(i))
    (Array.length sts)

let test_storage_migration () =
  let ens = mk_ens () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let fhs = List.init 6 (fun i -> write_big cl ~name:(Printf.sprintf "g%d" i)) in
      let tbl = Option.get (Ensemble.storage_table ens) in
      let v0 = Table.version tbl in
      Reconfig.execute rc (Plan.Add_server Plan.Storage);
      check_int "three storage nodes" 3 (Array.length (Ensemble.storage ens));
      check_bool "sites moved" true (Reconfig.sites_moved rc > 0);
      check_bool "table republished" true (Table.version tbl > v0);
      check_bool "bytes copied" true (Int64.compare (Reconfig.bytes_copied rc) 0L > 0);
      List.iter (fun fh -> read_big_ok cl fh) fhs;
      (* post-migration writes land on the new owners and read back *)
      List.iter
        (fun fh ->
          ignore
            (ok_or_fail "rewrite"
               (Client.write_at cl fh ~off:(Int64.of_int (3 * chunk))
                  ~data:(Nfs.Synthetic chunk) ()));
          read_big_ok cl fh)
        fhs;
      check_storage_exclusive ens)

let test_smallfile_migration () =
  let ens = mk_ens ~seed:10 () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let fhs =
        List.init 20 (fun i ->
            let fh, _ =
              ok_or_fail "create"
                (Client.create_file cl Fh.root (Printf.sprintf "s%02d" i))
            in
            ignore
              (ok_or_fail "write"
                 (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic 4096) ()));
            ok_or_fail "commit" (Client.commit cl fh);
            fh)
      in
      Reconfig.execute rc (Plan.Add_server Plan.Smallfile);
      check_bool "sites moved" true (Reconfig.sites_moved rc > 0);
      List.iter
        (fun fh ->
          match Client.read_at cl fh ~off:0L ~count:4096 with
          | Ok (d, _) when Nfs.wdata_length d = 4096 -> ()
          | _ -> Alcotest.fail "small file lost after migration")
        fhs;
      let tbl = Option.get (Ensemble.smallfile_table ens) in
      let sfs = Ensemble.smallfiles ens in
      check_exclusive ~what:"smallfile" tbl
        (fun i -> Smallfile.owned_sites sfs.(i))
        (fun i -> Smallfile.addr sfs.(i))
        (Array.length sfs))

let test_dir_migration () =
  let ens = mk_ens ~seed:11 () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let top, _ = ok_or_fail "mkdir" (Client.mkdir cl Fh.root "home") in
      let names = List.init 30 (fun i -> Printf.sprintf "n%03d" i) in
      let fhs =
        List.map
          (fun n ->
            let fh, _ = ok_or_fail "create" (Client.create_file cl top n) in
            (n, fh))
          names
      in
      Reconfig.execute rc (Plan.Add_server Plan.Dir);
      check_bool "sites moved" true (Reconfig.sites_moved rc > 0);
      List.iter
        (fun (n, fh) ->
          let fh', _ = ok_or_fail "lookup" (Client.lookup cl top n) in
          check_bool "same file" true (Int64.equal fh'.Fh.file_id fh.Fh.file_id))
        fhs;
      (* fresh creates into migrated sites, then a cross-site readdir *)
      let extra = List.init 8 (fun i -> Printf.sprintf "x%02d" i) in
      List.iter (fun n -> ignore (ok_or_fail "create2" (Client.create_file cl top n))) extra;
      let entries = ok_or_fail "readdir" (Client.readdir_all cl top) in
      check_int "all entries visible" (30 + 8) (List.length entries);
      let dirs = Ensemble.dirs ens in
      check_exclusive ~what:"dir" (Ensemble.dir_table ens)
        (fun i -> Dirserver.owned_sites dirs.(i))
        (fun i -> Dirserver.addr dirs.(i))
        (Array.length dirs))

(* Chaos: crash the donor in the middle of the copy phase. Every
   in-flight and following migration must abort — the table never
   changes, the donor keeps the site (drains are volatile, so its crash
   cleared the bounce state), and after recovery the data is intact and
   every site has exactly one owner. *)
let test_donor_crash_mid_migration () =
  let ens = mk_ens ~seed:12 () in
  (* crawl-speed copies so the crash lands inside the transfer window *)
  let rc = Reconfig.attach ~bandwidth:1e4 ens in
  let cl = mk_client ens "c0" in
  let eng = Ensemble.engine ens in
  run_on eng (fun () ->
      let fhs = List.init 6 (fun i -> write_big cl ~name:(Printf.sprintf "g%d" i)) in
      let tbl = Option.get (Ensemble.storage_table ens) in
      let map0, v0 = Table.snapshot tbl in
      (* donor = node 1 (node 0 hosts the coordinator); crash it shortly
         after the first copy starts *)
      Engine.schedule eng 0.05 (fun () -> Ensemble.crash_storage ens 1);
      Reconfig.execute rc (Plan.Remove_server (Plan.Storage, 1));
      check_bool "migrations attempted" true (Reconfig.migrations rc > 0);
      check_int "all aborted" (Reconfig.migrations rc) (Reconfig.aborted rc);
      check_int "none moved" 0 (Reconfig.sites_moved rc);
      let map1, v1 = Table.snapshot tbl in
      check_int "table version unchanged" v0 v1;
      check_bool "table mapping unchanged" true (map0 = map1);
      Ensemble.recover_storage ens 1;
      Engine.sleep eng 0.5;
      List.iter (fun fh -> read_big_ok cl fh) fhs;
      check_storage_exclusive ens)

(* Control-plane crash: the fault-injection hook stops the first
   migration right after its Begin intent hits the log and the drain
   starts. recover must roll it back — drain lifted, ownership and
   table untouched — and be idempotent. *)
let test_abandoned_intent_recovery () =
  let ens = mk_ens ~seed:13 () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let fhs = List.init 4 (fun i -> write_big cl ~name:(Printf.sprintf "g%d" i)) in
      let tbl = Option.get (Ensemble.storage_table ens) in
      let _, v0 = Table.snapshot tbl in
      Reconfig.execute ~abandon:`After_begin rc (Plan.Remove_server (Plan.Storage, 1));
      check_int "one migration started" 1 (Reconfig.migrations rc);
      check_int "none moved" 0 (Reconfig.sites_moved rc);
      check_int "not yet aborted" 0 (Reconfig.aborted rc);
      Reconfig.recover rc;
      check_int "intent rolled back" 1 (Reconfig.aborted rc);
      let _, v1 = Table.snapshot tbl in
      check_int "table untouched" v0 v1;
      (* drain lifted: mutations to the formerly draining site go through *)
      List.iter
        (fun fh ->
          ignore
            (ok_or_fail "write after recover"
               (Client.write_at cl fh ~off:(Int64.of_int (2 * chunk))
                  ~data:(Nfs.Synthetic chunk) ()));
          read_big_ok cl fh)
        fhs;
      check_storage_exclusive ens;
      Reconfig.recover rc;
      check_int "recover is idempotent" 1 (Reconfig.aborted rc))

(* A committed move must retire the donor-side load accounting: the
   donor's per-site load row is reset and the registry's
   [reconfig.load.*] gauge stops answering with the donor's pre-move
   values — it re-resolves the owner, so post-move traffic shows up
   under the receiver and nothing else. *)
let test_load_gauges_retired_on_commit () =
  let module Metrics = Slice_util.Metrics in
  let ens = mk_ens ~seed:15 () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let fhs =
        List.init 20 (fun i ->
            let fh, _ =
              ok_or_fail "create"
                (Client.create_file cl Fh.root (Printf.sprintf "s%02d" i))
            in
            ignore
              (ok_or_fail "write"
                 (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic 4096) ()));
            ok_or_fail "commit" (Client.commit cl fh);
            fh)
      in
      let reg = Reconfig.metrics rc in
      let key j = Printf.sprintf "reconfig.load.smallfile.%03d" j in
      let tbl = Option.get (Ensemble.smallfile_table ens) in
      let sfs0 = Ensemble.smallfiles ens in
      (* pre-move: every gauge answers with the (sole) owner's load *)
      for j = 0 to Table.nsites tbl - 1 do
        check_bool "gauge registered" true (List.mem (key j) (Metrics.names reg));
        check_bool "gauge reads the owner" true
          (Metrics.value reg (key j) = float_of_int (Smallfile.site_load sfs0.(0) j))
      done;
      Reconfig.execute rc (Plan.Add_server Plan.Smallfile);
      let sfs = Ensemble.smallfiles ens in
      let moved = Smallfile.owned_sites sfs.(1) in
      check_bool "sites moved" true (moved <> []);
      List.iter
        (fun j ->
          (* commit reset the donor's row and re-registered the gauge *)
          check_int "donor load row reset" 0 (Smallfile.site_load sfs.(0) j);
          check_bool "gauge survives retirement" true (List.mem (key j) (Metrics.names reg));
          check_bool "retired gauge reads the receiver" true
            (Metrics.value reg (key j) = float_of_int (Smallfile.site_load sfs.(1) j)))
        moved;
      (* post-move traffic accrues to the receiver, and the gauges see it
         — none of it leaks back into the donor's rows *)
      List.iter
        (fun fh -> ignore (ok_or_fail "read" (Client.read_at cl fh ~off:0L ~count:4096)))
        fhs;
      let gauge_sum = List.fold_left (fun a j -> a +. Metrics.value reg (key j)) 0.0 moved in
      let recv_sum =
        List.fold_left (fun a j -> a + Smallfile.site_load sfs.(1) j) 0 moved
      in
      check_bool "receiver load visible through gauges" true (gauge_sum > 0.0);
      check_bool "gauges equal receiver rows" true (gauge_sum = float_of_int recv_sum);
      List.iter
        (fun j -> check_int "donor rows stay zero" 0 (Smallfile.site_load sfs.(0) j))
        moved)

(* Hot-standby takeover as a direct control-plane call: every site of
   the dead victim is claimed, the class table rebinds them to the
   standby under exactly one fencing-epoch bump, and the namespace
   survives. Storage is refused — its sites are not dataless. *)
let test_takeover_claims_victim_sites () =
  let ens = mk_ens ~seed:14 ~dir_servers:2 () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  let eng = Ensemble.engine ens in
  run_on eng (fun () ->
      let names = List.init 16 (fun i -> Printf.sprintf "t%02d" i) in
      let fhs =
        List.map
          (fun n ->
            let fh, _ = ok_or_fail "create" (Client.create_file cl Fh.root n) in
            (n, fh))
          names
      in
      let dirs = Ensemble.dirs ens in
      let tbl = Ensemble.dir_table ens in
      let sites0 = Dirserver.owned_sites dirs.(0) in
      check_bool "victim owns sites" true (sites0 <> []);
      let epoch0 = Table.epoch tbl in
      Ensemble.crash_dir ens 0;
      let claimed = Reconfig.takeover rc Plan.Dir ~victim:0 ~standby:1 in
      check_int "every victim site claimed" (List.length sites0) claimed;
      check_int "exactly one epoch bump" (epoch0 + 1) (Table.epoch tbl);
      List.iter
        (fun j ->
          check_int "site rebound to the standby" (Dirserver.addr dirs.(1)) (Table.lookup tbl j);
          check_bool "standby owns it" true (List.mem j (Dirserver.owned_sites dirs.(1))))
        sites0;
      (* revive the victim as a zombie (expired lease, old epoch): the
         full namespace must still resolve — through the standby *)
      Dirserver.set_lease dirs.(0) ~epoch:(Dirserver.lease_epoch dirs.(0))
        ~until:(Engine.now eng -. 1.0);
      Ensemble.recover_dir ens 0;
      List.iter
        (fun (n, fh) ->
          let fh', _ = ok_or_fail "lookup after takeover" (Client.lookup cl Fh.root n) in
          check_bool "same file" true (Int64.equal fh'.Fh.file_id fh.Fh.file_id))
        fhs;
      Alcotest.check_raises "storage takeover rejected"
        (Invalid_argument "Reconfig: storage sites are not dataless; cannot take over")
        (fun () -> ignore (Reconfig.takeover rc Plan.Storage ~victim:0 ~standby:1)))

(* The exhibit is deterministic: same seed, byte-identical JSON. *)
let test_scale_exhibit_deterministic () =
  let dump () =
    Json.to_string
      (Slice_experiments.Scale.json_of
         (Slice_experiments.Scale.compute ~scale:0.05 ~seed:21 ()))
  in
  let a = dump () in
  let b = dump () in
  check_string "byte-identical scale report" a b;
  (* and it must show a clean audit and real migrations *)
  let t = Slice_experiments.Scale.compute ~scale:0.05 ~seed:21 () in
  check_int "no lost updates" 0 t.Slice_experiments.Scale.audit.aud_lost;
  check_int "no ownership violations" 0
    t.Slice_experiments.Scale.audit.aud_ownership_violations;
  check_bool "sites moved" true (t.Slice_experiments.Scale.sites_moved > 0)

let suite =
  [
    Alcotest.test_case "storage site migration preserves data" `Quick
      test_storage_migration;
    Alcotest.test_case "smallfile site migration preserves data" `Quick
      test_smallfile_migration;
    Alcotest.test_case "dir site migration preserves namespace" `Quick
      test_dir_migration;
    Alcotest.test_case "donor crash mid-migration aborts onto one side" `Quick
      test_donor_crash_mid_migration;
    Alcotest.test_case "abandoned intent rolled back by recover" `Quick
      test_abandoned_intent_recovery;
    Alcotest.test_case "load gauges retired on commit" `Quick
      test_load_gauges_retired_on_commit;
    Alcotest.test_case "takeover claims victim sites" `Quick
      test_takeover_claims_victim_sites;
    Alcotest.test_case "scale exhibit is byte-deterministic" `Quick
      test_scale_exhibit_deterministic;
  ]

(* Reconfiguration control-plane coverage: per-class migrations preserve
   data, a donor crash mid-copy aborts cleanly onto exactly one side,
   an abandoned intent is rolled back by recovery, and the scale-out
   exhibit is byte-deterministic. *)

open Helpers
module Engine = Slice_sim.Engine
module Fh = Slice_nfs.Fh
module Nfs = Slice_nfs.Nfs
module Json = Slice_util.Json
module Obsd = Slice_storage.Obsd
module Smallfile = Slice_smallfile.Smallfile
module Dirserver = Slice_dir.Dirserver
module Table = Slice.Table
module Ensemble = Slice.Ensemble
module Client = Slice_workload.Client
module Reconfig = Slice_reconfig.Reconfig
module Plan = Slice_reconfig.Plan

let chunk = 32768
let big_chunks = 6 (* chunks >= 2 are storage-class (above the threshold) *)

let mk_ens ?(seed = 9) () =
  Ensemble.create
    {
      Ensemble.default_config with
      seed;
      storage_nodes = 2;
      dir_servers = 1;
      smallfile_servers = 1;
      mirror_new_files = false;
      dir_sites = 4;
      smallfile_sites = 4;
      storage_sites = 4;
    }

let mk_client ens name =
  let host, _ = Ensemble.add_client ens ~name in
  Client.create host ~server:(Ensemble.virtual_addr ens) ()

let write_big cl ~name =
  let fh, _ = ok_or_fail "create" (Client.create_file cl Fh.root name) in
  for c = 0 to big_chunks - 1 do
    ignore
      (ok_or_fail "write"
         (Client.write_at cl fh ~off:(Int64.of_int (c * chunk))
            ~data:(Nfs.Synthetic chunk) ()))
  done;
  ok_or_fail "commit" (Client.commit cl fh);
  fh

let read_big_ok cl fh =
  for c = 0 to big_chunks - 1 do
    match Client.read_at cl fh ~off:(Int64.of_int (c * chunk)) ~count:chunk with
    | Ok (d, _) when Nfs.wdata_length d = chunk -> ()
    | Ok (d, _) -> Alcotest.failf "short read: %d" (Nfs.wdata_length d)
    | Error st -> Alcotest.failf "read: %s" (Nfs.status_name st)
  done

(* Exactly-one-owner invariant: every logical site of [table] is owned
   by precisely one server, and the table publishes that owner. *)
let check_exclusive ~what table owners addr_of n =
  for j = 0 to Table.nsites table - 1 do
    let os = List.filter (fun i -> List.mem j (owners i)) (List.init n Fun.id) in
    (match os with
    | [ o ] ->
        check_int
          (Printf.sprintf "%s site %d published owner" what j)
          (addr_of o) (Table.lookup table j)
    | _ ->
        Alcotest.failf "%s site %d owned by %d servers" what j (List.length os))
  done

let check_storage_exclusive ens =
  let tbl = Option.get (Ensemble.storage_table ens) in
  let sts = Ensemble.storage ens in
  check_exclusive ~what:"storage" tbl
    (fun i -> Obsd.owned_sites sts.(i))
    (fun i -> Obsd.addr sts.(i))
    (Array.length sts)

let test_storage_migration () =
  let ens = mk_ens () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let fhs = List.init 6 (fun i -> write_big cl ~name:(Printf.sprintf "g%d" i)) in
      let tbl = Option.get (Ensemble.storage_table ens) in
      let v0 = Table.version tbl in
      Reconfig.execute rc (Plan.Add_server Plan.Storage);
      check_int "three storage nodes" 3 (Array.length (Ensemble.storage ens));
      check_bool "sites moved" true (Reconfig.sites_moved rc > 0);
      check_bool "table republished" true (Table.version tbl > v0);
      check_bool "bytes copied" true (Int64.compare (Reconfig.bytes_copied rc) 0L > 0);
      List.iter (fun fh -> read_big_ok cl fh) fhs;
      (* post-migration writes land on the new owners and read back *)
      List.iter
        (fun fh ->
          ignore
            (ok_or_fail "rewrite"
               (Client.write_at cl fh ~off:(Int64.of_int (3 * chunk))
                  ~data:(Nfs.Synthetic chunk) ()));
          read_big_ok cl fh)
        fhs;
      check_storage_exclusive ens)

let test_smallfile_migration () =
  let ens = mk_ens ~seed:10 () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let fhs =
        List.init 20 (fun i ->
            let fh, _ =
              ok_or_fail "create"
                (Client.create_file cl Fh.root (Printf.sprintf "s%02d" i))
            in
            ignore
              (ok_or_fail "write"
                 (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic 4096) ()));
            ok_or_fail "commit" (Client.commit cl fh);
            fh)
      in
      Reconfig.execute rc (Plan.Add_server Plan.Smallfile);
      check_bool "sites moved" true (Reconfig.sites_moved rc > 0);
      List.iter
        (fun fh ->
          match Client.read_at cl fh ~off:0L ~count:4096 with
          | Ok (d, _) when Nfs.wdata_length d = 4096 -> ()
          | _ -> Alcotest.fail "small file lost after migration")
        fhs;
      let tbl = Option.get (Ensemble.smallfile_table ens) in
      let sfs = Ensemble.smallfiles ens in
      check_exclusive ~what:"smallfile" tbl
        (fun i -> Smallfile.owned_sites sfs.(i))
        (fun i -> Smallfile.addr sfs.(i))
        (Array.length sfs))

let test_dir_migration () =
  let ens = mk_ens ~seed:11 () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let top, _ = ok_or_fail "mkdir" (Client.mkdir cl Fh.root "home") in
      let names = List.init 30 (fun i -> Printf.sprintf "n%03d" i) in
      let fhs =
        List.map
          (fun n ->
            let fh, _ = ok_or_fail "create" (Client.create_file cl top n) in
            (n, fh))
          names
      in
      Reconfig.execute rc (Plan.Add_server Plan.Dir);
      check_bool "sites moved" true (Reconfig.sites_moved rc > 0);
      List.iter
        (fun (n, fh) ->
          let fh', _ = ok_or_fail "lookup" (Client.lookup cl top n) in
          check_bool "same file" true (Int64.equal fh'.Fh.file_id fh.Fh.file_id))
        fhs;
      (* fresh creates into migrated sites, then a cross-site readdir *)
      let extra = List.init 8 (fun i -> Printf.sprintf "x%02d" i) in
      List.iter (fun n -> ignore (ok_or_fail "create2" (Client.create_file cl top n))) extra;
      let entries = ok_or_fail "readdir" (Client.readdir_all cl top) in
      check_int "all entries visible" (30 + 8) (List.length entries);
      let dirs = Ensemble.dirs ens in
      check_exclusive ~what:"dir" (Ensemble.dir_table ens)
        (fun i -> Dirserver.owned_sites dirs.(i))
        (fun i -> Dirserver.addr dirs.(i))
        (Array.length dirs))

(* Chaos: crash the donor in the middle of the copy phase. Every
   in-flight and following migration must abort — the table never
   changes, the donor keeps the site (drains are volatile, so its crash
   cleared the bounce state), and after recovery the data is intact and
   every site has exactly one owner. *)
let test_donor_crash_mid_migration () =
  let ens = mk_ens ~seed:12 () in
  (* crawl-speed copies so the crash lands inside the transfer window *)
  let rc = Reconfig.attach ~bandwidth:1e4 ens in
  let cl = mk_client ens "c0" in
  let eng = Ensemble.engine ens in
  run_on eng (fun () ->
      let fhs = List.init 6 (fun i -> write_big cl ~name:(Printf.sprintf "g%d" i)) in
      let tbl = Option.get (Ensemble.storage_table ens) in
      let map0, v0 = Table.snapshot tbl in
      (* donor = node 1 (node 0 hosts the coordinator); crash it shortly
         after the first copy starts *)
      Engine.schedule eng 0.05 (fun () -> Ensemble.crash_storage ens 1);
      Reconfig.execute rc (Plan.Remove_server (Plan.Storage, 1));
      check_bool "migrations attempted" true (Reconfig.migrations rc > 0);
      check_int "all aborted" (Reconfig.migrations rc) (Reconfig.aborted rc);
      check_int "none moved" 0 (Reconfig.sites_moved rc);
      let map1, v1 = Table.snapshot tbl in
      check_int "table version unchanged" v0 v1;
      check_bool "table mapping unchanged" true (map0 = map1);
      Ensemble.recover_storage ens 1;
      Engine.sleep eng 0.5;
      List.iter (fun fh -> read_big_ok cl fh) fhs;
      check_storage_exclusive ens)

(* Control-plane crash: the fault-injection hook stops the first
   migration right after its Begin intent hits the log and the drain
   starts. recover must roll it back — drain lifted, ownership and
   table untouched — and be idempotent. *)
let test_abandoned_intent_recovery () =
  let ens = mk_ens ~seed:13 () in
  let rc = Reconfig.attach ens in
  let cl = mk_client ens "c0" in
  run_on (Ensemble.engine ens) (fun () ->
      let fhs = List.init 4 (fun i -> write_big cl ~name:(Printf.sprintf "g%d" i)) in
      let tbl = Option.get (Ensemble.storage_table ens) in
      let _, v0 = Table.snapshot tbl in
      Reconfig.execute ~abandon:`After_begin rc (Plan.Remove_server (Plan.Storage, 1));
      check_int "one migration started" 1 (Reconfig.migrations rc);
      check_int "none moved" 0 (Reconfig.sites_moved rc);
      check_int "not yet aborted" 0 (Reconfig.aborted rc);
      Reconfig.recover rc;
      check_int "intent rolled back" 1 (Reconfig.aborted rc);
      let _, v1 = Table.snapshot tbl in
      check_int "table untouched" v0 v1;
      (* drain lifted: mutations to the formerly draining site go through *)
      List.iter
        (fun fh ->
          ignore
            (ok_or_fail "write after recover"
               (Client.write_at cl fh ~off:(Int64.of_int (2 * chunk))
                  ~data:(Nfs.Synthetic chunk) ()));
          read_big_ok cl fh)
        fhs;
      check_storage_exclusive ens;
      Reconfig.recover rc;
      check_int "recover is idempotent" 1 (Reconfig.aborted rc))

(* The exhibit is deterministic: same seed, byte-identical JSON. *)
let test_scale_exhibit_deterministic () =
  let dump () =
    Json.to_string
      (Slice_experiments.Scale.json_of
         (Slice_experiments.Scale.compute ~scale:0.05 ~seed:21 ()))
  in
  let a = dump () in
  let b = dump () in
  check_string "byte-identical scale report" a b;
  (* and it must show a clean audit and real migrations *)
  let t = Slice_experiments.Scale.compute ~scale:0.05 ~seed:21 () in
  check_int "no lost updates" 0 t.Slice_experiments.Scale.audit.aud_lost;
  check_int "no ownership violations" 0
    t.Slice_experiments.Scale.audit.aud_ownership_violations;
  check_bool "sites moved" true (t.Slice_experiments.Scale.sites_moved > 0)

let suite =
  [
    Alcotest.test_case "storage site migration preserves data" `Quick
      test_storage_migration;
    Alcotest.test_case "smallfile site migration preserves data" `Quick
      test_smallfile_migration;
    Alcotest.test_case "dir site migration preserves namespace" `Quick
      test_dir_migration;
    Alcotest.test_case "donor crash mid-migration aborts onto one side" `Quick
      test_donor_crash_mid_migration;
    Alcotest.test_case "abandoned intent rolled back by recover" `Quick
      test_abandoned_intent_recovery;
    Alcotest.test_case "scale exhibit is byte-deterministic" `Quick
      test_scale_exhibit_deterministic;
  ]

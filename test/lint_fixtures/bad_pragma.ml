(* Pragma-grammar fixture: malformed, unknown-rule, reason-less and
   unused pragmas are all findings in their own right. *)

let a = 1 (* lint: D1 ok *)
let b = 2 (* lint: Q9 ok — no such rule *)
let c = 3 (* lint: D2 ok — *)
let d = 4 (* lint: E1 ok — nothing on this line trips E1 *)

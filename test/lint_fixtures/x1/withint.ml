(* X1 fixture: a module with its interface in place. *)
let z = 3

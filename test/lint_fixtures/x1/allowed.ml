(* X1 fixture: allowlisted module — no interface required. *)
let y = 2

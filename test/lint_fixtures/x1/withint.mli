(* X1 fixture interface. *)
val z : int

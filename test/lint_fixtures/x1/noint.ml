(* X1 fixture: a library module without an interface file. *)
let x = 1

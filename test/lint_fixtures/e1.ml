(* E1 fixture: polymorphic equality over structured operands. *)

(* Positives: tuples, constructor applications, and the polymorphic
   association/compare family. *)
let tuple_eq a b = (a, 1) = (b, 1)
let opt_eq a b = a = Some b
let find k l = List.assoc k l
let order a b = compare a b

(* Negatives: scalar comparisons and constant constructors stay legal. *)
let count_eq (n : int) m = n = m
let is_none a = a = None

(* Suppressed. *)
let swapped a b = (a, b) = (b, a) (* lint: E1 ok — fixture: suppression must hide this *)

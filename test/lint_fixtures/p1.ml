(* P1 fixture: partial operations on protocol request paths. *)

(* Positives. *)
let first l = List.hd l
let forced o = Option.get o
let boom () = failwith "protocol abort"
let unreachable () = assert false

(* Negatives: totality by matching. *)
let checked = function [] -> None | x :: _ -> Some x
let guarded o = match o with Some v -> v | None -> 0

(* Suppressed. *)
let allowed () = assert false (* lint: P1 ok — fixture: suppression must hide this *)

(* D2 fixture: hash-table iteration feeding output must be sorted. *)

(* Positive: unsorted iteration order leaks straight into the report. *)
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%d %d\n" k v) tbl

(* Negative: folding into a list that is immediately sorted is the
   blessed pattern. *)
let rows tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Suppressed: order-insensitive aggregation. *)
let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0 (* lint: D2 ok — fixture: commutative sum *)

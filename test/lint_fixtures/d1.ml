(* D1 fixture: nondeterminism sources. Parsed by slicelint under the
   fixture profile; never compiled. *)

let jitter () = Random.float 1.0
let now () = Sys.time ()
let entropy = Hashtbl.hash "seed"
let racy () = Hashtbl.create ~random:true 8

open Unix

let clock () = gettimeofday ()

let seeded () = Random.int 10 (* lint: D1 ok — fixture: suppression must hide this *)

(* R1 fixture: hash tables in long-lived modules need a bound or a
   bounded pragma with a reason. *)

type t = { cache : (int, string) Hashtbl.t; log : (int, string) Hashtbl.t }

(* Positive: no bound, no pragma. *)
let create () = { cache = Hashtbl.create 64; log = Hashtbl.create 64 }

(* Suppressed: the pragma line covers the allocation below it. *)
let create_bounded () =
  (* lint: bounded — fixture: rows retired when the request completes *)
  Hashtbl.create 64

open Helpers
module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Host = Slice_storage.Host
module Smallfile = Slice_smallfile.Smallfile

type rig = { eng : Engine.t; sf : Smallfile.t; rpc : Rpc.t; dst : Slice_net.Packet.addr }

let mk_rig ?cache_bytes ?backing_bytes () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let host = Host.create net ~name:"sf" ~disks:8 () in
  let sf = Smallfile.attach host ?cache_bytes ?backing_bytes () in
  let client = Host.create net ~name:"client" () in
  let rpc = Rpc.create net client.Host.addr ~port:1000 in
  { eng; sf; rpc; dst = Smallfile.addr sf }

let reg_fh id =
  { Fh.file_id = Int64.of_int id; gen = 1; ftype = Fh.Reg; mirrored = false; attr_site = 0; cap = 0L }

let call rig c =
  let xid = Rpc.fresh_xid rig.rpc in
  let payload = Codec.encode_call ~xid c in
  let reply =
    Rpc.call rig.rpc ~timeout:2.0 ~dst:rig.dst ~dport:2049
      ~extra_size:(Codec.extra_size_of_call c) payload
  in
  snd (Codec.decode_reply reply)

let physical_rounding () =
  check_int "0" 0 (Smallfile.physical_size_of 0);
  check_int "1 -> 128" 128 (Smallfile.physical_size_of 1);
  check_int "128" 128 (Smallfile.physical_size_of 128);
  check_int "129 -> 256" 256 (Smallfile.physical_size_of 129);
  check_int "5000 -> 8192" 8192 (Smallfile.physical_size_of 5000);
  check_int "8192 caps" 8192 (Smallfile.physical_size_of 8192)

let paper_example_8300 () =
  (* "a 8300 byte file would consume only 8320 bytes of physical storage
     space, 8192 bytes for the first block, and 128 for the remaining 108
     bytes" *)
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 1 in
      ignore (call rig (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 8300)));
      check_bool "8320 bytes stored" true (Smallfile.bytes_stored rig.sf = 8320L);
      check_bool "8300 logical" true (Smallfile.logical_bytes rig.sf = 8300L))

let write_read_real_data () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 2 in
      let data = String.init 5000 (fun i -> Char.chr ((i * 7) mod 256)) in
      ignore (call rig (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data data)));
      (match call rig (Nfs.Read (fh, 0L, 5000)) with
      | Ok (Nfs.RRead (Nfs.Data d, eof, a)) ->
          check_string "data" data d;
          check_bool "eof" true eof;
          check_bool "size" true (a.Nfs.size = 5000L)
      | _ -> Alcotest.fail "read");
      match call rig (Nfs.Read (fh, 1000L, 100)) with
      | Ok (Nfs.RRead (Nfs.Data d, eof, _)) ->
          check_string "middle slice" (String.sub data 1000 100) d;
          check_bool "not eof" false eof
      | _ -> Alcotest.fail "read middle")

let growth_reallocates () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 3 in
      ignore (call rig (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 100)));
      check_bool "128 fragment" true (Smallfile.bytes_stored rig.sf = 128L);
      ignore (call rig (Nfs.Write (fh, 100L, Nfs.Unstable, Nfs.Synthetic 400)));
      (* grown to 500 bytes: one 512 fragment, old 128 freed *)
      check_bool "512 fragment" true (Smallfile.bytes_stored rig.sf = 512L);
      check_bool "logical 500" true (Smallfile.logical_bytes rig.sf = 500L))

let remove_frees_space () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 4 in
      ignore (call rig (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 20000)));
      check_int "one file" 1 (Smallfile.file_count rig.sf);
      (match call rig (Nfs.Remove (fh, "")) with
      | Ok Nfs.RRemove -> ()
      | _ -> Alcotest.fail "remove");
      check_int "no files" 0 (Smallfile.file_count rig.sf);
      check_bool "space freed" true (Smallfile.bytes_stored rig.sf = 0L))

let truncate_to_zero_and_partial () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 5 in
      ignore (call rig (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 30000)));
      ignore (call rig (Nfs.Setattr (fh, Nfs.sattr_size 10000L)));
      check_bool "logical 10000" true (Smallfile.logical_bytes rig.sf = 10000L);
      (* blocks past the cut freed: 10000 needs blocks 0 (8192) + 1 *)
      check_bool "partial trim freed space" true (Smallfile.bytes_stored rig.sf <= 16384L);
      ignore (call rig (Nfs.Setattr (fh, Nfs.sattr_size 0L)));
      check_bool "all freed" true (Smallfile.bytes_stored rig.sf = 0L))

let fragment_reuse () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      (* create files, remove one, create another of the same size: the
         freed fragment is reused (best fit), keeping fragmentation low *)
      ignore (call rig (Nfs.Write (reg_fh 10, 0L, Nfs.Unstable, Nfs.Synthetic 1000)));
      ignore (call rig (Nfs.Write (reg_fh 11, 0L, Nfs.Unstable, Nfs.Synthetic 1000)));
      ignore (call rig (Nfs.Remove (reg_fh 10, "")));
      ignore (call rig (Nfs.Write (reg_fh 12, 0L, Nfs.Unstable, Nfs.Synthetic 1000)));
      check_bool "no extra fragments" true (Smallfile.fragmentation rig.sf <= 2))

let stable_write_commits () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let t0 = Engine.now rig.eng in
      ignore (call rig (Nfs.Write (reg_fh 6, 0L, Nfs.File_sync, Nfs.Synthetic 8192)));
      let stable_t = Engine.now rig.eng -. t0 in
      let t1 = Engine.now rig.eng in
      ignore (call rig (Nfs.Write (reg_fh 7, 0L, Nfs.Unstable, Nfs.Synthetic 8192)));
      let unstable_t = Engine.now rig.eng -. t1 in
      check_bool "stable write slower than unstable" true (stable_t > unstable_t))

let commit_then_read_cached () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 8 in
      ignore (call rig (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 4096)));
      (match call rig (Nfs.Commit (fh, 0L, 0)) with
      | Ok (Nfs.RCommit _) -> ()
      | _ -> Alcotest.fail "commit");
      let h0 = Smallfile.cache_hits rig.sf in
      ignore (call rig (Nfs.Read (fh, 0L, 4096)));
      check_bool "read hits cache" true (Smallfile.cache_hits rig.sf > h0))

let map_block_locality () =
  (* files created together share map-descriptor blocks: creating 84
     consecutive fileIDs touches at most 2 map blocks *)
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      for i = 100 to 183 do
        ignore (call rig (Nfs.Write (reg_fh i, 0L, Nfs.Unstable, Nfs.Synthetic 256)))
      done;
      let misses = Smallfile.cache_misses rig.sf in
      (* map blocks: <= 2 of the misses come from the descriptor array *)
      check_bool "few map misses" true (misses < 90))

(* A full backing store answers ERR_NOSPC instead of crashing the
   server fiber, and the server keeps serving afterwards. *)
let full_disk_is_an_error () =
  let rig = mk_rig ~backing_bytes:16_384L () in
  run_on rig.eng (fun () ->
      (match call rig (Nfs.Write (reg_fh 1, 0L, Nfs.Unstable, Nfs.Synthetic 8192)) with
      | Ok _ -> ()
      | Error st -> Alcotest.failf "first write: %s" (Nfs.status_name st));
      expect_err "second write fills the disk" Nfs.ERR_NOSPC
        (call rig (Nfs.Write (reg_fh 2, 0L, Nfs.Unstable, Nfs.Synthetic 16384)));
      (* size not extended by the failed write *)
      (match call rig (Nfs.Getattr (reg_fh 2)) with
      | Ok (Nfs.RGetattr a) -> check_bool "failed write adds no bytes" true (a.Nfs.size = 0L)
      | _ -> Alcotest.fail "getattr after ENOSPC");
      (* freeing space makes writes succeed again *)
      (match call rig (Nfs.Remove (reg_fh 1, "f1")) with
      | Ok _ -> ()
      | Error st -> Alcotest.failf "remove: %s" (Nfs.status_name st));
      match call rig (Nfs.Write (reg_fh 3, 0L, Nfs.Unstable, Nfs.Synthetic 4096)) with
      | Ok _ -> ()
      | Error st -> Alcotest.failf "write after remove: %s" (Nfs.status_name st))

let suite =
  [
    ("physical size rounding", `Quick, physical_rounding);
    ("paper's 8300-byte example", `Quick, paper_example_8300);
    ("write/read real data", `Quick, write_read_real_data);
    ("growth reallocates fragments", `Quick, growth_reallocates);
    ("remove frees space", `Quick, remove_frees_space);
    ("truncate partial and zero", `Quick, truncate_to_zero_and_partial);
    ("fragment reuse", `Quick, fragment_reuse);
    ("stable write commits", `Quick, stable_write_commits);
    ("commit then read cached", `Quick, commit_then_read_cached);
    ("map block locality", `Quick, map_block_locality);
    ("full disk is an error", `Quick, full_disk_is_an_error);
  ]

open Helpers
module E = Slice_experiments
module Nfs = Slice_nfs.Nfs
module Client = Slice_workload.Client
module Ensemble = Slice.Ensemble

let table2_smoke () =
  let data = E.Table2.run ~scale:0.02 () in
  check_int "eight rows" 8 (List.length data);
  List.iter
    (fun (d : E.Table2.datum) ->
      check_bool (d.E.Table2.config ^ " positive") true (d.E.Table2.measured_mbs > 1.0))
    data;
  (* headline shape: saturation read beats single-client read *)
  let find c = (List.find (fun (d : E.Table2.datum) -> d.E.Table2.config = c) data).E.Table2.measured_mbs in
  check_bool "aggregation shape" true (find "read, saturation" > 2.0 *. find "read, single client");
  check_bool "mirror halves aggregate writes" true
    (find "write-mirrored, saturation" < 0.75 *. find "write, saturation")

let table3_smoke () =
  let t = E.Table3.run ~scale:0.02 () in
  check_int "four phases" 4 (List.length t.E.Table3.rows);
  check_bool "total in a sane band" true (t.E.Table3.total_pct > 2.0 && t.E.Table3.total_pct < 15.0);
  check_bool "decode dominates" true
    ((List.nth t.E.Table3.rows 1).E.Table3.measured_pct
    > (List.nth t.E.Table3.rows 0).E.Table3.measured_pct)

let fig3_smoke () =
  let t = E.Fig3.run ~scale:0.01 ~procs:[ 1; 8 ] ~dir_counts:[ 1; 2 ] () in
  (* shapes: MFS and Slice-1 saturate; Slice-2 beats Slice-1 at 8 procs *)
  let lat name procs =
    let s = List.find (fun (s : E.Fig3.series) -> s.E.Fig3.name = name) t.E.Fig3.series in
    List.assoc procs s.E.Fig3.points
  in
  check_bool "Slice-1 grows with load" true
    (lat "Slice-1 (mkdir switching)" 8 > 2.0 *. lat "Slice-1 (mkdir switching)" 1);
  check_bool "Slice-2 beats Slice-1 under load" true
    (lat "Slice-2 (mkdir switching)" 8 < lat "Slice-1 (mkdir switching)" 8);
  check_bool "MFS faster than Slice-1 when unloaded" true
    (lat "N-MFS" 1 < lat "Slice-1 (mkdir switching)" 1)

let fig4_smoke () =
  let t = E.Fig4.run ~scale:0.01 ~affinities:[ 0.5; 1.0 ] ~proc_counts:[ 8 ] () in
  let s = List.hd t.E.Fig4.series in
  let at a = (List.find (fun p -> p.E.Fig4.affinity = a) s.E.Fig4.points).E.Fig4.latency in
  check_bool "affinity 1 degrades under load" true (at 1.0 > 1.5 *. at 0.5);
  let r05 = (List.find (fun p -> p.E.Fig4.affinity = 0.5) s.E.Fig4.points).E.Fig4.redirect_fraction in
  check_bool "redirect fraction tracks p (within noise)" true (r05 > 0.2 && r05 < 0.55)

let e2e_under_packet_loss () =
  (* 3% loss on every link: end-to-end retransmission keeps the volume
     correct through the µproxy, servers, and coordinator *)
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        storage_nodes = 2;
        net_params = Some { Slice_net.Net.default_params with drop_prob = 0.1 };
        seed = 99;
      }
  in
  let host, _ = Ensemble.add_client ens ~name:"lossy" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  run_on (Ensemble.engine ens) (fun () ->
      let data = String.init 4000 (fun i -> Char.chr (i mod 251)) in
      for i = 0 to 19 do
        let name = Printf.sprintf "lossy%02d.dat" i in
        let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root name) in
        ignore (ok_or_fail "write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Data data) ()));
        ignore (ok_or_fail "commit" (Client.commit cl fh));
        match ok_or_fail "read" (Client.read_at cl fh ~off:0L ~count:4000) with
        | Nfs.Data d, _ -> check_string "data survived loss" data d
        | _ -> Alcotest.fail "synthetic"
      done;
      check_bool "losses actually happened" true (Client.retransmissions cl > 0);
      check_int "no client-visible errors" 0 (Client.errors cl))

let deterministic_runs () =
  (* identical seeds -> bit-identical simulated outcomes *)
  let once () =
    let ens = Ensemble.create { Ensemble.default_config with storage_nodes = 2; seed = 7 } in
    let host, _ = Ensemble.add_client ens ~name:"d" in
    let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
    run_on (Ensemble.engine ens) (fun () ->
        let fh, _ = ok_or_fail "create" (Client.create_file cl Ensemble.root "same") in
        Client.sequential_write cl fh ~bytes:200_000L;
        Client.sequential_read cl fh ~bytes:200_000L;
        Client.now cl)
  in
  check_float "identical completion times" (once ()) (once ())

let offload_smoke () =
  match E.Offload.compute ~scale:0.05 ~sweep:false () with
  | [ off; on ] ->
      check_bool "measured ops ran" true (off.E.Offload.ops > 100);
      check_bool "baseline talks to dir servers" true (off.E.Offload.dir_ops > 0);
      (* the PR's acceptance bar: >= 30% fewer directory-server requests
         at default knobs, even at smoke scale *)
      check_bool "cache absorbs >= 30% of dir requests" true
        (float_of_int on.E.Offload.dir_ops < 0.7 *. float_of_int off.E.Offload.dir_ops);
      check_bool "hits account for the offload" true (on.E.Offload.meta.Slice.Proxy.hits > 0)
  | pts -> Alcotest.failf "expected 2 points, got %d" (List.length pts)

let suite =
  [
    ("table2 smoke", `Slow, table2_smoke);
    ("table3 smoke", `Quick, table3_smoke);
    ("fig3 smoke", `Slow, fig3_smoke);
    ("fig4 smoke", `Slow, fig4_smoke);
    ("offload smoke", `Quick, offload_smoke);
    ("e2e under packet loss", `Quick, e2e_under_packet_loss);
    ("deterministic runs", `Quick, deterministic_runs);
  ]

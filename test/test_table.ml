(* Direct routing-table coverage: version/snapshot semantics, idempotent
   updates, the fixed-site-count invariant, and µproxy snapshot refresh
   under repeated back-to-back reconfigurations. *)

open Helpers
module Fh = Slice_nfs.Fh
module Table = Slice.Table
module Ensemble = Slice.Ensemble
module Proxy = Slice.Proxy
module Client = Slice_workload.Client
module Reconfig = Slice_reconfig.Reconfig
module Plan = Slice_reconfig.Plan

let test_version_snapshot () =
  let t = Table.create [| 10; 20; 10 |] in
  check_int "nsites" 3 (Table.nsites t);
  check_int "lookup" 20 (Table.lookup t 1);
  let map, v = Table.snapshot t in
  check_int "snapshot version" (Table.version t) v;
  (* the snapshot is a private copy: scribbling on it must not leak *)
  map.(1) <- 99;
  check_int "snapshot is a copy" 20 (Table.lookup t 1);
  Table.update t [| 10; 30; 10 |];
  check_int "update bumps version" (v + 1) (Table.version t);
  check_int "update rebinds" 30 (Table.lookup t 1)

let test_idempotent_update () =
  let t = Table.create [| 1; 2 |] in
  let v = Table.version t in
  Table.update t [| 1; 2 |];
  check_int "identical mapping: no bump" v (Table.version t);
  Table.update t [| 2; 1 |];
  check_int "changed mapping: bump" (v + 1) (Table.version t);
  Table.update t [| 2; 1 |];
  check_int "republish: no bump" (v + 1) (Table.version t)

let test_fixed_site_count () =
  let t = Table.create [| 1; 2 |] in
  (try
     Table.update t [| 1; 2; 3 |];
     Alcotest.fail "growing the site count must be rejected"
   with Invalid_argument _ -> ());
  check_int "table unchanged" 2 (Table.nsites t)

(* Back-to-back reconfigurations: two decommissions and two rebalances
   of the directory class with no settling time, live client in the
   loop. The µproxy must chase every move through SLICE_MISDIRECTED
   bounces, and a rebalance of an already-balanced class must publish
   nothing (no version bump — refresh storms are the failure mode the
   idempotent update exists to stop). *)
let test_proxy_refresh_back_to_back () =
  let ens =
    Ensemble.create
      {
        Ensemble.default_config with
        seed = 5;
        storage_nodes = 2;
        dir_servers = 2;
        smallfile_servers = 1;
        dir_sites = 4;
        proxy_params = { Slice.Params.default with meta_cache_ttl = 0.0 };
      }
  in
  let eng = Ensemble.engine ens in
  let rc = Reconfig.attach ens in
  let host, proxy = Ensemble.add_client ens ~name:"c0" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  run_on eng (fun () ->
      let fhs =
        List.init 12 (fun i ->
            let name = Printf.sprintf "f%02d" i in
            let fh, _ = ok_or_fail "create" (Client.create_file cl Fh.root name) in
            (name, fh))
      in
      let tbl = Ensemble.dir_table ens in
      let v0 = Table.version tbl in
      (* every name must keep resolving through the µproxy's lazily
         refreshed snapshots after each step *)
      let check_all () =
        List.iter
          (fun (name, fh) ->
            let fh', _ = ok_or_fail "lookup" (Client.lookup cl Fh.root name) in
            check_bool "same file" true
              (Int64.equal fh'.Fh.file_id fh.Fh.file_id))
          fhs
      in
      Reconfig.execute rc (Plan.Remove_server (Plan.Dir, 0));
      (* everything now lives on d1 while the µproxy's snapshot still
         names d0 for half the sites: the bounce path must fire *)
      check_all ();
      check_bool "proxy refreshed via bounces" true (Proxy.stale_bounces proxy > 0);
      Reconfig.execute rc Plan.Rebalance;
      check_all ();
      Reconfig.execute rc (Plan.Remove_server (Plan.Dir, 1));
      check_all ();
      Reconfig.execute rc Plan.Rebalance;
      check_all ();
      check_bool "moves published" true (Table.version tbl > v0);
      check_bool "sites moved" true (Reconfig.sites_moved rc > 0);
      let v1 = Table.version tbl in
      Reconfig.execute rc Plan.Rebalance;
      check_int "balanced class is a fixed point" v1 (Table.version tbl);
      check_all ())

let suite =
  [
    Alcotest.test_case "version and snapshot semantics" `Quick test_version_snapshot;
    Alcotest.test_case "idempotent update" `Quick test_idempotent_update;
    Alcotest.test_case "fixed site count" `Quick test_fixed_site_count;
    Alcotest.test_case "proxy refresh under back-to-back reconfigurations" `Quick
      test_proxy_refresh_back_to_back;
  ]

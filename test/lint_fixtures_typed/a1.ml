(* A1 fixture: [@hot] roots with allocation sites. Positions and
   messages are pinned by golden/a1.json. *)

let sink = ref 0
let callbacks : (unit -> int) ref = ref (fun () -> 0)

(* positive: tuple allocated directly in a hot root *)
let[@hot] pair x y = (x, y)

(* positive: boxed int32 pinned by a let, so it cannot unbox *)
let[@hot] read_boxed buf =
  let v = Bytes.get_int32_be buf 0 in
  Int32.to_int v

(* positive (interprocedural): the conses are in the helper, the root
   only reaches them *)
let helper n = [ n; n + 1 ]
let[@hot] calls_helper n = List.length (helper n)

(* positive: closure created in body position *)
let[@hot] install n = callbacks := (fun () -> n)

(* suppressed, multi-line expression: the pragma sits above the first
   line of the allocating expression *)
let[@hot] slow_pair x y =
  (* lint: A1 ok — cold path: constructed once per report, not per packet *)
  ( x,
    y )

(* suppressed: indirect call through a caller-supplied function *)
let[@hot] dispatch f x =
  (* lint: A1 ok — callback is caller-supplied and allocation-free on the hot path *)
  f x

(* clean: arithmetic, comparisons and raises are free *)
let[@hot] masked n = if n < 0 then invalid_arg "masked" else n land 0xFF

(* F1 fixture: fenced-module entry points. Wal.append is the protected
   mutation; wedged is the guard. Positions and messages are pinned by
   golden/f1.json. *)

module Wal = struct
  let append log payload = log := payload :: !log
end

type t = { mutable lease_until : float; mutable bounces : int; log : int list ref }

let wedged t = t.lease_until < 1.0

(* internal helper: appends unguarded — unsafe, but not exported, so the
   finding lands on its exported callers instead *)
let log_raw t payload = Wal.append t.log payload

(* positive: exported, direct unguarded append *)
let mutate t payload = Wal.append t.log payload

(* positive: exported, reaches the append through the helper *)
let mutate_via_helper t payload = log_raw t payload

(* positive: the guard runs only after the mutation *)
let guard_too_late t payload =
  Wal.append t.log payload;
  if wedged t then t.bounces <- t.bounces + 1

(* clean: the wedge check dominates the append *)
let handle t payload =
  if wedged t then t.bounces <- t.bounces + 1
  else log_raw t payload

(* suppressed: recovery replay *)
(* lint: F1 ok — recovery replay runs before the server answers requests *)
let recover t payload = log_raw t payload

(* suppressed: crash simulation *)
(* lint: F1 ok — crash simulation models the disk, not client dispatch *)
let crash t payload = Wal.append t.log payload

(* Exported subset: log_raw stays private, so F1 reports its unsafety
   at the exported entry points that reach it. *)

type t = { mutable lease_until : float; mutable bounces : int; log : int list ref }

val wedged : t -> bool
val mutate : t -> int -> unit
val mutate_via_helper : t -> int -> unit
val guard_too_late : t -> int -> unit
val handle : t -> int -> unit
val recover : t -> int -> unit
val crash : t -> int -> unit
